// Geodistributed: the paper's Fig. 3 scenario. Three regions of edge
// nodes front a data-holding core across a WAN; training queries build
// models at the core, the models (not the data) ship to the edges, and
// subsequent analytics are answered at the edge with WAN fallback only
// when local error estimates are too high.
package main

import (
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/geo"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "geodistributed:", err)
		os.Exit(1)
	}
}

func run() error {
	// The core data centre.
	cl := cluster.New(8, cluster.DefaultConfig())
	eng := engine.New(cl)
	tbl, err := storage.NewTable(cl, "core", []string{"x", "y", "z"}, 16)
	if err != nil {
		return err
	}
	rng := workload.NewRNG(11)
	rows := workload.GaussianMixture(rng, 20_000, 3, workload.DefaultMixture(3), 0)
	if err := tbl.Load(rows); err != nil {
		return err
	}
	ex, err := exec.New(eng, tbl)
	if err != nil {
		return err
	}

	// Three regions, two edges each.
	cfg := geo.DefaultConfig(2)
	dep, err := geo.Deploy(ex, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("deployed %d edges in %d regions around 1 core\n",
		len(dep.Edges), cfg.Regions)

	// Phase 1: training queries flow edge -> core over the WAN; the core
	// trains one central agent on the pooled stream (RT5.2).
	qs := workload.NewQueryStream(workload.NewRNG(12), workload.DefaultRegions(2), query.Count)
	if _, err := dep.TrainAtCore(qs.Batch(400)); err != nil {
		return err
	}
	fmt.Printf("core trained %d query-space quanta; WAN so far: %d bytes\n",
		dep.CoreAgent.Quanta(), dep.WANBytes())

	// Phase 2: ship models (not data!) to every edge.
	shipped, err := dep.ShipModels([]query.Agg{query.Count}, 0, 0)
	if err != nil {
		return err
	}
	dataBytes := tbl.Rows() * tbl.RowBytes()
	fmt.Printf("shipped %d bytes of models vs %d bytes of base data (%.0fx smaller)\n",
		shipped, dataBytes, float64(dataBytes)/float64(shipped))

	// Phase 3: edges answer locally; measure latency and WAN traffic.
	before := dep.WANBytes()
	lats, _, err := dep.Latencies(qs.Batch(300))
	if err != nil {
		return err
	}
	fmt.Printf("300 queries: local-answer rate %.0f%%, WAN bytes %d (all-to-core would be %d)\n",
		dep.LocalRate()*100, dep.WANBytes()-before, 300*96)
	fmt.Printf("latency: p50=%v p95=%v (a WAN round trip alone is %v)\n",
		geo.Percentile(lats, 0.5), geo.Percentile(lats, 0.95), 2*cfg.WAN.WANLatency)
	for i, st := range dep.Stats() {
		fmt.Printf("  edge %d (region %d): local=%d peer=%d core=%d\n",
			i, st.Region, st.Local, st.Peer, st.Core)
	}
	return nil
}
