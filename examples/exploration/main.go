// Exploration: the paper's "Penny" scenario (§III.A). An analyst explores
// a multi-dimensional data space with radius and range queries, receives
// explanations instead of bare scalars, and issues the higher-level
// interrogation "return the subspaces where the correlation coefficient
// exceeds a threshold" — all answered data-lessly after training.
package main

import (
	"fmt"
	"os"

	"repro/internal/query"
	"repro/internal/workload"
	"repro/sea"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "exploration:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, err := sea.NewSystem(sea.SystemConfig{Nodes: 8, Columns: []string{"x", "y", "z"}})
	if err != nil {
		return err
	}
	// Data: two of the four blobs carry a strong x-z dependence; the
	// others carry noise, so correlation varies across the space.
	rng := workload.NewRNG(3)
	rows := workload.GaussianMixture(rng, 16_000, 3, workload.DefaultMixture(3), 0)
	for i := range rows {
		if rows[i].Vec[0] < 50 { // blobs around x=25: strong dependence
			rows[i].Vec[2] = 2*rows[i].Vec[0] + 5 + rng.NormFloat64()
		} else { // blobs around x=75: pure noise
			rows[i].Vec[2] = rng.NormFloat64() * 10
		}
	}
	if err := sys.Load(rows); err != nil {
		return err
	}

	agent, err := sys.NewAgent(sea.AgentConfig{Dims: 2, TrainingQueries: 350})
	if err != nil {
		return err
	}

	// Penny's session: she sweeps both interest regions with COUNT and
	// CORR queries (the training prefix goes to the system, Fig. 2).
	countStream := workload.NewQueryStream(workload.NewRNG(4), workload.DefaultRegions(2), query.Count)
	corrStream := workload.NewQueryStream(workload.NewRNG(5), workload.DefaultRegions(2), query.Corr)
	corrStream.Col, corrStream.Col2 = 0, 2
	for i := 0; i < 400; i++ {
		if _, err := agent.Answer(countStream.Next()); err != nil {
			return err
		}
		if _, err := agent.Answer(corrStream.Next()); err != nil {
			return err
		}
	}

	// A focused look at one subspace, with an explanation.
	sel := sea.Radius([]float64{25, 25}, 6)
	ans, err := agent.Count(sel)
	if err != nil {
		return err
	}
	fmt.Printf("population near (25,25): %.0f (data-less=%v)\n", ans.Value, ans.Predicted)
	if ex, err := agent.Explain(sea.Query{Select: sel, Aggregate: sea.Count}); err == nil {
		fmt.Printf("explanation: count(extent) has %d linear pieces over [%.1f, %.1f]\n",
			len(ex.Slopes), ex.ExtentRange[0], ex.ExtentRange[1])
		fmt.Printf("  shrink to extent %.1f -> ~%.0f rows; grow to %.1f -> ~%.0f rows\n",
			ex.ExtentRange[0], ex.EvalExtent(ex.ExtentRange[0]),
			ex.ExtentRange[1], ex.EvalExtent(ex.ExtentRange[1]))
	}

	// The higher-level interrogation (RT4.1): where is corr(x,z) > 0.6?
	hot := agent.SubspacesWhere(
		sea.Query{Aggregate: sea.Corr, Col: 0, Col2: 2},
		15, 85, 10, 6,
		func(v float64) bool { return v > 0.6 },
	)
	fmt.Printf("subspaces with corr(x,z) > 0.6: %d found data-lessly\n", len(hot))
	for _, s := range hot {
		truth, _, err := sys.ExactCohort(sea.Query{Select: s, Aggregate: sea.Corr, Col: 0, Col2: 2})
		if err != nil {
			return err
		}
		fmt.Printf("  centre %v: exact corr = %.2f\n", s.Center, truth.Value)
	}
	st := agent.Stats()
	fmt.Printf("session: %d queries, %.0f%% answered without touching base data\n",
		st.Queries, st.PredictionRate()*100)
	return nil
}
