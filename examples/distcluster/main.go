// Distcluster: the distributed serving cluster end to end, in one
// process. Three HTTP/JSON nodes shard the query space and the data
// over a consistent-hash ring with 2-way replication; a ring-aware
// client answers the aggregate suite with scatter-gather exactness,
// one node is killed mid-stream (failover masks it), and the revived
// node warms up by model-snapshot shipping instead of re-training.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/workload"
	"repro/sea"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "distcluster:", err)
		os.Exit(1)
	}
}

func run() error {
	rows := workload.StandardRows(10_000, 1)

	agentCfg := core.DefaultConfig(2)
	agentCfg.TrainingQueries = 100
	lc, err := sea.StartLocalCluster(3, sea.ClusterConfig{Agent: agentCfg, Replicas: 2}, rows)
	if err != nil {
		return err
	}
	defer lc.Close()
	client := lc.Client()

	st, err := client.Status()
	if err != nil {
		return err
	}
	fmt.Printf("cluster up: %d members, %d partitions, replicas=%d\n",
		len(st.Members), st.PartitionsTotal, st.Replicas)

	// The aggregate suite, scatter-gathered across the shards.
	fmt.Println("\n-- exact cross-shard aggregates (vs single-node evaluation) --")
	for _, agg := range []query.Agg{query.Count, query.Sum, query.Avg, query.Var, query.Corr} {
		q := query.Query{
			Select:    query.Selection{Los: []float64{15, 15}, His: []float64{35, 35}},
			Aggregate: agg, Col: 2, Col2: 0,
		}
		if agg == query.Corr {
			q.Col, q.Col2 = 0, 2
		}
		ans, err := client.Answer(q)
		if err != nil {
			return err
		}
		fmt.Printf("%-8v cluster=%-12.4f single-node=%-12.4f (nodes touched: %d)\n",
			agg, ans.Value, query.EvalRows(q, rows).Value, ans.Cost.NodesTouched)
	}

	// Train one node, then ship its models to a peer.
	fmt.Println("\n-- model shipping --")
	ids := lc.IDs()
	qs := workload.NewQueryStream(workload.NewRNG(2), workload.DefaultRegions(2), query.Count)
	for i := 0; i < 200; i++ {
		if _, err := lc.Node(ids[0]).Answer("train", qs.Next()); err != nil {
			return err
		}
	}
	shipped, err := lc.Node(ids[1]).WarmFrom(lc.URL(ids[0]))
	if err != nil {
		return err
	}
	fmt.Printf("shipped %d snapshot bytes from %s to %s\n", shipped, ids[0], ids[1])

	// Kill a node mid-stream: the client fails over, no errors surface.
	fmt.Println("\n-- failover --")
	lc.Kill(ids[2])
	errs := 0
	for i := 0; i < 50; i++ {
		if _, err := client.Answer(qs.Next()); err != nil {
			errs++
		}
	}
	fmt.Printf("killed %s mid-stream: %d client-visible errors over 50 queries\n", ids[2], errs)

	// Revive it warm: snapshot shipping makes it predictive immediately.
	shipped, err = lc.Revive(ids[2], ids[0])
	if err != nil {
		return err
	}
	fmt.Printf("revived %s with %d warm snapshot bytes\n", ids[2], shipped)
	return nil
}
