// Quickstart: build a simulated BDAS, load data, train a SEA agent, and
// ask data-less COUNT and AVG queries through the public API.
package main

import (
	"fmt"
	"os"

	"repro/internal/query"
	"repro/internal/workload"
	"repro/sea"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. A system: 8 simulated data-server nodes, a 3-column table.
	sys, err := sea.NewSystem(sea.SystemConfig{Nodes: 8, Columns: []string{"x", "y", "z"}})
	if err != nil {
		return err
	}

	// 2. Load clustered synthetic data (x, y spatial; z = 2x + 5 + noise).
	rng := workload.NewRNG(1)
	rows := workload.GaussianMixture(rng, 10_000, 3, workload.DefaultMixture(3), 0)
	workload.CorrelatedColumns(rng, rows, 0, 2, 2, 5, 1)
	if err := sys.Load(rows); err != nil {
		return err
	}

	// 3. An agent that trains on the first 300 analyst queries.
	agent, err := sys.NewAgent(sea.AgentConfig{Dims: 2, TrainingQueries: 300})
	if err != nil {
		return err
	}
	qs := workload.NewQueryStream(workload.NewRNG(2), workload.DefaultRegions(2), query.Count)
	qs.RadiusFrac = 0.5 // analysts mix hyper-sphere and hyper-box selections
	for i := 0; i < 300; i++ {
		if _, err := agent.Answer(qs.Next()); err != nil {
			return err
		}
	}

	// 4. Data-less analytics: COUNT and AVG with error estimates.
	sel := sea.Radius([]float64{25, 25}, 6)
	count, err := agent.Count(sel)
	if err != nil {
		return err
	}
	avg, err := agent.Average(sel, 2)
	if err != nil {
		return err
	}
	truth, _, err := sys.ExactCohort(sea.Query{Select: sel, Aggregate: sea.Count})
	if err != nil {
		return err
	}
	fmt.Printf("COUNT within r=6 of (25,25): %.0f (predicted=%v, est err %.3f; exact %d)\n",
		count.Value, count.Predicted, count.EstError, int(truth.Value))
	fmt.Printf("AVG(z) same subspace:        %.2f (predicted=%v)\n", avg.Value, avg.Predicted)
	st := agent.Stats()
	fmt.Printf("agent: %d queries, %.0f%% data-less, %d quanta\n",
		st.Queries, st.PredictionRate()*100, st.Quanta)
	return nil
}
