// Operators: the paper's big-data-less operators (P3) side by side —
// rank-join with a statistical index, kNN with a grid index, and the
// subgraph semantic cache — each contrasted against its MapReduce-era
// baseline on identical data, printing the cost gap the paper claims.
package main

import (
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/knn"
	"repro/internal/rankjoin"
	"repro/internal/storage"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "operators:", err)
		os.Exit(1)
	}
}

func run() error {
	cl := cluster.New(8, cluster.DefaultConfig())
	eng := engine.New(cl)
	rng := workload.NewRNG(21)

	// --- Rank-join (ref [30], claim C2) ---
	r, err := storage.NewTable(cl, "R", []string{"score"}, 16)
	if err != nil {
		return err
	}
	s, err := storage.NewTable(cl, "S", []string{"score"}, 16)
	if err != nil {
		return err
	}
	if err := r.Load(workload.ZipfKeys(rng, 50_000, 25_000, 1.2, 64, 0)); err != nil {
		return err
	}
	if err := s.Load(workload.ZipfKeys(rng, 50_000, 25_000, 1.2, 64, 0)); err != nil {
		return err
	}
	rj, err := rankjoin.New(eng, r, s, 0)
	if err != nil {
		return err
	}
	top, mrCost, err := rj.MapReduce(10)
	if err != nil {
		return err
	}
	_, thCost, err := rj.Threshold(10)
	if err != nil {
		return err
	}
	fmt.Println("rank-join top-10 over 2x50k rows:")
	fmt.Printf("  best pair: key=%d combined=%.3f\n", top[0].Key, top[0].Combined())
	fmt.Printf("  mapreduce: %v, %d rows, %d bytes\n", mrCost.Time, mrCost.RowsRead, mrCost.BytesLAN)
	fmt.Printf("  threshold: %v, %d rows, %d bytes  (%.0fx faster)\n\n",
		thCost.Time, thCost.RowsRead, thCost.BytesLAN,
		float64(mrCost.Time)/float64(thCost.Time))

	// --- kNN (ref [33], claim C3) ---
	pts, err := storage.NewTable(cl, "pts", []string{"x", "y", "z"}, 16)
	if err != nil {
		return err
	}
	if err := pts.Load(workload.GaussianMixture(rng, 50_000, 3, workload.DefaultMixture(3), 0)); err != nil {
		return err
	}
	kop, err := knn.New(eng, pts, 2, 24)
	if err != nil {
		return err
	}
	q := []float64{25, 25}
	nbrs, scanCost, err := kop.Scan(q, 10)
	if err != nil {
		return err
	}
	_, idxCost, err := kop.Indexed(q, 10)
	if err != nil {
		return err
	}
	fmt.Println("10-NN of (25,25) over 50k rows:")
	fmt.Printf("  nearest: key=%d dist=%.3f\n", nbrs[0].Row.Key, nbrs[0].Dist)
	fmt.Printf("  scan:    %v, %d rows\n", scanCost.Time, scanCost.RowsRead)
	fmt.Printf("  indexed: %v, %d rows  (%.0fx faster)\n\n",
		idxCost.Time, idxCost.RowsRead,
		float64(scanCost.Time)/float64(idxCost.Time))

	// --- Subgraph semantic cache (refs [34][35], claim C4) ---
	graphs := make([]*graph.Graph, 400)
	for i := range graphs {
		g, err := graph.RandomGraph(rng, 10+rng.Intn(8), 0.22, 4)
		if err != nil {
			return err
		}
		graphs[i] = g
	}
	store := graph.NewStore(cl, graphs)
	cache := graph.NewCache(store, 32)
	pattern, err := graph.SamplePattern(rng, graphs[5], 4)
	if err != nil {
		return err
	}
	ids, coldCost := cache.Query(pattern)
	_, hotCost := cache.Query(pattern)
	fmt.Println("subgraph query over a 400-graph database:")
	fmt.Printf("  matches: %d graphs\n", len(ids))
	fmt.Printf("  cold: %v    hot (cache hit): %v  (%.0fx faster)\n",
		coldCost.Time, hotCost.Time,
		float64(coldCost.Time)/float64(hotCost.Time))
	return nil
}
