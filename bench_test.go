// Package repro's root benchmarks regenerate every experiment in
// DESIGN.md's per-experiment index (E1-E16) plus the ablations (A1-A5).
// Each bench reports the experiment's headline virtual metrics via
// b.ReportMetric, so `go test -bench=. -benchmem` prints the rows that
// EXPERIMENTS.md records. Wall-clock ns/op measures simulator CPU, not
// the virtual cluster: the virtual metrics are the reproduction targets.
package repro

import (
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/trace"
	"repro/internal/workload"
)

func BenchmarkE1DatalessVsBDAS(b *testing.B) {
	for _, rows := range []int{20_000, 100_000} {
		b.Run(sizeName(rows), func(b *testing.B) {
			var row experiments.E1Row
			var err error
			for i := 0; i < b.N; i++ {
				row, err = experiments.E1DatalessVsBDAS(rows, 16, 300, 200)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.SpeedupX, "speedup_x")
			b.ReportMetric(row.PredictionRate, "pred_rate")
			b.ReportMetric(float64(row.BDASRowsRead), "bdas_rows")
			b.ReportMetric(float64(row.SEARowsRead), "sea_rows")
			b.ReportMetric(row.BDASDollars/maxf(row.SEADollars, 1e-12), "dollar_ratio_x")
		})
	}
}

func BenchmarkE2CountAccuracy(b *testing.B) {
	for _, training := range []int{150, 300, 600} {
		b.Run(sizeName(training), func(b *testing.B) {
			var row experiments.E2Row
			var err error
			for i := 0; i < b.N; i++ {
				row, err = experiments.E2CountAccuracy(20_000, training, 200, 0.05)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.SEAMAPE, "sea_mape")
			b.ReportMetric(row.AQPMAPE, "aqp_mape")
			b.ReportMetric(row.SEARowsPerQ, "sea_rows/q")
			b.ReportMetric(row.AQPRowsPerQ, "aqp_rows/q")
			b.ReportMetric(row.PredictionRate, "pred_rate")
		})
	}
}

func BenchmarkE3AvgRegression(b *testing.B) {
	var row experiments.E3Row
	var err error
	for i := 0; i < b.N; i++ {
		row, err = experiments.E3AvgRegression(20_000, 300, 150)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.AvgMAPE, "avg_mape")
	b.ReportMetric(row.SlopeMAE, "slope_mae")
	b.ReportMetric(row.CorrMAE, "corr_mae")
	b.ReportMetric(row.PredictionRate, "pred_rate")
}

func BenchmarkE4RankJoin(b *testing.B) {
	for _, rows := range []int{10_000, 100_000} {
		for _, k := range []int{1, 10, 100} {
			b.Run(sizeName(rows)+"/k="+sizeName(k), func(b *testing.B) {
				var row experiments.E4Row
				var err error
				for i := 0; i < b.N; i++ {
					row, err = experiments.E4RankJoin(rows, k)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(row.SpeedupX, "speedup_x")
				b.ReportMetric(row.RowRatioX, "row_ratio_x")
				b.ReportMetric(row.ByteRatioX, "byte_ratio_x")
			})
		}
	}
}

func BenchmarkE5KNN(b *testing.B) {
	for _, rows := range []int{10_000, 100_000} {
		for _, k := range []int{1, 10, 100} {
			b.Run(sizeName(rows)+"/k="+sizeName(k), func(b *testing.B) {
				var row experiments.E5Row
				var err error
				for i := 0; i < b.N; i++ {
					row, err = experiments.E5KNN(rows, k, 10)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(row.SpeedupX, "speedup_x")
				b.ReportMetric(row.RowRatioX, "row_ratio_x")
			})
		}
	}
}

func BenchmarkE6SubgraphCache(b *testing.B) {
	for _, repeat := range []float64{0.6, 0.9} {
		b.Run(pctName(repeat), func(b *testing.B) {
			var row experiments.E6Row
			var err error
			for i := 0; i < b.N; i++ {
				row, err = experiments.E6SubgraphCache(400, 150, repeat)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.SpeedupX, "speedup_x")
			b.ReportMetric(float64(row.ExactHits), "exact_hits")
			b.ReportMetric(float64(row.SubHits), "sub_hits")
		})
	}
}

func BenchmarkE7Imputation(b *testing.B) {
	for _, rows := range []int{5_000, 20_000} {
		b.Run(sizeName(rows), func(b *testing.B) {
			var row experiments.E7Row
			var err error
			for i := 0; i < b.N; i++ {
				row, err = experiments.E7Imputation(rows)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.SpeedupX, "speedup_x")
			b.ReportMetric(row.FullRMSE, "full_rmse")
			b.ReportMetric(row.CentroidRMSE, "centroid_rmse")
		})
	}
}

func BenchmarkE8Optimizer(b *testing.B) {
	var row experiments.E8Row
	var err error
	for i := 0; i < b.N; i++ {
		row, err = experiments.E8Optimizer(10_000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.Accuracy, "accuracy")
	b.ReportMetric(row.LearnedRegret, "learned_regret_s")
	b.ReportMetric(row.AlwaysMRRegret, "always_mr_regret_s")
}

func BenchmarkE9Explanations(b *testing.B) {
	var row experiments.E9Row
	var err error
	for i := 0; i < b.N; i++ {
		row, err = experiments.E9Explanations(20_000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.MeanR2, "fidelity_r2")
	b.ReportMetric(row.MeanMAPE, "fidelity_mape")
	b.ReportMetric(float64(row.QueriesSaved)/maxf(float64(row.QueriesAsked), 1), "saved_frac")
}

func BenchmarkE10Geo(b *testing.B) {
	var row experiments.E10Row
	var err error
	for i := 0; i < b.N; i++ {
		row, err = experiments.E10Geo(20_000, 400, 300)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.WANSavingsX, "wan_savings_x")
	b.ReportMetric(row.LocalRate, "local_rate")
	b.ReportMetric(float64(row.P50.Microseconds()), "p50_us")
	b.ReportMetric(float64(row.P95.Microseconds()), "p95_us")
}

func BenchmarkE11Maintenance(b *testing.B) {
	var row experiments.E11Row
	var err error
	for i := 0; i < b.N; i++ {
		row, err = experiments.E11Maintenance(20_000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.PreDriftMAPE, "pre_drift_mape")
	b.ReportMetric(row.RecoveredMAPE, "recovered_mape")
	b.ReportMetric(float64(row.PostUpdateExact), "post_update_exact")
	b.ReportMetric(row.RecoveredPredRate, "recovered_pred_rate")
}

func BenchmarkE12Polystore(b *testing.B) {
	var row experiments.E12Row
	var err error
	for i := 0; i < b.N; i++ {
		row, err = experiments.E12Polystore(4_000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(row.ShipDataBytes), "ship_data_B")
	b.ReportMetric(float64(row.ShipPairsBytes), "ship_pairs_B")
	b.ReportMetric(float64(row.ShipModelBytes), "ship_model_B")
	b.ReportMetric(row.ShipModelErr, "ship_model_abs_err")
}

func BenchmarkE13ConcurrentServe(b *testing.B) {
	for _, workers := range []int{4, 16} {
		b.Run(sizeName(workers)+"w", func(b *testing.B) {
			var row experiments.E13Row
			var err error
			for i := 0; i < b.N; i++ {
				row, err = experiments.E13ConcurrentServe(20_000, workers, 250, 300)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.QPS, "qps")
			b.ReportMetric(float64(row.P50.Microseconds()), "p50_us")
			b.ReportMetric(float64(row.P99.Microseconds()), "p99_us")
			b.ReportMetric(row.PredictionRate, "pred_rate")
			b.ReportMetric(row.FallbackRate, "fallback_rate")
		})
	}
}

func BenchmarkE14DistServe(b *testing.B) {
	for _, nodes := range []int{1, 2, 3} {
		b.Run(sizeName(nodes)+"n", func(b *testing.B) {
			var row experiments.E14Row
			var err error
			for i := 0; i < b.N; i++ {
				row, err = experiments.E14DistServe(20_000, nodes, 24, 100, 300, false)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.QPS, "qps")
			b.ReportMetric(float64(row.P50.Microseconds()), "p50_us")
			b.ReportMetric(float64(row.P99.Microseconds()), "p99_us")
			b.ReportMetric(row.PredictionRate, "pred_rate")
			b.ReportMetric(float64(row.CrossShardP50.Microseconds()), "cross_shard_p50_us")
		})
	}
}

func BenchmarkE15LiveIngest(b *testing.B) {
	var row experiments.E15Row
	var err error
	for i := 0; i < b.N; i++ {
		row, err = experiments.E15LiveIngest(20_000, 3, 8, 150, 300, 15, 300, b.TempDir(), true)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.ReadQPS, "read_qps")
	b.ReportMetric(float64(row.ReadP99.Microseconds()), "read_p99_us")
	b.ReportMetric(row.PredictionRate, "pred_rate")
	b.ReportMetric(row.PreMAPE, "pre_mape")
	b.ReportMetric(row.DuringMAPE, "during_mape")
	b.ReportMetric(row.PostMAPE, "post_mape")
	b.ReportMetric(float64(row.AckedRows), "acked_rows")
	b.ReportMetric(float64(row.LostAckedRows), "lost_acked_rows")
}

func BenchmarkAblationQuanta(b *testing.B) {
	var rows []experiments.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.A1Quanta(20_000, []float64{64, 225, 900})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.MAPE, "mape@sd"+sizeName(int(r.Param)))
	}
}

func BenchmarkAblationModelFamily(b *testing.B) {
	var scores map[string]float64
	var err error
	for i := 0; i < b.N; i++ {
		scores, err = experiments.A2ModelFamily(10_000)
		if err != nil {
			b.Fatal(err)
		}
	}
	for name, rmse := range scores {
		b.ReportMetric(rmse, "rmse_"+name)
	}
}

func BenchmarkAblationFallback(b *testing.B) {
	var rows []experiments.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.A3Fallback(20_000, []float64{0.05, 0.2, 0.5})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.PredictionRate, "rate@th"+pctName(r.Param))
	}
}

func BenchmarkAblationRankJoinBatch(b *testing.B) {
	var rows []experiments.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.A4RankJoinBatch(20_000, []int{16, 64, 256})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Extra, "rows@b"+sizeName(int(r.Param)))
	}
}

func BenchmarkAblationGeoRouting(b *testing.B) {
	var out map[string]float64
	var err error
	for i := 0; i < b.N; i++ {
		out, err = experiments.A5GeoRouting(10_000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(out["core-only"], "core_only_wan_B")
	b.ReportMetric(out["peer-first"], "peer_first_wan_B")
}

func BenchmarkE16Vectorized(b *testing.B) {
	for _, rows := range []int{100_000, 1_000_000} {
		for _, sel := range []float64{0.01, 0.10, 0.50} {
			for _, agg := range []query.Agg{query.Count, query.Sum, query.Var, query.Corr} {
				b.Run(sizeName(rows)+"/"+pctName(sel)+"/"+agg.String(), func(b *testing.B) {
					var row experiments.E16Row
					var err error
					for i := 0; i < b.N; i++ {
						row, err = experiments.E16Vectorized(rows, 16, sel, agg, 3)
						if err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(row.KernelSpeedupX, "kernel_speedup_x")
					b.ReportMetric(row.ParSpeedupX, "par_speedup_x")
					b.ReportMetric(row.PrunedSpeedupX, "pruned_speedup_x")
					b.ReportMetric(row.PrunedFrac, "pruned_frac")
					b.ReportMetric(row.VecMRowsPerSec, "vec_mrows_s")
				})
			}
		}
	}
}

// BenchmarkE17HotPath proves the serving hot path's allocation
// contract with -benchmem precision: the steady-state TryPredict tier
// (indexed quantum lookup + scratch-arena features) and the versioned
// cache-hit tier must both report 0 allocs/op. The E17 sub-benchmark
// reports the full experiment row (throughput, tier latencies, batched
// cluster RPCs per query).
func BenchmarkE17HotPath(b *testing.B) {
	fix, err := experiments.NewE17Fixture(20_000, 300)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("TryPredict", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := fix.Agent.TryPredict(fix.Query); !ok {
				b.Fatal("fast path refused the pinned query")
			}
		}
	})
	b.Run("CacheHit", func(b *testing.B) {
		if _, err := fix.Pool.Answer(fix.Query); err != nil { // prime
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := fix.Pool.Answer(fix.Query); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("E17", func(b *testing.B) {
		var row experiments.E17Row
		var err error
		for i := 0; i < b.N; i++ {
			row, err = experiments.E17HotPath(20_000, 300, 16, 500, 100)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(row.QPS, "qps")
		b.ReportMetric(row.TryPredictNsOp, "try_predict_ns")
		b.ReportMetric(row.TryPredictAllocsOp, "try_predict_allocs")
		b.ReportMetric(row.CacheHitNsOp, "cache_hit_ns")
		b.ReportMetric(row.CacheHitAllocsOp, "cache_hit_allocs")
		b.ReportMetric(row.CacheHitRate, "cache_hit_rate")
		b.ReportMetric(row.RPCsPerQuery, "rpcs_per_query")
		b.ReportMetric(float64(row.P99.Microseconds()), "p99_us")
	})
}

// BenchmarkE18TraceOverhead proves the observability layer's cost
// contract. Disabled: with a tracer attached but sampling off, the
// cache-hit serving path must still report 0 allocs/op — the tracing
// hooks may cost nil checks and one atomic load, nothing more (CI
// greps this line). Sampled forces a trace on every query to bound
// the worst-case per-trace cost. The E18 sub-benchmark reports the
// full experiment row: baseline vs traced QPS at 1-in-100 sampling,
// the shadow audit's measured MAPE against ground truth, and the
// stitched multi-node span-tree shape.
func BenchmarkE18TraceOverhead(b *testing.B) {
	fix, err := experiments.NewE17Fixture(20_000, 300)
	if err != nil {
		b.Fatal(err)
	}
	tracer := trace.NewTracer("bench", 0)
	fix.Pool.EnableTracing(tracer)
	if _, err := fix.Pool.Answer(fix.Query); err != nil { // prime the cache
		b.Fatal(err)
	}
	b.Run("Disabled", func(b *testing.B) {
		tracer.SetSampleRate(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := fix.Pool.Answer(fix.Query); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Sampled", func(b *testing.B) {
		tracer.SetSampleEvery(1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := fix.Pool.Answer(fix.Query); err != nil {
				b.Fatal(err)
			}
		}
		tracer.SetSampleRate(0)
	})
	b.Run("E18", func(b *testing.B) {
		var row experiments.E18Row
		var err error
		for i := 0; i < b.N; i++ {
			row, err = experiments.E18TraceOverhead(20_000, 300, 16, 500, 100)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(row.BaselineQPS, "baseline_qps")
		b.ReportMetric(row.TracedQPS, "traced_qps")
		b.ReportMetric(row.OverheadPct, "overhead_pct")
		b.ReportMetric(float64(row.SampledTraces), "sampled_traces")
		b.ReportMetric(float64(row.TraceSpans), "trace_spans")
		b.ReportMetric(float64(row.TraceNodes), "trace_nodes")
		b.ReportMetric(row.AuditMAPE, "audit_mape")
		b.ReportMetric(row.TruthMAPE, "truth_mape")
		b.ReportMetric(float64(row.SlowLogged), "slow_logged")
	})
}

// BenchmarkE19ObsOverhead proves the logging + runtime-telemetry cost
// contract. Disabled: with no logger attached the cache-hit serving
// path must still report 0 allocs/op — the logging hook may cost one
// nil check, nothing more (CI greps this line). Logged bounds the
// worst case: slow-query logging firing on every query through a
// rate-limited logger with the runtime sampler live. The E19
// sub-benchmark reports the full experiment row: the replication-lag
// narrative plus baseline vs instrumented QPS, which CI gates at a
// <=2% drop.
func BenchmarkE19ObsOverhead(b *testing.B) {
	fix, err := experiments.NewE17Fixture(20_000, 300)
	if err != nil {
		b.Fatal(err)
	}
	tracer := trace.NewTracer("bench", 0)
	fix.Pool.EnableTracing(tracer)
	if _, err := fix.Pool.Answer(fix.Query); err != nil { // prime the cache
		b.Fatal(err)
	}
	b.Run("Disabled", func(b *testing.B) {
		fix.Pool.SetLogger(nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := fix.Pool.Answer(fix.Query); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Logged", func(b *testing.B) {
		logger := obs.New(io.Discard, obs.LevelInfo)
		logger.SetRateLimit(10_000, 1000)
		fix.Pool.SetLogger(logger)
		tracer.SetSlowThreshold(time.Nanosecond) // every query logs (up to the limiter)
		sampler := obs.NewRuntimeSampler(5 * time.Millisecond)
		sampler.Start()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := fix.Pool.Answer(fix.Query); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		sampler.Stop()
		tracer.SetSlowThreshold(0)
		fix.Pool.SetLogger(nil)
	})
	b.Run("E19", func(b *testing.B) {
		var row experiments.E19Row
		var err error
		for i := 0; i < b.N; i++ {
			row, err = experiments.E19Introspection(20_000, 300, 16, 4000)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(row.BaselineQPS, "baseline_qps")
		b.ReportMetric(row.ObsQPS, "obs_qps")
		b.ReportMetric(row.OverheadPct, "overhead_pct")
		b.ReportMetric(float64(row.DownCritical), "down_critical")
		b.ReportMetric(float64(row.LagParts), "lag_parts")
		b.ReportMetric(float64(row.LagPeak), "lag_peak")
		b.ReportMetric(boolMetric(row.CaughtUp), "caught_up")
		b.ReportMetric(float64(row.LogLines), "log_lines")
		b.ReportMetric(float64(row.LogDropped), "log_dropped")
	})
}

// BenchmarkE20FlightSample proves the flight-recorder cost contract.
// Steady: one full recorder tick — every counter, gauge, and histogram
// quantile sampled into its ring, anomaly detectors fed — must report
// 0 allocs/op at steady state (CI greps this line). The E20
// sub-benchmark reports the full experiment row: paired baseline vs
// recorder-on QPS (CI gates the drop at <=2%) plus the overload
// narrative — anomaly fired, SLO critical, bundle captured, history
// rings queryable.
func BenchmarkE20FlightSample(b *testing.B) {
	b.Run("Steady", func(b *testing.B) {
		rec := metrics.NewServeRecorder(1024)
		for i := 0; i < 512; i++ {
			rec.ObservePath(time.Duration(50+i%100)*time.Microsecond, metrics.PathCache)
			rec.ObservePath(time.Duration(200+i%400)*time.Microsecond, metrics.PathExactScatter)
		}
		fr := flight.New(flight.Config{Node: "bench", Anomaly: true})
		fr.Instrument(rec)
		fr.Watch("lat_p99_all", "queries")
		base := time.Unix(1_700_000_000, 0)
		// Spin the rings past one full wrap so the benchmark measures
		// steady state, not first-fill.
		for i := 0; i < 1024; i++ {
			fr.Tick(base.Add(time.Duration(i) * time.Second))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fr.Tick(base.Add(time.Duration(1024+i) * time.Second))
		}
	})
	b.Run("E20", func(b *testing.B) {
		var row experiments.E20Row
		var err error
		for i := 0; i < b.N; i++ {
			row, err = experiments.E20FlightRecorder(20_000, 300, 16, 4000)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(row.BaselineQPS, "baseline_qps")
		b.ReportMetric(row.FlightQPS, "flight_qps")
		b.ReportMetric(row.OverheadPct, "overhead_pct")
		b.ReportMetric(float64(row.Series), "series")
		b.ReportMetric(float64(row.Anomalies), "anomalies")
		b.ReportMetric(row.AnomalyZ, "anomaly_z")
		b.ReportMetric(float64(row.SLOState), "slo_state")
		b.ReportMetric(float64(row.Triggers), "triggers")
		b.ReportMetric(float64(row.BundleFiles), "bundle_files")
		b.ReportMetric(boolMetric(row.BundleComplete), "bundle_complete")
		b.ReportMetric(float64(row.HiPoints), "hi_points")
		b.ReportMetric(float64(row.LoPoints), "lo_points")
		b.ReportMetric(row.RampRatio, "ramp_ratio")
	})
}

// BenchmarkE21Resilience proves the chaos-hardening cost contract.
//
// Disabled gates the fault interceptor's disarmed hot path: a
// chaos.Transport with no rules armed must add one atomic load and
// ZERO heap allocations per request over its base transport — CI greps
// its allocs/op, so a regression that makes every inter-node RPC in a
// production cluster allocate fails the build. E21 regenerates the
// full chaos-resilience scenario and reports its row: the overhead
// halves (paired stripped-vs-hardened QPS, the ≤2% benchcheck gate)
// and the armed-chaos narrative (zero client errors, honest degraded
// coverage, breakers opening and re-closing).
func BenchmarkE21Resilience(b *testing.B) {
	b.Run("Disabled", func(b *testing.B) {
		resp := &http.Response{StatusCode: http.StatusOK, Body: http.NoBody}
		tr := &chaos.Transport{F: chaos.New(), Base: nopTransport{resp: resp}}
		req, err := http.NewRequest(http.MethodPost, "http://peer:9999/v1/partials", nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tr.RoundTrip(req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("E21", func(b *testing.B) {
		var row experiments.E21Row
		var err error
		for i := 0; i < b.N; i++ {
			row, err = experiments.E21ChaosResilience(20_000, 8, 600)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(row.BaselineQPS, "baseline_qps")
		b.ReportMetric(row.ChaosQPS, "chaos_qps")
		b.ReportMetric(row.OverheadPct, "overhead_pct")
		b.ReportMetric(float64(row.Hedges), "hedges")
		b.ReportMetric(float64(row.ClientErrors), "client_errors")
		b.ReportMetric(float64(row.Degraded), "degraded")
		b.ReportMetric(row.MinCoverage, "min_coverage")
		b.ReportMetric(row.MaxCoverage, "max_coverage")
		b.ReportMetric(row.HonestyErrPct, "honesty_err_pct")
		b.ReportMetric(row.ChaosP99MS, "chaos_p99_ms")
		b.ReportMetric(float64(row.RPCRetries), "rpc_retries")
		b.ReportMetric(boolMetric(row.BreakerOpened), "breaker_opened")
		b.ReportMetric(boolMetric(row.BreakerReclosed), "breaker_reclosed")
		b.ReportMetric(float64(row.RecoverMS), "recover_ms")
	})
}

// BenchmarkE22Elastic proves the elastic-membership cost contract.
//
// Disarmed gates the anti-entropy loop's off path: with
// Config.AntiEntropy zero a tick must be a single atomic load and ZERO
// heap allocations — CI greps its allocs/op, so a regression that
// makes every disarmed node's background tick allocate fails the
// build. E22 regenerates the full elastic-membership scenario and
// reports its row: the paired disarmed-vs-armed QPS halves (the ≤2%
// benchcheck gate) plus the churn narrative — grow 3→5, retire a
// founder, zero acked-row loss, and a corrupted replica healed back to
// bit-identical by anti-entropy.
func BenchmarkE22Elastic(b *testing.B) {
	b.Run("Disarmed", func(b *testing.B) {
		ccfg := core.DefaultConfig(2)
		ccfg.TrainingQueries = 1 << 30
		lc, err := dist.StartLocal(1, dist.Config{
			Agent:    ccfg,
			Replicas: 1, WriteQuorum: 1, Partitions: 2,
		}, workload.StandardRows(500, 11))
		if err != nil {
			b.Fatal(err)
		}
		defer lc.Close()
		n := lc.Node(lc.IDs()[0])
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if n.AntiEntropyTick() != 0 {
				b.Fatal("disarmed tick repaired something")
			}
		}
	})
	b.Run("E22", func(b *testing.B) {
		var row experiments.E22Row
		var err error
		for i := 0; i < b.N; i++ {
			row, err = experiments.E22ElasticMembership(20_000, 8, 600)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(row.BaselineQPS, "baseline_qps")
		b.ReportMetric(row.ElasticQPS, "elastic_qps")
		b.ReportMetric(row.OverheadPct, "overhead_pct")
		b.ReportMetric(float64(row.Queries), "queries")
		b.ReportMetric(float64(row.ClientErrors), "client_errors")
		b.ReportMetric(row.QueryP99MS, "query_p99_ms")
		b.ReportMetric(float64(row.Joined), "joined")
		b.ReportMetric(float64(row.Left), "left")
		b.ReportMetric(float64(row.FinalEpoch), "final_epoch")
		b.ReportMetric(float64(row.MovedParts), "moved_parts")
		b.ReportMetric(float64(row.AckedRows), "acked_rows")
		b.ReportMetric(float64(row.LossRows), "loss_rows")
		b.ReportMetric(float64(row.Repairs), "repairs")
		b.ReportMetric(float64(row.RepairMS), "repair_ms")
		b.ReportMetric(boolMetric(row.RepairFinding), "repair_finding")
	})
}

// nopTransport returns a canned response: the Disabled sub-bench
// measures the chaos wrapper's own cost, not a real round trip's.
type nopTransport struct{ resp *http.Response }

func (t nopTransport) RoundTrip(*http.Request) (*http.Response, error) { return t.resp, nil }

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

func sizeName(n int) string {
	switch {
	case n >= 1_000_000 && n%1_000_000 == 0:
		return itoa(n/1_000_000) + "M"
	case n >= 1_000 && n%1_000 == 0:
		return itoa(n/1_000) + "k"
	default:
		return itoa(n)
	}
}

func pctName(f float64) string { return itoa(int(f*100)) + "pct" }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
