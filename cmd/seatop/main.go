// Seatop is the cluster operator dashboard: it polls a node's
// GET /v1/debug/cluster aggregator and renders a refreshing terminal
// view of every member — reachability, partitions and replication lag,
// cache hit rate, runtime telemetry, SLO burn — plus the aggregator's
// cross-check findings.
//
// Modes:
//
//	seatop -url http://host:8080            watch a running cluster
//	seatop -url http://host:8080 -once      one shot; exit 0 iff healthy
//	seatop -local 3 -once                   boot an in-process 3-node
//	                                        cluster and report on it
//	                                        (self-contained CI smoke)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/workload"
)

func main() {
	var (
		url      = flag.String("url", "http://127.0.0.1:8080", "base URL of any cluster node")
		interval = flag.Duration("interval", 2*time.Second, "refresh period in watch mode")
		once     = flag.Bool("once", false, "render one report and exit (0 healthy, 1 findings, 2 fetch error)")
		local    = flag.Int("local", 0, "boot an in-process local cluster with N nodes and report on it")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-poll HTTP timeout")
	)
	flag.Parse()

	if *local > 0 {
		lc, err := startLocal(*local)
		if err != nil {
			fmt.Fprintln(os.Stderr, "seatop: local cluster:", err)
			os.Exit(2)
		}
		defer lc.Close()
		*url = lc.URL(lc.IDs()[0])
	}

	hc := &http.Client{Timeout: *timeout}
	for {
		rep, err := fetch(hc, *url)
		if err != nil {
			if *once {
				fmt.Fprintln(os.Stderr, "seatop:", err)
				os.Exit(2)
			}
			fmt.Printf("\033[H\033[2Jseatop: %v (retrying in %v)\n", err, *interval)
			time.Sleep(*interval)
			continue
		}
		if *once {
			fmt.Print(render(rep, *url))
			if !rep.Healthy {
				os.Exit(1)
			}
			return
		}
		fmt.Print("\033[H\033[2J" + render(rep, *url))
		time.Sleep(*interval)
	}
}

// startLocal boots a small in-process cluster with live ingest so the
// dashboard has something to show.
func startLocal(n int) (*dist.LocalCluster, error) {
	rows := workload.StandardRows(5_000, 1)
	cfg := core.DefaultConfig(2)
	cfg.TrainingQueries = 64
	return dist.StartLocal(n, dist.Config{Agent: cfg, Replicas: 2}, rows)
}

func fetch(hc *http.Client, url string) (dist.ClusterReport, error) {
	var rep dist.ClusterReport
	resp, err := hc.Get(url + "/v1/debug/cluster")
	if err != nil {
		return rep, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return rep, fmt.Errorf("GET %s/v1/debug/cluster: HTTP %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		return rep, fmt.Errorf("decode cluster report: %w", err)
	}
	return rep, nil
}

func render(rep dist.ClusterReport, url string) string {
	var b strings.Builder
	health := "HEALTHY"
	if !rep.Healthy {
		health = "UNHEALTHY"
	}
	fmt.Fprintf(&b, "seatop — %s  coordinator=%s  %s  (%d nodes, %d findings, %dms)\n\n",
		url, rep.Coordinator, health, len(rep.Nodes), len(rep.Findings), rep.TookMS)

	fmt.Fprintf(&b, "%-6s %-9s %8s %6s %9s %7s %6s %8s %7s %9s %s\n",
		"NODE", "STATE", "UPTIME", "PARTS", "ROWS", "VER", "CACHE", "GOROUT", "HEAP", "GCP99", "SLO")
	for _, nr := range rep.Nodes {
		if nr.Status == nil {
			fmt.Fprintf(&b, "%-6s %-9s %s\n", nr.ID, "DOWN", nr.Error)
			continue
		}
		st := nr.Status
		fmt.Fprintf(&b, "%-6s %-9s %8s %6d %9d %7d %6s %8d %7s %9s %s\n",
			nr.ID, "up",
			fmtDur(time.Duration(st.UptimeMS)*time.Millisecond),
			len(st.Partitions), st.RowsHeld, st.DataVersion,
			fmtPct(st.Cache.HitRate),
			st.Runtime.Goroutines,
			fmtBytes(st.Runtime.HeapAlloc),
			fmtDur(time.Duration(st.Runtime.GCPauseP99)),
			sloSummary(st))
	}

	// Per-partition replication lag, shown only when something lags.
	lags := map[string]uint64{}
	for _, f := range rep.Findings {
		if f.Kind == "replication_lag" {
			lags[fmt.Sprintf("%s/part %d", f.Node, f.Part)] = f.Lag
		}
	}
	if len(lags) > 0 {
		keys := make([]string, 0, len(lags))
		for k := range lags {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("\nreplication lag:\n")
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-18s %d batches behind\n", k, lags[k])
		}
	}

	if len(rep.Findings) > 0 {
		b.WriteString("\nfindings:\n")
		for _, f := range rep.Findings {
			fmt.Fprintf(&b, "  [%-8s] %-16s %s\n", f.Severity, f.Kind, f.Detail)
		}
	} else {
		b.WriteString("\nno findings — all checks pass\n")
	}
	return b.String()
}

// sloSummary compresses a node's per-class SLO states to the worst one.
func sloSummary(st *dist.NodeStatus) string {
	if len(st.SLO) == 0 {
		return "-"
	}
	worst, classes := "ok", 0
	for _, s := range st.SLO {
		classes++
		if s.State == "critical" || (s.State == "warn" && worst == "ok") {
			worst = s.State
		}
	}
	return fmt.Sprintf("%s(%d)", worst, classes)
}

func fmtDur(d time.Duration) string {
	switch {
	case d <= 0:
		return "0"
	case d < time.Millisecond:
		return fmt.Sprintf("%dus", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%dms", d.Milliseconds())
	case d < time.Minute:
		return fmt.Sprintf("%.0fs", d.Seconds())
	case d < time.Hour:
		return fmt.Sprintf("%dm%02ds", int(d.Minutes()), int(d.Seconds())%60)
	default:
		return fmt.Sprintf("%dh%02dm", int(d.Hours()), int(d.Minutes())%60)
	}
}

func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fG", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fM", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fK", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func fmtPct(f float64) string {
	return fmt.Sprintf("%.0f%%", f*100)
}
