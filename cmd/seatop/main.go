// Seatop is the cluster operator dashboard: it polls a node's
// GET /v1/debug/cluster aggregator and renders a refreshing terminal
// view of every member — reachability, membership epoch, partitions and
// replication lag, cache hit rate, runtime telemetry, anti-entropy
// repairs, SLO burn — plus the aggregator's cross-check findings. When
// members are churning (live join/leave) or the anti-entropy loop has
// healed a divergent replica, a "membership churn & repair" section
// breaks the per-node migration and repair counters out. When members run the flight recorder, seatop
// also polls each node's GET /v1/history and renders a per-node
// sparkline of -metric over -window.
//
// Modes:
//
//	seatop -url http://host:8080            watch a running cluster
//	seatop -url http://host:8080 -once      one shot; exit 0 iff healthy
//	seatop -local 3 -once                   boot an in-process 3-node
//	                                        cluster and report on it
//	                                        (self-contained CI smoke)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/flight"
	"repro/internal/workload"
)

func main() {
	var (
		url      = flag.String("url", "http://127.0.0.1:8080", "base URL of any cluster node")
		interval = flag.Duration("interval", 2*time.Second, "refresh period in watch mode")
		once     = flag.Bool("once", false, "render one report and exit (0 healthy, 1 findings, 2 fetch error)")
		local    = flag.Int("local", 0, "boot an in-process local cluster with N nodes and report on it")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-poll HTTP timeout")
		metric   = flag.String("metric", "lat_p99_all", "flight-recorder series to sparkline per node")
		window   = flag.Duration("window", 2*time.Minute, "history window behind the sparkline")
	)
	flag.Parse()

	if *local > 0 {
		lc, err := startLocal(*local)
		if err != nil {
			fmt.Fprintln(os.Stderr, "seatop: local cluster:", err)
			os.Exit(2)
		}
		defer lc.Close()
		*url = lc.URL(lc.IDs()[0])
	}

	hc := &http.Client{Timeout: *timeout}
	for {
		rep, err := fetch(hc, *url)
		if err != nil {
			if *once {
				fmt.Fprintln(os.Stderr, "seatop:", err)
				os.Exit(2)
			}
			fmt.Printf("\033[H\033[2Jseatop: %v (retrying in %v)\n", err, *interval)
			time.Sleep(*interval)
			continue
		}
		hist := fetchHistories(hc, rep, *metric, *window)
		if *once {
			fmt.Print(render(rep, *url, hist, *metric, *window))
			if !rep.Healthy {
				os.Exit(1)
			}
			return
		}
		fmt.Print("\033[H\033[2J" + render(rep, *url, hist, *metric, *window))
		time.Sleep(*interval)
	}
}

// startLocal boots a small in-process cluster with live ingest so the
// dashboard has something to show.
func startLocal(n int) (*dist.LocalCluster, error) {
	rows := workload.StandardRows(5_000, 1)
	cfg := core.DefaultConfig(2)
	cfg.TrainingQueries = 64
	// The flight recorder takes an immediate first sample at Start, so
	// even -once has at least one history point per node.
	return dist.StartLocal(n, dist.Config{
		Agent: cfg, Replicas: 2,
		Flight: true, FlightSample: 250 * time.Millisecond,
	}, rows)
}

func fetch(hc *http.Client, url string) (dist.ClusterReport, error) {
	var rep dist.ClusterReport
	resp, err := hc.Get(url + "/v1/debug/cluster")
	if err != nil {
		return rep, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return rep, fmt.Errorf("GET %s/v1/debug/cluster: HTTP %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		return rep, fmt.Errorf("decode cluster report: %w", err)
	}
	return rep, nil
}

// nodeHistory is one member's sparkline material.
type nodeHistory struct {
	hist   flight.History
	series int // registered series on that node
}

// fetchHistories polls each reachable member's flight recorder for the
// sparkline series. Members without the recorder (404) simply drop out
// of the map — history is an optional plane.
func fetchHistories(hc *http.Client, rep dist.ClusterReport, metric string, window time.Duration) map[string]nodeHistory {
	out := make(map[string]nodeHistory)
	for _, nr := range rep.Nodes {
		if !nr.Reachable || nr.URL == "" {
			continue
		}
		resp, err := hc.Get(fmt.Sprintf("%s/v1/history?metric=%s&window=%s", nr.URL, metric, window))
		if err != nil || resp.StatusCode != http.StatusOK {
			if resp != nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			continue
		}
		var nh nodeHistory
		err = json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&nh.hist)
		resp.Body.Close()
		if err != nil {
			continue
		}
		if nr.Status != nil && nr.Status.Flight != nil {
			nh.series = nr.Status.Flight.Series
		}
		out[nr.ID] = nh
	}
	return out
}

// sparkline renders points as a block-character strip, newest right,
// scaled to the window's own min..max.
func sparkline(points []flight.Point, width int) string {
	if len(points) > width {
		points = points[len(points)-width:]
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range points {
		lo, hi = math.Min(lo, p.V), math.Max(hi, p.V)
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, p := range points {
		i := 0
		if hi > lo {
			i = int((p.V - lo) / (hi - lo) * float64(len(levels)-1))
		}
		b.WriteRune(levels[i])
	}
	return b.String()
}

func render(rep dist.ClusterReport, url string, hist map[string]nodeHistory, metric string, window time.Duration) string {
	var b strings.Builder
	health := "HEALTHY"
	if !rep.Healthy {
		health = "UNHEALTHY"
	}
	fmt.Fprintf(&b, "seatop — %s  coordinator=%s  %s  (%d nodes, %d findings, %dms)\n\n",
		url, rep.Coordinator, health, len(rep.Nodes), len(rep.Findings), rep.TookMS)

	fmt.Fprintf(&b, "%-6s %-9s %8s %6s %6s %9s %7s %6s %8s %7s %9s %7s %s\n",
		"NODE", "STATE", "UPTIME", "EPOCH", "PARTS", "ROWS", "VER", "CACHE", "GOROUT", "HEAP", "GCP99", "REPAIR", "SLO")
	for _, nr := range rep.Nodes {
		if nr.Status == nil {
			fmt.Fprintf(&b, "%-6s %-9s %s\n", nr.ID, "DOWN", nr.Error)
			continue
		}
		st := nr.Status
		fmt.Fprintf(&b, "%-6s %-9s %8s %6d %6d %9d %7d %6s %8d %7s %9s %7s %s\n",
			nr.ID, "up",
			fmtDur(time.Duration(st.UptimeMS)*time.Millisecond),
			st.Ring.Epoch,
			len(st.Partitions), st.RowsHeld, st.DataVersion,
			fmtPct(st.Cache.HitRate),
			st.Runtime.Goroutines,
			fmtBytes(st.Runtime.HeapAlloc),
			fmtDur(time.Duration(st.Runtime.GCPauseP99)),
			repairSummary(st),
			sloSummary(st))
	}

	// Elastic-membership activity: shown only when a node has migration
	// or anti-entropy history to report, so a static cluster stays quiet.
	var elastic []string
	for _, nr := range rep.Nodes {
		if nr.Status == nil {
			continue
		}
		rb, ae := nr.Status.Rebalance, nr.Status.AntiEntropy
		if rb.MovedParts == 0 && rb.Staged == 0 && rb.Retired == 0 && ae.Divergent == 0 && ae.Repairs == 0 {
			continue
		}
		elastic = append(elastic, fmt.Sprintf(
			"  %-6s moved=%d staged=%d retired=%d divergent=%d repaired=%d",
			nr.ID, rb.MovedParts, rb.Staged, rb.Retired, ae.Divergent, ae.Repairs))
	}
	if len(elastic) > 0 {
		b.WriteString("\nmembership churn & repair:\n")
		for _, line := range elastic {
			b.WriteString(line + "\n")
		}
	}

	// Per-partition replication lag, shown only when something lags.
	lags := map[string]uint64{}
	for _, f := range rep.Findings {
		if f.Kind == "replication_lag" {
			lags[fmt.Sprintf("%s/part %d", f.Node, f.Part)] = f.Lag
		}
	}
	if len(lags) > 0 {
		keys := make([]string, 0, len(lags))
		for k := range lags {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("\nreplication lag:\n")
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-18s %d batches behind\n", k, lags[k])
		}
	}

	// Flight-recorder sparklines: one strip per member that serves
	// /v1/history, scaled per node to its own window.
	if len(hist) > 0 {
		fmt.Fprintf(&b, "\nhistory (%s, window %s):\n", metric, window)
		series := 0
		ids := make([]string, 0, len(hist))
		for id := range hist {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			nh := hist[id]
			if nh.series > series {
				series = nh.series
			}
			last := "-"
			if n := len(nh.hist.Points); n > 0 {
				v := nh.hist.Points[n-1].V
				if strings.HasPrefix(metric, "lat_") {
					last = fmtDur(time.Duration(v)) // latency series sample ns
				} else {
					last = fmt.Sprintf("%g", v)
				}
			}
			fmt.Fprintf(&b, "  %-6s %-32s last=%s (%d pts @ %s)\n",
				id, sparkline(nh.hist.Points, 30), last, len(nh.hist.Points), nh.hist.Resolution)
		}
		fmt.Fprintf(&b, "history: %d/%d nodes, %d series\n", len(hist), len(rep.Nodes), series)
	} else {
		fmt.Fprintf(&b, "\nhistory: 0/%d nodes (flight recorder off)\n", len(rep.Nodes))
	}

	if len(rep.Findings) > 0 {
		b.WriteString("\nfindings:\n")
		for _, f := range rep.Findings {
			fmt.Fprintf(&b, "  [%-8s] %-16s %s\n", f.Severity, f.Kind, f.Detail)
		}
	} else {
		b.WriteString("\nno findings — all checks pass\n")
	}
	return b.String()
}

// repairSummary compresses a node's anti-entropy state: "-" when the
// loop is disarmed, repaired/divergent counts when armed.
func repairSummary(st *dist.NodeStatus) string {
	ae := st.AntiEntropy
	if !ae.Enabled {
		return "-"
	}
	return fmt.Sprintf("%d/%d", ae.Repairs, ae.Divergent)
}

// sloSummary compresses a node's per-class SLO states to the worst one.
func sloSummary(st *dist.NodeStatus) string {
	if len(st.SLO) == 0 {
		return "-"
	}
	worst, classes := "ok", 0
	for _, s := range st.SLO {
		classes++
		if s.State == "critical" || (s.State == "warn" && worst == "ok") {
			worst = s.State
		}
	}
	return fmt.Sprintf("%s(%d)", worst, classes)
}

func fmtDur(d time.Duration) string {
	switch {
	case d <= 0:
		return "0"
	case d < time.Millisecond:
		return fmt.Sprintf("%dus", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%dms", d.Milliseconds())
	case d < time.Minute:
		return fmt.Sprintf("%.0fs", d.Seconds())
	case d < time.Hour:
		return fmt.Sprintf("%dm%02ds", int(d.Minutes()), int(d.Seconds())%60)
	default:
		return fmt.Sprintf("%dh%02dm", int(d.Hours()), int(d.Minutes())%60)
	}
}

func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fG", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fM", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fK", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func fmtPct(f float64) string {
	return fmt.Sprintf("%.0f%%", f*100)
}
