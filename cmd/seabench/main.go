// Command seabench runs the full experiment suite (E1-E22 and ablations
// A1-A5 from DESIGN.md) at configurable scale and prints one table per
// experiment — the rows EXPERIMENTS.md records. Metrics are virtual
// simulator units (see internal/metrics), except E13 (concurrent
// serving), E14 (distributed cluster), E15 (live data plane), E16
// (vectorized execution), E17 (serving hot path), E18 (tracing
// overhead + accuracy audit), E19 (cluster introspection), E20
// (flight recorder), E21 (chaos resilience) and E22 (elastic
// membership) which measure real wall-clock behaviour.
//
// With -json every experiment emits machine-readable rows instead of
// tables, one JSON object per line:
//
//	{"experiment":"E4","row":{...}}
//
// so BENCH tracking can diff runs without parsing tables. CI runs
// `seabench -scale smoke -json` on every push and uploads the lines as
// a build artifact, so the perf trajectory accumulates per commit.
//
// Usage:
//
//	seabench [-scale smoke|small|paper] [-only E4] [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/query"
)

func main() {
	scale := flag.String("scale", "small", "experiment scale: smoke | small | paper")
	only := flag.String("only", "", "run only the named experiment (e.g. E4)")
	jsonOut := flag.Bool("json", false, "emit one JSON row per line instead of tables")
	flag.Parse()
	switch *scale {
	case "smoke", "small", "paper":
	default:
		fmt.Fprintf(os.Stderr, "seabench: unknown -scale %q (want smoke, small or paper)\n", *scale)
		os.Exit(2)
	}
	if err := run(*scale, *only, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "seabench:", err)
		os.Exit(1)
	}
}

// emitter routes experiment rows either to human tables (the caller
// prints) or to machine-readable JSON lines. Encode failures are kept
// (first one wins) so a truncated -json stream fails the run instead of
// exiting 0.
type emitter struct {
	json bool
	enc  *json.Encoder
	err  error
}

// emit writes rows as JSON lines and reports true when it did (JSON
// mode); table mode returns false so the caller prints instead.
func (e *emitter) emit(name string, rows ...any) bool {
	if !e.json {
		return false
	}
	for _, r := range rows {
		if err := e.enc.Encode(struct {
			Experiment string `json:"experiment"`
			Row        any    `json:"row"`
		}{name, r}); err != nil && e.err == nil {
			e.err = fmt.Errorf("emit %s: %w", name, err)
		}
	}
	return true
}

func run(scale, only string, jsonOut bool) error {
	big := scale == "paper"
	smoke := scale == "smoke"
	pick := func(small, paper int) int {
		if big {
			return paper
		}
		if smoke {
			// Smoke mode quarters the size knobs (floored so every
			// experiment still has enough data to run): CI exercises the
			// full suite on every push without paying small-scale cost.
			if small >= 4_000 {
				return small / 4
			}
			if small >= 40 {
				return small / 2
			}
		}
		return small
	}
	want := func(name string) bool {
		return only == "" || strings.EqualFold(only, name)
	}
	em := &emitter{json: jsonOut, enc: json.NewEncoder(os.Stdout)}

	if want("E1") {
		var rows []experiments.E1Row
		for _, n := range []int{pick(10_000, 20_000), pick(50_000, 100_000), pick(0, 1_000_000)} {
			if n == 0 {
				continue
			}
			r, err := experiments.E1DatalessVsBDAS(n, 16, 300, 200)
			if err != nil {
				return err
			}
			rows = append(rows, r)
		}
		if !em.emit("E1", anySlice(rows)...) {
			fmt.Println("== E1: data-less (Fig.2) vs traditional BDAS (Fig.1), COUNT queries ==")
			fmt.Println("rows        bdas_lat      sea_lat   speedup  pred_rate  bdas_rows    sea_rows   $ratio")
			for _, r := range rows {
				fmt.Printf("%-9d %11v %12v %8.0fx %9.2f %11d %11d %7.0fx\n",
					r.Rows, r.BDASMeanLatency, r.SEAMeanLatency, r.SpeedupX,
					r.PredictionRate, r.BDASRowsRead, r.SEARowsRead,
					r.BDASDollars/maxf(r.SEADollars, 1e-12))
			}
			fmt.Println()
		}
	}

	if want("E2") {
		var rows []experiments.E2Row
		for _, tr := range []int{150, 300, 600} {
			r, err := experiments.E2CountAccuracy(pick(10_000, 20_000), tr, 200, 0.05)
			if err != nil {
				return err
			}
			rows = append(rows, r)
		}
		if !em.emit("E2", anySlice(rows)...) {
			fmt.Println("== E2: COUNT accuracy & cost — SEA agent vs BlinkDB-style AQP ==")
			fmt.Println("training  sea_mape  aqp_mape  sea_rows/q  aqp_rows/q  exact_rows/q  pred_rate  sample_KB")
			for _, r := range rows {
				fmt.Printf("%-9d %8.3f %9.3f %11.0f %11.0f %13.0f %10.2f %10d\n",
					r.Training, r.SEAMAPE, r.AQPMAPE, r.SEARowsPerQ, r.AQPRowsPerQ,
					r.ExactRowsPerQ, r.PredictionRate, r.AQPSampleBytes/1024)
			}
			fmt.Println()
		}
	}

	if want("E3") {
		r, err := experiments.E3AvgRegression(pick(10_000, 20_000), 300, 150)
		if err != nil {
			return err
		}
		if !em.emit("E3", r) {
			fmt.Println("== E3: data-less AVG / regression-coefficient queries ==")
			fmt.Printf("avg_mape=%.3f  slope_mae=%.3f (true slope 2)  corr_mae=%.3f  pred_rate=%.2f\n\n",
				r.AvgMAPE, r.SlopeMAE, r.CorrMAE, r.PredictionRate)
		}
	}

	if want("E4") {
		var rows []experiments.E4Row
		for _, n := range []int{pick(10_000, 100_000), pick(50_000, 1_000_000)} {
			for _, k := range []int{1, 10, 100} {
				r, err := experiments.E4RankJoin(n, k)
				if err != nil {
					return err
				}
				rows = append(rows, r)
			}
		}
		if !em.emit("E4", anySlice(rows)...) {
			fmt.Println("== E4: top-K rank join — MapReduce vs statistical-index threshold (C2) ==")
			fmt.Println("rows      k    mr_time        th_time     speedup   row_ratio  byte_ratio   $mr/$th")
			for _, r := range rows {
				fmt.Printf("%-8d %3d %10v %14v %8.0fx %10.1fx %10.0fx %8.0fx\n",
					r.Rows, r.K, r.MRTime, r.ThresholdTime, r.SpeedupX,
					r.RowRatioX, r.ByteRatioX, r.MRDollars/maxf(r.THDollars, 1e-12))
			}
			fmt.Println()
		}
	}

	if want("E5") {
		var rows []experiments.E5Row
		for _, n := range []int{pick(10_000, 100_000), pick(50_000, 1_000_000)} {
			for _, k := range []int{1, 10, 100} {
				r, err := experiments.E5KNN(n, k, 10)
				if err != nil {
					return err
				}
				rows = append(rows, r)
			}
		}
		if !em.emit("E5", anySlice(rows)...) {
			fmt.Println("== E5: kNN — full scan vs grid-indexed coordinator-cohort (C3) ==")
			fmt.Println("rows      k    scan_time     idx_time    speedup   row_ratio")
			for _, r := range rows {
				fmt.Printf("%-8d %3d %11v %12v %8.0fx %10.0fx\n",
					r.Rows, r.K, r.ScanTime, r.IndexedTime, r.SpeedupX, r.RowRatioX)
			}
			fmt.Println()
		}
	}

	if want("E6") {
		reps := []float64{0.6, 0.9}
		var rows []experiments.E6Row
		// E6Row does not carry the repeat fraction, so the JSON rows wrap
		// it in explicitly — machine-readable rows must be attributable
		// to their parameters.
		type e6JSON struct {
			RepeatRate float64 `json:"repeat_rate"`
			experiments.E6Row
		}
		var jrows []any
		for _, rep := range reps {
			r, err := experiments.E6SubgraphCache(pick(200, 1000), pick(100, 300), rep)
			if err != nil {
				return err
			}
			rows = append(rows, r)
			jrows = append(jrows, e6JSON{RepeatRate: rep, E6Row: r})
		}
		if !em.emit("E6", jrows...) {
			fmt.Println("== E6: subgraph queries — no cache vs semantic cache (C4) ==")
			fmt.Println("repeat   nocache_time   cache_time   speedup  exact  sub  super")
			for i, r := range rows {
				fmt.Printf("%-7.0f%% %11v %12v %8.1fx %6d %4d %6d\n",
					reps[i]*100, r.NoCacheTime, r.CacheTime, r.SpeedupX,
					r.ExactHits, r.SubHits, r.SuperHits)
			}
			fmt.Println()
		}
	}

	if want("E7") {
		var rows []experiments.E7Row
		for _, n := range []int{pick(5_000, 20_000), pick(10_000, 50_000)} {
			r, err := experiments.E7Imputation(n)
			if err != nil {
				return err
			}
			rows = append(rows, r)
		}
		if !em.emit("E7", anySlice(rows)...) {
			fmt.Println("== E7: missing-value imputation — all-pairs vs centroid-routed (C5) ==")
			fmt.Println("rows      full_time    centroid_time   speedup   full_rmse  cent_rmse")
			for _, r := range rows {
				fmt.Printf("%-8d %11v %14v %8.0fx %10.2f %10.2f\n",
					r.Rows, r.FullTime, r.CentroidTime, r.SpeedupX, r.FullRMSE, r.CentroidRMSE)
			}
			fmt.Println()
		}
	}

	if want("E8") {
		r, err := experiments.E8Optimizer(pick(5_000, 20_000))
		if err != nil {
			return err
		}
		if !em.emit("E8", r) {
			fmt.Println("== E8: learned paradigm selection (C6) ==")
			fmt.Printf("accuracy=%.2f  regret: learned=%.4fs always-mr=%.4fs always-cc=%.4fs  best-inference-model=%s\n\n",
				r.Accuracy, r.LearnedRegret, r.AlwaysMRRegret, r.AlwaysCCRegret, r.BestModelFamily)
		}
	}

	if want("E9") {
		r, err := experiments.E9Explanations(pick(12_000, 20_000))
		if err != nil {
			return err
		}
		if !em.emit("E9", r) {
			fmt.Println("== E9: query-answer explanations (C7) ==")
			fmt.Printf("explained=%.0f%%  fidelity_r2=%.2f  fidelity_mape=%.3f  queries_saved=%d/%d\n\n",
				r.ExplainedFrac*100, r.MeanR2, r.MeanMAPE, r.QueriesSaved, r.QueriesAsked)
		}
	}

	if want("E10") {
		r, err := experiments.E10Geo(pick(10_000, 20_000), 400, 300)
		if err != nil {
			return err
		}
		if !em.emit("E10", r) {
			fmt.Println("== E10: geo-distributed SEA (Fig.3, C8) ==")
			fmt.Printf("wan_savings=%.0fx  local_rate=%.2f  p50=%v  p95=%v  (all-to-core p50=%v)  model_ship=%dB\n\n",
				r.WANSavingsX, r.LocalRate, r.P50, r.P95, r.AllToCore50, r.ModelShipBytes)
		}
	}

	if want("E11") {
		r, err := experiments.E11Maintenance(pick(10_000, 20_000))
		if err != nil {
			return err
		}
		if !em.emit("E11", r) {
			fmt.Println("== E11: model maintenance under drift and updates (C9) ==")
			fmt.Printf("pre_drift_mape=%.3f  post_drift_mape=%.3f  recovered_mape=%.3f  post_update_exact=%d/20  recovered_pred_rate=%.2f\n\n",
				r.PreDriftMAPE, r.PostDriftMAPE, r.RecoveredMAPE, r.PostUpdateExact, r.RecoveredPredRate)
		}
	}

	if want("E12") {
		r, err := experiments.E12Polystore(pick(2_000, 8_000))
		if err != nil {
			return err
		}
		if !em.emit("E12", r) {
			fmt.Println("== E12: polystore strategies (C10) ==")
			fmt.Printf("bytes: ship-data=%d ship-pairs=%d ship-model=%d   abs_err: pairs=%.4f model=%.4f\n\n",
				r.ShipDataBytes, r.ShipPairsBytes, r.ShipModelBytes, r.ShipPairsErr, r.ShipModelErr)
		}
	}

	if want("E13") {
		var rows []experiments.E13Row
		for _, workers := range []int{pick(4, 16), pick(16, 64)} {
			r, err := experiments.E13ConcurrentServe(pick(10_000, 20_000), workers, pick(250, 1000), 300)
			if err != nil {
				return err
			}
			rows = append(rows, r)
		}
		if !em.emit("E13", anySlice(rows)...) {
			fmt.Println("== E13: concurrent serving throughput (N workers x M queries, wall clock) ==")
			for _, r := range rows {
				js, err := json.Marshal(r)
				if err != nil {
					return err
				}
				fmt.Println(string(js))
			}
			fmt.Println()
		}
	}

	if want("E14") {
		var rows []experiments.E14Row
		for _, nodes := range []int{1, 2, 3} {
			// The 3-node row also runs the kill-one-node failover phase.
			// Client concurrency (24) exceeds the biggest cluster's total
			// worker slots (3 nodes x 4) so every size runs saturated.
			r, err := experiments.E14DistServe(pick(10_000, 20_000), nodes,
				pick(24, 48), pick(100, 300), 300, nodes == 3)
			if err != nil {
				return err
			}
			rows = append(rows, r)
		}
		if !em.emit("E14", anySlice(rows)...) {
			fmt.Println("== E14: distributed serving cluster (scale-out QPS, cross-shard latency, failover) ==")
			for _, r := range rows {
				js, err := json.Marshal(r)
				if err != nil {
					return err
				}
				fmt.Println(string(js))
			}
			fmt.Println()
		}
	}

	if want("E15") {
		dir, err := os.MkdirTemp("", "seabench-e15-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		// 3 nodes, kill-and-recover on: the row carries accuracy under
		// drift, read latency under ingest, and the durability verdict.
		r, err := experiments.E15LiveIngest(pick(10_000, 20_000), 3,
			pick(8, 16), pick(100, 300), 300, pick(10, 30), pick(200, 500), dir, true)
		if err != nil {
			return err
		}
		if !em.emit("E15", r) {
			fmt.Println("== E15: live data plane (ingest + drift maintenance + kill/replay recovery) ==")
			js, err := json.Marshal(r)
			if err != nil {
				return err
			}
			fmt.Println(string(js))
			fmt.Println()
		}
	}

	if want("E16") {
		// The vectorized-vs-row-at-a-time contrast is wall-clock: run a
		// compact grid so the bench-regression job has stable rows to
		// diff. Iterations are higher at smoke scale to damp CI noise.
		var rows []experiments.E16Row
		for _, agg := range []query.Agg{query.Count, query.Sum, query.Var, query.Corr} {
			r, err := experiments.E16Vectorized(pick(200_000, 1_000_000), 16, 0.10, agg, 5)
			if err != nil {
				return err
			}
			rows = append(rows, r)
		}
		if !em.emit("E16", anySlice(rows)...) {
			fmt.Println("== E16: vectorized columnar execution (zone-map pruning + batch kernels, wall clock) ==")
			for _, r := range rows {
				fmt.Printf("agg=%-8s rows=%-8d sel=%.2f kernel=%5.2fx parallel=%5.2fx pruned=%5.2fx pruned_frac=%.2f vec=%6.1f Mrows/s\n",
					r.Agg, r.Rows, r.Selectivity, r.KernelSpeedupX, r.ParSpeedupX, r.PrunedSpeedupX, r.PrunedFrac, r.VecMRowsPerSec)
			}
			fmt.Println()
		}
	}

	if want("E17") {
		// The serving hot path: zero-alloc tier latencies, cache-hit
		// rate under a repeat-heavy stream, and the batched
		// scatter-gather's partial RPCs per exact query.
		r, err := experiments.E17HotPath(pick(10_000, 20_000), 300,
			pick(8, 16), pick(250, 1000), pick(50, 200))
		if err != nil {
			return err
		}
		if !em.emit("E17", r) {
			fmt.Println("== E17: serving hot path (zero-alloc tiers, answer cache, batched scatter RPCs) ==")
			fmt.Printf("try_predict=%.0fns (%.2f allocs)  cache_hit=%.0fns (%.2f allocs)  qps=%.0f  p99=%v  cache_hit_rate=%.2f  rpcs/query=%.2f (max holders %d)\n\n",
				r.TryPredictNsOp, r.TryPredictAllocsOp, r.CacheHitNsOp, r.CacheHitAllocsOp,
				r.QPS, r.P99, r.CacheHitRate, r.RPCsPerQuery, r.MaxRemoteHolders)
		}
	}

	if want("E18") {
		// Observability: tracing overhead at 1-in-100 sampling, the
		// shadow audit's MAPE vs ground truth, and the stitched
		// multi-node span tree of one forced cross-shard trace.
		r, err := experiments.E18TraceOverhead(pick(10_000, 20_000), 300,
			pick(8, 16), pick(250, 1000), 100)
		if err != nil {
			return err
		}
		if !em.emit("E18", r) {
			fmt.Println("== E18: query-path tracing overhead + continuous accuracy audit ==")
			fmt.Printf("baseline_qps=%.0f traced_qps=%.0f overhead=%.2f%% sampled=%d  trace: spans=%d nodes=%d partial_rpcs=%d  audit: samples=%d mape=%.4f truth=%.4f  slow_logged=%d\n\n",
				r.BaselineQPS, r.TracedQPS, r.OverheadPct, r.SampledTraces,
				r.TraceSpans, r.TraceNodes, r.PartialRPCSpans,
				r.AuditSamples, r.AuditMAPE, r.TruthMAPE, r.SlowLogged)
		}
	}

	if want("E19") {
		// Cluster introspection: a replica killed mid-ingest must show a
		// critical finding, then nonzero replication lag after a cold
		// revive, then a clean report after catch-up; plus what logging
		// and runtime sampling cost at serving speed.
		// perWorker stays high even at smoke scale: the overhead gate
		// compares two QPS readings of the same row, and sub-20ms
		// phases drown a ≤2% signal in scheduler noise.
		r, err := experiments.E19Introspection(pick(10_000, 20_000), 300,
			pick(4, 16), pick(20_000, 4_000))
		if err != nil {
			return err
		}
		if !em.emit("E19", r) {
			fmt.Println("== E19: cluster introspection plane (replication lag, findings, obs overhead) ==")
			fmt.Printf("victim=%s down_critical=%d lag: parts=%d peak=%d caught_up=%v  overhead: baseline_qps=%.0f obs_qps=%.0f drop=%.2f%% log_lines=%d dropped=%d\n\n",
				r.Victim, r.DownCritical, r.LagParts, r.LagPeak, r.CaughtUp,
				r.BaselineQPS, r.ObsQPS, r.OverheadPct, r.LogLines, r.LogDropped)
		}
	}

	if want("E20") {
		// Flight recorder: sampling overhead at an aggressive 100ms
		// period, then the induced-overload narrative — anomaly fired,
		// SLO critical, exactly one bundle per cooldown window, latency
		// ramp queryable at both history resolutions.
		// perWorker stays high even at smoke scale: the overhead gate
		// compares two QPS readings of the same row, and sub-20ms
		// phases drown a ≤2% signal in scheduler noise.
		r, err := experiments.E20FlightRecorder(pick(10_000, 20_000), 300,
			pick(4, 16), pick(20_000, 4_000))
		if err != nil {
			return err
		}
		if !em.emit("E20", r) {
			fmt.Println("== E20: flight recorder (history rings, anomaly detection, triggered bundles) ==")
			fmt.Printf("overhead: baseline_qps=%.0f flight_qps=%.0f drop=%.2f%% series=%d\n",
				r.BaselineQPS, r.FlightQPS, r.OverheadPct, r.Series)
			fmt.Printf("narrative: anomaly=%s z=%.1f slo_state=%d triggers=%d/%d suppressed=%d bundle_files=%d ramp=%.1fx hi=%d lo=%d exemplar=%s\n\n",
				r.AnomalyMetric, r.AnomalyZ, r.SLOState,
				r.TriggersFirstWindow, r.Triggers, r.Suppressed,
				r.BundleFiles, r.RampRatio, r.HiPoints, r.LoPoints, r.ExemplarTraceID)
		}
	}

	if want("E21") {
		// Chaos resilience: the hardened RPC plane's overhead with chaos
		// disarmed (per-query paired A/B latency ratio, CI-gated at
		// <=2%), then the armed narrative — blackholed + slow/flaky
		// peers, zero client-visible errors, honest degraded coverage,
		// breaker opens and re-closes after the rules clear.
		r, err := experiments.E21ChaosResilience(pick(8_000, 20_000),
			pick(4, 8), pick(600, 900))
		if err != nil {
			return err
		}
		if !em.emit("E21", r) {
			fmt.Println("== E21: chaos resilience (deadlines, retries, breakers, hedges, degradation) ==")
			fmt.Printf("overhead: baseline_qps=%.0f chaos_qps=%.0f drop=%.2f%% hedges=%d\n",
				r.BaselineQPS, r.ChaosQPS, r.OverheadPct, r.Hedges)
			fmt.Printf("narrative: queries=%d errors=%d degraded=%d coverage=[%.2f,%.2f] honesty_err=%.2f%% p99=%.0f->%.0fms retries=%d delayed=%d errored=%d blackholed=%d breaker_opened=%v reclosed=%v recover=%dms\n\n",
				r.Queries, r.ClientErrors, r.Degraded, r.MinCoverage, r.MaxCoverage,
				r.HonestyErrPct, r.BaseP99MS, r.ChaosP99MS, r.RPCRetries,
				r.Delayed, r.Errored, r.Blackholed,
				r.BreakerOpened, r.BreakerReclosed, r.RecoverMS)
		}
	}

	if want("E22") {
		// Elastic membership: the elastic plane's query-path overhead
		// with anti-entropy disarmed vs armed (paired A/B, CI-gated at
		// <=2%), then the narrative — a 3-node cluster grows to 5 and
		// retires a founding member under sustained queries + ingest
		// with zero errors and zero acked-row loss, and a deliberately
		// corrupted replica is healed back to bit-identical by the
		// background anti-entropy loop.
		r, err := experiments.E22ElasticMembership(pick(8_000, 20_000),
			pick(4, 8), pick(600, 900))
		if err != nil {
			return err
		}
		if !em.emit("E22", r) {
			fmt.Println("== E22: elastic membership (join/leave, rebalance, anti-entropy) ==")
			fmt.Printf("overhead: baseline_qps=%.0f elastic_qps=%.0f drop=%.2f%%\n",
				r.BaselineQPS, r.ElasticQPS, r.OverheadPct)
			fmt.Printf("narrative: queries=%d errors=%d p99=%.0fms joined=%d left=%d epoch=%d moved_parts=%d acked=%d loss=%d repairs=%d repair=%dms finding=%v\n\n",
				r.Queries, r.ClientErrors, r.QueryP99MS, r.Joined, r.Left,
				r.FinalEpoch, r.MovedParts, r.AckedRows, r.LossRows,
				r.Repairs, r.RepairMS, r.RepairFinding)
		}
	}

	if want("A1") {
		rows, err := experiments.A1Quanta(pick(10_000, 20_000), []float64{64, 225, 900})
		if err != nil {
			return err
		}
		if !em.emit("A1", anySlice(rows)...) {
			fmt.Println("== A1: quantisation granularity ablation ==")
			for _, r := range rows {
				fmt.Printf("spawn_dist=%-6.0f quanta=%-3.0f mape=%.3f pred_rate=%.2f\n",
					r.Param, r.Extra, r.MAPE, r.PredictionRate)
			}
			fmt.Println()
		}
	}

	if want("A2") {
		scores, err := experiments.A2ModelFamily(pick(10_000, 20_000))
		if err != nil {
			return err
		}
		if !em.emit("A2", scores) {
			fmt.Println("== A2: per-quantum model family ablation (CV RMSE on count queries) ==")
			for _, name := range []string{"linear", "quadratic", "knn", "boosted"} {
				fmt.Printf("%-10s rmse=%.1f\n", name, scores[name])
			}
			fmt.Println()
		}
	}

	if want("A3") {
		rows, err := experiments.A3Fallback(pick(10_000, 20_000), []float64{0.05, 0.1, 0.2, 0.5})
		if err != nil {
			return err
		}
		if !em.emit("A3", anySlice(rows)...) {
			fmt.Println("== A3: fallback threshold ablation ==")
			for _, r := range rows {
				fmt.Printf("threshold=%-5.2f mape=%.3f pred_rate=%.2f\n", r.Param, r.MAPE, r.PredictionRate)
			}
			fmt.Println()
		}
	}

	if want("A4") {
		rows, err := experiments.A4RankJoinBatch(pick(10_000, 50_000), []int{16, 64, 256})
		if err != nil {
			return err
		}
		if !em.emit("A4", anySlice(rows)...) {
			fmt.Println("== A4: rank-join batch size ablation ==")
			for _, r := range rows {
				fmt.Printf("batch=%-4.0f rows_read=%-8.0f time=%.4fs\n", r.Param, r.Extra, r.MAPE)
			}
			fmt.Println()
		}
	}

	if want("A5") {
		out, err := experiments.A5GeoRouting(pick(5_000, 10_000))
		if err != nil {
			return err
		}
		if !em.emit("A5", out) {
			fmt.Println("== A5: geo routing policy ablation (models on one edge only) ==")
			fmt.Printf("wan_bytes: core-only=%.0f peer-first=%.0f\n\n", out["core-only"], out["peer-first"])
		}
	}
	return em.err
}

// anySlice widens a typed row slice for emitter.emit's variadic any.
func anySlice[T any](rows []T) []any {
	out := make([]any, len(rows))
	for i, r := range rows {
		out[i] = r
	}
	return out
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
