// Command seaserve runs the SEA serving layer: it loads a synthetic
// clustered table, trains one or more SEA agents on a mixed analyst
// query stream, and serves the agent API over HTTP/JSON.
//
// Single-node mode (the default) serves internal/serve:
//
//	seaserve [-addr :8080] [-rows 20000] [-nodes 8] [-training 300]
//	         [-agents 1] [-workers 8] [-queue 256] [-tenant-inflight 64]
//
// Cluster mode joins a distributed serving cluster (internal/dist): a
// consistent-hash ring shards the query space across the members with
// R-way replication, exact answers scatter-gather across the data
// partitions, and replicas warm up by model-snapshot shipping. Every
// member runs the same command with its own -node-id:
//
//	seaserve -addr :8080 -node-id n0 -replicas 2 \
//	         -peers n0=http://host0:8080,n1=http://host1:8080,n2=http://host2:8080
//	seaserve -addr :8080 -node-id n1 -peers ... &   # on host1
//	seaserve -addr :8080 -node-id n2 -peers ... \
//	         -warm-from http://host0:8080           # ship n0's models in
//
// Every member loads the same deterministic synthetic dataset (same
// -rows/-seed) and keeps only the partitions the ring assigns it.
//
// Endpoints (both modes):
//
//	POST /v1/query    {"agg":"count","los":[20,20],"his":[30,30]}
//	GET  /healthz     liveness (also used by failover probing)
//
// Single-node adds POST /v1/explain and GET /v1/stats; cluster mode adds
// POST /v1/partial, GET /v1/snapshot and GET /v1/cluster.
//
// The process traps SIGINT/SIGTERM and shuts down gracefully: the
// listener stops accepting, in-flight queries drain (up to -drain), and
// the scheduler's workers exit cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/query"
	"repro/internal/serve"
	"repro/internal/workload"
	"repro/sea"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	rows := flag.Int("rows", 20_000, "synthetic rows to load")
	nodes := flag.Int("nodes", 8, "simulated cluster size (single-node mode)")
	training := flag.Int("training", 300, "training queries per agent")
	agents := flag.Int("agents", 1, "agent pool size (affinity-sharded)")
	workers := flag.Int("workers", 8, "serving worker goroutines")
	queue := flag.Int("queue", 256, "pending-query queue depth")
	tenantInflight := flag.Int("tenant-inflight", 64, "max in-flight queries per tenant")
	seed := flag.Int64("seed", 1, "data/workload RNG seed (must match across members)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
	nodeID := flag.String("node-id", "", "cluster member id (enables cluster mode)")
	peers := flag.String("peers", "", "cluster members as id=url,id=url,... (cluster mode)")
	replicas := flag.Int("replicas", dist.DefaultReplicas, "replication factor (cluster mode)")
	warmFrom := flag.String("warm-from", "", "peer URL to import agent snapshots from at start (cluster mode)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var err error
	if *nodeID != "" {
		err = runCluster(ctx, *addr, *nodeID, *peers, *replicas, *warmFrom,
			*rows, *training, *agents, *workers, *queue, *tenantInflight, *seed, *drain)
	} else {
		err = runSingle(ctx, *addr, *rows, *nodes, *training, *agents, *workers,
			*queue, *tenantInflight, *seed, *drain)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "seaserve:", err)
		os.Exit(1)
	}
}

func runSingle(ctx context.Context, addr string, rows, nodes, training, agents, workers, queue, tenantInflight int, seed int64, drain time.Duration) error {
	sys, err := sea.NewSystem(sea.SystemConfig{Nodes: nodes, Columns: []string{"x", "y", "z"}})
	if err != nil {
		return err
	}
	if err := sys.Load(workload.StandardRows(rows, seed)); err != nil {
		return err
	}
	log.Printf("loaded %d rows over %d nodes", sys.Rows(), nodes)

	if agents < 1 {
		agents = 1
	}
	pool := make([]*sea.Agent, agents)
	for i := range pool {
		ag, err := sys.NewAgent(sea.AgentConfig{Dims: 2, TrainingQueries: training, UseMapReduceOracle: true})
		if err != nil {
			return err
		}
		if err := pretrain(ag, training, seed+int64(i)); err != nil {
			return err
		}
		st := ag.Stats()
		log.Printf("agent %d trained: %d queries, %d quanta", i, st.Queries, st.Quanta)
		pool[i] = ag
	}

	srv, err := sea.NewServer(pool, sea.ServeOptions{
		Workers:        workers,
		QueueDepth:     queue,
		TenantInflight: tenantInflight,
	})
	if err != nil {
		return err
	}
	log.Printf("serving on %s (%d agents, %d workers, queue %d, tenant-inflight %d)",
		addr, agents, workers, queue, tenantInflight)
	return srv.Run(ctx, addr, drain)
}

func runCluster(ctx context.Context, addr, nodeID, peerList string, replicas int, warmFrom string, rows, training, agents, workers, queue, tenantInflight int, seed int64, drain time.Duration) error {
	peers, err := parsePeers(peerList)
	if err != nil {
		return err
	}
	agentCfg := core.DefaultConfig(2)
	agentCfg.TrainingQueries = training
	node, err := dist.NewNode(dist.Config{
		ID:             nodeID,
		Peers:          peers,
		Replicas:       replicas,
		Agents:         agents,
		Agent:          agentCfg,
		Workers:        workers,
		QueueDepth:     queue,
		TenantInflight: tenantInflight,
	})
	if err != nil {
		return err
	}
	node.Load(workload.StandardRows(rows, seed))
	st := node.Status()
	log.Printf("cluster member %s: %d/%d partitions, %d rows held, %d members, replicas=%d",
		nodeID, len(st.PartitionsHeld), st.PartitionsTotal, st.RowsHeld, len(st.Members), st.Replicas)
	if warmFrom != "" {
		shipped, err := node.WarmFrom(warmFrom)
		if err != nil {
			log.Printf("warm-up from %s failed (serving cold): %v", warmFrom, err)
		} else {
			log.Printf("warmed up from %s: %d snapshot bytes", warmFrom, shipped)
		}
	}

	log.Printf("cluster member %s serving on %s", nodeID, addr)
	context.AfterFunc(ctx, func() { log.Printf("shutting down (draining up to %v)", drain) })
	return serve.RunHTTP(ctx, addr, node.Handler(), drain, node.Close)
}

// parsePeers parses "n0=http://a:8080,n1=http://b:8080".
func parsePeers(s string) (map[string]string, error) {
	out := make(map[string]string)
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		id, url, ok := strings.Cut(kv, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want id=url)", kv)
		}
		out[id] = url
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster mode needs -peers id=url,...")
	}
	return out, nil
}

// pretrain feeds the agent a mixed analyst stream (count, avg, corr over
// the standard interest regions) so every aggregate family has warm
// models before traffic arrives.
func pretrain(ag *sea.Agent, training int, seed int64) error {
	streams := []*workload.QueryStream{
		workload.NewQueryStream(workload.NewRNG(seed), workload.DefaultRegions(2), query.Count),
		workload.NewQueryStream(workload.NewRNG(seed+100), workload.DefaultRegions(2), query.Avg),
		workload.NewQueryStream(workload.NewRNG(seed+200), workload.DefaultRegions(2), query.Corr),
	}
	streams[1].Col = 2
	streams[2].Col, streams[2].Col2 = 0, 2
	// Train past the configured training prefix so post-training
	// fallbacks have matured the per-quantum error estimates too.
	n := training + training/2
	for i := 0; i < n; i++ {
		if _, err := ag.Answer(streams[i%len(streams)].Next()); err != nil {
			return err
		}
	}
	return nil
}
