// Command seaserve runs the concurrent SEA serving layer: it loads a
// synthetic clustered table into the simulated BDAS, trains one or more
// SEA agents on a mixed analyst query stream, and serves the agent API
// over HTTP/JSON (internal/serve).
//
// Usage:
//
//	seaserve [-addr :8080] [-rows 20000] [-nodes 8] [-training 300]
//	         [-agents 1] [-workers 8] [-queue 256] [-tenant-inflight 64]
//
// Endpoints:
//
//	POST /v1/query    {"agg":"count","los":[20,20],"his":[30,30]}
//	POST /v1/explain  same body; piecewise-linear answer explanation
//	GET  /v1/stats    agent + serving counters (QPS, p50/p99, fallbacks)
//	GET  /healthz     liveness
//
// Example:
//
//	curl -s localhost:8080/v1/query -d '{"agg":"avg","col":2,"los":[20,20],"his":[30,30]}'
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/query"
	"repro/internal/workload"
	"repro/sea"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	rows := flag.Int("rows", 20_000, "synthetic rows to load")
	nodes := flag.Int("nodes", 8, "simulated cluster size")
	training := flag.Int("training", 300, "training queries per agent")
	agents := flag.Int("agents", 1, "agent pool size (affinity-sharded)")
	workers := flag.Int("workers", 8, "serving worker goroutines")
	queue := flag.Int("queue", 256, "pending-query queue depth")
	tenantInflight := flag.Int("tenant-inflight", 64, "max in-flight queries per tenant")
	seed := flag.Int64("seed", 1, "data/workload RNG seed")
	flag.Parse()

	if err := run(*addr, *rows, *nodes, *training, *agents, *workers, *queue, *tenantInflight, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "seaserve:", err)
		os.Exit(1)
	}
}

func run(addr string, rows, nodes, training, agents, workers, queue, tenantInflight int, seed int64) error {
	sys, err := sea.NewSystem(sea.SystemConfig{Nodes: nodes, Columns: []string{"x", "y", "z"}})
	if err != nil {
		return err
	}
	rng := workload.NewRNG(seed)
	data := workload.GaussianMixture(rng, rows, 3, workload.DefaultMixture(3), 0)
	workload.CorrelatedColumns(rng, data, 0, 2, 2, 5, 1)
	if err := sys.Load(data); err != nil {
		return err
	}
	log.Printf("loaded %d rows over %d nodes", sys.Rows(), nodes)

	if agents < 1 {
		agents = 1
	}
	pool := make([]*sea.Agent, agents)
	for i := range pool {
		ag, err := sys.NewAgent(sea.AgentConfig{Dims: 2, TrainingQueries: training, UseMapReduceOracle: true})
		if err != nil {
			return err
		}
		if err := pretrain(ag, training, seed+int64(i)); err != nil {
			return err
		}
		st := ag.Stats()
		log.Printf("agent %d trained: %d queries, %d quanta", i, st.Queries, st.Quanta)
		pool[i] = ag
	}

	srv, err := sea.NewServer(pool, sea.ServeOptions{
		Workers:        workers,
		QueueDepth:     queue,
		TenantInflight: tenantInflight,
	})
	if err != nil {
		return err
	}
	log.Printf("serving on %s (%d agents, %d workers, queue %d, tenant-inflight %d)",
		addr, agents, workers, queue, tenantInflight)
	return srv.ListenAndServe(addr)
}

// pretrain feeds the agent a mixed analyst stream (count, avg, corr over
// the standard interest regions) so every aggregate family has warm
// models before traffic arrives.
func pretrain(ag *sea.Agent, training int, seed int64) error {
	streams := []*workload.QueryStream{
		workload.NewQueryStream(workload.NewRNG(seed), workload.DefaultRegions(2), query.Count),
		workload.NewQueryStream(workload.NewRNG(seed+100), workload.DefaultRegions(2), query.Avg),
		workload.NewQueryStream(workload.NewRNG(seed+200), workload.DefaultRegions(2), query.Corr),
	}
	streams[1].Col = 2
	streams[2].Col, streams[2].Col2 = 0, 2
	// Train past the configured training prefix so post-training
	// fallbacks have matured the per-quantum error estimates too.
	n := training + training/2
	for i := 0; i < n; i++ {
		if _, err := ag.Answer(streams[i%len(streams)].Next()); err != nil {
			return err
		}
	}
	return nil
}
