// Command seaserve runs the SEA serving layer: it loads a synthetic
// clustered table, trains one or more SEA agents on a mixed analyst
// query stream, and serves the agent API over HTTP/JSON.
//
// Single-node mode (the default) serves internal/serve:
//
//	seaserve [-addr :8080] [-rows 20000] [-nodes 8] [-training 300]
//	         [-agents 1] [-workers 8] [-queue 256] [-tenant-inflight 64]
//
// Cluster mode joins a distributed serving cluster (internal/dist): a
// consistent-hash ring shards the query space across the members with
// R-way replication, exact answers scatter-gather across the data
// partitions, and replicas warm up by model-snapshot shipping. Every
// member runs the same command with its own -node-id:
//
//	seaserve -addr :8080 -node-id n0 -replicas 2 \
//	         -peers n0=http://host0:8080,n1=http://host1:8080,n2=http://host2:8080
//	seaserve -addr :8080 -node-id n1 -peers ... &   # on host1
//	seaserve -addr :8080 -node-id n2 -peers ... \
//	         -warm-from http://host0:8080           # ship n0's models in
//
// Every member loads the same deterministic synthetic dataset (same
// -rows/-seed) and keeps only the partitions the ring assigns it.
//
// Elastic membership: a new member can also join a RUNNING cluster
// without restarting anybody — instead of -peers it names any live
// member with -join and its own reachable URL with -advertise:
//
//	seaserve -addr :8080 -node-id n3 \
//	         -join http://host0:8080 -advertise http://host3:8080
//
// The joiner boots from the seed's membership view (partition count,
// replicas and vnodes all come from the cluster, so they cannot
// disagree), starts serving, and asks the seed to orchestrate the
// join: moving partitions are staged onto the newcomer, caught up
// through the WAL tail, and the cluster cuts over atomically to a new
// membership epoch that every wire body carries. A member retires
// gracefully via POST /v1/leave on any live member; its partitions
// migrate to the survivors before it drains. -anti-entropy arms the
// background replica-repair loop at the given cadence: replica holders
// compare Merkle-style content digests against each partition's
// primary and heal silent divergence by snapshot ship (repairs export
// as sea_antientropy_repairs_total and surface in /v1/debug/cluster).
//
// Cluster mode is also a live system: -data-dir enables the WAL-durable
// write path (POST /v1/ingest appends replicated, quorum-acked row
// batches; a restarted member replays its WAL and catches up the log
// tail from peers), -write-quorum sets the ack threshold, and
// -drift-budget/-requant-check tune the drift-aware online model
// maintenance.
//
// Observability (both modes): -trace-sample traces a fraction of
// queries into span trees (POST /v1/query?trace=1 forces one inline),
// -trace-ring bounds the debug ring behind GET /v1/debug/trace/<id>,
// -slow-query logs outliers to GET /v1/debug/slow, and -audit-sample
// shadow-audits model answers against exact ground truth (error
// histograms land in /v1/metrics).
//
// The introspection plane (both modes): -log-level selects the leveled
// JSON-line logging on stderr (debug|info|warn|error|off) and -log-rate
// caps its lines/sec (token bucket; suppressed lines are counted, the
// hot path pays one atomic load). -slo-latency arms the per-tenant-class
// SLO engine: multi-window burn rates against that p99 objective export
// as sea_slo_burn_rate / sea_slo_state in /v1/metrics. -runtime-sample
// sets the background runtime-telemetry period (heap, GC pauses,
// goroutines; sea_go_* gauges). -pprof mounts Go's net/http/pprof
// handlers under /debug/pprof/ — off by default, enable only on
// trusted networks. Cluster mode adds GET /v1/status (this member's
// introspection snapshot: ring, per-partition replication lag, cache,
// scheduler, SLO, runtime) and GET /v1/debug/cluster (fan-out to every
// peer with cross-checked health findings; -lag-threshold tunes when a
// lagging replica turns critical). cmd/seatop renders that aggregator
// as a live dashboard.
//
// The flight recorder (both modes): -flight samples every registered
// counter, gauge and key histogram quantile into in-memory ring
// buffers at two resolutions (~10 min at 1 s, ~6 h at 30 s) behind
// GET /v1/history?metric=&window=, and captures diagnostic bundles
// (goroutine dump, short CPU + heap profiles, trace rings, status
// snapshot) into a bounded spool (-flight-spool) when the SLO engine
// turns critical or -anomaly's robust z-score detector fires; browse
// them via GET /v1/debug/bundles and /v1/debug/bundle/<id>/<file>.
//
// Endpoints (both modes):
//
//	POST /v1/query    {"agg":"count","los":[20,20],"his":[30,30]}
//	GET  /v1/metrics  Prometheus text (QPS, per-path latency histograms,
//	                  ingest/drift gauges, audit error histograms,
//	                  SLO burn rates, runtime telemetry)
//	GET  /healthz     liveness (also used by failover probing)
//
// Single-node adds POST /v1/explain and GET /v1/stats; cluster mode adds
// POST /v1/ingest, /v1/replicate, /v1/walfetch, /v1/partial, /v1/join,
// /v1/leave, /v1/digest, GET /v1/snapshot, /v1/cluster, /v1/membership,
// /v1/status and /v1/debug/cluster.
//
// Flag combinations are validated at startup (replication factor vs
// cluster size, quorum vs replicas, cluster-only flags in single-node
// mode) and fail fast with a clear error instead of degrading silently.
//
// The process traps SIGINT/SIGTERM and shuts down gracefully: the
// listener stops accepting, in-flight queries drain (up to -drain), and
// the scheduler's workers exit cleanly.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/serve"
	"repro/internal/workload"
	"repro/sea"
)

// options is the parsed and validated flag set.
type options struct {
	addr           string
	rows           int
	nodes          int
	training       int
	agents         int
	workers        int
	queue          int
	tenantInflight int
	seed           int64
	answerCache    int
	drain          time.Duration
	nodeID         string
	peerList       string
	peers          map[string]string
	replicas       int
	warmFrom       string
	join           string
	advertise      string
	antiEntropy    time.Duration
	dataDir        string
	writeQuorum    int
	driftBudget    int
	requantCheck   time.Duration
	traceSample    float64
	traceRing      int
	slowQuery      time.Duration
	auditSample    float64
	logLevel       string
	logRate        float64
	sloLatency     time.Duration
	runtimeSample  time.Duration
	lagThreshold   uint64
	pprof          bool
	flight         bool
	flightSpool    string
	anomaly        bool
	// set records which flags were given explicitly (flag.Visit):
	// cluster-only flags with non-zero defaults (-replicas,
	// -requant-check) can only be rejected in single-node mode when we
	// know the user actually set them.
	set map[string]bool
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.IntVar(&o.rows, "rows", 20_000, "synthetic rows to load")
	flag.IntVar(&o.nodes, "nodes", 8, "simulated cluster size (single-node mode)")
	flag.IntVar(&o.training, "training", 300, "training queries per agent")
	flag.IntVar(&o.agents, "agents", 1, "agent pool size (affinity-sharded)")
	flag.IntVar(&o.workers, "workers", 8, "serving worker goroutines")
	flag.IntVar(&o.queue, "queue", 256, "pending-query queue depth")
	flag.IntVar(&o.tenantInflight, "tenant-inflight", 64, "max in-flight queries per tenant")
	flag.Int64Var(&o.seed, "seed", 1, "data/workload RNG seed (must match across members)")
	flag.IntVar(&o.answerCache, "answer-cache", dist.DefaultAnswerCache,
		"versioned answer-cache capacity in entries (0 disables)")
	flag.DurationVar(&o.drain, "drain", 10*time.Second, "graceful-shutdown drain deadline")
	flag.StringVar(&o.nodeID, "node-id", "", "cluster member id (enables cluster mode)")
	flag.StringVar(&o.peerList, "peers", "", "cluster members as id=url,id=url,... (cluster mode)")
	flag.IntVar(&o.replicas, "replicas", dist.DefaultReplicas, "replication factor (cluster mode)")
	flag.StringVar(&o.warmFrom, "warm-from", "", "peer URL to import agent snapshots from at start (cluster mode)")
	flag.StringVar(&o.join, "join", "", "live member URL to join a running cluster through (cluster mode; replaces -peers)")
	flag.StringVar(&o.advertise, "advertise", "", "this member's externally reachable URL (required with -join)")
	flag.DurationVar(&o.antiEntropy, "anti-entropy", 0, "background replica-repair cadence (cluster mode; 0 disables)")
	flag.StringVar(&o.dataDir, "data-dir", "", "WAL directory for the live write path (cluster mode; empty = no durability)")
	flag.IntVar(&o.writeQuorum, "write-quorum", 0, "owners that must apply an ingest batch before ack (cluster mode; 0 = majority of -replicas)")
	flag.IntVar(&o.driftBudget, "drift-budget", 200, "ingested rows a quantum absorbs before its models re-earn trust (0 = legacy wholesale invalidation)")
	flag.DurationVar(&o.requantCheck, "requant-check", 2*time.Second, "background drift-maintainer poll period (cluster mode; 0 disables re-quantisation)")
	flag.Float64Var(&o.traceSample, "trace-sample", 0, "fraction of queries to trace (0 disables sampling; ?trace=1 always works)")
	flag.IntVar(&o.traceRing, "trace-ring", 0, "finished traces kept for /v1/debug/trace (0 = default ring)")
	flag.DurationVar(&o.slowQuery, "slow-query", 0, "log queries slower than this to /v1/debug/slow (0 disables)")
	flag.Float64Var(&o.auditSample, "audit-sample", 0, "fraction of model-served answers to shadow-audit against exact truth (0 disables)")
	flag.StringVar(&o.logLevel, "log-level", "info", "structured JSON log level: debug|info|warn|error|off")
	flag.Float64Var(&o.logRate, "log-rate", 0, "max structured log lines/sec (token bucket; 0 = unlimited)")
	flag.DurationVar(&o.sloLatency, "slo-latency", 0, "per-tenant-class p99 latency objective; arms SLO burn-rate tracking (0 disables)")
	flag.DurationVar(&o.runtimeSample, "runtime-sample", 10*time.Second, "runtime telemetry sampling period (0 = on-demand only)")
	flag.Uint64Var(&o.lagThreshold, "lag-threshold", 0, "replication lag in batches before a /v1/debug/cluster finding turns critical (cluster mode; 0 = default 1)")
	flag.BoolVar(&o.pprof, "pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default; trusted networks only)")
	flag.BoolVar(&o.flight, "flight", false, "arm the flight recorder: in-memory metric history behind GET /v1/history plus triggered diagnostic bundles")
	flag.StringVar(&o.flightSpool, "flight-spool", "", "diagnostic-bundle spool directory (default: under the OS temp dir; requires -flight)")
	flag.BoolVar(&o.anomaly, "anomaly", false, "arm robust z-score anomaly detection over watched flight series (requires -flight)")
	flag.Parse()
	o.set = make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { o.set[f.Name] = true })

	if err := o.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "seaserve:", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var err error
	if o.nodeID != "" {
		err = runCluster(ctx, o)
	} else {
		err = runSingle(ctx, o)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "seaserve:", err)
		os.Exit(1)
	}
}

// validate fails fast on flag combinations that would otherwise degrade
// silently (a replication factor the cluster cannot honour, warm-up
// with nobody to warm from, durability flags outside cluster mode).
func (o *options) validate() error {
	if o.rows < 1 {
		return fmt.Errorf("-rows must be >= 1, got %d", o.rows)
	}
	if o.nodes < 1 {
		return fmt.Errorf("-nodes must be >= 1, got %d", o.nodes)
	}
	if o.training < 0 {
		return fmt.Errorf("-training must be >= 0, got %d", o.training)
	}
	if o.agents < 1 {
		return fmt.Errorf("-agents must be >= 1, got %d", o.agents)
	}
	if o.workers < 1 || o.queue < 1 {
		return fmt.Errorf("-workers and -queue must be >= 1, got %d and %d", o.workers, o.queue)
	}
	if o.driftBudget < 0 {
		return fmt.Errorf("-drift-budget must be >= 0, got %d", o.driftBudget)
	}
	if o.answerCache < 0 {
		return fmt.Errorf("-answer-cache must be >= 0, got %d", o.answerCache)
	}
	if o.traceSample < 0 || o.traceSample > 1 {
		return fmt.Errorf("-trace-sample must be in [0,1], got %g", o.traceSample)
	}
	if o.auditSample < 0 || o.auditSample > 1 {
		return fmt.Errorf("-audit-sample must be in [0,1], got %g", o.auditSample)
	}
	if o.traceRing < 0 {
		return fmt.Errorf("-trace-ring must be >= 0, got %d", o.traceRing)
	}
	if o.slowQuery < 0 {
		return fmt.Errorf("-slow-query must be >= 0, got %v", o.slowQuery)
	}
	if o.logRate < 0 {
		return fmt.Errorf("-log-rate must be >= 0, got %g", o.logRate)
	}
	if o.sloLatency < 0 {
		return fmt.Errorf("-slo-latency must be >= 0, got %v", o.sloLatency)
	}
	if o.runtimeSample < 0 {
		return fmt.Errorf("-runtime-sample must be >= 0, got %v", o.runtimeSample)
	}
	if !o.flight {
		if o.flightSpool != "" {
			return fmt.Errorf("-flight-spool requires -flight")
		}
		if o.anomaly {
			return fmt.Errorf("-anomaly requires -flight")
		}
	}

	cluster := o.nodeID != ""
	if !cluster {
		// Single-node mode: reject cluster-only flags instead of
		// silently ignoring them. Flags with non-zero defaults
		// (-replicas, -requant-check) count only when explicitly set.
		for flagName, set := range map[string]bool{
			"-peers":         o.peerList != "",
			"-warm-from":     o.warmFrom != "",
			"-data-dir":      o.dataDir != "",
			"-write-quorum":  o.writeQuorum != 0,
			"-replicas":      o.set["replicas"],
			"-requant-check": o.set["requant-check"],
			"-lag-threshold": o.lagThreshold != 0,
			"-join":          o.join != "",
			"-advertise":     o.advertise != "",
			"-anti-entropy":  o.antiEntropy != 0,
		} {
			if set {
				return fmt.Errorf("%s requires cluster mode (set -node-id)", flagName)
			}
		}
		return nil
	}

	if o.antiEntropy < 0 {
		return fmt.Errorf("-anti-entropy must be >= 0, got %v", o.antiEntropy)
	}
	if o.join != "" {
		// Elastic join: the cluster's shape (partition count, replicas,
		// vnodes, membership) comes from the seed's view, so static
		// cluster-shape flags are contradictions, not configuration.
		if o.advertise == "" {
			return fmt.Errorf("-join requires -advertise (this member's reachable URL)")
		}
		if o.peerList != "" {
			return fmt.Errorf("-join and -peers are mutually exclusive: the membership view comes from the seed")
		}
		if o.set["replicas"] {
			return fmt.Errorf("-replicas comes from the seed's view with -join")
		}
		if o.warmFrom != "" {
			return fmt.Errorf("-warm-from is redundant with -join: the join migration ships state in")
		}
		if o.writeQuorum < 0 {
			return fmt.Errorf("-write-quorum must be >= 0, got %d", o.writeQuorum)
		}
		o.peers = map[string]string{o.nodeID: o.advertise}
		return nil
	}
	if o.advertise != "" {
		return fmt.Errorf("-advertise requires -join")
	}
	peers, err := parsePeers(o.peerList)
	if err != nil {
		return err
	}
	o.peers = peers
	if _, ok := peers[o.nodeID]; !ok {
		return fmt.Errorf("-node-id %q is not listed in -peers (members: %s)",
			o.nodeID, strings.Join(peerIDs(peers), ", "))
	}
	if o.replicas < 1 {
		return fmt.Errorf("-replicas must be >= 1, got %d", o.replicas)
	}
	if o.replicas > len(peers) {
		return fmt.Errorf("-replicas %d exceeds the cluster size %d", o.replicas, len(peers))
	}
	if o.writeQuorum < 0 || o.writeQuorum > o.replicas {
		return fmt.Errorf("-write-quorum must be in [0, -replicas=%d], got %d", o.replicas, o.writeQuorum)
	}
	if o.warmFrom != "" {
		if len(peers) < 2 {
			return fmt.Errorf("-warm-from needs at least one peer besides this node")
		}
		if o.warmFrom == peers[o.nodeID] {
			return fmt.Errorf("-warm-from %q is this node's own URL", o.warmFrom)
		}
	}
	return nil
}

func peerIDs(peers map[string]string) []string {
	ids := make([]string, 0, len(peers))
	for id := range peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// newLogger builds the process logger from the -log-level / -log-rate
// flags (JSON lines on stderr).
func newLogger(o options) *obs.Logger {
	lg := obs.New(os.Stderr, obs.ParseLevel(o.logLevel))
	if o.logRate > 0 {
		burst := int(o.logRate)
		if burst < 1 {
			burst = 1
		}
		lg.SetRateLimit(o.logRate, burst)
	}
	return lg
}

func runSingle(ctx context.Context, o options) error {
	lg := newLogger(o)
	sys, err := sea.NewSystem(sea.SystemConfig{Nodes: o.nodes, Columns: []string{"x", "y", "z"}})
	if err != nil {
		return err
	}
	if err := sys.Load(workload.StandardRows(o.rows, o.seed)); err != nil {
		return err
	}
	lg.Info("loaded", "rows", sys.Rows(), "nodes", o.nodes)

	pool := make([]*sea.Agent, o.agents)
	for i := range pool {
		ag, err := sys.NewAgent(sea.AgentConfig{
			Dims: 2, TrainingQueries: o.training, UseMapReduceOracle: true,
			DriftRowBudget: o.driftBudget,
		})
		if err != nil {
			return err
		}
		if err := pretrain(ag, o.training, o.seed+int64(i)); err != nil {
			return err
		}
		st := ag.Stats()
		lg.Info("agent trained", "agent", i, "queries", st.Queries, "quanta", st.Quanta)
		pool[i] = ag
	}

	srv, err := sea.NewServer(pool, sea.ServeOptions{
		Workers:        o.workers,
		QueueDepth:     o.queue,
		TenantInflight: o.tenantInflight,
		AnswerCache:    o.answerCache,
		TraceSample:    o.traceSample,
		TraceRing:      o.traceRing,
		SlowQuery:      o.slowQuery,
		AuditSample:    o.auditSample,
	})
	if err != nil {
		return err
	}
	// Introspection plane: slow-query logging on the serving pool, SLO
	// burn-rate tracking, runtime telemetry, optional pprof.
	servePool := srv.Scheduler().Pool()
	servePool.SetLogger(lg)
	rec := servePool.Recorder()
	if o.sloLatency > 0 {
		slo := metrics.NewSLOEngine(rec, metrics.SLOConfig{LatencyObjective: o.sloLatency})
		slo.Start()
		defer slo.Stop()
		rec.SetSLO(slo)
	}
	sampler := obs.NewRuntimeSampler(o.runtimeSample)
	sampler.Register(rec)
	if o.runtimeSample > 0 {
		sampler.Start()
		defer sampler.Stop()
	}
	if o.pprof {
		srv.EnablePprof()
		lg.Warn("pprof endpoints mounted under /debug/pprof/ — do not expose publicly")
	}
	if o.flight {
		spool := o.flightSpool
		if spool == "" {
			spool = filepath.Join(os.TempDir(), "sea-flight", "local")
		}
		fr := flight.New(flight.Config{
			Node: "local", SpoolDir: spool, Anomaly: o.anomaly, Logger: lg,
			TracerFn: servePool.Tracer,
			StatusFn: func() any { return servePool.Stats() },
		})
		fr.Instrument(rec)
		fr.AddGauge("sched_queue_depth", func() float64 { return float64(srv.Scheduler().QueueDepth()) })
		fr.Watch("lat_p99_all", "queries", "errors", "rejected",
			"sea_go_goroutines", "sea_go_heap_alloc_bytes")
		srv.EnableFlight(fr)
		fr.Start()
		defer fr.Stop()
		lg.Info("flight recorder armed", "spool", spool, "anomaly", o.anomaly)
	}
	lg.Info("serving", "addr", o.addr, "agents", o.agents, "workers", o.workers,
		"queue", o.queue, "tenant_inflight", o.tenantInflight)
	return srv.Run(ctx, o.addr, o.drain)
}

func runCluster(ctx context.Context, o options) error {
	lg := newLogger(o)
	agentCfg := core.DefaultConfig(2)
	agentCfg.TrainingQueries = o.training
	agentCfg.DriftRowBudget = o.driftBudget
	var sloCfg *metrics.SLOConfig
	if o.sloLatency > 0 {
		sloCfg = &metrics.SLOConfig{LatencyObjective: o.sloLatency}
	}
	cfg := dist.Config{
		ID:             o.nodeID,
		Peers:          o.peers,
		Replicas:       o.replicas,
		Agents:         o.agents,
		Agent:          agentCfg,
		Workers:        o.workers,
		QueueDepth:     o.queue,
		TenantInflight: o.tenantInflight,
		DataDir:        o.dataDir,
		AnswerCache:    answerCacheConfig(o.answerCache),
		WriteQuorum:    o.writeQuorum,
		RequantCheck:   o.requantCheck,
		TraceSample:    o.traceSample,
		TraceRing:      o.traceRing,
		SlowQuery:      o.slowQuery,
		AuditSample:    o.auditSample,
		Logger:         lg,
		SLO:            sloCfg,
		RuntimeSample:  o.runtimeSample,
		LagThreshold:   o.lagThreshold,
		Pprof:          o.pprof,
		Flight:         o.flight,
		FlightSpool:    o.flightSpool,
		Anomaly:        o.anomaly,
		AntiEntropy:    o.antiEntropy,
	}
	if o.join != "" {
		// Boot from the seed's live view: partition count, replicas and
		// vnodes come from the cluster, so the joiner cannot disagree
		// with it. The joiner is not in that view yet — it holds nothing
		// until the seed orchestrates the join below.
		mr, err := dist.FetchMembership(o.join, 0)
		if err != nil {
			return fmt.Errorf("join: fetching membership from %s: %w", o.join, err)
		}
		cfg.InitialView = &mr.View
		cfg.Partitions = mr.Partitions
		cfg.Replicas = mr.Replicas
		cfg.VNodes = mr.VNodes
		lg.Info("booting from seed view", "seed", o.join, "epoch", mr.View.Epoch,
			"members", len(mr.View.Members), "partitions", mr.Partitions,
			"replicas", mr.Replicas)
	}
	node, err := dist.NewNode(cfg)
	if err != nil {
		return err
	}
	if err := node.Load(workload.StandardRows(o.rows, o.seed)); err != nil {
		return err
	}
	st := node.Status()
	lg.Info("cluster member up",
		"node", o.nodeID, "partitions_held", len(st.PartitionsHeld),
		"partitions_total", st.PartitionsTotal, "rows", st.RowsHeld,
		"members", len(st.Members), "replicas", st.Replicas,
		"data_version", node.DataVersion())
	if o.dataDir != "" && len(o.peers) > 1 {
		// Log-tail catch-up: close the gap this member missed while it
		// was down (best effort — a cold cluster has no tail to fetch).
		if fetched, err := node.CatchUp(); err != nil {
			lg.Warn("log-tail catch-up incomplete", "err", err)
		} else if fetched > 0 {
			lg.Info("caught up missed ingest batches", "batches", fetched)
		}
	}
	if o.warmFrom != "" {
		shipped, err := node.WarmFrom(o.warmFrom)
		if err != nil {
			lg.Warn("warm-up failed, serving cold", "donor", o.warmFrom, "err", err)
		} else {
			lg.Info("warmed up", "donor", o.warmFrom, "snapshot_bytes", shipped)
		}
	}
	if o.pprof {
		lg.Warn("pprof endpoints mounted under /debug/pprof/ — do not expose publicly")
	}

	lg.Info("serving", "node", o.nodeID, "addr", o.addr)
	runCtx := ctx
	if o.join != "" {
		// The seed stages partitions onto us over HTTP, so we must be
		// listening BEFORE the join RPC: wait for our own /healthz to
		// answer through the advertised URL, then ask the seed to
		// orchestrate. A failed join cancels the serve loop — a member
		// that never joined has nothing to serve.
		var cancel context.CancelCauseFunc
		runCtx, cancel = context.WithCancelCause(ctx)
		go func() {
			if err := joinCluster(o, lg); err != nil {
				cancel(err)
			}
		}()
	}
	context.AfterFunc(runCtx, func() { lg.Info("shutting down", "drain", o.drain) })
	err = serve.RunHTTP(runCtx, o.addr, node.Handler(), o.drain, node.Close)
	if cause := context.Cause(runCtx); cause != nil && !errors.Is(cause, context.Canceled) {
		return cause
	}
	return err
}

// joinCluster waits for this member's own /healthz to answer at the
// advertised URL, then asks the seed to orchestrate the join. The
// orchestration itself (snapshot ship + WAL catch-up + cutover) runs on
// the seed, so the POST's deadline is generous.
func joinCluster(o options, lg *obs.Logger) error {
	probe := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := probe.Get(o.advertise + "/healthz")
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("join: own /healthz never answered at %s (is -advertise reachable from this host?)", o.advertise)
		}
		time.Sleep(100 * time.Millisecond)
	}
	body, err := json.Marshal(dist.JoinRequest{ID: o.nodeID, URL: o.advertise})
	if err != nil {
		return err
	}
	hc := &http.Client{Timeout: 2 * time.Minute}
	resp, err := hc.Post(o.join+"/v1/join", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("join via %s: %w", o.join, err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("join via %s: HTTP %d: %s", o.join, resp.StatusCode, e.Error)
	}
	var out dist.JoinResponse
	_ = json.NewDecoder(resp.Body).Decode(&out)
	lg.Info("joined cluster", "seed", o.join, "epoch", out.View.Epoch,
		"members", len(out.View.Members), "moved_parts", out.Moved)
	return nil
}

// answerCacheConfig maps the flag's convention (0 = disabled) onto
// dist.Config's (0 = default, negative = disabled).
func answerCacheConfig(entries int) int {
	if entries == 0 {
		return -1
	}
	return entries
}

// parsePeers parses "n0=http://a:8080,n1=http://b:8080".
func parsePeers(s string) (map[string]string, error) {
	out := make(map[string]string)
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		id, url, ok := strings.Cut(kv, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want id=url)", kv)
		}
		out[id] = url
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster mode needs -peers id=url,...")
	}
	return out, nil
}

// pretrain feeds the agent a mixed analyst stream (count, avg, corr over
// the standard interest regions) so every aggregate family has warm
// models before traffic arrives.
func pretrain(ag *sea.Agent, training int, seed int64) error {
	streams := []*workload.QueryStream{
		workload.NewQueryStream(workload.NewRNG(seed), workload.DefaultRegions(2), query.Count),
		workload.NewQueryStream(workload.NewRNG(seed+100), workload.DefaultRegions(2), query.Avg),
		workload.NewQueryStream(workload.NewRNG(seed+200), workload.DefaultRegions(2), query.Corr),
	}
	streams[1].Col = 2
	streams[2].Col, streams[2].Col2 = 0, 2
	// Train past the configured training prefix so post-training
	// fallbacks have matured the per-quantum error estimates too.
	n := training + training/2
	for i := 0; i < n; i++ {
		if _, err := ag.Answer(streams[i%len(streams)].Next()); err != nil {
			return err
		}
	}
	return nil
}
