package main

import (
	"strings"
	"testing"
	"time"
)

func clusterOpts() options {
	return options{
		addr: ":0", rows: 1000, nodes: 4, training: 10, agents: 1,
		workers: 2, queue: 16, seed: 1, drain: time.Second,
		nodeID:   "n0",
		peerList: "n0=http://a:1,n1=http://b:1,n2=http://c:1",
		replicas: 2,
	}
}

func TestValidateAcceptsSaneConfigs(t *testing.T) {
	single := clusterOpts()
	single.nodeID, single.peerList, single.replicas = "", "", 2
	if err := single.validate(); err != nil {
		t.Fatalf("single-node config rejected: %v", err)
	}
	cl := clusterOpts()
	cl.dataDir = "/tmp/wal"
	cl.writeQuorum = 2
	cl.warmFrom = "http://b:1"
	if err := cl.validate(); err != nil {
		t.Fatalf("cluster config rejected: %v", err)
	}
}

func TestValidateFailsFast(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*options)
		want string
	}{
		{"replicas exceed cluster", func(o *options) { o.replicas = 5 }, "exceeds the cluster size"},
		{"node not in peers", func(o *options) { o.nodeID = "n9" }, "not listed in -peers"},
		{"quorum above replicas", func(o *options) { o.writeQuorum = 3 }, "-write-quorum"},
		{"bad peers entry", func(o *options) { o.peerList = "n0" }, "bad -peers entry"},
		{"warm-from self", func(o *options) { o.warmFrom = "http://a:1" }, "own URL"},
		{"zero rows", func(o *options) { o.rows = 0 }, "-rows"},
		{"negative drift budget", func(o *options) { o.driftBudget = -1 }, "-drift-budget"},
		{"peers without node-id", func(o *options) { o.nodeID = "" }, "requires cluster mode"},
		{"data-dir without cluster", func(o *options) { o.nodeID = ""; o.peerList = ""; o.dataDir = "/tmp/x" }, "requires cluster mode"},
		{"warm-from without peers", func(o *options) {
			o.peerList = "n0=http://a:1"
			o.warmFrom = "http://b:1"
			o.replicas = 1
		}, "at least one peer"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := clusterOpts()
			tc.mut(&o)
			err := o.validate()
			if err == nil {
				t.Fatalf("config accepted, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateRejectsExplicitClusterFlagsInSingleMode(t *testing.T) {
	for _, name := range []string{"replicas", "requant-check"} {
		o := clusterOpts()
		o.nodeID, o.peerList = "", ""
		o.set = map[string]bool{name: true}
		err := o.validate()
		if err == nil || !strings.Contains(err.Error(), "requires cluster mode") {
			t.Fatalf("explicitly-set -%s accepted in single-node mode: %v", name, err)
		}
	}
}
