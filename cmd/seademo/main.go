// Command seademo narrates the paper's Fig. 2 pipeline end to end on a
// small simulated BDAS: load clustered data, train the SEA agent by
// intercepting analyst queries, then answer data-lessly with error
// estimates, explain an answer, survive a base-data update, and print
// the cost ledger.
package main

import (
	"fmt"
	"os"

	"repro/internal/query"
	"repro/internal/workload"
	"repro/sea"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "seademo:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("SEA demo — data-less big data analytics (ICDCS'18 Fig. 2)")
	fmt.Println()

	sys, err := sea.NewSystem(sea.SystemConfig{
		Nodes:   8,
		Columns: []string{"x", "y", "z"},
	})
	if err != nil {
		return err
	}
	rng := workload.NewRNG(7)
	rows := workload.GaussianMixture(rng, 20_000, 3, workload.DefaultMixture(3), 0)
	workload.CorrelatedColumns(rng, rows, 0, 2, 2, 5, 1)
	if err := sys.Load(rows); err != nil {
		return err
	}
	fmt.Printf("loaded %d rows over %d simulated data nodes\n", sys.Rows(), 8)

	agent, err := sys.NewAgent(sea.AgentConfig{
		Dims: 2, TrainingQueries: 300, UseMapReduceOracle: true,
	})
	if err != nil {
		return err
	}

	qs := workload.NewQueryStream(workload.NewRNG(8), workload.DefaultRegions(2), query.Count)
	fmt.Println("\n-- training phase: 300 analyst queries pass through to the BDAS --")
	for i := 0; i < 300; i++ {
		if _, err := agent.Answer(qs.Next()); err != nil {
			return err
		}
	}
	st := agent.Stats()
	fmt.Printf("training cost: %v of virtual time, %d rows read, %d node-engagements\n",
		st.OracleCost.Time, st.OracleCost.RowsRead, st.OracleCost.NodesTouched)

	fmt.Println("\n-- prediction phase: answers come from models, zero base data --")
	for i := 0; i < 5; i++ {
		q := qs.Next()
		truth, _, err := sys.ExactCohort(q)
		if err != nil {
			return err
		}
		ans, err := agent.Answer(q)
		if err != nil {
			return err
		}
		src := "EXACT  "
		if ans.Predicted {
			src = "PREDICT"
		}
		fmt.Printf("%s count=%-8.0f truth=%-8.0f est_err=%-6.3f cost=%v\n",
			src, ans.Value, truth.Value, ans.EstError, ans.Cost.Time)
	}

	fmt.Println("\n-- explanation (RT4): how does the answer depend on subspace size? --")
	for i := 0; i < 50; i++ {
		q := qs.Next()
		ex, err := agent.Explain(q)
		if err != nil {
			continue
		}
		fmt.Printf("query at %v extent %.1f -> value %.0f (est err %.3f)\n",
			q.Select.Center1(), q.Select.Extent(), ex.Value, ex.EstError)
		fmt.Printf("  pieces: %d, breakpoints: %v\n", len(ex.Slopes), ex.Breakpoints)
		fmt.Printf("  sensitivity d(count)/d(centre) = %v\n", ex.Sensitivity)
		fmt.Printf("  what-if: extent %.1f -> %.0f ; extent %.1f -> %.0f (no queries issued)\n",
			ex.ExtentRange[0], ex.EvalExtent(ex.ExtentRange[0]),
			ex.ExtentRange[1], ex.EvalExtent(ex.ExtentRange[1]))
		break
	}

	fmt.Println("\n-- higher-level interrogation: subspaces where count > 150 --")
	dense := agent.SubspacesWhere(sea.Query{Aggregate: sea.Count}, 15, 85, 10, 6,
		func(v float64) bool { return v > 150 })
	fmt.Printf("found %d dense subspaces data-lessly\n", len(dense))

	fmt.Println("\n-- base-data update: models go on probation, then recover --")
	if _, err := sys.Table().Append(sea.Row{Key: 1 << 40, Vec: []float64{25, 25, 60}}); err != nil {
		return err
	}
	agent.NotifyDataChange(nil)
	exact, recovered := 0, 0
	for i := 0; i < 30; i++ {
		ans, err := agent.Answer(qs.Next())
		if err != nil {
			return err
		}
		if ans.Predicted {
			recovered++
		} else {
			exact++
		}
	}
	fmt.Printf("after update: %d forced exact answers, then %d predictions again\n", exact, recovered)

	st = agent.Stats()
	fmt.Printf("\nledger: %d queries, %.0f%% answered data-lessly; total virtual time %v (oracle share %v)\n",
		st.Queries, st.PredictionRate()*100, st.TotalCost.Time, st.OracleCost.Time)
	return nil
}
