// Command benchcheck compares two seabench -json outputs and fails
// (exit 1) when the new run's exact-path throughput has regressed
// beyond the allowed fraction. CI's bench-regression job runs it
// against the BENCH_<sha>.json artifact of the previous push, so a
// kernel regression fails the build instead of silently accumulating.
//
// Rows are matched by experiment + identity key (rows, selectivity,
// agg); the verdict is the geometric mean of the per-row new/base
// throughput ratios, which damps single-row CI noise while still
// catching a real across-the-board slowdown.
//
// Usage:
//
//	benchcheck -base BENCH_old.json -new BENCH_new.json \
//	    [-experiment E16] [-metric vec_mrows_s] [-max-drop 0.20]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
)

type line struct {
	Experiment string                 `json:"experiment"`
	Row        map[string]interface{} `json:"row"`
}

// load reads the metric per identity key from one seabench JSON stream.
func load(path, experiment, metric string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var l line
		if err := json.Unmarshal(raw, &l); err != nil {
			continue // tolerate non-JSON noise in the stream
		}
		if l.Experiment != experiment {
			continue
		}
		v, ok := l.Row[metric].(float64)
		if !ok || v <= 0 {
			continue
		}
		key := fmt.Sprintf("rows=%v/sel=%v/agg=%v", l.Row["rows"], l.Row["selectivity"], l.Row["agg"])
		out[key] = v
	}
	return out, sc.Err()
}

func main() {
	basePath := flag.String("base", "", "baseline seabench -json file")
	newPath := flag.String("new", "", "candidate seabench -json file")
	experiment := flag.String("experiment", "E16", "experiment id to compare")
	metric := flag.String("metric", "vec_mrows_s", "row field holding the throughput (higher = better)")
	maxDrop := flag.Float64("max-drop", 0.20, "maximum tolerated fractional throughput drop")
	flag.Parse()
	if *basePath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -base and -new are required")
		os.Exit(2)
	}

	base, err := load(*basePath, *experiment, *metric)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: read baseline: %v\n", err)
		os.Exit(2)
	}
	cand, err := load(*newPath, *experiment, *metric)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: read candidate: %v\n", err)
		os.Exit(2)
	}
	if len(base) == 0 {
		// First run after the experiment landed (or baseline predates
		// it): nothing to compare against — pass, the artifact becomes
		// the next baseline.
		fmt.Printf("benchcheck: no %s/%s rows in baseline %s; skipping comparison\n",
			*experiment, *metric, *basePath)
		return
	}
	if len(cand) == 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: candidate %s has no %s/%s rows\n",
			*newPath, *experiment, *metric)
		os.Exit(1)
	}

	var logSum float64
	var n int
	for key, b := range base {
		c, ok := cand[key]
		if !ok {
			fmt.Printf("benchcheck: %s: only in baseline, skipped\n", key)
			continue
		}
		ratio := c / b
		fmt.Printf("benchcheck: %s: base=%.1f new=%.1f ratio=%.3f\n", key, b, c, ratio)
		logSum += math.Log(ratio)
		n++
	}
	if n == 0 {
		fmt.Println("benchcheck: no comparable rows; skipping")
		return
	}
	geo := math.Exp(logSum / float64(n))
	floor := 1 - *maxDrop
	fmt.Printf("benchcheck: geomean ratio %.3f over %d rows (floor %.3f)\n", geo, n, floor)
	if geo < floor {
		fmt.Fprintf(os.Stderr, "benchcheck: FAIL: %s throughput regressed %.1f%% (> %.0f%% allowed)\n",
			*experiment, (1-geo)*100, *maxDrop*100)
		os.Exit(1)
	}
	fmt.Println("benchcheck: OK")
}
