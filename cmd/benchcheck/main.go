// Command benchcheck compares two seabench -json outputs and fails
// (exit 1) when the new run's tracked metric has regressed beyond the
// allowed fraction. CI's bench-regression job runs it against the
// BENCH_<sha>.json artifact of the previous push, so a kernel (or
// allocation) regression fails the build instead of silently
// accumulating.
//
// Rows are matched by experiment + identity key (rows, selectivity,
// agg); the verdict is the geometric mean of the per-row goodness
// ratios, which damps single-row CI noise while still catching a real
// across-the-board slowdown.
//
// By default the metric is higher-is-better throughput. With
// -lower-better the metric is a cost (e.g. allocs/op, where the
// steady-state target is exactly 0): zero values are admitted, each
// row's goodness ratio becomes (base+1)/(new+1), and the run fails
// when the geomean says the cost rose beyond -max-drop — so a fast
// path that regresses from 0 to 1 allocs/op halves its ratio and
// fails loudly.
//
// With -base-metric the baseline values are read from a DIFFERENT row
// field of the baseline file. Pointing -base and -new at the SAME file
// turns benchcheck into a within-run gate between two metrics of one
// row — e.g. the E18 tracing-overhead contract, where the traced QPS
// must stay within -max-drop of the untraced QPS measured in the same
// process seconds earlier:
//
//	benchcheck -base bench.json -new bench.json -experiment E18 \
//	    -base-metric baseline_qps -metric traced_qps -max-drop 0.05
//
// Usage:
//
//	benchcheck -base BENCH_old.json -new BENCH_new.json \
//	    [-experiment E16] [-metric vec_mrows_s] [-base-metric qps] \
//	    [-max-drop 0.20] [-lower-better]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
)

type line struct {
	Experiment string                 `json:"experiment"`
	Row        map[string]interface{} `json:"row"`
}

// load reads the metric per identity key from one seabench JSON stream.
// allowZero admits zero-valued rows (lower-is-better metrics like
// allocs/op sit exactly at zero when healthy).
func load(path, experiment, metric string, allowZero bool) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var l line
		if err := json.Unmarshal(raw, &l); err != nil {
			continue // tolerate non-JSON noise in the stream
		}
		if l.Experiment != experiment {
			continue
		}
		v, ok := l.Row[metric].(float64)
		if !ok || v < 0 || (v == 0 && !allowZero) {
			continue
		}
		key := fmt.Sprintf("rows=%v/sel=%v/agg=%v", l.Row["rows"], l.Row["selectivity"], l.Row["agg"])
		out[key] = v
	}
	return out, sc.Err()
}

func main() {
	basePath := flag.String("base", "", "baseline seabench -json file")
	newPath := flag.String("new", "", "candidate seabench -json file")
	experiment := flag.String("experiment", "E16", "experiment id to compare")
	metric := flag.String("metric", "vec_mrows_s", "row field holding the throughput (higher = better)")
	baseMetric := flag.String("base-metric", "",
		"row field to read from the baseline file (default: same as -metric; use with -base == -new for within-run gates)")
	maxDrop := flag.Float64("max-drop", 0.20, "maximum tolerated fractional regression")
	lowerBetter := flag.Bool("lower-better", false,
		"treat the metric as a cost (e.g. allocs/op): admit zero values and fail when it rises")
	flag.Parse()
	if *basePath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -base and -new are required")
		os.Exit(2)
	}

	bm := *baseMetric
	if bm == "" {
		bm = *metric
	}
	base, err := load(*basePath, *experiment, bm, *lowerBetter)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: read baseline: %v\n", err)
		os.Exit(2)
	}
	cand, err := load(*newPath, *experiment, *metric, *lowerBetter)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: read candidate: %v\n", err)
		os.Exit(2)
	}
	if len(base) == 0 {
		// First run after the experiment landed (or baseline predates
		// it): nothing to compare against — pass, the artifact becomes
		// the next baseline.
		fmt.Printf("benchcheck: no %s/%s rows in baseline %s; skipping comparison\n",
			*experiment, bm, *basePath)
		return
	}
	if len(cand) == 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: candidate %s has no %s/%s rows\n",
			*newPath, *experiment, *metric)
		os.Exit(1)
	}

	var logSum float64
	var n int
	for key, b := range base {
		c, ok := cand[key]
		if !ok {
			fmt.Printf("benchcheck: %s: only in baseline, skipped\n", key)
			continue
		}
		var ratio float64
		if *lowerBetter {
			// Goodness ratio for a cost metric, +1-smoothed so the
			// healthy value 0 divides cleanly.
			ratio = (b + 1) / (c + 1)
		} else {
			ratio = c / b
		}
		fmt.Printf("benchcheck: %s: base=%.2f new=%.2f ratio=%.3f\n", key, b, c, ratio)
		logSum += math.Log(ratio)
		n++
	}
	if n == 0 {
		fmt.Println("benchcheck: no comparable rows; skipping")
		return
	}
	geo := math.Exp(logSum / float64(n))
	floor := 1 - *maxDrop
	fmt.Printf("benchcheck: geomean ratio %.3f over %d rows (floor %.3f)\n", geo, n, floor)
	if geo < floor {
		what := "throughput"
		if *lowerBetter {
			what = *metric
		}
		fmt.Fprintf(os.Stderr, "benchcheck: FAIL: %s %s regressed %.1f%% (> %.0f%% allowed)\n",
			*experiment, what, (1-geo)*100, *maxDrop*100)
		os.Exit(1)
	}
	fmt.Println("benchcheck: OK")
}
