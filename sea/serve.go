package sea

// This file re-exports the concurrent serving layer (internal/serve):
// a bounded-concurrency scheduler with per-tenant admission control and
// an HTTP/JSON front-end over a pool of thread-safe agents. The
// underlying core.Agent is safe for concurrent use, so a single Agent
// may also be shared across goroutines directly; the serving layer adds
// overload protection, single-flight dedup of identical in-flight
// oracle fallbacks, and throughput/latency instrumentation.
//
// See cmd/seaserve for the runnable server binary and DESIGN.md for the
// serving architecture.

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/trace"
)

// Server is the HTTP/JSON serving front-end (see serve.Server).
type Server = serve.Server

// Scheduler bounds serving concurrency (see serve.Scheduler).
type Scheduler = serve.Scheduler

// Pool multiplexes queries over thread-safe agents (see serve.Pool).
type Pool = serve.Pool

// ServeSnapshot is the serving-layer health view (QPS, p50/p99,
// fallback rate).
type ServeSnapshot = metrics.ServeSnapshot

// Admission-control errors re-exported for callers that shed load.
var (
	ErrQueueFull       = serve.ErrQueueFull
	ErrTenantThrottled = serve.ErrTenantThrottled
)

// ServeOptions sizes the serving layer. Zero values take defaults
// (8 workers, queue depth 256, 64 in-flight queries per tenant).
type ServeOptions struct {
	// Workers is the worker-goroutine count.
	Workers int
	// QueueDepth bounds the shared pending queue.
	QueueDepth int
	// TenantInflight caps one tenant's concurrent queries (negative =
	// unlimited).
	TenantInflight int
	// AnswerCache, when positive, enables a bounded versioned answer
	// cache of roughly that many entries: repeated queries are served
	// without touching the agents, and any data-version advance
	// invalidates affected entries.
	AnswerCache int
	// TraceSample is the background trace-sampling fraction: roughly
	// this share of queries records a full span tree into the trace
	// ring (GET /v1/debug/trace/<id>). 0 disables background sampling;
	// ?trace=1 requests are always traced regardless.
	TraceSample float64
	// TraceRing bounds the retained finished traces (0 takes
	// trace.DefaultRing).
	TraceRing int
	// SlowQuery, when positive, logs every query slower than this into
	// the slow-query ring (GET /v1/debug/slow).
	SlowQuery time.Duration
	// AuditSample is the shadow-audit fraction: roughly this share of
	// model-served answers is re-evaluated exactly in the background,
	// recording predicted-vs-truth relative error into the accuracy
	// audit histograms on /v1/metrics. 0 disables shadow auditing.
	AuditSample float64
}

// TryPredict attempts the read-mostly fast path: answer q from a
// learned model without touching the oracle. ok is false when the agent
// would need the expensive exact path.
func (a *Agent) TryPredict(q Query) (Answer, bool) { return a.inner.TryPredict(q) }

// NewScheduler builds a bounded-concurrency scheduler over the given
// agents (typically one; more shard the query space by affinity hash).
func NewScheduler(agents []*Agent, opt ServeOptions) (*Scheduler, error) {
	if len(agents) == 0 {
		return nil, fmt.Errorf("sea: NewScheduler needs at least one agent")
	}
	cores := make([]*core.Agent, len(agents))
	for i, a := range agents {
		cores[i] = a.inner
	}
	pool, err := serve.NewPool(cores, nil)
	if err != nil {
		return nil, fmt.Errorf("sea: %w", err)
	}
	if opt.AnswerCache > 0 {
		pool.EnableCache(opt.AnswerCache)
	}
	// A tracer is always attached (even at sampling rate 0) so forced
	// ?trace=1 traces and the debug endpoints work out of the box.
	tracer := trace.NewTracer("local", opt.TraceRing)
	tracer.SetSampleRate(opt.TraceSample)
	if opt.SlowQuery > 0 {
		tracer.SetSlowThreshold(opt.SlowQuery)
	}
	pool.EnableTracing(tracer)
	if opt.AuditSample > 0 {
		every := int64(1)
		if opt.AuditSample < 1 {
			every = int64(math.Round(1 / opt.AuditSample))
		}
		pool.EnableShadowAudit(every, 0)
	}
	return serve.NewScheduler(pool, serve.SchedulerConfig{
		Workers:        opt.Workers,
		QueueDepth:     opt.QueueDepth,
		TenantInflight: opt.TenantInflight,
	}), nil
}

// NewServer builds the HTTP/JSON front-end over the given agents. The
// first agent's explanation engine backs /v1/explain.
func NewServer(agents []*Agent, opt ServeOptions) (*Server, error) {
	sched, err := NewScheduler(agents, opt)
	if err != nil {
		return nil, err
	}
	return serve.NewServer(sched, agents[0].explain), nil
}
