package sea_test

import (
	"sync"
	"testing"

	"repro/internal/query"
	"repro/internal/workload"
	"repro/sea"
)

func newLoadedSystem(t *testing.T, nRows int) *sea.System {
	t.Helper()
	sys, err := sea.NewSystem(sea.SystemConfig{Nodes: 4, Columns: []string{"x", "y", "z"}})
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.NewRNG(21)
	rows := workload.GaussianMixture(rng, nRows, 3, workload.DefaultMixture(3), 0)
	workload.CorrelatedColumns(rng, rows, 0, 2, 2, 5, 1)
	if err := sys.Load(rows); err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestAgentConcurrentPublicAPI hammers one shared public sea.Agent from
// 32 goroutines: the re-exported API must be race-free end to end.
func TestAgentConcurrentPublicAPI(t *testing.T) {
	sys := newLoadedSystem(t, 3_000)
	agent, err := sys.NewAgent(sea.AgentConfig{Dims: 2, TrainingQueries: 150, UseMapReduceOracle: true})
	if err != nil {
		t.Fatal(err)
	}
	qs := workload.NewQueryStream(workload.NewRNG(22), workload.DefaultRegions(2), query.Count)
	for i := 0; i < 220; i++ {
		if _, err := agent.Answer(qs.Next()); err != nil {
			t.Fatal(err)
		}
	}

	const clients = 32
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			cs := workload.NewQueryStream(workload.NewRNG(300+int64(c)), workload.DefaultRegions(2), query.Count)
			for i := 0; i < 25; i++ {
				q := cs.Next()
				if _, err := agent.Answer(q); err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				if _, ok := agent.TryPredict(q); ok {
					_ = agent.Stats()
				}
			}
		}(c)
	}
	wg.Wait()

	st := agent.Stats()
	if want := int64(220 + clients*25); st.Queries < want {
		t.Errorf("stats.Queries = %d, want >= %d", st.Queries, want)
	}
}

// TestNewSchedulerServesSharedAgent drives the re-exported serving
// layer: a scheduler over one trained agent, many concurrent tenants.
func TestNewSchedulerServesSharedAgent(t *testing.T) {
	sys := newLoadedSystem(t, 3_000)
	agent, err := sys.NewAgent(sea.AgentConfig{Dims: 2, TrainingQueries: 150, UseMapReduceOracle: true})
	if err != nil {
		t.Fatal(err)
	}
	qs := workload.NewQueryStream(workload.NewRNG(22), workload.DefaultRegions(2), query.Count)
	for i := 0; i < 220; i++ {
		if _, err := agent.Answer(qs.Next()); err != nil {
			t.Fatal(err)
		}
	}

	sched, err := sea.NewScheduler([]*sea.Agent{agent}, sea.ServeOptions{Workers: 4, QueueDepth: 64, TenantInflight: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()

	var wg sync.WaitGroup
	wg.Add(8)
	for c := 0; c < 8; c++ {
		go func(c int) {
			defer wg.Done()
			cs := workload.NewQueryStream(workload.NewRNG(400+int64(c)), workload.DefaultRegions(2), query.Count)
			for i := 0; i < 20; i++ {
				if _, err := sched.Answer("tenant", cs.Next()); err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	if _, err := sea.NewScheduler(nil, sea.ServeOptions{}); err == nil {
		t.Error("NewScheduler with no agents must fail")
	}
	if _, err := sea.NewServer(nil, sea.ServeOptions{}); err == nil {
		t.Error("NewServer with no agents must fail")
	}
}
