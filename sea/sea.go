// Package sea is the public API of the SEA reproduction: Scalable,
// Efficient, Accurate analytics via data-less query processing
// (Triantafillou, "Towards Intelligent Distributed Data Systems for
// Scalable Efficient and Accurate Analytics", ICDCS 2018).
//
// A System bundles a simulated Big Data Analytics Stack — cluster, a
// partitioned storage back-end, and both execution paradigms — and an
// Agent realises the paper's Fig. 2 pipeline on top of it: analytical
// queries are intercepted, an initial prefix trains per-quantum learned
// models, and subsequent queries are answered from the models without
// touching base data, with estimated errors and automatic exact fallback.
//
// Quickstart:
//
//	sys, _ := sea.NewSystem(sea.SystemConfig{Nodes: 8, Partitions: 16, Columns: []string{"x", "y"}})
//	_ = sys.Load(rows)
//	agent, _ := sys.NewAgent(sea.AgentConfig{Dims: 2, TrainingQueries: 300})
//	ans, _ := agent.Count(sea.Range([]float64{20, 20}, []float64{30, 30}))
//	fmt.Println(ans.Value, ans.Predicted, ans.EstError)
//
// See examples/ for runnable end-to-end scenarios and DESIGN.md for the
// full system inventory.
package sea

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/explain"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/storage"
)

// ErrNotLoaded is returned when an agent is requested before data is
// loaded.
var ErrNotLoaded = errors.New("sea: load data before creating agents")

// Row is one stored record: a key plus numeric attributes.
type Row = storage.Row

// Cost is the itemised execution cost of an operation.
type Cost = metrics.Cost

// Selection carves out a data subspace (range or radius form).
type Selection = query.Selection

// Query is a full analytical query.
type Query = query.Query

// Answer is the agent's reply (value, predicted?, estimated error, cost).
type Answer = core.Answer

// Explanation is a query-answer explanation (RT4).
type Explanation = explain.Explanation

// Aggregate kinds re-exported for query construction.
const (
	Count    = query.Count
	Sum      = query.Sum
	Avg      = query.Avg
	Var      = query.Var
	Corr     = query.Corr
	RegSlope = query.RegSlope
)

// Range builds a hyper-rectangle selection.
func Range(los, his []float64) Selection {
	return Selection{
		Los: append([]float64(nil), los...),
		His: append([]float64(nil), his...),
	}
}

// Radius builds a hyper-sphere selection.
func Radius(center []float64, r float64) Selection {
	return Selection{Center: append([]float64(nil), center...), Radius: r}
}

// SystemConfig sizes the simulated BDAS.
type SystemConfig struct {
	// Nodes is the cluster size (default 8).
	Nodes int
	// Partitions is the table partition count (default 2x nodes).
	Partitions int
	// Columns names the table's attributes.
	Columns []string
	// Cluster overrides the cost model (zero value = DefaultConfig).
	Cluster cluster.Config
}

// System is one simulated BDAS holding one table.
type System struct {
	cl    *cluster.Cluster
	eng   *engine.Engine
	table *storage.Table
	ex    *exec.Executor
}

// NewSystem builds an empty system.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.Nodes < 1 {
		cfg.Nodes = 8
	}
	if cfg.Partitions < 1 {
		cfg.Partitions = 2 * cfg.Nodes
	}
	if len(cfg.Columns) == 0 {
		return nil, fmt.Errorf("sea: SystemConfig.Columns required")
	}
	if cfg.Cluster == (cluster.Config{}) {
		cfg.Cluster = cluster.DefaultConfig()
	}
	cl := cluster.New(cfg.Nodes, cfg.Cluster)
	eng := engine.New(cl)
	tbl, err := storage.NewTable(cl, "data", cfg.Columns, cfg.Partitions)
	if err != nil {
		return nil, fmt.Errorf("sea: %w", err)
	}
	return &System{cl: cl, eng: eng, table: tbl}, nil
}

// Load bulk-loads rows and prepares the exact executors.
func (s *System) Load(rows []Row) error {
	if err := s.table.Load(rows); err != nil {
		return fmt.Errorf("sea: load: %w", err)
	}
	ex, err := exec.New(s.eng, s.table)
	if err != nil {
		return fmt.Errorf("sea: load: %w", err)
	}
	s.ex = ex
	return nil
}

// Rows returns the loaded row count.
func (s *System) Rows() int64 { return s.table.Rows() }

// Table exposes the underlying table (for advanced use: updates,
// operators from the internal packages).
func (s *System) Table() *storage.Table { return s.table }

// Engine exposes the execution engine.
func (s *System) Engine() *engine.Engine { return s.eng }

// Cluster exposes the simulated cluster.
func (s *System) Cluster() *cluster.Cluster { return s.cl }

// Executor exposes the exact executor (nil before Load).
func (s *System) Executor() *exec.Executor { return s.ex }

// ExactMapReduce answers q through the traditional full-stack path
// (paper Fig. 1).
func (s *System) ExactMapReduce(q Query) (query.Result, Cost, error) {
	if s.ex == nil {
		return query.Result{}, Cost{}, ErrNotLoaded
	}
	return s.ex.ExactMapReduce(q)
}

// ExactCohort answers q through the coordinator-cohort path (RT3.2).
func (s *System) ExactCohort(q Query) (query.Result, Cost, error) {
	if s.ex == nil {
		return query.Result{}, Cost{}, ErrNotLoaded
	}
	return s.ex.ExactCohort(q)
}

// AgentConfig tunes a data-less analytics agent. Zero values take the
// defaults of the underlying core.DefaultConfig.
type AgentConfig struct {
	// Dims is the selection dimensionality (required).
	Dims int
	// TrainingQueries is the training prefix length.
	TrainingQueries int
	// FallbackThreshold is the estimated-error bound for predictions.
	FallbackThreshold float64
	// UseMapReduceOracle trains through the Fig. 1 path when true
	// (default) or the cohort path when false.
	UseMapReduceOracle bool
	// DriftRowBudget enables incremental model maintenance under a live
	// write path: ingested rows update additive models in place and
	// stale quanta invalidate surgically instead of wholesale (see
	// core.Config.DriftRowBudget). 0 keeps the legacy behaviour.
	DriftRowBudget int
}

// Agent is the public handle of the SEA intelligent agent (Fig. 2).
type Agent struct {
	inner   *core.Agent
	explain *explain.Engine
	oracle  core.Oracle
}

// NewAgent builds a data-less analytics agent over the system.
func (s *System) NewAgent(cfg AgentConfig) (*Agent, error) {
	if s.ex == nil {
		return nil, ErrNotLoaded
	}
	cc := core.DefaultConfig(cfg.Dims)
	if cfg.TrainingQueries > 0 {
		cc.TrainingQueries = cfg.TrainingQueries
	}
	if cfg.FallbackThreshold > 0 {
		cc.FallbackThreshold = cfg.FallbackThreshold
	}
	if cfg.DriftRowBudget > 0 {
		cc.DriftRowBudget = cfg.DriftRowBudget
	}
	var oracle core.Oracle
	if cfg.UseMapReduceOracle {
		oracle = exec.MapReduceOracle{Ex: s.ex}
	} else {
		oracle = exec.CohortOracle{Ex: s.ex}
	}
	inner, err := core.NewAgent(oracle, cc)
	if err != nil {
		return nil, fmt.Errorf("sea: %w", err)
	}
	return &Agent{inner: inner, explain: explain.New(inner), oracle: oracle}, nil
}

// Answer processes one analytical query through the agent.
func (a *Agent) Answer(q Query) (Answer, error) { return a.inner.Answer(q) }

// Count answers COUNT over the selection.
func (a *Agent) Count(sel Selection) (Answer, error) {
	return a.inner.Answer(Query{Select: sel, Aggregate: Count})
}

// Average answers AVG(col) over the selection.
func (a *Agent) Average(sel Selection, col int) (Answer, error) {
	return a.inner.Answer(Query{Select: sel, Aggregate: Avg, Col: col})
}

// Sum answers SUM(col) over the selection.
func (a *Agent) Sum(sel Selection, col int) (Answer, error) {
	return a.inner.Answer(Query{Select: sel, Aggregate: Sum, Col: col})
}

// Correlation answers CORR(col, col2) over the selection.
func (a *Agent) Correlation(sel Selection, col, col2 int) (Answer, error) {
	return a.inner.Answer(Query{Select: sel, Aggregate: Corr, Col: col, Col2: col2})
}

// Slope answers the OLS slope of col2 on col over the selection.
func (a *Agent) Slope(sel Selection, col, col2 int) (Answer, error) {
	return a.inner.Answer(Query{Select: sel, Aggregate: RegSlope, Col: col, Col2: col2})
}

// Explain derives a query-answer explanation (RT4): a piecewise-linear
// model of answer vs subspace extent plus per-dimension sensitivities.
func (a *Agent) Explain(q Query) (*Explanation, error) { return a.explain.Explain(q) }

// Stats returns the agent's lifetime counters.
func (a *Agent) Stats() core.Stats { return a.inner.Stats() }

// NotifyDataChange invalidates models covering sel (nil = all).
func (a *Agent) NotifyDataChange(sel *Selection) { a.inner.NotifyDataChange(sel) }

// Inner exposes the underlying core agent for advanced composition
// (geo deployments, model export).
func (a *Agent) Inner() *core.Agent { return a.inner }

// Oracle exposes the agent's exact oracle (used by explanation-fidelity
// checks).
func (a *Agent) Oracle() core.Oracle { return a.oracle }

// SubspacesWhere scans a grid of candidate subspaces (centres on a step
// grid over [lo,hi]^dims with the given extent) and returns those whose
// predicted aggregate satisfies pred — the paper's flagship higher-level
// interrogation: "return the data subspaces where the correlation
// coefficient between attributes is greater than a threshold value"
// (RT4.1). Only model predictions are consulted: zero base-data access.
func (a *Agent) SubspacesWhere(q Query, lo, hi, step, extent float64, pred func(float64) bool) []Selection {
	dims := a.inner.Config().Dims
	var out []Selection
	center := make([]float64, dims)
	// Integer-indexed stepping: accumulating v += step drifts in
	// floating point and can skip the final grid point (hi itself).
	last := gridSteps(lo, hi, step)
	var rec func(d int)
	rec = func(d int) {
		if d == dims {
			sel := Radius(center, extent)
			qq := q
			qq.Select = sel
			if v, _, ok := a.inner.PredictOnly(qq); ok && pred(v) {
				out = append(out, sel)
			}
			return
		}
		for i := 0; i <= last; i++ {
			center[d] = lo + float64(i)*step
			rec(d + 1)
		}
	}
	rec(0)
	return out
}

// gridSteps returns the last index i such that lo + i*step <= hi (with a
// relative tolerance so hi itself is always included when (hi-lo) is an
// integral multiple of step), or -1 for an empty range (hi < lo): the
// grid then has no points at all. A non-positive step degenerates to the
// single point lo.
func gridSteps(lo, hi, step float64) int {
	if hi < lo {
		return -1
	}
	if step <= 0 {
		return 0
	}
	span := (hi - lo) / step
	return int(math.Floor(span + 1e-9*math.Max(1, span)))
}
