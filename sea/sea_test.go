package sea_test

import (
	"errors"
	"math"
	"testing"

	"repro/internal/query"
	"repro/internal/workload"
	"repro/sea"
)

func loadedSystem(t *testing.T, nRows int) *sea.System {
	t.Helper()
	sys, err := sea.NewSystem(sea.SystemConfig{
		Nodes:   4,
		Columns: []string{"x", "y", "z"},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.NewRNG(121)
	rows := workload.GaussianMixture(rng, nRows, 3, workload.DefaultMixture(3), 0)
	workload.CorrelatedColumns(rng, rows, 0, 2, 2, 5, 1)
	if err := sys.Load(rows); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := sea.NewSystem(sea.SystemConfig{}); err == nil {
		t.Error("missing columns accepted")
	}
	sys, err := sea.NewSystem(sea.SystemConfig{Columns: []string{"x"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.NewAgent(sea.AgentConfig{Dims: 1}); !errors.Is(err, sea.ErrNotLoaded) {
		t.Errorf("agent before load: err = %v", err)
	}
	if _, _, err := sys.ExactCohort(sea.Query{}); !errors.Is(err, sea.ErrNotLoaded) {
		t.Errorf("query before load: err = %v", err)
	}
}

func TestSelectionConstructors(t *testing.T) {
	r := sea.Range([]float64{0, 0}, []float64{1, 1})
	if r.IsRadius() || r.Dims() != 2 {
		t.Error("Range constructor wrong")
	}
	s := sea.Radius([]float64{1, 2}, 3)
	if !s.IsRadius() || s.Radius != 3 {
		t.Error("Radius constructor wrong")
	}
	// Constructors copy their inputs.
	base := []float64{0, 0}
	r2 := sea.Range(base, []float64{1, 1})
	base[0] = 99
	if r2.Los[0] != 0 {
		t.Error("Range aliases caller slice")
	}
}

func TestEndToEndAgentFlow(t *testing.T) {
	sys := loadedSystem(t, 8000)
	agent, err := sys.NewAgent(sea.AgentConfig{
		Dims: 2, TrainingQueries: 250, UseMapReduceOracle: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	qs := workload.NewQueryStream(workload.NewRNG(122), workload.DefaultRegions(2), query.Count)
	for i := 0; i < 250; i++ {
		if _, err := agent.Answer(qs.Next()); err != nil {
			t.Fatal(err)
		}
	}
	var predicted int
	for i := 0; i < 100; i++ {
		ans, err := agent.Answer(qs.Next())
		if err != nil {
			t.Fatal(err)
		}
		if ans.Predicted {
			predicted++
		}
	}
	if predicted == 0 {
		t.Fatal("agent never predicted through public API")
	}
	st := agent.Stats()
	if st.PredictionRate() == 0 {
		t.Error("stats show no predictions")
	}
}

func TestConvenienceAggregates(t *testing.T) {
	sys := loadedSystem(t, 4000)
	agent, err := sys.NewAgent(sea.AgentConfig{Dims: 2, TrainingQueries: 1})
	if err != nil {
		t.Fatal(err)
	}
	sel := sea.Range([]float64{15, 15}, []float64{35, 35})
	truthCount, _, err := sys.ExactCohort(sea.Query{Select: sel, Aggregate: sea.Count})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := agent.Count(sel)
	if err != nil {
		t.Fatal(err)
	}
	// With TrainingQueries=1, the second query may or may not predict;
	// either way an exact pass must agree with the executor.
	if !ans.Predicted && math.Abs(ans.Value-truthCount.Value) > 1e-9 {
		t.Errorf("Count = %v, truth %v", ans.Value, truthCount.Value)
	}
	if _, err := agent.Average(sel, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Sum(sel, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Correlation(sel, 0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Slope(sel, 0, 2); err != nil {
		t.Fatal(err)
	}
}

func TestExplainThroughFacade(t *testing.T) {
	sys := loadedSystem(t, 8000)
	agent, err := sys.NewAgent(sea.AgentConfig{Dims: 2, TrainingQueries: 300})
	if err != nil {
		t.Fatal(err)
	}
	qs := workload.NewQueryStream(workload.NewRNG(123), workload.DefaultRegions(2), query.Count)
	for i := 0; i < 400; i++ {
		if _, err := agent.Answer(qs.Next()); err != nil {
			t.Fatal(err)
		}
	}
	var explained bool
	for i := 0; i < 100 && !explained; i++ {
		q := qs.Next()
		ex, err := agent.Explain(q)
		if err != nil {
			continue
		}
		explained = true
		if len(ex.Slopes) == 0 {
			t.Error("explanation has no curve")
		}
	}
	if !explained {
		t.Error("no query could be explained")
	}
}

func TestSubspacesWhere(t *testing.T) {
	sys := loadedSystem(t, 8000)
	agent, err := sys.NewAgent(sea.AgentConfig{Dims: 2, TrainingQueries: 300})
	if err != nil {
		t.Fatal(err)
	}
	qs := workload.NewQueryStream(workload.NewRNG(124), workload.DefaultRegions(2), query.Count)
	for i := 0; i < 400; i++ {
		if _, err := agent.Answer(qs.Next()); err != nil {
			t.Fatal(err)
		}
	}
	// Higher-level interrogation: dense subspaces (count > 100) near the
	// trained interest regions.
	found := agent.SubspacesWhere(
		sea.Query{Aggregate: sea.Count},
		15, 85, 5, 6,
		func(v float64) bool { return v > 100 },
	)
	if len(found) == 0 {
		t.Error("no dense subspaces found; interrogation broken")
	}
	// Every reported subspace must really be dense (verified exactly).
	for _, sel := range found[:min(3, len(found))] {
		res, _, err := sys.ExactCohort(sea.Query{Select: sel, Aggregate: sea.Count})
		if err != nil {
			t.Fatal(err)
		}
		if res.Value < 40 {
			t.Errorf("subspace %v reported dense but holds %v", sel.Center, res.Value)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
