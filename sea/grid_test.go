package sea

import "testing"

// TestGridSteps pins the integer-indexed grid enumeration used by
// SubspacesWhere: float step accumulation (v += step) drifts and can
// skip the final grid point; index arithmetic must not.
func TestGridSteps(t *testing.T) {
	cases := []struct {
		lo, hi, step float64
		want         int // last index, i.e. points-1
	}{
		{0, 1, 0.1, 10},       // 0.1 is inexact: the classic drift case
		{0, 0.3, 0.1, 3},      // 0.1+0.1+0.1 > 0.3 in float64
		{20, 80, 7.5, 8},      // exact multiple
		{20, 80, 15, 4},       // exact multiple, integral step
		{0, 1, 0.3, 3},        // non-multiple: last point 0.9 <= 1
		{5, 5, 1, 0},          // degenerate range: just lo
		{1, 0, 1, -1},         // inverted range: empty grid
		{0, 1, 0, 0},          // zero step: degenerate single point
		{0, 10, 1e-1 * 7, 14}, // 0.7 steps: 14*0.7 = 9.8 <= 10
	}
	for _, c := range cases {
		if got := gridSteps(c.lo, c.hi, c.step); got != c.want {
			t.Errorf("gridSteps(%v, %v, %v) = %d, want %d", c.lo, c.hi, c.step, got, c.want)
		}
	}
}

// TestGridStepsCoversEndpoint sweeps many fractional steps and checks
// the enumerated grid always includes a point within half a step of hi
// when (hi-lo) is an integral multiple of step.
func TestGridStepsCoversEndpoint(t *testing.T) {
	for n := 1; n <= 200; n++ {
		lo, hi := 0.0, 3.0
		step := (hi - lo) / float64(n)
		if got := gridSteps(lo, hi, step); got != n {
			t.Errorf("n=%d: gridSteps = %d, want %d (endpoint skipped)", n, got, n)
		}
	}
}
