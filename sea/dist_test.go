package sea_test

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/workload"
	"repro/sea"
)

// TestClusterFacade drives the distributed cluster through the public
// sea API: boot 3 in-process members, answer the aggregate suite with
// results matching single-node evaluation, survive a member kill, and
// round-trip an agent snapshot.
func TestClusterFacade(t *testing.T) {
	rows := workload.StandardRows(3_000, 5)

	agentCfg := core.DefaultConfig(2)
	agentCfg.TrainingQueries = 1 << 30 // exact-only: every answer scatter-gathers
	lc, err := sea.StartLocalCluster(3, sea.ClusterConfig{Agent: agentCfg}, rows)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	client := lc.Client()

	qs := workload.NewQueryStream(workload.NewRNG(6), workload.DefaultRegions(2), query.Avg)
	qs.Col = 2
	for i := 0; i < 10; i++ {
		q := qs.Next()
		got, err := client.Answer(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		want := query.EvalRows(q, rows).Value
		if diff := got.Value - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("query %d: cluster %v, single-node %v", i, got.Value, want)
		}
	}

	lc.Kill(lc.IDs()[1])
	for i := 0; i < 10; i++ {
		if _, err := client.Answer(qs.Next()); err != nil {
			t.Fatalf("post-kill query %d: client-visible error: %v", i, err)
		}
	}

	if _, err := client.Status(); err != nil {
		t.Errorf("cluster status after kill: %v", err)
	}
}

func TestAgentSnapshotFacade(t *testing.T) {
	sys := loadedSystem(t, 2_000)
	ag, err := sys.NewAgent(sea.AgentConfig{Dims: 2, TrainingQueries: 40})
	if err != nil {
		t.Fatal(err)
	}
	qs := workload.NewQueryStream(workload.NewRNG(7), workload.DefaultRegions(2), query.Count)
	for i := 0; i < 60; i++ {
		if _, err := ag.Answer(qs.Next()); err != nil {
			t.Fatal(err)
		}
	}
	snap := ag.Snapshot()
	other, err := sys.NewAgent(sea.AgentConfig{Dims: 2, TrainingQueries: 40})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if got, want := other.Stats().Queries, ag.Stats().Queries; got != want {
		t.Errorf("restored agent counters %d, want donor's %d", got, want)
	}
	snap.Version++
	if err := other.RestoreSnapshot(snap); !errors.Is(err, core.ErrSnapshotVersion) {
		t.Errorf("version-bumped snapshot: err = %v, want ErrSnapshotVersion", err)
	}
}
