package sea

// This file re-exports the distributed serving cluster (internal/dist):
// a consistent-hash ring shards the query space and the data partitions
// across process-level HTTP/JSON nodes with R-way replication, exact
// answers scatter-gather the distributable aggregate kernels, replica
// failover masks dead nodes, and new replicas warm up by model-snapshot
// shipping. See cmd/seaserve for multi-node launch and DESIGN.md's
// "Distributed cluster" section for the architecture.

import (
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/storage"
)

// ClusterNode is one distributed serving member (see dist.Node).
type ClusterNode = dist.Node

// ClusterConfig describes a member (see dist.Config).
type ClusterConfig = dist.Config

// ClusterClient is the ring-aware failover client (see dist.Client).
type ClusterClient = dist.Client

// ClusterStatus is the /v1/cluster status body (see dist.ClusterStatus).
type ClusterStatus = dist.ClusterStatus

// Ring is the consistent-hash placement ring (see dist.Ring).
type Ring = dist.Ring

// LocalCluster runs N members in-process on loopback HTTP (tests,
// demos; see dist.LocalCluster).
type LocalCluster = dist.LocalCluster

// AgentSnapshot is the serialisable agent state used for model shipping
// (see core.AgentSnapshot).
type AgentSnapshot = core.AgentSnapshot

// NewClusterNode builds a cluster member. Load data into it, then serve
// its Handler().
func NewClusterNode(cfg ClusterConfig) (*ClusterNode, error) { return dist.NewNode(cfg) }

// NewClusterClient builds a ring-aware cluster client over the members
// (id -> base URL) with the given replication factor.
func NewClusterClient(members map[string]string, replicas int) *ClusterClient {
	return dist.NewClient(members, replicas, 0)
}

// StartLocalCluster boots n in-process members over rows.
func StartLocalCluster(n int, cfg ClusterConfig, rows []storage.Row) (*LocalCluster, error) {
	return dist.StartLocal(n, cfg, rows)
}

// Snapshot exports the agent's full learned state for model shipping.
func (a *Agent) Snapshot() *AgentSnapshot { return a.inner.Snapshot() }

// RestoreSnapshot replaces the agent's learned state with a shipped
// snapshot's; it fails (without touching the agent) on a version
// mismatch.
func (a *Agent) RestoreSnapshot(s *AgentSnapshot) error { return a.inner.Restore(s) }
