package sea

// This file re-exports the live data plane (internal/ingest + the
// cluster's replicated write path in internal/dist): streaming row
// ingestion with WAL durability, quorum-acknowledged replicated writes,
// and drift-aware online model maintenance (incremental per-quantum
// updates plus background re-quantisation with a double-buffered agent
// swap). See cmd/seaserve's -data-dir/-write-quorum flags and
// DESIGN.md's "Live data plane" section.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/ingest"
)

// WAL is a per-partition write-ahead log: sequenced row batches in
// CRC'd segment files with batched fsyncs (see ingest.Log).
type WAL = ingest.Log

// WALOptions tunes a WAL (segment size, fsync batching).
type WALOptions = ingest.Options

// WALEntry is one replayed WAL record.
type WALEntry = ingest.Entry

// OpenWAL opens (or creates) a write-ahead log rooted at dir.
func OpenWAL(dir string, opt WALOptions) (*WAL, error) { return ingest.Open(dir, opt) }

// DriftStatus is an agent's lifetime ingest/drift accounting.
type DriftStatus = core.DriftStatus

// AbsorbResult reports what one AbsorbRows call did.
type AbsorbResult = core.AbsorbResult

// DriftMaintainer watches a live agent's ingest pressure and
// re-quantises it in the background when incremental maintenance stops
// being enough (see ingest.Maintainer).
type DriftMaintainer = ingest.Maintainer

// DriftMaintainerConfig tunes a DriftMaintainer.
type DriftMaintainerConfig = ingest.MaintainerConfig

// IngestResponse summarises a cluster ingest batch (see
// dist.IngestResponse); ClusterClient.Ingest returns it.
type IngestResponse = dist.IngestResponse

// AbsorbRows folds an ingested row batch into the agent's maintenance
// state: with AgentConfig.DriftRowBudget > 0 additive models update in
// place and stale quanta invalidate surgically; otherwise every model
// goes on probation (legacy wholesale invalidation).
func (a *Agent) AbsorbRows(version int64, rows [][]float64) AbsorbResult {
	return a.inner.AbsorbRows(version, rows)
}

// Drift returns the agent's lifetime ingest/drift accounting.
func (a *Agent) Drift() DriftStatus { return a.inner.Drift() }

// Rebuild re-quantises the agent from the supplied query sample in the
// background and swaps the result in without blocking reads (requires a
// thread-safe oracle; see core.Agent.Rebuild).
func (a *Agent) Rebuild(queries []Query) error { return a.inner.Rebuild(queries) }

// NewDriftMaintainer builds a background drift maintainer over the
// agent.
func NewDriftMaintainer(a *Agent, cfg DriftMaintainerConfig) *DriftMaintainer {
	return ingest.NewMaintainer(a.inner, cfg)
}

// Ingest appends a batch of rows to the system's table online — one
// version bump per batch, so agent maintenance sees one data-version
// step per durable unit. Pair with Agent.AbsorbRows (incremental) or
// Agent.NotifyDataChange (legacy) to keep models honest.
func (s *System) Ingest(rows []Row) (Cost, error) {
	if s.ex == nil {
		return Cost{}, fmt.Errorf("sea: ingest before Load")
	}
	cost, err := s.table.AppendBatch(rows)
	if err != nil {
		return cost, fmt.Errorf("sea: ingest: %w", err)
	}
	return cost, nil
}
