package polystore

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/storage"
	"repro/internal/workload"
)

// buildSystems creates a table system (x per key) and a doc system (y per
// key) where y = f(key) with structure and x correlates with y through a
// shared key-driven trend.
func buildSystems(t *testing.T, n int) (*Analytics, map[uint64]float64, map[uint64]float64) {
	t.Helper()
	cl := cluster.New(4, cluster.DefaultConfig())
	tbl, err := storage.NewTable(cl, "entities", []string{"x"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.NewRNG(111)
	xs := make(map[uint64]float64, n)
	ys := make(map[uint64]float64, n)
	var rows []storage.Row
	for i := 0; i < n; i++ {
		key := uint64(i)
		trend := float64(i) * 0.01
		x := trend + rng.NormFloat64()*0.2
		y := 2*trend + 1 + rng.NormFloat64()*0.2
		xs[key] = x
		ys[key] = y
		rows = append(rows, storage.Row{Key: key, Vec: []float64{x}})
	}
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	a := New(cl, &TableSystem{Table: tbl, XCol: 0}, NewDocSystem(ys))
	return a, xs, ys
}

func exactCorr(xs, ys map[uint64]float64, lo, hi uint64) float64 {
	var xv, yv []float64
	for k, x := range xs {
		if k < lo || k > hi {
			continue
		}
		if y, ok := ys[k]; ok {
			xv = append(xv, x)
			yv = append(yv, y)
		}
	}
	// Pearson.
	n := float64(len(xv))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, syy, sxy float64
	for i := range xv {
		sx += xv[i]
		sy += yv[i]
		sxx += xv[i] * xv[i]
		syy += yv[i] * yv[i]
		sxy += xv[i] * yv[i]
	}
	num := n*sxy - sx*sy
	den := math.Sqrt(n*sxx-sx*sx) * math.Sqrt(n*syy-sy*sy)
	if den == 0 {
		return 0
	}
	return num / den
}

func TestShipDataExact(t *testing.T) {
	a, xs, ys := buildSystems(t, 2000)
	got, cost, err := a.ShipData(0, 1999)
	if err != nil {
		t.Fatal(err)
	}
	want := exactCorr(xs, ys, 0, 1999)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("ShipData corr = %v, want %v", got, want)
	}
	if cost.BytesLAN < 2000*16 {
		t.Errorf("ShipData moved only %d bytes", cost.BytesLAN)
	}
}

func TestShipPairsExactAndCheaper(t *testing.T) {
	a, xs, ys := buildSystems(t, 2000)
	got, cost, err := a.ShipPairs(100, 300)
	if err != nil {
		t.Fatal(err)
	}
	want := exactCorr(xs, ys, 100, 300)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("ShipPairs corr = %v, want %v", got, want)
	}
	_, fullCost, err := a.ShipData(100, 300)
	if err != nil {
		t.Fatal(err)
	}
	if cost.BytesLAN >= fullCost.BytesLAN {
		t.Errorf("ShipPairs bytes %d >= ShipData %d", cost.BytesLAN, fullCost.BytesLAN)
	}
}

func TestShipModelApproximatesCheaply(t *testing.T) {
	a, xs, ys := buildSystems(t, 2000)
	got, cost, err := a.ShipModel(0, 1999, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := exactCorr(xs, ys, 0, 1999)
	// The trend dominates, so the model-based correlation should land
	// near the truth.
	if math.Abs(got-want) > 0.15 {
		t.Errorf("ShipModel corr = %v, truth %v", got, want)
	}
	// Bytes: model ≪ pairs ≪ data.
	_, pairCost, err := a.ShipPairs(0, 1999)
	if err != nil {
		t.Fatal(err)
	}
	if cost.BytesLAN*10 >= pairCost.BytesLAN {
		t.Errorf("ShipModel bytes %d not ≪ pairs %d", cost.BytesLAN, pairCost.BytesLAN)
	}
}

func TestCompareStrategies(t *testing.T) {
	// Ship-pairs beats ship-data only on selective ranges: compare on a
	// quarter of the key space.
	a, _, _ := buildSystems(t, 2000)
	vals, bytes, err := a.CompareStrategies(0, 499, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ship-data", "ship-pairs", "ship-model"} {
		if _, ok := vals[name]; !ok {
			t.Fatalf("missing strategy %q", name)
		}
	}
	if !(bytes["ship-model"] < bytes["ship-pairs"] && bytes["ship-pairs"] < bytes["ship-data"]) {
		t.Errorf("byte ordering wrong: %v", bytes)
	}
}

func TestCrossSystemWAN(t *testing.T) {
	a, _, _ := buildSystems(t, 500)
	a.CrossSystemWAN = true
	_, cost, err := a.ShipData(0, 499)
	if err != nil {
		t.Fatal(err)
	}
	if cost.BytesWAN == 0 {
		t.Error("WAN mode moved no WAN bytes")
	}
}

func TestNoOverlap(t *testing.T) {
	cl := cluster.New(1, cluster.DefaultConfig())
	tbl, _ := storage.NewTable(cl, "t", []string{"x"}, 1)
	if err := tbl.Load([]storage.Row{{Key: 1, Vec: []float64{1}}}); err != nil {
		t.Fatal(err)
	}
	a := New(cl, &TableSystem{Table: tbl, XCol: 0}, NewDocSystem(map[uint64]float64{99: 1}))
	if _, _, err := a.ShipPairs(0, 10); !errors.Is(err, ErrNoOverlap) {
		t.Errorf("err = %v, want ErrNoOverlap", err)
	}
}

func TestDocSystemBasics(t *testing.T) {
	d := NewDocSystem(map[uint64]float64{1: 2, 3: 4})
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
	if v, ok := d.Get(3); !ok || v != 4 {
		t.Errorf("Get(3) = %v, %v", v, ok)
	}
	if _, ok := d.Get(9); ok {
		t.Error("Get(9) should miss")
	}
	if _, err := NewDocSystem(nil).TrainModel(3); !errors.Is(err, ErrNoOverlap) {
		t.Error("empty TrainModel should fail")
	}
}
