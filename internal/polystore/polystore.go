// Package polystore implements RT1.5 (multi-system analytics): analytics
// operators spanning data held in different constituent systems of a
// polystore. The running example is cross-system correlation: entity
// attribute x lives in a relational table system, attribute y in a
// document system, joined on entity key.
//
// Three execution strategies reproduce the paper's contrast ("instead of
// migrating large volumes of data between constituent systems, either (i)
// only approximate results of performing operators on the local data are
// sent, or (ii) the models themselves are migrated"):
//
//   - ShipData: the status quo — every (key, y) pair crosses systems.
//   - ShipPairs: only pairs for keys inside the queried subspace cross.
//   - ShipModel: the document system ships a compact learned model of
//     y over the key space; the table system evaluates it locally and
//     never sees a single y value (data-less, P2 applied across systems).
package polystore

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/storage"
)

// ErrNoOverlap is returned when the two systems share no keys in the
// queried subspace.
var ErrNoOverlap = errors.New("polystore: no overlapping keys")

// TableSystem holds entity attribute x (column xCol of its table).
type TableSystem struct {
	// Table is the relational store.
	Table *storage.Table
	// XCol is the attribute column.
	XCol int
}

// DocSystem holds entity attribute y keyed by entity.
type DocSystem struct {
	docs map[uint64]float64
	keys []uint64 // sorted key universe, for model fitting
}

// NewDocSystem builds a document store from (key, y) pairs.
func NewDocSystem(pairs map[uint64]float64) *DocSystem {
	d := &DocSystem{docs: make(map[uint64]float64, len(pairs))}
	for k, v := range pairs {
		d.docs[k] = v
		d.keys = append(d.keys, k)
	}
	sort.Slice(d.keys, func(i, j int) bool { return d.keys[i] < d.keys[j] })
	return d
}

// Len returns the document count.
func (d *DocSystem) Len() int { return len(d.docs) }

// Get returns the y value for key.
func (d *DocSystem) Get(key uint64) (float64, bool) {
	v, ok := d.docs[key]
	return v, ok
}

// TrainModel fits a segmented-regression model y = f(key) with the given
// number of pieces — the migratable model of RT1.5(ii). It works when y
// has structure over the key space (e.g. time-ordered keys).
func (d *DocSystem) TrainModel(segments int) (*ml.SegmentedRegression, error) {
	if len(d.keys) == 0 {
		return nil, ErrNoOverlap
	}
	xs := make([]float64, len(d.keys))
	ys := make([]float64, len(d.keys))
	for i, k := range d.keys {
		xs[i] = float64(k)
		ys[i] = d.docs[k]
	}
	sr := &ml.SegmentedRegression{Segments: segments, MinPoints: 4}
	if err := sr.Fit(xs, ys); err != nil {
		return nil, fmt.Errorf("polystore model: %w", err)
	}
	return sr, nil
}

// Analytics runs cross-system correlation queries.
type Analytics struct {
	cl *cluster.Cluster
	ts *TableSystem
	ds *DocSystem
	// CrossSystemWAN charges inter-system transfers as WAN when true
	// (multi-datacentre polystores); LAN otherwise.
	CrossSystemWAN bool
}

// New builds the analytics coordinator.
func New(cl *cluster.Cluster, ts *TableSystem, ds *DocSystem) *Analytics {
	return &Analytics{cl: cl, ts: ts, ds: ds}
}

func (a *Analytics) transfer(bytes int64) metrics.Cost {
	if a.CrossSystemWAN {
		return a.cl.TransferWAN(bytes)
	}
	return a.cl.TransferLAN(bytes)
}

// tableRows returns the (key, x) pairs whose keys fall in [loKey, hiKey],
// charging the scan.
func (a *Analytics) tableRows(loKey, hiKey uint64) (map[uint64]float64, metrics.Cost, error) {
	out := make(map[uint64]float64)
	var total metrics.Cost
	for p := 0; p < a.ts.Table.Partitions(); p++ {
		rows, c, err := a.ts.Table.ScanPartition(p)
		total = total.Merge(c)
		if err != nil {
			return nil, total, fmt.Errorf("polystore scan: %w", err)
		}
		for _, r := range rows {
			if r.Key >= loKey && r.Key <= hiKey && a.ts.XCol < len(r.Vec) {
				out[r.Key] = r.Vec[a.ts.XCol]
			}
		}
	}
	return out, total, nil
}

// corr computes the Pearson correlation over paired values.
func corr(xs, ys []float64) float64 {
	return ml.Correlation(xs, ys)
}

// ShipData answers corr(x, y) over keys in [loKey, hiKey] by shipping
// the document system's ENTIRE (key, y) set to the table system — the
// migrate-everything baseline.
func (a *Analytics) ShipData(loKey, hiKey uint64) (float64, metrics.Cost, error) {
	xvals, total, err := a.tableRows(loKey, hiKey)
	if err != nil {
		return 0, total, err
	}
	// All docs cross the system boundary.
	total = total.Add(a.transfer(int64(a.ds.Len()) * 16))
	var xs, ys []float64
	for _, k := range a.ds.keys {
		if x, ok := xvals[k]; ok {
			xs = append(xs, x)
			ys = append(ys, a.ds.docs[k])
		}
	}
	if len(xs) == 0 {
		return 0, total, ErrNoOverlap
	}
	return corr(xs, ys), total, nil
}

// ShipPairs ships only the pairs for keys inside the queried range —
// RT1.5(i): only (partial) operator results cross systems.
func (a *Analytics) ShipPairs(loKey, hiKey uint64) (float64, metrics.Cost, error) {
	xvals, total, err := a.tableRows(loKey, hiKey)
	if err != nil {
		return 0, total, err
	}
	// The table system sends the key list (8B/key); the doc system
	// returns matched (key, y) pairs (16B each).
	total = total.Add(a.transfer(int64(len(xvals)) * 8))
	var xs, ys []float64
	for k, x := range xvals {
		if y, ok := a.ds.Get(k); ok {
			xs = append(xs, x)
			ys = append(ys, y)
		}
	}
	total = total.Add(a.transfer(int64(len(xs)) * 16))
	if len(xs) == 0 {
		return 0, total, ErrNoOverlap
	}
	return corr(xs, ys), total, nil
}

// ShipModel ships a compact learned model of y(key) across the boundary
// instead of any data — RT1.5(ii). The answer is approximate; the cost
// is a few dozen bytes regardless of data size.
func (a *Analytics) ShipModel(loKey, hiKey uint64, segments int) (float64, metrics.Cost, error) {
	xvals, total, err := a.tableRows(loKey, hiKey)
	if err != nil {
		return 0, total, err
	}
	model, err := a.ds.TrainModel(segments)
	if err != nil {
		return 0, total, err
	}
	// Model size: 2 float64 per piece + breakpoints.
	slopes, _ := model.Pieces()
	modelBytes := int64(8 * (2*len(slopes) + len(model.Breakpoints())))
	total = total.Add(a.transfer(modelBytes))
	var xs, ys []float64
	for k, x := range xvals {
		xs = append(xs, x)
		ys = append(ys, model.Predict(float64(k)))
	}
	if len(xs) == 0 {
		return 0, total, ErrNoOverlap
	}
	return corr(xs, ys), total, nil
}

// CompareStrategies runs all three strategies over the same key range
// and returns (value, bytes-moved) per strategy name plus the exact
// reference value — one E12 row.
func (a *Analytics) CompareStrategies(loKey, hiKey uint64, segments int) (map[string]float64, map[string]int64, error) {
	vals := make(map[string]float64, 3)
	bytes := make(map[string]int64, 3)
	v, c, err := a.ShipData(loKey, hiKey)
	if err != nil {
		return nil, nil, err
	}
	vals["ship-data"] = v
	bytes["ship-data"] = c.BytesLAN + c.BytesWAN
	v, c, err = a.ShipPairs(loKey, hiKey)
	if err != nil {
		return nil, nil, err
	}
	vals["ship-pairs"] = v
	bytes["ship-pairs"] = c.BytesLAN + c.BytesWAN
	v, c, err = a.ShipModel(loKey, hiKey, segments)
	if err != nil {
		return nil, nil, err
	}
	vals["ship-model"] = v
	bytes["ship-model"] = c.BytesLAN + c.BytesWAN
	return vals, bytes, nil
}

// AbsError returns |a - b| (helper for E12 reporting).
func AbsError(a, b float64) float64 { return math.Abs(a - b) }
