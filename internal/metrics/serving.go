package metrics

import (
	"sort"
	"sync"
	"time"
)

// ServeSnapshot is a point-in-time view of serving-layer health: the
// throughput/latency/fallback numbers the serving subsystem exposes over
// its stats endpoint. Unlike Cost (virtual simulator units), these are
// wall-clock measurements of the real process.
type ServeSnapshot struct {
	// Queries is the number of answered queries
	// (predicted + fallbacks + deduped).
	Queries int64 `json:"queries"`
	// Predicted is how many were answered from learned models.
	Predicted int64 `json:"predicted"`
	// Fallbacks is how many executed the expensive exact-oracle path
	// themselves (one per actual oracle run).
	Fallbacks int64 `json:"fallbacks"`
	// Deduped is how many were answered by sharing another identical
	// in-flight fallback's result (single-flight hits): they count
	// toward Queries but not Fallbacks, so FallbackRate tracks real
	// oracle executions.
	Deduped int64 `json:"deduped"`
	// CacheHits is how many were served straight from the versioned
	// answer cache without touching an agent. They count toward
	// Queries but toward neither Predicted nor Fallbacks.
	CacheHits int64 `json:"cache_hits"`
	// Rejected is how many submissions admission control turned away.
	Rejected int64 `json:"rejected"`
	// Errors is how many queries failed.
	Errors int64 `json:"errors"`
	// IngestBatches/IngestRows count row batches applied through the
	// live data plane's write path.
	IngestBatches int64 `json:"ingest_batches"`
	IngestRows    int64 `json:"ingest_rows"`
	// DriftInvalidations counts quanta whose models were invalidated by
	// the ingest drift budget (incremental maintenance events).
	DriftInvalidations int64 `json:"drift_invalidations"`
	// Rebuilds counts completed background re-quantisations.
	Rebuilds int64 `json:"rebuilds"`
	// QPS is Queries divided by the uptime.
	QPS float64 `json:"qps"`
	// FallbackRate is Fallbacks / Queries.
	FallbackRate float64 `json:"fallback_rate"`
	// P50/P90/P99/Max are latency percentiles over the recent window.
	P50 time.Duration `json:"p50_ns"`
	P90 time.Duration `json:"p90_ns"`
	P99 time.Duration `json:"p99_ns"`
	Max time.Duration `json:"max_ns"`
	// Uptime is how long the recorder has been running.
	Uptime time.Duration `json:"uptime_ns"`
}

// ServeRecorder accumulates serving-layer measurements. It is safe for
// concurrent use: every worker in the serving pool observes into one
// shared recorder. Latencies are kept in a fixed-size ring (the recent
// window), counters are lifetime totals.
type ServeRecorder struct {
	mu        sync.Mutex
	start     time.Time
	lats      []time.Duration
	pos       int
	full      bool
	queries   int64
	predicted int64
	fallbacks int64
	deduped   int64
	cacheHits int64
	rejected  int64
	errors    int64

	ingestBatches int64
	ingestRows    int64
	driftInval    int64
	rebuilds      int64
}

// NewServeRecorder builds a recorder keeping the last window latency
// samples (default 4096 when window <= 0).
func NewServeRecorder(window int) *ServeRecorder {
	if window <= 0 {
		window = 4096
	}
	return &ServeRecorder{start: time.Now(), lats: make([]time.Duration, window)}
}

// Observe records one answered query: its wall latency and which path
// served it.
func (r *ServeRecorder) Observe(lat time.Duration, predicted bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.observeLocked(lat)
	if predicted {
		r.predicted++
	} else {
		r.fallbacks++
	}
}

// Dedup records a query answered by sharing an identical in-flight
// fallback's result: it counts toward Queries and the latency window
// but not Fallbacks — only the one shared oracle execution does.
func (r *ServeRecorder) Dedup(lat time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.observeLocked(lat)
	r.deduped++
}

// CacheHit records a query served straight from the versioned answer
// cache: it counts toward Queries and the latency window, but toward
// neither Predicted nor Fallbacks (no agent was touched).
func (r *ServeRecorder) CacheHit(lat time.Duration) {
	r.mu.Lock()
	r.observeLocked(lat)
	r.cacheHits++
	r.mu.Unlock()
}

func (r *ServeRecorder) observeLocked(lat time.Duration) {
	r.lats[r.pos] = lat
	r.pos = (r.pos + 1) % len(r.lats)
	if r.pos == 0 {
		r.full = true
	}
	r.queries++
}

// Reject records an admission-control rejection.
func (r *ServeRecorder) Reject() {
	r.mu.Lock()
	r.rejected++
	r.mu.Unlock()
}

// Error records a failed query.
func (r *ServeRecorder) Error() {
	r.mu.Lock()
	r.errors++
	r.mu.Unlock()
}

// IngestBatch records one applied row batch from the live write path.
func (r *ServeRecorder) IngestBatch(rows int) {
	r.mu.Lock()
	r.ingestBatches++
	r.ingestRows += int64(rows)
	r.mu.Unlock()
}

// DriftInvalidate records n drift-budget model invalidation events.
func (r *ServeRecorder) DriftInvalidate(n int) {
	if n <= 0 {
		return
	}
	r.mu.Lock()
	r.driftInval += int64(n)
	r.mu.Unlock()
}

// Rebuild records one completed background re-quantisation.
func (r *ServeRecorder) Rebuild() {
	r.mu.Lock()
	r.rebuilds++
	r.mu.Unlock()
}

// Snapshot computes the current view: lifetime counters plus latency
// percentiles over the recent window.
func (r *ServeRecorder) Snapshot() ServeSnapshot {
	r.mu.Lock()
	n := r.pos
	if r.full {
		n = len(r.lats)
	}
	window := make([]time.Duration, n)
	copy(window, r.lats[:n])
	s := ServeSnapshot{
		Queries:            r.queries,
		Predicted:          r.predicted,
		Fallbacks:          r.fallbacks,
		Deduped:            r.deduped,
		CacheHits:          r.cacheHits,
		Rejected:           r.rejected,
		Errors:             r.errors,
		IngestBatches:      r.ingestBatches,
		IngestRows:         r.ingestRows,
		DriftInvalidations: r.driftInval,
		Rebuilds:           r.rebuilds,
		Uptime:             time.Since(r.start),
	}
	r.mu.Unlock()

	if s.Uptime > 0 {
		s.QPS = float64(s.Queries) / s.Uptime.Seconds()
	}
	if s.Queries > 0 {
		s.FallbackRate = float64(s.Fallbacks) / float64(s.Queries)
	}
	if len(window) > 0 {
		sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
		s.P50 = percentileDur(window, 0.50)
		s.P90 = percentileDur(window, 0.90)
		s.P99 = percentileDur(window, 0.99)
		s.Max = window[len(window)-1]
	}
	return s
}

// percentileDur returns the p-th percentile of a sorted sample.
func percentileDur(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
