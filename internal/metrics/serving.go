package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Path classifies which tier of the serving stack produced an answer.
// Every answered query lands in exactly one path's latency histogram.
type Path uint8

const (
	// PathCache: served straight from the versioned answer cache.
	PathCache Path = iota
	// PathModel: served by a learned model's prediction.
	PathModel
	// PathAQP: served by an approximate (sampling) engine. Reserved —
	// the serving pool does not currently route through internal/aqp,
	// but the path is part of the exposition contract so dashboards
	// need not change when the planner starts using it.
	PathAQP
	// PathExactLocal: exact oracle fallback served from local data.
	PathExactLocal
	// PathExactScatter: exact fallback that scatter-gathered partials
	// from more than one cluster member.
	PathExactScatter
	// NumPaths bounds the enum.
	NumPaths
)

// String returns the exposition label for the path.
func (p Path) String() string {
	switch p {
	case PathCache:
		return "cache"
	case PathModel:
		return "model"
	case PathAQP:
		return "aqp"
	case PathExactLocal:
		return "exact_local"
	case PathExactScatter:
		return "exact_scatter"
	}
	return "unknown"
}

// ClassOf maps a tenant id to its tenant class for per-class metrics:
// a trailing "-<digits>" instance suffix is stripped ("client-17" ->
// "client"), anything else is its own class, "" becomes "default".
func ClassOf(tenant string) string {
	if tenant == "" {
		return "default"
	}
	for i := len(tenant) - 1; i > 0; i-- {
		c := tenant[i]
		if c >= '0' && c <= '9' {
			continue
		}
		if c == '-' && i < len(tenant)-1 {
			return tenant[:i]
		}
		break
	}
	return tenant
}

// maxTenantClasses bounds the per-class map; overflow classes collapse
// into "other" so a tenant-id cardinality bug cannot grow metrics
// memory without bound.
const maxTenantClasses = 64

// PathStats summarises one answer path's latency distribution.
type PathStats struct {
	Count int64         `json:"count"`
	P50   time.Duration `json:"p50_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
}

// TenantStats holds one tenant class's live counters. Fields are
// atomics so the scheduler updates them without a lock.
type TenantStats struct {
	Queries  atomic.Int64
	Rejected atomic.Int64
	Inflight atomic.Int64
	Lat      Histogram
}

// TenantSnap is the snapshot form of TenantStats.
type TenantSnap struct {
	Queries  int64         `json:"queries"`
	Rejected int64         `json:"rejected"`
	Inflight int64         `json:"inflight"`
	P50      time.Duration `json:"p50_ns"`
	P99      time.Duration `json:"p99_ns"`
}

// GaugeDef is a registered gauge: a named callback sampled at
// exposition time (WAL segment counts, absorbed versions, queue
// depths — state owned elsewhere that metrics should not duplicate).
type GaugeDef struct {
	Name string
	Help string
	Fn   func() float64
}

// ServeSnapshot is a point-in-time view of serving-layer health: the
// throughput/latency/fallback numbers the serving subsystem exposes over
// its stats endpoint. Unlike Cost (virtual simulator units), these are
// wall-clock measurements of the real process.
type ServeSnapshot struct {
	// Queries is the number of answered queries
	// (predicted + fallbacks + deduped).
	Queries int64 `json:"queries"`
	// Predicted is how many were answered from learned models.
	Predicted int64 `json:"predicted"`
	// Fallbacks is how many executed the expensive exact-oracle path
	// themselves (one per actual oracle run).
	Fallbacks int64 `json:"fallbacks"`
	// Deduped is how many were answered by sharing another identical
	// in-flight fallback's result (single-flight hits): they count
	// toward Queries but not Fallbacks, so FallbackRate tracks real
	// oracle executions.
	Deduped int64 `json:"deduped"`
	// CacheHits is how many were served straight from the versioned
	// answer cache without touching an agent. They count toward
	// Queries but toward neither Predicted nor Fallbacks.
	CacheHits int64 `json:"cache_hits"`
	// Rejected is how many submissions admission control turned away.
	Rejected int64 `json:"rejected"`
	// Errors is how many queries failed.
	Errors int64 `json:"errors"`
	// IngestBatches/IngestRows count row batches applied through the
	// live data plane's write path.
	IngestBatches int64 `json:"ingest_batches"`
	IngestRows    int64 `json:"ingest_rows"`
	// DriftInvalidations counts quanta whose models were invalidated by
	// the ingest drift budget (incremental maintenance events).
	DriftInvalidations int64 `json:"drift_invalidations"`
	// Rebuilds counts completed background re-quantisations.
	Rebuilds int64 `json:"rebuilds"`
	// RPCRetries/Hedges/DegradedAnswers count the resilience layer's
	// interventions: retried inter-node RPC attempts, hedged scatter
	// sends, and queries answered with partial partition coverage.
	RPCRetries      int64 `json:"rpc_retries"`
	Hedges          int64 `json:"hedges"`
	DegradedAnswers int64 `json:"degraded_answers"`
	// QPS is Queries divided by the uptime.
	QPS float64 `json:"qps"`
	// FallbackRate is Fallbacks / Queries.
	FallbackRate float64 `json:"fallback_rate"`
	// P50/P90/P99 are latency percentiles estimated from the merged
	// all-paths histogram (log-linear buckets, <=6.25% bucket width,
	// interpolated); Max is the exact observed maximum.
	P50 time.Duration `json:"p50_ns"`
	P90 time.Duration `json:"p90_ns"`
	P99 time.Duration `json:"p99_ns"`
	Max time.Duration `json:"max_ns"`
	// Uptime is how long the recorder has been running.
	Uptime time.Duration `json:"uptime_ns"`
	// Paths breaks the latency distribution down by answer path.
	Paths map[string]PathStats `json:"paths,omitempty"`
	// Tenants breaks admission and latency down by tenant class.
	Tenants map[string]TenantSnap `json:"tenants,omitempty"`
	// Audit summarises the accuracy-audit error histograms.
	Audit []AuditSnap `json:"audit,omitempty"`
}

// ServeRecorder accumulates serving-layer measurements. It is safe for
// concurrent use: every worker in the serving pool observes into one
// shared recorder. Counters are lock-free atomics and latencies land in
// mergeable per-path histograms, so the hot path never takes a lock.
type ServeRecorder struct {
	start time.Time

	queries   atomic.Int64
	predicted atomic.Int64
	fallbacks atomic.Int64
	deduped   atomic.Int64
	cacheHits atomic.Int64
	rejected  atomic.Int64
	errors    atomic.Int64

	ingestBatches atomic.Int64
	ingestRows    atomic.Int64
	driftInval    atomic.Int64
	rebuilds      atomic.Int64

	rpcRetries atomic.Int64
	hedges     atomic.Int64
	degraded   atomic.Int64

	paths [NumPaths]Histogram

	tenantMu sync.RWMutex
	tenants  map[string]*TenantStats

	audit AuditRecorder

	slo atomic.Pointer[SLOEngine]

	gaugeMu sync.RWMutex
	gauges  []GaugeDef
}

// NewServeRecorder builds a recorder. The window argument is retained
// for compatibility with earlier sorted-window percentile math and is
// ignored: latency distributions are now lifetime log-bucketed
// histograms, which merge across recorders and export as real
// Prometheus histograms.
func NewServeRecorder(window int) *ServeRecorder {
	_ = window
	return &ServeRecorder{
		start:   time.Now(),
		tenants: make(map[string]*TenantStats),
	}
}

// ObservePath records one answered query under the path that served
// it. Cache hits count toward CacheHits, model/AQP answers toward
// Predicted, exact paths toward Fallbacks.
func (r *ServeRecorder) ObservePath(lat time.Duration, p Path) {
	r.queries.Add(1)
	switch p {
	case PathCache:
		r.cacheHits.Add(1)
	case PathModel, PathAQP:
		r.predicted.Add(1)
	default:
		r.fallbacks.Add(1)
	}
	r.paths[p].RecordDur(lat)
}

// Observe records one answered query: its wall latency and which path
// served it. Compatibility form of ObservePath — callers that know the
// precise path (scatter vs local exact) should use ObservePath.
func (r *ServeRecorder) Observe(lat time.Duration, predicted bool) {
	if predicted {
		r.ObservePath(lat, PathModel)
	} else {
		r.ObservePath(lat, PathExactLocal)
	}
}

// DedupPath records a query answered by sharing an identical in-flight
// fallback's result: it counts toward Queries and the shared answer's
// path histogram (the recorded latency is the waiter's, i.e. how long
// it parked) but not Fallbacks — only the one shared oracle execution
// does.
func (r *ServeRecorder) DedupPath(lat time.Duration, p Path) {
	r.queries.Add(1)
	r.deduped.Add(1)
	r.paths[p].RecordDur(lat)
}

// Dedup is DedupPath against the exact-local path (compatibility).
func (r *ServeRecorder) Dedup(lat time.Duration) {
	r.DedupPath(lat, PathExactLocal)
}

// CacheHit records a query served straight from the versioned answer
// cache: it counts toward Queries and the cache path's histogram, but
// toward neither Predicted nor Fallbacks (no agent was touched).
func (r *ServeRecorder) CacheHit(lat time.Duration) {
	r.ObservePath(lat, PathCache)
}

// Reject records an admission-control rejection.
func (r *ServeRecorder) Reject() {
	r.rejected.Add(1)
}

// Error records a failed query.
func (r *ServeRecorder) Error() {
	r.errors.Add(1)
}

// IngestBatch records one applied row batch from the live write path.
func (r *ServeRecorder) IngestBatch(rows int) {
	r.ingestBatches.Add(1)
	r.ingestRows.Add(int64(rows))
}

// DriftInvalidate records n drift-budget model invalidation events.
func (r *ServeRecorder) DriftInvalidate(n int) {
	if n <= 0 {
		return
	}
	r.driftInval.Add(int64(n))
}

// Rebuild records one completed background re-quantisation.
func (r *ServeRecorder) Rebuild() {
	r.rebuilds.Add(1)
}

// RPCRetry records one retried inter-node RPC attempt (the retry, not
// the original send).
func (r *ServeRecorder) RPCRetry() {
	r.rpcRetries.Add(1)
}

// Hedge records one hedged scatter RPC fired against a second holder.
func (r *ServeRecorder) Hedge() {
	r.hedges.Add(1)
}

// DegradedAnswer records one query answered with partial partition
// coverage instead of an error.
func (r *ServeRecorder) DegradedAnswer() {
	r.degraded.Add(1)
}

// Tenant returns (creating on first use) the stats cell for a tenant
// class. The class table is bounded: past maxTenantClasses new classes
// collapse into "other".
func (r *ServeRecorder) Tenant(class string) *TenantStats {
	r.tenantMu.RLock()
	ts := r.tenants[class]
	r.tenantMu.RUnlock()
	if ts != nil {
		return ts
	}
	r.tenantMu.Lock()
	defer r.tenantMu.Unlock()
	if ts = r.tenants[class]; ts != nil {
		return ts
	}
	if len(r.tenants) >= maxTenantClasses {
		class = "other"
		if ts = r.tenants[class]; ts != nil {
			return ts
		}
	}
	ts = &TenantStats{}
	r.tenants[class] = ts
	return ts
}

// TenantReject records an admission rejection attributed to a tenant
// class (on top of the global Reject the caller also records).
func (r *ServeRecorder) TenantReject(class string) {
	r.Tenant(class).Rejected.Add(1)
}

// TenantObserve records one completed query (queue wait + execution)
// for a tenant class.
func (r *ServeRecorder) TenantObserve(class string, lat time.Duration) {
	ts := r.Tenant(class)
	ts.Queries.Add(1)
	ts.Lat.RecordDur(lat)
}

// Audit returns the accuracy-audit recorder.
func (r *ServeRecorder) Audit() *AuditRecorder { return &r.audit }

// SetSLO attaches an SLO engine whose burn-rate series WriteRecorder
// exports alongside the recorder's own metrics.
func (r *ServeRecorder) SetSLO(e *SLOEngine) { r.slo.Store(e) }

// SLO returns the attached engine (nil when none is wired).
func (r *ServeRecorder) SLO() *SLOEngine { return r.slo.Load() }

// PathHist returns the latency histogram for one answer path (the
// Prometheus writer reads bucket data straight from it).
func (r *ServeRecorder) PathHist(p Path) *Histogram { return &r.paths[p] }

// RegisterGauge registers a named gauge callback, exported with the
// given help text on the Prometheus endpoint. Register at wiring time;
// fn must be cheap and safe to call concurrently.
func (r *ServeRecorder) RegisterGauge(name, help string, fn func() float64) {
	r.gaugeMu.Lock()
	r.gauges = append(r.gauges, GaugeDef{Name: name, Help: help, Fn: fn})
	r.gaugeMu.Unlock()
}

// Gauges returns the registered gauge definitions.
func (r *ServeRecorder) Gauges() []GaugeDef {
	r.gaugeMu.RLock()
	defer r.gaugeMu.RUnlock()
	return append([]GaugeDef(nil), r.gauges...)
}

// CounterDef is one lifetime counter exposed for time-series sampling:
// a name and a lock-free load of the current cumulative value.
type CounterDef struct {
	Name string
	Fn   func() int64
}

// Counters enumerates the recorder's cumulative counters as sampling
// closures. Each Fn is a single atomic load — the flight recorder
// calls every one once per second and must stay allocation-free.
func (r *ServeRecorder) Counters() []CounterDef {
	return []CounterDef{
		{"queries", r.queries.Load},
		{"predicted", r.predicted.Load},
		{"fallbacks", r.fallbacks.Load},
		{"deduped", r.deduped.Load},
		{"cache_hits", r.cacheHits.Load},
		{"rejected", r.rejected.Load},
		{"errors", r.errors.Load},
		{"ingest_batches", r.ingestBatches.Load},
		{"ingest_rows", r.ingestRows.Load},
		{"drift_invalidations", r.driftInval.Load},
		{"rebuilds", r.rebuilds.Load},
		{"rpc_retries", r.rpcRetries.Load},
		{"hedges", r.hedges.Load},
		{"degraded_answers", r.degraded.Load},
	}
}

// CacheHitRate returns the lifetime cache-hit fraction of answered
// queries (0 when none have completed). Two atomic loads, no locks.
func (r *ServeRecorder) CacheHitRate() float64 {
	q := r.queries.Load()
	if q == 0 {
		return 0
	}
	return float64(r.cacheHits.Load()) / float64(q)
}

// tenantSnapshot copies the per-class table.
func (r *ServeRecorder) tenantSnapshot() map[string]TenantSnap {
	r.tenantMu.RLock()
	defer r.tenantMu.RUnlock()
	if len(r.tenants) == 0 {
		return nil
	}
	out := make(map[string]TenantSnap, len(r.tenants))
	for class, ts := range r.tenants {
		hs := ts.Lat.Snapshot()
		out[class] = TenantSnap{
			Queries:  ts.Queries.Load(),
			Rejected: ts.Rejected.Load(),
			Inflight: ts.Inflight.Load(),
			P50:      time.Duration(hs.Quantile(0.50)),
			P99:      time.Duration(hs.Quantile(0.99)),
		}
	}
	return out
}

// Snapshot computes the current view: lifetime counters plus latency
// percentiles from the merged per-path histograms.
func (r *ServeRecorder) Snapshot() ServeSnapshot {
	s := ServeSnapshot{
		Queries:            r.queries.Load(),
		Predicted:          r.predicted.Load(),
		Fallbacks:          r.fallbacks.Load(),
		Deduped:            r.deduped.Load(),
		CacheHits:          r.cacheHits.Load(),
		Rejected:           r.rejected.Load(),
		Errors:             r.errors.Load(),
		IngestBatches:      r.ingestBatches.Load(),
		IngestRows:         r.ingestRows.Load(),
		DriftInvalidations: r.driftInval.Load(),
		Rebuilds:           r.rebuilds.Load(),
		RPCRetries:         r.rpcRetries.Load(),
		Hedges:             r.hedges.Load(),
		DegradedAnswers:    r.degraded.Load(),
		Uptime:             time.Since(r.start),
	}
	if s.Uptime > 0 {
		s.QPS = float64(s.Queries) / s.Uptime.Seconds()
	}
	if s.Queries > 0 {
		s.FallbackRate = float64(s.Fallbacks) / float64(s.Queries)
	}

	var all HistSnapshot
	paths := make(map[string]PathStats, NumPaths)
	for p := Path(0); p < NumPaths; p++ {
		hs := r.paths[p].Snapshot()
		if hs.Count > 0 {
			paths[p.String()] = PathStats{
				Count: hs.Count,
				P50:   time.Duration(hs.Quantile(0.50)),
				P99:   time.Duration(hs.Quantile(0.99)),
				Max:   time.Duration(hs.Max),
			}
		}
		all.Merge(hs)
	}
	if len(paths) > 0 {
		s.Paths = paths
	}
	if all.Count > 0 {
		s.P50 = time.Duration(all.Quantile(0.50))
		s.P90 = time.Duration(all.Quantile(0.90))
		s.P99 = time.Duration(all.Quantile(0.99))
		s.Max = time.Duration(all.Max)
	}
	s.Tenants = r.tenantSnapshot()
	s.Audit = r.audit.Snapshot()
	return s
}

// AuditKey identifies one accuracy-audit error histogram: which pooled
// agent, which aggregate, and which sampling source filled it.
type AuditKey struct {
	Agent  int
	Agg    string
	Source string // "fallback" (free, truth already computed) or "shadow" (forced exact probe)
}

// AuditSnap is one audit histogram's summary.
type AuditSnap struct {
	Agent  int     `json:"agent"`
	Agg    string  `json:"agg"`
	Source string  `json:"source"`
	Count  int64   `json:"count"`
	MAPE   float64 `json:"mape"`
	P99    float64 `json:"p99"`
}

// AuditRecorder accumulates predicted-vs-truth relative errors into
// per-(agent, aggregate, source) histograms: the paper's accuracy
// claim as a continuously monitored production signal.
type AuditRecorder struct {
	mu      sync.RWMutex
	m       map[AuditKey]*Histogram
	samples atomic.Int64
}

// Record adds one relative-error observation.
func (a *AuditRecorder) Record(agent int, agg, source string, rel float64) {
	key := AuditKey{Agent: agent, Agg: agg, Source: source}
	a.mu.RLock()
	h := a.m[key]
	a.mu.RUnlock()
	if h == nil {
		a.mu.Lock()
		if a.m == nil {
			a.m = make(map[AuditKey]*Histogram)
		}
		if h = a.m[key]; h == nil {
			h = &Histogram{}
			a.m[key] = h
		}
		a.mu.Unlock()
	}
	h.RecordErr(rel)
	a.samples.Add(1)
}

// Samples returns the lifetime number of audited answers.
func (a *AuditRecorder) Samples() int64 { return a.samples.Load() }

// MAPE returns the mean relative error and sample count across every
// histogram whose source matches (""=all).
func (a *AuditRecorder) MAPE(source string) (float64, int64) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var sum float64
	var n int64
	for k, h := range a.m {
		if source != "" && k.Source != source {
			continue
		}
		hs := h.Snapshot()
		sum += float64(hs.Sum) / ErrScale
		n += hs.Count
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

// Snapshot summarises every audit histogram, sorted for stable output.
func (a *AuditRecorder) Snapshot() []AuditSnap {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]AuditSnap, 0, len(a.m))
	for k, h := range a.m {
		hs := h.Snapshot()
		if hs.Count == 0 {
			continue
		}
		out = append(out, AuditSnap{
			Agent:  k.Agent,
			Agg:    k.Agg,
			Source: k.Source,
			Count:  hs.Count,
			MAPE:   hs.Mean() / ErrScale,
			P99:    float64(hs.Quantile(0.99)) / ErrScale,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Agent != out[j].Agent {
			return out[i].Agent < out[j].Agent
		}
		if out[i].Agg != out[j].Agg {
			return out[i].Agg < out[j].Agg
		}
		return out[i].Source < out[j].Source
	})
	return out
}

// Hists exposes the audit histograms for Prometheus exposition,
// invoking fn per (key, histogram) in sorted key order.
func (a *AuditRecorder) Hists(fn func(AuditKey, *Histogram)) {
	a.mu.RLock()
	keys := make([]AuditKey, 0, len(a.m))
	for k := range a.m {
		keys = append(keys, k)
	}
	hists := make([]*Histogram, len(keys))
	sort.Slice(keys, func(i, j int) bool {
		ki, kj := keys[i], keys[j]
		if ki.Agent != kj.Agent {
			return ki.Agent < kj.Agent
		}
		if ki.Agg != kj.Agg {
			return ki.Agg < kj.Agg
		}
		return ki.Source < kj.Source
	})
	for i, k := range keys {
		hists[i] = a.m[k]
	}
	a.mu.RUnlock()
	for i, k := range keys {
		fn(k, hists[i])
	}
}
