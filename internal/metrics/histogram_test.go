package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketMath(t *testing.T) {
	// Values below 16 map to exact unit buckets.
	for v := int64(0); v < 16; v++ {
		if got := bucketOf(v); got != int(v) {
			t.Fatalf("bucketOf(%d) = %d", v, got)
		}
	}
	// Every bucket's bounds must contain the values that map to it, and
	// bucket indexes must be monotone in the value.
	prev := -1
	for _, v := range []int64{1, 15, 16, 17, 100, 1000, 12345, 1 << 20, 1<<40 + 12345} {
		idx := bucketOf(v)
		if idx < prev {
			t.Fatalf("bucketOf not monotone at %d", v)
		}
		prev = idx
		lo, hi := bucketBounds(idx)
		if v < lo || v >= hi {
			t.Fatalf("value %d outside its bucket [%d,%d)", v, lo, hi)
		}
		// Log-bucket resolution: bucket width stays within 1/16 of the
		// low bound (6.25% relative error ceiling).
		if lo >= 16 && hi-lo > lo/8 {
			t.Fatalf("bucket [%d,%d) too wide for %d", lo, hi, v)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(int64(i) * 1000)
	}
	hs := h.Snapshot()
	if hs.Count != 1000 {
		t.Fatalf("count = %d", hs.Count)
	}
	if hs.Max != 1000*1000 {
		t.Fatalf("max = %d", hs.Max)
	}
	p50 := hs.Quantile(0.5)
	if p50 < 450*1000 || p50 > 550*1000 {
		t.Fatalf("p50 = %d, want ~500000", p50)
	}
	p99 := hs.Quantile(0.99)
	if p99 < 950*1000 || p99 > 1000*1000 {
		t.Fatalf("p99 = %d, want within ~5%% of 990000 and clamped to max", p99)
	}
	if q := hs.Quantile(1); q != hs.Max {
		t.Fatalf("p100 = %d, want the exact max %d", q, hs.Max)
	}
	mean := hs.Mean()
	if mean < 495*1000 || mean > 506*1000 {
		t.Fatalf("mean = %v", mean)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Record(1000)
		b.Record(8000)
	}
	snap := a.Snapshot()
	snap.Merge(b.Snapshot())
	if snap.Count != 200 {
		t.Fatalf("merged count = %d", snap.Count)
	}
	if snap.Max != 8000 {
		t.Fatalf("merged max = %d", snap.Max)
	}
	if snap.Sum != 100*1000+100*8000 {
		t.Fatalf("merged sum = %d", snap.Sum)
	}
}

func TestHistogramRecordErr(t *testing.T) {
	var h Histogram
	h.RecordErr(0.25)
	h.RecordErr(math.NaN()) // dropped
	h.RecordErr(-1)         // dropped
	hs := h.Snapshot()
	if hs.Count != 1 {
		t.Fatalf("count = %d, want 1 (NaN and negative dropped)", hs.Count)
	}
	if got := float64(hs.Sum) / ErrScale; got < 0.249 || got > 0.251 {
		t.Fatalf("recorded relative error = %v, want 0.25", got)
	}
}

func TestHistogramPromBuckets(t *testing.T) {
	var h Histogram
	h.RecordDur(2 * time.Microsecond)
	h.RecordDur(3 * time.Millisecond)
	h.RecordDur(3 * time.Millisecond)
	hs := h.Snapshot()
	buckets := hs.PromBuckets(10, 34, 1e-9)
	if len(buckets) == 0 {
		t.Fatal("no buckets")
	}
	// Cumulative counts must be monotone and end at the total count.
	prev := int64(0)
	for _, b := range buckets {
		if b.Count < prev {
			t.Fatalf("bucket counts not cumulative: %+v", buckets)
		}
		prev = b.Count
	}
	if buckets[len(buckets)-1].Count != hs.Count {
		t.Fatalf("last bucket %d != count %d", buckets[len(buckets)-1].Count, hs.Count)
	}
	// A 3ms observation sits above a 1ms bound and below an 8ms bound.
	for _, b := range buckets {
		if b.LE >= 0.0005 && b.LE <= 0.0011 && b.Count != 1 {
			t.Fatalf("le=%g has count %d, want just the 2us sample", b.LE, b.Count)
		}
		if b.LE >= 0.0085 && b.Count != 3 {
			t.Fatalf("le=%g has count %d, want all 3", b.LE, b.Count)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, each = 8, 10_000
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Record(int64(w*each + i + 1))
				if i%1000 == 0 {
					_ = h.Snapshot().Quantile(0.5)
				}
			}
		}(w)
	}
	wg.Wait()
	hs := h.Snapshot()
	if hs.Count != workers*each {
		t.Fatalf("count = %d, want %d", hs.Count, workers*each)
	}
	if hs.Max != workers*each {
		t.Fatalf("max = %d, want %d", hs.Max, workers*each)
	}
}
