package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestCountAbove(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Record(i * 1000) // 1k..1000k, uniform
	}
	hs := h.Snapshot()
	if got := hs.CountAbove(-1); got != 1000 {
		t.Fatalf("CountAbove(-1) = %d, want 1000", got)
	}
	if got := hs.CountAbove(hs.Max); got != 0 {
		t.Fatalf("CountAbove(max) = %d, want 0", got)
	}
	// Half the observations exceed the median; allow bucket-width slop.
	got := hs.CountAbove(500_000)
	if got < 450 || got > 550 {
		t.Fatalf("CountAbove(median) = %d, want ~500", got)
	}
	if empty := (HistSnapshot{}).CountAbove(10); empty != 0 {
		t.Fatalf("empty CountAbove = %d, want 0", empty)
	}
}

// driveSLO records queries for two classes — "fast" inside the
// objective, "slow" mostly outside it — and ticks the engine with a
// synthetic clock.
func driveSLO(t *testing.T, cfg SLOConfig) (*ServeRecorder, *SLOEngine) {
	t.Helper()
	rec := NewServeRecorder(0)
	eng := NewSLOEngine(rec, cfg)
	base := time.Unix(1_700_000_000, 0)
	eng.Tick(base)
	for i := 0; i < 100; i++ {
		rec.TenantObserve("fast", 1*time.Millisecond)
		// Half the slow class's queries blow the 10ms objective:
		// bad fraction 0.5 against a 0.01 budget = burn rate ~50.
		if i%2 == 0 {
			rec.TenantObserve("slow", 100*time.Millisecond)
		} else {
			rec.TenantObserve("slow", 1*time.Millisecond)
		}
	}
	eng.Tick(base.Add(30 * time.Second))
	return rec, eng
}

func TestSLOEngineStates(t *testing.T) {
	cfg := SLOConfig{
		LatencyObjective: 10 * time.Millisecond,
		LatencyBudget:    0.01,
		FastWindow:       time.Minute,
		SlowWindow:       30 * time.Minute,
	}
	_, eng := driveSLO(t, cfg)
	states := eng.States()
	if len(states) != 2 {
		t.Fatalf("got %d states, want 2: %+v", len(states), states)
	}
	byClass := map[string]SLOClassState{}
	for _, st := range states {
		byClass[st.Class] = st
	}
	if st := byClass["fast"]; st.State != "ok" || st.FastBurn != 0 {
		t.Fatalf("fast class = %+v, want ok with zero burn", st)
	}
	st := byClass["slow"]
	if st.State != "critical" {
		t.Fatalf("slow class state = %q (burn fast=%g slow=%g), want critical",
			st.State, st.FastBurn, st.SlowBurn)
	}
	if st.FastBurn < 30 || st.FastBurn > 70 {
		t.Fatalf("slow class fast burn = %g, want ~50", st.FastBurn)
	}
}

func TestSLOEngineRejectedBurn(t *testing.T) {
	rec := NewServeRecorder(0)
	eng := NewSLOEngine(rec, SLOConfig{
		LatencyObjective: time.Second,
		ErrorBudget:      0.001,
	})
	base := time.Unix(1_700_000_000, 0)
	eng.Tick(base)
	for i := 0; i < 90; i++ {
		rec.TenantObserve("busy", time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		rec.TenantReject("busy")
	}
	eng.Tick(base.Add(10 * time.Second))
	states := eng.States()
	if len(states) != 1 || states[0].State != "critical" {
		t.Fatalf("states = %+v, want one critical class (10%% rejects vs 0.1%% budget)", states)
	}
}

func TestSLOEngineNilSafe(t *testing.T) {
	var eng *SLOEngine
	eng.Tick(time.Now())
	eng.Start()
	eng.Stop()
	if s := eng.States(); s != nil {
		t.Fatalf("nil engine States = %+v", s)
	}
	var b strings.Builder
	if err := eng.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil engine WritePrometheus wrote %q err %v", b.String(), err)
	}
}

func TestSLOPrometheusExport(t *testing.T) {
	rec, eng := driveSLO(t, SLOConfig{LatencyObjective: 10 * time.Millisecond})
	rec.SetSLO(eng)
	var b strings.Builder
	if err := rec.WriteRecorder(&b); err != nil {
		t.Fatalf("WriteRecorder: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		`sea_slo_burn_rate{class="fast",window="fast"} 0`,
		`sea_slo_burn_rate{class="slow",window="fast"} `,
		`sea_slo_state{class="fast"} 0`,
		`sea_slo_state{class="slow"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSLOEngineStartStop(t *testing.T) {
	rec := NewServeRecorder(0)
	eng := NewSLOEngine(rec, SLOConfig{Interval: time.Millisecond})
	rec.TenantObserve("c", time.Millisecond)
	eng.Start()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(eng.States()) > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	eng.Stop()
	eng.Stop() // idempotent
	if len(eng.States()) == 0 {
		t.Fatal("background sampler produced no states")
	}
}
