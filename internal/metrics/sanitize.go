package metrics

import "strings"

// LabelValue sanitizes a string for use as a Prometheus label value in
// the text exposition format. The format permits exactly three escape
// sequences inside a quoted label value — `\\`, `\"` and `\n` — so the
// previous `%q` formatting was doubly wrong: Go emits `\t`, `\xNN` and
// `\uNNNN` escapes that Prometheus parsers reject, and a tenant id
// containing a quote could break out of the value position entirely and
// inject fabricated series ("label injection"). Control characters are
// replaced with '_' (only newline has an escape; the rest would corrupt
// the line-oriented format), and an empty value becomes "empty" so the
// series stays identifiable.
func LabelValue(v string) string {
	if v == "" {
		return "empty"
	}
	// Fast path: no byte needs escaping (the overwhelmingly common
	// case for tenant classes and path names).
	clean := true
	for i := 0; i < len(v); i++ {
		if c := v[i]; c == '\\' || c == '"' || c < 0x20 {
			clean = false
			break
		}
	}
	if clean {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for i := 0; i < len(v); i++ {
		switch c := v[i]; {
		case c == '\\':
			b.WriteString(`\\`)
		case c == '"':
			b.WriteString(`\"`)
		case c == '\n':
			b.WriteString(`\n`)
		case c < 0x20:
			b.WriteByte('_')
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// Label renders one `name="value"` pair with the value sanitized.
func Label(name, value string) string {
	return name + `="` + LabelValue(value) + `"`
}
