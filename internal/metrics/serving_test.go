package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestServeRecorderCountersAndPercentiles(t *testing.T) {
	r := NewServeRecorder(128)
	for i := 1; i <= 100; i++ {
		r.Observe(time.Duration(i)*time.Millisecond, i%10 != 0)
	}
	r.Reject()
	r.Dedup(2 * time.Millisecond)
	r.Error()

	s := r.Snapshot()
	// A deduped answer counts as a query but not as a fallback: only
	// the one shared oracle execution does.
	if s.Queries != 101 || s.Predicted != 90 || s.Fallbacks != 10 {
		t.Errorf("counters: %+v", s)
	}
	if s.Rejected != 1 || s.Deduped != 1 || s.Errors != 1 {
		t.Errorf("event counters: %+v", s)
	}
	if want := 10.0 / 101.0; s.FallbackRate != want {
		t.Errorf("fallback rate = %v, want %v", s.FallbackRate, want)
	}
	// 100 samples of 1..100ms: p50 ~ 50ms, p99 ~ 99-100ms, max 100ms.
	if s.P50 < 45*time.Millisecond || s.P50 > 55*time.Millisecond {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.P99 < 95*time.Millisecond || s.P99 > 100*time.Millisecond {
		t.Errorf("p99 = %v", s.P99)
	}
	if s.Max != 100*time.Millisecond {
		t.Errorf("max = %v", s.Max)
	}
	if s.QPS <= 0 {
		t.Errorf("qps = %v", s.QPS)
	}
}

func TestServeRecorderLifetimeHistogram(t *testing.T) {
	r := NewServeRecorder(8)
	// The recorder keeps lifetime histograms (not a sliding window): all
	// 20 observations shape the percentiles, and the max stays exact.
	for i := 1; i <= 20; i++ {
		r.Observe(time.Duration(i)*time.Second, true)
	}
	s := r.Snapshot()
	if s.Queries != 20 {
		t.Errorf("queries = %d, want 20", s.Queries)
	}
	if s.Max != 20*time.Second {
		t.Errorf("max = %v, want 20s", s.Max)
	}
	if s.P50 < 9*time.Second || s.P50 > 11*time.Second {
		t.Errorf("p50 = %v, want ~10s over the full history", s.P50)
	}
	if s.P99 < 18*time.Second || s.P99 > 20*time.Second {
		t.Errorf("p99 = %v, want near the 20s tail", s.P99)
	}
}

func TestServeRecorderPerPath(t *testing.T) {
	r := NewServeRecorder(0)
	r.ObservePath(1*time.Millisecond, PathCache)
	r.ObservePath(2*time.Millisecond, PathModel)
	r.ObservePath(40*time.Millisecond, PathExactLocal)
	r.ObservePath(80*time.Millisecond, PathExactScatter)
	r.ObservePath(90*time.Millisecond, PathExactScatter)

	s := r.Snapshot()
	if s.Queries != 5 || s.CacheHits != 1 || s.Predicted != 1 || s.Fallbacks != 3 {
		t.Fatalf("path-derived counters: %+v", s)
	}
	ps, ok := s.Paths[PathExactScatter.String()]
	if !ok {
		t.Fatalf("snapshot missing exact_scatter path stats: %v", s.Paths)
	}
	if ps.Count != 2 || ps.Max != 90*time.Millisecond {
		t.Fatalf("exact_scatter stats = %+v", ps)
	}
	if got := s.Paths[PathCache.String()]; got.Count != 1 {
		t.Fatalf("cache path stats = %+v", got)
	}
	// Unused paths stay out of the snapshot map.
	if _, ok := s.Paths[PathAQP.String()]; ok {
		t.Fatalf("snapshot has stats for the unused aqp path")
	}
}

func TestTenantClassStats(t *testing.T) {
	if got := ClassOf("client-17"); got != "client" {
		t.Fatalf("ClassOf(client-17) = %q", got)
	}
	if got := ClassOf(""); got != "default" {
		t.Fatalf("ClassOf(\"\") = %q", got)
	}
	r := NewServeRecorder(0)
	for i := 0; i < 3; i++ {
		ts := r.Tenant("client")
		ts.Queries.Add(1)
		ts.Lat.RecordDur(time.Duration(i+1) * time.Millisecond)
	}
	r.TenantReject("batch")
	s := r.Snapshot()
	if s.Tenants["client"].Queries != 3 {
		t.Fatalf("tenant snapshot = %+v", s.Tenants)
	}
	if s.Tenants["batch"].Rejected != 1 {
		t.Fatalf("tenant reject not recorded: %+v", s.Tenants)
	}
}

func TestAuditRecorder(t *testing.T) {
	r := NewServeRecorder(0)
	a := r.Audit()
	a.Record(0, "avg", "fallback", 0.10)
	a.Record(0, "avg", "fallback", 0.30)
	a.Record(1, "sum", "shadow", 0.05)
	if n := a.Samples(); n != 3 {
		t.Fatalf("samples = %d, want 3", n)
	}
	mape, fn := a.MAPE("fallback")
	if fn != 2 {
		t.Fatalf("fallback sample count = %d, want 2", fn)
	}
	if mape < 0.19 || mape > 0.21 {
		t.Fatalf("fallback MAPE = %v, want ~0.20", mape)
	}
	snaps := r.Snapshot().Audit
	if len(snaps) != 2 {
		t.Fatalf("audit snapshot rows = %d, want 2 (one per key)", len(snaps))
	}
	for _, as := range snaps {
		if as.Source == "shadow" && (as.MAPE < 0.049 || as.MAPE > 0.051) {
			t.Fatalf("shadow MAPE = %v, want ~0.05", as.MAPE)
		}
	}
}

func TestServeRecorderConcurrent(t *testing.T) {
	r := NewServeRecorder(0)
	var wg sync.WaitGroup
	const workers, each = 16, 200
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Observe(time.Microsecond, i%2 == 0)
				if i%50 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if s := r.Snapshot(); s.Queries != workers*each {
		t.Errorf("queries = %d, want %d", s.Queries, workers*each)
	}
}

func TestIngestAndDriftCounters(t *testing.T) {
	r := NewServeRecorder(8)
	r.IngestBatch(10)
	r.IngestBatch(5)
	r.DriftInvalidate(3)
	r.DriftInvalidate(0) // no-op
	r.Rebuild()
	s := r.Snapshot()
	if s.IngestBatches != 2 || s.IngestRows != 15 {
		t.Fatalf("ingest counters = %d batches / %d rows, want 2/15", s.IngestBatches, s.IngestRows)
	}
	if s.DriftInvalidations != 3 {
		t.Fatalf("DriftInvalidations = %d, want 3", s.DriftInvalidations)
	}
	if s.Rebuilds != 1 {
		t.Fatalf("Rebuilds = %d, want 1", s.Rebuilds)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewServeRecorder(8)
	r.Observe(2*time.Millisecond, true)
	r.Observe(4*time.Millisecond, false)
	r.IngestBatch(7)
	r.Rebuild()
	var buf strings.Builder
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"sea_queries_total 2",
		"sea_predicted_total 1",
		"sea_fallbacks_total 1",
		"sea_ingest_rows_total 7",
		"sea_rebuilds_total 1",
		"# TYPE sea_queries_total counter",
		"# TYPE sea_qps gauge",
		`sea_latency_seconds{quantile="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Every series WritePrometheus emits must carry HELP and TYPE.
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := strings.FieldsFunc(line, func(r rune) bool { return r == '{' || r == ' ' })[0]
		if !strings.Contains(out, "# HELP "+name+" ") {
			t.Fatalf("series %s has no HELP:\n%s", name, out)
		}
		if !strings.Contains(out, "# TYPE "+name+" ") {
			t.Fatalf("series %s has no TYPE:\n%s", name, out)
		}
	}
}

func TestWriteRecorderHistograms(t *testing.T) {
	r := NewServeRecorder(0)
	r.ObservePath(2*time.Millisecond, PathModel)
	r.ObservePath(40*time.Millisecond, PathExactScatter)
	ts := r.Tenant("client")
	ts.Queries.Add(1)
	ts.Lat.RecordDur(3 * time.Millisecond)
	r.TenantReject("client")
	r.Audit().Record(0, "avg", "shadow", 0.02)
	r.RegisterGauge("sea_wal_segments", "WAL segment files.", func() float64 { return 4 })

	var buf strings.Builder
	if err := r.WriteRecorder(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE sea_path_latency_seconds histogram",
		`sea_path_latency_seconds_bucket{path="model",le="+Inf"} 1`,
		`sea_path_latency_seconds_count{path="exact_scatter"} 1`,
		`sea_tenant_queries_total{class="client"} 1`,
		`sea_tenant_rejected_total{class="client"} 1`,
		"# TYPE sea_tenant_latency_seconds histogram",
		"# TYPE sea_audit_error histogram",
		`sea_audit_error_count{agent="0",agg="avg",source="shadow"} 1`,
		"sea_audit_samples_total 1",
		"sea_wal_segments 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("recorder exposition missing %q:\n%s", want, out)
		}
	}
	// Histogram buckets must be cumulative and end at the count.
	if !strings.Contains(out, `sea_path_latency_seconds_sum{path="model"} 0.002`) {
		t.Fatalf("model path _sum wrong:\n%s", out)
	}
}
