package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestServeRecorderCountersAndPercentiles(t *testing.T) {
	r := NewServeRecorder(128)
	for i := 1; i <= 100; i++ {
		r.Observe(time.Duration(i)*time.Millisecond, i%10 != 0)
	}
	r.Reject()
	r.Dedup(2 * time.Millisecond)
	r.Error()

	s := r.Snapshot()
	// A deduped answer counts as a query but not as a fallback: only
	// the one shared oracle execution does.
	if s.Queries != 101 || s.Predicted != 90 || s.Fallbacks != 10 {
		t.Errorf("counters: %+v", s)
	}
	if s.Rejected != 1 || s.Deduped != 1 || s.Errors != 1 {
		t.Errorf("event counters: %+v", s)
	}
	if want := 10.0 / 101.0; s.FallbackRate != want {
		t.Errorf("fallback rate = %v, want %v", s.FallbackRate, want)
	}
	// 100 samples of 1..100ms: p50 ~ 50ms, p99 ~ 99-100ms, max 100ms.
	if s.P50 < 45*time.Millisecond || s.P50 > 55*time.Millisecond {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.P99 < 95*time.Millisecond || s.P99 > 100*time.Millisecond {
		t.Errorf("p99 = %v", s.P99)
	}
	if s.Max != 100*time.Millisecond {
		t.Errorf("max = %v", s.Max)
	}
	if s.QPS <= 0 {
		t.Errorf("qps = %v", s.QPS)
	}
}

func TestServeRecorderWindowWraps(t *testing.T) {
	r := NewServeRecorder(8)
	// 20 observations through an 8-slot ring: only the last 8 remain in
	// the percentile window, but lifetime counters keep everything.
	for i := 1; i <= 20; i++ {
		r.Observe(time.Duration(i)*time.Second, true)
	}
	s := r.Snapshot()
	if s.Queries != 20 {
		t.Errorf("queries = %d, want 20", s.Queries)
	}
	if s.Max != 20*time.Second {
		t.Errorf("max = %v, want 20s", s.Max)
	}
	if s.P50 < 13*time.Second {
		t.Errorf("p50 = %v, want within the recent window (13..20s)", s.P50)
	}
}

func TestServeRecorderConcurrent(t *testing.T) {
	r := NewServeRecorder(0)
	var wg sync.WaitGroup
	const workers, each = 16, 200
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Observe(time.Microsecond, i%2 == 0)
				if i%50 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if s := r.Snapshot(); s.Queries != workers*each {
		t.Errorf("queries = %d, want %d", s.Queries, workers*each)
	}
}

func TestIngestAndDriftCounters(t *testing.T) {
	r := NewServeRecorder(8)
	r.IngestBatch(10)
	r.IngestBatch(5)
	r.DriftInvalidate(3)
	r.DriftInvalidate(0) // no-op
	r.Rebuild()
	s := r.Snapshot()
	if s.IngestBatches != 2 || s.IngestRows != 15 {
		t.Fatalf("ingest counters = %d batches / %d rows, want 2/15", s.IngestBatches, s.IngestRows)
	}
	if s.DriftInvalidations != 3 {
		t.Fatalf("DriftInvalidations = %d, want 3", s.DriftInvalidations)
	}
	if s.Rebuilds != 1 {
		t.Fatalf("Rebuilds = %d, want 1", s.Rebuilds)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewServeRecorder(8)
	r.Observe(2*time.Millisecond, true)
	r.Observe(4*time.Millisecond, false)
	r.IngestBatch(7)
	r.Rebuild()
	var buf strings.Builder
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"sea_queries_total 2",
		"sea_predicted_total 1",
		"sea_fallbacks_total 1",
		"sea_ingest_rows_total 7",
		"sea_rebuilds_total 1",
		"# TYPE sea_queries_total counter",
		"# TYPE sea_qps gauge",
		`sea_latency_seconds{quantile="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}
