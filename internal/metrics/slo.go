package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SLOConfig declares per-tenant-class service objectives. Objectives
// are evaluated as multi-window burn rates in the Google SRE style: a
// burn rate of 1.0 means the class is consuming its error budget
// exactly as fast as the budget allows; 6.0 means the budget for the
// whole compliance period would be gone in 1/6th of it.
type SLOConfig struct {
	// LatencyObjective is the per-query latency threshold: queries
	// slower than this are budget-burning "bad events".
	LatencyObjective time.Duration
	// LatencyBudget is the allowed fraction of bad (slow) events —
	// 0.01 reads as "99% of queries complete within the objective".
	LatencyBudget float64
	// ErrorBudget is the allowed fraction of rejected submissions
	// (admission-control rejections are the per-class failure signal).
	ErrorBudget float64
	// FastWindow/SlowWindow are the two burn-rate evaluation windows.
	// The fast window reacts quickly; the slow window confirms the
	// burn is sustained rather than a blip.
	FastWindow time.Duration
	SlowWindow time.Duration
	// WarnBurn/CritBurn are the burn-rate thresholds for the warn and
	// critical states.
	WarnBurn float64
	CritBurn float64
	// Interval is the background sampling period.
	Interval time.Duration
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.LatencyObjective <= 0 {
		c.LatencyObjective = 250 * time.Millisecond
	}
	if c.LatencyBudget <= 0 {
		c.LatencyBudget = 0.01
	}
	if c.ErrorBudget <= 0 {
		c.ErrorBudget = 0.001
	}
	if c.FastWindow <= 0 {
		c.FastWindow = time.Minute
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = 30 * time.Minute
	}
	if c.WarnBurn <= 0 {
		c.WarnBurn = 1.0
	}
	if c.CritBurn <= 0 {
		c.CritBurn = 6.0
	}
	if c.Interval <= 0 {
		c.Interval = 5 * time.Second
	}
	return c
}

// sloCounts is one class's cumulative counters at a sample instant.
type sloCounts struct {
	queries  int64 // completed queries
	slow     int64 // queries above the latency objective (estimated)
	rejected int64 // admission rejections
}

// sloSample is one point-in-time reading of every class.
type sloSample struct {
	t       time.Time
	classes map[string]sloCounts
}

// SLOClassState is one tenant class's evaluated objective state.
type SLOClassState struct {
	Class    string  `json:"class"`
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	// State is "ok", "warn" or "critical": critical when the fast
	// window burns at CritBurn with the slow window confirming at
	// WarnBurn, warn when the fast window alone reaches WarnBurn.
	State string `json:"state"`
}

// SLOEngine periodically samples a ServeRecorder's per-class counters
// and evaluates burn rates over the configured windows. All methods
// are safe on a nil receiver (everything reports empty/ok), so callers
// can wire it unconditionally.
type SLOEngine struct {
	cfg SLOConfig
	rec *ServeRecorder

	mu      sync.Mutex
	samples []sloSample

	// Worst-class burn rates and state from the latest Tick, cached in
	// atomics so the flight recorder can sample them every second
	// without taking mu or allocating the States slice.
	worstFast  atomic.Uint64 // math.Float64bits
	worstSlow  atomic.Uint64 // math.Float64bits
	worstState atomic.Int64  // 0=ok 1=warn 2=critical

	stop chan struct{}
	done chan struct{}
}

// NewSLOEngine builds an engine bound to rec. Call Start for
// background sampling or Tick from a test/driver clock.
func NewSLOEngine(rec *ServeRecorder, cfg SLOConfig) *SLOEngine {
	return &SLOEngine{cfg: cfg.withDefaults(), rec: rec}
}

// Config returns the engine's resolved configuration.
func (e *SLOEngine) Config() SLOConfig {
	if e == nil {
		return SLOConfig{}
	}
	return e.cfg
}

// Tick takes one sample at the given instant and prunes readings older
// than the slow window. Exported so tests (and single-shot tools) can
// drive the engine with a synthetic clock.
func (e *SLOEngine) Tick(now time.Time) {
	if e == nil || e.rec == nil {
		return
	}
	obj := int64(e.cfg.LatencyObjective)
	classes := make(map[string]sloCounts)
	e.rec.tenantMu.RLock()
	for class, ts := range e.rec.tenants {
		hs := ts.Lat.Snapshot()
		classes[class] = sloCounts{
			queries:  hs.Count,
			slow:     hs.CountAbove(obj),
			rejected: ts.Rejected.Load(),
		}
	}
	e.rec.tenantMu.RUnlock()

	e.mu.Lock()
	e.samples = append(e.samples, sloSample{t: now, classes: classes})
	cutoff := now.Add(-e.cfg.SlowWindow - e.cfg.Interval)
	drop := 0
	for drop < len(e.samples)-1 && e.samples[drop].t.Before(cutoff) {
		drop++
	}
	if drop > 0 {
		e.samples = append(e.samples[:0], e.samples[drop:]...)
	}
	e.mu.Unlock()

	// Refresh the cached worst-class view (States takes mu itself).
	var fast, slow float64
	var worst int64
	for _, st := range e.States() {
		if st.FastBurn > fast {
			fast = st.FastBurn
		}
		if st.SlowBurn > slow {
			slow = st.SlowBurn
		}
		if v := int64(sloStateValue(st.State)); v > worst {
			worst = v
		}
	}
	e.worstFast.Store(math.Float64bits(fast))
	e.worstSlow.Store(math.Float64bits(slow))
	e.worstState.Store(worst)
}

// WorstBurn returns the highest per-class fast- and slow-window burn
// rates as of the latest Tick. Lock-free and allocation-free: safe to
// sample every second.
func (e *SLOEngine) WorstBurn() (fast, slow float64) {
	if e == nil {
		return 0, 0
	}
	return math.Float64frombits(e.worstFast.Load()),
		math.Float64frombits(e.worstSlow.Load())
}

// WorstState returns the worst per-class objective state as of the
// latest Tick (0=ok 1=warn 2=critical), without locks or allocation.
func (e *SLOEngine) WorstState() int {
	if e == nil {
		return 0
	}
	return int(e.worstState.Load())
}

// Start launches the background sampler. Stop terminates it.
func (e *SLOEngine) Start() {
	if e == nil || e.stop != nil {
		return
	}
	e.stop = make(chan struct{})
	e.done = make(chan struct{})
	go func() {
		defer close(e.done)
		tick := time.NewTicker(e.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case now := <-tick.C:
				e.Tick(now)
			case <-e.stop:
				return
			}
		}
	}()
}

// Stop terminates the background sampler (idempotent, nil-safe).
func (e *SLOEngine) Stop() {
	if e == nil || e.stop == nil {
		return
	}
	select {
	case <-e.stop:
	default:
		close(e.stop)
	}
	<-e.done
}

// burnOver computes a class's burn rate over the window ending at the
// latest sample: the worse of the latency burn (slow fraction over
// LatencyBudget) and the rejection burn (rejected fraction over
// ErrorBudget). Windows shorter than the engine's uptime use the full
// recorded span.
func (e *SLOEngine) burnOver(class string, window time.Duration) float64 {
	last := e.samples[len(e.samples)-1]
	start := last.t.Add(-window)
	base := e.samples[0]
	for _, s := range e.samples {
		if s.t.After(start) {
			break
		}
		base = s
	}
	cur := last.classes[class]
	old := base.classes[class]
	dq := cur.queries - old.queries
	dslow := cur.slow - old.slow
	drej := cur.rejected - old.rejected
	var burn float64
	if dq > 0 {
		burn = float64(dslow) / float64(dq) / e.cfg.LatencyBudget
	}
	if sub := dq + drej; sub > 0 && drej > 0 {
		if eb := float64(drej) / float64(sub) / e.cfg.ErrorBudget; eb > burn {
			burn = eb
		}
	}
	return burn
}

// States evaluates every sampled class, sorted by class name. Empty
// until two samples exist (burn rates need a delta).
func (e *SLOEngine) States() []SLOClassState {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.samples) < 2 {
		return nil
	}
	last := e.samples[len(e.samples)-1]
	out := make([]SLOClassState, 0, len(last.classes))
	for class := range last.classes {
		st := SLOClassState{
			Class:    class,
			FastBurn: e.burnOver(class, e.cfg.FastWindow),
			SlowBurn: e.burnOver(class, e.cfg.SlowWindow),
		}
		switch {
		case st.FastBurn >= e.cfg.CritBurn && st.SlowBurn >= e.cfg.WarnBurn:
			st.State = "critical"
		case st.FastBurn >= e.cfg.WarnBurn:
			st.State = "warn"
		default:
			st.State = "ok"
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// sloStateValue maps a state to its gauge encoding.
func sloStateValue(state string) int {
	switch state {
	case "critical":
		return 2
	case "warn":
		return 1
	}
	return 0
}

// WritePrometheus emits sea_slo_burn_rate{class,window} and
// sea_slo_state{class} (0=ok 1=warn 2=critical) for every class.
func (e *SLOEngine) WritePrometheus(w io.Writer) error {
	states := e.States()
	if len(states) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w,
		"# HELP sea_slo_burn_rate Error-budget burn rate by tenant class and window.\n"+
			"# TYPE sea_slo_burn_rate gauge\n"); err != nil {
		return err
	}
	for _, st := range states {
		if _, err := fmt.Fprintf(w, "sea_slo_burn_rate{%s,window=\"fast\"} %g\n",
			Label("class", st.Class), st.FastBurn); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "sea_slo_burn_rate{%s,window=\"slow\"} %g\n",
			Label("class", st.Class), st.SlowBurn); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w,
		"# HELP sea_slo_state Objective state by tenant class (0=ok 1=warn 2=critical).\n"+
			"# TYPE sea_slo_state gauge\n"); err != nil {
		return err
	}
	for _, st := range states {
		if _, err := fmt.Fprintf(w, "sea_slo_state{%s} %d\n",
			Label("class", st.Class), sloStateValue(st.State)); err != nil {
			return err
		}
	}
	return nil
}
