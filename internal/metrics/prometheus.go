package metrics

import (
	"fmt"
	"io"
	"sort"
)

// PrometheusContentType is the content type of the text exposition
// format WritePrometheus emits.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// Latency histogram exposition bounds: 2^10 ns (~1us) doubling to
// 2^34 ns (~17s); audit-error bounds: 2^16 err-units (~6.6e-5
// relative) doubling to 2^36 (~69).
const (
	latMinOctave = 10
	latMaxOctave = 34
	errMinOctave = 16
	errMaxOctave = 36
)

// WritePrometheus renders a serving snapshot in the Prometheus text
// exposition format: lifetime counters as *_total series, rates and
// latency percentiles as gauges. Every series carries HELP/TYPE.
// Snapshot-only form — WriteRecorder additionally emits the real
// per-path histograms, tenant-class series, audit histograms and
// registered gauges the snapshot does not carry bucket data for.
func WritePrometheus(w io.Writer, s ServeSnapshot) error {
	counters := []struct {
		name, help string
		v          int64
	}{
		{"sea_queries_total", "Answered queries (predicted + fallbacks + deduped).", s.Queries},
		{"sea_predicted_total", "Queries answered data-lessly from learned models.", s.Predicted},
		{"sea_fallbacks_total", "Queries that executed the exact oracle path.", s.Fallbacks},
		{"sea_deduped_total", "Queries served by sharing an identical in-flight fallback.", s.Deduped},
		{"sea_cache_hits_total", "Queries served from the versioned answer cache.", s.CacheHits},
		{"sea_rejected_total", "Submissions turned away by admission control.", s.Rejected},
		{"sea_errors_total", "Failed queries.", s.Errors},
		{"sea_ingest_batches_total", "Row batches applied through the live write path.", s.IngestBatches},
		{"sea_ingest_rows_total", "Rows applied through the live write path.", s.IngestRows},
		{"sea_drift_invalidations_total", "Quanta invalidated by the ingest drift budget.", s.DriftInvalidations},
		{"sea_rebuilds_total", "Completed background model re-quantisations.", s.Rebuilds},
		{"sea_rpc_retries_total", "Retried inter-node RPC attempts.", s.RPCRetries},
		{"sea_hedges_total", "Hedged scatter RPCs fired against a second holder.", s.Hedges},
		{"sea_degraded_answers_total", "Queries answered with partial partition coverage.", s.DegradedAnswers},
	}
	for _, c := range counters {
		if err := writeSeries(w, c.name, c.help, "counter", float64(c.v)); err != nil {
			return err
		}
	}
	gauges := []struct {
		name, help string
		v          float64
	}{
		{"sea_qps", "Lifetime queries per second.", s.QPS},
		{"sea_fallback_rate", "Fraction of queries that ran the exact path.", s.FallbackRate},
		{"sea_uptime_seconds", "Recorder uptime.", s.Uptime.Seconds()},
	}
	for _, g := range gauges {
		if err := writeSeries(w, g.name, g.help, "gauge", g.v); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w,
		"# HELP sea_latency_seconds Query latency quantiles from the merged answer-path histograms.\n"+
			"# TYPE sea_latency_seconds gauge\n"+
			"sea_latency_seconds{quantile=\"0.5\"} %g\n"+
			"sea_latency_seconds{quantile=\"0.9\"} %g\n"+
			"sea_latency_seconds{quantile=\"0.99\"} %g\n"+
			"sea_latency_seconds{quantile=\"1\"} %g\n",
		s.P50.Seconds(), s.P90.Seconds(), s.P99.Seconds(), s.Max.Seconds()); err != nil {
		return err
	}
	return nil
}

// WriteRecorder renders the full exposition: everything WritePrometheus
// emits plus real Prometheus histograms (`_bucket`/`_sum`/`_count`)
// for every answer path's latency distribution and every accuracy-audit
// error histogram, per-tenant-class counters, and the registered
// gauges. Serving front-ends mount it on GET /v1/metrics so one scrape
// config covers single-node servers and every cluster member alike.
func (r *ServeRecorder) WriteRecorder(w io.Writer) error {
	if err := WritePrometheus(w, r.Snapshot()); err != nil {
		return err
	}

	// Per-path latency histograms.
	if _, err := fmt.Fprintf(w,
		"# HELP sea_path_latency_seconds Query latency by answer path.\n"+
			"# TYPE sea_path_latency_seconds histogram\n"); err != nil {
		return err
	}
	for p := Path(0); p < NumPaths; p++ {
		hs := r.paths[p].Snapshot()
		if hs.Count == 0 {
			continue
		}
		if err := writeHist(w, "sea_path_latency_seconds",
			Label("path", p.String()), hs, latMinOctave, latMaxOctave, 1e-9); err != nil {
			return err
		}
	}

	// Per-tenant-class admission and latency series.
	r.tenantMu.RLock()
	classes := make([]string, 0, len(r.tenants))
	for class := range r.tenants {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	stats := make([]*TenantStats, len(classes))
	for i, class := range classes {
		stats[i] = r.tenants[class]
	}
	r.tenantMu.RUnlock()
	if len(classes) > 0 {
		if _, err := fmt.Fprintf(w,
			"# HELP sea_tenant_queries_total Completed queries by tenant class.\n"+
				"# TYPE sea_tenant_queries_total counter\n"); err != nil {
			return err
		}
		for i, class := range classes {
			if _, err := fmt.Fprintf(w, "sea_tenant_queries_total{%s} %d\n", Label("class", class), stats[i].Queries.Load()); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w,
			"# HELP sea_tenant_rejected_total Admission rejections by tenant class.\n"+
				"# TYPE sea_tenant_rejected_total counter\n"); err != nil {
			return err
		}
		for i, class := range classes {
			if _, err := fmt.Fprintf(w, "sea_tenant_rejected_total{%s} %d\n", Label("class", class), stats[i].Rejected.Load()); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w,
			"# HELP sea_tenant_inflight Queued plus running queries by tenant class.\n"+
				"# TYPE sea_tenant_inflight gauge\n"); err != nil {
			return err
		}
		for i, class := range classes {
			if _, err := fmt.Fprintf(w, "sea_tenant_inflight{%s} %d\n", Label("class", class), stats[i].Inflight.Load()); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w,
			"# HELP sea_tenant_latency_seconds Query latency (queue wait + execution) by tenant class.\n"+
				"# TYPE sea_tenant_latency_seconds histogram\n"); err != nil {
			return err
		}
		for i, class := range classes {
			hs := stats[i].Lat.Snapshot()
			if hs.Count == 0 {
				continue
			}
			if err := writeHist(w, "sea_tenant_latency_seconds",
				Label("class", class), hs, latMinOctave, latMaxOctave, 1e-9); err != nil {
				return err
			}
		}
	}

	// Accuracy-audit error histograms.
	if _, err := fmt.Fprintf(w,
		"# HELP sea_audit_error Predicted-vs-truth relative error of audited model answers.\n"+
			"# TYPE sea_audit_error histogram\n"); err != nil {
		return err
	}
	var histErr error
	r.audit.Hists(func(k AuditKey, h *Histogram) {
		if histErr != nil {
			return
		}
		hs := h.Snapshot()
		if hs.Count == 0 {
			return
		}
		labels := Label("agent", fmt.Sprint(k.Agent)) + "," +
			Label("agg", k.Agg) + "," + Label("source", k.Source)
		histErr = writeHist(w, "sea_audit_error", labels, hs, errMinOctave, errMaxOctave, 1/ErrScale)
	})
	if histErr != nil {
		return histErr
	}
	if err := writeSeries(w, "sea_audit_samples_total",
		"Model answers audited against an exact evaluation.", "counter",
		float64(r.audit.Samples())); err != nil {
		return err
	}

	// SLO burn rates, when an engine is attached (nil-safe no-op
	// otherwise).
	if err := r.slo.Load().WritePrometheus(w); err != nil {
		return err
	}

	// Registered gauges (WAL segments, absorbed version, probation
	// quanta, queue depth — owned by other subsystems).
	for _, g := range r.Gauges() {
		if err := writeSeries(w, g.Name, g.Help, "gauge", g.Fn()); err != nil {
			return err
		}
	}
	return nil
}

// writeHist emits one labeled histogram series set: cumulative
// `_bucket{le=...}` lines, `_sum` and `_count`. The caller emits the
// shared HELP/TYPE header once per metric name.
func writeHist(w io.Writer, name, labels string, hs HistSnapshot, minOct, maxOct int, scale float64) error {
	sep := ""
	if labels != "" {
		sep = ","
	}
	for _, b := range hs.PromBuckets(minOct, maxOct, scale) {
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, b.LE, b.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, hs.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, float64(hs.Sum)*scale); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, hs.Count)
	return err
}

func writeSeries(w io.Writer, name, help, kind string, v float64) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, kind, name, v)
	return err
}
