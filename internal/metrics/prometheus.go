package metrics

import (
	"fmt"
	"io"
)

// PrometheusContentType is the content type of the text exposition
// format WritePrometheus emits.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders a serving snapshot in the Prometheus text
// exposition format: lifetime counters as *_total series, rates and
// latency percentiles as gauges. Serving front-ends mount it on
// GET /v1/metrics so one scrape config covers single-node servers and
// every cluster member alike.
func WritePrometheus(w io.Writer, s ServeSnapshot) error {
	counters := []struct {
		name, help string
		v          int64
	}{
		{"sea_queries_total", "Answered queries (predicted + fallbacks + deduped).", s.Queries},
		{"sea_predicted_total", "Queries answered data-lessly from learned models.", s.Predicted},
		{"sea_fallbacks_total", "Queries that executed the exact oracle path.", s.Fallbacks},
		{"sea_deduped_total", "Queries served by sharing an identical in-flight fallback.", s.Deduped},
		{"sea_cache_hits_total", "Queries served from the versioned answer cache.", s.CacheHits},
		{"sea_rejected_total", "Submissions turned away by admission control.", s.Rejected},
		{"sea_errors_total", "Failed queries.", s.Errors},
		{"sea_ingest_batches_total", "Row batches applied through the live write path.", s.IngestBatches},
		{"sea_ingest_rows_total", "Rows applied through the live write path.", s.IngestRows},
		{"sea_drift_invalidations_total", "Quanta invalidated by the ingest drift budget.", s.DriftInvalidations},
		{"sea_rebuilds_total", "Completed background model re-quantisations.", s.Rebuilds},
	}
	for _, c := range counters {
		if err := writeSeries(w, c.name, c.help, "counter", float64(c.v)); err != nil {
			return err
		}
	}
	gauges := []struct {
		name, help string
		v          float64
	}{
		{"sea_qps", "Lifetime queries per second.", s.QPS},
		{"sea_fallback_rate", "Fraction of queries that ran the exact path.", s.FallbackRate},
		{"sea_uptime_seconds", "Recorder uptime.", s.Uptime.Seconds()},
	}
	for _, g := range gauges {
		if err := writeSeries(w, g.name, g.help, "gauge", g.v); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w,
		"# HELP sea_latency_seconds Query latency percentiles over the recent window.\n"+
			"# TYPE sea_latency_seconds gauge\n"+
			"sea_latency_seconds{quantile=\"0.5\"} %g\n"+
			"sea_latency_seconds{quantile=\"0.9\"} %g\n"+
			"sea_latency_seconds{quantile=\"0.99\"} %g\n"+
			"sea_latency_seconds{quantile=\"1\"} %g\n",
		s.P50.Seconds(), s.P90.Seconds(), s.P99.Seconds(), s.Max.Seconds()); err != nil {
		return err
	}
	return nil
}

func writeSeries(w io.Writer, name, help, kind string, v float64) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, kind, name, v)
	return err
}
