package metrics

import (
	"testing"
	"testing/quick"
	"time"
)

func TestCostAdd(t *testing.T) {
	a := Cost{Time: time.Second, RowsRead: 10, BytesLAN: 100, NodesTouched: 2}
	b := Cost{Time: 2 * time.Second, RowsRead: 5, BytesWAN: 7, NodesTouched: 1}
	got := a.Add(b)
	if got.Time != 3*time.Second || got.RowsRead != 15 || got.BytesLAN != 100 ||
		got.BytesWAN != 7 || got.NodesTouched != 3 {
		t.Errorf("Add = %+v", got)
	}
}

func TestCostMergeTakesMaxTime(t *testing.T) {
	a := Cost{Time: time.Second, Messages: 1}
	b := Cost{Time: 3 * time.Second, Messages: 2}
	got := a.Merge(b)
	if got.Time != 3*time.Second {
		t.Errorf("Merge time = %v, want 3s", got.Time)
	}
	if got.Messages != 3 {
		t.Errorf("Merge messages = %d, want 3", got.Messages)
	}
}

func TestCostIsZeroAndString(t *testing.T) {
	var c Cost
	if !c.IsZero() {
		t.Error("zero cost should be zero")
	}
	c.RowsRead = 1
	if c.IsZero() {
		t.Error("non-zero cost reported zero")
	}
	if c.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestPriceModel(t *testing.T) {
	p := DefaultPrices()
	c := Cost{
		CPUTime:  time.Hour,
		BytesLAN: 1 << 30,
		BytesWAN: 1 << 30,
		RowsRead: 1e6,
	}
	d := p.Dollars(c)
	want := 0.0001*3600 + 0.01 + 0.09 + 0.0005
	if diff := d - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Dollars = %v, want %v", d, want)
	}
	if p.Dollars(Cost{}) != 0 {
		t.Error("zero cost should be free")
	}
}

func TestCounter(t *testing.T) {
	var a Counter
	a.Observe(Cost{Time: time.Second})
	a.Observe(Cost{Time: 3 * time.Second})
	if a.Count() != 2 {
		t.Errorf("Count = %d", a.Count())
	}
	if a.MeanTime() != 2*time.Second {
		t.Errorf("MeanTime = %v", a.MeanTime())
	}
	a.Reset()
	if a.Count() != 0 || !a.Total().IsZero() {
		t.Error("Reset did not clear")
	}
	if a.MeanTime() != 0 {
		t.Error("MeanTime on empty should be 0")
	}
}

// Property: Add is commutative and Merge time is max.
func TestCostAlgebraProperties(t *testing.T) {
	f := func(t1, t2 uint32, r1, r2 uint16) bool {
		a := Cost{Time: time.Duration(t1), RowsRead: int64(r1)}
		b := Cost{Time: time.Duration(t2), RowsRead: int64(r2)}
		ab, ba := a.Add(b), b.Add(a)
		m := a.Merge(b)
		maxT := a.Time
		if b.Time > maxT {
			maxT = b.Time
		}
		return ab == ba && m.Time == maxT && m.RowsRead == ab.RowsRead
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
