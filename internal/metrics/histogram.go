package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a mergeable log-linear histogram over non-negative
// int64 values (latency in nanoseconds; relative errors scaled by
// ErrScale). Buckets follow the classic log-linear scheme: values below
// 2^subBits are exact, larger values split each power-of-two octave
// into 2^subBits sub-buckets, bounding relative bucket width to
// 1/2^subBits (6.25%). Recording is lock-free — an atomic add into one
// of a few shards picked by a value hash, so concurrent recorders on
// different values never contend — and snapshots merge the shards.
//
// The same structure serves two masters: quantile estimation for the
// stats endpoint (with linear interpolation inside the landing bucket)
// and real Prometheus histogram exposition, where the fine buckets are
// collapsed to per-octave cumulative `le` bounds to keep /v1/metrics
// readable.
type Histogram struct {
	shards [histShards]histShard
	maxV   atomic.Int64
}

const (
	subBits    = 4
	subCount   = 1 << subBits
	histShards = 4
	// numBuckets covers the full non-negative int64 range:
	// (63-subBits+1)*subCount + subCount-1 < 976.
	numBuckets = 976
)

type histShard struct {
	counts [numBuckets]atomic.Int64
	sum    atomic.Int64
	count  atomic.Int64
	_      [64]byte // keep shards off each other's cache lines
}

// ErrScale converts a relative error to histogram units (and back):
// errors are recorded as round(err*ErrScale) so one integer histogram
// type covers both latencies and accuracy-audit errors.
const ErrScale = 1e9

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subCount {
		return int(v)
	}
	o := bits.Len64(uint64(v)) - 1 // octave: 2^o <= v < 2^(o+1)
	s := int((v >> (uint(o) - subBits)) & (subCount - 1))
	idx := (o-subBits+1)*subCount + s
	if idx >= numBuckets {
		return numBuckets - 1
	}
	return idx
}

// bucketBounds returns bucket idx's half-open value range [lo, hi).
func bucketBounds(idx int) (lo, hi int64) {
	if idx < subCount {
		return int64(idx), int64(idx) + 1
	}
	o := uint(idx/subCount + subBits - 1)
	s := int64(idx % subCount)
	lo = int64(1)<<o + s<<(o-subBits)
	return lo, lo + int64(1)<<(o-subBits)
}

// Record adds one observation.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	// Shard by a cheap value hash: near-identical values (the common
	// latency case differs in low bits) spread across shards.
	sh := &h.shards[(uint64(v)*0x9e3779b97f4a7c15)>>62&(histShards-1)]
	sh.counts[bucketOf(v)].Add(1)
	sh.sum.Add(v)
	sh.count.Add(1)
	for {
		cur := h.maxV.Load()
		if v <= cur || h.maxV.CompareAndSwap(cur, v) {
			return
		}
	}
}

// RecordDur records a latency observation.
func (h *Histogram) RecordDur(d time.Duration) { h.Record(int64(d)) }

// RecordErr records a relative-error observation.
func (h *Histogram) RecordErr(rel float64) {
	if math.IsNaN(rel) || rel < 0 {
		return
	}
	if rel > math.MaxInt64/ErrScale {
		rel = math.MaxInt64 / ErrScale
	}
	h.Record(int64(rel * ErrScale))
}

// HistSnapshot is a merged, immutable view of a histogram.
type HistSnapshot struct {
	Counts []int64 // per fine bucket
	Sum    int64
	Count  int64
	Max    int64
}

// Snapshot merges the shards into one view. Concurrent Record calls
// may or may not be included; the view is internally consistent enough
// for monitoring (sum/count/buckets each read atomically).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	h.SnapshotInto(&s)
	return s
}

// SnapshotInto merges the shards into s, reusing its Counts buffer —
// the allocation-free form of Snapshot for periodic samplers (the
// flight recorder calls it every second and must stay 0 allocs/op at
// steady state). s is fully overwritten.
func (h *Histogram) SnapshotInto(s *HistSnapshot) {
	if cap(s.Counts) < numBuckets {
		s.Counts = make([]int64, numBuckets)
	}
	s.Counts = s.Counts[:numBuckets]
	for i := range s.Counts {
		s.Counts[i] = 0
	}
	s.Sum, s.Count, s.Max = 0, 0, h.maxV.Load()
	for i := range h.shards {
		sh := &h.shards[i]
		s.Sum += sh.sum.Load()
		s.Count += sh.count.Load()
		for b := 0; b < numBuckets; b++ {
			if c := sh.counts[b].Load(); c != 0 {
				s.Counts[b] += c
			}
		}
	}
}

// Reset zeroes a snapshot in place (keeping its Counts buffer) so it
// can be rebuilt by Merge calls without reallocating.
func (s *HistSnapshot) Reset() {
	for i := range s.Counts {
		s.Counts[i] = 0
	}
	s.Sum, s.Count, s.Max = 0, 0, 0
}

// Merge folds other into s (for all-paths aggregate views).
func (s *HistSnapshot) Merge(other HistSnapshot) {
	if s.Counts == nil {
		s.Counts = make([]int64, numBuckets)
	}
	for i, c := range other.Counts {
		s.Counts[i] += c
	}
	s.Sum += other.Sum
	s.Count += other.Count
	if other.Max > s.Max {
		s.Max = other.Max
	}
}

// Quantile estimates the p-quantile (0 < p <= 1) with linear
// interpolation inside the landing bucket, clamped to the observed
// maximum. Returns 0 on an empty histogram.
func (s HistSnapshot) Quantile(p float64) int64 {
	if s.Count == 0 {
		return 0
	}
	target := int64(math.Ceil(p * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if cum+c >= target {
			lo, hi := bucketBounds(i)
			frac := float64(target-cum) / float64(c)
			v := int64(float64(lo) + frac*float64(hi-lo))
			if s.Max > 0 && v > s.Max {
				v = s.Max
			}
			return v
		}
		cum += c
	}
	return s.Max
}

// CountAbove estimates how many observations exceeded v, interpolating
// linearly inside the bucket v lands in (consistent with Quantile).
// This is the SLO engine's bad-event counter: observations above the
// latency objective are budget burn.
func (s HistSnapshot) CountAbove(v int64) int64 {
	if s.Count == 0 || v < 0 {
		return s.Count
	}
	if s.Max > 0 && v >= s.Max {
		return 0
	}
	idx := bucketOf(v)
	var above int64
	for i := idx + 1; i < len(s.Counts); i++ {
		above += s.Counts[i]
	}
	if c := s.Counts[idx]; c > 0 {
		lo, hi := bucketBounds(idx)
		frac := float64(hi-1-v) / float64(hi-lo)
		if frac > 0 {
			above += int64(frac * float64(c))
		}
	}
	return above
}

// Mean returns the arithmetic mean (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// PromBucket is one cumulative Prometheus histogram bucket.
type PromBucket struct {
	LE    float64 // upper bound, in scaled units (see PromBuckets)
	Count int64   // cumulative count <= LE
}

// PromBuckets collapses the fine buckets to per-octave cumulative
// bounds for exposition: bounds double from 2^minOctave to 2^maxOctave
// (in raw units), each scaled by scale (1e-9 turns ns into seconds and
// err-units into plain relative error). The +Inf bucket is implicit:
// callers emit it from Count.
func (s HistSnapshot) PromBuckets(minOctave, maxOctave int, scale float64) []PromBucket {
	out := make([]PromBucket, 0, maxOctave-minOctave+1)
	var cum int64
	next := minOctave
	for i, c := range s.Counts {
		_, hi := bucketBounds(i)
		for next <= maxOctave && int64(1)<<uint(next) < hi {
			out = append(out, PromBucket{LE: float64(int64(1)<<uint(next)) * scale, Count: cum})
			next++
		}
		cum += c
	}
	for next <= maxOctave {
		out = append(out, PromBucket{LE: float64(int64(1)<<uint(next)) * scale, Count: cum})
		next++
	}
	return out
}
