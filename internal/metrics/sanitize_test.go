package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestLabelValue(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "empty"},
		{"client", "client"},
		{"a-b_c.d/e", "a-b_c.d/e"},
		{`back\slash`, `back\\slash`},
		{`qu"ote`, `qu\"ote`},
		{"new\nline", `new\nline`},
		{"tab\there", "tab_here"},
		{"bell\x07", "bell_"},
	}
	for _, c := range cases {
		if got := LabelValue(c.in); got != c.want {
			t.Errorf("LabelValue(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestPrometheusLabelInjection feeds a hostile tenant id that, with the
// old %q interpolation, could smuggle fabricated series into the
// exposition. The sanitized output must keep the whole id inside one
// quoted label value.
func TestPrometheusLabelInjection(t *testing.T) {
	r := NewServeRecorder(0)
	hostile := "evil\"} 1\nsea_fake_metric{x=\"y"
	r.TenantObserve(ClassOf(hostile), 5*time.Millisecond)
	r.TenantObserve("good", time.Millisecond)

	var b strings.Builder
	if err := r.WriteRecorder(&b); err != nil {
		t.Fatalf("WriteRecorder: %v", err)
	}
	out := b.String()
	// The hostile id stays inside a label value, so no exposition LINE
	// may start with the fabricated metric name (the raw substring does
	// appear — escaped — inside the quoted value).
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "sea_fake") {
			t.Fatalf("injected line escaped the label value: %q", line)
		}
	}
	if !strings.Contains(out, `class="evil\"} 1\nsea_fake_metric{x=\"y"`) {
		t.Fatalf("hostile class not present in escaped form:\n%s", out)
	}
	// Every non-comment line must be a bare "name[{labels}] value" —
	// quotes only balanced inside label braces.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, "\"")%2 != 0 {
			t.Fatalf("unbalanced quotes in exposition line: %q", line)
		}
	}
}
