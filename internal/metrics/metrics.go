// Package metrics provides the cost-accounting substrate for the SEA
// simulator: a virtual clock, resource counters (rows read, bytes moved,
// nodes touched), and a money-cost model.
//
// The paper's argument (ICDCS'18, §II.A) is entirely about costs: how many
// data-server nodes a query touches, how many bytes cross the network, how
// much work each BDAS layer adds. Every simulated component in this
// repository charges its work to a Cost value so that experiments can
// report the same three desiderata the paper names: scalability,
// efficiency, and money cost.
package metrics

import (
	"fmt"
	"time"
)

// Cost is the fully-itemised cost of executing one analytics task on the
// simulated infrastructure. Costs are value types: combine them with Add
// (sequential composition) or Merge (parallel composition, where virtual
// time is the max of the branches).
type Cost struct {
	// Time is virtual elapsed time: the critical-path latency of the task.
	Time time.Duration
	// CPUTime is total CPU work summed over all nodes (not critical path).
	CPUTime time.Duration
	// RowsRead is the number of base-data rows read from storage.
	RowsRead int64
	// RowsReturned is the number of rows in the result (or shuffled out).
	RowsReturned int64
	// BytesRead is bytes read from local storage media.
	BytesRead int64
	// BytesLAN is bytes moved across the intra-datacentre network.
	BytesLAN int64
	// BytesWAN is bytes moved across inter-datacentre (geo) links.
	BytesWAN int64
	// Messages is the number of network messages exchanged.
	Messages int64
	// NodesTouched is the number of distinct data-server nodes that did work.
	NodesTouched int
}

// Add returns the sequential composition of c followed by d: times add,
// counters add.
func (c Cost) Add(d Cost) Cost {
	return Cost{
		Time:         c.Time + d.Time,
		CPUTime:      c.CPUTime + d.CPUTime,
		RowsRead:     c.RowsRead + d.RowsRead,
		RowsReturned: c.RowsReturned + d.RowsReturned,
		BytesRead:    c.BytesRead + d.BytesRead,
		BytesLAN:     c.BytesLAN + d.BytesLAN,
		BytesWAN:     c.BytesWAN + d.BytesWAN,
		Messages:     c.Messages + d.Messages,
		NodesTouched: c.NodesTouched + d.NodesTouched,
	}
}

// Merge returns the parallel composition of c and d: virtual time is the
// maximum of the two branches, all other counters add.
func (c Cost) Merge(d Cost) Cost {
	t := c.Time
	if d.Time > t {
		t = d.Time
	}
	out := c.Add(d)
	out.Time = t
	return out
}

// IsZero reports whether no work has been charged to c.
func (c Cost) IsZero() bool {
	return c == Cost{}
}

// String renders the cost compactly for logs and demo binaries.
func (c Cost) String() string {
	return fmt.Sprintf(
		"time=%v cpu=%v rows=%d bytes(read=%d lan=%d wan=%d) msgs=%d nodes=%d",
		c.Time, c.CPUTime, c.RowsRead, c.BytesRead, c.BytesLAN, c.BytesWAN,
		c.Messages, c.NodesTouched,
	)
}

// PriceModel converts resource usage into money, mirroring the paper's
// "money costs" metric (§IV P4, RT3). Prices are per-unit; the defaults in
// DefaultPrices approximate public-cloud list prices circa the paper.
type PriceModel struct {
	// PerNodeSecond is the price of one node busy for one second.
	PerNodeSecond float64
	// PerLANGB is the price of one GiB moved within a datacentre.
	PerLANGB float64
	// PerWANGB is the price of one GiB moved between datacentres.
	PerWANGB float64
	// PerMillionRows is the price of scanning one million rows.
	PerMillionRows float64
}

// DefaultPrices returns a price model loosely shaped like 2018-era cloud
// pricing: WAN egress is ~10x LAN, and node time dominates small queries.
func DefaultPrices() PriceModel {
	return PriceModel{
		PerNodeSecond:  0.0001,
		PerLANGB:       0.01,
		PerWANGB:       0.09,
		PerMillionRows: 0.0005,
	}
}

// Dollars prices a cost under the model.
func (p PriceModel) Dollars(c Cost) float64 {
	const gib = 1 << 30
	d := p.PerNodeSecond * c.CPUTime.Seconds()
	d += p.PerLANGB * float64(c.BytesLAN) / gib
	d += p.PerWANGB * float64(c.BytesWAN) / gib
	d += p.PerMillionRows * float64(c.RowsRead) / 1e6
	return d
}

// Counter accumulates costs across many tasks, tracking totals and a count
// so experiments can report means. Counter is not safe for concurrent use;
// simulation drivers are single-goroutine by design (determinism).
type Counter struct {
	total Cost
	n     int64
}

// Observe adds one task's cost to the counter.
func (a *Counter) Observe(c Cost) {
	a.total = a.total.Add(c)
	a.n++
}

// Total returns the accumulated cost.
func (a *Counter) Total() Cost { return a.total }

// Count returns how many tasks were observed.
func (a *Counter) Count() int64 { return a.n }

// MeanTime returns the average virtual latency per observed task.
func (a *Counter) MeanTime() time.Duration {
	if a.n == 0 {
		return 0
	}
	return a.total.Time / time.Duration(a.n)
}

// Reset clears the counter.
func (a *Counter) Reset() {
	a.total = Cost{}
	a.n = 0
}
