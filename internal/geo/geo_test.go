package geo

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/workload"
)

func buildCore(t *testing.T, nRows int) *exec.Executor {
	t.Helper()
	cl := cluster.New(8, cluster.DefaultConfig())
	eng := engine.New(cl)
	tbl, err := storage.NewTable(cl, "core", []string{"x", "y", "z"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.NewRNG(101)
	rows := workload.GaussianMixture(rng, nRows, 3, workload.DefaultMixture(3), 0)
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	ex, err := exec.New(eng, tbl)
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

func deploy(t *testing.T, policy RoutingPolicy) (*Deployment, *workload.QueryStream) {
	t.Helper()
	ex := buildCore(t, 8000)
	cfg := DefaultConfig(2)
	cfg.Policy = policy
	d, err := Deploy(ex, cfg)
	if err != nil {
		t.Fatal(err)
	}
	qs := workload.NewQueryStream(workload.NewRNG(102), workload.DefaultRegions(2), query.Count)
	return d, qs
}

func TestDeployValidation(t *testing.T) {
	ex := buildCore(t, 100)
	cfg := DefaultConfig(2)
	cfg.EdgesPerRegion = 0
	if _, err := Deploy(ex, cfg); err == nil {
		t.Error("zero edges accepted")
	}
}

func TestDistributedModelBuildingAndShipping(t *testing.T) {
	d, qs := deploy(t, CoreOnly)
	if len(d.Edges) != 6 {
		t.Fatalf("edges = %d, want 6", len(d.Edges))
	}
	// Train at core from pooled edge queries.
	if _, err := d.TrainAtCore(qs.Batch(400)); err != nil {
		t.Fatal(err)
	}
	wanBefore := d.WANBytes()
	if wanBefore == 0 {
		t.Error("training forwarded no WAN bytes")
	}
	shipped, err := d.ShipModels([]query.Agg{query.Count}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if shipped == 0 {
		t.Fatal("no models shipped")
	}
	// Model shipping must be tiny compared to the data (8000 rows x 32B).
	if shipped > 8000*32/10 {
		t.Errorf("shipped %d bytes of models; data is only %d", shipped, 8000*32)
	}

	// After shipping, edges answer mostly locally.
	queries := qs.Batch(300)
	lats, _, err := d.Latencies(queries)
	if err != nil {
		t.Fatal(err)
	}
	if rate := d.LocalRate(); rate < 0.5 {
		t.Errorf("local answer rate = %v, want >= 0.5 (stats %+v)", rate, d.Stats())
	}
	// Local answers avoid WAN latency: p50 must be far below one WAN RTT.
	p50 := Percentile(lats, 0.5)
	if p50 >= d.cfg.WAN.WANLatency {
		t.Errorf("p50 latency %v >= WAN latency %v", p50, d.cfg.WAN.WANLatency)
	}
}

func TestCoreFallbackForUnknownRegions(t *testing.T) {
	d, qs := deploy(t, CoreOnly)
	if _, err := d.TrainAtCore(qs.Batch(350)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ShipModels([]query.Agg{query.Count}, 0, 0); err != nil {
		t.Fatal(err)
	}
	// A query far outside every trained quantum must fall back and still
	// return the exact answer.
	q := query.Query{
		Select:    query.Selection{Center: []float64{-400, -400}, Radius: 5},
		Aggregate: query.Count,
	}
	ans, err := d.Answer(0, q)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Predicted {
		t.Error("far-region query should not be predicted")
	}
	if ans.Cost.BytesWAN == 0 {
		t.Error("core fallback paid no WAN bytes")
	}
	if ans.Cost.Time < d.cfg.WAN.WANLatency {
		t.Errorf("fallback latency %v below WAN latency", ans.Cost.Time)
	}
}

func TestPeerFirstRouting(t *testing.T) {
	d, qs := deploy(t, PeerFirst)
	if _, err := d.TrainAtCore(qs.Batch(400)); err != nil {
		t.Fatal(err)
	}
	// Ship models to edge 0 only, simulating asymmetric placement: other
	// edges must find answers at their peer instead of the core.
	centers := d.CoreAgent.QuantumCenters()
	for qi, c := range centers {
		if w := d.CoreAgent.ExportModel(query.Count, 0, 0, qi); w != nil {
			nq := d.Edges[0].Agent.SeedQuantum(c, 6)
			d.Edges[0].Agent.ImportModel(query.Count, 0, 0, nq, w, 64, 0.05)
		}
	}
	var peerAnswers int
	for i := 0; i < 100; i++ {
		ans, err := d.Answer(3, qs.Next()) // edge 3 holds no models
		if err != nil {
			t.Fatal(err)
		}
		if ans.Predicted {
			peerAnswers++
		}
	}
	if peerAnswers == 0 {
		t.Error("peer-first routing never used the peer's models")
	}
	stats := d.Stats()
	if stats[3].Peer == 0 {
		t.Errorf("edge 3 peer counter = 0: %+v", stats)
	}
}

func TestNotifyDataChangePropagates(t *testing.T) {
	d, qs := deploy(t, CoreOnly)
	if _, err := d.TrainAtCore(qs.Batch(400)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ShipModels([]query.Agg{query.Count}, 0, 0); err != nil {
		t.Fatal(err)
	}
	// Warm up local answering.
	if _, _, err := d.Latencies(qs.Batch(50)); err != nil {
		t.Fatal(err)
	}
	preLocal := d.LocalRate()
	if preLocal == 0 {
		t.Fatal("premise broken: no local answers before invalidation")
	}
	d.NotifyDataChange(nil)
	// Immediately after invalidation, edges must fall back.
	q := qs.Next()
	ans, err := d.Answer(0, q)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Predicted {
		t.Error("edge predicted right after global invalidation")
	}
}

func TestPercentile(t *testing.T) {
	lats := []time.Duration{1, 2, 3, 4, 5}
	if Percentile(lats, 0) != 1 || Percentile(lats, 1) != 5 {
		t.Error("percentile endpoints wrong")
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile should be 0")
	}
}
