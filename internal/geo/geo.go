// Package geo implements RT5: global-scale geo-distributed SEA (paper
// Fig. 3). Core nodes (data centres) store the base data and can answer
// exactly or train models; edge nodes hold only models and answer
// approximately, falling back across the WAN only when their local
// error estimate is too high.
//
// The package realises the theme's research tasks:
//
//   - Network architecture (RT5.1): one core executor per deployment plus
//     any number of edge agents per region; edge↔core and edge↔edge
//     traffic is charged WAN costs.
//   - Distributed model building (RT5.2): training queries from all edges
//     flow to the core, which trains one central agent on the union —
//     converging faster than any single edge could — and then ships the
//     per-quantum model weights (not data!) back to the edges.
//   - Model maintenance (RT5.3): interest-shift detection and purging are
//     inherited from core.Agent; NotifyDataChange propagates to edges.
//   - Query routing (RT5.4): Local / PeerFirst / CoreOnly policies.
//   - Error maintenance (RT5.5): every shipped model carries its error
//     estimate; edges refuse to answer above threshold.
package geo

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/query"
)

// ErrNoEdges is returned when a deployment is built without edges.
var ErrNoEdges = errors.New("geo: deployment needs at least one edge")

// RoutingPolicy selects where an edge sends a query its local models
// cannot answer (RT5.4).
type RoutingPolicy int

// Routing policies.
const (
	// CoreOnly falls back straight to the core's exact engine.
	CoreOnly RoutingPolicy = iota + 1
	// PeerFirst asks sibling edges for a model answer before the core.
	PeerFirst
)

// Config tunes a deployment.
type Config struct {
	// EdgesPerRegion is the number of edge agents in each region.
	EdgesPerRegion int
	// Regions is the number of geo regions.
	Regions int
	// Agent is the per-edge agent configuration.
	Agent core.Config
	// Policy is the fallback routing policy.
	Policy RoutingPolicy
	// WAN is the cost model for inter-region links.
	WAN cluster.Config
}

// DefaultConfig returns a 3-region, 2-edges-per-region deployment.
func DefaultConfig(dims int) Config {
	agentCfg := core.DefaultConfig(dims)
	agentCfg.TrainingQueries = 0 // edges never train against the oracle directly
	return Config{
		EdgesPerRegion: 2,
		Regions:        3,
		Agent:          agentCfg,
		Policy:         CoreOnly,
		WAN:            cluster.DefaultConfig(),
	}
}

// wanOracle wraps the core executor, charging WAN round trips for remote
// exact answers.
type wanOracle struct {
	ex  *exec.Executor
	cfg cluster.Config
}

// Answer runs the query at the core and ships the answer back over WAN.
func (o wanOracle) Answer(q query.Query) (query.Result, metrics.Cost, error) {
	res, cost, err := o.ex.ExactCohort(q)
	if err != nil {
		return res, cost, err
	}
	// Request (64B) out + answer (32B) back, each paying WAN latency.
	wan := wanTransfer(o.cfg, 64).Add(wanTransfer(o.cfg, 32))
	return res, cost.Add(wan), nil
}

// DataVersion passes through to the core table.
func (o wanOracle) DataVersion() int64 { return o.ex.Table().Version() }

func wanTransfer(cfg cluster.Config, bytes int64) metrics.Cost {
	t := cfg.WANLatency
	if cfg.WANBytesPerSec > 0 {
		t += time.Duration(float64(bytes) / cfg.WANBytesPerSec * float64(time.Second))
	}
	return metrics.Cost{Time: t, BytesWAN: bytes, Messages: 1}
}

// Edge is one edge agent.
type Edge struct {
	// Agent holds the edge's local models.
	Agent *core.Agent
	// Region is the edge's geo region.
	Region int

	dep *Deployment
	// Local statistics.
	localAnswers, peerAnswers, coreAnswers int64
}

// Deployment is one Fig. 3 system: a core plus edges.
type Deployment struct {
	cfg Config
	// CoreAgent is the centrally-trained agent (RT5.2).
	CoreAgent *core.Agent
	// CoreEx is the core's exact executor.
	CoreEx *exec.Executor
	// Edges are the edge agents, grouped region-major.
	Edges []*Edge

	// WANBytes accumulates all inter-region traffic.
	wan metrics.Counter
}

// Deploy builds a deployment over the given core executor.
func Deploy(coreEx *exec.Executor, cfg Config) (*Deployment, error) {
	if cfg.EdgesPerRegion < 1 || cfg.Regions < 1 {
		return nil, ErrNoEdges
	}
	coreAgentCfg := cfg.Agent
	coreAgentCfg.TrainingQueries = 1 << 30 // core always trains on what it sees
	coreAgent, err := core.NewAgent(exec.CohortOracle{Ex: coreEx}, coreAgentCfg)
	if err != nil {
		return nil, fmt.Errorf("geo deploy: %w", err)
	}
	d := &Deployment{cfg: cfg, CoreAgent: coreAgent, CoreEx: coreEx}
	for r := 0; r < cfg.Regions; r++ {
		for e := 0; e < cfg.EdgesPerRegion; e++ {
			agent, err := core.NewAgent(wanOracle{ex: coreEx, cfg: cfg.WAN}, cfg.Agent)
			if err != nil {
				return nil, fmt.Errorf("geo deploy: %w", err)
			}
			d.Edges = append(d.Edges, &Edge{Agent: agent, Region: r, dep: d})
		}
	}
	return d, nil
}

// TrainAtCore forwards training queries (as if originating at the given
// edges round-robin) to the core, charging WAN for each, and trains the
// central agent — distributed model building (RT5.2).
func (d *Deployment) TrainAtCore(queries []query.Query) (metrics.Cost, error) {
	var total metrics.Cost
	for i, q := range queries {
		// The edge->core forward + answer return.
		wan := wanTransfer(d.cfg.WAN, 64).Add(wanTransfer(d.cfg.WAN, 32))
		d.wan.Observe(wan)
		total = total.Add(wan)
		ans, err := d.CoreAgent.Answer(q)
		if err != nil {
			return total, fmt.Errorf("geo train query %d: %w", i, err)
		}
		total = total.Add(ans.Cost)
	}
	return total, nil
}

// ShipModels exports every trained quantum model from the core agent to
// every edge, charging WAN bytes for the weights — "the models
// themselves are migrated" (RT1.5(ii), RT5.2). It returns the bytes
// shipped.
func (d *Deployment) ShipModels(aggs []query.Agg, col, col2 int) (int64, error) {
	centers := d.CoreAgent.QuantumCenters()
	var shipped int64
	for _, edge := range d.Edges {
		for qi, center := range centers {
			for _, agg := range aggs {
				w := d.CoreAgent.ExportModel(agg, col, col2, qi)
				if w == nil {
					continue
				}
				nq := edge.Agent.SeedQuantum(center, 6)
				// Shipped models carry the core's error estimate so the
				// edge knows what to expect (RT5.5). We ship a
				// conservative estimate derived from the core config.
				edge.Agent.ImportModel(agg, col, col2, nq, w, 64, d.cfg.Agent.FallbackThreshold/2)
				bytes := int64(8 * (len(w) + len(center) + 2))
				shipped += bytes
				d.wan.Observe(wanTransfer(d.cfg.WAN, bytes))
			}
		}
	}
	return shipped, nil
}

// Answer processes q at the given edge index, applying the routing
// policy. The returned answer's cost includes all WAN legs.
func (d *Deployment) Answer(edgeIdx int, q query.Query) (core.Answer, error) {
	if edgeIdx < 0 || edgeIdx >= len(d.Edges) {
		return core.Answer{}, fmt.Errorf("geo: no edge %d", edgeIdx)
	}
	edge := d.Edges[edgeIdx]
	// Local model attempt.
	if v, estErr, ok := edge.Agent.PredictOnly(q); ok {
		edge.localAnswers++
		return core.Answer{
			Value:     v,
			Predicted: true,
			EstError:  estErr,
			Cost:      metrics.Cost{Time: d.cfg.Agent.PredictCPU, CPUTime: d.cfg.Agent.PredictCPU},
		}, nil
	}
	// Peer attempt (RT5.4): one WAN hop to each sibling until a model
	// answers.
	if d.cfg.Policy == PeerFirst {
		for _, peer := range d.Edges {
			if peer == edge {
				continue
			}
			probe := wanTransfer(d.cfg.WAN, 64)
			d.wan.Observe(probe)
			if v, estErr, ok := peer.Agent.PredictOnly(q); ok {
				ret := wanTransfer(d.cfg.WAN, 32)
				d.wan.Observe(ret)
				edge.peerAnswers++
				return core.Answer{
					Value:     v,
					Predicted: true,
					EstError:  estErr,
					Cost:      probe.Add(ret),
				}, nil
			}
		}
	}
	// Core exact fallback; the edge's own agent learns from the pair.
	ans, err := edge.Agent.Answer(q)
	if err != nil {
		return core.Answer{}, fmt.Errorf("geo: core fallback: %w", err)
	}
	edge.coreAnswers++
	d.wan.Observe(metrics.Cost{BytesWAN: ans.Cost.BytesWAN, Messages: 2})
	return ans, nil
}

// WANBytes returns the total inter-region bytes moved so far.
func (d *Deployment) WANBytes() int64 { return d.wan.Total().BytesWAN }

// EdgeStats summarises one edge's routing outcomes.
type EdgeStats struct {
	// Region is the edge's region.
	Region int
	// Local/Peer/Core count answers by source.
	Local, Peer, Core int64
}

// Stats returns per-edge routing statistics.
func (d *Deployment) Stats() []EdgeStats {
	out := make([]EdgeStats, len(d.Edges))
	for i, e := range d.Edges {
		out[i] = EdgeStats{Region: e.Region, Local: e.localAnswers, Peer: e.peerAnswers, Core: e.coreAnswers}
	}
	return out
}

// LocalRate returns the deployment-wide fraction of queries answered
// without any WAN fallback.
func (d *Deployment) LocalRate() float64 {
	var local, total int64
	for _, e := range d.Edges {
		local += e.localAnswers
		total += e.localAnswers + e.peerAnswers + e.coreAnswers
	}
	if total == 0 {
		return 0
	}
	return float64(local) / float64(total)
}

// NotifyDataChange propagates a base-data invalidation to the core agent
// and every edge (RT5.3's model-consistency maintenance).
func (d *Deployment) NotifyDataChange(sel *query.Selection) {
	d.CoreAgent.NotifyDataChange(sel)
	for _, e := range d.Edges {
		e.Agent.NotifyDataChange(sel)
	}
}

// Latencies runs the given queries round-robin over edges and returns
// the sorted per-query virtual latencies (for percentile reporting) and
// the total cost.
func (d *Deployment) Latencies(queries []query.Query) ([]time.Duration, metrics.Cost, error) {
	var lats []time.Duration
	var total metrics.Cost
	for i, q := range queries {
		ans, err := d.Answer(i%len(d.Edges), q)
		if err != nil {
			return nil, total, err
		}
		lats = append(lats, ans.Cost.Time)
		total = total.Add(ans.Cost)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats, total, nil
}

// Percentile returns the p-th percentile (0..1) of sorted latencies.
func Percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
