package obs

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// RuntimeSnap is one point-in-time view of process runtime health.
type RuntimeSnap struct {
	Goroutines int    `json:"goroutines"`
	HeapAlloc  uint64 `json:"heap_alloc_bytes"`
	HeapSys    uint64 `json:"heap_sys_bytes"`
	GCCycles   uint32 `json:"gc_cycles"`
	// GCPauseP50/P99/Max summarise the sampled stop-the-world pause
	// distribution, in nanoseconds.
	GCPauseP50 int64 `json:"gc_pause_p50_ns"`
	GCPauseP99 int64 `json:"gc_pause_p99_ns"`
	GCPauseMax int64 `json:"gc_pause_max_ns"`
}

// RuntimeSampler periodically reads runtime memory/GC statistics into
// atomics and folds new GC pauses into a histogram, so scrapes and
// status snapshots read cached values instead of stopping the world.
// Nil-receiver-safe throughout.
type RuntimeSampler struct {
	interval time.Duration

	goroutines atomic.Int64
	heapAlloc  atomic.Uint64
	heapSys    atomic.Uint64
	gcCycles   atomic.Uint32

	pauses metrics.Histogram
	// Cached pause quantiles, refreshed by Sample: gauge reads (the
	// flight recorder samples them every second) must not pay a
	// histogram snapshot per read.
	pauseP50 atomic.Int64
	pauseP99 atomic.Int64
	pauseMax atomic.Int64

	mu      sync.Mutex
	lastGC  uint32 // NumGC already folded into pauses
	scratch metrics.HistSnapshot

	stop chan struct{}
	done chan struct{}
}

// NewRuntimeSampler builds a sampler. interval <= 0 defaults to 10s.
// Call Start to begin background sampling; Sample works standalone.
func NewRuntimeSampler(interval time.Duration) *RuntimeSampler {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	s := &RuntimeSampler{interval: interval}
	s.Sample()
	return s
}

// Sample takes one reading now.
func (s *RuntimeSampler) Sample() {
	if s == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.goroutines.Store(int64(runtime.NumGoroutine()))
	s.heapAlloc.Store(ms.HeapAlloc)
	s.heapSys.Store(ms.HeapSys)
	s.gcCycles.Store(ms.NumGC)

	// Fold pauses from GC cycles we have not seen yet: PauseNs is a
	// ring of the last 256 pause durations indexed by cycle number.
	s.mu.Lock()
	from := s.lastGC
	if ms.NumGC > from+uint32(len(ms.PauseNs)) {
		from = ms.NumGC - uint32(len(ms.PauseNs))
	}
	for c := from; c < ms.NumGC; c++ {
		s.pauses.Record(int64(ms.PauseNs[c%uint32(len(ms.PauseNs))]))
	}
	s.lastGC = ms.NumGC
	s.pauses.SnapshotInto(&s.scratch)
	s.pauseP50.Store(s.scratch.Quantile(0.50))
	s.pauseP99.Store(s.scratch.Quantile(0.99))
	s.pauseMax.Store(s.scratch.Max)
	s.mu.Unlock()
}

// Start launches the background sampling loop.
func (s *RuntimeSampler) Start() {
	if s == nil || s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		tick := time.NewTicker(s.interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				s.Sample()
			case <-s.stop:
				return
			}
		}
	}()
}

// Stop terminates the background loop (idempotent, nil-safe).
func (s *RuntimeSampler) Stop() {
	if s == nil || s.stop == nil {
		return
	}
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
}

// Snapshot returns the latest cached reading.
func (s *RuntimeSampler) Snapshot() RuntimeSnap {
	if s == nil {
		return RuntimeSnap{}
	}
	return RuntimeSnap{
		Goroutines: int(s.goroutines.Load()),
		HeapAlloc:  s.heapAlloc.Load(),
		HeapSys:    s.heapSys.Load(),
		GCCycles:   s.gcCycles.Load(),
		GCPauseP50: s.pauseP50.Load(),
		GCPauseP99: s.pauseP99.Load(),
		GCPauseMax: s.pauseMax.Load(),
	}
}

// Register exports the sampler's readings as gauges on a serving
// recorder's Prometheus endpoint.
func (s *RuntimeSampler) Register(rec *metrics.ServeRecorder) {
	if s == nil || rec == nil {
		return
	}
	rec.RegisterGauge("sea_go_goroutines",
		"Live goroutines (sampled).",
		func() float64 { return float64(s.goroutines.Load()) })
	rec.RegisterGauge("sea_go_heap_alloc_bytes",
		"Heap bytes in use (sampled).",
		func() float64 { return float64(s.heapAlloc.Load()) })
	rec.RegisterGauge("sea_go_heap_sys_bytes",
		"Heap bytes obtained from the OS (sampled).",
		func() float64 { return float64(s.heapSys.Load()) })
	rec.RegisterGauge("sea_go_gc_cycles_total",
		"Completed GC cycles (sampled).",
		func() float64 { return float64(s.gcCycles.Load()) })
	rec.RegisterGauge("sea_go_gc_pause_p99_seconds",
		"p99 GC stop-the-world pause (sampled).",
		func() float64 { return float64(s.pauseP99.Load()) / 1e9 })
}
