package obs

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

func lines(buf *bytes.Buffer) []map[string]any {
	var out []map[string]any
	for _, ln := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if ln == "" {
			continue
		}
		m := map[string]any{}
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			panic("bad JSON line " + ln + ": " + err.Error())
		}
		out = append(out, m)
	}
	return out
}

func TestLoggerJSONLines(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelInfo)
	l.Debug("hidden")
	l.Info("served", "trace_id", "t-123", "lat_ms", 42, "ok", true, "frac", 0.5)
	l.Error("boom", "err", "quote\" and\nnewline")
	got := lines(&buf)
	if len(got) != 2 {
		t.Fatalf("got %d lines, want 2 (debug suppressed): %v", len(got), got)
	}
	if got[0]["level"] != "info" || got[0]["msg"] != "served" ||
		got[0]["trace_id"] != "t-123" || got[0]["lat_ms"] != float64(42) ||
		got[0]["ok"] != true || got[0]["frac"] != 0.5 {
		t.Fatalf("info line = %v", got[0])
	}
	if got[1]["err"] != "quote\" and\nnewline" {
		t.Fatalf("escaping mangled value: %v", got[1])
	}
	if _, err := time.Parse(time.RFC3339Nano, got[0]["ts"].(string)); err != nil {
		t.Fatalf("bad ts: %v", err)
	}
}

func TestLoggerWith(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelInfo).With("node", "n1", "part", 3)
	l.Info("replicated", "seq", int64(9))
	got := lines(&buf)
	if got[0]["node"] != "n1" || got[0]["part"] != float64(3) || got[0]["seq"] != float64(9) {
		t.Fatalf("With fields missing: %v", got[0])
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Info("nothing", "k", "v")
	l.SetLevel(LevelDebug)
	l.SetRateLimit(1, 1)
	if l.Enabled(LevelError) {
		t.Fatal("nil logger claims enabled")
	}
	if l.With("a", 1) != nil {
		t.Fatal("nil With should stay nil")
	}
	if l.Dropped() != 0 {
		t.Fatal("nil Dropped != 0")
	}
}

func TestLoggerRateLimit(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelInfo)
	l.SetRateLimit(0.001, 2) // 2 burst, then effectively nothing
	for i := 0; i < 10; i++ {
		l.Info("spam", "i", i)
	}
	got := lines(&buf)
	if len(got) != 2 {
		t.Fatalf("rate limit let %d lines through, want 2", len(got))
	}
	if l.Dropped() != 8 {
		t.Fatalf("Dropped = %d, want 8", l.Dropped())
	}
	// The drop count rides on the next emitted line.
	l.SetRateLimit(0, 0)
	l.Info("after")
	got = lines(&buf)
	last := got[len(got)-1]
	if last["dropped"] != float64(8) {
		t.Fatalf("dropped annotation missing: %v", last)
	}
	if l.Dropped() != 0 {
		t.Fatalf("dropped counter not reset: %d", l.Dropped())
	}
}

func TestLoggerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelInfo)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Info("m", "g", g, "i", i)
			}
		}(g)
	}
	wg.Wait()
	if got := lines(&buf); len(got) != 400 {
		t.Fatalf("got %d intact lines, want 400", len(got))
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "WARN": LevelWarn,
		"error": LevelError, "off": levelOff, "": LevelInfo, "bogus": LevelInfo,
	} {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestRuntimeSampler(t *testing.T) {
	s := NewRuntimeSampler(time.Hour)
	runtime.GC()
	runtime.GC()
	s.Sample()
	snap := s.Snapshot()
	if snap.Goroutines <= 0 || snap.HeapAlloc == 0 || snap.HeapSys == 0 {
		t.Fatalf("implausible snapshot: %+v", snap)
	}
	if snap.GCCycles == 0 || snap.GCPauseMax == 0 {
		t.Fatalf("GC pauses not folded: %+v", snap)
	}

	rec := metrics.NewServeRecorder(0)
	s.Register(rec)
	var b strings.Builder
	if err := rec.WriteRecorder(&b); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"sea_go_goroutines", "sea_go_heap_alloc_bytes",
		"sea_go_gc_cycles_total", "sea_go_gc_pause_p99_seconds"} {
		if !strings.Contains(b.String(), name) {
			t.Fatalf("exposition missing %s", name)
		}
	}

	var nilS *RuntimeSampler
	nilS.Sample()
	nilS.Start()
	nilS.Stop()
	nilS.Register(rec)
	if (nilS.Snapshot() != RuntimeSnap{}) {
		t.Fatal("nil sampler snapshot not zero")
	}
}

func TestRuntimeSamplerStartStop(t *testing.T) {
	s := NewRuntimeSampler(time.Millisecond)
	s.Start()
	time.Sleep(10 * time.Millisecond)
	s.Stop()
	s.Stop()
	if s.Snapshot().Goroutines == 0 {
		t.Fatal("background sampler never ran")
	}
}
