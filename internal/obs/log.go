// Package obs is the operator-facing observability layer: a structured
// JSON-line logger with trace correlation and token-bucket rate
// limiting, and a background runtime-telemetry sampler. Everything is
// nil-receiver-safe so subsystems thread a *Logger unconditionally —
// an unwired (nil) logger costs one pointer compare on the hot path
// and allocates nothing.
package obs

import (
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	// levelOff disables everything (used for "off"/"none").
	levelOff
)

// String returns the level's wire name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return "off"
}

// ParseLevel maps a flag string to a Level ("debug", "info", "warn",
// "error", "off"). Unknown strings parse as info.
func ParseLevel(s string) Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug
	case "warn", "warning":
		return LevelWarn
	case "error":
		return LevelError
	case "off", "none":
		return levelOff
	case "info", "":
		return LevelInfo
	}
	return LevelInfo
}

// Logger emits one JSON object per line: {"ts":...,"level":...,
// "msg":..., key:value...}. Writes are serialized on an internal
// mutex; level checks and the rate limiter are lock-free so a
// suppressed line never contends. A nil *Logger is valid and silent.
type Logger struct {
	level atomic.Int32

	mu sync.Mutex
	w  io.Writer

	// base is a pre-rendered `,"k":"v",...` fragment appended to every
	// line (fields bound via With).
	base string

	lim     *atomic.Pointer[tokenBucket]
	dropped *atomic.Int64
}

// New builds a logger writing to w at the given level. A nil w means
// os.Stderr.
func New(w io.Writer, level Level) *Logger {
	if w == nil {
		w = os.Stderr
	}
	l := &Logger{w: w, lim: new(atomic.Pointer[tokenBucket]), dropped: new(atomic.Int64)}
	l.level.Store(int32(level))
	return l
}

// SetLevel changes the minimum emitted level.
func (l *Logger) SetLevel(level Level) {
	if l == nil {
		return
	}
	l.level.Store(int32(level))
}

// SetRateLimit installs a token-bucket limiter: at most burst lines
// instantly and perSec lines per second sustained. Suppressed lines
// are counted and reported as a "dropped" field on the next line that
// gets through. Zero/negative perSec removes the limit.
func (l *Logger) SetRateLimit(perSec float64, burst int) {
	if l == nil {
		return
	}
	if perSec <= 0 {
		l.lim.Store(nil)
		return
	}
	if burst < 1 {
		burst = 1
	}
	l.lim.Store(newTokenBucket(perSec, burst))
}

// Dropped returns how many lines the rate limiter has suppressed.
func (l *Logger) Dropped() int64 {
	if l == nil {
		return 0
	}
	return l.dropped.Load()
}

// Enabled reports whether level would be emitted: one atomic load, the
// hot path's entire cost when logging is off or the receiver nil.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && int32(level) >= l.level.Load()
}

// Allow reports whether a line at level would pass both the level
// check and the rate limiter right now, WITHOUT consuming a token —
// the matching Debug/Info/Warn/Error call consumes it. Hot paths guard
// their log calls with Allow so a rate-limited storm skips argument
// evaluation and boxing entirely: the suppressed cost is one atomic
// load of the limiter clock.
func (l *Logger) Allow(level Level) bool {
	if !l.Enabled(level) {
		return false
	}
	lim := l.lim.Load()
	if lim == nil {
		return true
	}
	if !lim.peek(time.Now()) {
		l.dropped.Add(1)
		return false
	}
	return true
}

// With returns a derived logger that appends the given key/value pairs
// to every line. The derived logger shares the writer, level, limiter
// and dropped counter with its parent.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil || len(kv) == 0 {
		return l
	}
	buf := make([]byte, 0, 64)
	buf = appendKVs(buf, kv)
	l.mu.Lock()
	defer l.mu.Unlock()
	d := &Logger{w: l.w, base: l.base + string(buf), lim: l.lim, dropped: l.dropped}
	d.level.Store(l.level.Load())
	return d
}

// Debug/Info/Warn/Error emit one line at their level. kv is a flat
// list of alternating keys (string) and values; pass "trace_id", tid
// to correlate a line with a query trace.
func (l *Logger) Debug(msg string, kv ...any) { l.emit(LevelDebug, msg, kv) }
func (l *Logger) Info(msg string, kv ...any)  { l.emit(LevelInfo, msg, kv) }
func (l *Logger) Warn(msg string, kv ...any)  { l.emit(LevelWarn, msg, kv) }
func (l *Logger) Error(msg string, kv ...any) { l.emit(LevelError, msg, kv) }

func (l *Logger) emit(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	if lim := l.lim.Load(); lim != nil && !lim.take(time.Now()) {
		l.dropped.Add(1)
		return
	}
	buf := make([]byte, 0, 160)
	buf = append(buf, `{"ts":"`...)
	buf = time.Now().UTC().AppendFormat(buf, time.RFC3339Nano)
	buf = append(buf, `","level":"`...)
	buf = append(buf, level.String()...)
	buf = append(buf, `","msg":`...)
	buf = appendJSONString(buf, msg)
	buf = append(buf, l.base...)
	buf = appendKVs(buf, kv)
	if d := l.dropped.Swap(0); d > 0 {
		buf = append(buf, `,"dropped":`...)
		buf = strconv.AppendInt(buf, d, 10)
	}
	buf = append(buf, '}', '\n')
	l.mu.Lock()
	_, _ = l.w.Write(buf)
	l.mu.Unlock()
}

// appendKVs renders `,"key":value` fragments for a flat key/value
// list. A trailing odd key gets a null value; non-string keys are
// stringified.
func appendKVs(buf []byte, kv []any) []byte {
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = stringify(kv[i])
		}
		buf = append(buf, ',')
		buf = appendJSONString(buf, key)
		buf = append(buf, ':')
		if i+1 < len(kv) {
			buf = appendJSONValue(buf, kv[i+1])
		} else {
			buf = append(buf, "null"...)
		}
	}
	return buf
}

func appendJSONValue(buf []byte, v any) []byte {
	switch x := v.(type) {
	case nil:
		return append(buf, "null"...)
	case string:
		return appendJSONString(buf, x)
	case bool:
		return strconv.AppendBool(buf, x)
	case int:
		return strconv.AppendInt(buf, int64(x), 10)
	case int64:
		return strconv.AppendInt(buf, x, 10)
	case uint64:
		return strconv.AppendUint(buf, x, 10)
	case float64:
		return strconv.AppendFloat(buf, x, 'g', -1, 64)
	case time.Duration:
		return appendJSONString(buf, x.String())
	case error:
		return appendJSONString(buf, x.Error())
	default:
		return appendJSONString(buf, stringify(v))
	}
}

func stringify(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case interface{ String() string }:
		return x.String()
	case int:
		return strconv.Itoa(x)
	case int64:
		return strconv.FormatInt(x, 10)
	default:
		return "?"
	}
}

// appendJSONString appends a quoted, escaped JSON string. Multi-byte
// UTF-8 passes through untouched; control bytes become \u00XX.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"':
			buf = append(buf, '\\', '"')
		case c == '\\':
			buf = append(buf, '\\', '\\')
		case c == '\n':
			buf = append(buf, '\\', 'n')
		case c == '\r':
			buf = append(buf, '\\', 'r')
		case c == '\t':
			buf = append(buf, '\\', 't')
		case c < 0x20:
			const hex = "0123456789abcdef"
			buf = append(buf, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}

// tokenBucket is a lock-free GCRA rate limiter: one token per interval
// sustained, burst tokens instantly. The deny path — the one a log
// storm hits millions of times — is a single atomic load with no
// write, so suppressed lines never contend on a shared cache line.
type tokenBucket struct {
	interval int64 // nanoseconds earned per token
	burst    int64 // bucket capacity in tokens

	// tat is the theoretical arrival time (GCRA): the virtual clock,
	// in unix nanos, at which the bucket would be exactly full again.
	tat atomic.Int64
}

func newTokenBucket(perSec float64, burst int) *tokenBucket {
	iv := int64(float64(time.Second) / perSec)
	if iv < 1 {
		iv = 1
	}
	return &tokenBucket{interval: iv, burst: int64(burst)}
}

func (b *tokenBucket) take(now time.Time) bool {
	n := now.UnixNano()
	for {
		tat := b.tat.Load()
		if tat-n > (b.burst-1)*b.interval {
			return false // exhausted: pure read, no CAS
		}
		next := tat
		if n > next {
			next = n
		}
		if b.tat.CompareAndSwap(tat, next+b.interval) {
			return true
		}
	}
}

// peek reports whether take would succeed, without consuming.
func (b *tokenBucket) peek(now time.Time) bool {
	return b.tat.Load()-now.UnixNano() <= (b.burst-1)*b.interval
}
