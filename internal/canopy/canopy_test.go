package canopy

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/workload"
)

func buildCanopy(t *testing.T, nRows, chunk int) (*Canopy, []storage.Row) {
	t.Helper()
	cl := cluster.New(2, cluster.DefaultConfig())
	tbl, err := storage.NewTable(cl, "t", []string{"x", "y"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.NewRNG(61)
	rows := workload.Uniform(rng, nRows, 2, []float64{0, 0}, []float64{100, 100}, 0)
	workload.CorrelatedColumns(rng, rows, 0, 1, 3, -2, 1)
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	c, err := Build(cl, tbl, 0, chunk)
	if err != nil {
		t.Fatal(err)
	}
	return c, rows
}

func rangeQuery(agg query.Agg, col, col2 int) query.Query {
	return query.Query{
		Select:    query.Selection{Los: []float64{0, -1e9}, His: []float64{100, 1e9}},
		Aggregate: agg, Col: col, Col2: col2,
	}
}

func truthInRange(rows []storage.Row, q query.Query, lo, hi float64) query.Result {
	var matched []storage.Row
	for _, r := range rows {
		if r.Vec[0] >= lo && r.Vec[0] < hi {
			matched = append(matched, r)
		}
	}
	full := query.Selection{Los: []float64{-1e18, -1e18}, His: []float64{1e18, 1e18}}
	return query.EvalRows(query.Query{Select: full, Aggregate: q.Aggregate, Col: q.Col, Col2: q.Col2}, matched)
}

func TestBuildValidation(t *testing.T) {
	cl := cluster.New(1, cluster.DefaultConfig())
	tbl, _ := storage.NewTable(cl, "t", []string{"x"}, 1)
	if _, err := Build(cl, tbl, 0, 0); !errors.Is(err, ErrBadChunk) {
		t.Errorf("chunk 0 err = %v", err)
	}
}

func TestExactAnswers(t *testing.T) {
	c, rows := buildCanopy(t, 5000, 128)
	tests := []struct {
		name   string
		agg    query.Agg
		col    int
		col2   int
		lo, hi float64
	}{
		{"count mid", query.Count, 0, 0, 20, 60},
		{"sum", query.Sum, 1, 0, 10, 90},
		{"avg", query.Avg, 1, 0, 0, 50},
		{"var", query.Var, 0, 0, 25, 75},
		{"corr", query.Corr, 0, 1, 10, 95},
		{"slope", query.RegSlope, 0, 1, 5, 80},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			q := rangeQuery(tt.agg, tt.col, tt.col2)
			got, _, err := c.Answer(q, tt.lo, tt.hi)
			if err != nil {
				t.Fatal(err)
			}
			want := truthInRange(rows, q, tt.lo, tt.hi)
			if got.Support != want.Support {
				t.Fatalf("support %d != %d", got.Support, want.Support)
			}
			if math.Abs(got.Value-want.Value) > 1e-6*(1+math.Abs(want.Value)) {
				t.Errorf("value %v != %v", got.Value, want.Value)
			}
		})
	}
}

func TestRepeatQueriesGetCheaper(t *testing.T) {
	c, _ := buildCanopy(t, 10000, 128)
	q := rangeQuery(query.Count, 0, 0)
	_, cold, err := c.Answer(q, 10, 90)
	if err != nil {
		t.Fatal(err)
	}
	_, warm, err := c.Answer(q, 10, 90)
	if err != nil {
		t.Fatal(err)
	}
	// Warm: interior chunks cached, only boundary partials scanned.
	if warm.RowsRead*4 >= cold.RowsRead {
		t.Errorf("warm read %d rows vs cold %d: cache ineffective", warm.RowsRead, cold.RowsRead)
	}
}

func TestMemoryGrowsWithTouchedRegions(t *testing.T) {
	c, _ := buildCanopy(t, 10000, 64)
	if c.MemoryBytes() != 0 {
		t.Fatal("fresh canopy should hold no stats")
	}
	q := rangeQuery(query.Count, 0, 0)
	if _, _, err := c.Answer(q, 0, 50); err != nil {
		t.Fatal(err)
	}
	m1 := c.MemoryBytes()
	if m1 == 0 {
		t.Fatal("no memory after first query")
	}
	// Different column pair: new statistics, more memory (the paper's
	// growth complaint).
	q2 := rangeQuery(query.Avg, 1, 0)
	if _, _, err := c.Answer(q2, 0, 50); err != nil {
		t.Fatal(err)
	}
	if c.MemoryBytes() <= m1 {
		t.Errorf("memory did not grow: %d -> %d", m1, c.MemoryBytes())
	}
}

func TestEmptyRange(t *testing.T) {
	c, _ := buildCanopy(t, 1000, 64)
	q := rangeQuery(query.Count, 0, 0)
	got, cost, err := c.Answer(q, 200, 300)
	if err != nil {
		t.Fatal(err)
	}
	if got.Support != 0 || got.Value != 0 {
		t.Errorf("empty range = %+v", got)
	}
	if cost.RowsRead != 0 {
		t.Errorf("empty range read %d rows", cost.RowsRead)
	}
}

func TestChunksCount(t *testing.T) {
	c, _ := buildCanopy(t, 1000, 128)
	want := (1000 + 127) / 128
	if c.Chunks() != want {
		t.Errorf("Chunks = %d, want %d", c.Chunks(), want)
	}
}
