// Package canopy implements a Data Canopy-style semantic cache for exact
// statistics (paper §II, ref [20]): the data is chunked along one sort
// dimension and per-chunk sufficient statistics (count, sums, sums of
// squares, co-moments) are cached lazily on first touch. A range query
// assembles its exact answer from cached interior chunks plus base-data
// scans of the two partial boundary chunks.
//
// The paper's critique — "the storage required ... can grow prohibitively
// large" and "such efforts typically only benefit previously seen
// queries" — is measurable here: MemoryBytes() grows with every distinct
// region touched, and cold ranges pay full scan costs.
package canopy

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/storage"
)

// ErrBadChunk is returned for non-positive chunk sizes.
var ErrBadChunk = errors.New("canopy: chunk size must be positive")

// chunkStats is the mergeable statistic set cached per (chunk, column
// pair): enough for count/sum/avg/var/corr/slope.
type chunkStats struct {
	n                  int64
	sumX, sumXX        float64
	sumY, sumYY, sumXY float64
	built              bool
}

// Canopy caches chunk statistics over one table sorted by sortCol.
type Canopy struct {
	cl      *cluster.Cluster
	rows    []storage.Row // sorted by sortCol (materialised sorted view)
	sortCol int
	chunk   int
	// stats[colPair][chunkIdx]
	stats map[[2]int][]chunkStats
}

// Build materialises the sorted view (an offline index-build step) and
// returns an empty canopy; statistics fill in lazily as queries touch
// chunks.
func Build(cl *cluster.Cluster, t *storage.Table, sortCol, chunkRows int) (*Canopy, error) {
	if chunkRows < 1 {
		return nil, fmt.Errorf("%w: %d", ErrBadChunk, chunkRows)
	}
	var rows []storage.Row
	for p := 0; p < t.Partitions(); p++ {
		part, _, err := t.ScanPartition(p)
		if err != nil {
			return nil, fmt.Errorf("canopy build: %w", err)
		}
		rows = append(rows, part...)
	}
	sort.Slice(rows, func(i, j int) bool {
		return colVal(rows[i], sortCol) < colVal(rows[j], sortCol)
	})
	return &Canopy{
		cl:      cl,
		rows:    rows,
		sortCol: sortCol,
		chunk:   chunkRows,
		stats:   make(map[[2]int][]chunkStats),
	}, nil
}

func colVal(r storage.Row, col int) float64 {
	if col < 0 || col >= len(r.Vec) {
		return 0
	}
	return r.Vec[col]
}

// Chunks returns the number of chunks the table divides into.
func (c *Canopy) Chunks() int {
	return (len(c.rows) + c.chunk - 1) / c.chunk
}

// MemoryBytes returns the cache's current footprint: 56 bytes per built
// chunk statistic (the growth the paper warns about).
func (c *Canopy) MemoryBytes() int64 {
	var built int64
	for _, arr := range c.stats {
		for i := range arr {
			if arr[i].built {
				built++
			}
		}
	}
	return built * 56
}

// Answer computes the exact answer to a 1-D range aggregate over sortCol:
// q's selection must be a range on the sort column (canopies are
// per-column structures; multi-dimensional selections belong to the other
// operators).
func (c *Canopy) Answer(q query.Query, lo, hi float64) (query.Result, metrics.Cost, error) {
	if err := q.Validate(); err != nil {
		return query.Result{}, metrics.Cost{}, err
	}
	pair := [2]int{q.Col, q.Col2}
	arr, ok := c.stats[pair]
	if !ok {
		arr = make([]chunkStats, c.Chunks())
		c.stats[pair] = arr
	}
	// Row span [i, j) covered by the range.
	i := sort.Search(len(c.rows), func(k int) bool {
		return colVal(c.rows[k], c.sortCol) >= lo
	})
	j := sort.Search(len(c.rows), func(k int) bool {
		return colVal(c.rows[k], c.sortCol) >= hi
	})
	var total metrics.Cost
	var agg chunkStats
	rowBytes := int64(8)
	if len(c.rows) > 0 {
		rowBytes = c.rows[0].Bytes()
	}

	pos := i
	for pos < j {
		chunkIdx := pos / c.chunk
		chunkStart := chunkIdx * c.chunk
		chunkEnd := chunkStart + c.chunk
		if chunkEnd > len(c.rows) {
			chunkEnd = len(c.rows)
		}
		if pos == chunkStart && chunkEnd <= j {
			// Full interior chunk: use (or lazily build) cached stats.
			if !arr[chunkIdx].built {
				st := computeStats(c.rows[chunkStart:chunkEnd], q.Col, q.Col2)
				st.built = true
				arr[chunkIdx] = st
				total = total.Add(c.cl.ScanCost(int64(chunkEnd-chunkStart), rowBytes))
			}
			agg = agg.merge(arr[chunkIdx])
			pos = chunkEnd
			continue
		}
		// Partial boundary chunk: scan base rows.
		end := chunkEnd
		if end > j {
			end = j
		}
		st := computeStats(c.rows[pos:end], q.Col, q.Col2)
		agg = agg.merge(st)
		total = total.Add(c.cl.ScanCost(int64(end-pos), rowBytes))
		pos = end
	}
	return finish(q, agg), total, nil
}

func computeStats(rows []storage.Row, col, col2 int) chunkStats {
	var st chunkStats
	for _, r := range rows {
		x := colVal(r, col)
		y := colVal(r, col2)
		st.n++
		st.sumX += x
		st.sumXX += x * x
		st.sumY += y
		st.sumYY += y * y
		st.sumXY += x * y
	}
	return st
}

func (a chunkStats) merge(b chunkStats) chunkStats {
	return chunkStats{
		n:    a.n + b.n,
		sumX: a.sumX + b.sumX, sumXX: a.sumXX + b.sumXX,
		sumY: a.sumY + b.sumY, sumYY: a.sumYY + b.sumYY,
		sumXY: a.sumXY + b.sumXY,
		built: true,
	}
}

func finish(q query.Query, st chunkStats) query.Result {
	res := query.Result{Support: st.n}
	if st.n == 0 {
		return res
	}
	nf := float64(st.n)
	switch q.Aggregate {
	case query.Count:
		res.Value = nf
	case query.Sum:
		res.Value = st.sumX
	case query.Avg:
		res.Value = st.sumX / nf
	case query.Var:
		m := st.sumX / nf
		res.Value = st.sumXX/nf - m*m
	case query.Corr:
		num := nf*st.sumXY - st.sumX*st.sumY
		denX := nf*st.sumXX - st.sumX*st.sumX
		denY := nf*st.sumYY - st.sumY*st.sumY
		if denX > 0 && denY > 0 {
			res.Value = num / (math.Sqrt(denX) * math.Sqrt(denY))
		}
	case query.RegSlope:
		den := nf*st.sumXX - st.sumX*st.sumX
		if den != 0 {
			res.Value = (nf*st.sumXY - st.sumX*st.sumY) / den
		}
	}
	return res
}
