// Package graph implements graph analytics over a simulated graph store:
// labeled undirected graphs, VF2-style subgraph-isomorphism matching, and
// the subgraph-query semantic cache of refs [34][35] (GraphCache) that
// the paper credits with up-to-40x improvements (C4).
//
// A subgraph query asks: which graphs in the database contain the query
// pattern? The baseline tests every database graph. The cache exploits
// the algebra of containment: if a cached pattern p is a subgraph of the
// new query q, then q's answers are a subset of p's answers (run the
// expensive isomorphism test only on that candidate set); if p is a
// supergraph of q, p's answers are guaranteed answers of q.
package graph

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ErrBadGraph is returned for structurally invalid graphs.
var ErrBadGraph = errors.New("graph: invalid graph")

// Graph is a small labeled undirected graph. Vertices are 0..N-1.
type Graph struct {
	// Labels[v] is vertex v's label.
	Labels []int
	// Adj[v] lists v's neighbours (each edge appears in both lists).
	Adj [][]int
	// edges caches the edge count.
	edges int
}

// NewGraph builds a graph from labels and an edge list. Edges are
// undirected; duplicates and self-loops are rejected.
func NewGraph(labels []int, edges [][2]int) (*Graph, error) {
	n := len(labels)
	if n == 0 {
		return nil, fmt.Errorf("%w: no vertices", ErrBadGraph)
	}
	g := &Graph{
		Labels: append([]int(nil), labels...),
		Adj:    make([][]int, n),
	}
	seen := make(map[[2]int]bool, len(edges))
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v || u < 0 || v < 0 || u >= n || v >= n {
			return nil, fmt.Errorf("%w: edge (%d,%d) of %d vertices", ErrBadGraph, u, v, n)
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		g.Adj[u] = append(g.Adj[u], v)
		g.Adj[v] = append(g.Adj[v], u)
		g.edges++
	}
	for v := range g.Adj {
		sort.Ints(g.Adj[v])
	}
	return g, nil
}

// N returns the vertex count.
func (g *Graph) N() int { return len(g.Labels) }

// M returns the edge count.
func (g *Graph) M() int { return g.edges }

// Degree returns vertex v's degree.
func (g *Graph) Degree(v int) int { return len(g.Adj[v]) }

// HasEdge reports whether u—v exists.
func (g *Graph) HasEdge(u, v int) bool {
	adj := g.Adj[u]
	i := sort.SearchInts(adj, v)
	return i < len(adj) && adj[i] == v
}

// Bytes returns the graph's serialised size under the simulator's
// encoding (charged when a back-end store ships the graph).
func (g *Graph) Bytes() int64 {
	return int64(4*len(g.Labels) + 8*g.edges)
}

// Signature returns a cheap iso-invariant fingerprint: vertex and edge
// counts, sorted label multiset, and sorted degree sequence. Equal
// signatures are necessary (not sufficient) for isomorphism — the cache
// uses them as exact-hit prefilters before verifying with two
// containment tests.
func (g *Graph) Signature() string {
	labels := append([]int(nil), g.Labels...)
	sort.Ints(labels)
	degs := make([]int, g.N())
	for v := range degs {
		degs[v] = g.Degree(v)
	}
	sort.Ints(degs)
	var sb strings.Builder
	sb.WriteString(strconv.Itoa(g.N()))
	sb.WriteByte('/')
	sb.WriteString(strconv.Itoa(g.M()))
	sb.WriteByte(':')
	for _, l := range labels {
		sb.WriteString(strconv.Itoa(l))
		sb.WriteByte(',')
	}
	sb.WriteByte(';')
	for _, d := range degs {
		sb.WriteString(strconv.Itoa(d))
		sb.WriteByte(',')
	}
	return sb.String()
}

// SubgraphOf reports whether pattern p embeds into target g (subgraph
// isomorphism, label-preserving, injective) and returns the number of
// backtracking steps spent — the cost unit the simulator charges.
func SubgraphOf(p, g *Graph) (bool, int) {
	if p.N() > g.N() || p.M() > g.M() {
		return false, 1
	}
	// Order pattern vertices: BFS from the highest-degree vertex so each
	// new vertex connects to already-mapped ones (cuts the search tree).
	order := matchOrder(p)
	assignment := make([]int, p.N())
	for i := range assignment {
		assignment[i] = -1
	}
	used := make([]bool, g.N())
	steps := 0
	ok := match(p, g, order, 0, assignment, used, &steps)
	return ok, steps
}

func matchOrder(p *Graph) []int {
	n := p.N()
	start := 0
	for v := 1; v < n; v++ {
		if p.Degree(v) > p.Degree(start) {
			start = v
		}
	}
	order := make([]int, 0, n)
	inOrder := make([]bool, n)
	queue := []int{start}
	inOrder[start] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range p.Adj[v] {
			if !inOrder[w] {
				inOrder[w] = true
				queue = append(queue, w)
			}
		}
	}
	// Disconnected patterns: append remaining vertices.
	for v := 0; v < n; v++ {
		if !inOrder[v] {
			order = append(order, v)
		}
	}
	return order
}

func match(p, g *Graph, order []int, pos int, assignment []int, used []bool, steps *int) bool {
	if pos == len(order) {
		return true
	}
	pv := order[pos]
	for gu := 0; gu < g.N(); gu++ {
		if used[gu] || g.Labels[gu] != p.Labels[pv] || g.Degree(gu) < p.Degree(pv) {
			continue
		}
		*steps++
		// Consistency: every already-mapped neighbour of pv must be a
		// neighbour of gu.
		ok := true
		for _, pw := range p.Adj[pv] {
			if gm := assignment[pw]; gm >= 0 && !g.HasEdge(gu, gm) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		assignment[pv] = gu
		used[gu] = true
		if match(p, g, order, pos+1, assignment, used, steps) {
			return true
		}
		assignment[pv] = -1
		used[gu] = false
	}
	return false
}

// Isomorphic reports whether a and b are isomorphic (mutual containment
// with equal sizes) and the steps spent.
func Isomorphic(a, b *Graph) (bool, int) {
	if a.N() != b.N() || a.M() != b.M() {
		return false, 1
	}
	ok, steps := SubgraphOf(a, b)
	return ok, steps
}
