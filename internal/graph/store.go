package graph

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
)

// Store is a simulated graph database: a set of graphs spread over the
// cluster's nodes, accessed with the usual cost accounting. The
// per-graph isomorphism test is charged CPU time per backtracking step;
// fetching a graph from the back-end charges its bytes.
type Store struct {
	cl     *cluster.Cluster
	graphs []*Graph
	// StepCost is the CPU charge per backtracking step.
	StepCost time.Duration
}

// NewStore builds a store over cl holding the given graphs.
func NewStore(cl *cluster.Cluster, graphs []*Graph) *Store {
	return &Store{cl: cl, graphs: graphs, StepCost: 100 * time.Nanosecond}
}

// Len returns the number of stored graphs.
func (s *Store) Len() int { return len(s.graphs) }

// Graph returns stored graph i (nil when out of range).
func (s *Store) Graph(i int) *Graph {
	if i < 0 || i >= len(s.graphs) {
		return nil
	}
	return s.graphs[i]
}

// MatchAll answers the subgraph query without a cache: fetch and test
// every stored graph.
func (s *Store) MatchAll(pattern *Graph) ([]int, metrics.Cost) {
	ids := make([]int, len(s.graphs))
	for i := range ids {
		ids[i] = i
	}
	return s.matchCandidates(pattern, ids)
}

// matchCandidates tests the pattern against the given graph ids, charging
// fetch and match costs.
func (s *Store) matchCandidates(pattern *Graph, ids []int) ([]int, metrics.Cost) {
	var out []int
	var total metrics.Cost
	var fetchBytes int64
	var steps int
	nodes := make(map[int]bool)
	for _, id := range ids {
		g := s.Graph(id)
		if g == nil {
			continue
		}
		// Graph id lives on node id mod clusterSize.
		nodes[id%s.cl.Size()] = true
		fetchBytes += g.Bytes()
		ok, st := SubgraphOf(pattern, g)
		steps += st
		if ok {
			out = append(out, id)
		}
	}
	total = total.Add(s.cl.TransferLAN(fetchBytes))
	cpu := time.Duration(steps) * s.StepCost
	total = total.Add(metrics.Cost{Time: cpu, CPUTime: cpu})
	total.NodesTouched = len(nodes)
	total.RowsRead = int64(len(ids))
	total.RowsReturned = int64(len(out))
	sort.Ints(out)
	return out, total
}

// RandomGraph generates a connected random graph with n vertices, edge
// probability p between any further pair, and labels drawn from
// [0, labelCount).
func RandomGraph(rng *rand.Rand, n int, p float64, labelCount int) (*Graph, error) {
	if n < 1 || labelCount < 1 {
		return nil, fmt.Errorf("%w: n=%d labels=%d", ErrBadGraph, n, labelCount)
	}
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(labelCount)
	}
	var edges [][2]int
	// Spanning chain guarantees connectivity.
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		edges = append(edges, [2]int{u, v})
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	return NewGraph(labels, edges)
}

// SamplePattern extracts a connected induced sub-pattern with k vertices
// from g — query workloads built this way are guaranteed non-empty.
func SamplePattern(rng *rand.Rand, g *Graph, k int) (*Graph, error) {
	if k < 1 || k > g.N() {
		return nil, fmt.Errorf("%w: pattern size %d of %d", ErrBadGraph, k, g.N())
	}
	start := rng.Intn(g.N())
	chosen := []int{start}
	inChosen := map[int]bool{start: true}
	frontier := append([]int(nil), g.Adj[start]...)
	for len(chosen) < k && len(frontier) > 0 {
		i := rng.Intn(len(frontier))
		v := frontier[i]
		frontier = append(frontier[:i], frontier[i+1:]...)
		if inChosen[v] {
			continue
		}
		inChosen[v] = true
		chosen = append(chosen, v)
		frontier = append(frontier, g.Adj[v]...)
	}
	// Build induced subgraph on chosen vertices.
	remap := make(map[int]int, len(chosen))
	labels := make([]int, len(chosen))
	for i, v := range chosen {
		remap[v] = i
		labels[i] = g.Labels[v]
	}
	var edges [][2]int
	for i, v := range chosen {
		for _, w := range g.Adj[v] {
			j, ok := remap[w]
			if ok && j > i {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	return NewGraph(labels, edges)
}
