package graph

import (
	"container/list"
	"sort"
	"time"

	"repro/internal/metrics"
)

// Cache is the subgraph-query semantic cache of refs [34][35]: it stores
// past (pattern, answer-set) pairs and exploits containment algebra to
// shrink — or eliminate — the candidate set of a new query.
//
//   - Exact hit: a cached pattern isomorphic to the query answers it
//     outright.
//   - Subgraph hits: cached p ⊆ query q implies answers(q) ⊆ answers(p);
//     intersecting all such answer sets yields the candidate set.
//   - Supergraph hits: cached p ⊇ q implies answers(p) ⊆ answers(q);
//     those ids are accepted without testing.
//
// Eviction is LRU by pattern. Cache probing itself costs isomorphism
// steps (charged), so the cache only probes entries whose cheap
// signature bounds are compatible.
type Cache struct {
	store    *Store
	capacity int
	entries  map[string]*list.Element // signature -> element
	order    *list.List               // LRU: front = most recent

	// Hits/Misses/SubHits/SuperHits count query outcomes.
	Hits, Misses, SubHits, SuperHits int64
}

type cacheEntry struct {
	sig     string
	pattern *Graph
	answers []int
}

// NewCache creates a cache of the given entry capacity over store.
func NewCache(store *Store, capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		store:    store,
		capacity: capacity,
		entries:  make(map[string]*list.Element, capacity),
		order:    list.New(),
	}
}

// Len returns the number of cached patterns.
func (c *Cache) Len() int { return c.order.Len() }

// Query answers the subgraph query through the cache.
func (c *Cache) Query(pattern *Graph) ([]int, metrics.Cost) {
	var total metrics.Cost
	var probeSteps int

	// Exact hit: same signature, verified isomorphic.
	sig := pattern.Signature()
	if el, ok := c.entries[sig]; ok {
		e := el.Value.(*cacheEntry)
		iso, st := Isomorphic(pattern, e.pattern)
		probeSteps += st
		if iso {
			c.order.MoveToFront(el)
			c.Hits++
			cpu := time.Duration(probeSteps) * c.store.StepCost
			total = total.Add(metrics.Cost{Time: cpu, CPUTime: cpu})
			total.RowsReturned = int64(len(e.answers))
			return append([]int(nil), e.answers...), total
		}
	}

	// Containment probes over all entries (bounded by capacity).
	candidates := allIDs(c.store.Len())
	accepted := map[int]bool{}
	var subHit, superHit bool
	for el := c.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		// p ⊆ q candidates-narrowing probe: only possible when the entry
		// is no larger than the query.
		if e.pattern.N() <= pattern.N() && e.pattern.M() <= pattern.M() {
			ok, st := SubgraphOf(e.pattern, pattern)
			probeSteps += st
			if ok {
				candidates = intersect(candidates, e.answers)
				subHit = true
			}
		} else if e.pattern.N() >= pattern.N() && e.pattern.M() >= pattern.M() {
			// p ⊇ q guarantee probe.
			ok, st := SubgraphOf(pattern, e.pattern)
			probeSteps += st
			if ok {
				for _, id := range e.answers {
					accepted[id] = true
				}
				superHit = true
			}
		}
	}
	if subHit {
		c.SubHits++
	}
	if superHit {
		c.SuperHits++
	}
	if !subHit && !superHit {
		c.Misses++
	}

	// Remove guaranteed ids from the to-test set.
	toTest := candidates[:0:0]
	for _, id := range candidates {
		if !accepted[id] {
			toTest = append(toTest, id)
		}
	}
	answers, cost := c.store.matchCandidates(pattern, toTest)
	for id := range accepted {
		answers = append(answers, id)
	}
	sort.Ints(answers)
	cpu := time.Duration(probeSteps) * c.store.StepCost
	total = total.Add(metrics.Cost{Time: cpu, CPUTime: cpu}).Add(cost)
	total.RowsReturned = int64(len(answers))

	c.insert(sig, pattern, answers)
	return answers, total
}

func (c *Cache) insert(sig string, pattern *Graph, answers []int) {
	if el, ok := c.entries[sig]; ok {
		// Same signature (rare collision): refresh the entry.
		el.Value = &cacheEntry{sig: sig, pattern: pattern, answers: answers}
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.capacity {
		back := c.order.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		delete(c.entries, e.sig)
		c.order.Remove(back)
	}
	el := c.order.PushFront(&cacheEntry{sig: sig, pattern: pattern, answers: answers})
	c.entries[sig] = el
}

func allIDs(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// intersect returns the sorted intersection of sorted a with set b.
func intersect(a, b []int) []int {
	inB := make(map[int]bool, len(b))
	for _, id := range b {
		inB[id] = true
	}
	out := a[:0:0]
	for _, id := range a {
		if inB[id] {
			out = append(out, id)
		}
	}
	return out
}
