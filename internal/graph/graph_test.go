package graph

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/cluster"
)

func mustGraph(t *testing.T, labels []int, edges [][2]int) *Graph {
	t.Helper()
	g, err := NewGraph(labels, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func triangle(t *testing.T) *Graph {
	return mustGraph(t, []int{0, 0, 0}, [][2]int{{0, 1}, {1, 2}, {0, 2}})
}

func path3(t *testing.T) *Graph {
	return mustGraph(t, []int{0, 0, 0}, [][2]int{{0, 1}, {1, 2}})
}

func TestNewGraphValidation(t *testing.T) {
	if _, err := NewGraph(nil, nil); !errors.Is(err, ErrBadGraph) {
		t.Error("empty graph accepted")
	}
	if _, err := NewGraph([]int{0}, [][2]int{{0, 0}}); !errors.Is(err, ErrBadGraph) {
		t.Error("self-loop accepted")
	}
	if _, err := NewGraph([]int{0, 1}, [][2]int{{0, 5}}); !errors.Is(err, ErrBadGraph) {
		t.Error("out-of-range edge accepted")
	}
	// Duplicate edges dedupe.
	g := mustGraph(t, []int{0, 1}, [][2]int{{0, 1}, {1, 0}})
	if g.M() != 1 {
		t.Errorf("M = %d, want 1", g.M())
	}
}

func TestGraphBasics(t *testing.T) {
	g := triangle(t)
	if g.N() != 3 || g.M() != 3 {
		t.Errorf("N/M = %d/%d", g.N(), g.M())
	}
	if !g.HasEdge(0, 2) || g.HasEdge(0, 0) {
		t.Error("HasEdge wrong")
	}
	if g.Degree(1) != 2 {
		t.Errorf("Degree(1) = %d", g.Degree(1))
	}
	if g.Bytes() <= 0 {
		t.Error("Bytes should be positive")
	}
}

func TestSubgraphOf(t *testing.T) {
	tri := triangle(t)
	path := path3(t)
	// A path embeds in a triangle; a triangle does not embed in a path.
	if ok, _ := SubgraphOf(path, tri); !ok {
		t.Error("path should embed in triangle")
	}
	if ok, _ := SubgraphOf(tri, path); ok {
		t.Error("triangle embedded in path")
	}
	// Labels must match.
	labeled := mustGraph(t, []int{1, 0, 0}, [][2]int{{0, 1}, {1, 2}})
	if ok, _ := SubgraphOf(labeled, tri); ok {
		t.Error("label-mismatched pattern embedded")
	}
	// Single vertex embeds anywhere the label exists.
	v := mustGraph(t, []int{0}, nil)
	if ok, _ := SubgraphOf(v, tri); !ok {
		t.Error("single vertex should embed")
	}
}

func TestIsomorphic(t *testing.T) {
	a := mustGraph(t, []int{0, 1, 0}, [][2]int{{0, 1}, {1, 2}})
	b := mustGraph(t, []int{0, 0, 1}, [][2]int{{0, 2}, {1, 2}}) // relabelled path
	if ok, _ := Isomorphic(a, b); !ok {
		t.Error("isomorphic graphs not detected")
	}
	c := triangle(t)
	if ok, _ := Isomorphic(a, c); ok {
		t.Error("non-isomorphic graphs matched")
	}
}

func TestSignatureInvariance(t *testing.T) {
	a := mustGraph(t, []int{0, 1, 0}, [][2]int{{0, 1}, {1, 2}})
	b := mustGraph(t, []int{0, 0, 1}, [][2]int{{0, 2}, {1, 2}})
	if a.Signature() != b.Signature() {
		t.Error("isomorphic graphs should share a signature")
	}
	if a.Signature() == triangle(t).Signature() {
		t.Error("different graphs sharing a signature (edge count differs)")
	}
}

func TestRandomGraphAndSamplePattern(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := RandomGraph(rng, 12, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 {
		t.Fatalf("N = %d", g.N())
	}
	// Connectivity: BFS reaches all.
	seen := make([]bool, g.N())
	queue := []int{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				queue = append(queue, w)
			}
		}
	}
	if count != g.N() {
		t.Errorf("random graph disconnected: reached %d of %d", count, g.N())
	}
	p, err := SamplePattern(rng, g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() > 4 || p.N() < 1 {
		t.Fatalf("pattern size %d", p.N())
	}
	// A sampled induced pattern must embed in its source.
	if ok, _ := SubgraphOf(p, g); !ok {
		t.Error("sampled pattern does not embed in source graph")
	}
	if _, err := SamplePattern(rng, g, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := RandomGraph(rng, 0, 0.5, 1); err == nil {
		t.Error("n=0 accepted")
	}
}

func buildStore(t *testing.T, nGraphs int) (*Store, []*Graph, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(2))
	cl := cluster.New(4, cluster.DefaultConfig())
	graphs := make([]*Graph, nGraphs)
	for i := range graphs {
		g, err := RandomGraph(rng, 8+rng.Intn(8), 0.25, 4)
		if err != nil {
			t.Fatal(err)
		}
		graphs[i] = g
	}
	return NewStore(cl, graphs), graphs, rng
}

func TestMatchAllFindsPlantedPattern(t *testing.T) {
	store, graphs, rng := buildStore(t, 60)
	pattern, err := SamplePattern(rng, graphs[7], 4)
	if err != nil {
		t.Fatal(err)
	}
	ids, cost := store.MatchAll(pattern)
	found := false
	for _, id := range ids {
		if id == 7 {
			found = true
		}
		// Verify every reported answer really contains the pattern.
		if ok, _ := SubgraphOf(pattern, store.Graph(id)); !ok {
			t.Fatalf("false positive: graph %d", id)
		}
	}
	if !found {
		t.Error("planted source graph not in answers")
	}
	if cost.RowsRead != 60 {
		t.Errorf("MatchAll tested %d graphs, want 60", cost.RowsRead)
	}
	if cost.Time <= 0 {
		t.Error("MatchAll charged no time")
	}
}

func TestCacheExactHit(t *testing.T) {
	store, graphs, rng := buildStore(t, 50)
	cache := NewCache(store, 16)
	pattern, _ := SamplePattern(rng, graphs[3], 4)

	first, firstCost := cache.Query(pattern)
	second, secondCost := cache.Query(pattern)
	if len(first) != len(second) {
		t.Fatalf("answers changed: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("answers differ between cold and hot query")
		}
	}
	if cache.Hits != 1 {
		t.Errorf("Hits = %d, want 1", cache.Hits)
	}
	if secondCost.Time*10 >= firstCost.Time {
		t.Errorf("exact hit time %v not ≪ cold time %v", secondCost.Time, firstCost.Time)
	}
	if secondCost.RowsRead != 0 {
		t.Error("exact hit touched the store")
	}
}

func TestCacheSubgraphHitNarrowsCandidates(t *testing.T) {
	store, graphs, rng := buildStore(t, 80)
	cache := NewCache(store, 16)
	// Cold query with a small pattern.
	small, _ := SamplePattern(rng, graphs[5], 3)
	_, _ = cache.Query(small)
	// A larger pattern that contains the small one: grow the sample from
	// the same graph (supergraph of some instance — we test behaviourally
	// via the counter instead of guaranteeing containment).
	big, _ := SamplePattern(rng, graphs[5], 6)
	answersCold, _ := NewCache(store, 1).Query(big) // fresh cache = no help
	answersWarm, warmCost := cache.Query(big)
	if len(answersCold) != len(answersWarm) {
		t.Fatalf("warm cache changed answers: %d vs %d", len(answersCold), len(answersWarm))
	}
	for i := range answersCold {
		if answersCold[i] != answersWarm[i] {
			t.Fatal("cache changed answer content")
		}
	}
	// If a subgraph hit occurred, fewer graphs must have been tested.
	if cache.SubHits > 0 && warmCost.RowsRead >= int64(store.Len()) {
		t.Errorf("subgraph hit but still tested %d graphs", warmCost.RowsRead)
	}
}

func TestCacheCorrectnessUnderStream(t *testing.T) {
	store, graphs, rng := buildStore(t, 40)
	cache := NewCache(store, 8)
	for i := 0; i < 30; i++ {
		src := graphs[rng.Intn(len(graphs))]
		k := 3 + rng.Intn(4)
		if k > src.N() {
			k = src.N()
		}
		pattern, err := SamplePattern(rng, src, k)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := cache.Query(pattern)
		want, _ := store.MatchAll(pattern)
		if len(got) != len(want) {
			t.Fatalf("query %d: cache %d answers, truth %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("query %d: answer sets differ", i)
			}
		}
	}
	if cache.Len() > 8 {
		t.Errorf("cache grew past capacity: %d", cache.Len())
	}
}

func TestCacheEviction(t *testing.T) {
	store, graphs, rng := buildStore(t, 20)
	cache := NewCache(store, 2)
	for i := 0; i < 6; i++ {
		p, _ := SamplePattern(rng, graphs[i], 3+i%3)
		cache.Query(p)
	}
	if cache.Len() > 2 {
		t.Errorf("Len = %d, want <= 2", cache.Len())
	}
}
