// Package cluster simulates the machine layer of a Big Data Analytics
// Stack: a set of data-server nodes connected by an intra-datacentre LAN,
// optionally grouped into geo-distributed regions connected by WAN links
// (paper Fig. 1 and Fig. 3).
//
// The simulator is a deterministic discrete-cost model, not a wall-clock
// one: operations return metrics.Cost values computed from configurable
// per-row, per-message, and per-byte constants. This substitution (see
// DESIGN.md) preserves exactly what the paper reasons about — nodes
// touched, bytes moved, passes executed — without needing a physical
// cluster.
package cluster

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/metrics"
)

// ErrNoSuchNode is returned for out-of-range node indices.
var ErrNoSuchNode = errors.New("cluster: no such node")

// Config holds the cost-model constants. The defaults (DefaultConfig)
// approximate a 2018 commodity cluster: ~20M rows/s scan rate per node,
// 0.5 ms LAN round trips at 1 Gb/s, 50 ms WAN round trips at 100 Mb/s,
// and a 150 ms per-node framework overhead for MapReduce-style jobs (the
// layered-BDAS overhead of §II.A: job setup, container launch, task
// scheduling across YARN/Spark layers).
type Config struct {
	// PerRowScan is CPU time to scan one row from local storage.
	PerRowScan time.Duration
	// PerRowCPU is CPU time for per-row user compute (map/filter work).
	PerRowCPU time.Duration
	// LANLatency is the one-way latency of an intra-datacentre message.
	LANLatency time.Duration
	// LANBytesPerSec is intra-datacentre bandwidth.
	LANBytesPerSec float64
	// WANLatency is the one-way latency of an inter-region message.
	WANLatency time.Duration
	// WANBytesPerSec is inter-region bandwidth.
	WANBytesPerSec float64
	// FrameworkOverhead is charged once per node engaged in a
	// MapReduce-style job (layer traversal, task launch).
	FrameworkOverhead time.Duration
	// CohortOverhead is charged per node engaged by a coordinator-cohort
	// request (a lightweight RPC handler, no job machinery).
	CohortOverhead time.Duration
}

// DefaultConfig returns the cost model described on Config.
func DefaultConfig() Config {
	return Config{
		PerRowScan:        50 * time.Nanosecond,
		PerRowCPU:         20 * time.Nanosecond,
		LANLatency:        500 * time.Microsecond,
		LANBytesPerSec:    125e6, // 1 Gb/s
		WANLatency:        50 * time.Millisecond,
		WANBytesPerSec:    12.5e6, // 100 Mb/s
		FrameworkOverhead: 150 * time.Millisecond,
		CohortOverhead:    2 * time.Millisecond,
	}
}

// Node is one simulated data server.
type Node struct {
	// ID is the node's index within its cluster.
	ID int
	// Region is the geo region the node belongs to (0 for single-DC).
	Region int
	// Failed marks the node as crashed; reads redirect to replicas.
	Failed bool
}

// Cluster is a set of nodes plus the cost model.
type Cluster struct {
	cfg   Config
	nodes []Node
}

// New creates a single-region cluster of n nodes.
func New(n int, cfg Config) *Cluster {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{ID: i}
	}
	return &Cluster{cfg: cfg, nodes: nodes}
}

// NewGeo creates a cluster with the given number of nodes per region.
func NewGeo(nodesPerRegion []int, cfg Config) *Cluster {
	var nodes []Node
	id := 0
	for region, n := range nodesPerRegion {
		for i := 0; i < n; i++ {
			nodes = append(nodes, Node{ID: id, Region: region})
			id++
		}
	}
	return &Cluster{cfg: cfg, nodes: nodes}
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Config returns the cost model.
func (c *Cluster) Config() Config { return c.cfg }

// Node returns node i.
func (c *Cluster) Node(i int) (Node, error) {
	if i < 0 || i >= len(c.nodes) {
		return Node{}, fmt.Errorf("%w: %d of %d", ErrNoSuchNode, i, len(c.nodes))
	}
	return c.nodes[i], nil
}

// Fail marks node i as crashed.
func (c *Cluster) Fail(i int) error {
	if i < 0 || i >= len(c.nodes) {
		return fmt.Errorf("%w: %d", ErrNoSuchNode, i)
	}
	c.nodes[i].Failed = true
	return nil
}

// Recover clears node i's failure flag.
func (c *Cluster) Recover(i int) error {
	if i < 0 || i >= len(c.nodes) {
		return fmt.Errorf("%w: %d", ErrNoSuchNode, i)
	}
	c.nodes[i].Failed = false
	return nil
}

// Failed reports whether node i is crashed (out-of-range is "failed").
func (c *Cluster) Failed(i int) bool {
	if i < 0 || i >= len(c.nodes) {
		return true
	}
	return c.nodes[i].Failed
}

// SameRegion reports whether nodes i and j are in the same region.
func (c *Cluster) SameRegion(i, j int) bool {
	if i < 0 || j < 0 || i >= len(c.nodes) || j >= len(c.nodes) {
		return false
	}
	return c.nodes[i].Region == c.nodes[j].Region
}

// ScanCost returns the cost of node work scanning rows rows of rowBytes
// each, plus per-row user compute.
func (c *Cluster) ScanCost(rows int64, rowBytes int64) metrics.Cost {
	t := time.Duration(rows) * (c.cfg.PerRowScan + c.cfg.PerRowCPU)
	return metrics.Cost{
		Time:         t,
		CPUTime:      t,
		RowsRead:     rows,
		BytesRead:    rows * rowBytes,
		NodesTouched: 1,
	}
}

// CPUCost returns the cost of pure per-row compute (no storage read) on
// one node.
func (c *Cluster) CPUCost(rows int64) metrics.Cost {
	t := time.Duration(rows) * c.cfg.PerRowCPU
	return metrics.Cost{Time: t, CPUTime: t}
}

// TransferLAN returns the cost of moving bytes across the LAN in one
// logical message exchange.
func (c *Cluster) TransferLAN(bytes int64) metrics.Cost {
	t := c.cfg.LANLatency
	if c.cfg.LANBytesPerSec > 0 {
		t += time.Duration(float64(bytes) / c.cfg.LANBytesPerSec * float64(time.Second))
	}
	return metrics.Cost{Time: t, BytesLAN: bytes, Messages: 1}
}

// TransferWAN returns the cost of moving bytes across a WAN link in one
// logical message exchange.
func (c *Cluster) TransferWAN(bytes int64) metrics.Cost {
	t := c.cfg.WANLatency
	if c.cfg.WANBytesPerSec > 0 {
		t += time.Duration(float64(bytes) / c.cfg.WANBytesPerSec * float64(time.Second))
	}
	return metrics.Cost{Time: t, BytesWAN: bytes, Messages: 1}
}

// Transfer returns TransferLAN when nodes i and j share a region and
// TransferWAN otherwise.
func (c *Cluster) Transfer(i, j int, bytes int64) metrics.Cost {
	if c.SameRegion(i, j) {
		return c.TransferLAN(bytes)
	}
	return c.TransferWAN(bytes)
}

// FrameworkLaunch returns the per-node overhead of engaging a node in a
// MapReduce-style job.
func (c *Cluster) FrameworkLaunch() metrics.Cost {
	return metrics.Cost{
		Time:         c.cfg.FrameworkOverhead,
		CPUTime:      c.cfg.FrameworkOverhead,
		NodesTouched: 1,
	}
}

// CohortLaunch returns the per-node overhead of a coordinator-cohort RPC.
func (c *Cluster) CohortLaunch() metrics.Cost {
	return metrics.Cost{
		Time:         c.cfg.CohortOverhead,
		CPUTime:      c.cfg.CohortOverhead,
		NodesTouched: 1,
	}
}
