package cluster

import (
	"errors"
	"testing"
	"time"
)

func TestNewAndNodes(t *testing.T) {
	c := New(4, DefaultConfig())
	if c.Size() != 4 {
		t.Fatalf("Size = %d", c.Size())
	}
	n, err := c.Node(2)
	if err != nil || n.ID != 2 || n.Region != 0 {
		t.Errorf("Node(2) = %+v, %v", n, err)
	}
	if _, err := c.Node(9); !errors.Is(err, ErrNoSuchNode) {
		t.Errorf("Node(9) err = %v, want ErrNoSuchNode", err)
	}
}

func TestGeoRegions(t *testing.T) {
	c := NewGeo([]int{2, 3}, DefaultConfig())
	if c.Size() != 5 {
		t.Fatalf("Size = %d", c.Size())
	}
	if !c.SameRegion(0, 1) {
		t.Error("nodes 0,1 should share region 0")
	}
	if c.SameRegion(1, 2) {
		t.Error("nodes 1,2 should be in different regions")
	}
	if c.SameRegion(0, 99) {
		t.Error("out-of-range should not match")
	}
}

func TestFailRecover(t *testing.T) {
	c := New(2, DefaultConfig())
	if c.Failed(0) {
		t.Error("fresh node marked failed")
	}
	if err := c.Fail(0); err != nil {
		t.Fatal(err)
	}
	if !c.Failed(0) {
		t.Error("Fail(0) did not stick")
	}
	if err := c.Recover(0); err != nil {
		t.Fatal(err)
	}
	if c.Failed(0) {
		t.Error("Recover(0) did not stick")
	}
	if err := c.Fail(7); !errors.Is(err, ErrNoSuchNode) {
		t.Errorf("Fail(7) err = %v", err)
	}
	if !c.Failed(-1) {
		t.Error("out-of-range node should read as failed")
	}
}

func TestScanCost(t *testing.T) {
	cfg := DefaultConfig()
	c := New(1, cfg)
	cost := c.ScanCost(1000, 40)
	wantT := 1000 * (cfg.PerRowScan + cfg.PerRowCPU)
	if cost.Time != wantT || cost.RowsRead != 1000 || cost.BytesRead != 40000 ||
		cost.NodesTouched != 1 {
		t.Errorf("ScanCost = %+v", cost)
	}
}

func TestTransferCosts(t *testing.T) {
	cfg := DefaultConfig()
	c := NewGeo([]int{1, 1}, cfg)
	lan := c.TransferLAN(125_000_000) // 1 second at 1 Gb/s
	if lan.Time < time.Second || lan.Time > time.Second+cfg.LANLatency {
		t.Errorf("LAN transfer time = %v", lan.Time)
	}
	if lan.BytesLAN != 125_000_000 || lan.Messages != 1 {
		t.Errorf("LAN transfer = %+v", lan)
	}
	wan := c.TransferWAN(100)
	if wan.Time < cfg.WANLatency || wan.BytesWAN != 100 {
		t.Errorf("WAN transfer = %+v", wan)
	}
	// Cross-region routing picks WAN.
	x := c.Transfer(0, 1, 10)
	if x.BytesWAN != 10 || x.BytesLAN != 0 {
		t.Errorf("Transfer cross-region = %+v", x)
	}
	y := c.Transfer(0, 0, 10)
	if y.BytesLAN != 10 || y.BytesWAN != 0 {
		t.Errorf("Transfer same-region = %+v", y)
	}
}

func TestLaunchOverheads(t *testing.T) {
	cfg := DefaultConfig()
	c := New(1, cfg)
	if got := c.FrameworkLaunch(); got.Time != cfg.FrameworkOverhead || got.NodesTouched != 1 {
		t.Errorf("FrameworkLaunch = %+v", got)
	}
	if got := c.CohortLaunch(); got.Time != cfg.CohortOverhead || got.NodesTouched != 1 {
		t.Errorf("CohortLaunch = %+v", got)
	}
	// The gap between the two is the layered-BDAS overhead the paper
	// complains about; it must be large.
	if cfg.FrameworkOverhead < 10*cfg.CohortOverhead {
		t.Error("framework overhead should dwarf cohort overhead")
	}
}
