package serve

import (
	"sync"
	"time"

	"repro/internal/core"
)

// cacheShards is the answer cache's shard count: enough that concurrent
// hot-path hits rarely contend on one mutex, small enough that a modest
// capacity still gives every shard a useful LRU depth.
const cacheShards = 16

// AnswerCache is a bounded, sharded LRU of answered queries keyed by
// the canonical query key (Key) and stamped with the answering agent's
// data version (core.Agent.CacheVersion). A hit is returned without
// touching the agent at all — no agent lock, no quantiser lookup, no
// model inference — which makes it the cheapest tier of the serving hot
// path. Staleness is handled by the version stamp: ingest advances the
// data version, so a hit whose stamp no longer matches the live version
// is dropped on sight instead of served. Entries are stamped with the
// version read *before* the answer was computed, so a write racing the
// computation can only expire the entry early, never let it outlive the
// data it described. FreshRows/stale_rows semantics carry through
// unchanged: the cached Answer is returned verbatim, and any ingest
// that would have advanced its staleness also advances the version and
// therefore evicts it.
type AnswerCache struct {
	shards [cacheShards]cacheShard
	capPer int
	// ttl additionally expires entries by age when positive. A version
	// stamp can only invalidate what the stamping node observes; in a
	// cluster, a write can land on remote partition holders without
	// ever touching this node, so distributed caches bound that
	// invisible-write staleness with a TTL on top of the stamp.
	ttl time.Duration
}

type cacheShard struct {
	mu   sync.Mutex
	m    map[string]*cacheEntry
	head *cacheEntry // most recently used
	tail *cacheEntry // least recently used
}

type cacheEntry struct {
	key        string
	ver        int64
	stamp      time.Time // put time, for TTL expiry
	ans        core.Answer
	prev, next *cacheEntry
}

// NewAnswerCache builds a cache bounded to roughly capacity entries
// (rounded up to a multiple of the shard count).
func NewAnswerCache(capacity int) *AnswerCache {
	if capacity < cacheShards {
		capacity = cacheShards
	}
	c := &AnswerCache{capPer: (capacity + cacheShards - 1) / cacheShards}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*cacheEntry)
	}
	return c
}

// SetTTL bounds every entry's lifetime (<= 0 disables age expiry).
// Configure before serving; not safe to change concurrently with
// lookups.
func (c *AnswerCache) SetTTL(d time.Duration) { c.ttl = d }

// Get returns the cached answer for key at the given data version.
func (c *AnswerCache) Get(key string, ver int64) (core.Answer, bool) {
	return c.lookup([]byte(key), fnv32(key), ver)
}

// Put caches ans for key at the given data version.
func (c *AnswerCache) Put(key string, ver int64, ans core.Answer) {
	c.put(key, fnv32(key), ver, ans)
}

// lookup is the allocation-free hit path: key arrives as the scratch
// byte slice the Pool built it in (the map access through string(key)
// does not allocate), h is its fnv32 hash.
func (c *AnswerCache) lookup(key []byte, h uint32, ver int64) (core.Answer, bool) {
	s := &c.shards[h%cacheShards]
	s.mu.Lock()
	e := s.m[string(key)]
	if e == nil {
		s.mu.Unlock()
		return core.Answer{}, false
	}
	if e.ver != ver || (c.ttl > 0 && time.Since(e.stamp) > c.ttl) {
		// The data moved under the entry (or it aged out): evict
		// eagerly so one stale key cannot pin shard capacity until LRU
		// pressure finds it.
		s.unlink(e)
		delete(s.m, e.key)
		s.mu.Unlock()
		return core.Answer{}, false
	}
	s.moveToFront(e)
	ans := e.ans
	s.mu.Unlock()
	return ans, true
}

func (c *AnswerCache) put(key string, h uint32, ver int64, ans core.Answer) {
	var stamp time.Time
	if c.ttl > 0 {
		stamp = time.Now()
	}
	s := &c.shards[h%cacheShards]
	s.mu.Lock()
	if e := s.m[key]; e != nil {
		e.ver, e.ans, e.stamp = ver, ans, stamp
		s.moveToFront(e)
		s.mu.Unlock()
		return
	}
	e := &cacheEntry{key: key, ver: ver, stamp: stamp, ans: ans}
	s.m[key] = e
	s.pushFront(e)
	if len(s.m) > c.capPer {
		lru := s.tail
		s.unlink(lru)
		delete(s.m, lru.key)
	}
	s.mu.Unlock()
}

// Len returns the cached entry count across all shards.
func (c *AnswerCache) Len() int {
	var n int
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Flush drops every entry — the big hammer for invalidations the
// version stamp cannot express, e.g. a background model rebuild that
// changes predictions without changing the data version.
func (c *AnswerCache) Flush() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = make(map[string]*cacheEntry)
		s.head, s.tail = nil, nil
		s.mu.Unlock()
	}
}

func (s *cacheShard) pushFront(e *cacheEntry) {
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *cacheShard) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *cacheShard) moveToFront(e *cacheEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}
