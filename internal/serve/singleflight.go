package serve

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
)

// ErrFallbackPanic is returned (to the leader and every parked waiter)
// when an oracle fallback panics mid-flight. Converting the panic into an
// error keeps the serving workers alive and, critically, guarantees the
// flight is removed from the group: before this, a panicking fallback
// left its call registered forever, so every later query with the same
// key parked behind a flight that could never finish.
var ErrFallbackPanic = errors.New("serve: fallback panicked")

// group is a minimal single-flight: concurrent do calls with the same
// key run fn once and share its result. (Modelled on
// golang.org/x/sync/singleflight, inlined so the build stays
// dependency-free.) join lets callers test for an active flight without
// starting one — the Pool uses it to park behind an in-progress oracle
// fallback before touching the agent's locks at all.
type group struct {
	mu sync.Mutex
	m  map[string]*call
}

type call struct {
	wg     sync.WaitGroup
	ans    core.Answer
	err    error
	joined int // waiters sharing this flight (guarded by group.mu)
}

// join returns the active flight for key, registering the caller as a
// waiter, or nil when no flight is in progress. The caller must
// c.wg.Wait() before reading ans/err.
func (g *group) join(key string) *call {
	g.mu.Lock()
	defer g.mu.Unlock()
	c := g.m[key]
	if c != nil {
		c.joined++
	}
	return c
}

// joinBytes is join with a byte-slice key: the map access through
// string(key) does not allocate, so the no-flight common case (every
// prediction) costs nothing on the heap.
func (g *group) joinBytes(key []byte) *call {
	g.mu.Lock()
	defer g.mu.Unlock()
	c := g.m[string(key)]
	if c != nil {
		c.joined++
	}
	return c
}

// waiting reports how many callers are parked on key's active flight.
func (g *group) waiting(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c := g.m[key]; c != nil {
		return c.joined
	}
	return 0
}

// do runs fn once per key at a time; duplicate concurrent callers share
// the leader's result and report shared=true.
func (g *group) do(key string, fn func() (core.Answer, error)) (ans core.Answer, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*call)
	}
	if c, ok := g.m[key]; ok {
		c.joined++
		g.mu.Unlock()
		c.wg.Wait()
		return c.ans, true, c.err
	}
	c := new(call)
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	// The flight MUST be unregistered and its waiters woken no matter how
	// fn exits: a failed (or panicking) fallback's error is delivered to
	// every parked caller exactly once and is never left behind for later
	// callers of the same key — the next query with this key starts a
	// fresh flight.
	func() {
		defer func() {
			if r := recover(); r != nil {
				c.err = fmt.Errorf("%w: %v", ErrFallbackPanic, r)
			}
			g.mu.Lock()
			delete(g.m, key)
			g.mu.Unlock()
			c.wg.Done()
		}()
		c.ans, c.err = fn()
	}()
	return c.ans, false, c.err
}
