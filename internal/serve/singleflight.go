package serve

import (
	"sync"

	"repro/internal/core"
)

// group is a minimal single-flight: concurrent do calls with the same
// key run fn once and share its result. (Modelled on
// golang.org/x/sync/singleflight, inlined so the build stays
// dependency-free.) join lets callers test for an active flight without
// starting one — the Pool uses it to park behind an in-progress oracle
// fallback before touching the agent's locks at all.
type group struct {
	mu sync.Mutex
	m  map[string]*call
}

type call struct {
	wg     sync.WaitGroup
	ans    core.Answer
	err    error
	joined int // waiters sharing this flight (guarded by group.mu)
}

// join returns the active flight for key, registering the caller as a
// waiter, or nil when no flight is in progress. The caller must
// c.wg.Wait() before reading ans/err.
func (g *group) join(key string) *call {
	g.mu.Lock()
	defer g.mu.Unlock()
	c := g.m[key]
	if c != nil {
		c.joined++
	}
	return c
}

// waiting reports how many callers are parked on key's active flight.
func (g *group) waiting(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c := g.m[key]; c != nil {
		return c.joined
	}
	return 0
}

// do runs fn once per key at a time; duplicate concurrent callers share
// the leader's result and report shared=true.
func (g *group) do(key string, fn func() (core.Answer, error)) (ans core.Answer, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*call)
	}
	if c, ok := g.m[key]; ok {
		c.joined++
		g.mu.Unlock()
		c.wg.Wait()
		return c.ans, true, c.err
	}
	c := new(call)
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.ans, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	c.wg.Done()
	return c.ans, false, c.err
}
