package serve

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/query"
)

// countingOracle answers instantly with a fixed value at a fixed data
// version.
type countingOracle struct{ version int64 }

func (o countingOracle) Answer(query.Query) (query.Result, metrics.Cost, error) {
	return query.Result{Value: 42, Support: 1}, metrics.Cost{RowsRead: 1}, nil
}

func (o countingOracle) DataVersion() int64 { return o.version }

func TestAnswerCacheVersionedGetPut(t *testing.T) {
	c := NewAnswerCache(64)
	ans := core.Answer{Value: 42, Predicted: true, Quantum: 3}
	c.Put("k", 7, ans)
	got, ok := c.Get("k", 7)
	if !ok || got != ans {
		t.Fatalf("Get(k, 7) = %+v, %v; want hit %+v", got, ok, ans)
	}
	// A different data version must miss AND evict the stale entry.
	if _, ok := c.Get("k", 8); ok {
		t.Fatal("Get at a newer version served a stale answer")
	}
	if c.Len() != 0 {
		t.Fatalf("stale entry not evicted: len=%d", c.Len())
	}
	if _, ok := c.Get("absent", 7); ok {
		t.Fatal("hit on an absent key")
	}
}

func TestAnswerCacheBoundedLRU(t *testing.T) {
	c := NewAnswerCache(cacheShards) // one entry per shard
	// Overfill one shard far past its capacity: size must stay bounded.
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i, k := range keys {
		c.Put(k, 1, core.Answer{Value: float64(i)})
	}
	if got := c.Len(); got > cacheShards {
		t.Fatalf("cache grew past its bound: len=%d cap=%d", got, cacheShards)
	}
	// The most recently used key of its shard must have survived.
	last := keys[len(keys)-1]
	if _, ok := c.Get(last, 1); !ok {
		t.Fatalf("most recent key %q was evicted", last)
	}
}

func TestAnswerCacheTTLExpiry(t *testing.T) {
	c := NewAnswerCache(64)
	c.SetTTL(20 * time.Millisecond)
	c.Put("k", 1, core.Answer{Value: 1})
	if _, ok := c.Get("k", 1); !ok {
		t.Fatal("fresh entry missed")
	}
	time.Sleep(30 * time.Millisecond)
	if _, ok := c.Get("k", 1); ok {
		t.Fatal("aged-out entry served (TTL bounds invisible-write staleness)")
	}
	if c.Len() != 0 {
		t.Fatalf("aged-out entry not evicted: len=%d", c.Len())
	}
}

func TestAnswerCacheFlush(t *testing.T) {
	c := NewAnswerCache(64)
	for _, k := range []string{"x", "y", "z"} {
		c.Put(k, 1, core.Answer{Value: 1})
	}
	c.Flush()
	if c.Len() != 0 {
		t.Fatalf("Flush left %d entries", c.Len())
	}
	if _, ok := c.Get("x", 1); ok {
		t.Fatal("hit after Flush")
	}
}

func TestAnswerCacheConcurrent(t *testing.T) {
	c := NewAnswerCache(256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			keys := []string{"p", "q", "r", "s"}
			for i := 0; i < 2000; i++ {
				k := keys[(i+w)%len(keys)]
				if i%3 == 0 {
					c.Put(k, int64(i%5), core.Answer{Value: float64(i)})
				} else {
					c.Get(k, int64(i%5))
				}
				if i%500 == 0 {
					c.Flush()
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestKeyCanonicalisesIgnoredColumns is the regression test for the
// cache/single-flight identity bug: columns an aggregate never reads
// must not split equivalent queries into distinct keys.
func TestKeyCanonicalisesIgnoredColumns(t *testing.T) {
	sel := query.Selection{Los: []float64{1, 2}, His: []float64{3, 4}}
	countA := query.Query{Select: sel, Aggregate: query.Count, Col: 3, Col2: 5}
	countB := query.Query{Select: sel, Aggregate: query.Count}
	if Key(countA) != Key(countB) {
		t.Errorf("COUNT keys split on ignored columns:\n %q\n %q", Key(countA), Key(countB))
	}
	sumA := query.Query{Select: sel, Aggregate: query.Sum, Col: 1, Col2: 9}
	sumB := query.Query{Select: sel, Aggregate: query.Sum, Col: 1}
	if Key(sumA) != Key(sumB) {
		t.Errorf("SUM keys split on ignored Col2:\n %q\n %q", Key(sumA), Key(sumB))
	}
	sumC := query.Query{Select: sel, Aggregate: query.Sum, Col: 2}
	if Key(sumA) == Key(sumC) {
		t.Error("SUM keys must still distinguish the aggregated column")
	}
	corrA := query.Query{Select: sel, Aggregate: query.Corr, Col: 0, Col2: 1}
	corrB := query.Query{Select: sel, Aggregate: query.Corr, Col: 0, Col2: 2}
	if Key(corrA) == Key(corrB) {
		t.Error("CORR keys must distinguish Col2")
	}
	if Key(countA) != string(AppendKey(nil, countA)) {
		t.Error("Key and AppendKey disagree")
	}
}

// TestPoolCacheDedupsEquivalentQueries proves two wire-level different
// but semantically identical queries share one cache entry: the second
// is served as a cache hit without another fallback.
func TestPoolCacheDedupsEquivalentQueries(t *testing.T) {
	agent, err := core.NewAgent(countingOracle{version: 1}, core.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool([]*core.Agent{agent}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pool.EnableCache(128)
	q1 := countAt(1, 2)
	q1.Col, q1.Col2 = 7, 8 // junk columns COUNT never reads
	q2 := countAt(1, 2)
	a1, err := pool.Answer(q1)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := pool.Answer(q2)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Value != a2.Value {
		t.Fatalf("equivalent queries answered differently: %v vs %v", a1.Value, a2.Value)
	}
	snap := pool.Recorder().Snapshot()
	if snap.CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1 (equivalent query must reuse the entry)", snap.CacheHits)
	}
	if snap.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", snap.Fallbacks)
	}
}
