package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/workload"
)

func reqFromQuery(t *testing.T, q query.Query, tenant string) []byte {
	t.Helper()
	var agg string
	switch q.Aggregate {
	case query.Count:
		agg = "count"
	case query.Sum:
		agg = "sum"
	case query.Avg:
		agg = "avg"
	case query.Var:
		agg = "var"
	case query.Corr:
		agg = "corr"
	case query.RegSlope:
		agg = "slope"
	default:
		t.Fatalf("unmapped aggregate %v", q.Aggregate)
	}
	req := QueryRequest{
		Tenant: tenant,
		Agg:    agg,
		Col:    q.Col,
		Col2:   q.Col2,
	}
	if q.Select.IsRadius() {
		req.Center, req.Radius = q.Select.Center, q.Select.Radius
	} else {
		req.Los, req.His = q.Select.Los, q.Select.His
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postQuery(t *testing.T, url string, body []byte) (QueryResponse, int) {
	t.Helper()
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out QueryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp.StatusCode
}

// TestServerEndToEndMatchesSingleThreaded is the acceptance check: the
// HTTP serving path must return bit-identical results to driving an
// identically-built agent directly on one goroutine.
func TestServerEndToEndMatchesSingleThreaded(t *testing.T) {
	// Two agents built and trained from identical seeds are identical.
	served, _ := newTrainedAgent(t, 4_000, 200, 21, 22)
	direct, _ := newTrainedAgent(t, 4_000, 200, 21, 22)

	pool, err := NewPool([]*core.Agent{served}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(pool, SchedulerConfig{Workers: 4})
	defer sched.Close()
	ts := httptest.NewServer(NewServer(sched, nil))
	defer ts.Close()

	qs := workload.NewQueryStream(workload.NewRNG(77), workload.DefaultRegions(2), query.Count)
	for i := 0; i < 150; i++ {
		q := qs.Next()
		got, code := postQuery(t, ts.URL, reqFromQuery(t, q, "e2e"))
		if code != http.StatusOK {
			t.Fatalf("query %d: HTTP %d", i, code)
		}
		want, err := direct.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Value != want.Value || got.Predicted != want.Predicted ||
			got.EstError != want.EstError || got.Quantum != want.Quantum {
			t.Fatalf("query %d diverged:\n  http   = %+v\n  direct = %+v", i, got, want)
		}
	}
	if pool.Stats().Queries != direct.Stats().Queries {
		t.Errorf("served agent answered %d queries, direct %d",
			pool.Stats().Queries, direct.Stats().Queries)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	agent, _ := newTrainedAgent(t, 4_000, 200, 21, 22)
	pool, err := NewPool([]*core.Agent{agent}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(pool, SchedulerConfig{Workers: 8, QueueDepth: 256, TenantInflight: -1})
	defer sched.Close()
	ts := httptest.NewServer(NewServer(sched, nil))
	defer ts.Close()

	const clients = 32
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			cs := workload.NewQueryStream(workload.NewRNG(700+int64(c)), workload.DefaultRegions(2), query.Count)
			for i := 0; i < 10; i++ {
				_, code := postQuery(t, ts.URL, reqFromQuery(t, cs.Next(), "load"))
				if code != http.StatusOK {
					t.Errorf("client %d: HTTP %d", c, code)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	// Stats endpoint reflects the load.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Serving.Queries != clients*10 {
		t.Errorf("stats served %d queries, want %d", stats.Serving.Queries, clients*10)
	}
	if stats.Serving.QPS <= 0 || stats.Serving.P50 <= 0 {
		t.Errorf("missing throughput metrics: %+v", stats.Serving)
	}
}

func TestServerErrorMapping(t *testing.T) {
	agent, _ := newTrainedAgent(t, 2_000, 100, 21, 22)
	pool, err := NewPool([]*core.Agent{agent}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(pool, SchedulerConfig{Workers: 2})
	defer sched.Close()
	ts := httptest.NewServer(NewServer(sched, nil))
	defer ts.Close()

	for name, body := range map[string]string{
		"bad json":     `{"agg":`,
		"unknown agg":  `{"agg":"median","los":[0,0],"his":[1,1]}`,
		"lo above hi":  `{"agg":"count","los":[2,2],"his":[1,1]}`,
		"no selection": `{"agg":"count"}`,
	} {
		_, code := postQuery(t, ts.URL, []byte(body))
		if code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, code)
		}
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: HTTP %d", resp.StatusCode)
	}

	// Explanations are disabled when no engine is wired.
	resp2, err := http.Post(ts.URL+"/v1/explain", "application/json",
		bytes.NewReader([]byte(`{"agg":"count","los":[0,0],"his":[1,1]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotImplemented {
		t.Errorf("explain without engine: HTTP %d, want 501", resp2.StatusCode)
	}
}

// TestServerGracefulShutdown verifies the drain path: cancelling the run
// context must let an in-flight request (blocked inside the oracle)
// finish with 200 instead of killing it, then close the scheduler.
func TestServerGracefulShutdown(t *testing.T) {
	agent, oracle := blockedAgent(t)
	pool, err := NewPool([]*core.Agent{agent}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(pool, SchedulerConfig{Workers: 2})
	srv := NewServer(sched, nil)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- srv.ServeListener(ctx, l, 5*time.Second) }()
	url := "http://" + l.Addr().String()

	// Park one request inside the (blocked) oracle fallback.
	reqDone := make(chan int, 1)
	go func() {
		_, code := postQuery(t, url, reqFromQuery(t, countAt(1, 1), "drain"))
		reqDone <- code
	}()
	<-oracle.started

	// Shut down while the request is in flight, then let it finish.
	cancel()
	close(oracle.release)
	if code := <-reqDone; code != http.StatusOK {
		t.Errorf("in-flight request during shutdown: HTTP %d, want 200", code)
	}
	if err := <-runDone; err != nil {
		t.Errorf("graceful shutdown returned %v, want nil", err)
	}
	// The scheduler must be closed once the server has drained.
	if _, err := sched.Answer("drain", countAt(2, 2)); err != ErrClosed {
		t.Errorf("after shutdown: err = %v, want ErrClosed", err)
	}
}

func TestServerMetricsEndpoint(t *testing.T) {
	served, _ := newTrainedAgent(t, 4_000, 200, 21, 22)
	pool, err := NewPool([]*core.Agent{served}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(pool, SchedulerConfig{Workers: 4})
	defer sched.Close()
	ts := httptest.NewServer(NewServer(sched, nil))
	defer ts.Close()

	// Serve some traffic so the counters move.
	qs := workload.NewQueryStream(workload.NewRNG(88), workload.DefaultRegions(2), query.Count)
	for i := 0; i < 20; i++ {
		if _, code := postQuery(t, ts.URL, reqFromQuery(t, qs.Next(), "m")); code != http.StatusOK {
			t.Fatalf("query %d failed", i)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want Prometheus text format", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"sea_queries_total 20",
		"# TYPE sea_queries_total counter",
		"sea_ingest_rows_total",
		"sea_drift_invalidations_total",
		"sea_latency_seconds{quantile=\"0.99\"}",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}
