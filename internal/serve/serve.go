// Package serve is the concurrent query-serving layer: it multiplexes
// many clients over a pool of SEA agents (internal/core) so the
// reproduction can serve analyst traffic instead of single-goroutine
// simulations.
//
// The layer has three pieces, stacked:
//
//   - Pool fans queries out over one or more thread-safe agents with
//     affinity routing (identical queries always hit the same agent) and
//     single-flight deduplication: when several clients ask the same
//     question and the answer needs the expensive exact-oracle fallback,
//     only one fallback runs and everyone shares its result. Cheap
//     model predictions bypass the dedup entirely via core.Agent's
//     read-mostly TryPredict fast path.
//
//   - Scheduler bounds concurrency: a fixed worker pool drains a bounded
//     queue, and per-tenant admission control caps how much of the
//     system one tenant can occupy. Overload is rejected immediately
//     (ErrQueueFull, ErrTenantThrottled) instead of queueing without
//     bound.
//
//   - Server exposes the agent API (count/sum/avg/var/corr/slope,
//     explanations, stats) over HTTP/JSON; cmd/seaserve is the binary.
//
// Throughput and latency are instrumented through
// metrics.ServeRecorder: QPS, p50/p90/p99 latency, fallback and
// rejection rates, all surfaced on the stats endpoint.
package serve

import (
	"errors"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/query"
)

// ErrNoAgents is returned when a Pool is built without agents.
var ErrNoAgents = errors.New("serve: pool needs at least one agent")

// Key canonicalises a query for routing and single-flight
// deduplication: two queries with the same key are the same question.
func Key(q query.Query) string {
	var b strings.Builder
	b.Grow(64)
	b.WriteString(q.Aggregate.String())
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(q.Col))
	b.WriteByte(',')
	b.WriteString(strconv.Itoa(q.Col2))
	b.WriteByte('|')
	writeFloats := func(vs []float64) {
		for _, v := range vs {
			b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			b.WriteByte(',')
		}
	}
	if q.Select.IsRadius() {
		b.WriteByte('r')
		writeFloats(q.Select.Center)
		b.WriteString(strconv.FormatFloat(q.Select.Radius, 'g', -1, 64))
	} else {
		b.WriteByte('b')
		writeFloats(q.Select.Los)
		b.WriteByte(';')
		writeFloats(q.Select.His)
	}
	return b.String()
}

// Pool answers queries over a set of thread-safe agents. Routing is by
// query-key hash, so identical queries always land on the same agent:
// that keeps each agent's learned state consistent for its slice of the
// query space and makes single-flight dedup exact.
type Pool struct {
	agents []*core.Agent
	sf     group
	rec    *metrics.ServeRecorder
}

// NewPool builds a pool over the given agents, instrumented through rec
// (which may be shared with a Scheduler/Server; nil allocates one).
func NewPool(agents []*core.Agent, rec *metrics.ServeRecorder) (*Pool, error) {
	if len(agents) == 0 {
		return nil, ErrNoAgents
	}
	if rec == nil {
		rec = metrics.NewServeRecorder(0)
	}
	return &Pool{agents: agents, rec: rec}, nil
}

// Recorder returns the pool's serving-metrics recorder.
func (p *Pool) Recorder() *metrics.ServeRecorder { return p.rec }

// Agents returns the pooled agents (for stats aggregation).
func (p *Pool) Agents() []*core.Agent { return p.agents }

// route picks the agent responsible for key.
func (p *Pool) route(key string) *core.Agent {
	return p.agents[p.RouteIndex(key)]
}

// RouteIndex returns the index of the agent Answer would route key to
// (maintenance layers use it to attribute recorded queries and drift
// rebuilds to the right pooled agent).
func (p *Pool) RouteIndex(key string) int {
	if len(p.agents) == 1 {
		return 0
	}
	return int(fnv32(key) % uint32(len(p.agents)))
}

// Answer serves one query: the model fast path when possible, otherwise
// a single-flight deduplicated oracle fallback.
func (p *Pool) Answer(q query.Query) (core.Answer, error) {
	start := time.Now()
	key := Key(q)
	ag := p.route(key)
	// An identical fallback already in flight? Park behind it without
	// touching the agent at all — its write lock is held for the
	// duration of the oracle call, so probing the agent here would
	// serialise behind the expensive path instead of sharing it.
	if c := p.sf.join(key); c != nil {
		c.wg.Wait()
		if c.err != nil {
			p.rec.Error()
			return core.Answer{}, c.err
		}
		p.rec.Dedup(time.Since(start))
		return c.ans, nil
	}
	if ans, ok := ag.TryPredict(q); ok {
		p.rec.Observe(time.Since(start), true)
		return ans, nil
	}
	// Expensive path: identical in-flight fallbacks collapse to one
	// oracle execution whose result every waiter shares.
	ans, shared, err := p.sf.do(key, func() (core.Answer, error) {
		return ag.Answer(q)
	})
	if err != nil {
		p.rec.Error()
		return core.Answer{}, err
	}
	if shared {
		p.rec.Dedup(time.Since(start))
	} else {
		p.rec.Observe(time.Since(start), ans.Predicted)
	}
	return ans, nil
}

// Stats sums the lifetime counters across the pooled agents.
func (p *Pool) Stats() core.Stats {
	var out core.Stats
	for _, ag := range p.agents {
		s := ag.Stats()
		out.Queries += s.Queries
		out.Predicted += s.Predicted
		out.Exact += s.Exact
		out.Quanta += s.Quanta
		out.TotalCost = out.TotalCost.Add(s.TotalCost)
		out.OracleCost = out.OracleCost.Add(s.OracleCost)
	}
	return out
}

// fnv32 is the 32-bit FNV-1a hash (inline to avoid an import for four
// lines).
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
