// Package serve is the concurrent query-serving layer: it multiplexes
// many clients over a pool of SEA agents (internal/core) so the
// reproduction can serve analyst traffic instead of single-goroutine
// simulations.
//
// The layer has three pieces, stacked:
//
//   - Pool fans queries out over one or more thread-safe agents with
//     affinity routing (identical queries always hit the same agent) and
//     single-flight deduplication: when several clients ask the same
//     question and the answer needs the expensive exact-oracle fallback,
//     only one fallback runs and everyone shares its result. Cheap
//     model predictions bypass the dedup entirely via core.Agent's
//     read-mostly TryPredict fast path.
//
//   - Scheduler bounds concurrency: a fixed worker pool drains a bounded
//     queue, and per-tenant admission control caps how much of the
//     system one tenant can occupy. Overload is rejected immediately
//     (ErrQueueFull, ErrTenantThrottled) instead of queueing without
//     bound.
//
//   - Server exposes the agent API (count/sum/avg/var/corr/slope,
//     explanations, stats) over HTTP/JSON; cmd/seaserve is the binary.
//
// Throughput and latency are instrumented through
// metrics.ServeRecorder: QPS, p50/p90/p99 latency, fallback and
// rejection rates, all surfaced on the stats endpoint.
package serve

import (
	"errors"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/trace"
)

// ErrNoAgents is returned when a Pool is built without agents.
var ErrNoAgents = errors.New("serve: pool needs at least one agent")

// Key canonicalises a query for routing, caching and single-flight
// deduplication: two queries with the same key are the same question.
// Columns the aggregate never reads are canonicalised away — COUNT uses
// neither Col nor Col2, SUM/AVG/VAR ignore Col2 — so equivalent queries
// share one cache/single-flight/routing identity instead of splitting
// on junk column values.
func Key(q query.Query) string {
	return string(AppendKey(nil, q))
}

// AppendKey appends q's canonical key bytes to dst and returns it —
// the allocation-free variant the Pool hot path uses with a pooled
// scratch buffer. Key(q) == string(AppendKey(nil, q)) always.
func AppendKey(dst []byte, q query.Query) []byte {
	dst = append(dst, q.Aggregate.String()...)
	dst = append(dst, '|')
	col, col2 := keyCols(q)
	dst = strconv.AppendInt(dst, int64(col), 10)
	dst = append(dst, ',')
	dst = strconv.AppendInt(dst, int64(col2), 10)
	dst = append(dst, '|')
	if q.Select.IsRadius() {
		dst = append(dst, 'r')
		for _, v := range q.Select.Center {
			dst = appendFloatKey(dst, v)
			dst = append(dst, ',')
		}
		dst = appendFloatKey(dst, q.Select.Radius)
	} else {
		dst = append(dst, 'b')
		for _, v := range q.Select.Los {
			dst = appendFloatKey(dst, v)
			dst = append(dst, ',')
		}
		dst = append(dst, ';')
		for _, v := range q.Select.His {
			dst = appendFloatKey(dst, v)
			dst = append(dst, ',')
		}
	}
	return dst
}

// appendFloatKey encodes one selection coordinate as its raw IEEE-754
// bit pattern in hex. The key only needs injectivity, not readability,
// and bit encoding costs a fraction of shortest-representation float
// formatting while inducing the same equality classes (shortest-repr
// formatting round-trips bits exactly).
func appendFloatKey(dst []byte, v float64) []byte {
	return strconv.AppendUint(dst, math.Float64bits(v), 16)
}

// keyCols returns the aggregate's effective column identity, zeroing
// the columns it never reads (mirrors core's model-key normalisation).
func keyCols(q query.Query) (int, int) {
	switch q.Aggregate {
	case query.Count:
		return 0, 0
	case query.Sum, query.Avg, query.Var:
		return q.Col, 0
	default:
		return q.Col, q.Col2
	}
}

// Pool answers queries over a set of thread-safe agents. Routing is by
// query-key hash, so identical queries always land on the same agent:
// that keeps each agent's learned state consistent for its slice of the
// query space and makes single-flight dedup exact.
type Pool struct {
	agents []*core.Agent
	sf     group
	rec    *metrics.ServeRecorder
	// cache, when enabled, is the first hot-path tier: answers keyed by
	// canonical query key and stamped with the routed agent's data
	// version are returned without touching the agent at all.
	cache *AnswerCache
	// verFn overrides the per-agent cache-version source. Distributed
	// nodes install one that also folds in cluster-visible write
	// signals (forwarded ingest) the agent's own oracle version cannot
	// see.
	verFn func() int64
	// keys pools the canonical-key scratch buffers so the steady-state
	// cache-hit and prediction paths build keys without allocating.
	keys sync.Pool

	// tracer, when attached, samples query traces and keeps the
	// slow-query log. Nil (and disabled) cost the hot path only nil
	// checks and one atomic load.
	tracer *trace.Tracer

	// log, when attached, receives trace-correlated structured lines
	// for slow queries. Nil is silent; the hot path only consults it
	// behind the slow-query threshold check, so normal-speed queries
	// never touch it.
	log *obs.Logger

	// flight, when attached, receives per-path exemplars (the slowest
	// traced query per sampling window) from finishQuery. Consulted
	// only on the traced path, so untraced queries never touch it.
	flight *flight.Recorder

	// Shadow-audit sampler: one in auditEvery model-served answers is
	// re-evaluated exactly in the background and its realised error
	// recorded. auditSem bounds concurrent probes (overflow samples are
	// dropped, not queued — the audit must never add serving pressure).
	auditEvery atomic.Int64
	auditCtr   atomic.Int64
	auditSem   chan struct{}
	auditWG    sync.WaitGroup
}

// keyBuf is the pooled canonical-key scratch buffer.
type keyBuf struct{ b []byte }

func (p *Pool) getKeyBuf() *keyBuf {
	if kb, ok := p.keys.Get().(*keyBuf); ok {
		return kb
	}
	return &keyBuf{b: make([]byte, 0, 128)}
}

// NewPool builds a pool over the given agents, instrumented through rec
// (which may be shared with a Scheduler/Server; nil allocates one).
func NewPool(agents []*core.Agent, rec *metrics.ServeRecorder) (*Pool, error) {
	if len(agents) == 0 {
		return nil, ErrNoAgents
	}
	if rec == nil {
		rec = metrics.NewServeRecorder(0)
	}
	p := &Pool{agents: agents, rec: rec}
	// Continuous accuracy audit, free half: every exact fallback whose
	// model had enough support to answer records predicted-vs-truth
	// error (the truth is already computed, so this costs nothing
	// extra). Keyed by pooled agent index and aggregate.
	for i, ag := range agents {
		idx := i
		ag.SetAuditor(func(agg query.Agg, pred, truth float64) {
			rec.Audit().Record(idx, agg.String(), "fallback", core.NormError(agg, pred, truth))
		})
	}
	return p, nil
}

// Recorder returns the pool's serving-metrics recorder.
func (p *Pool) Recorder() *metrics.ServeRecorder { return p.rec }

// EnableTracing attaches a tracer: the pool samples per its rate,
// callers may force traces (?trace=1), and queries over the tracer's
// slow threshold land in its slow-query log. Attach at wiring time.
func (p *Pool) EnableTracing(t *trace.Tracer) { p.tracer = t }

// SetLogger attaches a structured logger for slow-query lines (nil
// detaches). Attach at wiring time.
func (p *Pool) SetLogger(l *obs.Logger) { p.log = l }

// EnableFlight attaches (or with nil detaches) a flight recorder to
// the per-query exemplar hook. Wire before serving traffic, like
// EnableTracing.
func (p *Pool) EnableFlight(fr *flight.Recorder) { p.flight = fr }

// Tracer returns the attached tracer (nil when tracing is off).
func (p *Pool) Tracer() *trace.Tracer { return p.tracer }

// EnableShadowAudit turns on the shadow-audit sampler: one in every
// model-served answers is re-evaluated on the exact oracle in the
// background (bounded by maxInflight concurrent probes; excess samples
// are dropped) and its realised relative error recorded under source
// "shadow". every <= 0 disables.
func (p *Pool) EnableShadowAudit(every int64, maxInflight int) {
	if every <= 0 {
		p.auditEvery.Store(0)
		return
	}
	if maxInflight <= 0 {
		maxInflight = 4
	}
	if p.auditSem == nil {
		p.auditSem = make(chan struct{}, maxInflight)
	}
	p.auditEvery.Store(every)
}

// DrainAudits blocks until every in-flight shadow probe has finished
// (experiments use it before reading the audit histograms).
func (p *Pool) DrainAudits() { p.auditWG.Wait() }

// maybeShadowAudit samples the model-served answer stream: when the
// counter fires, ground truth for q is computed on a background
// goroutine via the routed agent's ExactProbe and the realised error
// recorded. Disabled cost: one atomic load per model answer.
func (p *Pool) maybeShadowAudit(agIdx int, q query.Query, ans core.Answer) {
	every := p.auditEvery.Load()
	if every <= 0 {
		return
	}
	if p.auditCtr.Add(1)%every != 0 {
		return
	}
	select {
	case p.auditSem <- struct{}{}:
	default:
		return
	}
	p.auditWG.Add(1)
	go func() {
		defer func() { <-p.auditSem; p.auditWG.Done() }()
		truth, err := p.agents[agIdx].ExactProbe(q)
		if err != nil {
			return
		}
		p.rec.Audit().Record(agIdx, q.Aggregate.String(), "shadow",
			core.NormError(q.Aggregate, ans.Value, truth))
	}()
}

// pathOf classifies which tier produced ans (the cache tier is
// classified by its caller — a hit never reaches the agent).
func pathOf(ans core.Answer) metrics.Path {
	if ans.Predicted {
		return metrics.PathModel
	}
	if ans.Cost.NodesTouched > 1 {
		return metrics.PathExactScatter
	}
	return metrics.PathExactLocal
}

// EnableCache attaches a bounded, sharded LRU answer cache of roughly
// capacity entries to the pool (capacity <= 0 detaches it). Wire it up
// before serving traffic; it is not safe to toggle concurrently with
// Answer.
func (p *Pool) EnableCache(capacity int) {
	if capacity <= 0 {
		p.cache = nil
		return
	}
	p.cache = NewAnswerCache(capacity)
}

// Cache returns the pool's answer cache (nil when disabled).
func (p *Pool) Cache() *AnswerCache { return p.cache }

// SetCacheVersion overrides the cache's version source (nil restores
// the default, the routed agent's CacheVersion). The function must be
// cheap, lock-light and monotone: every data change the caller can
// observe must change its value. Configure before serving.
func (p *Pool) SetCacheVersion(fn func() int64) { p.verFn = fn }

// cacheVersion reads the freshness stamp for entries routed to ag.
func (p *Pool) cacheVersion(ag *core.Agent) int64 {
	if p.verFn != nil {
		return p.verFn()
	}
	return ag.CacheVersion()
}

// FlushCache drops every cached answer. Maintenance paths that change
// predictions without changing the data version (background model
// rebuilds, explicit invalidations) call this.
func (p *Pool) FlushCache() {
	if p.cache != nil {
		p.cache.Flush()
	}
}

// Agents returns the pooled agents (for stats aggregation).
func (p *Pool) Agents() []*core.Agent { return p.agents }

// route picks the agent responsible for key.
func (p *Pool) route(key string) *core.Agent {
	return p.agents[p.RouteIndex(key)]
}

// RouteIndex returns the index of the agent Answer would route key to
// (maintenance layers use it to attribute recorded queries and drift
// rebuilds to the right pooled agent).
func (p *Pool) RouteIndex(key string) int {
	return p.routeHash(fnv32(key))
}

// routeHash is RouteIndex over a precomputed key hash.
func (p *Pool) routeHash(h uint32) int {
	if len(p.agents) == 1 {
		return 0
	}
	return int(h % uint32(len(p.agents)))
}

// Answer serves one query through the tiered hot path: a versioned
// cache hit (cheapest — no agent touched), then the read-locked model
// fast path, then a single-flight deduplicated oracle fallback. The
// cache-hit and steady-state prediction tiers run without heap
// allocations. When a tracer is attached, Answer also makes the
// per-query sampling decision.
func (p *Pool) Answer(q query.Query) (core.Answer, error) {
	return p.AnswerTraced(q, p.tracer.Sample("query"))
}

// AnswerTraced is Answer under a caller-provided trace (nil = untraced;
// ?trace=1 front-ends pass a forced trace). The trace is finished —
// root span ended, published in the tracer's ring — before returning,
// but stays readable for inline serialisation.
func (p *Pool) AnswerTraced(q query.Query, tr *trace.Trace) (core.Answer, error) {
	start := time.Now()
	sp := tr.Root()
	kb := p.getKeyBuf()
	kb.b = AppendKey(kb.b[:0], q)
	h := fnv32Bytes(kb.b)
	agIdx := p.routeHash(h)
	ag := p.agents[agIdx]
	sp.SetAttrInt("agent", int64(agIdx))
	// ver is read before the answer is computed, and stamps whatever
	// gets cached below: a write racing the computation can only make
	// the entry expire early, never serve past its data version.
	var ver int64
	if p.cache != nil {
		ver = p.cacheVersion(ag)
		csp := sp.Child("cache_lookup")
		ans, ok := p.cache.lookup(kb.b, h, ver)
		csp.End()
		if ok {
			csp.SetAttr("hit", "true")
			p.keys.Put(kb)
			lat := time.Since(start)
			p.rec.ObservePath(lat, metrics.PathCache)
			p.finishQuery(tr, q, metrics.PathCache, lat)
			return ans, nil
		}
		csp.SetAttr("hit", "false")
	}
	// An identical fallback already in flight? Park behind it without
	// touching the agent at all: sharing the in-flight oracle execution
	// beats re-running it, however cheap the probe would be.
	if c := p.sf.joinBytes(kb.b); c != nil {
		p.keys.Put(kb)
		ssp := sp.Child("singleflight_wait")
		c.wg.Wait()
		ssp.End()
		if c.err != nil {
			p.rec.Error()
			p.finishQuery(tr, q, metrics.PathExactLocal, time.Since(start))
			return core.Answer{}, c.err
		}
		lat := time.Since(start)
		path := pathOf(c.ans)
		p.rec.DedupPath(lat, path)
		sp.SetAttr("deduped", "true")
		p.finishQuery(tr, q, path, lat)
		return c.ans, nil
	}
	psp := sp.Child("try_predict")
	ans, ok := ag.TryPredict(q)
	psp.End()
	if ok {
		if p.cache != nil {
			p.cache.put(string(kb.b), h, ver, ans)
		}
		p.keys.Put(kb)
		lat := time.Since(start)
		p.rec.ObservePath(lat, metrics.PathModel)
		p.finishQuery(tr, q, metrics.PathModel, lat)
		p.maybeShadowAudit(agIdx, q, ans)
		return ans, nil
	}
	// Expensive path: identical in-flight fallbacks collapse to one
	// oracle execution whose result every waiter shares.
	key := string(kb.b)
	p.keys.Put(kb)
	fsp := sp.Child("agent_answer")
	ans, shared, err := p.sf.do(key, func() (core.Answer, error) {
		return ag.AnswerSpan(q, fsp)
	})
	fsp.End()
	if err != nil {
		p.rec.Error()
		p.finishQuery(tr, q, metrics.PathExactLocal, time.Since(start))
		return core.Answer{}, err
	}
	lat := time.Since(start)
	path := pathOf(ans)
	if ans.Degraded {
		// A degraded answer reflects which holders were reachable this
		// instant, not the data: caching it would keep serving the
		// outage after the cluster heals.
		p.rec.DegradedAnswer()
	}
	if shared {
		p.rec.DedupPath(lat, path)
		sp.SetAttr("deduped", "true")
	} else {
		if p.cache != nil && !ans.Degraded {
			p.cache.put(key, h, ver, ans)
		}
		p.rec.ObservePath(lat, path)
		if path == metrics.PathModel {
			p.maybeShadowAudit(agIdx, q, ans)
		}
	}
	p.finishQuery(tr, q, path, lat)
	return ans, nil
}

// finishQuery closes out per-query observability: the trace (path
// attribute, root-span end, ring publication) and the slow-query log.
// Untraced fast-path cost: one nil check plus one atomic threshold
// load.
func (p *Pool) finishQuery(tr *trace.Trace, q query.Query, path metrics.Path, lat time.Duration) {
	if tr != nil {
		tr.Root().SetAttr("path", path.String())
		p.tracer.Finish(tr)
		// Exemplar linkage: the flight recorder keeps the slowest traced
		// query per path per sampling window, so a latency spike in
		// /v1/history points straight at /v1/debug/trace/<id>.
		p.flight.NoteTraced(path, lat, tr.ID())
	}
	if p.tracer.Slow(lat) {
		p.tracer.NoteSlow(tr.ID(), Key(q), path.String(), lat)
		// Allow gates BEFORE the arguments are evaluated: a rate-limited
		// slow-query storm costs one atomic load per query, not key
		// formatting and boxing for a line that would be dropped anyway.
		if p.log.Allow(obs.LevelWarn) {
			p.log.Warn("slow query",
				"trace_id", tr.ID(), "key", Key(q), "path", path.String(), "lat", lat)
		}
	}
}

// Stats sums the lifetime counters across the pooled agents.
func (p *Pool) Stats() core.Stats {
	var out core.Stats
	for _, ag := range p.agents {
		s := ag.Stats()
		out.Queries += s.Queries
		out.Predicted += s.Predicted
		out.Exact += s.Exact
		out.Quanta += s.Quanta
		out.TotalCost = out.TotalCost.Add(s.TotalCost)
		out.OracleCost = out.OracleCost.Add(s.OracleCost)
	}
	return out
}

// fnv32 is the 32-bit FNV-1a hash (inline to avoid an import for four
// lines). fnv32(s) == fnv32Bytes([]byte(s)), so routing is identical
// whether the key was built as a string or in a scratch buffer.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// fnv32Bytes is fnv32 over a byte slice.
func fnv32Bytes(b []byte) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(b); i++ {
		h ^= uint32(b[i])
		h *= 16777619
	}
	return h
}
