package serve

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/workload"
)

// newTrainedAgent builds an agent over a small simulated BDAS with the
// standard 3-column clustered data and trains it past its prefix. Equal
// (dataSeed, streamSeed, nRows, training) produce bit-identical agents.
func newTrainedAgent(t *testing.T, nRows, training int, dataSeed, streamSeed int64) (*core.Agent, *exec.Executor) {
	t.Helper()
	cl := cluster.New(4, cluster.DefaultConfig())
	eng := engine.New(cl)
	tbl, err := storage.NewTable(cl, "data", []string{"x", "y", "z"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.NewRNG(dataSeed)
	rows := workload.GaussianMixture(rng, nRows, 3, workload.DefaultMixture(3), 0)
	workload.CorrelatedColumns(rng, rows, 0, 2, 2, 5, 1)
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	ex, err := exec.New(eng, tbl)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(2)
	cfg.TrainingQueries = training
	agent, err := core.NewAgent(exec.MapReduceOracle{Ex: ex}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	qs := workload.NewQueryStream(workload.NewRNG(streamSeed), workload.DefaultRegions(2), query.Count)
	for i := 0; i < training+training/2; i++ {
		if _, err := agent.Answer(qs.Next()); err != nil {
			t.Fatal(err)
		}
	}
	return agent, ex
}

// blockingOracle blocks every exact answer until released, counting
// calls — the deterministic stand-in for an expensive BDAS fallback.
type blockingOracle struct {
	mu      sync.Mutex
	n       int
	started chan struct{}
	release chan struct{}
}

func newBlockingOracle() *blockingOracle {
	return &blockingOracle{
		started: make(chan struct{}, 1024),
		release: make(chan struct{}),
	}
}

func (o *blockingOracle) Answer(q query.Query) (query.Result, metrics.Cost, error) {
	o.mu.Lock()
	o.n++
	o.mu.Unlock()
	o.started <- struct{}{}
	<-o.release
	return query.Result{Value: 42, Support: 1}, metrics.Cost{RowsRead: 1}, nil
}

func (o *blockingOracle) DataVersion() int64 { return 1 }

func (o *blockingOracle) calls() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.n
}

func blockedAgent(t *testing.T) (*core.Agent, *blockingOracle) {
	t.Helper()
	o := newBlockingOracle()
	agent, err := core.NewAgent(o, core.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	return agent, o
}

func countAt(x, y float64) query.Query {
	return query.Query{
		Select:    query.Selection{Center: []float64{x, y}, Radius: 5},
		Aggregate: query.Count,
	}
}

func TestKeyCanonical(t *testing.T) {
	a := countAt(1, 2)
	b := countAt(1, 2)
	if Key(a) != Key(b) {
		t.Error("identical queries got different keys")
	}
	if Key(a) == Key(countAt(1, 3)) {
		t.Error("different queries share a key")
	}
	box := query.Query{Select: query.Selection{Los: []float64{1, 2}, His: []float64{3, 4}}, Aggregate: query.Count}
	if Key(a) == Key(box) {
		t.Error("radius and box selections share a key")
	}
	avg := query.Query{Select: a.Select, Aggregate: query.Avg, Col: 2}
	if Key(a) == Key(avg) {
		t.Error("different aggregates share a key")
	}
}

func TestSchedulerQueueFullAndTenantThrottle(t *testing.T) {
	agent, oracle := blockedAgent(t)
	pool, err := NewPool([]*core.Agent{agent}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(pool, SchedulerConfig{Workers: 1, QueueDepth: 1, TenantInflight: 2})

	results := make(chan error, 4)
	submit := func(tenant string, q query.Query) {
		go func() {
			_, err := sched.Answer(tenant, q)
			results <- err
		}()
	}

	// Job 1 reaches the single worker and blocks in the oracle.
	submit("a", countAt(1, 1))
	<-oracle.started

	// Job 2 occupies the queue slot.
	submit("a", countAt(2, 2))
	waitFor(t, func() bool { return sched.TenantInflight("a") == 2 })

	// Tenant a is now at its in-flight cap: reject immediately.
	if _, err := sched.Answer("a", countAt(3, 3)); err != ErrTenantThrottled {
		t.Errorf("tenant over cap: err = %v, want ErrTenantThrottled", err)
	}
	// Another tenant is admitted past the cap check but the queue is
	// full: reject immediately.
	if _, err := sched.Answer("b", countAt(4, 4)); err != ErrQueueFull {
		t.Errorf("queue full: err = %v, want ErrQueueFull", err)
	}

	close(oracle.release)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Errorf("blocked job failed: %v", err)
		}
	}
	sched.Close()
	if _, err := sched.Answer("a", countAt(5, 5)); err != ErrClosed {
		t.Errorf("after Close: err = %v, want ErrClosed", err)
	}

	snap := pool.Recorder().Snapshot()
	if snap.Rejected != 2 {
		t.Errorf("rejected = %d, want 2", snap.Rejected)
	}
}

func TestPoolDedupsIdenticalInflightFallbacks(t *testing.T) {
	agent, oracle := blockedAgent(t)
	pool, err := NewPool([]*core.Agent{agent}, nil)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 10
	q := countAt(7, 7)
	var wg sync.WaitGroup
	wg.Add(clients)
	values := make([]float64, clients)
	serve := func(c int) {
		defer wg.Done()
		ans, err := pool.Answer(q)
		if err != nil {
			t.Errorf("client %d: %v", c, err)
			return
		}
		values[c] = ans.Value
	}
	// Leader first: once it blocks inside the oracle its flight is
	// registered, so every follower joins it instead of probing the
	// (write-locked) agent.
	go serve(0)
	<-oracle.started
	for c := 1; c < clients; c++ {
		go serve(c)
	}
	waitFor(t, func() bool { return pool.sf.waiting(Key(q)) == clients-1 })
	close(oracle.release)
	wg.Wait()

	if got := oracle.calls(); got != 1 {
		t.Errorf("oracle calls = %d, want 1 (single-flight)", got)
	}
	snap := pool.Recorder().Snapshot()
	if snap.Deduped != clients-1 {
		t.Errorf("deduped = %d, want %d", snap.Deduped, clients-1)
	}
	// Only the leader's oracle execution counts as a fallback; waiters
	// count toward Queries via the dedup category.
	if snap.Fallbacks != 1 || snap.Queries != clients {
		t.Errorf("fallbacks = %d queries = %d, want 1 and %d", snap.Fallbacks, snap.Queries, clients)
	}
	for c, v := range values {
		if v != 42 {
			t.Errorf("client %d got %v, want shared exact answer 42", c, v)
		}
	}
}

func TestPoolAffinityRouting(t *testing.T) {
	a1, _ := blockedAgent(t)
	a2, _ := blockedAgent(t)
	pool, err := NewPool([]*core.Agent{a1, a2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := countAt(3, 9)
	first := pool.route(Key(q))
	for i := 0; i < 10; i++ {
		if pool.route(Key(q)) != first {
			t.Fatal("identical query routed to different agents")
		}
	}
	// Distinct queries must spread across agents eventually.
	seen := map[*core.Agent]bool{}
	for i := 0; i < 64; i++ {
		seen[pool.route(Key(countAt(float64(i), 0)))] = true
	}
	if len(seen) != 2 {
		t.Errorf("routing used %d of 2 agents", len(seen))
	}
}

// TestConcurrentServing32Clients is the acceptance scenario: >= 32
// concurrent clients hammer one shared trained agent through the
// scheduler, race-free, with every query answered.
func TestConcurrentServing32Clients(t *testing.T) {
	agent, _ := newTrainedAgent(t, 4_000, 200, 21, 22)
	pool, err := NewPool([]*core.Agent{agent}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(pool, SchedulerConfig{Workers: 8, QueueDepth: 128, TenantInflight: -1})
	defer sched.Close()

	const (
		clients   = 32
		perClient = 40
	)
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			cs := workload.NewQueryStream(workload.NewRNG(900+int64(c)), workload.DefaultRegions(2), query.Count)
			for i := 0; i < perClient; i++ {
				ans, err := sched.Answer("tenant", cs.Next())
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				if math.IsNaN(ans.Value) || ans.Value < 0 {
					t.Errorf("client %d: bad COUNT %v", c, ans.Value)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	snap := pool.Recorder().Snapshot()
	if snap.Queries != clients*perClient {
		t.Errorf("served %d queries, want %d", snap.Queries, clients*perClient)
	}
	if snap.Predicted == 0 {
		t.Error("expected model predictions under concurrent serving")
	}
	if snap.P50 <= 0 || snap.P99 < snap.P50 {
		t.Errorf("implausible latency percentiles: p50=%v p99=%v", snap.P50, snap.P99)
	}
	if snap.QPS <= 0 {
		t.Errorf("QPS = %v, want > 0", snap.QPS)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
