package serve

import (
	"errors"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/trace"
)

// Admission-control errors. Callers (and the HTTP layer) treat these as
// retryable overload, not query failures.
var (
	// ErrQueueFull is returned when the shared queue is at capacity.
	ErrQueueFull = errors.New("serve: queue full")
	// ErrTenantThrottled is returned when one tenant already has its
	// maximum number of queries in flight.
	ErrTenantThrottled = errors.New("serve: tenant throttled")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("serve: scheduler closed")
)

// SchedulerConfig sizes the scheduler. Zero values take defaults.
type SchedulerConfig struct {
	// Workers is the number of worker goroutines draining the queue
	// (default 8).
	Workers int
	// QueueDepth bounds the shared pending-job queue (default 256).
	QueueDepth int
	// TenantInflight caps one tenant's queued+running queries; further
	// submissions are rejected with ErrTenantThrottled (default 64,
	// negative = unlimited).
	TenantInflight int
}

func (c SchedulerConfig) withDefaults() SchedulerConfig {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.TenantInflight == 0 {
		c.TenantInflight = 64
	}
	return c
}

type job struct {
	run  func() (any, error)
	done chan jobResult
}

type jobResult struct {
	v   any
	err error
}

// Scheduler runs queries through a Pool under bounded concurrency: a
// fixed worker pool drains a bounded queue, and per-tenant admission
// control keeps any one tenant from occupying the whole system.
// Overload fails fast so callers can shed or retry elsewhere.
type Scheduler struct {
	pool *Pool
	cfg  SchedulerConfig
	jobs chan *job
	wg   sync.WaitGroup

	mu     sync.Mutex
	tenant map[string]int
	closed bool
}

// NewScheduler builds and starts a scheduler over pool.
func NewScheduler(pool *Pool, cfg SchedulerConfig) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{
		pool:   pool,
		cfg:    cfg,
		jobs:   make(chan *job, cfg.QueueDepth),
		tenant: make(map[string]int),
	}
	pool.rec.RegisterGauge("sea_sched_queue_depth",
		"Jobs waiting in the shared scheduler queue.",
		func() float64 { return float64(len(s.jobs)) })
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for j := range s.jobs {
		v, err := j.run()
		j.done <- jobResult{v: v, err: err}
	}
}

// Answer submits q on behalf of tenant and waits for the result.
// It returns ErrTenantThrottled or ErrQueueFull immediately under
// overload.
func (s *Scheduler) Answer(tenant string, q query.Query) (core.Answer, error) {
	v, err := s.Do(tenant, func() (any, error) { return s.pool.Answer(q) })
	if err != nil {
		return core.Answer{}, err
	}
	return v.(core.Answer), nil
}

// Do runs fn on the worker pool under the same admission control as
// Answer: the tenant's in-flight cap and the bounded queue apply, and
// rejections are recorded — globally and per tenant class, so one
// noisy tenant's throttling is visible in the metrics as its own
// series. The serving front-end routes every non-trivial operation
// (queries, explanations) through here so no endpoint can bypass
// overload protection.
func (s *Scheduler) Do(tenant string, fn func() (any, error)) (any, error) {
	start := time.Now()
	class := metrics.ClassOf(tenant)
	j := &job{run: fn, done: make(chan jobResult, 1)}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if s.cfg.TenantInflight > 0 && s.tenant[tenant] >= s.cfg.TenantInflight {
		s.mu.Unlock()
		s.pool.rec.Reject()
		s.pool.rec.TenantReject(class)
		return nil, ErrTenantThrottled
	}
	// The non-blocking enqueue happens under mu so Close cannot close
	// the channel between the closed check and the send.
	select {
	case s.jobs <- j:
	default:
		s.mu.Unlock()
		s.pool.rec.Reject()
		s.pool.rec.TenantReject(class)
		return nil, ErrQueueFull
	}
	s.tenant[tenant]++
	s.mu.Unlock()
	ts := s.pool.rec.Tenant(class)
	ts.Inflight.Add(1)

	r := <-j.done

	ts.Inflight.Add(-1)
	ts.Queries.Add(1)
	ts.Lat.RecordDur(time.Since(start))
	s.mu.Lock()
	if s.tenant[tenant]--; s.tenant[tenant] <= 0 {
		delete(s.tenant, tenant)
	}
	s.mu.Unlock()
	return r.v, r.err
}

// AnswerTraced submits q under a caller-provided (possibly nil) trace:
// the queue wait gets its own span, measured from submission to the
// moment a worker picks the job up, and the pool threads the rest of
// the tree. ?trace=1 front-ends use this with a forced trace.
func (s *Scheduler) AnswerTraced(tenant string, q query.Query, tr *trace.Trace) (core.Answer, error) {
	enq := time.Now()
	v, err := s.Do(tenant, func() (any, error) {
		if tr != nil {
			tr.Root().ChildAt("sched_wait", enq).End()
		}
		return s.pool.AnswerTraced(q, tr)
	})
	if err != nil {
		return core.Answer{}, err
	}
	return v.(core.Answer), nil
}

// TenantInflight reports tenant's current queued+running count.
func (s *Scheduler) TenantInflight(tenant string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenant[tenant]
}

// Pool returns the underlying agent pool.
func (s *Scheduler) Pool() *Pool { return s.pool }

// QueueDepth returns the number of jobs currently queued (admitted but
// not yet picked up by a worker).
func (s *Scheduler) QueueDepth() int { return len(s.jobs) }

// Close drains the queue and stops the workers. In-flight queries
// complete; subsequent Answer calls return ErrClosed.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.jobs)
	s.mu.Unlock()
	s.wg.Wait()
}
