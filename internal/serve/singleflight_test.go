package serve

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/query"
)

// faultyOracle blocks every exact answer until released and can be
// switched between succeeding, failing and panicking — the deterministic
// stand-in for a flaky BDAS fallback.
type faultyOracle struct {
	mu      sync.Mutex
	n       int
	mode    string // "ok" | "fail" | "panic"
	started chan struct{}
	release chan struct{}
}

var errOracleDown = errors.New("oracle down")

func newFaultyOracle(mode string) *faultyOracle {
	return &faultyOracle{
		mode:    mode,
		started: make(chan struct{}, 1024),
		release: make(chan struct{}),
	}
}

func (o *faultyOracle) Answer(q query.Query) (query.Result, metrics.Cost, error) {
	o.mu.Lock()
	o.n++
	mode := o.mode
	o.mu.Unlock()
	o.started <- struct{}{}
	<-o.release
	switch mode {
	case "fail":
		return query.Result{}, metrics.Cost{}, errOracleDown
	case "panic":
		panic("oracle exploded")
	}
	return query.Result{Value: 42, Support: 1}, metrics.Cost{RowsRead: 1}, nil
}

func (o *faultyOracle) DataVersion() int64 { return 1 }

func (o *faultyOracle) calls() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.n
}

func (o *faultyOracle) setMode(m string) {
	o.mu.Lock()
	o.mode = m
	o.mu.Unlock()
}

// TestSingleflightFailurePropagatesToAllWaiters is the regression test
// for error propagation through the single-flight group: when the shared
// in-flight fallback fails, the leader AND every parked caller must each
// receive the error, and the failure must not be cached — the next query
// with the same key starts a fresh oracle call.
func TestSingleflightFailurePropagatesToAllWaiters(t *testing.T) {
	oracle := newFaultyOracle("fail")
	agent, err := core.NewAgent(oracle, core.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool([]*core.Agent{agent}, nil)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 8
	q := countAt(5, 5)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	wg.Add(clients)
	serve := func(c int) {
		defer wg.Done()
		_, errs[c] = pool.Answer(q)
	}
	// Leader first: once it blocks inside the oracle its flight is
	// registered, so every follower parks behind it.
	go serve(0)
	<-oracle.started
	for c := 1; c < clients; c++ {
		go serve(c)
	}
	waitFor(t, func() bool { return pool.sf.waiting(Key(q)) == clients-1 })
	close(oracle.release)
	wg.Wait()

	for c, err := range errs {
		if !errors.Is(err, errOracleDown) {
			t.Errorf("client %d: err = %v, want the shared oracle error", c, err)
		}
	}
	if got := oracle.calls(); got != 1 {
		t.Errorf("oracle calls = %d, want 1 (failure shared, not retried per caller)", got)
	}
	snap := pool.Recorder().Snapshot()
	if snap.Errors != clients {
		t.Errorf("recorded errors = %d, want %d (one per caller)", snap.Errors, clients)
	}

	// The failed flight must be gone: a retry with the same key reaches
	// the (now healthy) oracle instead of a cached error or a dead flight.
	oracle.setMode("ok")
	done := make(chan struct{})
	var ans core.Answer
	var retryErr error
	go func() {
		defer close(done)
		ans, retryErr = pool.Answer(q)
	}()
	<-oracle.started // release is already closed, so the call completes
	<-done
	if retryErr != nil {
		t.Fatalf("retry after failure: %v (error was cached for the key)", retryErr)
	}
	if ans.Value != 42 {
		t.Errorf("retry answer = %v, want 42", ans.Value)
	}
	if got := oracle.calls(); got != 2 {
		t.Errorf("oracle calls after retry = %d, want 2", got)
	}
}

// TestSingleflightPanicDoesNotStrandWaiters covers the deadlock half of
// the bug: a panicking fallback used to leave its flight registered
// forever, so every later identical query parked behind a flight that
// could never complete. Now the panic is converted to ErrFallbackPanic,
// delivered to everyone, and the key is released.
func TestSingleflightPanicDoesNotStrandWaiters(t *testing.T) {
	oracle := newFaultyOracle("panic")
	agent, err := core.NewAgent(oracle, core.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool([]*core.Agent{agent}, nil)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 4
	q := countAt(9, 3)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	wg.Add(clients)
	go func() { defer wg.Done(); _, errs[0] = pool.Answer(q) }()
	<-oracle.started
	for c := 1; c < clients; c++ {
		go func(c int) { defer wg.Done(); _, errs[c] = pool.Answer(q) }(c)
	}
	waitFor(t, func() bool { return pool.sf.waiting(Key(q)) == clients-1 })
	close(oracle.release)
	wg.Wait()

	for c, err := range errs {
		if !errors.Is(err, ErrFallbackPanic) {
			t.Errorf("client %d: err = %v, want ErrFallbackPanic", c, err)
		}
	}

	// Same key again: must start a fresh flight, not hang on the dead one.
	oracle.setMode("ok")
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := pool.Answer(q); err != nil {
			t.Errorf("retry after panic: %v", err)
		}
	}()
	<-oracle.started
	<-done
}
