package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/explain"
	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/trace"
)

// QueryRequest is the wire form of one analytical query. Exactly one
// selection form is used: los/his (hyper-rectangle) or center/radius
// (hyper-sphere).
type QueryRequest struct {
	// Tenant identifies the client for admission control; the X-Tenant
	// header takes precedence. Empty means the shared default tenant.
	Tenant string `json:"tenant,omitempty"`
	// Agg is one of count, sum, avg, var, corr, slope.
	Agg string `json:"agg"`
	// Los/His bound a hyper-rectangle selection.
	Los []float64 `json:"los,omitempty"`
	His []float64 `json:"his,omitempty"`
	// Center/Radius define a hyper-sphere selection.
	Center []float64 `json:"center,omitempty"`
	Radius float64   `json:"radius,omitempty"`
	// Col is the aggregate's primary column, Col2 the second column for
	// corr/slope.
	Col  int `json:"col,omitempty"`
	Col2 int `json:"col2,omitempty"`
	// DeadlineMS is the absolute wall-clock deadline (Unix milliseconds)
	// after which the caller stops waiting; 0 means none. Forwarding and
	// scatter layers propagate it so downstream holders can refuse
	// dead-on-arrival work instead of computing answers nobody reads.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// CostJSON summarises the virtual cost charged for an answer.
type CostJSON struct {
	TimeNS   int64 `json:"time_ns"`
	CPUNS    int64 `json:"cpu_ns"`
	RowsRead int64 `json:"rows_read"`
	BytesLAN int64 `json:"bytes_lan"`
	Nodes    int   `json:"nodes_touched"`
}

// ToCostJSON converts a virtual cost to its wire form (shared with the
// distributed node API in internal/dist).
func ToCostJSON(c metrics.Cost) CostJSON { return costJSON(c) }

func costJSON(c metrics.Cost) CostJSON {
	return CostJSON{
		TimeNS:   c.Time.Nanoseconds(),
		CPUNS:    c.CPUTime.Nanoseconds(),
		RowsRead: c.RowsRead,
		BytesLAN: c.BytesLAN,
		Nodes:    c.NodesTouched,
	}
}

// QueryResponse is the wire form of an answer.
type QueryResponse struct {
	Value     float64 `json:"value"`
	Predicted bool    `json:"predicted"`
	EstError  float64 `json:"est_error"`
	Quantum   int     `json:"quantum"`
	// StaleRows is the freshness signal of a predicted answer: how many
	// ingested rows the answering quantum has absorbed since its models
	// last refreshed (0 = fully fresh, and always 0 for exact answers).
	StaleRows int      `json:"stale_rows,omitempty"`
	Cost      CostJSON `json:"cost"`
	// TraceID/Trace carry the inline span tree when the query was
	// forced-traced with ?trace=1. The same tree is retrievable later
	// via GET /v1/debug/trace/<trace_id> while it stays in the ring.
	TraceID string          `json:"trace_id,omitempty"`
	Trace   *trace.WireSpan `json:"trace,omitempty"`
	// Degraded marks a best-effort answer computed from a strict subset
	// of the partition space (some holders were unreachable); Coverage
	// is the contributing fraction (0 < coverage < 1). Absent on full
	// answers.
	Degraded bool    `json:"degraded,omitempty"`
	Coverage float64 `json:"coverage,omitempty"`
}

// StatsResponse combines agent lifetime counters with serving-layer
// health.
type StatsResponse struct {
	Agent   core.Stats            `json:"agent"`
	Serving metrics.ServeSnapshot `json:"serving"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// ParseAgg maps a wire aggregate name to the query model's kind.
func ParseAgg(s string) (query.Agg, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "count":
		return query.Count, nil
	case "sum":
		return query.Sum, nil
	case "avg", "mean", "average":
		return query.Avg, nil
	case "var", "variance":
		return query.Var, nil
	case "corr", "correlation":
		return query.Corr, nil
	case "slope", "regslope":
		return query.RegSlope, nil
	default:
		return 0, fmt.Errorf("%w: unknown agg %q", query.ErrBadQuery, s)
	}
}

// Query converts the request to the internal query model.
func (r QueryRequest) Query() (query.Query, error) {
	agg, err := ParseAgg(r.Agg)
	if err != nil {
		return query.Query{}, err
	}
	q := query.Query{Aggregate: agg, Col: r.Col, Col2: r.Col2}
	if r.Radius > 0 {
		q.Select = query.Selection{Center: r.Center, Radius: r.Radius}
	} else {
		q.Select = query.Selection{Los: r.Los, His: r.His}
	}
	if err := q.Validate(); err != nil {
		return query.Query{}, err
	}
	if r.DeadlineMS > 0 {
		q.Deadline = time.UnixMilli(r.DeadlineMS)
	}
	return q, nil
}

// Server is the HTTP/JSON front-end over a Scheduler. Routes:
//
//	POST /v1/query             {tenant?, agg, los/his | center/radius, col?, col2?}
//	                           ?trace=1 forces a trace, inlined in the answer
//	POST /v1/explain           same body; piecewise-linear answer explanation
//	GET  /v1/stats             agent + serving counters
//	GET  /v1/metrics           Prometheus exposition (histograms included)
//	GET  /v1/debug/traces      recent trace ids
//	GET  /v1/debug/trace/{id}  one span tree from the ring
//	GET  /v1/debug/slow        the slow-query log
//	GET  /healthz              liveness
//
// Overload maps to 429, malformed queries to 400, oracle failures
// to 502.
type Server struct {
	sched   *Scheduler
	explain *explain.Engine
	mux     *http.ServeMux
}

// NewServer builds the front-end. exp may be nil to disable /v1/explain.
func NewServer(sched *Scheduler, exp *explain.Engine) *Server {
	s := &Server{sched: sched, explain: exp, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/explain", s.handleExplain)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	RegisterDebug(s.mux, func() *trace.Tracer { return s.sched.pool.Tracer() })
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	return s
}

// RegisterDebug mounts the trace-debug routes on mux: the recent-trace
// list, single-trace retrieval and the slow-query log. Shared with the
// distributed node API so every serving front-end exposes the same
// debug surface. tracerFn is consulted per request (it may return nil
// while tracing is unconfigured — routes then return 404).
func RegisterDebug(mux *http.ServeMux, tracerFn func() *trace.Tracer) {
	mux.HandleFunc("GET /v1/debug/traces", func(w http.ResponseWriter, _ *http.Request) {
		t := tracerFn()
		if t == nil {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: "tracing not configured"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"traces": t.RecentIDs()})
	})
	mux.HandleFunc("GET /v1/debug/trace/{id}", func(w http.ResponseWriter, r *http.Request) {
		t := tracerFn()
		if t == nil {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: "tracing not configured"})
			return
		}
		ws, ok := t.Get(r.PathValue("id"))
		if !ok {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: "trace not in ring"})
			return
		}
		writeJSON(w, http.StatusOK, ws)
	})
	mux.HandleFunc("GET /v1/debug/slow", func(w http.ResponseWriter, _ *http.Request) {
		t := tracerFn()
		if t == nil {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: "tracing not configured"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"slow": t.SlowLog()})
	})
}

// RegisterFlight mounts the flight-recorder routes on mux: metric
// history replay and the diagnostic-bundle spool. Shared with the
// distributed node API like RegisterDebug. fn is consulted per request
// (it may return nil while the recorder is unconfigured — routes then
// return 404).
func RegisterFlight(mux *http.ServeMux, fn func() *flight.Recorder) {
	unavailable := func(w http.ResponseWriter) *flight.Recorder {
		fr := fn()
		if fr == nil {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: "flight recorder not enabled"})
		}
		return fr
	}
	mux.HandleFunc("GET /v1/history", func(w http.ResponseWriter, r *http.Request) {
		fr := unavailable(w)
		if fr == nil {
			return
		}
		metric := r.URL.Query().Get("metric")
		if metric == "" {
			writeJSON(w, http.StatusOK, map[string]any{"metrics": fr.Metrics()})
			return
		}
		window := time.Duration(0)
		if ws := r.URL.Query().Get("window"); ws != "" {
			d, err := time.ParseDuration(ws)
			if err != nil {
				writeJSON(w, http.StatusBadRequest,
					errorResponse{Error: "bad window: " + err.Error()})
				return
			}
			window = d
		}
		h, ok := fr.History(metric, window)
		if !ok {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown metric " + metric})
			return
		}
		writeJSON(w, http.StatusOK, h)
	})
	mux.HandleFunc("GET /v1/debug/bundles", func(w http.ResponseWriter, _ *http.Request) {
		fr := unavailable(w)
		if fr == nil {
			return
		}
		bundles := fr.Bundles()
		if bundles == nil {
			bundles = []flight.BundleInfo{}
		}
		writeJSON(w, http.StatusOK, map[string]any{"bundles": bundles})
	})
	mux.HandleFunc("GET /v1/debug/bundle/{id}/{file}", func(w http.ResponseWriter, r *http.Request) {
		fr := unavailable(w)
		if fr == nil {
			return
		}
		path, err := fr.BundleFile(r.PathValue("id"), r.PathValue("file"))
		if err != nil {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		http.ServeFile(w, r, path)
	})
}

// EnableFlight mounts the flight routes on the server's mux and
// attaches the recorder to the pool's per-query exemplar hook.
func (s *Server) EnableFlight(fr *flight.Recorder) {
	s.sched.pool.EnableFlight(fr)
	RegisterFlight(s.mux, func() *flight.Recorder { return fr })
}

// RegisterPprof mounts the standard net/http/pprof profiling handlers
// under /debug/pprof/ on mux. Off by default everywhere — profiling
// endpoints on a data port are an explicit operator opt-in (seaserve
// -pprof), since heap and CPU profiles leak operational detail.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// EnablePprof mounts the profiling handlers on the server's mux.
func (s *Server) EnablePprof() { RegisterPprof(s.mux) }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Scheduler returns the underlying scheduler (for shutdown and stats).
func (s *Server) Scheduler() *Scheduler { return s.sched }

// WriteJSON writes v as a JSON response with the given status code.
// Exported so sibling HTTP front-ends (the distributed node API in
// internal/dist) share one wire convention.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// ErrDeadline is returned when a request's propagated deadline has
// already passed: the holder refuses dead-on-arrival work instead of
// computing an answer whose caller stopped waiting. Mapped to HTTP 504
// — terminal, never retried (a retry would arrive even deader).
var ErrDeadline = errors.New("serve: deadline exceeded")

// WriteError maps err onto the serving layer's status-code convention
// (400 malformed, 429 overload, 503 closed, 502 oracle failure, 504
// dead-on-arrival deadline) and writes it as a JSON error body.
func WriteError(w http.ResponseWriter, err error) { writeError(w, err) }

func writeJSON(w http.ResponseWriter, code int, v any) { WriteJSON(w, code, v) }

func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, query.ErrBadQuery):
		code = http.StatusBadRequest
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrTenantThrottled):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
	case errors.Is(err, explain.ErrUntrusted):
		code = http.StatusUnprocessableEntity
	case errors.Is(err, core.ErrNoOracle):
		code = http.StatusBadGateway
	case errors.Is(err, ErrDeadline):
		code = http.StatusGatewayTimeout
	}
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

// decode parses the request body into a query plus tenant id.
func decode(r *http.Request) (query.Query, string, error) {
	var req QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return query.Query{}, "", fmt.Errorf("%w: %v", query.ErrBadQuery, err)
	}
	q, err := req.Query()
	if err != nil {
		return query.Query{}, "", err
	}
	tenant := req.Tenant
	if h := r.Header.Get("X-Tenant"); h != "" {
		tenant = h
	}
	return q, tenant, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, tenant, err := decode(r)
	if err != nil {
		writeError(w, err)
		return
	}
	var tr *trace.Trace
	var ans core.Answer
	if TraceRequested(r) {
		tr = s.sched.pool.Tracer().Force("query")
		ans, err = s.sched.AnswerTraced(tenant, q, tr)
	} else {
		ans, err = s.sched.Answer(tenant, q)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	resp := QueryResponse{
		Value:     ans.Value,
		Predicted: ans.Predicted,
		EstError:  ans.EstError,
		Quantum:   ans.Quantum,
		StaleRows: ans.FreshRows,
		Cost:      costJSON(ans.Cost),
		Degraded:  ans.Degraded,
		Coverage:  ans.Coverage,
	}
	if tr != nil {
		resp.TraceID = tr.ID()
		resp.Trace = tr.Wire()
	}
	writeJSON(w, http.StatusOK, resp)
}

// TraceRequested reports whether the request asked for a forced inline
// trace (?trace=1).
func TraceRequested(r *http.Request) bool {
	return r.URL.Query().Get("trace") == "1"
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if s.explain == nil {
		writeJSON(w, http.StatusNotImplemented, errorResponse{Error: "explanations disabled"})
		return
	}
	q, tenant, err := decode(r)
	if err != nil {
		writeError(w, err)
		return
	}
	// Explanations run ~dozens of model probes, so they go through the
	// same admission control and worker pool as queries — no endpoint
	// bypasses overload protection. A successful explanation is pure
	// model work and is recorded as a predicted observation.
	v, err := s.sched.Do(tenant, func() (any, error) {
		start := time.Now()
		ex, err := s.explain.Explain(q)
		if err != nil {
			s.sched.pool.rec.Error()
			return nil, err
		}
		s.sched.pool.rec.Observe(time.Since(start), true)
		return ex, nil
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		Agent:   s.sched.pool.Stats(),
		Serving: s.sched.pool.rec.Snapshot(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	WriteMetrics(w, s.sched.pool.rec)
}

// WriteMetrics renders the recorder's full Prometheus exposition —
// counters, gauges, per-path and per-tenant-class latency histograms,
// audit error histograms and registered gauges; the distributed node
// API mounts the same exposition on its own GET /v1/metrics route.
func WriteMetrics(w http.ResponseWriter, rec *metrics.ServeRecorder) {
	w.Header().Set("Content-Type", metrics.PrometheusContentType)
	w.WriteHeader(http.StatusOK)
	_ = rec.WriteRecorder(w)
}

// ListenAndServe runs the front-end on addr until the listener fails.
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s,
		ReadHeaderTimeout: 5 * time.Second,
	}
	return srv.ListenAndServe()
}

// Run serves on addr until ctx is cancelled, then shuts down gracefully.
// cmd/seaserve wires ctx to SIGINT/SIGTERM so the process never dies
// mid-request.
func (s *Server) Run(ctx context.Context, addr string, drain time.Duration) error {
	return RunHTTP(ctx, addr, s, drain, s.sched.Close)
}

// ServeListener is Run over an existing listener.
func (s *Server) ServeListener(ctx context.Context, l net.Listener, drain time.Duration) error {
	return RunListener(ctx, l, s, drain, s.sched.Close)
}

// RunHTTP serves h on addr until ctx is cancelled, then shuts down
// gracefully (see RunListener). onStopped runs once serving has ended
// either way — the serving front-ends pass their scheduler drain here.
func RunHTTP(ctx context.Context, addr string, h http.Handler, drain time.Duration, onStopped func()) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		if onStopped != nil {
			onStopped()
		}
		return err
	}
	return RunListener(ctx, l, h, drain, onStopped)
}

// RunListener serves h on l until ctx is cancelled, then shuts down
// gracefully: the listener stops accepting, in-flight requests get up to
// drain to finish (http.Server.Shutdown), then onStopped (if any) runs.
// A clean shutdown returns nil. Both serving front-ends — this package's
// Server and internal/dist's node API — share this one drain path.
func RunListener(ctx context.Context, l net.Listener, h http.Handler, drain time.Duration, onStopped func()) error {
	if drain <= 0 {
		drain = 10 * time.Second
	}
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(l) }()
	var err error
	select {
	case err = <-errCh:
		if onStopped != nil {
			onStopped()
		}
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err = srv.Shutdown(shutdownCtx)
	<-errCh // Serve has returned http.ErrServerClosed
	if onStopped != nil {
		onStopped()
	}
	return err
}
