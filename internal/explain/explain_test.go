package explain

import (
	"errors"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/workload"
)

// trainedAgent returns an agent trained on COUNT queries over clustered
// data plus its oracle.
func trainedAgent(t *testing.T) (*core.Agent, core.Oracle, *workload.QueryStream) {
	t.Helper()
	cl := cluster.New(4, cluster.DefaultConfig())
	eng := engine.New(cl)
	tbl, err := storage.NewTable(cl, "data", []string{"x", "y", "z"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.NewRNG(81)
	rows := workload.GaussianMixture(rng, 8000, 3, workload.DefaultMixture(3), 0)
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	ex, err := exec.New(eng, tbl)
	if err != nil {
		t.Fatal(err)
	}
	oracle := exec.CohortOracle{Ex: ex}
	cfg := core.DefaultConfig(2)
	cfg.TrainingQueries = 300
	agent, err := core.NewAgent(oracle, cfg)
	if err != nil {
		t.Fatal(err)
	}
	qs := workload.NewQueryStream(workload.NewRNG(82), workload.DefaultRegions(2), query.Count)
	for i := 0; i < 400; i++ {
		if _, err := agent.Answer(qs.Next()); err != nil {
			t.Fatal(err)
		}
	}
	return agent, oracle, qs
}

// trustedQuery draws queries until one the agent can predict appears.
func trustedQuery(t *testing.T, agent *core.Agent, qs *workload.QueryStream) query.Query {
	t.Helper()
	for i := 0; i < 200; i++ {
		q := qs.Next()
		if _, _, ok := agent.PredictOnly(q); ok {
			return q
		}
	}
	t.Fatal("agent never trusted a query; explanation tests cannot run")
	return query.Query{}
}

func TestExplainProducesCurveAndSensitivity(t *testing.T) {
	agent, _, qs := trainedAgent(t)
	eng := New(agent)
	q := trustedQuery(t, agent, qs)
	ex, err := eng.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Slopes) == 0 || len(ex.Slopes) != len(ex.Intercepts) {
		t.Fatalf("curve pieces: %d slopes, %d intercepts", len(ex.Slopes), len(ex.Intercepts))
	}
	if len(ex.Breakpoints) != len(ex.Slopes)-1 {
		t.Errorf("breakpoints %d for %d pieces", len(ex.Breakpoints), len(ex.Slopes))
	}
	if len(ex.Sensitivity) != 2 {
		t.Errorf("sensitivity dims = %d", len(ex.Sensitivity))
	}
	// COUNT grows with extent: the curve should be increasing overall.
	lo, hi := ex.ExtentRange[0], ex.ExtentRange[1]
	if ex.EvalExtent(hi) <= ex.EvalExtent(lo) {
		t.Errorf("count curve not increasing: f(%v)=%v, f(%v)=%v",
			lo, ex.EvalExtent(lo), hi, ex.EvalExtent(hi))
	}
}

func TestExplainUntrustedRegion(t *testing.T) {
	agent, _, _ := trainedAgent(t)
	eng := New(agent)
	// A region no analyst ever queried.
	q := query.Query{
		Select:    query.Selection{Center: []float64{-500, -500}, Radius: 3},
		Aggregate: query.Count,
	}
	if _, err := eng.Explain(q); !errors.Is(err, ErrUntrusted) {
		t.Errorf("err = %v, want ErrUntrusted", err)
	}
}

func TestExplainInvalidQuery(t *testing.T) {
	agent, _, _ := trainedAgent(t)
	eng := New(agent)
	if _, err := eng.Explain(query.Query{Aggregate: query.Count}); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestFidelityAgainstOracle(t *testing.T) {
	agent, oracle, qs := trainedAgent(t)
	eng := New(agent)
	q := trustedQuery(t, agent, qs)
	ex, err := eng.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, mape, err := Fidelity(ex, oracle, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.5 {
		t.Errorf("fidelity R2 = %v too low (mape %v)", r2, mape)
	}
}

func TestQueriesSaved(t *testing.T) {
	agent, oracle, qs := trainedAgent(t)
	eng := New(agent)
	q := trustedQuery(t, agent, qs)
	ex, err := eng.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	saved, err := QueriesSaved(ex, oracle, 12, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	if saved < 6 {
		t.Errorf("explanation saved only %d/12 what-if queries", saved)
	}
}

func TestEvalExtentDegenerate(t *testing.T) {
	ex := &Explanation{Value: 42}
	if ex.EvalExtent(3) != 42 {
		t.Error("empty curve should return base value")
	}
}

func TestWithExtentPreservesForm(t *testing.T) {
	radius := query.Query{
		Select:    query.Selection{Center: []float64{1, 2}, Radius: 3},
		Aggregate: query.Count,
	}
	got := withExtent(radius, 5)
	if !got.Select.IsRadius() || got.Select.Radius != 5 {
		t.Errorf("radius form lost: %+v", got.Select)
	}
	rng := query.Query{
		Select:    query.Selection{Los: []float64{0, 0}, His: []float64{4, 4}},
		Aggregate: query.Count,
	}
	got = withExtent(rng, 1)
	if got.Select.IsRadius() {
		t.Error("range became radius")
	}
	if got.Select.Los[0] != 1 || got.Select.His[0] != 3 {
		t.Errorf("range resize wrong: %+v", got.Select)
	}
}
