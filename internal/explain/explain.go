// Package explain implements the query-answer explanations of RT4.2 (and
// ref [24] "Explaining analytical queries"): instead of returning a
// single scalar, the system hands the analyst a compact model of how the
// answer depends on the query's parameters.
//
// An Explanation is a piecewise-linear function answer = f(extent) (the
// form the paper names explicitly: "a (piecewise) linear regression model
// showing how count ... depends on the size of the subspace"), plus a
// per-dimension sensitivity vector at the queried point. Explanations are
// derived entirely from the SEA agent's learned models — zero base-data
// accesses — so they inherit P2's scalability.
//
// The package quantifies the paper's claimed payoff (G2: analysts "gain
// understanding without issuing an inordinate number of queries") via
// QueriesSaved: how many distinct what-if variants of the query the
// explanation answers within tolerance.
package explain

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/query"
)

// ErrUntrusted is returned when the agent has no trustworthy model for
// the queried region, so no explanation can be derived data-lessly.
var ErrUntrusted = errors.New("explain: no trustworthy model for this query region")

// Explanation is the rich answer companion of RT4.2.
type Explanation struct {
	// Query is the explained query.
	Query query.Query
	// Value is the (predicted) answer at the queried parameters.
	Value float64
	// EstError is the model's estimated error at the queried point.
	EstError float64
	// ExtentCurve is the piecewise-linear model answer = f(extent):
	// parallel slices of breakpoints (interior, ascending) and per-piece
	// slope/intercept.
	Breakpoints []float64
	Slopes      []float64
	Intercepts  []float64
	// ExtentRange is the [lo, hi] extent range the curve covers.
	ExtentRange [2]float64
	// Sensitivity[i] is d(answer)/d(centre_i) at the queried point — how
	// the answer moves if the analyst slides the subspace along dim i.
	Sensitivity []float64
}

// EvalExtent evaluates the explanation's curve at the given extent.
func (e *Explanation) EvalExtent(extent float64) float64 {
	if len(e.Slopes) == 0 {
		return e.Value
	}
	i := 0
	for i < len(e.Breakpoints) && extent >= e.Breakpoints[i] {
		i++
	}
	if i >= len(e.Slopes) {
		i = len(e.Slopes) - 1
	}
	return e.Slopes[i]*extent + e.Intercepts[i]
}

// Engine derives explanations from a SEA agent.
type Engine struct {
	agent *core.Agent
	// Samples is the number of extent samples the curve is fit on
	// (default 24).
	Samples int
	// Segments caps the piecewise-linear pieces (default 3).
	Segments int
}

// New builds an explanation engine over agent.
func New(agent *core.Agent) *Engine {
	return &Engine{agent: agent, Samples: 24, Segments: 3}
}

// Explain derives the explanation for q, sweeping extent over
// [0.7x, 1.4x] the queried extent — the locally-valid neighbourhood of
// the per-quantum model (wider sweeps would extrapolate outside the
// extents the training queries covered).
func (e *Engine) Explain(q query.Query) (*Explanation, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	value, estErr, ok := e.agent.PredictOnly(q)
	if !ok {
		return nil, fmt.Errorf("%w", ErrUntrusted)
	}
	base := q.Select.Extent()
	lo, hi := base*0.7, base*1.4
	samples := e.Samples
	if samples < 8 {
		samples = 8
	}
	var xs, ys []float64
	for i := 0; i < samples; i++ {
		ext := lo + (hi-lo)*float64(i)/float64(samples-1)
		qq := withExtent(q, ext)
		v, _, ok := e.agent.PredictOnly(qq)
		if !ok {
			continue
		}
		xs = append(xs, ext)
		ys = append(ys, v)
	}
	if len(xs) < 4 {
		return nil, fmt.Errorf("%w: curve sampling failed", ErrUntrusted)
	}
	segs := e.Segments
	if segs < 1 {
		segs = 3
	}
	sr := ml.SegmentedRegression{Segments: segs, MinPoints: 4}
	if err := sr.Fit(xs, ys); err != nil {
		return nil, fmt.Errorf("explain: curve fit: %w", err)
	}
	slopes, intercepts := sr.Pieces()

	// Sensitivities by central finite differences on the centre.
	center := q.Select.Center1()
	h := base * 0.1
	if h == 0 {
		h = 0.5
	}
	sens := make([]float64, len(center))
	for j := range center {
		plus, _, ok1 := e.agent.PredictOnly(withCenterShift(q, j, h))
		minus, _, ok2 := e.agent.PredictOnly(withCenterShift(q, j, -h))
		if ok1 && ok2 {
			sens[j] = (plus - minus) / (2 * h)
		}
	}

	return &Explanation{
		Query:       q,
		Value:       value,
		EstError:    estErr,
		Breakpoints: sr.Breakpoints(),
		Slopes:      slopes,
		Intercepts:  intercepts,
		ExtentRange: [2]float64{lo, hi},
		Sensitivity: sens,
	}, nil
}

// withExtent returns q resized to the given extent, preserving its
// centre and selection form.
func withExtent(q query.Query, extent float64) query.Query {
	out := q
	if q.Select.IsRadius() {
		out.Select = query.Selection{
			Center: append([]float64(nil), q.Select.Center...),
			Radius: extent,
		}
		return out
	}
	c := q.Select.Center1()
	los := make([]float64, len(c))
	his := make([]float64, len(c))
	for i := range c {
		los[i] = c[i] - extent
		his[i] = c[i] + extent
	}
	out.Select = query.Selection{Los: los, His: his}
	return out
}

// withCenterShift returns q with its centre moved by delta along dim j.
func withCenterShift(q query.Query, j int, delta float64) query.Query {
	out := q
	if q.Select.IsRadius() {
		c := append([]float64(nil), q.Select.Center...)
		if j < len(c) {
			c[j] += delta
		}
		out.Select = query.Selection{Center: c, Radius: q.Select.Radius}
		return out
	}
	los := append([]float64(nil), q.Select.Los...)
	his := append([]float64(nil), q.Select.His...)
	if j < len(los) {
		los[j] += delta
		his[j] += delta
	}
	out.Select = query.Selection{Los: los, His: his}
	return out
}

// Fidelity measures how well an explanation tracks exact answers: it
// evaluates the curve at n extents, obtains exact answers from the
// oracle, and returns (R2, MAPE) — the E9 metrics.
func Fidelity(ex *Explanation, oracle core.Oracle, n int) (r2, mape float64, err error) {
	if n < 2 {
		n = 8
	}
	lo, hi := ex.ExtentRange[0], ex.ExtentRange[1]
	var pred, truth []float64
	for i := 0; i < n; i++ {
		ext := lo + (hi-lo)*float64(i)/float64(n-1)
		q := withExtent(ex.Query, ext)
		res, _, aerr := oracle.Answer(q)
		if aerr != nil {
			return 0, 0, fmt.Errorf("explain fidelity: %w", aerr)
		}
		pred = append(pred, ex.EvalExtent(ext))
		truth = append(truth, res.Value)
	}
	return ml.R2(pred, truth), ml.MAPE(pred, truth), nil
}

// QueriesSaved counts how many of n what-if extent variants the
// explanation answers within relative tolerance tol — each one is a
// query the analyst did not have to issue (G2's indirect scalability
// win).
func QueriesSaved(ex *Explanation, oracle core.Oracle, n int, tol float64) (int, error) {
	if n < 1 {
		n = 10
	}
	lo, hi := ex.ExtentRange[0], ex.ExtentRange[1]
	saved := 0
	for i := 0; i < n; i++ {
		ext := lo + (hi-lo)*float64(i)/float64(n-1)
		q := withExtent(ex.Query, ext)
		res, _, err := oracle.Answer(q)
		if err != nil {
			return saved, fmt.Errorf("explain queries-saved: %w", err)
		}
		got := ex.EvalExtent(ext)
		denom := res.Value
		if denom < 1 && denom > -1 {
			denom = 1
		}
		rel := (got - res.Value) / denom
		if rel < 0 {
			rel = -rel
		}
		if rel <= tol {
			saved++
		}
	}
	return saved, nil
}
