package exec

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/workload"
)

func buildExec(t *testing.T, nRows, nNodes, nParts int) *Executor {
	t.Helper()
	cl := cluster.New(nNodes, cluster.DefaultConfig())
	eng := engine.New(cl)
	tbl, err := storage.NewTable(cl, "data", []string{"x", "y"}, nParts)
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.NewRNG(11)
	rows := workload.GaussianMixture(rng, nRows, 2, workload.DefaultMixture(2), 0)
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	ex, err := New(eng, tbl)
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

func TestExactPathsAgree(t *testing.T) {
	ex := buildExec(t, 5000, 4, 8)
	queries := []query.Query{
		{Select: query.Selection{Los: []float64{20, 20}, His: []float64{30, 30}}, Aggregate: query.Count},
		{Select: query.Selection{Center: []float64{25, 25}, Radius: 6}, Aggregate: query.Avg, Col: 1},
		{Select: query.Selection{Los: []float64{0, 0}, His: []float64{100, 100}}, Aggregate: query.Corr, Col: 0, Col2: 1},
	}
	for _, q := range queries {
		mr, mrCost, err := ex.ExactMapReduce(q)
		if err != nil {
			t.Fatalf("mapreduce: %v", err)
		}
		cc, ccCost, err := ex.ExactCohort(q)
		if err != nil {
			t.Fatalf("cohort: %v", err)
		}
		if math.Abs(mr.Value-cc.Value) > 1e-9 || mr.Support != cc.Support {
			t.Errorf("%v: mapreduce %+v != cohort %+v", q.Aggregate, mr, cc)
		}
		if ccCost.Time >= mrCost.Time {
			t.Errorf("cohort time %v should beat mapreduce %v", ccCost.Time, mrCost.Time)
		}
	}
}

func TestExactAnswersMatchGroundTruth(t *testing.T) {
	ex := buildExec(t, 3000, 2, 4)
	q := query.Query{
		Select:    query.Selection{Los: []float64{20, 20}, His: []float64{30, 30}},
		Aggregate: query.Count,
	}
	// Compute truth directly over all partitions.
	var truth int64
	for p := 0; p < ex.Table().Partitions(); p++ {
		rows, _, err := ex.Table().ScanPartition(p)
		if err != nil {
			t.Fatal(err)
		}
		truth += query.EvalRows(q, rows).Support
	}
	got, _, err := ex.ExactMapReduce(q)
	if err != nil {
		t.Fatal(err)
	}
	if int64(got.Value) != truth {
		t.Errorf("count = %v, truth %d", got.Value, truth)
	}
	if truth == 0 {
		t.Error("test subspace unexpectedly empty")
	}
}

func TestInvalidQueryRejected(t *testing.T) {
	ex := buildExec(t, 100, 1, 2)
	bad := query.Query{Aggregate: query.Count}
	if _, _, err := ex.ExactMapReduce(bad); err == nil {
		t.Error("mapreduce accepted invalid query")
	}
	if _, _, err := ex.ExactCohort(bad); err == nil {
		t.Error("cohort accepted invalid query")
	}
}

func TestCandidatePartitionsPruning(t *testing.T) {
	// Range-partitioned table on x: a narrow query must prune partitions.
	cl := cluster.New(4, cluster.DefaultConfig())
	eng := engine.New(cl)
	tbl, err := storage.NewTable(cl, "ranged", []string{"x", "y"}, 4,
		storage.WithRangePartitioning([]float64{25, 50, 75}))
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.NewRNG(12)
	rows := workload.Uniform(rng, 4000, 2, []float64{0, 0}, []float64{100, 100}, 0)
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	ex, err := New(eng, tbl)
	if err != nil {
		t.Fatal(err)
	}
	sel := query.Selection{Los: []float64{10, 0}, His: []float64{20, 100}}
	parts := ex.CandidatePartitions(sel)
	if len(parts) != 1 || parts[0] != 0 {
		t.Errorf("candidates = %v, want [0]", parts)
	}
	// Cohort should therefore read ~1/4 of rows.
	q := query.Query{Select: sel, Aggregate: query.Count}
	res, cost, err := ex.ExactCohort(q)
	if err != nil {
		t.Fatal(err)
	}
	if cost.RowsRead > 1500 {
		t.Errorf("cohort read %d rows, want ~1000", cost.RowsRead)
	}
	if res.Support == 0 {
		t.Error("query found no rows")
	}
	// Radius query pruning too.
	rparts := ex.CandidatePartitions(query.Selection{Center: []float64{12, 50}, Radius: 5})
	if len(rparts) != 1 || rparts[0] != 0 {
		t.Errorf("radius candidates = %v, want [0]", rparts)
	}
}

func TestGridSelectivity(t *testing.T) {
	ex := buildExec(t, 8000, 4, 8)
	if err := ex.BuildGrid(16); err != nil {
		t.Fatal(err)
	}
	sel := query.Selection{Los: []float64{15, 15}, His: []float64{35, 35}}
	est := ex.EstimateSelectivity(sel)
	// Truth.
	q := query.Query{Select: sel, Aggregate: query.Count}
	truth, _, err := ex.ExactMapReduce(q)
	if err != nil {
		t.Fatal(err)
	}
	trueSel := truth.Value / float64(ex.Table().Rows())
	if math.Abs(est-trueSel) > 0.05 {
		t.Errorf("selectivity est %v vs truth %v", est, trueSel)
	}
	// Radius estimate should also be sane (upper-bounds via bounding box).
	rEst := ex.EstimateSelectivity(query.Selection{Center: []float64{25, 25}, Radius: 10})
	if rEst <= 0 || rEst > 1 {
		t.Errorf("radius selectivity = %v", rEst)
	}
}

func TestRefreshBoundsAfterUpdate(t *testing.T) {
	ex := buildExec(t, 1000, 2, 4)
	// Shift all data +1000 in x; stale bounds would prune wrongly.
	_, _, err := ex.Table().UpdateWhere(
		func(storage.Row) bool { return true },
		func(r *storage.Row) { r.Vec[0] += 1000 },
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.RefreshBounds(); err != nil {
		t.Fatal(err)
	}
	sel := query.Selection{Los: []float64{1000, 0}, His: []float64{1100, 100}}
	if parts := ex.CandidatePartitions(sel); len(parts) == 0 {
		t.Error("no candidates after refresh; bounds stale")
	}
}

func TestEmptyTableGridError(t *testing.T) {
	cl := cluster.New(1, cluster.DefaultConfig())
	eng := engine.New(cl)
	tbl, _ := storage.NewTable(cl, "empty", []string{"x"}, 1)
	ex, err := New(eng, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.BuildGrid(4); err == nil {
		t.Error("BuildGrid on empty table should error")
	}
}
