// Package exec provides exact execution of analytical queries over the
// simulated BDAS, in both of the paper's paradigms:
//
//   - ExactMapReduce is the Fig. 1 path: the query descends through the
//     stack and a MapReduce-style job touches every node and scans every
//     row. This is the baseline the SEA agent's data-less path is
//     measured against (E1), and the "training oracle" that answers the
//     agent's training queries.
//
//   - ExactCohort is the coordinator–cohort path (RT3.2): with the
//     storage layer's zone maps routing the query, the coordinator
//     engages only partitions that can intersect the queried subspace,
//     and each engaged partition streams through the vectorized
//     columnar kernels (internal/query) in parallel.
//
// Both return the same answers (within reassociation tolerance for the
// second-order statistics); they differ in cost and in wall-clock speed.
package exec

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/sketch"
	"repro/internal/storage"
)

// Executor runs exact analytical queries over one table.
type Executor struct {
	eng   *engine.Engine
	table *storage.Table

	// grid is an optional density synopsis for selectivity estimates.
	grid *sketch.GridHistogram
}

// New builds an executor for table t on engine eng. Partition pruning
// metadata (zone maps) lives in the storage layer and is maintained on
// every mutation, so there is no index-build step.
func New(eng *engine.Engine, t *storage.Table) (*Executor, error) {
	return &Executor{eng: eng, table: t}, nil
}

// Table returns the executor's table.
func (ex *Executor) Table() *storage.Table { return ex.table }

// Engine returns the executor's engine.
func (ex *Executor) Engine() *engine.Engine { return ex.eng }

// ExactMapReduce answers q with a full MapReduce pass (Fig. 1 baseline).
func (ex *Executor) ExactMapReduce(q query.Query) (query.Result, metrics.Cost, error) {
	if err := q.Validate(); err != nil {
		return query.Result{}, metrics.Cost{}, err
	}
	if err := q.ValidateCols(ex.table.Width()); err != nil {
		return query.Result{}, metrics.Cost{}, err
	}
	const resultKey = 0
	mapper := func(row storage.Row, emit func(engine.KV)) {
		if q.Select.Contains(row.Vec) {
			emit(engine.KV{Key: resultKey, Value: query.PartialEval(q, []storage.Row{row})})
		}
	}
	reducer := func(_ uint64, values [][]float64) [][]float64 {
		res := query.MergeEval(q, values)
		return [][]float64{{res.Value, float64(res.Support)}}
	}
	out, cost, err := ex.eng.MapReduce(ex.table, mapper, reducer)
	if err != nil {
		return query.Result{}, cost, fmt.Errorf("exact mapreduce: %w", err)
	}
	if len(out) == 0 {
		return query.Result{}, cost, nil
	}
	v := out[0].Value
	return query.Result{Value: v[0], Support: int64(v[1])}, cost, nil
}

// CandidatePartitions returns the partitions whose zone maps intersect
// the selection. Zone maps are maintained by the storage layer on every
// mutation, so the answer is always current.
func (ex *Executor) CandidatePartitions(s query.Selection) []int {
	parts, _ := query.Prune(ex.table, s)
	return parts
}

// ExactCohort answers q by engaging only candidate partitions through
// the coordinator–cohort paradigm, evaluating each with the vectorized
// columnar kernels in parallel. With hash partitioning every partition
// is usually a candidate (data is spread uniformly), so the win comes
// from skipping job-framework overhead and from the batch kernels; with
// range partitioning the zone-map pruning is also dramatic — exactly
// the trade-off the optimizer (RT3) learns.
func (ex *Executor) ExactCohort(q query.Query) (query.Result, metrics.Cost, error) {
	if err := q.Validate(); err != nil {
		return query.Result{}, metrics.Cost{}, err
	}
	if err := q.ValidateCols(ex.table.Width()); err != nil {
		return query.Result{}, metrics.Cost{}, err
	}
	parts := ex.CandidatePartitions(q.Select)
	task := func(p int) ([][]float64, int64, error) {
		partial, rowsRead, err := query.PartialForPartition(q, ex.table, p)
		if err != nil {
			return nil, 0, err
		}
		return [][]float64{partial}, rowsRead, nil
	}
	results, cost, err := ex.eng.CoordinatorGatherParallel(ex.table, parts, task)
	if err != nil {
		return query.Result{}, cost, fmt.Errorf("exact cohort: %w", err)
	}
	var partials [][]float64
	for _, r := range results {
		partials = append(partials, r.Results...)
	}
	return query.MergeEval(q, partials), cost, nil
}

// BuildGrid installs a density synopsis with cellsPer cells per dimension
// over the data's bounding box (an offline step; used for selectivity
// features by the optimizer).
func (ex *Executor) BuildGrid(cellsPer int) error {
	var mins, maxs []float64
	for p, zm := range ex.table.ZoneMaps() {
		if zm.Rows == 0 {
			continue
		}
		pmins, pmaxs := zm.Mins, zm.Maxs
		if pmins == nil {
			// No usable projection: derive this partition's box from rows.
			rows, _, err := ex.table.ScanPartition(p)
			if err != nil {
				return fmt.Errorf("exec: build grid: %w", err)
			}
			for _, r := range rows {
				for j := 0; j < len(r.Vec); j++ {
					if j >= len(pmins) {
						pmins = append(pmins, r.Vec[j])
						pmaxs = append(pmaxs, r.Vec[j])
						continue
					}
					if r.Vec[j] < pmins[j] {
						pmins[j] = r.Vec[j]
					}
					if r.Vec[j] > pmaxs[j] {
						pmaxs[j] = r.Vec[j]
					}
				}
			}
		}
		if mins == nil {
			mins = append([]float64(nil), pmins...)
			maxs = append([]float64(nil), pmaxs...)
			continue
		}
		for j := range mins {
			if j >= len(pmins) {
				continue
			}
			if pmins[j] < mins[j] {
				mins[j] = pmins[j]
			}
			if pmaxs[j] > maxs[j] {
				maxs[j] = pmaxs[j]
			}
		}
	}
	if mins == nil {
		return fmt.Errorf("exec: build grid: empty table %q", ex.table.Name())
	}
	// Nudge max up so the top edge lands inside the last cell.
	for j := range maxs {
		maxs[j] += 1e-9
	}
	// Cap synopsis dimensionality at 3 to bound memory (selectivity only
	// needs the leading dimensions).
	d := len(mins)
	if d > 3 {
		d = 3
	}
	g, err := sketch.NewGridHistogram(mins[:d], maxs[:d], cellsPer)
	if err != nil {
		return fmt.Errorf("exec: build grid: %w", err)
	}
	for p := 0; p < ex.table.Partitions(); p++ {
		rows, _, err := ex.table.ScanPartition(p)
		if err != nil {
			return fmt.Errorf("exec: build grid: %w", err)
		}
		for _, r := range rows {
			g.Add(r.Vec[:d])
		}
	}
	ex.grid = g
	return nil
}

// EstimateSelectivity returns the estimated fraction of rows inside the
// selection, from the grid synopsis (0 when no grid is built).
func (ex *Executor) EstimateSelectivity(s query.Selection) float64 {
	if ex.grid == nil || ex.table.Rows() == 0 {
		return 0
	}
	d := 3
	if s.Dims() < d {
		d = s.Dims()
	}
	var los, his []float64
	if s.IsRadius() {
		for j := 0; j < d; j++ {
			los = append(los, s.Center[j]-s.Radius)
			his = append(his, s.Center[j]+s.Radius)
		}
	} else {
		los = append(los, s.Los[:d]...)
		his = append(his, s.His[:d]...)
	}
	est := ex.grid.EstimateRange(los, his)
	return est / float64(ex.table.Rows())
}

// RefreshBounds is retained for API compatibility: partition pruning
// metadata now lives in the storage layer's zone maps, which every
// mutation keeps current, so there is nothing to rebuild.
func (ex *Executor) RefreshBounds() error { return nil }
