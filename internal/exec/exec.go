// Package exec provides exact execution of analytical queries over the
// simulated BDAS, in both of the paper's paradigms:
//
//   - ExactMapReduce is the Fig. 1 path: the query descends through the
//     stack and a MapReduce-style job touches every node and scans every
//     row. This is the baseline the SEA agent's data-less path is
//     measured against (E1), and the "training oracle" that answers the
//     agent's training queries.
//
//   - ExactCohort is the coordinator–cohort path (RT3.2): with a grid
//     synopsis routing the query, the coordinator engages only partitions
//     that can intersect the queried subspace.
//
// Both return bit-identical answers; they differ only in cost.
package exec

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/sketch"
	"repro/internal/storage"
)

// Executor runs exact analytical queries over one table.
type Executor struct {
	eng   *engine.Engine
	table *storage.Table

	// partBounds[p] = per-dimension [lo,hi] bounding box of partition p,
	// built at Attach time; lets the cohort path prune partitions.
	partMins [][]float64
	partMaxs [][]float64
	// grid is an optional density synopsis for selectivity estimates.
	grid *sketch.GridHistogram
}

// New builds an executor for table t on engine eng, computing partition
// bounding boxes (an offline, uncharged index-build step).
func New(eng *engine.Engine, t *storage.Table) (*Executor, error) {
	ex := &Executor{eng: eng, table: t}
	if err := ex.rebuildBounds(); err != nil {
		return nil, err
	}
	return ex, nil
}

func (ex *Executor) rebuildBounds() error {
	n := ex.table.Partitions()
	ex.partMins = make([][]float64, n)
	ex.partMaxs = make([][]float64, n)
	for p := 0; p < n; p++ {
		rows, _, err := ex.table.ScanPartition(p)
		if err != nil {
			return fmt.Errorf("exec: bounds of partition %d: %w", p, err)
		}
		if len(rows) == 0 {
			continue
		}
		d := len(rows[0].Vec)
		mins := make([]float64, d)
		maxs := make([]float64, d)
		copy(mins, rows[0].Vec)
		copy(maxs, rows[0].Vec)
		for _, r := range rows[1:] {
			for j := 0; j < d && j < len(r.Vec); j++ {
				if r.Vec[j] < mins[j] {
					mins[j] = r.Vec[j]
				}
				if r.Vec[j] > maxs[j] {
					maxs[j] = r.Vec[j]
				}
			}
		}
		ex.partMins[p] = mins
		ex.partMaxs[p] = maxs
	}
	return nil
}

// Table returns the executor's table.
func (ex *Executor) Table() *storage.Table { return ex.table }

// Engine returns the executor's engine.
func (ex *Executor) Engine() *engine.Engine { return ex.eng }

// ExactMapReduce answers q with a full MapReduce pass (Fig. 1 baseline).
func (ex *Executor) ExactMapReduce(q query.Query) (query.Result, metrics.Cost, error) {
	if err := q.Validate(); err != nil {
		return query.Result{}, metrics.Cost{}, err
	}
	const resultKey = 0
	mapper := func(row storage.Row, emit func(engine.KV)) {
		if q.Select.Contains(row.Vec) {
			emit(engine.KV{Key: resultKey, Value: query.PartialEval(q, []storage.Row{row})})
		}
	}
	reducer := func(_ uint64, values [][]float64) [][]float64 {
		res := query.MergeEval(q, values)
		return [][]float64{{res.Value, float64(res.Support)}}
	}
	out, cost, err := ex.eng.MapReduce(ex.table, mapper, reducer)
	if err != nil {
		return query.Result{}, cost, fmt.Errorf("exact mapreduce: %w", err)
	}
	if len(out) == 0 {
		return query.Result{}, cost, nil
	}
	v := out[0].Value
	return query.Result{Value: v[0], Support: int64(v[1])}, cost, nil
}

// boxIntersects reports whether partition p's bounding box can intersect
// the selection.
func (ex *Executor) boxIntersects(p int, s query.Selection) bool {
	mins, maxs := ex.partMins[p], ex.partMaxs[p]
	if mins == nil {
		return false
	}
	if s.IsRadius() {
		// Distance from centre to box must be <= radius.
		var d2 float64
		for j, c := range s.Center {
			if j >= len(mins) {
				break
			}
			v := c
			if v < mins[j] {
				d := mins[j] - v
				d2 += d * d
			} else if v > maxs[j] {
				d := v - maxs[j]
				d2 += d * d
			}
		}
		return d2 <= s.Radius*s.Radius
	}
	for j := range s.Los {
		if j >= len(mins) {
			break
		}
		if s.His[j] < mins[j] || s.Los[j] > maxs[j] {
			return false
		}
	}
	return true
}

// CandidatePartitions returns the partitions whose bounding boxes
// intersect the selection.
func (ex *Executor) CandidatePartitions(s query.Selection) []int {
	var out []int
	for p := 0; p < ex.table.Partitions(); p++ {
		if ex.boxIntersects(p, s) {
			out = append(out, p)
		}
	}
	return out
}

// ExactCohort answers q by engaging only candidate partitions through the
// coordinator–cohort paradigm. With hash partitioning every partition is
// usually a candidate (data is spread uniformly), so the win comes from
// skipping job-framework overhead; with range partitioning the pruning is
// also dramatic — exactly the trade-off the optimizer (RT3) learns.
func (ex *Executor) ExactCohort(q query.Query) (query.Result, metrics.Cost, error) {
	if err := q.Validate(); err != nil {
		return query.Result{}, metrics.Cost{}, err
	}
	parts := ex.CandidatePartitions(q.Select)
	task := func(part []storage.Row) ([][]float64, int64) {
		return [][]float64{query.PartialEval(q, part)}, int64(len(part))
	}
	results, cost, err := ex.eng.CoordinatorGather(ex.table, parts, task)
	if err != nil {
		return query.Result{}, cost, fmt.Errorf("exact cohort: %w", err)
	}
	var partials [][]float64
	for _, r := range results {
		partials = append(partials, r.Results...)
	}
	return query.MergeEval(q, partials), cost, nil
}

// BuildGrid installs a density synopsis with cellsPer cells per dimension
// over the data's bounding box (an offline step; used for selectivity
// features by the optimizer).
func (ex *Executor) BuildGrid(cellsPer int) error {
	var mins, maxs []float64
	for p := range ex.partMins {
		if ex.partMins[p] == nil {
			continue
		}
		if mins == nil {
			mins = append([]float64(nil), ex.partMins[p]...)
			maxs = append([]float64(nil), ex.partMaxs[p]...)
			continue
		}
		for j := range mins {
			if ex.partMins[p][j] < mins[j] {
				mins[j] = ex.partMins[p][j]
			}
			if ex.partMaxs[p][j] > maxs[j] {
				maxs[j] = ex.partMaxs[p][j]
			}
		}
	}
	if mins == nil {
		return fmt.Errorf("exec: build grid: empty table %q", ex.table.Name())
	}
	// Nudge max up so the top edge lands inside the last cell.
	for j := range maxs {
		maxs[j] += 1e-9
	}
	// Cap synopsis dimensionality at 3 to bound memory (selectivity only
	// needs the leading dimensions).
	d := len(mins)
	if d > 3 {
		d = 3
	}
	g, err := sketch.NewGridHistogram(mins[:d], maxs[:d], cellsPer)
	if err != nil {
		return fmt.Errorf("exec: build grid: %w", err)
	}
	for p := 0; p < ex.table.Partitions(); p++ {
		rows, _, err := ex.table.ScanPartition(p)
		if err != nil {
			return fmt.Errorf("exec: build grid: %w", err)
		}
		for _, r := range rows {
			g.Add(r.Vec[:d])
		}
	}
	ex.grid = g
	return nil
}

// EstimateSelectivity returns the estimated fraction of rows inside the
// selection, from the grid synopsis (0 when no grid is built).
func (ex *Executor) EstimateSelectivity(s query.Selection) float64 {
	if ex.grid == nil || ex.table.Rows() == 0 {
		return 0
	}
	d := 3
	if s.Dims() < d {
		d = s.Dims()
	}
	var los, his []float64
	if s.IsRadius() {
		for j := 0; j < d; j++ {
			los = append(los, s.Center[j]-s.Radius)
			his = append(his, s.Center[j]+s.Radius)
		}
	} else {
		los = append(los, s.Los[:d]...)
		his = append(his, s.His[:d]...)
	}
	est := ex.grid.EstimateRange(los, his)
	return est / float64(ex.table.Rows())
}

// RefreshBounds recomputes partition bounding boxes after data updates
// (call after storage mutations so cohort pruning stays correct).
func (ex *Executor) RefreshBounds() error { return ex.rebuildBounds() }
