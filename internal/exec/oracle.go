package exec

import (
	"repro/internal/metrics"
	"repro/internal/query"
)

// MapReduceOracle adapts an Executor to the SEA agent's Oracle interface
// using the Fig. 1 full-stack path: this is the configuration the paper's
// E1 contrast assumes (training queries pay the traditional price).
type MapReduceOracle struct {
	// Ex is the wrapped executor.
	Ex *Executor
}

// Answer runs q as a full MapReduce job.
func (o MapReduceOracle) Answer(q query.Query) (query.Result, metrics.Cost, error) {
	return o.Ex.ExactMapReduce(q)
}

// DataVersion returns the table's version counter.
func (o MapReduceOracle) DataVersion() int64 { return o.Ex.Table().Version() }

// CohortOracle adapts an Executor to the Oracle interface using the
// coordinator–cohort path — the big-data-less exact engine (P3). Pairing
// the agent with this oracle models a deployment where even fallbacks are
// surgical.
type CohortOracle struct {
	// Ex is the wrapped executor.
	Ex *Executor
}

// Answer runs q through the coordinator–cohort engine.
func (o CohortOracle) Answer(q query.Query) (query.Result, metrics.Cost, error) {
	return o.Ex.ExactCohort(q)
}

// DataVersion returns the table's version counter.
func (o CohortOracle) DataVersion() int64 { return o.Ex.Table().Version() }
