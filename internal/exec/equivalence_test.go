package exec

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/query"
)

// TestParadigmEquivalenceProperty is the central correctness property of
// RT3.2: the two execution paradigms are alternatives in cost only —
// they must return bit-identical answers for every query and aggregate.
func TestParadigmEquivalenceProperty(t *testing.T) {
	ex := buildExec(t, 3000, 4, 8)
	aggs := []query.Agg{query.Count, query.Sum, query.Avg, query.Var, query.Corr, query.RegSlope}
	f := func(cx, cy, extRaw float64, aggRaw uint8, radius bool) bool {
		// Map arbitrary inputs onto the data domain.
		cx = 10 + math.Abs(math.Mod(cx, 80))
		cy = 10 + math.Abs(math.Mod(cy, 80))
		ext := 1 + math.Abs(math.Mod(extRaw, 15))
		agg := aggs[int(aggRaw)%len(aggs)]
		var sel query.Selection
		if radius {
			sel = query.Selection{Center: []float64{cx, cy}, Radius: ext}
		} else {
			sel = query.Selection{
				Los: []float64{cx - ext, cy - ext},
				His: []float64{cx + ext, cy + ext},
			}
		}
		q := query.Query{Select: sel, Aggregate: agg, Col: 0, Col2: 1}
		mr, _, err := ex.ExactMapReduce(q)
		if err != nil {
			return false
		}
		cc, _, err := ex.ExactCohort(q)
		if err != nil {
			return false
		}
		return mr.Support == cc.Support && math.Abs(mr.Value-cc.Value) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestCohortNeverCostsMoreRows asserts the surgical-access invariant:
// the cohort path never reads more rows than the MapReduce path.
func TestCohortNeverCostsMoreRows(t *testing.T) {
	ex := buildExec(t, 3000, 4, 8)
	f := func(cx, cy, extRaw float64) bool {
		cx = 10 + math.Abs(math.Mod(cx, 80))
		cy = 10 + math.Abs(math.Mod(cy, 80))
		ext := 1 + math.Abs(math.Mod(extRaw, 15))
		q := query.Query{
			Select: query.Selection{
				Los: []float64{cx - ext, cy - ext},
				His: []float64{cx + ext, cy + ext},
			},
			Aggregate: query.Count,
		}
		_, mrCost, err := ex.ExactMapReduce(q)
		if err != nil {
			return false
		}
		_, ccCost, err := ex.ExactCohort(q)
		if err != nil {
			return false
		}
		return ccCost.RowsRead <= mrCost.RowsRead && ccCost.Time <= mrCost.Time
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
