package exec

import (
	"errors"
	"testing"

	"repro/internal/query"
)

// TestEvaluationBoundaryRejectsBadColumns asserts both exact paths
// refuse out-of-range aggregate columns with ErrBadQuery instead of
// silently aggregating zeros (the old colVal behaviour).
func TestEvaluationBoundaryRejectsBadColumns(t *testing.T) {
	ex := buildExec(t, 500, 2, 4)
	sel := query.Selection{Los: []float64{0, 0}, His: []float64{100, 100}}
	bad := []query.Query{
		{Select: sel, Aggregate: query.Sum, Col: 9},
		{Select: sel, Aggregate: query.Avg, Col: -1},
		{Select: sel, Aggregate: query.Corr, Col: 0, Col2: 9},
		{Select: sel, Aggregate: query.RegSlope, Col: 9, Col2: 0},
	}
	for i, q := range bad {
		if _, _, err := ex.ExactMapReduce(q); !errors.Is(err, query.ErrBadQuery) {
			t.Errorf("case %d: ExactMapReduce err = %v, want ErrBadQuery", i, err)
		}
		if _, _, err := ex.ExactCohort(q); !errors.Is(err, query.ErrBadQuery) {
			t.Errorf("case %d: ExactCohort err = %v, want ErrBadQuery", i, err)
		}
	}
	// COUNT ignores Col entirely: stays valid.
	if _, _, err := ex.ExactCohort(query.Query{Select: sel, Aggregate: query.Count, Col: 9}); err != nil {
		t.Errorf("Count with stray Col: %v", err)
	}
}
