package query

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/storage"
)

func TestSelectionValidate(t *testing.T) {
	tests := []struct {
		name    string
		sel     Selection
		wantErr bool
	}{
		{"valid range", Selection{Los: []float64{0}, His: []float64{1}}, false},
		{"valid radius", Selection{Center: []float64{0, 0}, Radius: 1}, false},
		{"lo > hi", Selection{Los: []float64{2}, His: []float64{1}}, true},
		{"width mismatch", Selection{Los: []float64{0}, His: []float64{1, 2}}, true},
		{"radius no centre", Selection{Radius: 1}, true},
		{"empty", Selection{}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.sel.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil && !errors.Is(err, ErrBadQuery) {
				t.Errorf("error %v should wrap ErrBadQuery", err)
			}
		})
	}
}

func TestSelectionContains(t *testing.T) {
	rng := Selection{Los: []float64{0, 0}, His: []float64{10, 10}}
	if !rng.Contains([]float64{5, 5}) {
		t.Error("interior point should match")
	}
	if !rng.Contains([]float64{0, 10}) {
		t.Error("boundary point should match (closed box)")
	}
	if rng.Contains([]float64{11, 5}) {
		t.Error("outside point matched")
	}
	if rng.Contains([]float64{5}) {
		t.Error("short vector matched")
	}

	sph := Selection{Center: []float64{0, 0}, Radius: 5}
	if !sph.Contains([]float64{3, 4}) {
		t.Error("point at distance 5 should match (closed ball)")
	}
	if sph.Contains([]float64{4, 4}) {
		t.Error("point outside ball matched")
	}
}

func TestSelectionGeometry(t *testing.T) {
	rng := Selection{Los: []float64{0, 0}, His: []float64{4, 8}}
	c := rng.Center1()
	if c[0] != 2 || c[1] != 4 {
		t.Errorf("Center1 = %v", c)
	}
	if got := rng.Extent(); got != 3 {
		t.Errorf("Extent = %v, want 3 (mean half-side)", got)
	}
	if got := rng.Volume(); got != 32 {
		t.Errorf("Volume = %v, want 32", got)
	}
	sph := Selection{Center: []float64{0, 0}, Radius: 2}
	if got := sph.Volume(); math.Abs(got-math.Pi*4) > 1e-9 {
		t.Errorf("circle Volume = %v, want %v", got, math.Pi*4)
	}
	sph3 := Selection{Center: []float64{0, 0, 0}, Radius: 1}
	if got := sph3.Volume(); math.Abs(got-4.0/3*math.Pi) > 1e-9 {
		t.Errorf("sphere Volume = %v, want %v", got, 4.0/3*math.Pi)
	}
}

func TestQueryVectorize(t *testing.T) {
	q := Query{
		Select:    Selection{Center: []float64{1, 2, 3}, Radius: 0.5},
		Aggregate: Count,
	}
	v := q.Vectorize(3)
	want := []float64{1, 2, 3, 0.5}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("Vectorize = %v, want %v", v, want)
		}
	}
	// Padding and truncation.
	if got := q.Vectorize(5); len(got) != 6 || got[3] != 0 {
		t.Errorf("padded = %v", got)
	}
	if got := q.Vectorize(2); len(got) != 3 || got[2] != 0.5 {
		t.Errorf("truncated = %v", got)
	}
}

func mkTestRows() []storage.Row {
	// 10 rows: col0 = i, col1 = 2i+1 (exact correlation 1, slope 2).
	rows := make([]storage.Row, 10)
	for i := range rows {
		x := float64(i)
		rows[i] = storage.Row{Key: uint64(i), Vec: []float64{x, 2*x + 1}}
	}
	return rows
}

func TestEvalRowsAggregates(t *testing.T) {
	rows := mkTestRows()
	sel := Selection{Los: []float64{0, 0}, His: []float64{100, 100}}
	tests := []struct {
		name string
		q    Query
		want float64
	}{
		{"count", Query{Select: sel, Aggregate: Count}, 10},
		{"sum", Query{Select: sel, Aggregate: Sum, Col: 0}, 45},
		{"avg", Query{Select: sel, Aggregate: Avg, Col: 0}, 4.5},
		{"var", Query{Select: sel, Aggregate: Var, Col: 0}, 8.25},
		{"corr", Query{Select: sel, Aggregate: Corr, Col: 0, Col2: 1}, 1},
		{"slope", Query{Select: sel, Aggregate: RegSlope, Col: 0, Col2: 1}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := EvalRows(tt.q, rows)
			if math.Abs(got.Value-tt.want) > 1e-9 {
				t.Errorf("Value = %v, want %v", got.Value, tt.want)
			}
			if got.Support != 10 {
				t.Errorf("Support = %d, want 10", got.Support)
			}
		})
	}
}

func TestEvalRowsEmptySubspace(t *testing.T) {
	rows := mkTestRows()
	q := Query{
		Select:    Selection{Los: []float64{500, 500}, His: []float64{600, 600}},
		Aggregate: Avg, Col: 0,
	}
	got := EvalRows(q, rows)
	if got.Support != 0 || got.Value != 0 {
		t.Errorf("empty subspace = %+v", got)
	}
}

func TestPartialMergeMatchesDirect(t *testing.T) {
	rows := mkTestRows()
	sel := Selection{Los: []float64{0, 0}, His: []float64{100, 100}}
	for _, agg := range []Agg{Count, Sum, Avg, Var, Corr, RegSlope} {
		q := Query{Select: sel, Aggregate: agg, Col: 0, Col2: 1}
		direct := EvalRows(q, rows)
		// Split rows across three "nodes".
		partials := [][]float64{
			PartialEval(q, rows[:3]),
			PartialEval(q, rows[3:7]),
			PartialEval(q, rows[7:]),
		}
		merged := MergeEval(q, partials)
		if math.Abs(direct.Value-merged.Value) > 1e-9 || direct.Support != merged.Support {
			t.Errorf("%v: direct %+v != merged %+v", agg, direct, merged)
		}
	}
}

func TestQueryValidate(t *testing.T) {
	good := Query{Select: Selection{Los: []float64{0}, His: []float64{1}}, Aggregate: Count}
	if err := good.Validate(); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	bad := Query{Select: good.Select, Aggregate: Agg(99)}
	if err := bad.Validate(); !errors.Is(err, ErrBadQuery) {
		t.Errorf("bad aggregate err = %v", err)
	}
	if Agg(99).String() == "" || Count.String() != "COUNT" {
		t.Error("Agg.String misbehaves")
	}
}

// Property: merge order never changes the answer.
func TestMergeOrderInvariance(t *testing.T) {
	rows := mkTestRows()
	q := Query{
		Select:    Selection{Los: []float64{0, 0}, His: []float64{100, 100}},
		Aggregate: Var, Col: 1,
	}
	f := func(split uint8) bool {
		s := int(split) % 9
		p1 := PartialEval(q, rows[:s+1])
		p2 := PartialEval(q, rows[s+1:])
		a := MergeEval(q, [][]float64{p1, p2})
		b := MergeEval(q, [][]float64{p2, p1})
		return math.Abs(a.Value-b.Value) < 1e-9 && a.Support == b.Support
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
