package query

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/storage"
)

// benchSink keeps the kernels' results live so the compiler cannot
// dead-code-eliminate a benchmark loop (it will, silently, given the
// chance — an earlier draft of these kernels "ran" at 2700 MRows/s
// that way).
var benchSink float64

func benchColumns(b *testing.B, n int) (storage.ColumnView, []storage.Row) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	cl := cluster.New(2, cluster.DefaultConfig())
	tbl, err := storage.NewTable(cl, "bench", []string{"x", "y", "z"}, 1)
	if err != nil {
		b.Fatal(err)
	}
	rows := make([]storage.Row, n)
	for i := range rows {
		rows[i] = storage.Row{
			Key: uint64(i),
			Vec: []float64{rng.Float64() * 100, rng.Float64() * 100, rng.NormFloat64()},
		}
	}
	if err := tbl.Load(rows); err != nil {
		b.Fatal(err)
	}
	view, _, err := tbl.ScanColumns(0)
	if err != nil {
		b.Fatal(err)
	}
	scanned, _, err := tbl.ScanPartition(0)
	if err != nil {
		b.Fatal(err)
	}
	return view, scanned
}

func benchSelection(selectivity float64) Selection {
	sx := selectivity / 0.9
	return Selection{
		Los: []float64{50 - 50*sx, 5},
		His: []float64{50 + 50*sx, 95},
	}
}

// BenchmarkVecKernels is the kernel-level grid (selectivity ×
// aggregate) contrasting EvalView with the row-at-a-time reference
// EvalRows over identical 1M-row data. mrows/s is the headline.
func BenchmarkVecKernels(b *testing.B) {
	const n = 1 << 20
	view, rows := benchColumns(b, n)
	aggs := []Agg{Count, Sum, Var, Corr}
	for _, sel := range []float64{0.01, 0.10, 0.50} {
		for _, agg := range aggs {
			q := Query{Select: benchSelection(sel), Aggregate: agg, Col: 2, Col2: 0}
			b.Run("vec/"+agg.String()+"/"+pct(sel), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r := EvalView(q, view)
					benchSink += r.Value + float64(r.Support)
				}
				b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "mrows/s")
			})
			b.Run("row/"+agg.String()+"/"+pct(sel), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r := EvalRows(q, rows)
					benchSink += r.Value + float64(r.Support)
				}
				b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "mrows/s")
			})
		}
	}
}

// BenchmarkVecSphere covers the hyper-sphere kernel path.
func BenchmarkVecSphere(b *testing.B) {
	const n = 1 << 20
	view, rows := benchColumns(b, n)
	q := Query{
		Select:    Selection{Center: []float64{50, 50}, Radius: 18},
		Aggregate: Sum, Col: 2,
	}
	b.Run("vec", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := EvalView(q, view)
			benchSink += r.Value
		}
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "mrows/s")
	})
	b.Run("row", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := EvalRows(q, rows)
			benchSink += r.Value
		}
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "mrows/s")
	})
}

func pct(f float64) string {
	switch {
	case f >= 0.5:
		return "sel50"
	case f >= 0.1:
		return "sel10"
	default:
		return "sel1"
	}
}
