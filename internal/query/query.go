// Package query defines the analytical query model of §III.A: selection
// operators that carve out a data subspace (multi-dimensional ranges,
// radius/hyper-sphere selections, and nearest-neighbour selections) paired
// with an analytical operator over the rows inside that subspace
// (descriptive statistics such as COUNT/SUM/AVG, and dependence statistics
// such as correlation and regression coefficients).
//
// The package also defines the query vectorisation used by the SEA agent:
// a query's position in "query space" (RT1.1) is a fixed-width numeric
// vector, so that quantisation and per-quantum models operate on a stable
// geometry.
package query

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/storage"
)

// ErrBadQuery is returned for malformed queries.
var ErrBadQuery = errors.New("query: malformed query")

// Agg identifies the analytical operator applied inside the selected
// subspace.
type Agg int

// Aggregate kinds. Count/Sum/Avg are the descriptive statistics of
// §III.A; Corr and RegSlope are the dependence (multivariate) statistics
// the paper argues present-day systems should expose.
const (
	// Count returns the subspace population.
	Count Agg = iota + 1
	// Sum returns the sum of column Col.
	Sum
	// Avg returns the mean of column Col.
	Avg
	// Var returns the population variance of column Col.
	Var
	// Corr returns the Pearson correlation between Col and Col2.
	Corr
	// RegSlope returns the OLS slope of Col2 regressed on Col.
	RegSlope
)

// String names the aggregate.
func (a Agg) String() string {
	switch a {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	case Var:
		return "VAR"
	case Corr:
		return "CORR"
	case RegSlope:
		return "REGSLOPE"
	default:
		return fmt.Sprintf("Agg(%d)", int(a))
	}
}

// Selection is a data-subspace selector: either an axis-aligned range
// (hyper-rectangle) or a centre+radius (hyper-sphere). Exactly one form
// is active: a radius selection has Radius > 0.
type Selection struct {
	// Los/His bound a hyper-rectangle when Radius == 0.
	Los, His []float64
	// Center and Radius define a hyper-sphere when Radius > 0.
	Center []float64
	Radius float64
}

// IsRadius reports whether the selection is a hyper-sphere.
func (s Selection) IsRadius() bool { return s.Radius > 0 }

// Dims returns the selection's dimensionality.
func (s Selection) Dims() int {
	if s.IsRadius() {
		return len(s.Center)
	}
	return len(s.Los)
}

// Validate checks structural invariants.
func (s Selection) Validate() error {
	if s.IsRadius() {
		if len(s.Center) == 0 {
			return fmt.Errorf("%w: radius selection without centre", ErrBadQuery)
		}
		return nil
	}
	if len(s.Los) == 0 || len(s.Los) != len(s.His) {
		return fmt.Errorf("%w: range selection lo/hi widths %d/%d",
			ErrBadQuery, len(s.Los), len(s.His))
	}
	for i := range s.Los {
		if s.Los[i] > s.His[i] {
			return fmt.Errorf("%w: dimension %d has lo > hi", ErrBadQuery, i)
		}
	}
	return nil
}

// Contains reports whether point p (attribute vector) lies inside the
// selection. Points with fewer dimensions than the selection never match.
func (s Selection) Contains(p []float64) bool {
	if s.IsRadius() {
		if len(p) < len(s.Center) {
			return false
		}
		var d2 float64
		for i, c := range s.Center {
			d := p[i] - c
			d2 += d * d
		}
		return d2 <= s.Radius*s.Radius
	}
	if len(p) < len(s.Los) {
		return false
	}
	for i := range s.Los {
		if p[i] < s.Los[i] || p[i] > s.His[i] {
			return false
		}
	}
	return true
}

// Center1 returns the selection's centre point (midpoint for ranges).
func (s Selection) Center1() []float64 {
	if s.IsRadius() {
		out := make([]float64, len(s.Center))
		copy(out, s.Center)
		return out
	}
	out := make([]float64, len(s.Los))
	for i := range out {
		out[i] = (s.Los[i] + s.His[i]) / 2
	}
	return out
}

// Extent returns a scalar size proxy: the radius for spheres, half the
// mean side length for rectangles.
func (s Selection) Extent() float64 {
	if s.IsRadius() {
		return s.Radius
	}
	if len(s.Los) == 0 {
		return 0
	}
	var sum float64
	for i := range s.Los {
		sum += s.His[i] - s.Los[i]
	}
	return sum / float64(2*len(s.Los))
}

// Volume returns the selection's geometric volume (hyper-rectangle
// product, or the d-ball volume for radius selections).
func (s Selection) Volume() float64 {
	if s.IsRadius() {
		d := float64(len(s.Center))
		// V_d(r) = pi^(d/2) r^d / Gamma(d/2+1)
		return math.Pow(math.Pi, d/2) * math.Pow(s.Radius, d) / gammaHalf(len(s.Center))
	}
	v := 1.0
	for i := range s.Los {
		v *= s.His[i] - s.Los[i]
	}
	return v
}

func gammaHalf(d int) float64 {
	// Gamma(d/2 + 1)
	if d%2 == 0 {
		// (d/2)!
		out := 1.0
		for i := 2; i <= d/2; i++ {
			out *= float64(i)
		}
		return out
	}
	// Gamma(n + 1/2) = (2n)! / (4^n n!) * sqrt(pi), with n = (d+1)/2
	n := (d + 1) / 2
	num := 1.0
	for i := 2; i <= 2*n; i++ {
		num *= float64(i)
	}
	den := math.Pow(4, float64(n))
	for i := 2; i <= n; i++ {
		den *= float64(i)
	}
	return num / den * math.Sqrt(math.Pi)
}

// Query is a full analytical query: a subspace selection plus an
// aggregate over it.
type Query struct {
	// Select carves out the data subspace.
	Select Selection
	// Aggregate is the analytical operator.
	Aggregate Agg
	// Col is the aggregate's primary column (ignored for Count).
	Col int
	// Col2 is the second column for Corr/RegSlope.
	Col2 int
	// Deadline is the absolute wall-clock instant by which the
	// coordinator's caller stops waiting; zero means none. It rides on
	// the query so every execution layer (scheduler, agent, scatter)
	// can clamp its own work without widening their interfaces. It is a
	// request attribute, not query identity: serve.Key excludes it, and
	// two queries differing only in Deadline are the same query.
	Deadline time.Time
}

// Validate checks structural invariants.
func (q Query) Validate() error {
	if err := q.Select.Validate(); err != nil {
		return err
	}
	switch q.Aggregate {
	case Count, Sum, Avg, Var, Corr, RegSlope:
	default:
		return fmt.Errorf("%w: unknown aggregate %d", ErrBadQuery, int(q.Aggregate))
	}
	return nil
}

// ValidateCols checks the aggregate's column references against a
// table width at the evaluation boundary. Without this check, colVal
// silently reads 0 for out-of-range columns — a malformed query would
// produce a well-formed-looking answer instead of an error.
func (q Query) ValidateCols(width int) error {
	switch q.Aggregate {
	case Sum, Avg, Var:
		if q.Col < 0 || q.Col >= width {
			return fmt.Errorf("%w: %s column %d out of range for %d-column table",
				ErrBadQuery, q.Aggregate, q.Col, width)
		}
	case Corr, RegSlope:
		if q.Col < 0 || q.Col >= width {
			return fmt.Errorf("%w: %s column %d out of range for %d-column table",
				ErrBadQuery, q.Aggregate, q.Col, width)
		}
		if q.Col2 < 0 || q.Col2 >= width {
			return fmt.Errorf("%w: %s second column %d out of range for %d-column table",
				ErrBadQuery, q.Aggregate, q.Col2, width)
		}
	}
	return nil
}

// Vectorize maps the query to its position in query space: centre
// coordinates followed by the extent. This is the representation the SEA
// agent quantises (RT1.1) and its per-quantum models regress over
// (RT1.3). dims pads/truncates the centre to a fixed width so that all
// queries share one geometry.
func (q Query) Vectorize(dims int) []float64 {
	return q.VectorizeInto(make([]float64, 0, dims+1), dims)
}

// VectorizeInto appends the query vector (centre..., extent) to dst and
// returns it — the allocation-free variant the agent's prediction fast
// path uses with a reusable scratch buffer (pass dst[:0] with capacity
// dims+1).
func (q Query) VectorizeInto(dst []float64, dims int) []float64 {
	s := q.Select
	if s.IsRadius() {
		for i := 0; i < dims; i++ {
			if i < len(s.Center) {
				dst = append(dst, s.Center[i])
			} else {
				dst = append(dst, 0)
			}
		}
	} else {
		for i := 0; i < dims; i++ {
			if i < len(s.Los) && i < len(s.His) {
				dst = append(dst, (s.Los[i]+s.His[i])/2)
			} else {
				dst = append(dst, 0)
			}
		}
	}
	return append(dst, s.Extent())
}

// Result is an executed query's answer.
type Result struct {
	// Value is the aggregate's value.
	Value float64
	// Support is the number of rows inside the subspace.
	Support int64
	// Degraded marks an answer merged from a strict subset of the
	// partition space after every holder of the missing partitions
	// failed; Coverage is then the fraction of partitions that did
	// contribute (0 < Coverage < 1). Both are zero on a full answer.
	Degraded bool
	Coverage float64
}

// EvalRows computes the query's exact answer over the given rows (the
// per-node kernel shared by every execution paradigm).
func EvalRows(q Query, rows []storage.Row) Result {
	var n int64
	var sum, sum2 float64
	var sx, sy, sxx, sxy, syy float64
	for _, r := range rows {
		if !q.Select.Contains(r.Vec) {
			continue
		}
		n++
		switch q.Aggregate {
		case Sum, Avg, Var:
			v := colVal(r, q.Col)
			sum += v
			sum2 += v * v
		case Corr, RegSlope:
			x := colVal(r, q.Col)
			y := colVal(r, q.Col2)
			sx += x
			sy += y
			sxx += x * x
			sxy += x * y
			syy += y * y
		}
	}
	return finishAgg(q, aggState{n: n, sum: sum, sum2: sum2, sx: sx, sy: sy, sxx: sxx, sxy: sxy, syy: syy})
}

func colVal(r storage.Row, col int) float64 {
	if col < 0 || col >= len(r.Vec) {
		return 0
	}
	return r.Vec[col]
}

// aggState is the mergeable sufficient statistic for every supported
// aggregate; partial states from different nodes combine with merge().
// Its existence is why all of the paper's aggregates distribute cleanly
// over both execution paradigms.
type aggState struct {
	n                     int64
	sum, sum2             float64
	sx, sy, sxx, sxy, syy float64
}

func (a aggState) merge(b aggState) aggState {
	return aggState{
		n:   a.n + b.n,
		sum: a.sum + b.sum, sum2: a.sum2 + b.sum2,
		sx: a.sx + b.sx, sy: a.sy + b.sy,
		sxx: a.sxx + b.sxx, sxy: a.sxy + b.sxy, syy: a.syy + b.syy,
	}
}

// PartialEval computes a node-local aggregate state for q over rows.
func PartialEval(q Query, rows []storage.Row) []float64 {
	var st aggState
	for _, r := range rows {
		if !q.Select.Contains(r.Vec) {
			continue
		}
		st.n++
		switch q.Aggregate {
		case Sum, Avg, Var:
			v := colVal(r, q.Col)
			st.sum += v
			st.sum2 += v * v
		case Corr, RegSlope:
			x := colVal(r, q.Col)
			y := colVal(r, q.Col2)
			st.sx += x
			st.sy += y
			st.sxx += x * x
			st.sxy += x * y
			st.syy += y * y
		}
	}
	return st.encode()
}

func (a aggState) encode() []float64 {
	return []float64{float64(a.n), a.sum, a.sum2, a.sx, a.sy, a.sxx, a.sxy, a.syy}
}

func decodeState(v []float64) aggState {
	var a aggState
	if len(v) >= 8 {
		a.n = int64(v[0])
		a.sum, a.sum2 = v[1], v[2]
		a.sx, a.sy, a.sxx, a.sxy, a.syy = v[3], v[4], v[5], v[6], v[7]
	}
	return a
}

// MergeEval combines node-local states (as produced by PartialEval) into
// the final result.
func MergeEval(q Query, partials [][]float64) Result {
	var st aggState
	for _, p := range partials {
		st = st.merge(decodeState(p))
	}
	return finishAgg(q, st)
}

func finishAgg(q Query, st aggState) Result {
	res := Result{Support: st.n}
	if st.n == 0 {
		return res
	}
	nf := float64(st.n)
	switch q.Aggregate {
	case Count:
		res.Value = nf
	case Sum:
		res.Value = st.sum
	case Avg:
		res.Value = st.sum / nf
	case Var:
		// sum2/n - m² can go (slightly or catastrophically) negative on
		// mean-dominated data; a variance is never negative, so clamp.
		m := st.sum / nf
		res.Value = clampNonNeg(st.sum2/nf - m*m)
	case Corr:
		// The same cancellation can push either variance term negative,
		// which used to surface as NaN (sqrt of a negative). Clamp both:
		// a non-positive variance means the correlation is undefined and
		// the result stays 0.
		num := nf*st.sxy - st.sx*st.sy
		den := math.Sqrt(clampNonNeg(nf*st.sxx-st.sx*st.sx)) *
			math.Sqrt(clampNonNeg(nf*st.syy-st.sy*st.sy))
		if den != 0 {
			res.Value = num / den
		}
	case RegSlope:
		den := nf*st.sxx - st.sx*st.sx
		if den > 0 {
			res.Value = (nf*st.sxy - st.sx*st.sy) / den
		}
	}
	return res
}

// Extrapolate marks a partially-covered merge as degraded and
// extrapolates it to the full partition space. Rows land in partitions
// by key hash, so a missing partition is a uniform random sample of the
// subspace: the additive aggregates (COUNT, SUM) scale by 1/coverage to
// stay unbiased, while the ratio statistics (AVG, VAR, CORR, REGSLOPE)
// are already unbiased on the covered rows and keep their merged value.
// Support always reports the rows actually observed, not the estimate.
func Extrapolate(q Query, r Result, coverage float64) Result {
	if coverage <= 0 || coverage >= 1 {
		return r
	}
	r.Degraded = true
	r.Coverage = coverage
	switch q.Aggregate {
	case Count, Sum:
		r.Value /= coverage
	}
	return r
}

// clampNonNeg floors a variance/covariance term at zero: catastrophic
// cancellation in raw-moment arithmetic can drive a mathematically
// non-negative quantity negative.
func clampNonNeg(v float64) float64 {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	return v
}
