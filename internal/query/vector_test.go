package query

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/storage"
)

var allAggs = []Agg{Count, Sum, Avg, Var, Corr, RegSlope}

func vecTestTable(t *testing.T, rng *rand.Rand, nRows, width, nParts int, ranged bool) *storage.Table {
	t.Helper()
	cl := cluster.New(4, cluster.DefaultConfig())
	cols := make([]string, width)
	for j := range cols {
		cols[j] = string(rune('a' + j))
	}
	var opts []storage.Option
	if ranged {
		bounds := make([]float64, nParts-1)
		for i := range bounds {
			bounds[i] = 100 * float64(i+1) / float64(nParts)
		}
		opts = append(opts, storage.WithRangePartitioning(bounds))
	}
	tbl, err := storage.NewTable(cl, "vec", cols, nParts, opts...)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]storage.Row, nRows)
	for i := range rows {
		vec := make([]float64, width)
		for j := range vec {
			vec[j] = rng.Float64() * 100
		}
		rows[i] = storage.Row{Key: uint64(i + 1), Vec: vec}
	}
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func randSelection(rng *rand.Rand, width int) Selection {
	dims := 1 + rng.Intn(width)
	if rng.Intn(8) == 0 {
		dims = width + 1 // wider than any row: must match nothing
	}
	if rng.Intn(2) == 0 {
		c := make([]float64, dims)
		for j := range c {
			c[j] = rng.Float64() * 100
		}
		return Selection{Center: c, Radius: 5 + rng.Float64()*40}
	}
	los := make([]float64, dims)
	his := make([]float64, dims)
	for j := range los {
		a, b := rng.Float64()*100, rng.Float64()*100
		if a > b {
			a, b = b, a
		}
		los[j], his[j] = a, b
	}
	return Selection{Los: los, His: his}
}

// rowReference computes the row-at-a-time reference answer and the
// per-partition reference partials (PartialEval merged with MergeEval —
// the retained correctness oracle).
func rowReference(t *testing.T, q Query, tbl *storage.Table) (Result, [][]float64) {
	t.Helper()
	partials := make([][]float64, tbl.Partitions())
	for p := 0; p < tbl.Partitions(); p++ {
		rows, _, err := tbl.ScanPartition(p)
		if err != nil {
			t.Fatal(err)
		}
		partials[p] = PartialEval(q, rows)
	}
	return MergeEval(q, partials), partials
}

// TestVectorizedEquivalenceProperty is the central property of the
// vectorized engine: across random tables (hash- and range-
// partitioned), random selections (rectangles and spheres, including
// ones wider than the rows) and all six aggregates, the vectorized path
// must agree with the row-at-a-time reference — bit-identically for
// COUNT/SUM/AVG (the kernels accumulate first-order sums in the same
// order), and within an explicit 1e-9 relative tolerance for
// VAR/CORR/REGSLOPE, whose second-order moments the kernels
// deliberately accumulate in a shifted frame.
func TestVectorizedEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		width := 2 + rng.Intn(3)
		nParts := 2 + rng.Intn(6)
		ranged := rng.Intn(2) == 0
		tbl := vecTestTable(t, rng, 300+rng.Intn(1200), width, nParts, ranged)
		q := Query{
			Select:    randSelection(rng, width),
			Aggregate: allAggs[rng.Intn(len(allAggs))],
			Col:       rng.Intn(width),
			Col2:      rng.Intn(width),
		}
		ref, refPartials := rowReference(t, q, tbl)

		// Per-partition: vectorized partials against the reference.
		for p := 0; p < tbl.Partitions(); p++ {
			view, _, err := tbl.ScanColumns(p)
			if err != nil {
				t.Fatal(err)
			}
			got := PartialEvalView(q, view)
			want := refPartials[p]
			if got[0] != want[0] {
				t.Fatalf("trial %d part %d: n %v != %v (q=%+v)", trial, p, got[0], want[0], q)
			}
			// Slots the aggregate's finish consumes (the vectorized
			// partial leaves unused slots zero): [1]=sum, [2]=sum2,
			// [3]=sx, [4]=sy, [5]=sxx, [6]=sxy, [7]=syy.
			var exact, approx []int
			switch q.Aggregate {
			case Sum, Avg:
				exact = []int{1}
			case Var:
				exact, approx = []int{1}, []int{2}
			case Corr:
				exact, approx = []int{3, 4}, []int{5, 6, 7}
			case RegSlope:
				exact, approx = []int{3, 4}, []int{5, 6}
			}
			// Raw first-order sums are order-identical.
			for _, s := range exact {
				if got[s] != want[s] {
					t.Fatalf("trial %d part %d slot %d: first-order sum %v != %v (q=%+v)",
						trial, p, s, got[s], want[s], q)
				}
			}
			for _, s := range approx {
				if d := math.Abs(got[s] - want[s]); d > 1e-9*math.Max(1, math.Abs(want[s])) {
					t.Fatalf("trial %d part %d slot %d: %v != %v (q=%+v)", trial, p, s, got[s], want[s], q)
				}
			}
		}

		// End to end, with pruning and parallel workers.
		got, stats, err := EvalTable(q, tbl)
		if err != nil {
			t.Fatal(err)
		}
		if got.Support != ref.Support {
			t.Fatalf("trial %d: support %d != %d (q=%+v)", trial, got.Support, ref.Support, q)
		}
		switch q.Aggregate {
		case Count, Sum, Avg:
			if got.Value != ref.Value {
				t.Fatalf("trial %d: %s = %v, want bit-identical %v (q=%+v)",
					trial, q.Aggregate, got.Value, ref.Value, q)
			}
		default:
			if d := math.Abs(got.Value - ref.Value); d > 1e-9*math.Max(1, math.Abs(ref.Value)) {
				t.Fatalf("trial %d: %s = %v, want %v within 1e-9 rel (q=%+v)",
					trial, q.Aggregate, got.Value, ref.Value, q)
			}
		}
		if stats.PartsScanned+stats.PartsPruned != tbl.Partitions() {
			t.Fatalf("trial %d: stats %+v don't cover %d partitions", trial, stats, tbl.Partitions())
		}
	}
}

// TestZoneMapPruningComplete asserts the acceptance property on a
// range-partitioned table: zone-map pruning skips 100% of the
// partitions whose data cannot intersect the selection, and never skips
// one holding a matching row.
func TestZoneMapPruningComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const nParts = 8
	tbl := vecTestTable(t, rng, 4000, 3, nParts, true)

	sels := []Selection{
		{Los: []float64{10, 0, 0}, His: []float64{20, 100, 100}},       // one range stripe
		{Los: []float64{40, 20, 0}, His: []float64{70, 60, 100}},       // a few stripes
		{Center: []float64{30, 50, 50}, Radius: 8},                     // sphere
		{Los: []float64{200, 0, 0}, His: []float64{300, 100, 100}},     // off the data: prune all
		{Los: []float64{0, 0, 0, 0}, His: []float64{100, 100, 100, 0}}, // wider than rows: prune all
	}
	for si, sel := range sels {
		candidates, pruned := Prune(tbl, sel)
		if len(candidates)+pruned != nParts {
			t.Fatalf("sel %d: %d candidates + %d pruned != %d", si, len(candidates), pruned, nParts)
		}
		inCand := make(map[int]bool, len(candidates))
		for _, p := range candidates {
			inCand[p] = true
		}
		for p := 0; p < nParts; p++ {
			rows, _, err := tbl.ScanPartition(p)
			if err != nil {
				t.Fatal(err)
			}
			// Geometric intersection with the partition's actual data box.
			intersects := zoneFromRows(rows, sel)
			hasMatch := false
			for _, r := range rows {
				if sel.Contains(r.Vec) {
					hasMatch = true
					break
				}
			}
			if hasMatch && !inCand[p] {
				t.Fatalf("sel %d: partition %d holds matches but was pruned", si, p)
			}
			if !intersects && inCand[p] {
				t.Fatalf("sel %d: partition %d cannot intersect but was kept", si, p)
			}
		}
	}
}

// zoneFromRows recomputes, independently of the storage layer, whether
// the rows' bounding box can intersect sel.
func zoneFromRows(rows []storage.Row, sel Selection) bool {
	if len(rows) == 0 {
		return false
	}
	mins := append([]float64(nil), rows[0].Vec...)
	maxs := append([]float64(nil), rows[0].Vec...)
	for _, r := range rows[1:] {
		for j, v := range r.Vec {
			if v < mins[j] {
				mins[j] = v
			}
			if v > maxs[j] {
				maxs[j] = v
			}
		}
	}
	return ZoneCanMatch(sel, storage.ZoneMap{Mins: mins, Maxs: maxs, Rows: len(rows)})
}

// TestShiftedFrameStability is the mean ≫ spread regression: naive
// sum-of-squares arithmetic loses all significant digits (and used to
// go catastrophically negative / NaN). The shifted-frame kernels must
// recover the true statistics, and the clamped raw-moment finish must
// never return a negative variance or a NaN correlation.
func TestShiftedFrameStability(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 4000
	const mean = 1e9
	rows := make([]storage.Row, n)
	var xs, ys []float64
	for i := range rows {
		x := mean + rng.Float64() // spread 1, mean 1e9
		y := mean/2 + 0.5*(x-mean) + 0.01*rng.NormFloat64()
		rows[i] = storage.Row{Key: uint64(i + 1), Vec: []float64{x, y}}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	cl := cluster.New(2, cluster.DefaultConfig())
	tbl, err := storage.NewTable(cl, "highmean", []string{"x", "y"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	sel := Selection{Los: []float64{0, 0}, His: []float64{2 * mean, 2 * mean}}

	trueVar := twoPassVar(xs)
	trueCorr := twoPassCorr(xs, ys)

	qv := Query{Select: sel, Aggregate: Var, Col: 0}
	got, _, err := EvalTable(qv, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if got.Support != n {
		t.Fatalf("support %d != %d", got.Support, n)
	}
	if rel := math.Abs(got.Value-trueVar) / trueVar; rel > 1e-6 {
		t.Fatalf("vectorized Var = %v, truth %v (rel err %v)", got.Value, trueVar, rel)
	}

	qc := Query{Select: sel, Aggregate: Corr, Col: 0, Col2: 1}
	gotC, _, err := EvalTable(qc, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotC.Value-trueCorr) > 1e-3 {
		t.Fatalf("vectorized Corr = %v, truth %v", gotC.Value, trueCorr)
	}

	// The raw-moment reference path: inaccurate at this conditioning by
	// construction, but the finish-time clamp must keep it sane.
	for _, q := range []Query{qv, qc, {Select: sel, Aggregate: RegSlope, Col: 0, Col2: 1}} {
		ref := EvalRows(q, rows)
		if math.IsNaN(ref.Value) || math.IsInf(ref.Value, 0) {
			t.Fatalf("row-path %s = %v, want finite", q.Aggregate, ref.Value)
		}
		if q.Aggregate == Var && ref.Value < 0 {
			t.Fatalf("row-path Var = %v, want clamped >= 0", ref.Value)
		}
	}
}

func twoPassVar(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

func twoPassCorr(xs, ys []float64) float64 {
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= float64(len(xs))
	my /= float64(len(ys))
	var sxx, syy, sxy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	return sxy / math.Sqrt(sxx*syy)
}

// TestNaNParity pins the kernels to the reference's NaN semantics: a
// NaN coordinate fails both exclusion comparisons in Contains and so
// MATCHES any rectangle (and fails the sphere's distance test). The
// vectorized path must agree, and zone maps over NaN-bearing
// partitions must stop pruning (min/max cannot bound NaN).
func TestNaNParity(t *testing.T) {
	nan := math.NaN()
	cl := cluster.New(2, cluster.DefaultConfig())
	tbl, err := storage.NewTable(cl, "nan", []string{"x", "y"}, 2,
		storage.WithRangePartitioning([]float64{50}))
	if err != nil {
		t.Fatal(err)
	}
	rows := []storage.Row{
		{Key: 1, Vec: []float64{10, 10}},
		{Key: 2, Vec: []float64{nan, 10}}, // NaN routes to partition 0 (comparisons false)
		{Key: 3, Vec: []float64{90, 90}},
		{Key: 4, Vec: []float64{90, nan}},
	}
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	sels := []Selection{
		{Los: []float64{80, 80}, His: []float64{95, 95}},     // away from partition 0's numbers
		{Los: []float64{0, 0}, His: []float64{20, 20}},       //
		{Center: []float64{90, 90}, Radius: 5},               // sphere: NaN never matches
		{Los: []float64{200, 200}, His: []float64{300, 300}}, // matches only via NaN wildcards
	}
	for si, sel := range sels {
		for _, agg := range allAggs {
			q := Query{Select: sel, Aggregate: agg, Col: 1, Col2: 0}
			ref, _ := rowReference(t, q, tbl)
			got, _, err := EvalTable(q, tbl)
			if err != nil {
				t.Fatal(err)
			}
			if got.Support != ref.Support {
				t.Errorf("sel %d %s: support %d != reference %d", si, agg, got.Support, ref.Support)
			}
			// Values may legitimately both be NaN (NaN rows selected into
			// the aggregate column); require agreement in NaN-ness and
			// otherwise tolerance.
			switch {
			case math.IsNaN(ref.Value) != math.IsNaN(got.Value):
				t.Errorf("sel %d %s: NaN-ness differs: vec %v, ref %v", si, agg, got.Value, ref.Value)
			case !math.IsNaN(ref.Value):
				if d := math.Abs(got.Value - ref.Value); d > 1e-9*math.Max(1, math.Abs(ref.Value)) {
					t.Errorf("sel %d %s: %v != %v", si, agg, got.Value, ref.Value)
				}
			}
		}
	}
}

func TestValidateCols(t *testing.T) {
	sel := Selection{Los: []float64{0}, His: []float64{100}}
	cases := []struct {
		q     Query
		width int
		ok    bool
	}{
		{Query{Select: sel, Aggregate: Count, Col: 99}, 3, true}, // Count ignores Col
		{Query{Select: sel, Aggregate: Sum, Col: 2}, 3, true},
		{Query{Select: sel, Aggregate: Sum, Col: 3}, 3, false},
		{Query{Select: sel, Aggregate: Sum, Col: -1}, 3, false},
		{Query{Select: sel, Aggregate: Corr, Col: 0, Col2: 2}, 3, true},
		{Query{Select: sel, Aggregate: Corr, Col: 0, Col2: 3}, 3, false},
		{Query{Select: sel, Aggregate: RegSlope, Col: 5, Col2: 0}, 3, false},
	}
	for i, c := range cases {
		err := c.q.ValidateCols(c.width)
		if c.ok && err != nil {
			t.Errorf("case %d: unexpected error %v", i, err)
		}
		if !c.ok {
			if !errors.Is(err, ErrBadQuery) {
				t.Errorf("case %d: err = %v, want ErrBadQuery", i, err)
			}
		}
	}

	// The evaluation boundary rejects, rather than silently answering 0.
	rng := rand.New(rand.NewSource(3))
	tbl := vecTestTable(t, rng, 100, 3, 2, false)
	_, _, err := EvalTable(Query{Select: Selection{Los: []float64{0, 0}, His: []float64{100, 100}}, Aggregate: Sum, Col: 7}, tbl)
	if !errors.Is(err, ErrBadQuery) {
		t.Fatalf("EvalTable err = %v, want ErrBadQuery", err)
	}
}

// FuzzSelectIndices cross-checks the block selection kernels against
// Selection.Contains on arbitrary selection geometry.
func FuzzSelectIndices(f *testing.F) {
	f.Add(10.0, 60.0, 30.0, 70.0, 15.0, false)
	f.Add(50.0, 50.0, 10.0, 0.0, 20.0, true)
	f.Add(-5.0, 5.0, 90.0, 120.0, 3.0, true)

	rng := rand.New(rand.NewSource(99))
	cl := cluster.New(2, cluster.DefaultConfig())
	tbl, err := storage.NewTable(cl, "fuzz", []string{"x", "y"}, 1)
	if err != nil {
		f.Fatal(err)
	}
	rows := make([]storage.Row, 3000)
	for i := range rows {
		rows[i] = storage.Row{Key: uint64(i), Vec: []float64{rng.Float64() * 100, rng.Float64() * 100}}
	}
	if err := tbl.Load(rows); err != nil {
		f.Fatal(err)
	}
	view, _, err := tbl.ScanColumns(0)
	if err != nil {
		f.Fatal(err)
	}
	scanned, _, err := tbl.ScanPartition(0)
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, a, b, c, d, r float64, radius bool) {
		var sel Selection
		if radius {
			if math.IsNaN(r) || r <= 0 || r > 1e9 {
				r = 10
			}
			sel = Selection{Center: []float64{a, b}, Radius: r}
		} else {
			if a > c {
				a, c = c, a
			}
			if b > d {
				b, d = d, b
			}
			sel = Selection{Los: []float64{a, b}, His: []float64{c, d}}
		}
		if sel.Validate() != nil {
			t.Skip()
		}
		got := SelectIndices(sel, view)
		var want []int
		for i, row := range scanned {
			if sel.Contains(row.Vec) {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("sel %+v: %d selected, want %d", sel, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("sel %+v: index %d: %d != %d", sel, i, got[i], want[i])
			}
		}
	})
}
