// Vectorized columnar execution: the batch kernels behind the exact
// path. Instead of walking []storage.Row one row at a time through
// Selection.Contains (a function call and a pointer chase per row), the
// kernels stream the partition's contiguous columnar projection in
// blocks of VecBlock rows through two phases:
//
//  1. Selection: a reusable per-block match-mask vector is filled
//     branchlessly — hyper-rectangles run one min/max pass per column
//     (each pass ANDs its verdict into the mask via a conditional move,
//     never a data-dependent branch), hyper-spheres accumulate squared
//     distances into a fused block accumulator and threshold it.
//  2. Aggregation: the aggregate's sufficient statistics fold over the
//     block under the mask, again branchlessly — non-matching rows
//     contribute an exact 0 through bit-masking — without ever
//     materialising a storage.Row.
//
// Branchlessness is the point: at mid selectivities a data-dependent
// branch mispredicts constantly, and measured on scalar Go codegen the
// branchy formulations run an order of magnitude slower than the
// mask-vector form (the E16 microbenchmarks document the end-to-end
// effect). SelectIndices exposes the selection phase alone for
// consumers that need row positions rather than an aggregate.
//
// Numerical frame: second-order moments (VAR/CORR/REGSLOPE) accumulate
// in a shifted frame — values are centred on a data-scale pivot (the
// view's first value of the aggregated column) before squaring — which
// keeps the partial sums at spread scale instead of mean² scale. Raw
// moments are reconstructed only at the mergeable-state boundary
// (PartialEvalView), where the distributed wire format requires them;
// EvalView and EvalTable finish directly in the shifted frame and stay
// accurate even when the mean dwarfs the spread. First-order sums
// accumulate raw and in row order, so COUNT, SUM and AVG are
// bit-identical to the row-at-a-time reference, which is retained as
// the correctness oracle (EvalRows/PartialEval).
//
// Per-query scratch (the match mask and the spheres' distance
// accumulator) comes from a sync.Pool, so the hot path is
// allocation-free after warm-up.
package query

import (
	"errors"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/storage"
)

// VecBlock is the number of rows a selection kernel processes per
// block: large enough to amortise per-block overhead, small enough that
// a block's column segments, match mask and distance accumulator all
// stay in L1.
const VecBlock = 1024

// vecScratch is the pooled per-query scratch buffer.
type vecScratch struct {
	mask []uint64  // per-row match mask for the current block (0 or ^0)
	d2   []float64 // fused distance accumulator (hyper-sphere kernel)
}

var vecPool = sync.Pool{New: func() any {
	return &vecScratch{
		mask: make([]uint64, VecBlock),
		d2:   make([]float64, VecBlock),
	}
}}

// b2u converts a comparison verdict to 0/1 without a branch: the
// compiler lowers this pattern to a flag materialisation (SETcc), which
// is the cornerstone of every kernel below — a data-dependent branch at
// mid selectivity mispredicts constantly and measures an order of
// magnitude slower than the arithmetic form.
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// rectBlockMask fills the match mask for rows [start, end) of a
// hyper-rectangle selection: the leading dimension's pass sets the
// mask, every further dimension ANDs its verdict in, branchlessly. The
// verdict uses the reference's exclusion form (`v < lo || v > hi`
// rejects), so NaN coordinates — which fail every comparison — match
// exactly as they do in Selection.Contains.
func rectBlockMask(s Selection, cols [][]float64, start, end int, mask []uint64) []uint64 {
	mask = mask[:end-start]
	c0 := cols[0][start:end]
	lo0, hi0 := s.Los[0], s.His[0]
	for i, v := range c0 {
		mask[i] = (b2u(v < lo0) | b2u(v > hi0)) - 1
	}
	for j := 1; j < len(s.Los); j++ {
		cj := cols[j][start:end]
		lo, hi := s.Los[j], s.His[j]
		for i, w := range cj {
			mask[i] &= (b2u(w < lo) | b2u(w > hi)) - 1
		}
	}
	return mask
}

// sphereBlockD2 accumulates squared distances for rows [start, end)
// into d2, one fused pass per dimension — the same per-row addition
// order as Selection.Contains, so membership decisions are
// bit-identical to the reference.
func sphereBlockD2(s Selection, cols [][]float64, start, end int, d2 []float64) []float64 {
	d2 = d2[:end-start]
	for i := range d2 {
		d2[i] = 0
	}
	for j, c := range s.Center {
		cj := cols[j][start:end]
		for i, w := range cj {
			d := w - c
			d2[i] += d * d
		}
	}
	return d2
}

// sphereBlockMask thresholds the distance accumulator into the mask.
func sphereBlockMask(s Selection, cols [][]float64, start, end int, sc *vecScratch) []uint64 {
	d2 := sphereBlockD2(s, cols, start, end, sc.d2)
	r2 := s.Radius * s.Radius
	mask := sc.mask[:len(d2)]
	for i, dv := range d2 {
		mask[i] = -b2u(dv <= r2)
	}
	return mask
}

// blockMask dispatches to the rectangle or sphere mask kernel.
func blockMask(s Selection, cols [][]float64, start, end int, sc *vecScratch) []uint64 {
	if s.IsRadius() {
		return sphereBlockMask(s, cols, start, end, sc)
	}
	return rectBlockMask(s, cols, start, end, sc.mask)
}

// SelectIndices returns the indices of every row in view matching s, in
// row order — the selection phase alone, for callers that need row
// positions (e.g. sample scans materialising matches) rather than an
// aggregate.
func SelectIndices(s Selection, view storage.ColumnView) []int {
	if s.Dims() > view.Width() || view.Len() == 0 {
		return nil
	}
	if !s.IsRadius() && len(s.Los) == 0 {
		out := make([]int, view.Len())
		for i := range out {
			out[i] = i
		}
		return out
	}
	sc := vecPool.Get().(*vecScratch)
	defer vecPool.Put(sc)
	var out []int
	n := view.Len()
	for start := 0; start < n; start += VecBlock {
		end := start + VecBlock
		if end > n {
			end = n
		}
		mask := blockMask(s, view.Cols, start, end, sc)
		for i, m := range mask {
			if m != 0 {
				out = append(out, start+i)
			}
		}
	}
	return out
}

// vecState is the shifted-frame sufficient statistic the batch kernels
// accumulate: n and the raw first-order sums (row order, bit-compatible
// with the reference), plus centred second-order sums at spread scale.
type vecState struct {
	n        int64
	sum      float64 // raw Σx (column Col), row order
	sumY     float64 // raw Σy (column Col2), row order
	cx, cy   float64 // shifts: first selected values of Col / Col2
	seeded   bool
	sx, sy   float64 // Σ(x-cx), Σ(y-cy)
	sxx, syy float64 // Σ(x-cx)², Σ(y-cy)²
	sxy      float64 // Σ(x-cx)(y-cy)
}

// aggCols resolves the aggregate's columns (nil for out-of-range: the
// reference reads 0 there).
func aggCols(q Query, cols [][]float64) (colX, colY []float64) {
	if q.Col >= 0 && q.Col < len(cols) {
		colX = cols[q.Col]
	}
	if q.Col2 >= 0 && q.Col2 < len(cols) {
		colY = cols[q.Col2]
	}
	return colX, colY
}

// maskedCount counts the set lanes of a block mask.
func maskedCount(mask []uint64) int64 {
	var n int64
	for _, m := range mask {
		n += int64(m & 1)
	}
	return n
}

// maskTo0 passes v through for matched lanes and yields an exact +0 for
// unmatched ones (bit-masking, so a NaN or Inf in an unselected row
// cannot pollute the accumulators).
func maskTo0(v float64, m uint64) float64 {
	return math.Float64frombits(math.Float64bits(v) & m)
}

// maskedFold1 folds one block of the single-column moment state under
// the mask: the raw sum adds v or an exact +0 per lane (so SUM stays
// bit-identical to the reference, which skips non-matching rows), the
// shifted sums add (v - pivot) or +0.
func (st *vecState) maskedFold1(colX []float64, start int, mask []uint64) {
	if colX == nil {
		st.n += maskedCount(mask)
		return
	}
	blk := colX[start : start+len(mask)]
	cx := st.cx
	var n int64
	sum, sx, sxx := st.sum, st.sx, st.sxx
	for i, m := range mask {
		x := blk[i]
		xm := maskTo0(x, m)
		d := maskTo0(x-cx, m)
		sum += xm
		sx += d
		sxx += d * d
		n += int64(m & 1)
	}
	st.n += n
	st.sum, st.sx, st.sxx = sum, sx, sxx
}

// maskedFold2 folds one block of the two-column moment state under the
// mask. A nil column reads 0 (reference colVal semantics), handled on
// the rare scalar path.
func (st *vecState) maskedFold2(colX, colY []float64, start int, mask []uint64) {
	if colX == nil || colY == nil {
		for i, m := range mask {
			if m != 0 {
				var x, y float64
				if colX != nil {
					x = colX[start+i]
				}
				if colY != nil {
					y = colY[start+i]
				}
				st.n++
				st.foldXY(x, y)
			}
		}
		return
	}
	blkX := colX[start : start+len(mask)]
	blkY := colY[start : start+len(mask)]
	cx, cy := st.cx, st.cy
	var n int64
	sumX, sumY := st.sum, st.sumY
	sx, sy, sxx, syy, sxy := st.sx, st.sy, st.sxx, st.syy, st.sxy
	for i, m := range mask {
		x, y := blkX[i], blkY[i]
		sumX += maskTo0(x, m)
		sumY += maskTo0(y, m)
		dx := maskTo0(x-cx, m)
		dy := maskTo0(y-cy, m)
		sx += dx
		sy += dy
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
		n += int64(m & 1)
	}
	st.n += n
	st.sum, st.sumY = sumX, sumY
	st.sx, st.sy, st.sxx, st.syy, st.sxy = sx, sy, sxx, syy, sxy
}

// evalAll handles the degenerate zero-dimension rectangle (it matches
// every row, per the reference Contains semantics).
func evalAll(q Query, cols [][]float64, nRows int, st *vecState) {
	colX, colY := aggCols(q, cols)
	for i := 0; i < nRows; i++ {
		switch q.Aggregate {
		case Sum, Avg, Var:
			st.n++
			st.foldXY(colValVec2(colX, i), 0)
		case Corr, RegSlope:
			st.n++
			st.foldXY(colValVec2(colX, i), colValVec2(colY, i))
		default:
			st.n++
		}
	}
}

func colValVec2(col []float64, i int) float64 {
	if col == nil {
		return 0
	}
	return col[i]
}

func (st *vecState) foldXY(x, y float64) {
	if !st.seeded {
		st.cx, st.cy = x, y
		st.seeded = true
	}
	st.sum += x
	st.sumY += y
	dx, dy := x-st.cx, y-st.cy
	st.sx += dx
	st.sy += dy
	st.sxx += dx * dx
	st.syy += dy * dy
	st.sxy += dx * dy
}

// rebase re-centres the state onto new shifts. The delta between two
// data-drawn shifts is spread-scale, so re-centring loses no precision
// — this is what lets per-partition states merge without ever leaving
// the shifted frame.
func (st *vecState) rebase(cx, cy float64) {
	if !st.seeded {
		st.cx, st.cy = cx, cy
		st.seeded = true
		return
	}
	dx, dy := st.cx-cx, st.cy-cy
	nf := float64(st.n)
	st.sxx += dx * (2*st.sx + nf*dx)
	st.syy += dy * (2*st.sy + nf*dy)
	st.sxy += dx*st.sy + dy*st.sx + nf*dx*dy
	st.sx += nf * dx
	st.sy += nf * dy
	st.cx, st.cy = cx, cy
}

// mergeShifted folds b into st, staying in st's frame.
func (st *vecState) mergeShifted(b vecState) {
	if b.n == 0 {
		return
	}
	if !st.seeded {
		st.cx, st.cy = b.cx, b.cy
		st.seeded = b.seeded
	}
	b.rebase(st.cx, st.cy)
	st.n += b.n
	st.sum += b.sum
	st.sumY += b.sumY
	st.sx += b.sx
	st.sy += b.sy
	st.sxx += b.sxx
	st.syy += b.syy
	st.sxy += b.sxy
}

// encode reconstructs the raw-moment mergeable state (the 8-slot wire
// format of PartialEval) from the shifted frame. Reconstruction is one
// rounding at raw scale instead of one per row, so the encoded partial
// is at least as accurate as naive accumulation. Slots the aggregate's
// finish never consumes are zero (SUM/AVG carry no second moment: their
// kernels do not accumulate one).
func (st vecState) encode(q Query) []float64 {
	a := aggState{n: st.n}
	nf := float64(st.n)
	switch q.Aggregate {
	case Sum, Avg:
		a.sum = st.sum
	case Var:
		a.sum = st.sum
		a.sum2 = st.sxx + st.cx*(2*st.sx+nf*st.cx)
	case Corr, RegSlope:
		a.sx = st.sum
		a.sy = st.sumY
		a.sxx = st.sxx + st.cx*(2*st.sx+nf*st.cx)
		a.syy = st.syy + st.cy*(2*st.sy+nf*st.cy)
		a.sxy = st.sxy + st.cx*st.sy + st.cy*st.sx + nf*st.cx*st.cy
	}
	return a.encode()
}

// finishShifted produces the final Result directly from the shifted
// frame: variances and covariances come out of spread-scale sums with
// no catastrophic cancellation.
func finishShifted(q Query, st vecState) Result {
	res := Result{Support: st.n}
	if st.n == 0 {
		return res
	}
	nf := float64(st.n)
	switch q.Aggregate {
	case Count:
		res.Value = nf
	case Sum:
		res.Value = st.sum
	case Avg:
		res.Value = st.sum / nf
	case Var:
		m := st.sx / nf
		res.Value = clampNonNeg(st.sxx/nf - m*m)
	case Corr:
		num := nf*st.sxy - st.sx*st.sy
		den := math.Sqrt(clampNonNeg(nf*st.sxx-st.sx*st.sx)) *
			math.Sqrt(clampNonNeg(nf*st.syy-st.sy*st.sy))
		if den != 0 {
			res.Value = num / den
		}
	case RegSlope:
		den := nf*st.sxx - st.sx*st.sx
		if den > 0 {
			res.Value = (nf*st.sxy - st.sx*st.sy) / den
		}
	}
	return res
}

// rectCount1/rectCount2 are the fully-fused single-pass kernels for the
// dominant selection shapes (1- and 2-dimensional rectangles): the
// predicate verdicts and the aggregate fold live in one loop, so
// nothing is stored or re-read between phases.
func rectCount1(c0 []float64, lo0, hi0 float64) int64 {
	var n int64
	for _, v := range c0 {
		n += int64((b2u(v < lo0) | b2u(v > hi0)) ^ 1)
	}
	return n
}

func rectCount2(c0, c1 []float64, lo0, hi0, lo1, hi1 float64) int64 {
	// Two-way unroll with independent accumulators: the verdict chains
	// of adjacent rows overlap instead of serialising on one counter.
	var n0, n1 int64
	c1 = c1[:len(c0)]
	i := 0
	for ; i+1 < len(c0); i += 2 {
		v0, v1 := c0[i], c0[i+1]
		w0, w1 := c1[i], c1[i+1]
		n0 += int64((b2u(v0 < lo0) | b2u(v0 > hi0) | b2u(w0 < lo1) | b2u(w0 > hi1)) ^ 1)
		n1 += int64((b2u(v1 < lo0) | b2u(v1 > hi0) | b2u(w1 < lo1) | b2u(w1 > hi1)) ^ 1)
	}
	for ; i < len(c0); i++ {
		v, w := c0[i], c1[i]
		n0 += int64((b2u(v < lo0) | b2u(v > hi0) | b2u(w < lo1) | b2u(w > hi1)) ^ 1)
	}
	return n0 + n1
}

// rectSum runs the fused rectangle kernel for SUM/AVG, which need only
// the count and the raw first-order sum — no second moments, so the
// per-row work is a mask, one masked add and a lane count. The value
// column is read through its bit view, so the lane masking is pure
// integer arithmetic and only the final add touches the FP unit.
func (st *vecState) rectSum(c0, c1, colX []float64, los, his []float64) {
	lo0, hi0 := los[0], his[0]
	var n int64
	sum := st.sum
	cv := bitsView(colX[:len(c0)])
	if c1 == nil {
		for i, v := range c0 {
			m := (b2u(v < lo0) | b2u(v > hi0)) - 1
			sum += math.Float64frombits(cv[i] & m)
			n += int64(m & 1)
		}
	} else {
		lo1, hi1 := los[1], his[1]
		c1 = c1[:len(c0)]
		// Unroll the predicate work two rows at a time; the sum chain
		// stays a single sequential accumulator so SUM remains
		// bit-identical to the row-order reference.
		var n1 int64
		i := 0
		for ; i+1 < len(c0); i += 2 {
			v0, v1 := c0[i], c0[i+1]
			w0, w1 := c1[i], c1[i+1]
			m0 := (b2u(v0 < lo0) | b2u(v0 > hi0) | b2u(w0 < lo1) | b2u(w0 > hi1)) - 1
			m1 := (b2u(v1 < lo0) | b2u(v1 > hi0) | b2u(w1 < lo1) | b2u(w1 > hi1)) - 1
			sum += math.Float64frombits(cv[i] & m0)
			sum += math.Float64frombits(cv[i+1] & m1)
			n += int64(m0 & 1)
			n1 += int64(m1 & 1)
		}
		for ; i < len(c0); i++ {
			v, w := c0[i], c1[i]
			m := (b2u(v < lo0) | b2u(v > hi0) | b2u(w < lo1) | b2u(w > hi1)) - 1
			sum += math.Float64frombits(cv[i] & m)
			n += int64(m & 1)
		}
		n += n1
	}
	st.n += n
	st.sum = sum
}

// bitsView reinterprets a float64 column as its IEEE-754 bit pattern so
// mask application stays in the integer pipeline. Same element size and
// alignment; read-only use.
func bitsView(xs []float64) []uint64 {
	return unsafe.Slice((*uint64)(unsafe.Pointer(unsafe.SliceData(xs))), len(xs))
}

// rectFold1 runs the fused rectangle kernel for single-column moments
// over up to two selection dimensions (c1 nil for one).
func (st *vecState) rectFold1(c0, c1, colX []float64, los, his []float64) {
	lo0, hi0 := los[0], his[0]
	cx := st.cx
	var n int64
	sum, sx, sxx := st.sum, st.sx, st.sxx
	cv := colX[:len(c0)]
	if c1 == nil {
		for i, v := range c0 {
			m := (b2u(v < lo0) | b2u(v > hi0)) - 1
			x := cv[i]
			sum += maskTo0(x, m)
			d := maskTo0(x-cx, m)
			sx += d
			sxx += d * d
			n += int64(m & 1)
		}
	} else {
		lo1, hi1 := los[1], his[1]
		c1 = c1[:len(c0)]
		for i, v := range c0 {
			w := c1[i]
			m := (b2u(v < lo0) | b2u(v > hi0) | b2u(w < lo1) | b2u(w > hi1)) - 1
			x := cv[i]
			sum += maskTo0(x, m)
			d := maskTo0(x-cx, m)
			sx += d
			sxx += d * d
			n += int64(m & 1)
		}
	}
	st.n += n
	st.sum, st.sx, st.sxx = sum, sx, sxx
}

// rectFold2 runs the fused rectangle kernel for two-column moments over
// up to two selection dimensions.
func (st *vecState) rectFold2(c0, c1, colX, colY []float64, los, his []float64) {
	lo0, hi0 := los[0], his[0]
	cx, cy := st.cx, st.cy
	var n int64
	sumX, sumY := st.sum, st.sumY
	sx, sy, sxx, syy, sxy := st.sx, st.sy, st.sxx, st.syy, st.sxy
	cvX := colX[:len(c0)]
	cvY := colY[:len(c0)]
	var lo1, hi1 float64
	if c1 != nil {
		lo1, hi1 = los[1], his[1]
		c1 = c1[:len(c0)]
	}
	for i, v := range c0 {
		m := (b2u(v < lo0) | b2u(v > hi0)) - 1
		if c1 != nil {
			w := c1[i]
			m &= (b2u(w < lo1) | b2u(w > hi1)) - 1
		}
		x, y := cvX[i], cvY[i]
		sumX += maskTo0(x, m)
		sumY += maskTo0(y, m)
		dx := maskTo0(x-cx, m)
		dy := maskTo0(y-cy, m)
		sx += dx
		sy += dy
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
		n += int64(m & 1)
	}
	st.n += n
	st.sum, st.sumY = sumX, sumY
	st.sx, st.sy, st.sxx, st.syy, st.sxy = sx, sy, sxx, syy, sxy
}

// evalSphereFused folds the sphere kernel per block: the distance
// accumulator is thresholded and consumed in the same pass.
func evalSphereFused(q Query, cols [][]float64, nRows int, colX, colY []float64, st *vecState) {
	s := q.Select
	r2 := s.Radius * s.Radius
	sc := vecPool.Get().(*vecScratch)
	defer vecPool.Put(sc)
	for start := 0; start < nRows; start += VecBlock {
		end := start + VecBlock
		if end > nRows {
			end = nRows
		}
		d2 := sphereBlockD2(s, cols, start, end, sc.d2)
		switch q.Aggregate {
		case Sum, Avg:
			blk := colX[start:end]
			var n int64
			sum := st.sum
			for i, dv := range d2 {
				m := -b2u(dv <= r2)
				sum += maskTo0(blk[i], m)
				n += int64(m & 1)
			}
			st.n += n
			st.sum = sum
		case Var:
			blk := colX[start:end]
			cx := st.cx
			var n int64
			sum, sx, sxx := st.sum, st.sx, st.sxx
			for i, dv := range d2 {
				m := -b2u(dv <= r2)
				x := blk[i]
				sum += maskTo0(x, m)
				d := maskTo0(x-cx, m)
				sx += d
				sxx += d * d
				n += int64(m & 1)
			}
			st.n += n
			st.sum, st.sx, st.sxx = sum, sx, sxx
		case Corr, RegSlope:
			blkX := colX[start:end]
			blkY := colY[start:end]
			cx, cy := st.cx, st.cy
			var n int64
			sumX, sumY := st.sum, st.sumY
			sx, sy, sxx, syy, sxy := st.sx, st.sy, st.sxx, st.syy, st.sxy
			for i, dv := range d2 {
				m := -b2u(dv <= r2)
				x, y := blkX[i], blkY[i]
				sumX += maskTo0(x, m)
				sumY += maskTo0(y, m)
				dx := maskTo0(x-cx, m)
				dy := maskTo0(y-cy, m)
				sx += dx
				sy += dy
				sxx += dx * dx
				syy += dy * dy
				sxy += dx * dy
				n += int64(m & 1)
			}
			st.n += n
			st.sum, st.sumY = sumX, sumY
			st.sx, st.sy, st.sxx, st.syy, st.sxy = sx, sy, sxx, syy, sxy
		default:
			var n int64
			for _, dv := range d2 {
				n += int64(b2u(dv <= r2))
			}
			st.n += n
		}
	}
}

// evalBlocks is the generic two-phase path (any dimensionality, any
// degenerate column configuration): fill the block's match mask, then
// fold the aggregates under it.
func evalBlocks(q Query, cols [][]float64, nRows int, colX, colY []float64, st *vecState) {
	sc := vecPool.Get().(*vecScratch)
	defer vecPool.Put(sc)
	for start := 0; start < nRows; start += VecBlock {
		end := start + VecBlock
		if end > nRows {
			end = nRows
		}
		mask := blockMask(q.Select, cols, start, end, sc)
		switch q.Aggregate {
		case Sum, Avg, Var:
			st.maskedFold1(colX, start, mask)
		case Corr, RegSlope:
			st.maskedFold2(colX, colY, start, mask)
		default:
			st.n += maskedCount(mask)
		}
	}
}

// evalView runs the kernel pipeline over one columnar view, picking the
// fully-fused specialisation when the query has the common shape and
// falling back to the generic two-phase block path otherwise.
func evalView(q Query, view storage.ColumnView) vecState {
	var st vecState
	n := view.Len()
	if n == 0 || q.Select.Dims() > view.Width() {
		return st
	}
	cols := view.Cols
	colX, colY := aggCols(q, cols)
	// Data-scale pivots for the shifted frame: the view's first values.
	// Any value at the column's scale works; taking row 0 keeps the
	// kernels free of a seeding branch.
	if colX != nil {
		st.cx = colX[0]
		st.seeded = true
	}
	if colY != nil {
		st.cy = colY[0]
	}
	s := q.Select
	if !s.IsRadius() && len(s.Los) == 0 {
		evalAll(q, cols, n, &st)
		return st
	}

	// Fast paths: fused single-pass kernels for the common shapes.
	if s.IsRadius() {
		fusedOK := true
		switch q.Aggregate {
		case Sum, Avg, Var:
			fusedOK = colX != nil
		case Corr, RegSlope:
			fusedOK = colX != nil && colY != nil
		}
		if fusedOK {
			evalSphereFused(q, cols, n, colX, colY, &st)
			return st
		}
	} else if d := len(s.Los); d <= 2 {
		var c1 []float64
		if d == 2 {
			c1 = cols[1]
		}
		switch q.Aggregate {
		case Count:
			if d == 1 {
				st.n += rectCount1(cols[0], s.Los[0], s.His[0])
			} else {
				st.n += rectCount2(cols[0], c1, s.Los[0], s.His[0], s.Los[1], s.His[1])
			}
			return st
		case Sum, Avg:
			if colX != nil {
				st.rectSum(cols[0], c1, colX, s.Los, s.His)
				return st
			}
		case Var:
			if colX != nil {
				st.rectFold1(cols[0], c1, colX, s.Los, s.His)
				return st
			}
		case Corr, RegSlope:
			if colX != nil && colY != nil {
				st.rectFold2(cols[0], c1, colX, colY, s.Los, s.His)
				return st
			}
		}
	}
	evalBlocks(q, cols, n, colX, colY, &st)
	return st
}

// EvalView computes q's exact answer over one columnar view with the
// vectorized kernels. COUNT/SUM/AVG are bit-identical to EvalRows over
// the same rows; VAR/CORR/REGSLOPE finish in the shifted frame and are
// numerically stronger than the row-at-a-time reference on
// mean-dominated data.
func EvalView(q Query, view storage.ColumnView) Result {
	return finishShifted(q, evalView(q, view))
}

// PartialEvalView computes the node-local mergeable aggregate state for
// q over a columnar view — the vectorized counterpart of PartialEval,
// producing the same 8-slot encoding so partials from vectorized and
// row-at-a-time nodes merge freely.
func PartialEvalView(q Query, view storage.ColumnView) []float64 {
	return evalView(q, view).encode(q)
}

// ZeroPartial returns the mergeable state of an empty row set (what a
// zone-pruned partition contributes).
func ZeroPartial() []float64 { return aggState{}.encode() }

// ZoneCanMatch reports whether a partition with the given zone map can
// hold rows matching s. Empty partitions never match; partitions with
// unknown bounds (nil Mins) always might.
func ZoneCanMatch(s Selection, zm storage.ZoneMap) bool {
	if zm.Rows == 0 {
		return false
	}
	if zm.Mins == nil {
		return true
	}
	if s.Dims() > len(zm.Mins) {
		// Every row is narrower than the selection: nothing can match.
		return false
	}
	if s.IsRadius() {
		// Minimum distance from the centre to the bounding box.
		var d2 float64
		for j, c := range s.Center {
			if c < zm.Mins[j] {
				d := zm.Mins[j] - c
				d2 += d * d
			} else if c > zm.Maxs[j] {
				d := c - zm.Maxs[j]
				d2 += d * d
			}
		}
		return d2 <= s.Radius*s.Radius
	}
	for j := range s.Los {
		if s.His[j] < zm.Mins[j] || s.Los[j] > zm.Maxs[j] {
			return false
		}
	}
	return true
}

// Prune partitions t's zone maps against sel: it returns the partitions
// whose zone maps (and, for range-partitioned tables, partition bounds
// — subsumed by the zone maps, which bound the actual data) can
// intersect the selection, plus how many were skipped. The zone test
// runs against live bounds under the table's read lock (ZoneScan), so
// the only allocation is the candidate list itself.
func Prune(t *storage.Table, sel Selection) (candidates []int, pruned int) {
	candidates = make([]int, 0, t.Partitions())
	t.ZoneScan(func(p int, zm storage.ZoneMap) {
		if ZoneCanMatch(sel, zm) {
			candidates = append(candidates, p)
		} else {
			pruned++
		}
	})
	return candidates, pruned
}

// PartialForPartition computes q's mergeable aggregate state over
// partition p of t: the columnar batch kernels when the projection is
// available, the row-at-a-time reference otherwise. It is THE fallback
// contract for table partials — callers that need raw mergeable states
// (e.g. the cohort executor) share it instead of reimplementing the
// try-columns-else-rows dance.
func PartialForPartition(q Query, t *storage.Table, p int) (partial []float64, rowsRead int64, err error) {
	view, _, err := t.ScanColumns(p)
	if err == nil {
		return PartialEvalView(q, view), int64(view.Len()), nil
	}
	if !errors.Is(err, storage.ErrNoColumns) {
		return nil, 0, err
	}
	rows, _, err := t.ScanPartition(p)
	if err != nil {
		return nil, 0, err
	}
	return PartialEval(q, rows), int64(len(rows)), nil
}

// TableScanStats reports what a vectorized table evaluation touched.
type TableScanStats struct {
	// RowsScanned is the number of rows the kernels actually streamed.
	RowsScanned int64
	// PartsScanned is the number of partitions evaluated.
	PartsScanned int
	// PartsPruned is the number of partitions zone maps skipped.
	PartsPruned int
}

// EvalTable computes q's exact answer over every partition of t through
// the vectorized path: zone maps prune non-intersecting partitions, the
// survivors stream through the batch kernels across up to GOMAXPROCS
// workers, and the per-partition states merge in partition order (the
// result is deterministic regardless of scheduling). Partitions without
// a columnar projection fall back to the row-at-a-time reference
// kernel.
func EvalTable(q Query, t *storage.Table) (Result, TableScanStats, error) {
	var stats TableScanStats
	if err := q.Validate(); err != nil {
		return Result{}, stats, err
	}
	if err := q.ValidateCols(t.Width()); err != nil {
		return Result{}, stats, err
	}
	parts, pruned := Prune(t, q.Select)
	stats.PartsPruned = pruned
	stats.PartsScanned = len(parts)
	if len(parts) == 0 {
		return finishShifted(q, vecState{}), stats, nil
	}

	states := make([]vecState, len(parts))
	rows := make([]int64, len(parts))
	errs := make([]error, len(parts))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(parts) {
		workers = len(parts)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(parts) {
					return
				}
				states[i], rows[i], errs[i] = evalPartition(q, t, parts[i])
			}
		}()
	}
	wg.Wait()

	var merged vecState
	for i := range parts {
		if errs[i] != nil {
			return Result{}, stats, errs[i]
		}
		merged.mergeShifted(states[i])
		stats.RowsScanned += rows[i]
	}
	return finishShifted(q, merged), stats, nil
}

// evalPartition evaluates one partition, preferring the columnar view
// and falling back to a row-at-a-time walk (still in the shifted frame)
// when the projection is unavailable.
func evalPartition(q Query, t *storage.Table, p int) (vecState, int64, error) {
	view, _, err := t.ScanColumns(p)
	if err == nil {
		return evalView(q, view), int64(view.Len()), nil
	}
	if !errors.Is(err, storage.ErrNoColumns) {
		return vecState{}, 0, err
	}
	rows, _, err := t.ScanPartition(p)
	if err != nil {
		return vecState{}, 0, err
	}
	var st vecState
	for _, r := range rows {
		if !q.Select.Contains(r.Vec) {
			continue
		}
		st.n++
		switch q.Aggregate {
		case Sum, Avg, Var:
			st.foldXY(colValVec(r.Vec, q.Col), 0)
		case Corr, RegSlope:
			st.foldXY(colValVec(r.Vec, q.Col), colValVec(r.Vec, q.Col2))
		}
	}
	return st, int64(len(rows)), nil
}

func colValVec(vec []float64, col int) float64 {
	if col < 0 || col >= len(vec) {
		return 0
	}
	return vec[col]
}
