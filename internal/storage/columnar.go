// Columnar projection: every partition maintains a struct-of-arrays
// mirror of its rows — one contiguous []float64 per column plus a key
// column — together with a zone map (per-column min/max and a row
// count). The projection is what the vectorized batch kernels in
// internal/query scan: contiguous columns turn the per-row pointer
// chase of []Row into sequential streams, and zone maps let the exact
// path skip partitions that cannot intersect a selection at all.
package storage

import "errors"

// ErrNoColumns is returned by ScanColumns when a partition has no
// usable columnar projection (its rows became ragged through an
// UpdateWhere that resized vectors); callers fall back to the
// row-at-a-time path.
var ErrNoColumns = errors.New("storage: no columnar projection for partition")

// ColumnView is a read-only, zero-copy columnar snapshot of one
// partition: Cols[j][i] is row i's value in column j, Keys[i] its key.
// The slices alias the partition's live column arrays with length and
// capacity pinned at snapshot time, so concurrent appends never become
// visible through an already-taken view and the view must not be
// mutated.
type ColumnView struct {
	// Keys holds the row keys.
	Keys []uint64
	// Cols holds one contiguous value array per table column.
	Cols [][]float64
}

// Len returns the number of rows in the view.
func (v ColumnView) Len() int { return len(v.Keys) }

// Width returns the number of value columns.
func (v ColumnView) Width() int { return len(v.Cols) }

// Row materialises row i as a freshly allocated attribute vector.
func (v ColumnView) Row(i int) []float64 {
	out := make([]float64, len(v.Cols))
	for j, c := range v.Cols {
		out[j] = c[i]
	}
	return out
}

// ZoneMap summarises one partition for pruning: per-column minima and
// maxima plus the row count. Mins/Maxs are nil either when the
// partition is empty (Rows == 0: always prunable) or when the columnar
// projection is unavailable (Rows > 0: never prunable).
type ZoneMap struct {
	// Mins holds the per-column minimum over the partition's rows.
	Mins []float64
	// Maxs holds the per-column maximum.
	Maxs []float64
	// Rows is the partition's row count.
	Rows int
}

// ColStore is the append-only columnar mirror of one partition. It is
// not internally synchronised: the owning table (or distributed node)
// serialises appends and snapshots under its own lock, and views taken
// under that lock stay immutable afterwards because appends only ever
// write past every outstanding view's pinned length.
type ColStore struct {
	width int
	keys  []uint64
	cols  [][]float64
	mins  []float64
	maxs  []float64
	// ragged flips when a row whose width disagrees with the store
	// arrives; the projection is then unusable and readers fall back to
	// rows.
	ragged bool
	// unbounded flips when a NaN value arrives: NaN is invisible to
	// min/max (every comparison is false) yet matches any range under
	// the selection semantics, so the zone map must stop claiming it
	// bounds the data or pruning would skip matching rows.
	unbounded bool
}

// NewColStore builds an empty store for rows of the given width. A
// negative width means "adopt the first appended row's width" (used by
// distributed nodes that learn the schema from data).
func NewColStore(width int) *ColStore {
	c := &ColStore{width: width}
	if width >= 0 {
		c.cols = make([][]float64, width)
	}
	return c
}

// BuildColStore builds a store of the given width holding rows.
func BuildColStore(width int, rows []Row) *ColStore {
	c := NewColStore(width)
	c.Append(rows...)
	return c
}

// Append adds rows to the projection, extending the zone map. A row of
// the wrong width poisons the store (Ragged) rather than corrupting the
// layout.
func (c *ColStore) Append(rows ...Row) {
	for _, r := range rows {
		if c.width < 0 {
			c.width = len(r.Vec)
			c.cols = make([][]float64, c.width)
		}
		if c.ragged {
			return
		}
		if len(r.Vec) != c.width {
			c.ragged = true
			return
		}
		c.keys = append(c.keys, r.Key)
		for j := range c.cols {
			c.cols[j] = append(c.cols[j], r.Vec[j])
		}
		if c.mins == nil {
			c.mins = append([]float64(nil), r.Vec...)
			c.maxs = append([]float64(nil), r.Vec...)
			for _, v := range r.Vec {
				if v != v {
					c.unbounded = true
				}
			}
			continue
		}
		for j, v := range r.Vec {
			if v < c.mins[j] {
				c.mins[j] = v
			}
			if v > c.maxs[j] {
				c.maxs[j] = v
			}
			if v != v {
				c.unbounded = true
			}
		}
	}
}

// Len returns the number of projected rows.
func (c *ColStore) Len() int { return len(c.keys) }

// Width returns the store's column count, or -1 when it is nil or has
// not yet adopted a width.
func (c *ColStore) Width() int {
	if c == nil || c.width < 0 {
		return -1
	}
	return c.width
}

// Ragged reports whether the projection was poisoned by a
// width-mismatched row.
func (c *ColStore) Ragged() bool { return c.ragged }

// View snapshots the store as a ColumnView. The second return is false
// when the projection is unusable. Length and capacity are pinned so
// later appends stay invisible and consumer appends cannot touch shared
// memory.
func (c *ColStore) View() (ColumnView, bool) {
	if c == nil || c.ragged {
		return ColumnView{}, false
	}
	n := len(c.keys)
	v := ColumnView{
		Keys: c.keys[:n:n],
		Cols: make([][]float64, len(c.cols)),
	}
	for j := range c.cols {
		v.Cols[j] = c.cols[j][:n:n]
	}
	return v, true
}

// Zone returns a copy of the store's zone map. For a nil or ragged
// store the caller must synthesise a ZoneMap from its own row count
// (nil bounds, Rows > 0) so pruning keeps the partition. A store that
// has absorbed a NaN value reports its row count with nil bounds for
// the same reason: min/max cannot bound NaN, and a NaN coordinate
// matches any range.
func (c *ColStore) Zone() ZoneMap {
	zm := c.ZoneView()
	zm.Mins = append([]float64(nil), zm.Mins...)
	zm.Maxs = append([]float64(nil), zm.Maxs...)
	return zm
}

// ZoneView is Zone without the copies: the returned slices alias the
// live min/max arrays, which appends mutate in place, so the caller
// must hold whatever lock serialises appends for as long as it reads
// the view. This is the allocation-free pruning primitive for hot
// paths; Zone returns stable copies instead.
func (c *ColStore) ZoneView() ZoneMap {
	if c == nil || c.ragged {
		return ZoneMap{}
	}
	if c.unbounded {
		return ZoneMap{Rows: len(c.keys)}
	}
	return ZoneMap{Mins: c.mins, Maxs: c.maxs, Rows: len(c.keys)}
}
