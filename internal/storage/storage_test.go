package storage

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
)

func testCluster(n int) *cluster.Cluster {
	return cluster.New(n, cluster.DefaultConfig())
}

func mkRows(n int, d int) []Row {
	rows := make([]Row, n)
	for i := range rows {
		vec := make([]float64, d)
		for j := range vec {
			vec[j] = float64(i*d + j)
		}
		rows[i] = Row{Key: uint64(i), Vec: vec}
	}
	return rows
}

func TestNewTableValidation(t *testing.T) {
	cl := testCluster(2)
	if _, err := NewTable(cl, "t", nil, 2); err == nil {
		t.Error("want error for empty schema")
	}
	if _, err := NewTable(cl, "t", []string{"a"}, 0); err == nil {
		t.Error("want error for zero partitions")
	}
	if _, err := NewTable(cl, "t", []string{"a"}, 3, WithRangePartitioning([]float64{1})); err == nil {
		t.Error("want error for wrong bound count")
	}
}

func TestLoadAndScan(t *testing.T) {
	cl := testCluster(4)
	tbl, err := NewTable(cl, "t", []string{"a", "b"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Load(mkRows(1000, 2)); err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 1000 {
		t.Fatalf("Rows = %d", tbl.Rows())
	}
	var total int
	for p := 0; p < tbl.Partitions(); p++ {
		rows, cost, err := tbl.ScanPartition(p)
		if err != nil {
			t.Fatal(err)
		}
		total += len(rows)
		if cost.RowsRead != int64(len(rows)) {
			t.Errorf("partition %d cost rows %d != %d", p, cost.RowsRead, len(rows))
		}
		if len(rows) > 0 && cost.NodesTouched != 1 {
			t.Errorf("partition %d touched %d nodes", p, cost.NodesTouched)
		}
	}
	if total != 1000 {
		t.Errorf("scanned %d rows total", total)
	}
	// Hash partitioning should be reasonably balanced.
	for p := 0; p < tbl.Partitions(); p++ {
		rows, _, _ := tbl.ScanPartition(p)
		if len(rows) < 60 || len(rows) > 200 {
			t.Errorf("partition %d badly skewed: %d rows", p, len(rows))
		}
	}
}

func TestSchemaMismatch(t *testing.T) {
	cl := testCluster(1)
	tbl, _ := NewTable(cl, "t", []string{"a"}, 1)
	err := tbl.Load([]Row{{Key: 1, Vec: []float64{1, 2}}})
	if !errors.Is(err, ErrSchemaMismatch) {
		t.Errorf("err = %v, want ErrSchemaMismatch", err)
	}
	if _, err := tbl.Append(Row{Key: 2, Vec: nil}); !errors.Is(err, ErrSchemaMismatch) {
		t.Errorf("Append err = %v", err)
	}
}

func TestRangePartitioning(t *testing.T) {
	cl := testCluster(3)
	tbl, err := NewTable(cl, "t", []string{"v"}, 3, WithRangePartitioning([]float64{10, 20}))
	if err != nil {
		t.Fatal(err)
	}
	rows := []Row{
		{Key: 1, Vec: []float64{5}},
		{Key: 2, Vec: []float64{15}},
		{Key: 3, Vec: []float64{25}},
	}
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		got, _, err := tbl.ScanPartition(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0].Key != uint64(p+1) {
			t.Errorf("partition %d = %v", p, got)
		}
	}
}

func TestGetHashRouted(t *testing.T) {
	cl := testCluster(4)
	tbl, _ := NewTable(cl, "t", []string{"a"}, 8)
	if err := tbl.Load(mkRows(100, 1)); err != nil {
		t.Fatal(err)
	}
	row, ok, cost, err := tbl.Get(42)
	if err != nil || !ok {
		t.Fatalf("Get(42): ok=%v err=%v", ok, err)
	}
	if row.Key != 42 {
		t.Errorf("Get returned key %d", row.Key)
	}
	if cost.RowsRead != 1 {
		t.Errorf("point lookup read %d rows, want 1", cost.RowsRead)
	}
	_, ok, _, err = tbl.Get(10_000)
	if err != nil || ok {
		t.Errorf("Get(missing): ok=%v err=%v", ok, err)
	}
}

func TestAppendBumpsVersion(t *testing.T) {
	cl := testCluster(2)
	tbl, _ := NewTable(cl, "t", []string{"a"}, 2)
	v0 := tbl.Version()
	if _, err := tbl.Append(Row{Key: 1, Vec: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if tbl.Version() != v0+1 {
		t.Errorf("version %d, want %d", tbl.Version(), v0+1)
	}
	if tbl.Rows() != 1 {
		t.Errorf("Rows = %d", tbl.Rows())
	}
}

func TestUpdateWhere(t *testing.T) {
	cl := testCluster(2)
	tbl, _ := NewTable(cl, "t", []string{"a"}, 4)
	if err := tbl.Load(mkRows(100, 1)); err != nil {
		t.Fatal(err)
	}
	v0 := tbl.Version()
	n, cost, err := tbl.UpdateWhere(
		func(r Row) bool { return r.Vec[0] < 50 },
		func(r *Row) { r.Vec[0] += 1000 },
	)
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Errorf("changed %d rows, want 50", n)
	}
	if cost.RowsRead != 100 {
		t.Errorf("update scanned %d rows", cost.RowsRead)
	}
	if tbl.Version() != v0+1 {
		t.Error("version not bumped")
	}
}

func TestFailoverToReplica(t *testing.T) {
	cl := testCluster(4)
	tbl, _ := NewTable(cl, "t", []string{"a"}, 4)
	if err := tbl.Load(mkRows(40, 1)); err != nil {
		t.Fatal(err)
	}
	// Partition 0's primary is node 0; fail it.
	if err := cl.Fail(0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tbl.ScanPartition(0); err != nil {
		t.Errorf("scan with replica available failed: %v", err)
	}
	node, err := tbl.HostNode(0)
	if err != nil || node != 1 {
		t.Errorf("HostNode = %d, %v; want replica node 1", node, err)
	}
	// Fail the replica too.
	if err := cl.Fail(1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tbl.ScanPartition(0); !errors.Is(err, ErrAllReplicasDown) {
		t.Errorf("err = %v, want ErrAllReplicasDown", err)
	}
}

func TestScanPartitionPrefix(t *testing.T) {
	cl := testCluster(1)
	tbl, _ := NewTable(cl, "t", []string{"a"}, 1)
	if err := tbl.Load(mkRows(100, 1)); err != nil {
		t.Fatal(err)
	}
	rows, cost, err := tbl.ScanPartitionPrefix(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 || cost.RowsRead != 10 {
		t.Errorf("prefix scan returned %d rows, cost %d", len(rows), cost.RowsRead)
	}
	// Prefix larger than partition clamps.
	rows, _, err = tbl.ScanPartitionPrefix(0, 1000)
	if err != nil || len(rows) != 100 {
		t.Errorf("oversized prefix = %d rows, err %v", len(rows), err)
	}
	if _, _, err := tbl.ScanPartition(99); !errors.Is(err, ErrNoSuchPartition) {
		t.Errorf("bad partition err = %v", err)
	}
}

func TestSortPartitions(t *testing.T) {
	cl := testCluster(1)
	tbl, _ := NewTable(cl, "t", []string{"score"}, 2)
	if err := tbl.Load(mkRows(50, 1)); err != nil {
		t.Fatal(err)
	}
	tbl.SortPartitions(func(a, b Row) bool { return a.Vec[0] > b.Vec[0] })
	for p := 0; p < tbl.Partitions(); p++ {
		rows, _, _ := tbl.ScanPartition(p)
		for i := 1; i < len(rows); i++ {
			if rows[i].Vec[0] > rows[i-1].Vec[0] {
				t.Fatalf("partition %d not sorted desc at %d", p, i)
			}
		}
	}
}

func TestRowBytes(t *testing.T) {
	r := Row{Key: 1, Vec: []float64{1, 2, 3}}
	if r.Bytes() != 8+24 {
		t.Errorf("Bytes = %d", r.Bytes())
	}
}

// Property: every loaded row is found in exactly one partition, and
// PartitionFor is stable.
func TestPartitioningProperty(t *testing.T) {
	cl := testCluster(4)
	tbl, _ := NewTable(cl, "t", []string{"a"}, 8)
	f := func(key uint64) bool {
		v := float64(key % 1000)
		if math.IsNaN(v) {
			return true
		}
		p1 := tbl.PartitionFor(key, []float64{v})
		p2 := tbl.PartitionFor(key, []float64{v})
		return p1 == p2 && p1 >= 0 && p1 < tbl.Partitions()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAppendBatchSingleVersionBump(t *testing.T) {
	cl := testCluster(4)
	tbl, err := NewTable(cl, "t", []string{"a", "b"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Load(mkRows(100, 2)); err != nil {
		t.Fatal(err)
	}
	v0 := tbl.Version()
	batch := make([]Row, 50)
	for i := range batch {
		batch[i] = Row{Key: uint64(1000 + i), Vec: []float64{1, 2}}
	}
	cost, err := tbl.AppendBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Version() != v0+1 {
		t.Fatalf("batch bumped version by %d, want 1", tbl.Version()-v0)
	}
	if tbl.Rows() != 150 {
		t.Fatalf("Rows = %d, want 150", tbl.Rows())
	}
	if cost.RowsRead == 0 {
		t.Fatalf("batch append charged no work")
	}
	// A schema-mismatched batch is rejected atomically.
	bad := []Row{{Key: 1, Vec: []float64{1, 2}}, {Key: 2, Vec: []float64{1}}}
	if _, err := tbl.AppendBatch(bad); err == nil {
		t.Fatalf("mismatched batch accepted")
	}
	if tbl.Rows() != 150 || tbl.Version() != v0+1 {
		t.Fatalf("failed batch mutated the table")
	}
}
