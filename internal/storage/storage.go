// Package storage simulates the distributed storage back-end of a BDAS
// (paper §I: "a distributed file system, distributed SQL or NoSQL modern
// databases, or often a combination"): tables of numeric rows hash- or
// range-partitioned across the cluster's data nodes, with replication,
// cost-accounted scans and point reads, and a version counter that model
// maintenance (RT1.4) subscribes to.
//
// Concurrency and snapshot semantics: a Table is safe for concurrent
// use. Readers (ScanPartition, ScanColumns, Get) observe an immutable
// epoch — appends only grow partitions past every outstanding slice's
// length, and in-place mutation (UpdateWhere, SortPartitions) swaps in
// freshly copied partitions, so a slice or ColumnView returned earlier
// never changes underneath its holder. Returned slices must still not
// be mutated by callers.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/cluster"
	"repro/internal/metrics"
)

// ErrNoSuchPartition is returned for out-of-range partition indices.
var ErrNoSuchPartition = errors.New("storage: no such partition")

// ErrSchemaMismatch is returned when a row's width disagrees with the
// table schema.
var ErrSchemaMismatch = errors.New("storage: schema mismatch")

// ErrAllReplicasDown is returned when a partition's primary and replica
// nodes have both failed.
var ErrAllReplicasDown = errors.New("storage: all replicas down")

// Row is one stored record: a key plus a numeric attribute vector.
type Row struct {
	// Key is the record identifier (join key for rank-join workloads).
	Key uint64
	// Vec holds the attribute values, one per schema column.
	Vec []float64
}

// Bytes returns the serialised size of the row under the simulator's
// fixed-width encoding (8 bytes per field plus the key).
func (r Row) Bytes() int64 { return 8 + 8*int64(len(r.Vec)) }

// Partitioning selects how rows map to partitions.
type Partitioning int

// Partitioning schemes.
const (
	// HashPartition assigns rows by hash of key (NoSQL-store default).
	HashPartition Partitioning = iota + 1
	// RangePartition assigns rows by ranges of Vec[0] (sorted stores).
	RangePartition
)

// Table is a partitioned, replicated table. Partition i's primary lives
// on node i mod N; its replica on node (i+1) mod N. Tables are built by
// bulk load and support in-place updates (for maintenance experiments)
// but not re-partitioning. Alongside each row partition the table
// maintains a columnar projection plus zone map (see columnar.go) that
// the vectorized exact path scans.
type Table struct {
	name    string
	columns []string
	scheme  Partitioning
	cl      *cluster.Cluster

	// Range partitioning metadata: partition i covers
	// [bounds[i], bounds[i+1]) of Vec[0]. Immutable after construction.
	bounds []float64

	// mu guards parts, cols, rows and version. Reads snapshot slice
	// headers under RLock; writers either append (never visible through
	// older headers) or swap in copied partitions (copy-on-write).
	mu      sync.RWMutex
	parts   [][]Row
	cols    []*ColStore
	version int64
	rows    int64
}

// Option configures table construction.
type Option func(*Table)

// WithRangePartitioning switches the table to range partitioning on
// Vec[0] with the given ascending boundary values (len = partitions-1).
func WithRangePartitioning(bounds []float64) Option {
	return func(t *Table) {
		t.scheme = RangePartition
		t.bounds = append([]float64(nil), bounds...)
	}
}

// NewTable creates an empty table named name with the given columns,
// spread over nParts partitions on cl.
func NewTable(cl *cluster.Cluster, name string, columns []string, nParts int, opts ...Option) (*Table, error) {
	if nParts < 1 {
		return nil, fmt.Errorf("storage: table %q needs >= 1 partition", name)
	}
	if len(columns) == 0 {
		return nil, fmt.Errorf("storage: table %q needs >= 1 column", name)
	}
	t := &Table{
		name:    name,
		columns: append([]string(nil), columns...),
		parts:   make([][]Row, nParts),
		cols:    make([]*ColStore, nParts),
		scheme:  HashPartition,
		cl:      cl,
	}
	for p := range t.cols {
		t.cols[p] = NewColStore(len(columns))
	}
	for _, o := range opts {
		o(t)
	}
	if t.scheme == RangePartition && len(t.bounds) != nParts-1 {
		return nil, fmt.Errorf("storage: table %q: range partitioning needs %d bounds, got %d",
			name, nParts-1, len(t.bounds))
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Columns returns a copy of the column names.
func (t *Table) Columns() []string { return append([]string(nil), t.columns...) }

// Width returns the number of schema columns.
func (t *Table) Width() int { return len(t.columns) }

// Partitions returns the partition count.
func (t *Table) Partitions() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.parts)
}

// Rows returns the total row count.
func (t *Table) Rows() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// Version returns the table's data version; every mutating operation
// increments it. SEA agents compare versions to detect base-data updates
// (RT1.4 model maintenance).
func (t *Table) Version() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// RowBytes returns the per-row serialised size.
func (t *Table) RowBytes() int64 { return 8 + 8*int64(len(t.columns)) }

// PartitionFor returns the partition index that key/vec map to.
func (t *Table) PartitionFor(key uint64, vec []float64) int {
	if t.scheme == RangePartition && len(vec) > 0 {
		v := vec[0]
		for i, b := range t.bounds {
			if v < b {
				return i
			}
		}
		return len(t.parts) - 1
	}
	return int(MixKey(key) % uint64(len(t.parts)))
}

// RangeBounds returns the range-partitioning boundary values (nil for
// hash-partitioned tables).
func (t *Table) RangeBounds() []float64 {
	if t.scheme != RangePartition {
		return nil
	}
	return append([]float64(nil), t.bounds...)
}

// MixKey is the splitmix-style finalizer that keeps key-hash placement
// uniform even for sequential keys. It is THE row-placement hash: both
// the simulated table's hash partitioning and the distributed cluster's
// ingest routing (internal/dist) use it, so the two layers agree on
// where a key lives.
func MixKey(key uint64) uint64 {
	key ^= key >> 30
	key *= 0xbf58476d1ce4e5b9
	key ^= key >> 27
	return key
}

// primaryNode returns the node hosting partition p's primary copy.
func (t *Table) primaryNode(p int) int { return p % t.cl.Size() }

// replicaNode returns the node hosting partition p's replica.
func (t *Table) replicaNode(p int) int { return (p + 1) % t.cl.Size() }

// Load bulk-inserts rows (no cost accounting: load is out-of-band, like
// an ETL job preceding the experiments).
func (t *Table) Load(rows []Row) error {
	for _, r := range rows {
		if len(r.Vec) != len(t.columns) {
			return fmt.Errorf("%w: row width %d, table %q width %d",
				ErrSchemaMismatch, len(r.Vec), t.name, len(t.columns))
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range rows {
		p := t.PartitionFor(r.Key, r.Vec)
		t.parts[p] = append(t.parts[p], r)
		t.cols[p].Append(r)
	}
	t.rows += int64(len(rows))
	t.version++
	return nil
}

// readableNode picks the primary if healthy, else the replica, else
// fails.
func (t *Table) readableNode(p int) (int, error) {
	if n := t.primaryNode(p); !t.cl.Failed(n) {
		return n, nil
	}
	if n := t.replicaNode(p); !t.cl.Failed(n) {
		return n, nil
	}
	return 0, fmt.Errorf("%w: partition %d of %q", ErrAllReplicasDown, p, t.name)
}

// snapshotPartition returns partition p's current row epoch under the
// read lock, after the replica-availability check.
func (t *Table) snapshotPartition(p int) ([]Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if p < 0 || p >= len(t.parts) {
		return nil, fmt.Errorf("%w: %d of %d", ErrNoSuchPartition, p, len(t.parts))
	}
	if _, err := t.readableNode(p); err != nil {
		return nil, err
	}
	rows := t.parts[p]
	return rows[:len(rows):len(rows)], nil
}

// ScanPartition returns partition p's rows and the cost of scanning them
// on the hosting node. The returned slice is an immutable snapshot of
// the partition's current epoch (later appends and updates are not
// visible through it) and must not be mutated by the caller.
func (t *Table) ScanPartition(p int) ([]Row, metrics.Cost, error) {
	rows, err := t.snapshotPartition(p)
	if err != nil {
		return nil, metrics.Cost{}, err
	}
	cost := t.cl.ScanCost(int64(len(rows)), t.RowBytes())
	return rows, cost, nil
}

// ScanColumns returns a zero-copy columnar view of partition p — the
// vectorized scan primitive: one contiguous []float64 per column plus
// the key column, snapshotted at the partition's current epoch. The
// cost charged equals a full row scan of the partition (same bytes,
// better layout). ErrNoColumns means the partition's projection is
// unavailable (ragged rows) and the caller should fall back to
// ScanPartition.
func (t *Table) ScanColumns(p int) (ColumnView, metrics.Cost, error) {
	t.mu.RLock()
	if p < 0 || p >= len(t.parts) {
		t.mu.RUnlock()
		return ColumnView{}, metrics.Cost{}, fmt.Errorf("%w: %d of %d", ErrNoSuchPartition, p, len(t.parts))
	}
	if _, err := t.readableNode(p); err != nil {
		t.mu.RUnlock()
		return ColumnView{}, metrics.Cost{}, err
	}
	view, ok := t.cols[p].View()
	t.mu.RUnlock()
	if !ok {
		return ColumnView{}, metrics.Cost{}, fmt.Errorf("%w: partition %d of %q", ErrNoColumns, p, t.name)
	}
	cost := t.cl.ScanCost(int64(view.Len()), t.RowBytes())
	return view, cost, nil
}

// ZoneMaps returns a copy of every partition's zone map (per-column
// min/max plus row count). Partitions whose columnar projection is
// unavailable report nil bounds with their true row count, so pruning
// keeps them.
func (t *Table) ZoneMaps() []ZoneMap {
	out := make([]ZoneMap, 0, len(t.parts))
	t.ZoneScan(func(_ int, zm ZoneMap) {
		zm.Mins = append([]float64(nil), zm.Mins...)
		zm.Maxs = append([]float64(nil), zm.Maxs...)
		out = append(out, zm)
	})
	return out
}

// ZoneScan calls fn for every partition's zone map under the table's
// read lock, without copying: the ZoneMap passed to fn aliases live
// bounds and is valid only during the call. fn must be pure — it runs
// under the lock and must not call back into the table. This is the
// allocation-free pruning primitive the per-query hot path uses;
// ZoneMaps returns stable copies instead.
func (t *Table) ZoneScan(fn func(p int, zm ZoneMap)) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for p := range t.parts {
		if t.cols[p] != nil && !t.cols[p].Ragged() {
			fn(p, t.cols[p].ZoneView())
		} else {
			fn(p, ZoneMap{Rows: len(t.parts[p])})
		}
	}
}

// ScanPartitionPrefix reads only the first n rows of partition p — the
// "surgical access" primitive (P3): an index tells the caller how deep to
// read into a sorted run, and only that prefix is charged.
func (t *Table) ScanPartitionPrefix(p, n int) ([]Row, metrics.Cost, error) {
	rows, err := t.snapshotPartition(p)
	if err != nil {
		return nil, metrics.Cost{}, err
	}
	if n > len(rows) {
		n = len(rows)
	}
	if n < 0 {
		n = 0
	}
	cost := t.cl.ScanCost(int64(n), t.RowBytes())
	return rows[:n], cost, nil
}

// ScanPartitionRange reads rows [from, to) of partition p, charging only
// that segment — the incremental pull primitive of threshold-algorithm
// operators, which deepen their read of a sorted run round by round.
func (t *Table) ScanPartitionRange(p, from, to int) ([]Row, metrics.Cost, error) {
	rows, err := t.snapshotPartition(p)
	if err != nil {
		return nil, metrics.Cost{}, err
	}
	if from < 0 {
		from = 0
	}
	if to > len(rows) {
		to = len(rows)
	}
	if from >= to {
		return nil, metrics.Cost{}, nil
	}
	cost := t.cl.ScanCost(int64(to-from), t.RowBytes())
	return rows[from:to], cost, nil
}

// HostNode returns the node that a read of partition p would hit now
// (primary, or replica after failover).
func (t *Table) HostNode(p int) (int, error) {
	if p < 0 || p >= len(t.parts) {
		return 0, fmt.Errorf("%w: %d", ErrNoSuchPartition, p)
	}
	return t.readableNode(p)
}

// Get performs a point lookup by key: it routes to the key's partition
// and charges a hash-probe (single-row) read rather than a scan.
func (t *Table) Get(key uint64) (Row, bool, metrics.Cost, error) {
	if t.scheme == RangePartition {
		// Range-partitioned tables cannot route point lookups by key;
		// fall back to scanning all partitions' keys (charged as scans).
		var total metrics.Cost
		for pi := 0; pi < len(t.parts); pi++ {
			rows, c, err := t.ScanPartition(pi)
			total = total.Merge(c)
			if err != nil {
				return Row{}, false, total, err
			}
			for _, r := range rows {
				if r.Key == key {
					return r, true, total, nil
				}
			}
		}
		return Row{}, false, total, nil
	}
	p := t.PartitionFor(key, nil)
	rows, err := t.snapshotPartition(p)
	if err != nil {
		return Row{}, false, metrics.Cost{}, err
	}
	// Hash-indexed probe: O(1) storage touch, one row read.
	cost := t.cl.ScanCost(1, t.RowBytes())
	for _, r := range rows {
		if r.Key == key {
			return r, true, cost, nil
		}
	}
	return Row{}, false, cost, nil
}

// Append inserts one row online (charged as one write on the primary and
// one LAN replication transfer) and bumps the version.
func (t *Table) Append(r Row) (metrics.Cost, error) {
	if len(r.Vec) != len(t.columns) {
		return metrics.Cost{}, fmt.Errorf("%w: row width %d, table %q width %d",
			ErrSchemaMismatch, len(r.Vec), t.name, len(t.columns))
	}
	t.mu.Lock()
	p := t.PartitionFor(r.Key, r.Vec)
	t.parts[p] = append(t.parts[p], r)
	t.cols[p].Append(r)
	t.rows++
	t.version++
	t.mu.Unlock()
	cost := t.cl.ScanCost(1, t.RowBytes()).Add(t.cl.TransferLAN(r.Bytes()))
	return cost, nil
}

// AppendBatch inserts a batch of rows online under a single version
// bump — the streaming-ingest write primitive: one batch is one durable
// unit, so model maintenance sees one data-version step per batch
// instead of one per row. The whole batch is schema-checked before any
// row lands (all-or-nothing), and each row is charged one primary write
// plus one LAN replication transfer.
func (t *Table) AppendBatch(rows []Row) (metrics.Cost, error) {
	for _, r := range rows {
		if len(r.Vec) != len(t.columns) {
			return metrics.Cost{}, fmt.Errorf("%w: row width %d, table %q width %d",
				ErrSchemaMismatch, len(r.Vec), t.name, len(t.columns))
		}
	}
	var cost metrics.Cost
	t.mu.Lock()
	for _, r := range rows {
		p := t.PartitionFor(r.Key, r.Vec)
		t.parts[p] = append(t.parts[p], r)
		t.cols[p].Append(r)
		cost = cost.Add(t.cl.ScanCost(1, t.RowBytes()).Add(t.cl.TransferLAN(r.Bytes())))
	}
	if len(rows) > 0 {
		t.rows += int64(len(rows))
		t.version++
	}
	t.mu.Unlock()
	return cost, nil
}

// UpdateWhere applies fn to every row satisfying pred and returns how
// many rows changed. Mutation is copy-on-write: a touched partition's
// rows (and each updated row's vector) are copied before fn runs and
// the copy is swapped in, so snapshots returned by earlier scans keep
// their pre-update epoch. The cost is a full scan of all partitions
// (updates are rare maintenance events in the experiments).
//
// pred and fn run under the table's write lock and therefore must not
// call back into any Table method (Rows, Get, ScanPartition, ...) —
// the lock is not reentrant and such a callback would deadlock.
func (t *Table) UpdateWhere(pred func(Row) bool, fn func(*Row)) (int64, metrics.Cost, error) {
	var changed int64
	var total metrics.Cost
	t.mu.Lock()
	defer t.mu.Unlock()
	for p := range t.parts {
		if _, err := t.readableNode(p); err != nil {
			return changed, total, err
		}
		rows := t.parts[p]
		total = total.Merge(t.cl.ScanCost(int64(len(rows)), t.RowBytes()))
		var fresh []Row // lazily copied epoch
		for i := range rows {
			if !pred(rows[i]) {
				continue
			}
			if fresh == nil {
				fresh = append(make([]Row, 0, len(rows)), rows...)
			}
			r := fresh[i]
			r.Vec = append([]float64(nil), r.Vec...)
			fn(&r)
			fresh[i] = r
			changed++
		}
		if fresh != nil {
			t.parts[p] = fresh
			t.rebuildColumns(p)
		}
	}
	if changed > 0 {
		t.version++
	}
	return changed, total, nil
}

// SortPartitions orders every partition by less. Rank-aware indexes
// (ref [30]) require score-sorted runs; the sort itself is an offline
// index-build step and is not cost-charged. Like UpdateWhere, the sort
// is copy-on-write: earlier snapshots keep their original order.
func (t *Table) SortPartitions(less func(a, b Row) bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for p := range t.parts {
		rows := append([]Row(nil), t.parts[p]...)
		sort.Slice(rows, func(i, j int) bool { return less(rows[i], rows[j]) })
		t.parts[p] = rows
		t.rebuildColumns(p)
	}
	t.version++
}

// rebuildColumns reprojects partition p after an in-place rewrite.
// Caller holds mu. Rows whose width no longer matches the schema poison
// the projection; ScanColumns then reports ErrNoColumns and readers use
// the row path.
func (t *Table) rebuildColumns(p int) {
	t.cols[p] = BuildColStore(len(t.columns), t.parts[p])
}
