// Package storage simulates the distributed storage back-end of a BDAS
// (paper §I: "a distributed file system, distributed SQL or NoSQL modern
// databases, or often a combination"): tables of numeric rows hash- or
// range-partitioned across the cluster's data nodes, with replication,
// cost-accounted scans and point reads, and a version counter that model
// maintenance (RT1.4) subscribes to.
package storage

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/metrics"
)

// ErrNoSuchPartition is returned for out-of-range partition indices.
var ErrNoSuchPartition = errors.New("storage: no such partition")

// ErrSchemaMismatch is returned when a row's width disagrees with the
// table schema.
var ErrSchemaMismatch = errors.New("storage: schema mismatch")

// ErrAllReplicasDown is returned when a partition's primary and replica
// nodes have both failed.
var ErrAllReplicasDown = errors.New("storage: all replicas down")

// Row is one stored record: a key plus a numeric attribute vector.
type Row struct {
	// Key is the record identifier (join key for rank-join workloads).
	Key uint64
	// Vec holds the attribute values, one per schema column.
	Vec []float64
}

// Bytes returns the serialised size of the row under the simulator's
// fixed-width encoding (8 bytes per field plus the key).
func (r Row) Bytes() int64 { return 8 + 8*int64(len(r.Vec)) }

// Partitioning selects how rows map to partitions.
type Partitioning int

// Partitioning schemes.
const (
	// HashPartition assigns rows by hash of key (NoSQL-store default).
	HashPartition Partitioning = iota + 1
	// RangePartition assigns rows by ranges of Vec[0] (sorted stores).
	RangePartition
)

// Table is a partitioned, replicated table. Partition i's primary lives
// on node i mod N; its replica on node (i+1) mod N. Tables are built by
// bulk load and support in-place updates (for maintenance experiments)
// but not re-partitioning.
type Table struct {
	name    string
	columns []string
	parts   [][]Row
	scheme  Partitioning
	cl      *cluster.Cluster
	version int64

	// Range partitioning metadata: partition i covers
	// [bounds[i], bounds[i+1]) of Vec[0].
	bounds []float64

	rows int64
}

// Option configures table construction.
type Option func(*Table)

// WithRangePartitioning switches the table to range partitioning on
// Vec[0] with the given ascending boundary values (len = partitions-1).
func WithRangePartitioning(bounds []float64) Option {
	return func(t *Table) {
		t.scheme = RangePartition
		t.bounds = append([]float64(nil), bounds...)
	}
}

// NewTable creates an empty table named name with the given columns,
// spread over nParts partitions on cl.
func NewTable(cl *cluster.Cluster, name string, columns []string, nParts int, opts ...Option) (*Table, error) {
	if nParts < 1 {
		return nil, fmt.Errorf("storage: table %q needs >= 1 partition", name)
	}
	if len(columns) == 0 {
		return nil, fmt.Errorf("storage: table %q needs >= 1 column", name)
	}
	t := &Table{
		name:    name,
		columns: append([]string(nil), columns...),
		parts:   make([][]Row, nParts),
		scheme:  HashPartition,
		cl:      cl,
	}
	for _, o := range opts {
		o(t)
	}
	if t.scheme == RangePartition && len(t.bounds) != nParts-1 {
		return nil, fmt.Errorf("storage: table %q: range partitioning needs %d bounds, got %d",
			name, nParts-1, len(t.bounds))
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Columns returns a copy of the column names.
func (t *Table) Columns() []string { return append([]string(nil), t.columns...) }

// Partitions returns the partition count.
func (t *Table) Partitions() int { return len(t.parts) }

// Rows returns the total row count.
func (t *Table) Rows() int64 { return t.rows }

// Version returns the table's data version; every mutating operation
// increments it. SEA agents compare versions to detect base-data updates
// (RT1.4 model maintenance).
func (t *Table) Version() int64 { return t.version }

// RowBytes returns the per-row serialised size.
func (t *Table) RowBytes() int64 { return 8 + 8*int64(len(t.columns)) }

// PartitionFor returns the partition index that key/vec map to.
func (t *Table) PartitionFor(key uint64, vec []float64) int {
	if t.scheme == RangePartition && len(vec) > 0 {
		v := vec[0]
		for i, b := range t.bounds {
			if v < b {
				return i
			}
		}
		return len(t.parts) - 1
	}
	return int(MixKey(key) % uint64(len(t.parts)))
}

// MixKey is the splitmix-style finalizer that keeps key-hash placement
// uniform even for sequential keys. It is THE row-placement hash: both
// the simulated table's hash partitioning and the distributed cluster's
// ingest routing (internal/dist) use it, so the two layers agree on
// where a key lives.
func MixKey(key uint64) uint64 {
	key ^= key >> 30
	key *= 0xbf58476d1ce4e5b9
	key ^= key >> 27
	return key
}

// primaryNode returns the node hosting partition p's primary copy.
func (t *Table) primaryNode(p int) int { return p % t.cl.Size() }

// replicaNode returns the node hosting partition p's replica.
func (t *Table) replicaNode(p int) int { return (p + 1) % t.cl.Size() }

// Load bulk-inserts rows (no cost accounting: load is out-of-band, like
// an ETL job preceding the experiments).
func (t *Table) Load(rows []Row) error {
	for _, r := range rows {
		if len(r.Vec) != len(t.columns) {
			return fmt.Errorf("%w: row width %d, table %q width %d",
				ErrSchemaMismatch, len(r.Vec), t.name, len(t.columns))
		}
		p := t.PartitionFor(r.Key, r.Vec)
		t.parts[p] = append(t.parts[p], r)
	}
	t.rows += int64(len(rows))
	t.version++
	return nil
}

// readableNode picks the primary if healthy, else the replica, else
// fails.
func (t *Table) readableNode(p int) (int, error) {
	if n := t.primaryNode(p); !t.cl.Failed(n) {
		return n, nil
	}
	if n := t.replicaNode(p); !t.cl.Failed(n) {
		return n, nil
	}
	return 0, fmt.Errorf("%w: partition %d of %q", ErrAllReplicasDown, p, t.name)
}

// ScanPartition returns partition p's rows and the cost of scanning them
// on the hosting node. The returned slice aliases table storage and must
// not be mutated.
func (t *Table) ScanPartition(p int) ([]Row, metrics.Cost, error) {
	if p < 0 || p >= len(t.parts) {
		return nil, metrics.Cost{}, fmt.Errorf("%w: %d of %d", ErrNoSuchPartition, p, len(t.parts))
	}
	if _, err := t.readableNode(p); err != nil {
		return nil, metrics.Cost{}, err
	}
	rows := t.parts[p]
	cost := t.cl.ScanCost(int64(len(rows)), t.RowBytes())
	return rows, cost, nil
}

// ScanPartitionPrefix reads only the first n rows of partition p — the
// "surgical access" primitive (P3): an index tells the caller how deep to
// read into a sorted run, and only that prefix is charged.
func (t *Table) ScanPartitionPrefix(p, n int) ([]Row, metrics.Cost, error) {
	rows, _, err := t.ScanPartition(p)
	if err != nil {
		return nil, metrics.Cost{}, err
	}
	if n > len(rows) {
		n = len(rows)
	}
	if n < 0 {
		n = 0
	}
	cost := t.cl.ScanCost(int64(n), t.RowBytes())
	return rows[:n], cost, nil
}

// ScanPartitionRange reads rows [from, to) of partition p, charging only
// that segment — the incremental pull primitive of threshold-algorithm
// operators, which deepen their read of a sorted run round by round.
func (t *Table) ScanPartitionRange(p, from, to int) ([]Row, metrics.Cost, error) {
	rows, _, err := t.ScanPartition(p)
	if err != nil {
		return nil, metrics.Cost{}, err
	}
	if from < 0 {
		from = 0
	}
	if to > len(rows) {
		to = len(rows)
	}
	if from >= to {
		return nil, metrics.Cost{}, nil
	}
	cost := t.cl.ScanCost(int64(to-from), t.RowBytes())
	return rows[from:to], cost, nil
}

// HostNode returns the node that a read of partition p would hit now
// (primary, or replica after failover).
func (t *Table) HostNode(p int) (int, error) {
	if p < 0 || p >= len(t.parts) {
		return 0, fmt.Errorf("%w: %d", ErrNoSuchPartition, p)
	}
	return t.readableNode(p)
}

// Get performs a point lookup by key: it routes to the key's partition
// and charges a hash-probe (single-row) read rather than a scan.
func (t *Table) Get(key uint64) (Row, bool, metrics.Cost, error) {
	p := t.PartitionFor(key, nil)
	if t.scheme == RangePartition {
		// Range-partitioned tables cannot route point lookups by key;
		// fall back to scanning all partitions' keys (charged as scans).
		var total metrics.Cost
		for pi := range t.parts {
			rows, c, err := t.ScanPartition(pi)
			total = total.Merge(c)
			if err != nil {
				return Row{}, false, total, err
			}
			for _, r := range rows {
				if r.Key == key {
					return r, true, total, nil
				}
			}
		}
		return Row{}, false, total, nil
	}
	if _, err := t.readableNode(p); err != nil {
		return Row{}, false, metrics.Cost{}, err
	}
	// Hash-indexed probe: O(1) storage touch, one row read.
	cost := t.cl.ScanCost(1, t.RowBytes())
	for _, r := range t.parts[p] {
		if r.Key == key {
			return r, true, cost, nil
		}
	}
	return Row{}, false, cost, nil
}

// Append inserts one row online (charged as one write on the primary and
// one LAN replication transfer) and bumps the version.
func (t *Table) Append(r Row) (metrics.Cost, error) {
	if len(r.Vec) != len(t.columns) {
		return metrics.Cost{}, fmt.Errorf("%w: row width %d, table %q width %d",
			ErrSchemaMismatch, len(r.Vec), t.name, len(t.columns))
	}
	p := t.PartitionFor(r.Key, r.Vec)
	t.parts[p] = append(t.parts[p], r)
	t.rows++
	t.version++
	cost := t.cl.ScanCost(1, t.RowBytes()).Add(t.cl.TransferLAN(r.Bytes()))
	return cost, nil
}

// AppendBatch inserts a batch of rows online under a single version
// bump — the streaming-ingest write primitive: one batch is one durable
// unit, so model maintenance sees one data-version step per batch
// instead of one per row. The whole batch is schema-checked before any
// row lands (all-or-nothing), and each row is charged one primary write
// plus one LAN replication transfer.
func (t *Table) AppendBatch(rows []Row) (metrics.Cost, error) {
	for _, r := range rows {
		if len(r.Vec) != len(t.columns) {
			return metrics.Cost{}, fmt.Errorf("%w: row width %d, table %q width %d",
				ErrSchemaMismatch, len(r.Vec), t.name, len(t.columns))
		}
	}
	var cost metrics.Cost
	for _, r := range rows {
		p := t.PartitionFor(r.Key, r.Vec)
		t.parts[p] = append(t.parts[p], r)
		cost = cost.Add(t.cl.ScanCost(1, t.RowBytes()).Add(t.cl.TransferLAN(r.Bytes())))
	}
	if len(rows) > 0 {
		t.rows += int64(len(rows))
		t.version++
	}
	return cost, nil
}

// UpdateWhere applies fn to every row satisfying pred, in place, and
// returns how many rows changed. The cost is a full scan of all
// partitions (updates are rare maintenance events in the experiments).
func (t *Table) UpdateWhere(pred func(Row) bool, fn func(*Row)) (int64, metrics.Cost, error) {
	var changed int64
	var total metrics.Cost
	for p := range t.parts {
		rows, c, err := t.ScanPartition(p)
		total = total.Merge(c)
		if err != nil {
			return changed, total, err
		}
		for i := range rows {
			if pred(rows[i]) {
				fn(&t.parts[p][i])
				changed++
			}
		}
	}
	if changed > 0 {
		t.version++
	}
	return changed, total, nil
}

// SortPartitions orders every partition by less. Rank-aware indexes
// (ref [30]) require score-sorted runs; the sort itself is an offline
// index-build step and is not cost-charged.
func (t *Table) SortPartitions(less func(a, b Row) bool) {
	for p := range t.parts {
		rows := t.parts[p]
		sort.Slice(rows, func(i, j int) bool { return less(rows[i], rows[j]) })
	}
	t.version++
}
