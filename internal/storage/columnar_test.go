package storage

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cluster"
)

func colTestTable(t *testing.T, nParts int, opts ...Option) *Table {
	t.Helper()
	cl := cluster.New(4, cluster.DefaultConfig())
	tbl, err := NewTable(cl, "cols", []string{"x", "y", "z"}, nParts, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func randRows(n int, seed int64) []Row {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{
			Key: uint64(i + 1),
			Vec: []float64{rng.Float64() * 100, rng.Float64() * 100, rng.NormFloat64()},
		}
	}
	return rows
}

// checkProjection asserts every partition's columnar view mirrors its
// rows exactly and its zone map bounds them tightly.
func checkProjection(t *testing.T, tbl *Table) {
	t.Helper()
	zones := tbl.ZoneMaps()
	for p := 0; p < tbl.Partitions(); p++ {
		rows, _, err := tbl.ScanPartition(p)
		if err != nil {
			t.Fatal(err)
		}
		view, _, err := tbl.ScanColumns(p)
		if err != nil {
			t.Fatalf("partition %d: %v", p, err)
		}
		if view.Len() != len(rows) || view.Width() != 3 {
			t.Fatalf("partition %d: view %dx%d, rows %d", p, view.Len(), view.Width(), len(rows))
		}
		for i, r := range rows {
			if view.Keys[i] != r.Key {
				t.Fatalf("partition %d row %d: key %d != %d", p, i, view.Keys[i], r.Key)
			}
			for j, v := range r.Vec {
				if view.Cols[j][i] != v {
					t.Fatalf("partition %d row %d col %d: %v != %v", p, i, j, view.Cols[j][i], v)
				}
			}
		}
		zm := zones[p]
		if zm.Rows != len(rows) {
			t.Fatalf("partition %d: zone rows %d != %d", p, zm.Rows, len(rows))
		}
		if len(rows) == 0 {
			continue
		}
		for j := 0; j < 3; j++ {
			lo, hi := rows[0].Vec[j], rows[0].Vec[j]
			for _, r := range rows[1:] {
				if r.Vec[j] < lo {
					lo = r.Vec[j]
				}
				if r.Vec[j] > hi {
					hi = r.Vec[j]
				}
			}
			if zm.Mins[j] != lo || zm.Maxs[j] != hi {
				t.Fatalf("partition %d col %d: zone [%v,%v], want [%v,%v]",
					p, j, zm.Mins[j], zm.Maxs[j], lo, hi)
			}
		}
	}
}

func TestColumnarProjectionTracksMutations(t *testing.T) {
	tbl := colTestTable(t, 4)
	if err := tbl.Load(randRows(500, 1)); err != nil {
		t.Fatal(err)
	}
	checkProjection(t, tbl)

	if _, err := tbl.Append(Row{Key: 9001, Vec: []float64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.AppendBatch(randRows(100, 2)); err != nil {
		t.Fatal(err)
	}
	checkProjection(t, tbl)

	if _, _, err := tbl.UpdateWhere(
		func(r Row) bool { return r.Vec[0] < 50 },
		func(r *Row) { r.Vec[2] += 1000 },
	); err != nil {
		t.Fatal(err)
	}
	checkProjection(t, tbl)

	tbl.SortPartitions(func(a, b Row) bool { return a.Vec[2] < b.Vec[2] })
	checkProjection(t, tbl)
}

func TestScanSnapshotSemantics(t *testing.T) {
	tbl := colTestTable(t, 2)
	if err := tbl.Load(randRows(200, 3)); err != nil {
		t.Fatal(err)
	}
	rows, _, err := tbl.ScanPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	view, _, err := tbl.ScanColumns(0)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := len(rows)
	wantFirst := rows[0].Vec[2]
	wantCol := view.Cols[2][0]

	// Appends must not grow an already-taken snapshot.
	if _, err := tbl.AppendBatch(randRows(50, 4)); err != nil {
		t.Fatal(err)
	}
	// Updates must not mutate it either (copy-on-write epochs).
	if _, _, err := tbl.UpdateWhere(
		func(Row) bool { return true },
		func(r *Row) { r.Vec[2] = -12345 },
	); err != nil {
		t.Fatal(err)
	}
	if len(rows) != wantLen || view.Len() != wantLen {
		t.Fatalf("snapshot grew: rows %d, view %d, want %d", len(rows), view.Len(), wantLen)
	}
	if rows[0].Vec[2] != wantFirst {
		t.Fatalf("row snapshot mutated: %v != %v", rows[0].Vec[2], wantFirst)
	}
	if view.Cols[2][0] != wantCol {
		t.Fatalf("column snapshot mutated: %v != %v", view.Cols[2][0], wantCol)
	}
	// The table itself sees the update.
	fresh, _, err := tbl.ScanPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	if fresh[0].Vec[2] != -12345 {
		t.Fatalf("update not visible in fresh scan: %v", fresh[0].Vec[2])
	}
}

// TestScanWhileIngest is the -race regression for the scan-aliasing
// hazard: readers scan (rows and columns) while writers append batches
// and run in-place updates. Every observed snapshot must be internally
// consistent (keys match the mirrored columns) and the race detector
// must stay quiet.
func TestScanWhileIngest(t *testing.T) {
	tbl := colTestTable(t, 4)
	if err := tbl.Load(randRows(1000, 5)); err != nil {
		t.Fatal(err)
	}
	const writers, readers, batches = 2, 4, 50

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				rows := randRows(20, seed*1000+int64(b))
				for i := range rows {
					rows[i].Key = uint64(seed)*1_000_000 + uint64(b)*100 + uint64(i)
				}
				if _, err := tbl.AppendBatch(rows); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w + 10))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, _, err := tbl.UpdateWhere(
				func(r Row) bool { return r.Key%97 == uint64(i) },
				func(r *Row) { r.Vec[1] += 1 },
			); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p := i % tbl.Partitions()
				rows, _, err := tbl.ScanPartition(p)
				if err != nil {
					t.Error(err)
					return
				}
				view, _, err := tbl.ScanColumns(p)
				if err != nil {
					t.Error(err)
					return
				}
				// A view is a consistent epoch: keys mirror rows written
				// together with their vectors.
				for i := 0; i < view.Len(); i++ {
					_ = view.Keys[i]
					for j := 0; j < view.Width(); j++ {
						_ = view.Cols[j][i]
					}
				}
				for _, r := range rows {
					_ = r.Vec[0]
				}
				if _, _, _, err := tbl.Get(uint64(i + 1)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	checkProjection(t, tbl)
	if got, want := tbl.Rows(), int64(1000+writers*batches*20); got != want {
		t.Fatalf("rows = %d, want %d", got, want)
	}
}

// TestRaggedPartitionFallsBack poisons a partition's projection by
// resizing row vectors through UpdateWhere and asserts ScanColumns
// reports ErrNoColumns while ScanPartition and zone maps stay usable.
func TestRaggedPartitionFallsBack(t *testing.T) {
	tbl := colTestTable(t, 2)
	if err := tbl.Load(randRows(100, 7)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tbl.UpdateWhere(
		func(r Row) bool { return true },
		func(r *Row) { r.Vec = r.Vec[:2] },
	); err != nil {
		t.Fatal(err)
	}
	raggedSeen := false
	for p := 0; p < tbl.Partitions(); p++ {
		_, _, err := tbl.ScanColumns(p)
		rows, _, serr := tbl.ScanPartition(p)
		if serr != nil {
			t.Fatal(serr)
		}
		if len(rows) == 0 {
			continue
		}
		if !errors.Is(err, ErrNoColumns) {
			t.Fatalf("partition %d: err = %v, want ErrNoColumns", p, err)
		}
		raggedSeen = true
		zm := tbl.ZoneMaps()[p]
		if zm.Rows != len(rows) || zm.Mins != nil {
			t.Fatalf("partition %d: ragged zone = %+v, want rows=%d nil bounds", p, zm, len(rows))
		}
	}
	if !raggedSeen {
		t.Fatal("no non-empty partition exercised the ragged path")
	}
}
