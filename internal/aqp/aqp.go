// Package aqp implements a BlinkDB-style approximate query processing
// engine (paper §II, ref [17]): stratified samples of the base data are
// materialised across the cluster's nodes, queries run over the sample
// with Horvitz-Thompson reweighting, and answers carry CLT error bounds.
//
// This is the baseline the paper critiques: "sample sizes can become
// prohibitively large", "accuracy can be quite low for many tasks", and
// the samples live *inside* the BDAS so querying them still pays
// distributed-execution costs. The E2 experiment quantifies exactly these
// three complaints against the SEA agent.
package aqp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/workload"
)

// ErrBadFraction is returned for sampling fractions outside (0, 1].
var ErrBadFraction = errors.New("aqp: sampling fraction must be in (0, 1]")

// ErrUnsupported is returned for aggregates the sampler cannot estimate.
var ErrUnsupported = errors.New("aqp: unsupported aggregate")

// Engine is the AQP engine: a sampled replica of one table.
type Engine struct {
	eng    *engine.Engine
	sample *storage.Table
	// weight is the inverse sampling fraction applied to every sampled
	// row (uniform sampling keeps one weight; stratified sampling stores
	// per-row weights in an extra column).
	weightCol int
	baseRows  int64
}

// Build materialises a sample of t with the given fraction. Stratified
// sampling allocates the budget equally across strata defined by a grid
// over the first two columns — BlinkDB's trick for keeping rare strata
// represented. The sample is itself a distributed table (that is the
// paper's architectural complaint).
func Build(eng *engine.Engine, t *storage.Table, fraction float64, stratify bool, seed int64) (*Engine, metrics.Cost, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, metrics.Cost{}, fmt.Errorf("%w: %v", ErrBadFraction, fraction)
	}
	rng := workload.NewRNG(seed)
	cols := t.Columns()
	weightCol := len(cols)
	sampleTbl, err := storage.NewTable(eng.Cluster(), t.Name()+"_sample",
		append(cols, "_weight"), t.Partitions())
	if err != nil {
		return nil, metrics.Cost{}, fmt.Errorf("aqp build: %w", err)
	}

	var buildCost metrics.Cost
	var sampled []storage.Row
	if !stratify {
		for p := 0; p < t.Partitions(); p++ {
			rows, c, err := t.ScanPartition(p)
			buildCost = buildCost.Merge(c)
			if err != nil {
				return nil, buildCost, fmt.Errorf("aqp build: %w", err)
			}
			for _, r := range rows {
				if rng.Float64() < fraction {
					vec := append(append([]float64(nil), r.Vec...), 1/fraction)
					sampled = append(sampled, storage.Row{Key: r.Key, Vec: vec})
				}
			}
		}
	} else {
		// Strata = 8x8 grid over the first two columns' observed range.
		type stratum struct {
			rows []storage.Row
		}
		const cells = 8
		var mins, maxs [2]float64
		first := true
		var all []storage.Row
		for p := 0; p < t.Partitions(); p++ {
			rows, c, err := t.ScanPartition(p)
			buildCost = buildCost.Merge(c)
			if err != nil {
				return nil, buildCost, fmt.Errorf("aqp build: %w", err)
			}
			for _, r := range rows {
				all = append(all, r)
				for j := 0; j < 2 && j < len(r.Vec); j++ {
					if first || r.Vec[j] < mins[j] {
						mins[j] = r.Vec[j]
					}
					if first || r.Vec[j] > maxs[j] {
						maxs[j] = r.Vec[j]
					}
				}
				first = false
			}
		}
		strata := make(map[int]*stratum)
		cellOf := func(r storage.Row) int {
			id := 0
			for j := 0; j < 2 && j < len(r.Vec); j++ {
				span := maxs[j] - mins[j]
				c := 0
				if span > 0 {
					c = int(float64(cells) * (r.Vec[j] - mins[j]) / span)
				}
				if c >= cells {
					c = cells - 1
				}
				id = id*cells + c
			}
			return id
		}
		for _, r := range all {
			id := cellOf(r)
			st, ok := strata[id]
			if !ok {
				st = &stratum{}
				strata[id] = st
			}
			st.rows = append(st.rows, r)
		}
		// Budget per stratum: proportional floor + equal share of the
		// rest, so small strata stay represented.
		budget := int(fraction * float64(len(all)))
		if budget < len(strata) {
			budget = len(strata)
		}
		perStratum := budget / len(strata)
		if perStratum < 1 {
			perStratum = 1
		}
		for _, st := range strata {
			n := len(st.rows)
			take := perStratum
			if take > n {
				take = n
			}
			w := float64(n) / float64(take)
			// Partial Fisher-Yates for the first `take` positions.
			for i := 0; i < take; i++ {
				j := i + rng.Intn(n-i)
				st.rows[i], st.rows[j] = st.rows[j], st.rows[i]
			}
			for _, r := range st.rows[:take] {
				vec := append(append([]float64(nil), r.Vec...), w)
				sampled = append(sampled, storage.Row{Key: r.Key, Vec: vec})
			}
		}
	}
	if err := sampleTbl.Load(sampled); err != nil {
		return nil, buildCost, fmt.Errorf("aqp build: %w", err)
	}
	// Loading the sample into the distributed store ships its bytes.
	buildCost = buildCost.Add(eng.Cluster().TransferLAN(int64(len(sampled)) * sampleTbl.RowBytes()))
	return &Engine{
		eng:       eng,
		sample:    sampleTbl,
		weightCol: weightCol,
		baseRows:  t.Rows(),
	}, buildCost, nil
}

// SampleRows returns the materialised sample's row count (the storage
// cost the paper calls prohibitive).
func (e *Engine) SampleRows() int64 { return e.sample.Rows() }

// SampleBytes returns the sample's storage footprint.
func (e *Engine) SampleBytes() int64 {
	return e.sample.Rows() * e.sample.RowBytes()
}

// Answer estimates q over the sample. The returned bound is a ~95%
// confidence half-width for Count/Sum/Avg (CLT over the weighted
// sample); Corr/RegSlope return plug-in estimates with a zero bound.
func (e *Engine) Answer(q query.Query) (query.Result, float64, metrics.Cost, error) {
	if err := q.Validate(); err != nil {
		return query.Result{}, 0, metrics.Cost{}, err
	}
	// Aggregate columns refer to the base schema; the sample appends a
	// weight column past it.
	if err := q.ValidateCols(e.weightCol); err != nil {
		return query.Result{}, 0, metrics.Cost{}, err
	}
	// Scan the (distributed) sample with the cohort engine: all sample
	// partitions, each fully read — the sample is small but the
	// distributed machinery is still paid, per the paper's critique. The
	// selection itself runs through the vectorized columnar kernel; the
	// few matching rows are materialised from the column views for the
	// weighted estimators.
	parts := make([]int, e.sample.Partitions())
	for i := range parts {
		parts[i] = i
	}
	matchedPer := make([][]storage.Row, e.sample.Partitions())
	task := func(p int) ([][]float64, int64, error) {
		view, _, err := e.sample.ScanColumns(p)
		if err != nil {
			if !errors.Is(err, storage.ErrNoColumns) {
				return nil, 0, err
			}
			rows, _, err := e.sample.ScanPartition(p)
			if err != nil {
				return nil, 0, err
			}
			var m []storage.Row
			for _, r := range rows {
				if q.Select.Contains(r.Vec) {
					m = append(m, r)
				}
			}
			matchedPer[p] = m
			return nil, int64(len(rows)), nil
		}
		idx := query.SelectIndices(q.Select, view)
		m := make([]storage.Row, 0, len(idx))
		for _, i := range idx {
			m = append(m, storage.Row{Key: view.Keys[i], Vec: view.Row(i)})
		}
		matchedPer[p] = m
		return nil, int64(view.Len()), nil
	}
	_, cost, err := e.eng.CoordinatorGatherParallel(e.sample, parts, task)
	if err != nil {
		return query.Result{}, 0, cost, fmt.Errorf("aqp answer: %w", err)
	}
	var matched []storage.Row
	for _, m := range matchedPer {
		matched = append(matched, m...)
	}
	cost = cost.Add(e.eng.Cluster().TransferLAN(int64(len(matched)) * 16))

	res, bound, err := e.estimate(q, matched)
	return res, bound, cost, err
}

func (e *Engine) estimate(q query.Query, matched []storage.Row) (query.Result, float64, error) {
	n := len(matched)
	support := int64(0)
	for _, r := range matched {
		support += int64(math.Round(r.Vec[e.weightCol]))
	}
	switch q.Aggregate {
	case query.Count:
		// HT estimator: sum of weights. Variance ~ sum w_i (w_i - 1).
		var est, varSum float64
		for _, r := range matched {
			w := r.Vec[e.weightCol]
			est += w
			varSum += w * (w - 1)
		}
		return query.Result{Value: est, Support: support}, 1.96 * math.Sqrt(varSum), nil
	case query.Sum, query.Avg:
		var wSum, wvSum, wvvSum float64
		for _, r := range matched {
			w := r.Vec[e.weightCol]
			v := colVal(r, q.Col)
			wSum += w
			wvSum += w * v
			wvvSum += w * v * v
		}
		if wSum == 0 {
			return query.Result{}, 0, nil
		}
		if q.Aggregate == query.Sum {
			mean := wvSum / wSum
			variance := wvvSum/wSum - mean*mean
			bound := 1.96 * math.Sqrt(math.Max(0, variance)) * wSum / math.Sqrt(math.Max(1, float64(n)))
			return query.Result{Value: wvSum, Support: support}, bound, nil
		}
		mean := wvSum / wSum
		variance := wvvSum/wSum - mean*mean
		bound := 1.96 * math.Sqrt(math.Max(0, variance)/math.Max(1, float64(n)))
		return query.Result{Value: mean, Support: support}, bound, nil
	case query.Var, query.Corr, query.RegSlope:
		// Plug-in estimates from the sample (weights ignored for the
		// scale-free statistics).
		res := query.EvalRows(query.Query{
			Select: q.Select, Aggregate: q.Aggregate, Col: q.Col, Col2: q.Col2,
		}, matched)
		res.Support = support
		return res, 0, nil
	default:
		return query.Result{}, 0, fmt.Errorf("%w: %v", ErrUnsupported, q.Aggregate)
	}
}

func colVal(r storage.Row, col int) float64 {
	if col < 0 || col >= len(r.Vec) {
		return 0
	}
	return r.Vec[col]
}
