package aqp

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/workload"
)

func buildBase(t *testing.T, nRows int) (*engine.Engine, *storage.Table, *exec.Executor) {
	t.Helper()
	cl := cluster.New(4, cluster.DefaultConfig())
	eng := engine.New(cl)
	tbl, err := storage.NewTable(cl, "base", []string{"x", "y", "z"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.NewRNG(51)
	rows := workload.GaussianMixture(rng, nRows, 3, workload.DefaultMixture(3), 0)
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	ex, err := exec.New(eng, tbl)
	if err != nil {
		t.Fatal(err)
	}
	return eng, tbl, ex
}

func TestBuildValidation(t *testing.T) {
	eng, tbl, _ := buildBase(t, 100)
	if _, _, err := Build(eng, tbl, 0, false, 1); !errors.Is(err, ErrBadFraction) {
		t.Errorf("fraction 0 err = %v", err)
	}
	if _, _, err := Build(eng, tbl, 1.5, false, 1); !errors.Is(err, ErrBadFraction) {
		t.Errorf("fraction 1.5 err = %v", err)
	}
}

func TestUniformSampleCountEstimate(t *testing.T) {
	eng, tbl, ex := buildBase(t, 20000)
	aq, buildCost, err := Build(eng, tbl, 0.05, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	if buildCost.RowsRead < 20000 {
		t.Error("sample build should scan the base data")
	}
	// Sample should hold ~5% of rows.
	if aq.SampleRows() < 700 || aq.SampleRows() > 1400 {
		t.Errorf("sample rows = %d, want ~1000", aq.SampleRows())
	}
	q := query.Query{
		Select:    query.Selection{Los: []float64{15, 15}, His: []float64{35, 35}},
		Aggregate: query.Count,
	}
	truth, _, err := ex.ExactCohort(q)
	if err != nil {
		t.Fatal(err)
	}
	est, bound, cost, err := aq.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	relErr := math.Abs(est.Value-truth.Value) / truth.Value
	if relErr > 0.25 {
		t.Errorf("count estimate %v vs truth %v (rel %v)", est.Value, truth.Value, relErr)
	}
	if bound <= 0 {
		t.Error("count estimate should carry a positive error bound")
	}
	// The AQP query must be much cheaper than the exact one (reads ~5%).
	if cost.RowsRead*10 > 20000 {
		t.Errorf("AQP read %d rows", cost.RowsRead)
	}
}

func TestStratifiedKeepsRareStrata(t *testing.T) {
	eng, tbl, ex := buildBase(t, 20000)
	aqU, _, err := Build(eng, tbl, 0.02, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	aqS, _, err := Build(eng, tbl, 0.02, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	// A rare region: the tail between clusters.
	q := query.Query{
		Select:    query.Selection{Los: []float64{45, 45}, His: []float64{55, 55}},
		Aggregate: query.Count,
	}
	truth, _, err := ex.ExactCohort(q)
	if err != nil {
		t.Fatal(err)
	}
	if truth.Value == 0 {
		t.Skip("tail region empty; nothing to compare")
	}
	estU, _, _, err := aqU.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	estS, _, _, err := aqS.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	errU := math.Abs(estU.Value - truth.Value)
	errS := math.Abs(estS.Value - truth.Value)
	// Stratification should not be drastically worse on rare regions;
	// typically it is better. Allow slack for randomness.
	if errS > 3*errU+0.3*truth.Value {
		t.Errorf("stratified err %v ≫ uniform err %v (truth %v)", errS, errU, truth.Value)
	}
}

func TestAvgEstimate(t *testing.T) {
	eng, tbl, ex := buildBase(t, 10000)
	aq, _, err := Build(eng, tbl, 0.1, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := query.Query{
		Select:    query.Selection{Los: []float64{15, 15}, His: []float64{35, 35}},
		Aggregate: query.Avg, Col: 2,
	}
	truth, _, err := ex.ExactCohort(q)
	if err != nil {
		t.Fatal(err)
	}
	est, bound, _, err := aq.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Value-truth.Value) > math.Max(2*bound, 3) {
		t.Errorf("avg estimate %v vs truth %v (bound %v)", est.Value, truth.Value, bound)
	}
}

func TestInvalidQuery(t *testing.T) {
	eng, tbl, _ := buildBase(t, 200)
	aq, _, err := Build(eng, tbl, 0.5, false, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := aq.Answer(query.Query{Aggregate: query.Count}); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestSampleBytesAccounting(t *testing.T) {
	eng, tbl, _ := buildBase(t, 5000)
	aq, _, err := Build(eng, tbl, 0.1, false, 6)
	if err != nil {
		t.Fatal(err)
	}
	if aq.SampleBytes() != aq.SampleRows()*(8+8*4) {
		t.Errorf("SampleBytes = %d for %d rows", aq.SampleBytes(), aq.SampleRows())
	}
}
