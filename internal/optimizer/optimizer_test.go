package optimizer

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/workload"
)

func buildExec(t *testing.T, nRows, nNodes int) *exec.Executor {
	t.Helper()
	cl := cluster.New(nNodes, cluster.DefaultConfig())
	eng := engine.New(cl)
	tbl, err := storage.NewTable(cl, "data", []string{"x", "y"}, nNodes*2)
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.NewRNG(91)
	rows := workload.GaussianMixture(rng, nRows, 2, workload.DefaultMixture(2), 0)
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	ex, err := exec.New(eng, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.BuildGrid(16); err != nil {
		t.Fatal(err)
	}
	return ex
}

func corpusQueries(n int) []query.Query {
	rng := workload.NewRNG(92)
	qs := workload.NewQueryStream(rng, workload.DefaultRegions(2), query.Count)
	return qs.Batch(n)
}

func TestTrainEmpty(t *testing.T) {
	if _, err := Train(nil); !errors.Is(err, ErrNoSamples) {
		t.Errorf("err = %v", err)
	}
}

func TestCollectTrainChoose(t *testing.T) {
	ex := buildExec(t, 4000, 8)
	samples, cost, err := CollectRangeCorpus(ex, corpusQueries(30))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 60 {
		t.Fatalf("samples = %d, want 60", len(samples))
	}
	if cost.RowsRead == 0 {
		t.Error("corpus collection charged nothing")
	}
	cm, err := Train(samples)
	if err != nil {
		t.Fatal(err)
	}
	// On this simulator cohort wins for small selective queries; the
	// learned model should agree with the measured ordering.
	f := samples[0].F
	mr := cm.Predict(f, MapReduce)
	cc := cm.Predict(f, Cohort)
	if math.IsInf(mr, 1) || math.IsInf(cc, 1) {
		t.Fatal("cost model missing a paradigm")
	}
	if cm.Choose(f) != Cohort {
		t.Errorf("Choose = %v (mr=%v cc=%v), want cohort", cm.Choose(f), mr, cc)
	}
}

func TestRegretAndAccuracy(t *testing.T) {
	ex := buildExec(t, 4000, 8)
	train, _, err := CollectRangeCorpus(ex, corpusQueries(40))
	if err != nil {
		t.Fatal(err)
	}
	cm, err := Train(train)
	if err != nil {
		t.Fatal(err)
	}
	// Held-out set.
	held, _, err := CollectRangeCorpus(ex, corpusQueries(20)[10:])
	if err != nil {
		t.Fatal(err)
	}
	var fs []Features
	var pairs []map[Paradigm]float64
	for i := 0; i < len(held); i += 2 {
		fs = append(fs, held[i].F)
		pairs = append(pairs, map[Paradigm]float64{
			held[i].Paradigm:   held[i].Seconds,
			held[i+1].Paradigm: held[i+1].Seconds,
		})
	}
	reg := Regret(cm, fs, pairs)
	if reg["learned"] > reg["always-mapreduce"] {
		t.Errorf("learned regret %v worse than always-mapreduce %v",
			reg["learned"], reg["always-mapreduce"])
	}
	acc := Accuracy(cm, fs, pairs)
	if acc < 0.8 {
		t.Errorf("selection accuracy = %v, want >= 0.8", acc)
	}
}

func TestParadigmString(t *testing.T) {
	if MapReduce.String() != "mapreduce" || Cohort.String() != "coordinator-cohort" {
		t.Error("paradigm names wrong")
	}
	if Paradigm(9).String() == "" {
		t.Error("unknown paradigm should still print")
	}
}

func TestSelectInferenceModelQuadratic(t *testing.T) {
	rng := workload.NewRNG(93)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 150; i++ {
		x := rng.Float64()*6 - 3
		xs = append(xs, []float64{x})
		ys = append(ys, 2*x*x-x+1)
	}
	best, scores, err := SelectInferenceModel(xs, ys, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if best != "quadratic" {
		t.Errorf("best = %q (scores %v), want quadratic", best, scores)
	}
}

func TestRegretEmptyInputs(t *testing.T) {
	cm, err := Train([]Sample{{F: Features{Rows: 10}, Paradigm: Cohort, Seconds: 1}})
	if err != nil {
		t.Fatal(err)
	}
	reg := Regret(cm, nil, nil)
	if reg["learned"] != 0 {
		t.Errorf("empty regret = %v", reg)
	}
	if Accuracy(cm, nil, nil) != 0 {
		t.Error("empty accuracy should be 0")
	}
	// Choosing among one paradigm returns it.
	if cm.Choose(Features{Rows: 10}) != Cohort {
		t.Error("single-paradigm choose wrong")
	}
}
