// Package optimizer implements P4 ("understand the alternatives and
// select optimal processing methods", RT3): it collects a corpus of
// measured execution costs for the alternative processing methods of an
// operator, trains per-alternative learned cost models over workload
// features, and selects the predicted-cheapest alternative on the fly
// (objective O6: "training, learning, and building optimising modules,
// which on-the-fly adopt the best execution method").
//
// It also wraps the per-quantum inference-model selection of RT3.3 /
// ref [48] ("query-driven regression model selection") over the ml
// package's cross-validation machinery.
package optimizer

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/query"
)

// ErrNoSamples is returned when training on an empty corpus.
var ErrNoSamples = errors.New("optimizer: no samples")

// Paradigm identifies one execution alternative (RT3.2).
type Paradigm int

// The two distributed processing paradigms the paper contrasts.
const (
	// MapReduce engages every data node through the full stack.
	MapReduce Paradigm = iota + 1
	// Cohort has a coordinator surgically engage selected nodes.
	Cohort
)

// String names the paradigm.
func (p Paradigm) String() string {
	switch p {
	case MapReduce:
		return "mapreduce"
	case Cohort:
		return "coordinator-cohort"
	default:
		return fmt.Sprintf("Paradigm(%d)", int(p))
	}
}

// Features describes one task for the cost models. The paper's examples
// (join selectivities and distribution degrees, kNN's k and data
// distribution) map onto these.
type Features struct {
	// Rows is the base data size.
	Rows float64
	// Nodes is the cluster size.
	Nodes float64
	// Selectivity is the estimated fraction of rows the task touches.
	Selectivity float64
	// K is the result-size parameter (top-K, kNN k); 0 when unused.
	K float64
}

func (f Features) vec() []float64 {
	// Log-scaled sizes stabilise the tree splits across magnitudes.
	return []float64{
		math.Log1p(f.Rows),
		f.Nodes,
		f.Selectivity,
		math.Log1p(f.K),
	}
}

// Sample is one measured execution.
type Sample struct {
	// F holds the task features.
	F Features
	// Paradigm is the alternative that was run.
	Paradigm Paradigm
	// Seconds is the measured virtual execution time.
	Seconds float64
}

// CostModel predicts task cost per paradigm.
type CostModel struct {
	models map[Paradigm]ml.Regressor
}

// Train fits one gradient-boosted cost model per paradigm present in the
// corpus, regressing log-seconds on features.
func Train(samples []Sample) (*CostModel, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	byP := make(map[Paradigm][]Sample)
	for _, s := range samples {
		byP[s.Paradigm] = append(byP[s.Paradigm], s)
	}
	cm := &CostModel{models: make(map[Paradigm]ml.Regressor, len(byP))}
	for p, ss := range byP {
		xs := make([][]float64, len(ss))
		ys := make([]float64, len(ss))
		for i, s := range ss {
			xs[i] = s.F.vec()
			ys[i] = math.Log1p(s.Seconds)
		}
		m := &ml.GradientBoosting{Rounds: 60, LearningRate: 0.15, MaxDepth: 3}
		if err := m.Fit(xs, ys); err != nil {
			return nil, fmt.Errorf("optimizer train %v: %w", p, err)
		}
		cm.models[p] = m
	}
	return cm, nil
}

// Predict returns the model's cost estimate (seconds) for running f
// under p; +Inf when the paradigm has no model.
func (cm *CostModel) Predict(f Features, p Paradigm) float64 {
	m, ok := cm.models[p]
	if !ok {
		return math.Inf(1)
	}
	return math.Expm1(m.Predict(f.vec()))
}

// Choose returns the predicted-cheapest paradigm for f.
func (cm *CostModel) Choose(f Features) Paradigm {
	ps := make([]Paradigm, 0, len(cm.models))
	for p := range cm.models {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	best := Paradigm(0)
	bestCost := math.Inf(1)
	for _, p := range ps {
		if c := cm.Predict(f, p); c < bestCost {
			bestCost = c
			best = p
		}
	}
	return best
}

// CollectRangeCorpus executes each query under both paradigms on ex and
// returns the measured samples plus the total collection cost — RT3's
// "in-depth experimentation in order to identify costs".
func CollectRangeCorpus(ex *exec.Executor, queries []query.Query) ([]Sample, metrics.Cost, error) {
	var out []Sample
	var total metrics.Cost
	nodes := float64(ex.Engine().Cluster().Size())
	rows := float64(ex.Table().Rows())
	for i, q := range queries {
		sel := ex.EstimateSelectivity(q.Select)
		f := Features{Rows: rows, Nodes: nodes, Selectivity: sel}
		_, mrCost, err := ex.ExactMapReduce(q)
		if err != nil {
			return nil, total, fmt.Errorf("corpus query %d: %w", i, err)
		}
		total = total.Add(mrCost)
		out = append(out, Sample{F: f, Paradigm: MapReduce, Seconds: mrCost.Time.Seconds()})
		_, ccCost, err := ex.ExactCohort(q)
		if err != nil {
			return nil, total, fmt.Errorf("corpus query %d: %w", i, err)
		}
		total = total.Add(ccCost)
		out = append(out, Sample{F: f, Paradigm: Cohort, Seconds: ccCost.Time.Seconds()})
	}
	return out, total, nil
}

// Regret evaluates a trained model on held-out paired measurements:
// pairs[i] holds the measured seconds per paradigm for features fs[i].
// It returns the mean regret (chosen minus best, in seconds) of the
// model's choices and of the two static policies, keyed by policy name —
// the E8 rows.
func Regret(cm *CostModel, fs []Features, pairs []map[Paradigm]float64) map[string]float64 {
	out := map[string]float64{"learned": 0, "always-mapreduce": 0, "always-cohort": 0, "oracle": 0}
	if len(fs) == 0 {
		return out
	}
	for i, f := range fs {
		best := math.Inf(1)
		for _, sec := range pairs[i] {
			if sec < best {
				best = sec
			}
		}
		chosen := cm.Choose(f)
		out["learned"] += pick(pairs[i], chosen) - best
		out["always-mapreduce"] += pick(pairs[i], MapReduce) - best
		out["always-cohort"] += pick(pairs[i], Cohort) - best
	}
	n := float64(len(fs))
	for k := range out {
		out[k] /= n
	}
	return out
}

func pick(m map[Paradigm]float64, p Paradigm) float64 {
	if v, ok := m[p]; ok {
		return v
	}
	return math.Inf(1)
}

// Accuracy returns the fraction of held-out tasks where the model picks
// the truly cheapest paradigm.
func Accuracy(cm *CostModel, fs []Features, pairs []map[Paradigm]float64) float64 {
	if len(fs) == 0 {
		return 0
	}
	correct := 0
	for i, f := range fs {
		best := Paradigm(0)
		bestSec := math.Inf(1)
		for p, sec := range pairs[i] {
			if sec < bestSec {
				bestSec = sec
				best = p
			}
		}
		if cm.Choose(f) == best {
			correct++
		}
	}
	return float64(correct) / float64(len(fs))
}

// StandardRegressorFamilies returns the candidate inference-model
// families of RT3.3 (linear, quadratic via polynomial features, kNN,
// boosted trees) for query-driven model selection (ref [48]).
func StandardRegressorFamilies() map[string]func() ml.Regressor {
	return map[string]func() ml.Regressor{
		"linear": func() ml.Regressor { return &ml.LinearRegression{Ridge: 1e-6} },
		"quadratic": func() ml.Regressor {
			return &polyRegressor{inner: &ml.LinearRegression{Ridge: 1e-6}}
		},
		"knn":     func() ml.Regressor { return &ml.KNNRegressor{K: 7, Weighted: true} },
		"boosted": func() ml.Regressor { return &ml.GradientBoosting{Rounds: 40, MaxDepth: 2} },
	}
}

// polyRegressor lifts a linear model onto degree-2 polynomial features.
type polyRegressor struct {
	inner *ml.LinearRegression
}

// Fit expands features and fits the inner model.
func (p *polyRegressor) Fit(xs [][]float64, ys []float64) error {
	ex := make([][]float64, len(xs))
	for i, x := range xs {
		ex[i] = ml.PolyFeatures(x)
	}
	return p.inner.Fit(ex, ys)
}

// Predict expands features and evaluates the inner model.
func (p *polyRegressor) Predict(x []float64) float64 {
	return p.inner.Predict(ml.PolyFeatures(x))
}

// SelectInferenceModel picks the best regressor family for the given
// training pairs by k-fold cross-validation (RT3.3 / ref [48]).
func SelectInferenceModel(xs [][]float64, ys []float64, folds int, rng *rand.Rand) (string, map[string]float64, error) {
	return ml.SelectModel(StandardRegressorFamilies(), xs, ys, folds, rng)
}
