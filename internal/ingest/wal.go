// Package ingest is the live data plane's durability and model-
// maintenance layer: a per-partition write-ahead log (segment files,
// CRC'd records, fsync batching) that makes streaming appends survive
// crashes, and a drift maintainer that watches a live agent's ingest
// pressure and re-quantises it in the background with a double-buffered
// swap so reads never block on retraining.
//
// The WAL follows the shape of durable per-partition shard stores
// (SemaDB's diskstore/WAL layer) and the snapshot-plus-log-replay
// recovery of incremental backup designs: a restarted node replays its
// segments to rebuild partition state, and a fresh replica recovers via
// model snapshot + log tail instead of a full retrain. internal/dist
// wires the log under each cluster member's owned partitions and
// replicates sequenced batches across the ring owners at a write
// quorum.
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/storage"
)

// WAL record layout (all little-endian):
//
//	[8 seq][4 payloadLen][payload][4 crc32(seq+len+payload)]
//
// payload:
//
//	[4 rowCount] then per row: [8 key][2 dim][8*dim float64 bits]
//
// Records are appended to segment files `seg-<n>.wal`; a segment is
// rotated once it exceeds SegmentBytes. A torn tail (partial record at
// the end of the newest segment, from a crash mid-write) is tolerated
// on replay: everything before it is recovered, the tail is discarded.
const (
	recHeaderBytes  = 12 // seq + payloadLen
	recTrailerBytes = 4  // crc
	segPrefix       = "seg-"
	segSuffix       = ".wal"
)

// ErrCorrupt is returned when a WAL segment is damaged somewhere other
// than its tail (a torn tail is silently truncated instead).
var ErrCorrupt = errors.New("ingest: corrupt WAL record")

// ErrStaleSeq is returned when Append is given a sequence number that
// does not advance the log.
var ErrStaleSeq = errors.New("ingest: stale WAL sequence")

// Entry is one replayed WAL record: a sequenced row batch.
type Entry struct {
	Seq  uint64
	Rows []storage.Row
}

// Options tunes a Log. The zero value is usable.
type Options struct {
	// SegmentBytes rotates to a new segment file once the active one
	// exceeds this size (default 4 MiB).
	SegmentBytes int64
	// SyncEvery fsyncs after every N appended batches (default 1:
	// every append is durable before it is acknowledged). Larger values
	// batch fsyncs — higher throughput, bounded loss window.
	SyncEvery int
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 1
	}
	return o
}

// Log is a per-partition write-ahead log: sequenced row batches
// appended to CRC'd segment files under one directory. It is safe for
// concurrent use; appends serialise internally.
type Log struct {
	dir string
	opt Options

	mu       sync.Mutex
	f        *os.File
	segSize  int64
	segIndex int
	lastSeq  uint64
	unsynced int
}

// Open opens (or creates) the log rooted at dir and positions it for
// appending after the last intact record. Call Replay to read the
// recovered entries.
func Open(dir string, opt Options) (*Log, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: open WAL %s: %w", dir, err)
	}
	l := &Log{dir: dir, opt: opt}
	segs, err := l.segments()
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := l.rotateLocked(1); err != nil {
			return nil, err
		}
		return l, nil
	}
	// Scan every segment to find the last intact record; truncate a
	// torn tail on the newest segment so the next append lands cleanly.
	for i, seg := range segs {
		final := i == len(segs)-1
		valid, last, err := scanSegment(filepath.Join(dir, seg), nil)
		if err != nil {
			// Only a malformed record at the END of the NEWEST segment
			// is a torn tail (a crash mid-write); IO errors and damage
			// in older segments must surface, not silently truncate
			// acked records.
			if !final || !errors.Is(err, ErrCorrupt) {
				return nil, fmt.Errorf("ingest: segment %s: %w", seg, err)
			}
			// Torn tail: keep the intact prefix.
			if terr := os.Truncate(filepath.Join(dir, seg), valid); terr != nil {
				return nil, fmt.Errorf("ingest: truncate torn tail of %s: %w", seg, terr)
			}
		}
		if last > l.lastSeq {
			l.lastSeq = last
		}
	}
	lastSeg := segs[len(segs)-1]
	l.segIndex = segNumber(lastSeg)
	f, err := os.OpenFile(filepath.Join(dir, lastSeg), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ingest: open segment %s: %w", lastSeg, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	l.f, l.segSize = f, st.Size()
	return l, nil
}

// LastSeq returns the sequence number of the last appended (or
// recovered) batch; 0 means the log is empty.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// Append writes one sequenced row batch. seq must advance the log
// (seq > LastSeq); per-partition sequencing is assigned by the
// partition's primary. The record is fsynced according to
// Options.SyncEvery before Append returns.
func (l *Log) Append(seq uint64, rows []storage.Row) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq <= l.lastSeq {
		return fmt.Errorf("%w: got %d, last is %d", ErrStaleSeq, seq, l.lastSeq)
	}
	rec := encodeRecord(seq, rows)
	if l.segSize > 0 && l.segSize+int64(len(rec)) > l.opt.SegmentBytes {
		if err := l.rotateLocked(l.segIndex + 1); err != nil {
			return err
		}
	}
	if _, err := l.f.Write(rec); err != nil {
		return fmt.Errorf("ingest: append seq %d: %w", seq, err)
	}
	l.segSize += int64(len(rec))
	l.lastSeq = seq
	l.unsynced++
	if l.unsynced >= l.opt.SyncEvery {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Segments reports how many segment files the log currently spans —
// the WAL growth gauge the nodes export on /v1/metrics.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs, err := l.segments()
	if err != nil {
		return 0
	}
	return len(segs)
}

// Sync flushes any batched appends to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.unsynced == 0 {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("ingest: fsync: %w", err)
	}
	l.unsynced = 0
	return nil
}

// Close syncs and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// Replay streams every recovered entry, in sequence order, to fn. It
// reads from disk and may run concurrently with appends (appends past
// the replay snapshot are not observed).
func (l *Log) Replay(fn func(Entry) error) error {
	l.mu.Lock()
	segs, err := l.segments()
	l.mu.Unlock()
	if err != nil {
		return err
	}
	for i, seg := range segs {
		final := i == len(segs)-1
		if _, _, err := scanSegment(filepath.Join(l.dir, seg), fn); err != nil {
			var cb *callbackError
			if errors.As(err, &cb) {
				return cb.err
			}
			if final && errors.Is(err, ErrCorrupt) {
				// A malformed tail record on the active segment is an
				// append racing this replay snapshot (Open already
				// truncated any crash-torn tail); everything intact was
				// delivered.
				return nil
			}
			return fmt.Errorf("ingest: segment %s: %w", seg, err)
		}
	}
	return nil
}

// EntriesAfter returns every entry with Seq > after — the log tail a
// lagging replica fetches to catch up after recovery.
func (l *Log) EntriesAfter(after uint64) ([]Entry, error) {
	out, _, err := l.EntriesAfterN(after, 0)
	return out, err
}

// errStopReplay aborts a Replay early once a bounded tail fetch has
// collected enough entries; it never escapes this package.
var errStopReplay = errors.New("ingest: stop replay")

// EntriesAfterN returns up to max entries with Seq > after (max <= 0
// means unbounded) and reports whether the tail was truncated at the
// cap — the caller then fetches another round starting after the last
// returned sequence. Bounding the batch keeps one /v1/walfetch response
// from ballooning with an arbitrarily long tail.
func (l *Log) EntriesAfterN(after uint64, max int) ([]Entry, bool, error) {
	var out []Entry
	truncated := false
	err := l.Replay(func(e Entry) error {
		if e.Seq <= after {
			return nil
		}
		if max > 0 && len(out) >= max {
			truncated = true
			return errStopReplay
		}
		out = append(out, e)
		return nil
	})
	if errors.Is(err, errStopReplay) {
		err = nil
	}
	return out, truncated, err
}

// Reset discards the log's entire contents: the active segment is
// closed, every segment file is removed, and a fresh first segment is
// opened with LastSeq back at 0. A replica re-seeding a partition from
// a peer snapshot calls Reset and then appends the snapshot's ingested
// tail as one entry, so a later restart replays exactly the rows the
// base data does not already re-lay.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("ingest: reset WAL %s: %w", l.dir, err)
		}
		l.f = nil
	}
	segs, err := l.segments()
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if err := os.Remove(filepath.Join(l.dir, seg)); err != nil {
			return fmt.Errorf("ingest: reset WAL %s: %w", l.dir, err)
		}
	}
	l.lastSeq, l.unsynced = 0, 0
	return l.rotateLocked(1)
}

// rotateLocked opens segment n as the active file.
func (l *Log) rotateLocked(n int) error {
	if l.f != nil {
		if err := l.syncLocked(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return err
		}
	}
	name := fmt.Sprintf("%s%08d%s", segPrefix, n, segSuffix)
	f, err := os.OpenFile(filepath.Join(l.dir, name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("ingest: create segment %s: %w", name, err)
	}
	l.f, l.segIndex, l.segSize = f, n, 0
	return nil
}

// segments lists the log's segment file names in index order.
func (l *Log) segments() ([]string, error) {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("ingest: list %s: %w", l.dir, err)
	}
	var segs []string
	for _, e := range ents {
		name := e.Name()
		if strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix) {
			segs = append(segs, name)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segNumber(segs[i]) < segNumber(segs[j]) })
	return segs, nil
}

func segNumber(name string) int {
	var n int
	fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), "%d", &n)
	return n
}

// callbackError wraps an error returned by a Replay callback so it is
// distinguishable from segment corruption.
type callbackError struct{ err error }

func (e *callbackError) Error() string { return "ingest: replay callback: " + e.err.Error() }
func (e *callbackError) Unwrap() error { return e.err }

// scanSegment reads records from one segment, calling fn (when non-nil)
// per entry. It returns the byte offset after the last intact record
// and the highest sequence seen. A torn or corrupt record stops the
// scan with a non-nil error (callers decide whether the tail may be
// truncated).
func scanSegment(path string, fn func(Entry) error) (validBytes int64, lastSeq uint64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	off := int64(0)
	for int(off) < len(data) {
		rest := data[off:]
		if len(rest) < recHeaderBytes {
			return off, lastSeq, fmt.Errorf("%w: short header at %d", ErrCorrupt, off)
		}
		seq := binary.LittleEndian.Uint64(rest[0:8])
		plen := binary.LittleEndian.Uint32(rest[8:12])
		total := recHeaderBytes + int(plen) + recTrailerBytes
		if len(rest) < total {
			return off, lastSeq, fmt.Errorf("%w: short record at %d", ErrCorrupt, off)
		}
		want := binary.LittleEndian.Uint32(rest[recHeaderBytes+int(plen):])
		if crc32.ChecksumIEEE(rest[:recHeaderBytes+int(plen)]) != want {
			return off, lastSeq, fmt.Errorf("%w: bad checksum at %d", ErrCorrupt, off)
		}
		rows, derr := decodePayload(rest[recHeaderBytes : recHeaderBytes+int(plen)])
		if derr != nil {
			return off, lastSeq, fmt.Errorf("%w: %v", ErrCorrupt, derr)
		}
		if fn != nil {
			if ferr := fn(Entry{Seq: seq, Rows: rows}); ferr != nil {
				return off, lastSeq, &callbackError{err: ferr}
			}
		}
		lastSeq = seq
		off += int64(total)
	}
	return off, lastSeq, nil
}

func encodeRecord(seq uint64, rows []storage.Row) []byte {
	plen := 4
	for _, r := range rows {
		plen += 8 + 2 + 8*len(r.Vec)
	}
	buf := make([]byte, recHeaderBytes+plen+recTrailerBytes)
	binary.LittleEndian.PutUint64(buf[0:8], seq)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(plen))
	p := buf[recHeaderBytes:]
	binary.LittleEndian.PutUint32(p, uint32(len(rows)))
	o := 4
	for _, r := range rows {
		binary.LittleEndian.PutUint64(p[o:], r.Key)
		o += 8
		binary.LittleEndian.PutUint16(p[o:], uint16(len(r.Vec)))
		o += 2
		for _, v := range r.Vec {
			binary.LittleEndian.PutUint64(p[o:], math.Float64bits(v))
			o += 8
		}
	}
	crc := crc32.ChecksumIEEE(buf[:recHeaderBytes+plen])
	binary.LittleEndian.PutUint32(buf[recHeaderBytes+plen:], crc)
	return buf
}

func decodePayload(p []byte) ([]storage.Row, error) {
	if len(p) < 4 {
		return nil, io.ErrUnexpectedEOF
	}
	count := int(binary.LittleEndian.Uint32(p))
	rows := make([]storage.Row, 0, count)
	o := 4
	for i := 0; i < count; i++ {
		if len(p) < o+10 {
			return nil, io.ErrUnexpectedEOF
		}
		key := binary.LittleEndian.Uint64(p[o:])
		o += 8
		dim := int(binary.LittleEndian.Uint16(p[o:]))
		o += 2
		if len(p) < o+8*dim {
			return nil, io.ErrUnexpectedEOF
		}
		vec := make([]float64, dim)
		for j := 0; j < dim; j++ {
			vec[j] = math.Float64frombits(binary.LittleEndian.Uint64(p[o:]))
			o += 8
		}
		rows = append(rows, storage.Row{Key: key, Vec: vec})
	}
	return rows, nil
}
