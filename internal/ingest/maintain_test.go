package ingest

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/workload"
)

// stubOracle is a thread-safe exact oracle over a mutable row set.
type stubOracle struct {
	mu   sync.Mutex
	rows []storage.Row
	ver  int64
}

func (o *stubOracle) Answer(q query.Query) (query.Result, metrics.Cost, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return query.EvalRows(q, o.rows), metrics.Cost{}, nil
}

func (o *stubOracle) DataVersion() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.ver
}

func (o *stubOracle) ingest(rows []storage.Row) int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.rows = append(o.rows, rows...)
	o.ver++
	return o.ver
}

func TestMaintainerRebuildsOnUnattributedDrift(t *testing.T) {
	oracle := &stubOracle{rows: workload.StandardRows(6000, 1), ver: 1}
	cfg := core.DefaultConfig(2)
	cfg.TrainingQueries = 150
	cfg.DriftRowBudget = 100
	ag, err := core.NewAgent(oracle, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Train on the standard regions.
	qs := workload.NewQueryStream(workload.NewRNG(7), workload.DefaultRegions(2), query.Count)
	for i := 0; i < 260; i++ {
		if _, err := ag.Answer(qs.Next()); err != nil {
			t.Fatal(err)
		}
	}

	m := NewMaintainer(ag, MaintainerConfig{
		RebuildUnattributed: 300,
		MinRecorded:         50,
	})

	// No drift yet: check must be a no-op.
	if rebuilt, _ := m.CheckNow(); rebuilt {
		t.Fatalf("rebuild fired without drift")
	}

	// The analysts' interest (and the data) moves to a region the agent
	// never quantised: record the new queries, absorb the new rows.
	shifted := []workload.InterestRegion{{Center: []float64{55, 10}, Spread: 3, Extent: 5, ExtentJitter: 0.3, Weight: 1}}
	newQS := workload.NewQueryStream(workload.NewRNG(11), shifted, query.Count)
	for i := 0; i < 120; i++ {
		m.Record(newQS.Next())
	}
	fresh := workload.GaussianMixture(workload.NewRNG(3), 400, 3,
		[]workload.MixtureComponent{{Center: []float64{55, 10, 0}, Std: 4, Weight: 1}}, 500000)
	ver := oracle.ingest(fresh)
	vecs := make([][]float64, len(fresh))
	for i, r := range fresh {
		vecs[i] = r.Vec
	}
	res := ag.AbsorbRows(ver, vecs)
	if res.Unattributed < 300 {
		t.Fatalf("expected mostly-unattributed drift rows, got %+v", res)
	}

	rebuilt, err := m.CheckNow()
	if err != nil {
		t.Fatal(err)
	}
	if !rebuilt {
		t.Fatalf("maintainer did not rebuild under unattributed drift")
	}
	if m.Rebuilds() != 1 {
		t.Fatalf("Rebuilds = %d, want 1", m.Rebuilds())
	}
	// The rebuilt agent now covers the new interest region data-lessly.
	var predicted int
	for i := 0; i < 60; i++ {
		if _, ok := ag.TryPredict(newQS.Next()); ok {
			predicted++
		}
	}
	if predicted == 0 {
		t.Fatalf("rebuilt agent still cannot serve the drifted region")
	}
	// A second check without new drift must not rebuild again.
	if again, _ := m.CheckNow(); again {
		t.Fatalf("rebuild re-fired without fresh drift")
	}
}

func TestMaintainerStartStop(t *testing.T) {
	oracle := &stubOracle{rows: workload.StandardRows(500, 1), ver: 1}
	cfg := core.DefaultConfig(2)
	cfg.DriftRowBudget = 100
	ag, err := core.NewAgent(oracle, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMaintainer(ag, MaintainerConfig{})
	m.Start()
	m.Start() // idempotent
	m.Stop()
	m.Stop() // idempotent
}
