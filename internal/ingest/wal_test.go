package ingest

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/storage"
)

func testRows(n int, firstKey uint64) []storage.Row {
	rows := make([]storage.Row, n)
	for i := range rows {
		rows[i] = storage.Row{
			Key: firstKey + uint64(i),
			Vec: []float64{float64(i), float64(i) * 0.5, -float64(i)},
		}
	}
	return rows
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want []Entry
	for seq := uint64(1); seq <= 5; seq++ {
		rows := testRows(int(seq), seq*100)
		if err := l.Append(seq, rows); err != nil {
			t.Fatal(err)
		}
		want = append(want, Entry{Seq: seq, Rows: rows})
	}
	if got := l.LastSeq(); got != 5 {
		t.Fatalf("LastSeq = %d, want 5", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and replay: all batches, in order, bit-identical.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.LastSeq(); got != 5 {
		t.Fatalf("recovered LastSeq = %d, want 5", got)
	}
	var got []Entry
	if err := l2.Replay(func(e Entry) error { got = append(got, e); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d entries, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.Seq != want[i].Seq || len(e.Rows) != len(want[i].Rows) {
			t.Fatalf("entry %d: got seq %d / %d rows, want seq %d / %d rows",
				i, e.Seq, len(e.Rows), want[i].Seq, len(want[i].Rows))
		}
		for j, r := range e.Rows {
			w := want[i].Rows[j]
			if r.Key != w.Key {
				t.Fatalf("entry %d row %d: key %d != %d", i, j, r.Key, w.Key)
			}
			for k := range r.Vec {
				if r.Vec[k] != w.Vec[k] {
					t.Fatalf("entry %d row %d col %d: %v != %v", i, j, k, r.Vec[k], w.Vec[k])
				}
			}
		}
	}
}

func TestWALStaleSeqRejected(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(3, testRows(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(3, testRows(1, 0)); !errors.Is(err, ErrStaleSeq) {
		t.Fatalf("duplicate seq error = %v, want ErrStaleSeq", err)
	}
	if err := l.Append(2, testRows(1, 0)); !errors.Is(err, ErrStaleSeq) {
		t.Fatalf("regressing seq error = %v, want ErrStaleSeq", err)
	}
}

func TestWALSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every append or two.
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 20; seq++ {
		if err := l.Append(seq, testRows(3, seq)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) < 3 {
		t.Fatalf("expected >= 3 segments after rotation, got %d", len(ents))
	}
	l2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var n int
	var lastSeq uint64
	if err := l2.Replay(func(e Entry) error {
		if e.Seq <= lastSeq {
			return fmt.Errorf("out-of-order seq %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 20 || lastSeq != 20 {
		t.Fatalf("replayed %d entries up to seq %d, want 20/20", n, lastSeq)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := l.Append(seq, testRows(2, seq)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: chop bytes off the segment tail.
	seg := filepath.Join(dir, "seg-00000001.wal")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.LastSeq(); got != 2 {
		t.Fatalf("LastSeq after torn tail = %d, want 2", got)
	}
	var n int
	if err := l2.Replay(func(Entry) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("replayed %d entries after torn tail, want 2", n)
	}
	// The log must accept fresh appends after truncation.
	if err := l2.Append(3, testRows(1, 9)); err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	if err := l2.Replay(func(e Entry) error { seqs = append(seqs, e.Seq); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 || seqs[2] != 3 {
		t.Fatalf("post-recovery replay seqs = %v, want [1 2 3]", seqs)
	}
}

func TestWALEntriesAfter(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for seq := uint64(1); seq <= 6; seq++ {
		if err := l.Append(seq, testRows(1, seq)); err != nil {
			t.Fatal(err)
		}
	}
	tail, err := l.EntriesAfter(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 2 || tail[0].Seq != 5 || tail[1].Seq != 6 {
		t.Fatalf("EntriesAfter(4) seqs = %v, want [5 6]", tail)
	}
	all, err := l.EntriesAfter(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 6 {
		t.Fatalf("EntriesAfter(0) len = %d, want 6", len(all))
	}
}

func TestWALSyncBatching(t *testing.T) {
	l, err := Open(t.TempDir(), Options{SyncEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for seq := uint64(1); seq <= 10; seq++ {
		if err := l.Append(seq, testRows(1, seq)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	var n int
	if err := l.Replay(func(Entry) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("replayed %d, want 10", n)
	}
}
