package ingest

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/query"
)

// MaintainerConfig tunes the drift maintainer. Zero values take the
// defaults noted per field.
type MaintainerConfig struct {
	// Interval is the background poll period (default 500ms).
	Interval time.Duration
	// RecentWindow is how many recently served queries are remembered
	// as the rebuild training sample (default 512).
	RecentWindow int
	// MinRecorded blocks rebuilds until at least this many queries have
	// been recorded — re-quantising from a tiny sample would shrink
	// coverage instead of fixing it (default 64).
	MinRecorded int
	// RebuildUnattributed triggers a rebuild once this many absorbed
	// rows since the last check fell outside every quantum: the data is
	// growing somewhere the learned query space does not cover
	// (default 500).
	RebuildUnattributed int64
	// RebuildInvalidations triggers a rebuild once this many
	// drift-budget invalidation events have fired since the last check:
	// the existing quanta are being churned faster than probation can
	// re-earn trust (default 16).
	RebuildInvalidations int64
	// OnRebuild, when set, observes every completed rebuild attempt
	// (serving layers hook their metrics recorder here).
	OnRebuild func(err error)
}

func (c MaintainerConfig) withDefaults() MaintainerConfig {
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.RecentWindow <= 0 {
		c.RecentWindow = 512
	}
	if c.MinRecorded <= 0 {
		c.MinRecorded = 64
	}
	if c.RebuildUnattributed <= 0 {
		c.RebuildUnattributed = 500
	}
	if c.RebuildInvalidations <= 0 {
		c.RebuildInvalidations = 16
	}
	return c
}

// Maintainer watches one live agent's ingest pressure (core.Agent's
// drift accounting) and re-quantises it in the background when the
// incremental path stops being enough: the rebuild trains a shadow
// agent on the recently served queries, then swaps it in with one brief
// write-locked restore. Reads keep flowing against the old models for
// the whole retrain (double buffering) — the serving layer never blocks
// on model maintenance.
type Maintainer struct {
	ag  *core.Agent
	cfg MaintainerConfig

	mu         sync.Mutex
	recent     []query.Query
	pos        int
	full       bool
	lastUnattr int64
	lastInval  int64
	rebuilds   int64
	lastErr    error
	stop       chan struct{}
	done       chan struct{}
}

// NewMaintainer builds a maintainer over ag. Call Record from the
// serving path and Start to run the background loop.
func NewMaintainer(ag *core.Agent, cfg MaintainerConfig) *Maintainer {
	return &Maintainer{ag: ag, cfg: cfg.withDefaults()}
}

// Record remembers one served query as rebuild training material. It is
// cheap (one mutex push) and safe for concurrent use.
func (m *Maintainer) Record(q query.Query) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.recent) < m.cfg.RecentWindow {
		m.recent = append(m.recent, q)
		return
	}
	m.recent[m.pos] = q
	m.pos = (m.pos + 1) % len(m.recent)
	m.full = true
}

// recorded returns the remembered queries in arrival order.
func (m *Maintainer) recorded() []query.Query {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.full {
		return append([]query.Query(nil), m.recent...)
	}
	out := make([]query.Query, 0, len(m.recent))
	out = append(out, m.recent[m.pos:]...)
	out = append(out, m.recent[:m.pos]...)
	return out
}

// CheckNow evaluates the rebuild triggers immediately and rebuilds when
// one fires. It reports whether a rebuild ran and its error (if any).
func (m *Maintainer) CheckNow() (bool, error) {
	drift := m.ag.Drift()
	m.mu.Lock()
	due := drift.Unattributed-m.lastUnattr >= m.cfg.RebuildUnattributed ||
		drift.InvalidatedQuanta-m.lastInval >= m.cfg.RebuildInvalidations
	n := len(m.recent)
	m.mu.Unlock()
	if !due || n < m.cfg.MinRecorded {
		return false, nil
	}
	err := m.ag.Rebuild(m.recorded())
	m.mu.Lock()
	m.lastUnattr = drift.Unattributed
	m.lastInval = drift.InvalidatedQuanta
	if err == nil {
		m.rebuilds++
	}
	m.lastErr = err
	m.mu.Unlock()
	if m.cfg.OnRebuild != nil {
		m.cfg.OnRebuild(err)
	}
	return true, err
}

// Start launches the background poll loop (idempotent).
func (m *Maintainer) Start() {
	m.mu.Lock()
	if m.stop != nil {
		m.mu.Unlock()
		return
	}
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	stop, done := m.stop, m.done
	m.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(m.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				m.CheckNow()
			}
		}
	}()
}

// Stop halts the background loop and waits for it to exit (idempotent;
// a never-started maintainer stops trivially).
func (m *Maintainer) Stop() {
	m.mu.Lock()
	stop, done := m.stop, m.done
	m.stop, m.done = nil, nil
	m.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Rebuilds returns how many background rebuilds have completed.
func (m *Maintainer) Rebuilds() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rebuilds
}

// LastError returns the most recent rebuild error (nil when the last
// rebuild succeeded or none ran).
func (m *Maintainer) LastError() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastErr
}
