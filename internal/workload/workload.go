// Package workload generates the synthetic datasets and analyst query
// streams the experiments run on. The paper's claims are workload-shape
// claims — "queries define overlapping data subspaces" (§IV P2, citing
// [17]-[20], [25]) — so the generators expose exactly those knobs:
// clustered data (Gaussian mixtures, Zipf-keyed tables), analyst
// "interest regions" that concentrate queries on small overlapping
// subspaces, and interest drift over time (RT1.4, RT5.3).
//
// All generators are deterministic given a seed.
package workload

import (
	"math"
	"math/rand"

	"repro/internal/query"
	"repro/internal/storage"
)

// NewRNG returns a seeded PRNG; all experiment randomness flows from
// these.
func NewRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Uniform generates n rows with d attributes uniform in [mins[i],
// maxs[i]). Keys are sequential from firstKey.
func Uniform(rng *rand.Rand, n, d int, mins, maxs []float64, firstKey uint64) []storage.Row {
	rows := make([]storage.Row, n)
	for i := range rows {
		vec := make([]float64, d)
		for j := 0; j < d; j++ {
			lo, hi := bound(mins, j, 0), bound(maxs, j, 1)
			vec[j] = lo + rng.Float64()*(hi-lo)
		}
		rows[i] = storage.Row{Key: firstKey + uint64(i), Vec: vec}
	}
	return rows
}

func bound(b []float64, j int, def float64) float64 {
	if j < len(b) {
		return b[j]
	}
	return def
}

// MixtureComponent is one Gaussian blob of a mixture.
type MixtureComponent struct {
	// Center is the component mean.
	Center []float64
	// Std is the per-dimension standard deviation.
	Std float64
	// Weight is the relative mass (need not be normalised).
	Weight float64
}

// GaussianMixture generates n rows with d attributes drawn from the given
// mixture. This models the clustered real-world distributions the paper's
// operators exploit ("known properties of real-world data sets (e.g.,
// their distributions)", RT2).
func GaussianMixture(rng *rand.Rand, n, d int, comps []MixtureComponent, firstKey uint64) []storage.Row {
	var totalW float64
	for _, c := range comps {
		totalW += c.Weight
	}
	rows := make([]storage.Row, n)
	for i := range rows {
		c := pickComponent(rng, comps, totalW)
		vec := make([]float64, d)
		for j := 0; j < d; j++ {
			mu := 0.0
			if j < len(c.Center) {
				mu = c.Center[j]
			}
			vec[j] = mu + rng.NormFloat64()*c.Std
		}
		rows[i] = storage.Row{Key: firstKey + uint64(i), Vec: vec}
	}
	return rows
}

func pickComponent(rng *rand.Rand, comps []MixtureComponent, totalW float64) MixtureComponent {
	if len(comps) == 0 {
		return MixtureComponent{Std: 1, Weight: 1}
	}
	target := rng.Float64() * totalW
	var cum float64
	for _, c := range comps {
		cum += c.Weight
		if target <= cum {
			return c
		}
	}
	return comps[len(comps)-1]
}

// DefaultMixture returns a 4-component mixture spread over [0,100]^d, a
// convenient standard dataset for the experiments.
func DefaultMixture(d int) []MixtureComponent {
	centers := [][]float64{{25, 25}, {75, 75}, {25, 75}, {75, 25}}
	comps := make([]MixtureComponent, len(centers))
	for i, c2 := range centers {
		c := make([]float64, d)
		for j := range c {
			c[j] = c2[j%2]
		}
		comps[i] = MixtureComponent{Center: c, Std: 8, Weight: 1}
	}
	return comps
}

// StandardRows builds the repo's standard 3-column clustered dataset —
// x, y spatial from the default Gaussian mixture, z = 2x + 5 + noise —
// from a single seed. Cluster members, experiments and examples all
// call this one constructor so equal seeds produce bit-identical data
// everywhere (the distributed cluster's partitioning depends on it).
func StandardRows(n int, seed int64) []storage.Row {
	rng := NewRNG(seed)
	rows := GaussianMixture(rng, n, 3, DefaultMixture(3), 0)
	CorrelatedColumns(rng, rows, 0, 2, 2, 5, 1)
	return rows
}

// CorrelatedColumns rewrites columns colY of rows so that
// vec[colY] = slope*vec[colX] + intercept + noise. Used by the
// dependence-statistics experiments (E3): the true regression slope
// inside any subspace is then known by construction.
func CorrelatedColumns(rng *rand.Rand, rows []storage.Row, colX, colY int, slope, intercept, noiseStd float64) {
	for i := range rows {
		if colX >= len(rows[i].Vec) || colY >= len(rows[i].Vec) {
			continue
		}
		rows[i].Vec[colY] = slope*rows[i].Vec[colX] + intercept + rng.NormFloat64()*noiseStd
	}
}

// ZipfKeys generates n rows whose keys follow a Zipf distribution over
// [0, keySpace) — the skewed join-key distribution of the rank-join
// experiments (E4). Column 0 is the row's score, uniform in [0, 1).
// v >= 1 flattens the distribution head (rand.Zipf's q parameter): v=1
// gives the classic heavy head where the hottest key draws ~20% of rows;
// larger v bounds per-key multiplicity so joins stay near-linear.
func ZipfKeys(rng *rand.Rand, n int, keySpace uint64, s, v float64, extraCols int) []storage.Row {
	if s < 1.001 {
		s = 1.001
	}
	if v < 1 {
		v = 1
	}
	z := rand.NewZipf(rng, s, v, keySpace-1)
	rows := make([]storage.Row, n)
	for i := range rows {
		vec := make([]float64, 1+extraCols)
		vec[0] = rng.Float64()
		for j := 1; j < len(vec); j++ {
			vec[j] = rng.Float64()
		}
		rows[i] = storage.Row{Key: z.Uint64(), Vec: vec}
	}
	return rows
}

// InterestRegion is one analyst focus area: queries cluster around its
// centre with extents near Extent.
type InterestRegion struct {
	// Center is the region's focus point.
	Center []float64
	// Spread is the std-dev of query centres around Center.
	Spread float64
	// Extent is the typical query radius / half-side.
	Extent float64
	// ExtentJitter scales the extent by (1 ± jitter).
	ExtentJitter float64
	// Weight is the region's share of the query stream.
	Weight float64
}

// QueryStream generates analytical queries concentrated on the given
// interest regions: the defining workload property P2 leverages. kind
// selects the aggregate; radiusFrac is the fraction of queries that use
// radius (vs range) selections.
type QueryStream struct {
	// Regions are the active interest regions.
	Regions []InterestRegion
	// Aggregate is the queries' analytical operator.
	Aggregate query.Agg
	// Col/Col2 are the aggregate columns.
	Col, Col2 int
	// RadiusFrac in [0,1] is the share of radius (vs range) selections.
	RadiusFrac float64

	rng *rand.Rand
}

// NewQueryStream builds a stream over the given regions.
func NewQueryStream(rng *rand.Rand, regions []InterestRegion, agg query.Agg) *QueryStream {
	return &QueryStream{Regions: regions, Aggregate: agg, rng: rng, Col: 0, Col2: 1}
}

// Next draws the next query.
func (qs *QueryStream) Next() query.Query {
	var totalW float64
	for _, r := range qs.Regions {
		totalW += r.Weight
	}
	reg := qs.Regions[0]
	target := qs.rng.Float64() * totalW
	var cum float64
	for _, r := range qs.Regions {
		cum += r.Weight
		if target <= cum {
			reg = r
			break
		}
	}
	d := len(reg.Center)
	center := make([]float64, d)
	for j := 0; j < d; j++ {
		center[j] = reg.Center[j] + qs.rng.NormFloat64()*reg.Spread
	}
	extent := reg.Extent * (1 + (qs.rng.Float64()*2-1)*reg.ExtentJitter)
	if extent <= 0 {
		extent = reg.Extent
	}
	var sel query.Selection
	if qs.rng.Float64() < qs.RadiusFrac {
		sel = query.Selection{Center: center, Radius: extent}
	} else {
		los := make([]float64, d)
		his := make([]float64, d)
		for j := 0; j < d; j++ {
			los[j] = center[j] - extent
			his[j] = center[j] + extent
		}
		sel = query.Selection{Los: los, His: his}
	}
	return query.Query{Select: sel, Aggregate: qs.Aggregate, Col: qs.Col, Col2: qs.Col2}
}

// Batch draws n queries.
func (qs *QueryStream) Batch(n int) []query.Query {
	out := make([]query.Query, n)
	for i := range out {
		out[i] = qs.Next()
	}
	return out
}

// Shift moves every region's centre by delta along each dimension —
// the "analysts' interests drift" event of RT1.4 and RT5.3.
func (qs *QueryStream) Shift(delta float64) {
	for i := range qs.Regions {
		for j := range qs.Regions[i].Center {
			qs.Regions[i].Center[j] += delta
		}
	}
}

// DefaultRegions returns two interest regions sitting on two of the
// DefaultMixture blobs (so queries hit dense data), with extents sized to
// select ~1-5% of rows.
func DefaultRegions(d int) []InterestRegion {
	mk := func(base []float64) []float64 {
		c := make([]float64, d)
		for j := range c {
			c[j] = base[j%2]
		}
		return c
	}
	return []InterestRegion{
		{Center: mk([]float64{25, 25}), Spread: 4, Extent: 6, ExtentJitter: 0.5, Weight: 0.6},
		{Center: mk([]float64{75, 75}), Spread: 4, Extent: 6, ExtentJitter: 0.5, Weight: 0.4},
	}
}

// KNNPoint draws a kNN query point near the given interest regions.
func KNNPoint(rng *rand.Rand, regions []InterestRegion) []float64 {
	var totalW float64
	for _, r := range regions {
		totalW += r.Weight
	}
	reg := regions[0]
	target := rng.Float64() * totalW
	var cum float64
	for _, r := range regions {
		cum += r.Weight
		if target <= cum {
			reg = r
			break
		}
	}
	p := make([]float64, len(reg.Center))
	for j := range p {
		p[j] = reg.Center[j] + rng.NormFloat64()*reg.Spread
	}
	return p
}

// MissingMask marks a fraction frac of cells (row, col) as missing by
// setting them to NaN, returning the count masked. Used by the imputation
// experiments (E7).
func MissingMask(rng *rand.Rand, rows []storage.Row, frac float64) int {
	var masked int
	for i := range rows {
		for j := range rows[i].Vec {
			if rng.Float64() < frac {
				rows[i].Vec[j] = math.NaN()
				masked++
			}
		}
	}
	return masked
}
