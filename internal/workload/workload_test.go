package workload

import (
	"math"
	"testing"

	"repro/internal/query"
)

func TestUniformBoundsAndKeys(t *testing.T) {
	rng := NewRNG(1)
	rows := Uniform(rng, 100, 3, []float64{0, -5, 10}, []float64{1, 5, 20}, 42)
	if len(rows) != 100 {
		t.Fatalf("n = %d", len(rows))
	}
	if rows[0].Key != 42 || rows[99].Key != 141 {
		t.Errorf("keys = %d..%d", rows[0].Key, rows[99].Key)
	}
	for _, r := range rows {
		if r.Vec[0] < 0 || r.Vec[0] >= 1 || r.Vec[1] < -5 || r.Vec[1] >= 5 ||
			r.Vec[2] < 10 || r.Vec[2] >= 20 {
			t.Fatalf("out of bounds: %v", r.Vec)
		}
	}
}

func TestGaussianMixtureClusters(t *testing.T) {
	rng := NewRNG(2)
	comps := DefaultMixture(2)
	rows := GaussianMixture(rng, 4000, 2, comps, 0)
	// Count rows near each component; all four should be populated.
	for _, c := range comps {
		n := 0
		for _, r := range rows {
			d0 := r.Vec[0] - c.Center[0]
			d1 := r.Vec[1] - c.Center[1]
			if d0*d0+d1*d1 < 24*24 {
				n++
			}
		}
		if n < 400 {
			t.Errorf("component %v holds only %d rows", c.Center, n)
		}
	}
}

func TestCorrelatedColumns(t *testing.T) {
	rng := NewRNG(3)
	rows := Uniform(rng, 500, 2, []float64{0, 0}, []float64{10, 10}, 0)
	CorrelatedColumns(rng, rows, 0, 1, 3, -1, 0)
	for _, r := range rows[:10] {
		want := 3*r.Vec[0] - 1
		if math.Abs(r.Vec[1]-want) > 1e-12 {
			t.Fatalf("col1 = %v, want %v", r.Vec[1], want)
		}
	}
}

func TestZipfKeysSkewed(t *testing.T) {
	rng := NewRNG(4)
	rows := ZipfKeys(rng, 10000, 1000, 1.3, 1, 1)
	counts := map[uint64]int{}
	for _, r := range rows {
		counts[r.Key]++
		if len(r.Vec) != 2 {
			t.Fatalf("vec width = %d", len(r.Vec))
		}
	}
	// Zipf: the most frequent key should dominate.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 1000 {
		t.Errorf("hottest key count = %d, want >= 1000 (skew)", max)
	}
}

func TestQueryStreamConcentration(t *testing.T) {
	rng := NewRNG(5)
	regions := DefaultRegions(2)
	qs := NewQueryStream(rng, regions, query.Count)
	queries := qs.Batch(500)
	if len(queries) != 500 {
		t.Fatalf("batch = %d", len(queries))
	}
	// Query centres should concentrate near the two region centres.
	near := 0
	for _, q := range queries {
		c := q.Select.Center1()
		for _, reg := range regions {
			d0 := c[0] - reg.Center[0]
			d1 := c[1] - reg.Center[1]
			if math.Sqrt(d0*d0+d1*d1) < 4*reg.Spread {
				near++
				break
			}
		}
	}
	if near < 480 {
		t.Errorf("only %d/500 queries near interest regions", near)
	}
	for _, q := range queries {
		if err := q.Validate(); err != nil {
			t.Fatalf("generated invalid query: %v", err)
		}
	}
}

func TestQueryStreamRadiusFraction(t *testing.T) {
	rng := NewRNG(6)
	qs := NewQueryStream(rng, DefaultRegions(2), query.Count)
	qs.RadiusFrac = 1
	for _, q := range qs.Batch(50) {
		if !q.Select.IsRadius() {
			t.Fatal("expected radius selections")
		}
	}
	qs.RadiusFrac = 0
	for _, q := range qs.Batch(50) {
		if q.Select.IsRadius() {
			t.Fatal("expected range selections")
		}
	}
}

func TestShiftMovesRegions(t *testing.T) {
	rng := NewRNG(7)
	regions := DefaultRegions(2)
	before := regions[0].Center[0]
	qs := NewQueryStream(rng, regions, query.Count)
	qs.Shift(10)
	if qs.Regions[0].Center[0] != before+10 {
		t.Errorf("Shift: centre = %v, want %v", qs.Regions[0].Center[0], before+10)
	}
}

func TestKNNPointNearRegions(t *testing.T) {
	rng := NewRNG(8)
	regions := DefaultRegions(2)
	p := KNNPoint(rng, regions)
	if len(p) != 2 {
		t.Fatalf("dims = %d", len(p))
	}
}

func TestMissingMask(t *testing.T) {
	rng := NewRNG(9)
	rows := Uniform(rng, 1000, 4, nil, nil, 0)
	n := MissingMask(rng, rows, 0.05)
	if n < 120 || n > 280 {
		t.Errorf("masked %d cells, want ~200", n)
	}
	found := 0
	for _, r := range rows {
		for _, v := range r.Vec {
			if math.IsNaN(v) {
				found++
			}
		}
	}
	if found != n {
		t.Errorf("NaN count %d != reported %d", found, n)
	}
}

func TestDeterminism(t *testing.T) {
	a := Uniform(NewRNG(42), 10, 2, nil, nil, 0)
	b := Uniform(NewRNG(42), 10, 2, nil, nil, 0)
	for i := range a {
		if a[i].Vec[0] != b[i].Vec[0] || a[i].Vec[1] != b[i].Vec[1] {
			t.Fatal("same seed produced different data")
		}
	}
}
