// Package knn implements k-nearest-neighbour query processing over the
// simulated BDAS, reproducing the contrast of ref [33] ("Scaling
// k-nearest neighbours queries (the right way)", ICDCS'17) that the paper
// cites for its three-orders-of-magnitude claim (C3):
//
//   - Scan: the SpatialHadoop/Simba-era baseline — a MapReduce job scans
//     every partition, each node emits its local top-k, the reducer
//     merges. Every row is read on every query.
//
//   - Indexed: a coordinator-side grid index routes the query to the few
//     cells (and thus partitions and rows) that can contain the answer,
//     expanding ring by ring until the k-th best distance beats the next
//     ring's lower bound. Only candidate rows are read and moved.
//
// The package also provides kNN-regression and kNN-classification on
// ad-hoc subspaces (RT2.2).
package knn

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/storage"
)

// ErrBadK is returned for non-positive k.
var ErrBadK = errors.New("knn: k must be positive")

// Result is one neighbour.
type Result struct {
	// Row is the matched row.
	Row storage.Row
	// Dist is the Euclidean distance to the query point.
	Dist float64
}

// Operator answers kNN queries against one table using the data's first
// Dims columns as coordinates.
type Operator struct {
	eng  *engine.Engine
	tbl  *storage.Table
	dims int
	grid *index.GridIndex
}

// New builds the operator and its coordinator-side grid index over the
// first dims columns (offline step).
func New(eng *engine.Engine, tbl *storage.Table, dims, gridCells int) (*Operator, error) {
	if dims < 1 {
		return nil, fmt.Errorf("knn: dims must be >= 1, got %d", dims)
	}
	var pts []index.Point
	for p := 0; p < tbl.Partitions(); p++ {
		rows, _, err := tbl.ScanPartition(p)
		if err != nil {
			return nil, fmt.Errorf("knn: index build: %w", err)
		}
		for _, r := range rows {
			vec := r.Vec
			if len(vec) > dims {
				vec = vec[:dims]
			}
			pts = append(pts, index.Point{Vec: vec, Partition: p, Key: r.Key})
		}
	}
	g, err := index.NewGridIndex(pts, gridCells)
	if err != nil {
		return nil, fmt.Errorf("knn: index build: %w", err)
	}
	return &Operator{eng: eng, tbl: tbl, dims: dims, grid: g}, nil
}

func (o *Operator) dist(row storage.Row, q []float64) float64 {
	var s float64
	for j := 0; j < o.dims; j++ {
		var a, b float64
		if j < len(row.Vec) {
			a = row.Vec[j]
		}
		if j < len(q) {
			b = q[j]
		}
		d := a - b
		s += d * d
	}
	return math.Sqrt(s)
}

// Scan answers the query with the full MapReduce baseline.
func (o *Operator) Scan(q []float64, k int) ([]Result, metrics.Cost, error) {
	if k < 1 {
		return nil, metrics.Cost{}, ErrBadK
	}
	// Map: emit (0, [dist, key...]) for every row; the engine charges the
	// full scan. Reduce keeps the global top-k. To model per-node local
	// top-k (combiners), only the k best per partition are shuffled: we
	// emulate that by emitting everything but charging shuffle bytes for
	// only k per partition — the dominant cost (scan + job overhead) is
	// unchanged, matching how SpatialHadoop-style systems behave.
	type cand struct {
		key  uint64
		dist float64
	}
	perPart := make(map[int][]cand)
	for p := 0; p < o.tbl.Partitions(); p++ {
		rows, _, err := o.tbl.ScanPartition(p)
		if err != nil {
			return nil, metrics.Cost{}, fmt.Errorf("knn scan: %w", err)
		}
		cs := make([]cand, 0, len(rows))
		for _, r := range rows {
			cs = append(cs, cand{key: r.Key, dist: o.dist(r, q)})
		}
		sort.Slice(cs, func(i, j int) bool { return cs[i].dist < cs[j].dist })
		if len(cs) > k {
			cs = cs[:k]
		}
		perPart[p] = cs
	}
	// Cost: a full MapReduce-style pass (scan everything, framework
	// overhead per node), shuffling k candidates per partition.
	mapper := func(row storage.Row, emit func(engine.KV)) {}
	reducer := func(_ uint64, values [][]float64) [][]float64 { return nil }
	_, cost, err := o.eng.MapReduce(o.tbl, mapper, reducer)
	if err != nil {
		return nil, cost, fmt.Errorf("knn scan: %w", err)
	}
	shuffle := o.eng.Cluster().TransferLAN(int64(len(perPart)*k) * 16)
	cost = cost.Add(shuffle)

	var all []cand
	for _, cs := range perPart {
		all = append(all, cs...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].dist != all[j].dist {
			return all[i].dist < all[j].dist
		}
		return all[i].key < all[j].key
	})
	if len(all) > k {
		all = all[:k]
	}
	keys := make([]uint64, len(all))
	for i, c := range all {
		keys[i] = c.key
	}
	out, fetchCost, err := o.fetchRows(keys)
	if err != nil {
		return nil, cost, err
	}
	cost = cost.Add(fetchCost)
	results := o.toResults(out, q, k)
	cost.RowsReturned = int64(len(results))
	return results, cost, nil
}

// Indexed answers the query with the grid index and expanding-ring
// candidate pulls over the coordinator–cohort engine.
func (o *Operator) Indexed(q []float64, k int) ([]Result, metrics.Cost, error) {
	if k < 1 {
		return nil, metrics.Cost{}, ErrBadK
	}
	var total metrics.Cost
	var candidates []index.Point
	kthDist := math.Inf(1)

	minCellWidth := math.Inf(1)
	for j := 0; j < o.dims; j++ {
		if w := o.grid.CellWidth(j); w < minCellWidth {
			minCellWidth = w
		}
	}

	for ring := 0; ring <= o.grid.MaxRing(); ring++ {
		// Lower bound on distance to any point in ring r (r >= 1):
		// (r-1) * cellWidth.
		if ring >= 1 && len(candidates) >= k {
			lower := float64(ring-1) * minCellWidth
			if lower > kthDist {
				break
			}
		}
		pts := o.grid.RingCandidates(q, ring)
		if len(pts) == 0 {
			continue
		}
		candidates = append(candidates, pts...)
		// Maintain the running k-th best distance from index locations.
		ds := make([]float64, len(candidates))
		for i, p := range candidates {
			ds[i] = math.Sqrt(sq(p.Vec, q))
		}
		sort.Float64s(ds)
		if len(ds) >= k {
			kthDist = ds[k-1]
		}
	}

	// Surgical fetch of the candidate rows from their partitions.
	sort.Slice(candidates, func(i, j int) bool {
		return sq(candidates[i].Vec, q) < sq(candidates[j].Vec, q)
	})
	// Fetch only the candidates that can make top-k (up to 4k for safety
	// against boundary effects between index vecs and full rows).
	fetch := candidates
	if len(fetch) > 4*k {
		fetch = fetch[:4*k]
	}
	keys := make([]uint64, len(fetch))
	for i, p := range fetch {
		keys[i] = p.Key
	}
	rows, cost, err := o.fetchRows(keys)
	if err != nil {
		return nil, total, err
	}
	total = total.Add(cost)
	results := o.toResults(rows, q, k)
	total.RowsReturned = int64(len(results))
	return results, total, nil
}

func sq(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var s float64
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// fetchRows pulls the given keys' rows via the cohort engine, charging
// one surgical read per row on each involved partition.
func (o *Operator) fetchRows(keys []uint64) ([]storage.Row, metrics.Cost, error) {
	if len(keys) == 0 {
		return nil, metrics.Cost{}, nil
	}
	wanted := make(map[uint64]bool, len(keys))
	partKeys := make(map[int]int)
	for _, key := range keys {
		wanted[key] = true
		partKeys[o.tbl.PartitionFor(key, nil)]++
	}
	parts := make([]int, 0, len(partKeys))
	for p := range partKeys {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	var out []storage.Row
	task := func(part []storage.Row) ([][]float64, int64) {
		var n int64
		for _, r := range part {
			if wanted[r.Key] {
				out = append(out, r)
				n++
			}
		}
		return nil, n // point reads: one per matched key
	}
	_, cost, err := o.eng.CoordinatorGather(o.tbl, parts, task)
	if err != nil {
		return nil, cost, fmt.Errorf("knn fetch: %w", err)
	}
	// Response bytes for the fetched rows.
	cost = cost.Add(o.eng.Cluster().TransferLAN(int64(len(out)) * o.tbl.RowBytes()))
	return out, cost, nil
}

func (o *Operator) toResults(rows []storage.Row, q []float64, k int) []Result {
	res := make([]Result, 0, len(rows))
	for _, r := range rows {
		res = append(res, Result{Row: r, Dist: o.dist(r, q)})
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].Dist != res[j].Dist {
			return res[i].Dist < res[j].Dist
		}
		return res[i].Row.Key < res[j].Row.Key
	})
	if len(res) > k {
		res = res[:k]
	}
	return res
}

// Regress performs kNN regression at point q: the mean of column col over
// the k nearest rows (RT2.2's "kNN regression ... exploiting insights
// gained"). It uses the indexed path.
func (o *Operator) Regress(q []float64, k, col int) (float64, metrics.Cost, error) {
	nbrs, cost, err := o.Indexed(q, k)
	if err != nil {
		return 0, cost, err
	}
	if len(nbrs) == 0 {
		return 0, cost, nil
	}
	var s float64
	for _, n := range nbrs {
		if col < len(n.Row.Vec) {
			s += n.Row.Vec[col]
		}
	}
	return s / float64(len(nbrs)), cost, nil
}

// Classify performs kNN classification at q: the majority vote of column
// col (rounded to int labels) over the k nearest rows.
func (o *Operator) Classify(q []float64, k, col int) (int, metrics.Cost, error) {
	nbrs, cost, err := o.Indexed(q, k)
	if err != nil {
		return 0, cost, err
	}
	votes := make(map[int]int)
	for _, n := range nbrs {
		if col < len(n.Row.Vec) {
			votes[int(math.Round(n.Row.Vec[col]))]++
		}
	}
	best, bestN := -1, -1
	for lbl, n := range votes {
		if n > bestN || (n == bestN && lbl < best) {
			best, bestN = lbl, n
		}
	}
	return best, cost, nil
}
