package knn

import (
	"math"
	"sort"
	"testing"

	"repro/internal/storage"
)

// bruteReverseKNN computes the reference RkNN set: rows whose k-th
// nearest row (self included, matching the operator's convention) is no
// closer than q.
func bruteReverseKNN(rows []storage.Row, q []float64, k int) map[uint64]bool {
	dist := func(a, b []float64) float64 {
		dx := a[0] - b[0]
		dy := a[1] - b[1]
		return math.Sqrt(dx*dx + dy*dy)
	}
	out := make(map[uint64]bool)
	for _, c := range rows {
		dq := dist(c.Vec, q)
		ds := make([]float64, 0, len(rows))
		for _, r := range rows {
			ds = append(ds, dist(c.Vec, r.Vec))
		}
		sort.Float64s(ds)
		kth := ds[len(ds)-1]
		if k <= len(ds) {
			kth = ds[k-1]
		}
		if dq <= kth {
			out[c.Key] = true
		}
	}
	return out
}

func TestReverseKNNMatchesBruteForce(t *testing.T) {
	op, rows := buildOp(t, 400)
	for _, k := range []int{2, 5} {
		q := []float64{25, 25}
		got, cost, err := op.ReverseKNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteReverseKNN(rows, q, k)
		// Every returned row must truly be a reverse neighbour.
		for _, r := range got {
			if !want[r.Row.Key] {
				t.Errorf("k=%d: row %d is not a reverse neighbour", k, r.Row.Key)
			}
		}
		// The filter-refine scheme must find the close-in reverse
		// neighbours (those within the first rings).
		if len(want) > 0 && len(got) == 0 {
			t.Errorf("k=%d: found none of %d reverse neighbours", k, len(want))
		}
		if cost.RowsRead == 0 && len(got) > 0 {
			t.Error("RkNN charged no row reads")
		}
	}
}

func TestReverseKNNBadK(t *testing.T) {
	op, _ := buildOp(t, 50)
	if _, _, err := op.ReverseKNN([]float64{0, 0}, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestReverseKNNEmptyRegion(t *testing.T) {
	op, _ := buildOp(t, 400)
	// A query far from all data: no row has it among its k nearest.
	got, _, err := op.ReverseKNN([]float64{-500, -500}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("far query returned %d reverse neighbours", len(got))
	}
}
