package knn

import (
	"errors"
	"math"
	"sort"
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/storage"
	"repro/internal/workload"
)

func buildOp(t *testing.T, nRows int) (*Operator, []storage.Row) {
	t.Helper()
	cl := cluster.New(8, cluster.DefaultConfig())
	eng := engine.New(cl)
	tbl, err := storage.NewTable(cl, "pts", []string{"x", "y", "label"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.NewRNG(41)
	rows := workload.GaussianMixture(rng, nRows, 3, workload.DefaultMixture(3), 0)
	// Column 2 becomes a class label: 0 below the diagonal, 1 above.
	for i := range rows {
		if rows[i].Vec[0]+rows[i].Vec[1] > 100 {
			rows[i].Vec[2] = 1
		} else {
			rows[i].Vec[2] = 0
		}
	}
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	op, err := New(eng, tbl, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	return op, rows
}

func bruteKNN(rows []storage.Row, q []float64, k int) []uint64 {
	type kd struct {
		key  uint64
		dist float64
	}
	all := make([]kd, len(rows))
	for i, r := range rows {
		dx := r.Vec[0] - q[0]
		dy := r.Vec[1] - q[1]
		all[i] = kd{r.Key, math.Sqrt(dx*dx + dy*dy)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].dist != all[j].dist {
			return all[i].dist < all[j].dist
		}
		return all[i].key < all[j].key
	})
	keys := make([]uint64, 0, k)
	for i := 0; i < k && i < len(all); i++ {
		keys = append(keys, all[i].key)
	}
	return keys
}

func TestScanMatchesBruteForce(t *testing.T) {
	op, rows := buildOp(t, 2000)
	for _, k := range []int{1, 5, 15} {
		q := []float64{30, 30}
		got, _, err := op.Scan(q, k)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteKNN(rows, q, k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d results", k, len(got))
		}
		for i := range got {
			if got[i].Row.Key != want[i] {
				t.Errorf("k=%d rank %d: key %d != %d (dist %v)", k, i, got[i].Row.Key, want[i], got[i].Dist)
			}
		}
	}
}

func TestIndexedMatchesBruteForce(t *testing.T) {
	op, rows := buildOp(t, 2000)
	queries := [][]float64{{30, 30}, {75, 75}, {50, 50}, {10, 90}}
	for _, q := range queries {
		for _, k := range []int{1, 5, 15} {
			got, _, err := op.Indexed(q, k)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteKNN(rows, q, k)
			if len(got) != len(want) {
				t.Fatalf("q=%v k=%d: %d results, want %d", q, k, len(got), len(want))
			}
			for i := range got {
				if got[i].Row.Key != want[i] {
					t.Errorf("q=%v k=%d rank %d: key %d != %d", q, k, i, got[i].Row.Key, want[i])
				}
			}
		}
	}
}

func TestIndexedIsSurgical(t *testing.T) {
	op, _ := buildOp(t, 10000)
	q := []float64{25, 25}
	_, scanCost, err := op.Scan(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	_, idxCost, err := op.Indexed(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if idxCost.RowsRead*10 >= scanCost.RowsRead {
		t.Errorf("indexed read %d rows vs scan %d: not surgical",
			idxCost.RowsRead, scanCost.RowsRead)
	}
	if idxCost.Time >= scanCost.Time {
		t.Errorf("indexed time %v >= scan %v", idxCost.Time, scanCost.Time)
	}
}

func TestBadInputs(t *testing.T) {
	op, _ := buildOp(t, 100)
	if _, _, err := op.Scan([]float64{0, 0}, 0); !errors.Is(err, ErrBadK) {
		t.Errorf("Scan k=0 err = %v", err)
	}
	if _, _, err := op.Indexed([]float64{0, 0}, -1); !errors.Is(err, ErrBadK) {
		t.Errorf("Indexed k=-1 err = %v", err)
	}
	cl := cluster.New(1, cluster.DefaultConfig())
	eng := engine.New(cl)
	tbl, _ := storage.NewTable(cl, "e", []string{"x"}, 1)
	if _, err := New(eng, tbl, 0, 4); err == nil {
		t.Error("dims=0 accepted")
	}
	if _, err := New(eng, tbl, 1, 4); err == nil {
		t.Error("empty table accepted (grid cannot build)")
	}
}

func TestRegress(t *testing.T) {
	op, rows := buildOp(t, 3000)
	q := []float64{25, 25}
	got, cost, err := op.Regress(q, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Labels near (25,25) are overwhelmingly 0 (sum < 100).
	if got > 0.2 {
		t.Errorf("Regress near (25,25) = %v, want ~0", got)
	}
	if cost.RowsRead == 0 {
		t.Error("regression read no rows")
	}
	_ = rows
	got2, _, err := op.Regress([]float64{75, 75}, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got2 < 0.8 {
		t.Errorf("Regress near (75,75) = %v, want ~1", got2)
	}
}

func TestClassify(t *testing.T) {
	op, _ := buildOp(t, 3000)
	if got, _, err := op.Classify([]float64{25, 25}, 15, 2); err != nil || got != 0 {
		t.Errorf("Classify(25,25) = %d, %v; want 0", got, err)
	}
	if got, _, err := op.Classify([]float64{75, 75}, 15, 2); err != nil || got != 1 {
		t.Errorf("Classify(75,75) = %d, %v; want 1", got, err)
	}
}

func TestKLargerThanData(t *testing.T) {
	op, rows := buildOp(t, 50)
	got, _, err := op.Indexed([]float64{50, 50}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Errorf("k>n returned %d of %d", len(got), len(rows))
	}
}
