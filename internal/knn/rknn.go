package knn

import (
	"math"
	"sort"

	"repro/internal/metrics"
)

// ReverseKNN returns the rows that have the query point among their own
// k nearest neighbours — the RkNN variant RT2.1 lists alongside basic
// kNN. The implementation uses the standard filter-refine scheme over
// the grid index:
//
//	filter: only rows within the query's influence zone can be reverse
//	neighbours; the zone radius is bounded by the k-th nearest distance
//	around each candidate, so candidates are collected ring by ring
//	until a ring's lower bound exceeds the largest plausible influence.
//
//	refine: for each candidate, a kNN probe (indexed, surgical) checks
//	whether q is closer than the candidate's k-th neighbour.
//
// Costs are charged per refined candidate probe; the MapReduce-era
// alternative would run an all-pairs pass.
func (o *Operator) ReverseKNN(q []float64, k int) ([]Result, metrics.Cost, error) {
	if k < 1 {
		return nil, metrics.Cost{}, ErrBadK
	}
	var total metrics.Cost

	// Filter: candidates from expanding rings. The influence zone is
	// adaptive: once we have candidates, a ring whose lower-bound
	// distance exceeds the current maximum candidate k-distance cannot
	// contribute.
	minCellWidth := o.grid.CellWidth(0)
	for j := 1; j < o.dims; j++ {
		if w := o.grid.CellWidth(j); w < minCellWidth {
			minCellWidth = w
		}
	}
	type cand struct {
		key  uint64
		dist float64
	}
	var cands []cand
	maxInfluence := 0.0
	for ring := 0; ring <= o.grid.MaxRing(); ring++ {
		if ring >= 1 && len(cands) > 0 {
			lower := float64(ring-1) * minCellWidth
			if lower > maxInfluence && len(cands) >= k {
				break
			}
		}
		for _, p := range o.grid.RingCandidates(q, ring) {
			d := distVec(p.Vec, q)
			cands = append(cands, cand{key: p.Key, dist: d})
			// Estimate the candidate's k-distance from its ring
			// neighbours lazily: refined below. Track a generous bound.
			if d > maxInfluence {
				maxInfluence = d
			}
		}
		// Influence saturates quickly for clustered data; cap rings to
		// avoid scanning the whole grid for sparse queries.
		if ring > 3 && len(cands) >= 16*k {
			break
		}
	}

	// Refine: probe each candidate's kNN and keep those whose k-th
	// neighbour is farther than q.
	sort.Slice(cands, func(i, j int) bool { return cands[i].dist < cands[j].dist })
	if len(cands) > 32*k {
		cands = cands[:32*k]
	}
	var out []Result
	for _, c := range cands {
		row, ok, cost, err := o.eng.PointGet(o.tbl, c.key)
		total = total.Add(cost)
		if err != nil {
			return nil, total, err
		}
		if !ok {
			continue
		}
		nbrs, probeCost, err := o.Indexed(row.Vec[:o.dims], k)
		total = total.Add(probeCost)
		if err != nil {
			return nil, total, err
		}
		if len(nbrs) < k {
			continue
		}
		kth := nbrs[len(nbrs)-1].Dist
		if c.dist <= kth {
			out = append(out, Result{Row: row, Dist: c.dist})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Row.Key < out[j].Row.Key
	})
	total.RowsReturned = int64(len(out))
	return out, total, nil
}

func distVec(a, b []float64) float64 {
	var s float64
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
