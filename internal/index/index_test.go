package index

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/storage"
)

func randomPoints(rng *rand.Rand, n, d int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		vec := make([]float64, d)
		for j := range vec {
			vec[j] = rng.Float64() * 100
		}
		pts[i] = Point{Vec: vec, Partition: i % 4, Key: uint64(i)}
	}
	return pts
}

// bruteKNN is the reference implementation the tree is checked against.
func bruteKNN(pts []Point, q []float64, k int) []Neighbor {
	out := make([]Neighbor, 0, len(pts))
	for _, p := range pts {
		out = append(out, Neighbor{Point: p, Dist2: sqDist(p.Vec, q)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dist2 < out[j].Dist2 })
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func TestKDTreeEmpty(t *testing.T) {
	if _, err := NewKDTree(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestKDTreeKNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 500, 3)
	tree, err := NewKDTree(pts)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		q := []float64{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
		k := 1 + rng.Intn(10)
		got, visited := tree.KNN(q, k)
		want := bruteKNN(pts, q, k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d results", k, len(got))
		}
		for i := range got {
			if math.Abs(got[i].Dist2-want[i].Dist2) > 1e-9 {
				t.Fatalf("trial %d rank %d: dist2 %v != %v", trial, i, got[i].Dist2, want[i].Dist2)
			}
		}
		if visited >= len(pts) {
			t.Errorf("k=%d visited %d of %d nodes: no pruning", k, visited, len(pts))
		}
	}
}

func TestKDTreeKNNPruning(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randomPoints(rng, 10000, 2)
	tree, err := NewKDTree(pts)
	if err != nil {
		t.Fatal(err)
	}
	_, visited := tree.KNN([]float64{50, 50}, 5)
	if visited > 2000 {
		t.Errorf("visited %d of 10000: pruning too weak", visited)
	}
}

func TestKDTreeRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randomPoints(rng, 1000, 2)
	tree, err := NewKDTree(pts)
	if err != nil {
		t.Fatal(err)
	}
	los := []float64{20, 20}
	his := []float64{40, 40}
	got, visited := tree.Range(los, his)
	var want int
	for _, p := range pts {
		if p.Vec[0] >= 20 && p.Vec[0] <= 40 && p.Vec[1] >= 20 && p.Vec[1] <= 40 {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("range found %d, want %d", len(got), want)
	}
	if visited >= len(pts) {
		t.Error("range visited every node: no pruning")
	}
	for _, p := range got {
		if p.Vec[0] < 20 || p.Vec[0] > 40 || p.Vec[1] < 20 || p.Vec[1] > 40 {
			t.Fatalf("point outside range returned: %v", p.Vec)
		}
	}
}

func TestKDTreeDegenerateK(t *testing.T) {
	pts := randomPoints(rand.New(rand.NewSource(4)), 10, 2)
	tree, _ := NewKDTree(pts)
	if got, _ := tree.KNN([]float64{0, 0}, 0); got != nil {
		t.Error("k=0 should return nil")
	}
	got, _ := tree.KNN([]float64{0, 0}, 100)
	if len(got) != 10 {
		t.Errorf("k>n returned %d", len(got))
	}
	if tree.Len() != 10 || tree.Dims() != 2 {
		t.Errorf("Len/Dims = %d/%d", tree.Len(), tree.Dims())
	}
}

func TestGridIndexRings(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomPoints(rng, 2000, 2)
	g, err := NewGridIndex(pts, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2000 {
		t.Fatalf("Len = %d", g.Len())
	}
	// Union of all rings = all points.
	total := 0
	for ring := 0; ring <= g.MaxRing(); ring++ {
		total += len(g.RingCandidates([]float64{50, 50}, ring))
	}
	if total != 2000 {
		t.Errorf("rings covered %d of 2000 points", total)
	}
	// Ring 0 must contain far fewer than all points.
	if r0 := len(g.RingCandidates([]float64{50, 50}, 0)); r0 > 200 {
		t.Errorf("ring 0 holds %d points; grid too coarse", r0)
	}
}

func TestGridIndexPartitionsInBox(t *testing.T) {
	pts := []Point{
		{Vec: []float64{10, 10}, Partition: 0, Key: 1},
		{Vec: []float64{90, 90}, Partition: 3, Key: 2},
		{Vec: []float64{15, 12}, Partition: 1, Key: 3},
	}
	g, err := NewGridIndex(pts, 8)
	if err != nil {
		t.Fatal(err)
	}
	parts := g.PartitionsInBox([]float64{5, 5}, []float64{20, 20})
	if len(parts) != 2 || parts[0] != 0 || parts[1] != 1 {
		t.Errorf("PartitionsInBox = %v, want [0 1]", parts)
	}
}

func TestGridIndexEmpty(t *testing.T) {
	if _, err := NewGridIndex(nil, 4); !errors.Is(err, ErrEmpty) {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestRankIndexDepths(t *testing.T) {
	cl := cluster.New(2, cluster.DefaultConfig())
	tbl, err := storage.NewTable(cl, "scores", []string{"score"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	rows := make([]storage.Row, 1000)
	for i := range rows {
		rows[i] = storage.Row{Key: uint64(i), Vec: []float64{rng.Float64()}}
	}
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	ri, err := BuildRankIndex(tbl, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	if ri.Partitions() != 4 || ri.Col() != 0 {
		t.Fatalf("Partitions/Col = %d/%d", ri.Partitions(), ri.Col())
	}
	// Partitions must now be sorted descending.
	for p := 0; p < 4; p++ {
		got, _, _ := tbl.ScanPartition(p)
		for i := 1; i < len(got); i++ {
			if got[i].Vec[0] > got[i-1].Vec[0] {
				t.Fatalf("partition %d not sorted", p)
			}
		}
		if len(got) > 0 && math.Abs(ri.Top(p)-got[0].Vec[0]) > 1e-12 {
			t.Errorf("Top(%d) = %v, want %v", p, ri.Top(p), got[0].Vec[0])
		}
		if ri.Rows(p) != len(got) {
			t.Errorf("Rows(%d) = %d, want %d", p, ri.Rows(p), len(got))
		}
	}
	// DepthForScore must never underestimate: reading that many rows
	// must cover every row with score >= s.
	for _, s := range []float64{0.9, 0.5, 0.1} {
		for p := 0; p < 4; p++ {
			depth := ri.DepthForScore(p, s)
			got, _, _ := tbl.ScanPartition(p)
			for i, r := range got {
				if r.Vec[0] >= s && i >= depth {
					t.Fatalf("score %v at depth %d beyond DepthForScore(%v)=%d", r.Vec[0], i, s, depth)
				}
			}
		}
	}
	// Out-of-range partition queries are safe.
	if ri.DepthForScore(99, 0.5) != 0 || ri.Top(99) != 0 || ri.Rows(99) != 0 {
		t.Error("out-of-range partition should return zeros")
	}
}

// Property: KNN results are sorted ascending by distance.
func TestKNNSortedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := randomPoints(rng, 300, 2)
	tree, _ := NewKDTree(pts)
	f := func(qx, qy float64, kRaw uint8) bool {
		q := []float64{math.Mod(math.Abs(qx), 100), math.Mod(math.Abs(qy), 100)}
		k := 1 + int(kRaw)%20
		got, _ := tree.KNN(q, k)
		for i := 1; i < len(got); i++ {
			if got[i].Dist2 < got[i-1].Dist2 {
				return false
			}
		}
		return len(got) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
