// Package index provides the access structures of RT2: a k-d tree and a
// uniform grid for multi-dimensional point data (kNN and range
// selections), and a rank index (per-partition score histograms over
// sorted runs) for top-K rank-join (ref [30]).
//
// These are coordinator-side structures: they summarise where data lives
// so that the coordinator–cohort engine can engage only the partitions
// and row prefixes that matter ("surgically accessing the smallest data
// subset", P3/G4). Building them is an offline step, like building any
// database index.
package index

import (
	"container/heap"
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned when an index is built over no points.
var ErrEmpty = errors.New("index: empty input")

// Point is one indexed point: a location plus the partition that stores
// the underlying row and the row's key.
type Point struct {
	// Vec is the point's location.
	Vec []float64
	// Partition is the storage partition holding the row.
	Partition int
	// Key is the underlying row key.
	Key uint64
}

// KDTree is a static k-d tree over points, supporting kNN and range
// queries. Build once, query many times; not safe for concurrent writes
// (there are none) but safe for concurrent reads.
type KDTree struct {
	pts  []Point
	idx  []int // pts indices arranged as an implicit tree
	dims int
}

// NewKDTree builds a balanced k-d tree by recursive median splits.
func NewKDTree(pts []Point) (*KDTree, error) {
	if len(pts) == 0 {
		return nil, ErrEmpty
	}
	t := &KDTree{pts: pts, dims: len(pts[0].Vec)}
	t.idx = make([]int, len(pts))
	for i := range t.idx {
		t.idx[i] = i
	}
	t.build(0, len(t.idx), 0)
	return t, nil
}

func (t *KDTree) build(lo, hi, depth int) {
	if hi-lo <= 1 {
		return
	}
	axis := depth % t.dims
	mid := (lo + hi) / 2
	t.nthElement(lo, hi, mid, axis)
	t.build(lo, mid, depth+1)
	t.build(mid+1, hi, depth+1)
}

// nthElement partially sorts idx[lo:hi] so idx[n] holds the n-th element
// by the axis coordinate (quickselect).
func (t *KDTree) nthElement(lo, hi, n, axis int) {
	for hi-lo > 1 {
		pivot := t.pts[t.idx[(lo+hi)/2]].Vec[axis]
		i, j := lo, hi-1
		for i <= j {
			for t.pts[t.idx[i]].Vec[axis] < pivot {
				i++
			}
			for t.pts[t.idx[j]].Vec[axis] > pivot {
				j--
			}
			if i <= j {
				t.idx[i], t.idx[j] = t.idx[j], t.idx[i]
				i++
				j--
			}
		}
		switch {
		case n <= j:
			hi = j + 1
		case n >= i:
			lo = i
		default:
			return
		}
	}
}

// Neighbor is one kNN result.
type Neighbor struct {
	// Point is the matched point.
	Point Point
	// Dist2 is the squared distance to the query.
	Dist2 float64
}

// maxHeap over Dist2 keeps the current k best.
type neighborHeap []Neighbor

func (h neighborHeap) Len() int            { return len(h) }
func (h neighborHeap) Less(i, j int) bool  { return h[i].Dist2 > h[j].Dist2 }
func (h neighborHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *neighborHeap) Push(x interface{}) { *h = append(*h, x.(Neighbor)) }
func (h *neighborHeap) Pop() interface{} {
	old := *h
	n := len(old)
	out := old[n-1]
	*h = old[:n-1]
	return out
}

// KNN returns the k nearest points to q in ascending distance order, and
// the number of tree nodes visited (the index's "work" metric).
func (t *KDTree) KNN(q []float64, k int) ([]Neighbor, int) {
	if k < 1 {
		return nil, 0
	}
	h := make(neighborHeap, 0, k+1)
	visited := 0
	t.knnSearch(0, len(t.idx), 0, q, k, &h, &visited)
	out := make([]Neighbor, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(Neighbor)
	}
	return out, visited
}

func (t *KDTree) knnSearch(lo, hi, depth int, q []float64, k int, h *neighborHeap, visited *int) {
	if lo >= hi {
		return
	}
	mid := (lo + hi) / 2
	p := t.pts[t.idx[mid]]
	*visited++
	d2 := sqDist(p.Vec, q)
	if h.Len() < k {
		heap.Push(h, Neighbor{Point: p, Dist2: d2})
	} else if d2 < (*h)[0].Dist2 {
		heap.Pop(h)
		heap.Push(h, Neighbor{Point: p, Dist2: d2})
	}
	if hi-lo == 1 {
		return
	}
	axis := depth % t.dims
	var qa float64
	if axis < len(q) {
		qa = q[axis]
	}
	diff := qa - p.Vec[axis]
	near, farLo, farHi := 0, 0, 0
	if diff <= 0 {
		near, farLo, farHi = -1, mid+1, hi
	} else {
		near, farLo, farHi = 1, lo, mid
	}
	if near < 0 {
		t.knnSearch(lo, mid, depth+1, q, k, h, visited)
	} else {
		t.knnSearch(mid+1, hi, depth+1, q, k, h, visited)
	}
	// Visit the far side only if the splitting plane is closer than the
	// current k-th best.
	if h.Len() < k || diff*diff < (*h)[0].Dist2 {
		t.knnSearch(farLo, farHi, depth+1, q, k, h, visited)
	}
}

// Range returns all points inside the axis-aligned box [los, his], plus
// nodes visited.
func (t *KDTree) Range(los, his []float64) ([]Point, int) {
	var out []Point
	visited := 0
	t.rangeSearch(0, len(t.idx), 0, los, his, &out, &visited)
	return out, visited
}

func (t *KDTree) rangeSearch(lo, hi, depth int, los, his []float64, out *[]Point, visited *int) {
	if lo >= hi {
		return
	}
	mid := (lo + hi) / 2
	p := t.pts[t.idx[mid]]
	*visited++
	inside := true
	for j := 0; j < t.dims && j < len(los); j++ {
		if p.Vec[j] < los[j] || p.Vec[j] > his[j] {
			inside = false
			break
		}
	}
	if inside {
		*out = append(*out, p)
	}
	if hi-lo == 1 {
		return
	}
	axis := depth % t.dims
	v := p.Vec[axis]
	var qlo, qhi float64 = math.Inf(-1), math.Inf(1)
	if axis < len(los) {
		qlo = los[axis]
	}
	if axis < len(his) {
		qhi = his[axis]
	}
	if qlo <= v {
		t.rangeSearch(lo, mid, depth+1, los, his, out, visited)
	}
	if qhi >= v {
		t.rangeSearch(mid+1, hi, depth+1, los, his, out, visited)
	}
}

// Len returns the number of indexed points.
func (t *KDTree) Len() int { return len(t.pts) }

// Dims returns the indexed dimensionality.
func (t *KDTree) Dims() int { return t.dims }

func sqDist(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var s float64
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// GridIndex is a uniform grid over a bounding box mapping cells to the
// points inside them — the coarse routing structure for expanding-ring
// kNN (ref [33] style): start from the query's cell, grow outward ring by
// ring until k candidates are guaranteed.
type GridIndex struct {
	mins, maxs []float64
	cellsPer   int
	cells      map[int][]Point
	dims       int
	n          int
}

// NewGridIndex builds a grid with cellsPer cells per dimension.
func NewGridIndex(pts []Point, cellsPer int) (*GridIndex, error) {
	if len(pts) == 0 {
		return nil, ErrEmpty
	}
	if cellsPer < 1 {
		cellsPer = 1
	}
	dims := len(pts[0].Vec)
	mins := append([]float64(nil), pts[0].Vec...)
	maxs := append([]float64(nil), pts[0].Vec...)
	for _, p := range pts[1:] {
		for j := 0; j < dims && j < len(p.Vec); j++ {
			if p.Vec[j] < mins[j] {
				mins[j] = p.Vec[j]
			}
			if p.Vec[j] > maxs[j] {
				maxs[j] = p.Vec[j]
			}
		}
	}
	for j := range maxs {
		maxs[j] += 1e-9
	}
	g := &GridIndex{
		mins: mins, maxs: maxs,
		cellsPer: cellsPer,
		cells:    make(map[int][]Point),
		dims:     dims,
		n:        len(pts),
	}
	for _, p := range pts {
		id := g.cellID(g.coords(p.Vec))
		g.cells[id] = append(g.cells[id], p)
	}
	return g, nil
}

func (g *GridIndex) coords(v []float64) []int {
	c := make([]int, g.dims)
	for j := 0; j < g.dims; j++ {
		span := g.maxs[j] - g.mins[j]
		if span <= 0 {
			continue
		}
		var x float64
		if j < len(v) {
			x = v[j]
		}
		ci := int(float64(g.cellsPer) * (x - g.mins[j]) / span)
		if ci < 0 {
			ci = 0
		}
		if ci >= g.cellsPer {
			ci = g.cellsPer - 1
		}
		c[j] = ci
	}
	return c
}

func (g *GridIndex) cellID(c []int) int {
	id := 0
	for _, ci := range c {
		id = id*g.cellsPer + ci
	}
	return id
}

// CellWidth returns the grid cell width along dimension j.
func (g *GridIndex) CellWidth(j int) float64 {
	return (g.maxs[j] - g.mins[j]) / float64(g.cellsPer)
}

// RingCandidates returns the points in the ring of cells at Chebyshev
// distance ring from q's cell (ring 0 = the home cell itself).
func (g *GridIndex) RingCandidates(q []float64, ring int) []Point {
	home := g.coords(q)
	var out []Point
	g.walkRing(home, ring, func(cell []int) {
		out = append(out, g.cells[g.cellID(cell)]...)
	})
	return out
}

// walkRing enumerates cells at Chebyshev distance exactly ring from home.
func (g *GridIndex) walkRing(home []int, ring int, visit func([]int)) {
	cur := make([]int, g.dims)
	var rec func(dim int, onShell bool)
	rec = func(dim int, onShell bool) {
		if dim == g.dims {
			if onShell || ring == 0 {
				visit(cur)
			}
			return
		}
		lo := home[dim] - ring
		hi := home[dim] + ring
		for c := lo; c <= hi; c++ {
			if c < 0 || c >= g.cellsPer {
				continue
			}
			cur[dim] = c
			shell := onShell || c == lo || c == hi
			if ring == 0 {
				shell = true
			}
			rec(dim+1, shell)
		}
	}
	rec(0, false)
}

// MaxRing returns the largest useful ring radius for this grid.
func (g *GridIndex) MaxRing() int { return g.cellsPer }

// Len returns the number of indexed points.
func (g *GridIndex) Len() int { return g.n }

// PartitionsInBox returns the distinct storage partitions of points whose
// cells intersect the box — the routing set for cohort range queries.
func (g *GridIndex) PartitionsInBox(los, his []float64) []int {
	loC := g.coords(los)
	hiC := g.coords(his)
	seen := make(map[int]bool)
	cur := make([]int, g.dims)
	var rec func(dim int)
	rec = func(dim int) {
		if dim == g.dims {
			for _, p := range g.cells[g.cellID(cur)] {
				seen[p.Partition] = true
			}
			return
		}
		for c := loC[dim]; c <= hiC[dim]; c++ {
			cur[dim] = c
			rec(dim + 1)
		}
	}
	rec(0)
	out := make([]int, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}
