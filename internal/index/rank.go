package index

import (
	"fmt"

	"repro/internal/sketch"
	"repro/internal/storage"
)

// RankIndex is the statistical index of ref [30]: for a table whose
// partitions are sorted descending by a score column, it holds one score
// histogram per partition. A threshold-style rank-join coordinator uses
// the histograms to bound how many rows of each sorted run can still
// matter, and reads only those prefixes.
type RankIndex struct {
	col   int
	hists []*sketch.Histogram1D
	// tops[p] is partition p's maximum score (first row of sorted run).
	tops []float64
	rows []int
}

// BuildRankIndex sorts every partition of t descending by score column
// col and builds per-partition histograms with the given bucket count.
// Index building is offline and uncharged (like any DBMS index build).
func BuildRankIndex(t *storage.Table, col int, buckets int) (*RankIndex, error) {
	t.SortPartitions(func(a, b storage.Row) bool {
		return scoreOf(a, col) > scoreOf(b, col)
	})
	ri := &RankIndex{col: col}
	for p := 0; p < t.Partitions(); p++ {
		rows, _, err := t.ScanPartition(p)
		if err != nil {
			return nil, fmt.Errorf("rank index: %w", err)
		}
		lo, hi := 0.0, 1.0
		if len(rows) > 0 {
			lo = scoreOf(rows[len(rows)-1], col)
			hi = scoreOf(rows[0], col) + 1e-9
		}
		if hi <= lo {
			hi = lo + 1e-9
		}
		h, err := sketch.NewHistogram1D(lo, hi, buckets)
		if err != nil {
			return nil, fmt.Errorf("rank index: %w", err)
		}
		for _, r := range rows {
			h.Add(scoreOf(r, col))
		}
		ri.hists = append(ri.hists, h)
		top := 0.0
		if len(rows) > 0 {
			top = scoreOf(rows[0], col)
		}
		ri.tops = append(ri.tops, top)
		ri.rows = append(ri.rows, len(rows))
	}
	return ri, nil
}

func scoreOf(r storage.Row, col int) float64 {
	if col < 0 || col >= len(r.Vec) {
		return 0
	}
	return r.Vec[col]
}

// Col returns the indexed score column.
func (ri *RankIndex) Col() int { return ri.col }

// Partitions returns the number of indexed partitions.
func (ri *RankIndex) Partitions() int { return len(ri.hists) }

// Top returns partition p's maximum score.
func (ri *RankIndex) Top(p int) float64 {
	if p < 0 || p >= len(ri.tops) {
		return 0
	}
	return ri.tops[p]
}

// DepthForScore estimates how many rows of partition p's sorted run have
// score >= s, padded by one histogram bucket so the estimate never cuts
// off true matches.
func (ri *RankIndex) DepthForScore(p int, s float64) int {
	if p < 0 || p >= len(ri.hists) {
		return 0
	}
	h := ri.hists[p]
	est := h.CountAbove(s)
	// Pad by one bucket's expected population to absorb estimation error.
	pad := int64(0)
	if ri.rows[p] > 0 {
		pad = int64(ri.rows[p]/64) + 1
	}
	d := est + pad
	if d > int64(ri.rows[p]) {
		d = int64(ri.rows[p])
	}
	return int(d)
}

// Rows returns partition p's row count.
func (ri *RankIndex) Rows(p int) int {
	if p < 0 || p >= len(ri.rows) {
		return 0
	}
	return ri.rows[p]
}
