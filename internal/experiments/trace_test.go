package experiments

import "testing"

func TestE18Shape(t *testing.T) {
	row, err := E18TraceOverhead(5_000, 150, 4, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if row.BaselineQPS <= 0 || row.TracedQPS <= 0 {
		t.Fatalf("E18 served nothing: %+v", row)
	}
	if row.SampledTraces == 0 {
		t.Error("E18: sampler recorded no traces")
	}
	// Cross-shard stitching: one tree, several nodes, bounded RPC spans.
	if row.TraceNodes < 2 {
		t.Errorf("E18: trace covers %d node(s), want >= 2", row.TraceNodes)
	}
	if row.PartialRPCSpans < 1 || row.PartialRPCSpans > row.MaxRemoteHolders {
		t.Errorf("E18: partial_rpc spans = %d, want 1..%d", row.PartialRPCSpans, row.MaxRemoteHolders)
	}
	if row.TraceSpans < 5 {
		t.Errorf("E18: implausibly small span tree (%d spans)", row.TraceSpans)
	}
	// The audit must have probed model answers and measured an error
	// that agrees with the ground truth computed over the same queries.
	if row.AuditSamples == 0 {
		t.Fatal("E18: shadow audit recorded no samples")
	}
	diff := row.AuditMAPE - row.TruthMAPE
	if diff < 0 {
		diff = -diff
	}
	tol := 0.02 + 0.1*row.TruthMAPE
	if diff > tol {
		t.Errorf("E18: audit MAPE %.4f disagrees with ground truth %.4f (tol %.4f)",
			row.AuditMAPE, row.TruthMAPE, tol)
	}
	if row.SlowLogged == 0 {
		t.Error("E18: slow-query log never triggered at a 1ns threshold")
	}
}
