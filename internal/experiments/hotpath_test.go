package experiments

import "testing"

func TestE17Shape(t *testing.T) {
	row, err := E17HotPath(5_000, 150, 4, 100, 20)
	if err != nil {
		t.Fatal(err)
	}
	if row.Queries == 0 || row.QPS <= 0 {
		t.Fatalf("E17 served nothing: %+v", row)
	}
	// The zero-alloc contract of the tentpole: steady-state prediction
	// and cache hits must not allocate. MemStats counting over 20k
	// iterations tolerates stray runtime noise, not per-op allocations.
	// Under -race sync.Pool intentionally bypasses its caches, so the
	// contract is only asserted in normal builds (CI's bench smoke
	// proves it with -benchmem precision).
	if !raceEnabled {
		if row.TryPredictAllocsOp >= 0.5 {
			t.Errorf("E17: TryPredict allocates %.2f/op, want ~0", row.TryPredictAllocsOp)
		}
		if row.CacheHitAllocsOp >= 0.5 {
			t.Errorf("E17: cache hit allocates %.2f/op, want ~0", row.CacheHitAllocsOp)
		}
	}
	if row.CacheHitRate <= 0 {
		t.Error("E17: repeat-heavy stream never hit the cache")
	}
	if row.RPCsPerQuery > float64(row.MaxRemoteHolders) {
		t.Errorf("E17: %.2f partial RPCs per query > %d remote holders",
			row.RPCsPerQuery, row.MaxRemoteHolders)
	}
	if row.TryPredictNsOp <= 0 || row.CacheHitNsOp <= 0 {
		t.Errorf("E17: implausible tier timings: %+v", row)
	}
}
