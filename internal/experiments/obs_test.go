package experiments

import "testing"

func TestE19Introspection(t *testing.T) {
	row, err := E19Introspection(4_000, 120, 4, 100)
	if err != nil {
		t.Fatalf("E19 failed: %v (row %+v)", err, row)
	}
	if row.DownCritical == 0 {
		t.Error("E19: no critical finding while the victim was down")
	}
	if row.LagParts == 0 || row.LagPeak == 0 {
		t.Errorf("E19: cold revive surfaced no replication lag: parts=%d peak=%d",
			row.LagParts, row.LagPeak)
	}
	if !row.CaughtUp {
		t.Error("E19: catch-up did not drain the lag")
	}
	if row.BaselineQPS <= 0 || row.ObsQPS <= 0 {
		t.Errorf("E19: served nothing: baseline=%.0f obs=%.0f", row.BaselineQPS, row.ObsQPS)
	}
	if row.LogLines == 0 {
		t.Error("E19: instrumented phase emitted no log lines")
	}
}
