package experiments

import (
	"math"
	"time"

	"repro/internal/aqp"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/impute"
	"repro/internal/knn"
	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/query"
	"repro/internal/rankjoin"
	"repro/internal/storage"
	"repro/internal/workload"
)

// E2CountAccuracy compares the SEA agent against an AQP engine on count
// queries: accuracy (MAPE), per-query base rows touched, and the AQP
// sample's storage footprint (C1 and the §II critique of ref [17]).
func E2CountAccuracy(nRows, training, eval int, sampleFraction float64) (E2Row, error) {
	env, err := NewEnv(nRows, 8, 11)
	if err != nil {
		return E2Row{}, err
	}
	cfg := core.DefaultConfig(2)
	cfg.TrainingQueries = training
	agent, err := core.NewAgent(exec.CohortOracle{Ex: env.Executor}, cfg)
	if err != nil {
		return E2Row{}, err
	}
	aqpEng, _, err := aqp.Build(env.Engine, env.Table, sampleFraction, true, 12)
	if err != nil {
		return E2Row{}, err
	}
	qs := stream(13, query.Count)
	for i := 0; i < training; i++ {
		if _, err := agent.Answer(qs.Next()); err != nil {
			return E2Row{}, err
		}
	}
	row := E2Row{
		Training:       training,
		SampleFraction: sampleFraction,
		AQPSampleBytes: aqpEng.SampleBytes(),
	}
	var seaErr, aqpErr float64
	var seaN, aqpN int
	var seaRows, aqpRows, exactRows int64
	var predicted int
	for i := 0; i < eval; i++ {
		q := qs.Next()
		truth, exactCost, err := env.Executor.ExactCohort(q)
		if err != nil {
			return E2Row{}, err
		}
		exactRows += exactCost.RowsRead
		ans, err := agent.Answer(q)
		if err != nil {
			return E2Row{}, err
		}
		seaRows += ans.Cost.RowsRead
		if ans.Predicted {
			predicted++
			if truth.Value > 20 {
				seaErr += math.Abs(ans.Value-truth.Value) / truth.Value
				seaN++
			}
		}
		est, _, aqpCost, err := aqpEng.Answer(q)
		if err != nil {
			return E2Row{}, err
		}
		aqpRows += aqpCost.RowsRead
		if truth.Value > 20 {
			aqpErr += math.Abs(est.Value-truth.Value) / truth.Value
			aqpN++
		}
	}
	if seaN > 0 {
		row.SEAMAPE = seaErr / float64(seaN)
	}
	if aqpN > 0 {
		row.AQPMAPE = aqpErr / float64(aqpN)
	}
	row.SEARowsPerQ = float64(seaRows) / float64(eval)
	row.AQPRowsPerQ = float64(aqpRows) / float64(eval)
	row.ExactRowsPerQ = float64(exactRows) / float64(eval)
	row.PredictionRate = float64(predicted) / float64(eval)
	return row, nil
}

// E4Row is one rank-join contrast row (C2: up to 6 orders of magnitude).
type E4Row struct {
	Rows          int
	K             int
	MRTime        time.Duration
	ThresholdTime time.Duration
	SpeedupX      float64
	MRRows        int64
	ThresholdRows int64
	RowRatioX     float64
	MRBytes       int64
	THBytes       int64
	ByteRatioX    float64
	MRDollars     float64
	THDollars     float64
}

// E4RankJoin measures MapReduce vs threshold rank-join.
func E4RankJoin(nRows, k int) (E4Row, error) {
	env, err := NewEnv(100, 8, 21) // env only for the cluster/engine
	if err != nil {
		return E4Row{}, err
	}
	rng := workload.NewRNG(22)
	r, err := storage.NewTable(env.Cluster, "R", []string{"score"}, 16)
	if err != nil {
		return E4Row{}, err
	}
	s, err := storage.NewTable(env.Cluster, "S", []string{"score"}, 16)
	if err != nil {
		return E4Row{}, err
	}
	if err := r.Load(workload.ZipfKeys(rng, nRows, uint64(nRows/2), 1.2, 64, 0)); err != nil {
		return E4Row{}, err
	}
	if err := s.Load(workload.ZipfKeys(rng, nRows, uint64(nRows/2), 1.2, 64, 0)); err != nil {
		return E4Row{}, err
	}
	op, err := rankjoin.New(env.Engine, r, s, 0)
	if err != nil {
		return E4Row{}, err
	}
	_, mrCost, err := op.MapReduce(k)
	if err != nil {
		return E4Row{}, err
	}
	_, thCost, err := op.Threshold(k)
	if err != nil {
		return E4Row{}, err
	}
	prices := metrics.DefaultPrices()
	row := E4Row{
		Rows: nRows, K: k,
		MRTime: mrCost.Time, ThresholdTime: thCost.Time,
		MRRows: mrCost.RowsRead, ThresholdRows: thCost.RowsRead,
		MRBytes: mrCost.BytesLAN, THBytes: thCost.BytesLAN,
		MRDollars: prices.Dollars(mrCost), THDollars: prices.Dollars(thCost),
	}
	if thCost.Time > 0 {
		row.SpeedupX = float64(mrCost.Time) / float64(thCost.Time)
	}
	if thCost.RowsRead > 0 {
		row.RowRatioX = float64(mrCost.RowsRead) / float64(thCost.RowsRead)
	}
	if thCost.BytesLAN > 0 {
		row.ByteRatioX = float64(mrCost.BytesLAN) / float64(thCost.BytesLAN)
	}
	return row, nil
}

// E5Row is one kNN contrast row (C3: 3 orders of magnitude).
type E5Row struct {
	Rows        int
	K           int
	ScanTime    time.Duration
	IndexedTime time.Duration
	SpeedupX    float64
	ScanRows    int64
	IndexedRows int64
	RowRatioX   float64
}

// E5KNN measures scan vs indexed kNN, averaged over queries drawn near
// the data clusters.
func E5KNN(nRows, k, queries int) (E5Row, error) {
	env, err := NewEnv(nRows, 8, 31)
	if err != nil {
		return E5Row{}, err
	}
	op, err := knn.New(env.Engine, env.Table, 2, 24)
	if err != nil {
		return E5Row{}, err
	}
	rng := workload.NewRNG(32)
	regions := workload.DefaultRegions(2)
	var scanC, idxC metrics.Counter
	for i := 0; i < queries; i++ {
		q := workload.KNNPoint(rng, regions)
		_, sc, err := op.Scan(q, k)
		if err != nil {
			return E5Row{}, err
		}
		scanC.Observe(sc)
		_, ic, err := op.Indexed(q, k)
		if err != nil {
			return E5Row{}, err
		}
		idxC.Observe(ic)
	}
	row := E5Row{
		Rows: nRows, K: k,
		ScanTime: scanC.MeanTime(), IndexedTime: idxC.MeanTime(),
		ScanRows: scanC.Total().RowsRead, IndexedRows: idxC.Total().RowsRead,
	}
	if idxC.MeanTime() > 0 {
		row.SpeedupX = float64(scanC.MeanTime()) / float64(idxC.MeanTime())
	}
	if row.IndexedRows > 0 {
		row.RowRatioX = float64(row.ScanRows) / float64(row.IndexedRows)
	}
	return row, nil
}

// E6Row is the subgraph-cache contrast (C4: up to 40x).
type E6Row struct {
	Graphs       int
	Queries      int
	NoCacheTime  time.Duration
	CacheTime    time.Duration
	SpeedupX     float64
	ExactHits    int64
	SubHits      int64
	SuperHits    int64
	GraphsTested int64
}

// E6SubgraphCache runs a repeat-heavy pattern stream through the cache
// and the no-cache store.
func E6SubgraphCache(nGraphs, nQueries int, repeatFrac float64) (E6Row, error) {
	rng := workload.NewRNG(41)
	cl := clusterOf(8)
	graphs := make([]*graph.Graph, nGraphs)
	for i := range graphs {
		g, err := graph.RandomGraph(rng, 10+rng.Intn(8), 0.22, 4)
		if err != nil {
			return E6Row{}, err
		}
		graphs[i] = g
	}
	store := graph.NewStore(cl, graphs)
	cache := graph.NewCache(store, 32)

	// Pattern stream: a small pool reused with probability repeatFrac.
	var pool []*graph.Graph
	nextPattern := func() (*graph.Graph, error) {
		if len(pool) > 0 && rng.Float64() < repeatFrac {
			return pool[rng.Intn(len(pool))], nil
		}
		src := graphs[rng.Intn(len(graphs))]
		k := 3 + rng.Intn(4)
		if k > src.N() {
			k = src.N()
		}
		p, err := graph.SamplePattern(rng, src, k)
		if err != nil {
			return nil, err
		}
		pool = append(pool, p)
		return p, nil
	}

	var noCache, withCache metrics.Counter
	var tested int64
	for i := 0; i < nQueries; i++ {
		p, err := nextPattern()
		if err != nil {
			return E6Row{}, err
		}
		_, c1 := store.MatchAll(p)
		noCache.Observe(c1)
		_, c2 := cache.Query(p)
		withCache.Observe(c2)
		tested += c2.RowsRead
	}
	row := E6Row{
		Graphs: nGraphs, Queries: nQueries,
		NoCacheTime: noCache.Total().Time, CacheTime: withCache.Total().Time,
		ExactHits: cache.Hits, SubHits: cache.SubHits, SuperHits: cache.SuperHits,
		GraphsTested: tested,
	}
	if row.CacheTime > 0 {
		row.SpeedupX = float64(row.NoCacheTime) / float64(row.CacheTime)
	}
	return row, nil
}

// E7Row is the imputation contrast (C5).
type E7Row struct {
	Rows         int
	FullTime     time.Duration
	CentroidTime time.Duration
	SpeedupX     float64
	FullRMSE     float64
	CentroidRMSE float64
}

// E7Imputation masks 5% of cells and compares full-scan vs centroid
// imputation.
func E7Imputation(nRows int) (E7Row, error) {
	rng := workload.NewRNG(51)
	truth := workload.GaussianMixture(rng, nRows, 4, workload.DefaultMixture(4), 0)
	masked := make([]storage.Row, len(truth))
	for i, r := range truth {
		masked[i] = storage.Row{Key: r.Key, Vec: append([]float64(nil), r.Vec...)}
	}
	workload.MissingMask(rng, masked, 0.05)
	im := impute.New(clusterOf(8))
	full, fullCost, err := im.FullScan(masked)
	if err != nil {
		return E7Row{}, err
	}
	cent, centCost, err := im.Centroid(masked, 52)
	if err != nil {
		return E7Row{}, err
	}
	row := E7Row{
		Rows:     nRows,
		FullTime: fullCost.Time, CentroidTime: centCost.Time,
		FullRMSE:     impute.RMSE(truth, masked, full),
		CentroidRMSE: impute.RMSE(truth, masked, cent),
	}
	if centCost.Time > 0 {
		row.SpeedupX = float64(fullCost.Time) / float64(centCost.Time)
	}
	return row, nil
}

// E8Row is the optimizer evaluation (C6).
type E8Row struct {
	Accuracy        float64
	LearnedRegret   float64
	AlwaysMRRegret  float64
	AlwaysCCRegret  float64
	BestModelFamily string
}

// E8Optimizer trains the paradigm-selection model and scores it on held-
// out tasks; it also runs the RT3.3 inference-model selection on a
// nonlinear cost surface.
func E8Optimizer(nRows int) (E8Row, error) {
	env, err := NewEnv(nRows, 8, 61)
	if err != nil {
		return E8Row{}, err
	}
	if err := env.Executor.BuildGrid(16); err != nil {
		return E8Row{}, err
	}
	qs := stream(62, query.Count)
	train, _, err := optimizer.CollectRangeCorpus(env.Executor, qs.Batch(40))
	if err != nil {
		return E8Row{}, err
	}
	cm, err := optimizer.Train(train)
	if err != nil {
		return E8Row{}, err
	}
	held, _, err := optimizer.CollectRangeCorpus(env.Executor, qs.Batch(15))
	if err != nil {
		return E8Row{}, err
	}
	var fs []optimizer.Features
	var pairs []map[optimizer.Paradigm]float64
	for i := 0; i < len(held); i += 2 {
		fs = append(fs, held[i].F)
		pairs = append(pairs, map[optimizer.Paradigm]float64{
			held[i].Paradigm:   held[i].Seconds,
			held[i+1].Paradigm: held[i+1].Seconds,
		})
	}
	reg := optimizer.Regret(cm, fs, pairs)
	// Inference-model selection on the measured MapReduce costs.
	var xs [][]float64
	var ys []float64
	for _, smp := range train {
		if smp.Paradigm == optimizer.MapReduce {
			xs = append(xs, []float64{smp.F.Selectivity, math.Log1p(smp.F.Rows)})
			ys = append(ys, smp.Seconds)
		}
	}
	best, _, err := optimizer.SelectInferenceModel(xs, ys, 4, workload.NewRNG(63))
	if err != nil {
		return E8Row{}, err
	}
	return E8Row{
		Accuracy:        optimizer.Accuracy(cm, fs, pairs),
		LearnedRegret:   reg["learned"],
		AlwaysMRRegret:  reg["always-mapreduce"],
		AlwaysCCRegret:  reg["always-cohort"],
		BestModelFamily: best,
	}, nil
}

func clusterOf(n int) *cluster.Cluster {
	return cluster.New(n, cluster.DefaultConfig())
}

// rankjoinNew builds a rank-join operator over env's engine (shared by
// E4 and ablation A4).
func rankjoinNew(env *Env, r, s *storage.Table) (*rankjoin.Operator, error) {
	return rankjoin.New(env.Engine, r, s, 0)
}

// optimizerSelect runs the RT3.3 inference-model selection (shared by
// E8 and ablation A2).
func optimizerSelect(xs [][]float64, ys []float64) (string, map[string]float64, error) {
	return optimizer.SelectInferenceModel(xs, ys, 4, workload.NewRNG(111))
}
