package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/query"
	"repro/internal/serve"
	"repro/internal/workload"
)

// E21Row is one row of the chaos-resilience scenario: what does the
// hardened RPC plane (deadlines, budgeted retries, breakers, hedging,
// degradation) cost with chaos disabled, and does a cluster under
// injected slow/flaky/partitioned peers keep serving with zero
// client-visible errors and honest degraded coverage.
type E21Row struct {
	Rows  int `json:"rows"`
	Nodes int `json:"nodes"`

	// Overhead: served QPS of the same scatter stream against a
	// resilience-stripped cluster (no retries, no hedging, breakers
	// pinned closed) versus the hardened defaults, chaos disarmed in
	// both — the ≤2% CI gate.
	Workers     int     `json:"workers"`
	BaselineQPS float64 `json:"baseline_qps"`
	ChaosQPS    float64 `json:"chaos_qps"`
	OverheadPct float64 `json:"overhead_pct"`
	// Hedges counts hedged scatter RPCs fired by the hardened cluster
	// during the overhead phases (the plumbing is live, not just built).
	Hedges int64 `json:"hedges"`

	// Narrative: 3-node cluster, chaos armed — one peer's partials
	// blackholed, the other slowed +100ms jittered with a 10% injected
	// error rate.
	Queries      int     `json:"queries"`
	ClientErrors int     `json:"client_errors"`
	BaseP99MS    float64 `json:"base_p99_ms"`
	ChaosP99MS   float64 `json:"chaos_p99_ms"`
	Degraded     int     `json:"degraded"`
	MinCoverage  float64 `json:"min_coverage"`
	MaxCoverage  float64 `json:"max_coverage"`
	// HonestyErrPct is the worst relative error (in %) of a degraded
	// whole-space COUNT after coverage extrapolation against the true
	// row count: honest coverage makes the estimate land on the truth.
	HonestyErrPct float64 `json:"honesty_err_pct"`
	Delayed       int64   `json:"delayed"`
	Errored       int64   `json:"errored"`
	Blackholed    int64   `json:"blackholed"`
	RPCRetries    int64   `json:"rpc_retries"`
	// BreakerOpened reports that some member's breaker for the
	// blackholed peer observably opened under chaos; BreakerReclosed
	// that every breaker returned to closed (via half-open probes)
	// within RecoverMS after the rules cleared.
	BreakerOpened   bool  `json:"breaker_opened"`
	BreakerReclosed bool  `json:"breaker_reclosed"`
	RecoverMS       int64 `json:"recover_ms"`
}

// e21Client is the load-driver HTTP client: enough idle conns per host
// that concurrent workers reuse keep-alives instead of handshaking.
func e21Client() *http.Client {
	return &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
		},
	}
}

// e21Result is one driven query's client-side outcome.
type e21Result struct {
	err      error
	lat      time.Duration
	degraded bool
	coverage float64
	value    float64
}

// e21Drive posts reqs concurrently on workers goroutines, spraying
// them round-robin across the given member URLs (the way real clients
// spread over a cluster — every member coordinates its share, so every
// member's breakers see call volume), and returns per-query outcomes
// in request order.
func e21Drive(hc *http.Client, bases []string, reqs []serve.QueryRequest, workers int) []e21Result {
	out := make([]e21Result, len(reqs))
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = e21Post(hc, bases[i%len(bases)], reqs[i])
			}
		}()
	}
	for i := range reqs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// e21DriveAB drives the same query stream against two clusters at
// once for a paired overhead comparison: each worker issues every
// logical query to BOTH clusters back-to-back (alternating which goes
// first per query), so the two measurements of a pair run milliseconds
// apart under identical ambient conditions. A CPU-steal lump, a
// frequency excursion, or a scheduler stall hits both sides of the
// stream equally and cancels in the latency ratio — unlike sequential
// before/after phases, whose environment can shift several percent
// between phases (measured: the sequential null test between identical
// clusters swings ±10% per pair in this harness). Per-query latencies
// are returned per cluster, in request order.
func e21DriveAB(hc *http.Client, basesA, basesB []string, reqs []serve.QueryRequest, workers int) (latA, latB []time.Duration, err error) {
	latA = make([]time.Duration, len(reqs))
	latB = make([]time.Duration, len(reqs))
	errs := make([]error, workers)
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for j := range idx {
				one := func(bases []string, lat []time.Duration) {
					r := e21Post(hc, bases[j%len(bases)], reqs[j])
					if r.err != nil && errs[w] == nil {
						errs[w] = r.err
					}
					lat[j] = r.lat
				}
				if j%2 == 0 {
					one(basesA, latA)
					one(basesB, latB)
				} else {
					one(basesB, latB)
					one(basesA, latA)
				}
			}
		}(w)
	}
	for j := range reqs {
		idx <- j
	}
	close(idx)
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, nil, e
		}
	}
	return latA, latB, nil
}

// e21Post sends one query and decodes the cluster's answer.
func e21Post(hc *http.Client, base string, req serve.QueryRequest) e21Result {
	body, err := json.Marshal(req)
	if err != nil {
		return e21Result{err: err}
	}
	start := time.Now()
	resp, err := hc.Post(base+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return e21Result{err: err, lat: time.Since(start)}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return e21Result{err: fmt.Errorf("HTTP %d", resp.StatusCode), lat: time.Since(start)}
	}
	var qr dist.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return e21Result{err: err, lat: time.Since(start)}
	}
	return e21Result{
		lat:      time.Since(start),
		degraded: qr.Degraded,
		coverage: qr.Coverage,
		value:    qr.Value,
	}
}

// e21P99 returns the p99 of latencies in milliseconds.
func e21P99(res []e21Result) float64 {
	lats := make([]float64, 0, len(res))
	for _, r := range res {
		lats = append(lats, float64(r.lat)/float64(time.Millisecond))
	}
	sort.Float64s(lats)
	if len(lats) == 0 {
		return 0
	}
	return lats[len(lats)*99/100]
}

// e21SetChaos drives the runtime toggle the operator would use:
// POST /v1/debug/chaos with the rule set (nil clears).
func e21SetChaos(hc *http.Client, base string, rules []chaos.Rule) error {
	st := struct {
		Enabled bool         `json:"enabled"`
		Rules   []chaos.Rule `json:"rules,omitempty"`
	}{Enabled: len(rules) > 0, Rules: rules}
	body, err := json.Marshal(st)
	if err != nil {
		return err
	}
	resp, err := hc.Post(base+"/v1/debug/chaos", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("chaos toggle HTTP %d", resp.StatusCode)
	}
	return nil
}

// E21ChaosResilience runs the chaos-hardening scenario end to end.
//
// Overhead: two identical 3-node clusters serve the same repeat
// scatter stream (answer cache off, exact agents: every query fans out
// over /v1/partials) — one with the resilience plane stripped to its
// pre-hardening behaviour (RetryBudget<0, HedgeQuantile<0, breakers
// pinned closed), one with the hardened defaults and the chaos
// interceptor installed but disarmed. The comparison is paired per
// QUERY, not per phase: every worker issues each query to both
// clusters back-to-back in alternating order (e21DriveAB), so ambient
// noise — CPU steal, frequency shifts, scheduler stalls, which swing
// sequential before/after phases by ±10% in this harness — hits both
// sides equally and cancels in the pooled mean-latency ratio. With a
// closed-loop driver QPS = workers/meanLatency, so that ratio IS the
// QPS ratio the ≤2% CI gate consumes.
//
// Narrative: a 3-node R=1 cluster serves unique whole-space COUNT
// queries while chaos rules injected at runtime blackhole one peer's
// /v1/partials (a partition of the scatter plane: that peer's data
// partitions have no other holder) and slow the other by 100ms ±100ms
// jitter with a 10% injected error rate. The cluster must answer every
// query (zero client-visible errors: injected errors are retried under
// budget, the partitioned peer's partitions degrade instead of
// failing), degraded answers must carry honest coverage (< 1, and the
// coverage-extrapolated COUNT lands on the true row count), p99 must
// stay bounded by the RPC timeout plus retry budget rather than the
// blackhole, and some member's breaker for the partitioned peer must
// observably open, then re-close via a half-open probe after the rules
// clear. Clients spray queries round-robin over every member, so each
// member coordinates a share of the stream and warms its own breakers.
func E21ChaosResilience(nRows, workers, perWorker int) (E21Row, error) {
	if workers < 1 {
		workers = 1
	}
	if perWorker < 1 {
		perWorker = 1
	}
	row := E21Row{Rows: nRows, Nodes: 3, Workers: workers}
	rows := workload.StandardRows(nRows/4, 7)
	hc := e21Client()

	// --- Overhead: stripped vs hardened resilience, chaos disarmed. ---
	ccfg := core.DefaultConfig(2)
	ccfg.TrainingQueries = 1 << 30 // exact path: every query scatters
	mk := func(stripped bool) (*dist.LocalCluster, error) {
		cfg := dist.Config{
			Agent:       ccfg,
			Replicas:    2,
			AnswerCache: -1, // every repeat re-scatters: the RPC plane is the workload
		}
		if stripped {
			cfg.RetryBudget = -1
			cfg.HedgeQuantile = -1
			cfg.BreakerFailureRate = -1
		}
		return dist.StartLocal(row.Nodes, cfg, rows)
	}
	base, err := mk(true)
	if err != nil {
		return row, err
	}
	defer base.Close()
	hard, err := mk(false)
	if err != nil {
		return row, err
	}
	defer hard.Close()

	catalog := make([]serve.QueryRequest, 64)
	cs := workload.NewQueryStream(workload.NewRNG(400), workload.DefaultRegions(2), query.Count)
	for i := range catalog {
		q := cs.Next()
		catalog[i] = serve.QueryRequest{Agg: "count", Los: q.Select.Los, His: q.Select.His}
	}
	stream := make([]serve.QueryRequest, workers*perWorker)
	for i := range stream {
		stream[i] = catalog[i%len(catalog)]
	}
	memberURLs := func(lc *dist.LocalCluster) []string {
		urls := make([]string, 0, len(lc.IDs()))
		for _, id := range lc.IDs() {
			urls = append(urls, lc.URL(id))
		}
		return urls
	}
	// Collector cycles are a loud noise source in a process hosting two
	// clusters plus the driver; switch the collector off for the
	// overhead section and collect manually between blocks, outside the
	// measured stream. (Restored before the narrative phase; the defer
	// is a failure-path backstop.)
	gcPct := debug.SetGCPercent(-1)
	defer func() { debug.SetGCPercent(gcPct) }()
	baseURLs, hardURLs := memberURLs(base), memberURLs(hard)
	// One discarded warm-up block primes connection pools and heap
	// shape on both clusters so neither side of the paired stream pays
	// first-touch costs; then four measured blocks, pooling per-query
	// latencies, with a manual collection between blocks.
	runtime.GC()
	warm := stream[:len(stream)/4+1]
	if _, _, err := e21DriveAB(hc, baseURLs, hardURLs, warm, workers); err != nil {
		return row, err
	}
	var latBase, latHard []time.Duration
	const blocks = 4
	for b := 0; b < blocks; b++ {
		runtime.GC()
		lo, hi := b*len(stream)/blocks, (b+1)*len(stream)/blocks
		lb, lh, err := e21DriveAB(hc, baseURLs, hardURLs, stream[lo:hi], workers)
		if err != nil {
			return row, fmt.Errorf("E21: overhead query failed: %v", err)
		}
		latBase = append(latBase, lb...)
		latHard = append(latHard, lh...)
	}
	// Winsorise both sides at the pooled 99th percentile before
	// summing: an ambient multi-ms stall lands on one side of one pair
	// and would otherwise move the ratio by over a percent on its own.
	// The cap is computed over BOTH sides pooled, so it clips outliers
	// symmetrically; a systematic tail shift (hedging, breaker
	// bookkeeping) still surfaces as mass piling up at the cap.
	pooled := make([]time.Duration, 0, len(latBase)+len(latHard))
	pooled = append(append(pooled, latBase...), latHard...)
	sort.Slice(pooled, func(i, j int) bool { return pooled[i] < pooled[j] })
	capLat := pooled[len(pooled)*99/100]
	sum := func(lats []time.Duration) float64 {
		var s time.Duration
		for _, l := range lats {
			if l > capLat {
				l = capLat
			}
			s += l
		}
		return s.Seconds()
	}
	sb, sh := sum(latBase), sum(latHard)
	// Closed-loop throughput: workers each cycling on one cluster alone
	// would serve workers/meanLatency QPS, so the paired mean-latency
	// ratio IS the QPS ratio — measured from contemporaneous samples.
	row.BaselineQPS = float64(workers) * float64(len(latBase)) / sb
	row.ChaosQPS = float64(workers) * float64(len(latHard)) / sh
	row.OverheadPct = 100 * (1 - sb/sh)
	for _, id := range hard.IDs() {
		row.Hedges += hard.Node(id).NodeStatus().Resilience.Hedges
	}
	base.Close()
	hard.Close()
	debug.SetGCPercent(gcPct)

	// --- Narrative: armed chaos on a live cluster. ---
	// R=1 so the blackholed peer's data partitions have no alternate
	// holder: the scatter path must degrade over them, not fail over.
	// Timeout bounds what one blackholed RPC can cost; Cooldown doubles
	// as the breaker's open interval, so recovery is observable fast.
	lc, err := dist.StartLocal(row.Nodes, dist.Config{
		Agent:       ccfg,
		Replicas:    1,
		AnswerCache: -1,
		Timeout:     400 * time.Millisecond,
		Cooldown:    300 * time.Millisecond,
		// One retry: enough to mask the 10% injected error rate (and to
		// show up in the counters) without letting a single query burn
		// its whole tail on the blackholed peer before the breaker opens.
		RetryBudget: 1,
		// Scatter waves block on the blackhole for the full RPC timeout
		// until the breaker opens; spare workers keep those stalls from
		// queueing the rest of the stream behind them.
		Workers: 16,
	}, rows)
	if err != nil {
		return row, err
	}
	defer lc.Close()
	ids := lc.IDs()
	slowURL, victimURL := lc.URL(ids[1]), lc.URL(ids[2])
	trueCount := float64(len(rows))
	bases := memberURLs(lc)
	// worstBreaker is the cluster-wide worst breaker state: clients spray
	// every member, so any member may coordinate a query and any member's
	// breaker for the victim may be the one that opens.
	worstBreaker := func() int {
		worst := 0
		for _, id := range ids {
			if w := lc.Node(id).NodeStatus().Resilience.WorstBreaker; w > worst {
				worst = w
			}
		}
		return worst
	}

	wholeSpace := func(i int) serve.QueryRequest {
		// Unique whole-space COUNTs: every query scatters across every
		// partition holder, and the true answer is the full row count.
		return serve.QueryRequest{Agg: "count",
			Los: []float64{-1e9 + float64(i), -1e9}, His: []float64{1e9, 1e9}}
	}
	narrative := func(n, from int) []e21Result {
		reqs := make([]serve.QueryRequest, n)
		for i := range reqs {
			reqs[i] = wholeSpace(from + i)
		}
		return e21Drive(hc, bases, reqs, 6)
	}

	const baseN, chaosN = 120, 240
	baseRes := narrative(baseN, 0)
	for _, r := range baseRes {
		if r.err != nil {
			return row, fmt.Errorf("E21: healthy-phase query failed: %v", r.err)
		}
		if r.degraded {
			return row, fmt.Errorf("E21: healthy phase produced a degraded answer")
		}
	}
	row.BaseP99MS = e21P99(baseRes)

	// Arm chaos over the wire on every member — the runtime toggle, not
	// a test backdoor. The same rule set everywhere: the victim's
	// partials endpoint is partitioned off, the slow peer's is delayed
	// 100ms ± 100ms with a 10% injected error rate.
	rules := []chaos.Rule{
		{Peer: victimURL, Endpoint: "/v1/partials", Blackhole: true},
		{Peer: slowURL, Endpoint: "/v1/partials", LatencyMS: 100, JitterMS: 100, ErrorRate: 0.10},
	}
	for _, id := range ids {
		if err := e21SetChaos(hc, lc.URL(id), rules); err != nil {
			return row, err
		}
	}
	// Watch the members' breakers for the victim while the chaos phase
	// runs: some breaker must observably leave closed (open or half-open).
	stopWatch := make(chan struct{})
	var watched sync.WaitGroup
	watched.Add(1)
	go func() {
		defer watched.Done()
		for {
			select {
			case <-stopWatch:
				return
			case <-time.After(50 * time.Millisecond):
				if worstBreaker() > 0 {
					row.BreakerOpened = true
				}
			}
		}
	}()
	chaosRes := narrative(chaosN, baseN)
	close(stopWatch)
	watched.Wait()
	row.Queries = baseN + chaosN

	row.MinCoverage, row.MaxCoverage = 2, 0
	for _, r := range chaosRes {
		if r.err != nil {
			row.ClientErrors++
			continue
		}
		if !r.degraded {
			continue
		}
		row.Degraded++
		row.MinCoverage = math.Min(row.MinCoverage, r.coverage)
		row.MaxCoverage = math.Max(row.MaxCoverage, r.coverage)
		if e := 100 * math.Abs(r.value-trueCount) / trueCount; e > row.HonestyErrPct {
			row.HonestyErrPct = e
		}
	}
	row.ChaosP99MS = e21P99(chaosRes)
	if row.ClientErrors != 0 {
		return row, fmt.Errorf("E21: chaos phase leaked %d client-visible errors", row.ClientErrors)
	}
	if row.Degraded == 0 {
		return row, fmt.Errorf("E21: blackholed partition produced no degraded answers")
	}
	if row.MinCoverage <= 0 || row.MaxCoverage >= 1 {
		return row, fmt.Errorf("E21: degraded coverage [%.3f, %.3f] not in (0, 1)",
			row.MinCoverage, row.MaxCoverage)
	}
	if row.HonestyErrPct > 5 {
		return row, fmt.Errorf("E21: coverage-extrapolated COUNT off by %.1f%% (dishonest coverage)",
			row.HonestyErrPct)
	}
	if !row.BreakerOpened {
		return row, fmt.Errorf("E21: no member's breaker left closed under a blackholed peer")
	}
	// p99 bounded structurally: before the breaker opens, one query can
	// burn its full retry budget against the blackholed peer — (1 +
	// RetryBudget) timeouts plus backoffs plus the slow peer — but never
	// hang on the blackhole itself. 6x the 400ms RPC timeout covers that
	// worst case with headroom; an unbounded tail fails loudly.
	if limit := 6 * float64(400*time.Millisecond/time.Millisecond); row.ChaosP99MS > limit {
		return row, fmt.Errorf("E21: chaos p99 %.0fms exceeds the structural bound %.0fms",
			row.ChaosP99MS, limit)
	}
	for _, id := range ids {
		row.RPCRetries += lc.Node(id).NodeStatus().Resilience.RPCRetries
	}
	if row.RPCRetries == 0 {
		return row, fmt.Errorf("E21: injected errors drove no budgeted retries")
	}
	for _, id := range ids {
		st := lc.Chaos(id).Stats()
		row.Delayed += st.Delayed
		row.Errored += st.Errored
		row.Blackholed += st.Blackholed
	}
	if row.Delayed == 0 || row.Errored == 0 || row.Blackholed == 0 {
		return row, fmt.Errorf("E21: chaos stats %+v: some armed fault never fired", row)
	}

	// Clear the rules over the wire and drive light traffic until every
	// member's breakers re-close (half-open probe admitted, probe
	// succeeded) and answers return to full coverage.
	for _, id := range ids {
		if err := e21SetChaos(hc, lc.URL(id), nil); err != nil {
			return row, err
		}
	}
	recoverStart := time.Now()
	seq := baseN + chaosN
	for i := 0; i < 80; i++ {
		r := e21Post(hc, bases[i%len(bases)], wholeSpace(seq))
		seq++
		if r.err == nil && !r.degraded && worstBreaker() == 0 {
			if math.Abs(r.value-trueCount) > 0.5 {
				return row, fmt.Errorf("E21: recovered COUNT %.0f != %.0f", r.value, trueCount)
			}
			row.BreakerReclosed = true
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	row.RecoverMS = time.Since(recoverStart).Milliseconds()
	if !row.BreakerReclosed {
		return row, fmt.Errorf("E21: breaker did not re-close within %dms of clearing chaos", row.RecoverMS)
	}
	return row, nil
}
