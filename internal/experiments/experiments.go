// Package experiments contains the runnable reproductions of every
// experiment in DESIGN.md's per-experiment index (E1-E12 plus ablations
// A1-A5). Each experiment is a pure function from parameters to a typed
// row of results; the root bench_test.go and cmd/seabench both drive
// these functions, so benchmark metrics and printed tables always agree.
//
// The paper is a vision paper with no evaluation tables; these
// experiments quantify its claims C1-C10 (see DESIGN.md) on the
// simulated BDAS. EXPERIMENTS.md records the measured rows against the
// claimed magnitudes.
package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Env is a ready simulated BDAS with clustered data, shared by several
// experiments.
type Env struct {
	Cluster  *cluster.Cluster
	Engine   *engine.Engine
	Table    *storage.Table
	Executor *exec.Executor
	Rows     []storage.Row
}

// NewEnv builds the standard environment: nodes data servers, 3-column
// Gaussian-mixture data (x, y spatial; z = 2x + 5 + noise), 2*nodes
// partitions.
func NewEnv(nRows, nodes int, seed int64) (*Env, error) {
	cl := cluster.New(nodes, cluster.DefaultConfig())
	eng := engine.New(cl)
	tbl, err := storage.NewTable(cl, "data", []string{"x", "y", "z"}, 2*nodes)
	if err != nil {
		return nil, fmt.Errorf("experiments env: %w", err)
	}
	rows := workload.StandardRows(nRows, seed)
	if err := tbl.Load(rows); err != nil {
		return nil, fmt.Errorf("experiments env: %w", err)
	}
	ex, err := exec.New(eng, tbl)
	if err != nil {
		return nil, fmt.Errorf("experiments env: %w", err)
	}
	return &Env{Cluster: cl, Engine: eng, Table: tbl, Executor: ex, Rows: rows}, nil
}

// stream builds the standard two-region analyst query stream.
func stream(seed int64, agg query.Agg) *workload.QueryStream {
	qs := workload.NewQueryStream(workload.NewRNG(seed), workload.DefaultRegions(2), agg)
	if agg == query.Avg || agg == query.Sum {
		qs.Col = 2
	}
	if agg == query.Corr || agg == query.RegSlope {
		qs.Col, qs.Col2 = 0, 2
	}
	return qs
}

// E1Row is one row of the Fig.1-vs-Fig.2 contrast (C1 efficiency).
type E1Row struct {
	Rows            int
	BDASMeanLatency time.Duration
	SEAMeanLatency  time.Duration
	SpeedupX        float64
	BDASRowsRead    int64
	SEARowsRead     int64
	PredictionRate  float64
	BDASDollars     float64
	SEADollars      float64
}

// E1DatalessVsBDAS trains an agent on `training` queries and compares
// answering `eval` further queries through the agent (Fig. 2) against
// answering all of them through the traditional stack (Fig. 1).
func E1DatalessVsBDAS(nRows, nodes, training, eval int) (E1Row, error) {
	env, err := NewEnv(nRows, nodes, 1)
	if err != nil {
		return E1Row{}, err
	}
	cfg := core.DefaultConfig(2)
	cfg.TrainingQueries = training
	agent, err := core.NewAgent(exec.MapReduceOracle{Ex: env.Executor}, cfg)
	if err != nil {
		return E1Row{}, err
	}
	qs := stream(2, query.Count)
	for i := 0; i < training; i++ {
		if _, err := agent.Answer(qs.Next()); err != nil {
			return E1Row{}, err
		}
	}
	// Pre-generate the evaluation queries so both paths see identical
	// workloads.
	queries := qs.Batch(eval)
	var bdas metrics.Counter
	for _, q := range queries {
		_, c, err := env.Executor.ExactMapReduce(q)
		if err != nil {
			return E1Row{}, err
		}
		bdas.Observe(c)
	}
	var seaC metrics.Counter
	pre := agent.Stats()
	for _, q := range queries {
		ans, err := agent.Answer(q)
		if err != nil {
			return E1Row{}, err
		}
		seaC.Observe(ans.Cost)
	}
	post := agent.Stats()
	prices := metrics.DefaultPrices()
	row := E1Row{
		Rows:            nRows,
		BDASMeanLatency: bdas.MeanTime(),
		SEAMeanLatency:  seaC.MeanTime(),
		BDASRowsRead:    bdas.Total().RowsRead,
		SEARowsRead:     seaC.Total().RowsRead,
		PredictionRate:  float64(post.Predicted-pre.Predicted) / float64(eval),
		BDASDollars:     prices.Dollars(bdas.Total()),
		SEADollars:      prices.Dollars(seaC.Total()),
	}
	if row.SEAMeanLatency > 0 {
		row.SpeedupX = float64(row.BDASMeanLatency) / float64(row.SEAMeanLatency)
	}
	return row, nil
}

// E2Row compares count accuracy and cost across SEA, AQP, and exact.
type E2Row struct {
	Training       int
	SampleFraction float64
	SEAMAPE        float64
	AQPMAPE        float64
	SEARowsPerQ    float64
	AQPRowsPerQ    float64
	ExactRowsPerQ  float64
	AQPSampleBytes int64
	PredictionRate float64
}

// E3Row reports data-less accuracy for AVG and regression-coefficient
// queries (C1, refs [28][29]).
type E3Row struct {
	AvgMAPE        float64
	SlopeMAE       float64
	CorrMAE        float64
	PredictionRate float64
}

// E3AvgRegression trains agents for AVG, CORR and REGSLOPE streams and
// measures prediction error on held-out queries.
func E3AvgRegression(nRows, training, eval int) (E3Row, error) {
	env, err := NewEnv(nRows, 8, 3)
	if err != nil {
		return E3Row{}, err
	}
	type spec struct {
		agg query.Agg
	}
	specs := []spec{{query.Avg}, {query.RegSlope}, {query.Corr}}
	var row E3Row
	var predTotal, evalTotal int
	for _, sp := range specs {
		cfg := core.DefaultConfig(2)
		cfg.TrainingQueries = training
		agent, err := core.NewAgent(exec.CohortOracle{Ex: env.Executor}, cfg)
		if err != nil {
			return E3Row{}, err
		}
		qs := stream(4, sp.agg)
		for i := 0; i < training; i++ {
			if _, err := agent.Answer(qs.Next()); err != nil {
				return E3Row{}, err
			}
		}
		var sumErr float64
		var n int
		for i := 0; i < eval; i++ {
			q := qs.Next()
			truth, _, err := env.Executor.ExactCohort(q)
			if err != nil {
				return E3Row{}, err
			}
			ans, err := agent.Answer(q)
			if err != nil {
				return E3Row{}, err
			}
			evalTotal++
			if !ans.Predicted {
				continue
			}
			predTotal++
			switch sp.agg {
			case query.Avg:
				if math.Abs(truth.Value) > 1 {
					sumErr += math.Abs(ans.Value-truth.Value) / math.Abs(truth.Value)
					n++
				}
			default:
				sumErr += math.Abs(ans.Value - truth.Value)
				n++
			}
		}
		mean := 0.0
		if n > 0 {
			mean = sumErr / float64(n)
		}
		switch sp.agg {
		case query.Avg:
			row.AvgMAPE = mean
		case query.RegSlope:
			row.SlopeMAE = mean
		case query.Corr:
			row.CorrMAE = mean
		}
	}
	if evalTotal > 0 {
		row.PredictionRate = float64(predTotal) / float64(evalTotal)
	}
	return row, nil
}

// E11Row reports model-maintenance behaviour under drift and updates.
type E11Row struct {
	PreDriftMAPE      float64
	PostDriftMAPE     float64 // right after the shift, before adaptation
	RecoveredMAPE     float64 // after the agent adapts
	PostUpdateExact   int     // forced exact answers right after update
	RecoveredPredRate float64
}

// E11Maintenance shifts the analysts' interest regions mid-stream and
// then mutates the base data, measuring accuracy before, during, and
// after the agent's adaptation (RT1.4).
func E11Maintenance(nRows int) (E11Row, error) {
	env, err := NewEnv(nRows, 8, 5)
	if err != nil {
		return E11Row{}, err
	}
	cfg := core.DefaultConfig(2)
	cfg.TrainingQueries = 300
	agent, err := core.NewAgent(exec.CohortOracle{Ex: env.Executor}, cfg)
	if err != nil {
		return E11Row{}, err
	}
	qs := stream(6, query.Count)
	for i := 0; i < 350; i++ {
		if _, err := agent.Answer(qs.Next()); err != nil {
			return E11Row{}, err
		}
	}
	measure := func(n int) (mape float64, predRate float64, err error) {
		var sum float64
		var cnt, pred int
		for i := 0; i < n; i++ {
			q := qs.Next()
			truth, _, err := env.Executor.ExactCohort(q)
			if err != nil {
				return 0, 0, err
			}
			ans, err := agent.Answer(q)
			if err != nil {
				return 0, 0, err
			}
			if ans.Predicted {
				pred++
				if truth.Value > 20 {
					sum += math.Abs(ans.Value-truth.Value) / truth.Value
					cnt++
				}
			}
		}
		if cnt > 0 {
			mape = sum / float64(cnt)
		}
		return mape, float64(pred) / float64(n), nil
	}
	var row E11Row
	if row.PreDriftMAPE, _, err = measure(100); err != nil {
		return row, err
	}
	// Interest drift: regions shift by 10 units.
	qs.Shift(10)
	if row.PostDriftMAPE, _, err = measure(50); err != nil {
		return row, err
	}
	// Let the agent adapt (fallbacks grow new quanta), then purge stale.
	for i := 0; i < 300; i++ {
		if _, err := agent.Answer(qs.Next()); err != nil {
			return row, err
		}
	}
	agent.PurgeStaleQuanta(400)
	if row.RecoveredMAPE, _, err = measure(100); err != nil {
		return row, err
	}
	// Base-data update: shift z, notify, count forced exact answers.
	if _, _, err := env.Table.UpdateWhere(
		func(storage.Row) bool { return true },
		func(r *storage.Row) { r.Vec[2] += 50 },
	); err != nil {
		return row, err
	}
	for i := 0; i < 20; i++ {
		ans, err := agent.Answer(qs.Next())
		if err != nil {
			return row, err
		}
		if !ans.Predicted {
			row.PostUpdateExact++
		}
	}
	if _, row.RecoveredPredRate, err = measure(100); err != nil {
		return row, err
	}
	return row, nil
}
