package experiments

import (
	"testing"
	"time"
)

// The experiment functions are exercised at small scale here; the root
// benchmarks run them at paper scale. These tests assert the *shape* of
// each result — who wins, in the right direction — which is the
// reproduction criterion DESIGN.md sets.

func TestE1Shape(t *testing.T) {
	row, err := E1DatalessVsBDAS(5_000, 8, 200, 80)
	if err != nil {
		t.Fatal(err)
	}
	if row.SpeedupX < 10 {
		t.Errorf("E1 speedup = %vx, want >= 10x", row.SpeedupX)
	}
	if row.PredictionRate <= 0 {
		t.Error("E1 prediction rate is zero")
	}
	if row.SEARowsRead >= row.BDASRowsRead {
		t.Error("E1: SEA read as many rows as BDAS")
	}
}

func TestE2Shape(t *testing.T) {
	row, err := E2CountAccuracy(6_000, 250, 80, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// At smoke scale a handful of full-scan fallbacks dominate SEA's
	// per-query rows, so the SEA-vs-AQP rows contrast is asserted at
	// paper scale by the benchmark; here assert the scale-independent
	// shape: both approximate engines beat exact, and SEA predicts.
	if row.SEARowsPerQ >= row.ExactRowsPerQ {
		t.Errorf("E2: SEA rows/q %v >= exact %v", row.SEARowsPerQ, row.ExactRowsPerQ)
	}
	if row.AQPRowsPerQ >= row.ExactRowsPerQ {
		t.Errorf("E2: AQP rows/q %v >= exact %v", row.AQPRowsPerQ, row.ExactRowsPerQ)
	}
	if row.PredictionRate < 0.5 {
		t.Errorf("E2: prediction rate %v too low", row.PredictionRate)
	}
	if row.SEAMAPE > 0.5 {
		t.Errorf("E2: SEA MAPE %v absurd", row.SEAMAPE)
	}
	if row.AQPSampleBytes <= 0 {
		t.Error("E2: sample bytes not reported")
	}
}

func TestE3Shape(t *testing.T) {
	row, err := E3AvgRegression(6_000, 250, 60)
	if err != nil {
		t.Fatal(err)
	}
	if row.AvgMAPE > 0.3 {
		t.Errorf("E3: AVG MAPE %v too high", row.AvgMAPE)
	}
	if row.SlopeMAE > 1 {
		t.Errorf("E3: slope MAE %v too high (true slope 2)", row.SlopeMAE)
	}
	if row.CorrMAE > 0.5 {
		t.Errorf("E3: corr MAE %v too high", row.CorrMAE)
	}
}

func TestE4Shape(t *testing.T) {
	row, err := E4RankJoin(5_000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if row.SpeedupX < 10 {
		t.Errorf("E4 speedup = %vx, want >= 10x", row.SpeedupX)
	}
	if row.ByteRatioX < 10 {
		t.Errorf("E4 byte ratio = %vx, want >= 10x", row.ByteRatioX)
	}
}

func TestE5Shape(t *testing.T) {
	row, err := E5KNN(5_000, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if row.SpeedupX < 10 {
		t.Errorf("E5 speedup = %vx, want >= 10x", row.SpeedupX)
	}
	if row.RowRatioX < 10 {
		t.Errorf("E5 row ratio = %vx", row.RowRatioX)
	}
}

func TestE6Shape(t *testing.T) {
	row, err := E6SubgraphCache(100, 60, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if row.SpeedupX <= 1 {
		t.Errorf("E6 speedup = %vx, want > 1x", row.SpeedupX)
	}
	if row.ExactHits == 0 {
		t.Error("E6: repeat-heavy stream produced no exact hits")
	}
}

func TestE7Shape(t *testing.T) {
	row, err := E7Imputation(2_000)
	if err != nil {
		t.Fatal(err)
	}
	if row.SpeedupX <= 1 {
		t.Errorf("E7 speedup = %vx", row.SpeedupX)
	}
	if row.CentroidRMSE > row.FullRMSE*2 {
		t.Errorf("E7: centroid RMSE %v ≫ full %v", row.CentroidRMSE, row.FullRMSE)
	}
}

func TestE8Shape(t *testing.T) {
	row, err := E8Optimizer(4_000)
	if err != nil {
		t.Fatal(err)
	}
	if row.Accuracy < 0.7 {
		t.Errorf("E8 accuracy = %v", row.Accuracy)
	}
	if row.LearnedRegret > row.AlwaysMRRegret {
		t.Errorf("E8: learned regret %v worse than always-mapreduce %v",
			row.LearnedRegret, row.AlwaysMRRegret)
	}
	if row.BestModelFamily == "" {
		t.Error("E8: no inference model selected")
	}
}

func TestE9Shape(t *testing.T) {
	row, err := E9Explanations(12_000)
	if err != nil {
		t.Fatal(err)
	}
	if row.ExplainedFrac == 0 {
		t.Fatal("E9: nothing explained")
	}
	if row.MeanR2 < 0.4 {
		t.Errorf("E9 fidelity R2 = %v", row.MeanR2)
	}
	if row.QueriesSaved == 0 {
		t.Error("E9: no queries saved")
	}
}

func TestE10Shape(t *testing.T) {
	row, err := E10Geo(6_000, 350, 150)
	if err != nil {
		t.Fatal(err)
	}
	if row.LocalRate < 0.3 {
		t.Errorf("E10 local rate = %v", row.LocalRate)
	}
	if row.WANSavingsX <= 1 {
		t.Errorf("E10 WAN savings = %vx", row.WANSavingsX)
	}
	if row.P50 >= row.AllToCore50 {
		t.Errorf("E10 p50 %v not below all-to-core %v", row.P50, row.AllToCore50)
	}
}

func TestE11Shape(t *testing.T) {
	row, err := E11Maintenance(6_000)
	if err != nil {
		t.Fatal(err)
	}
	if row.RecoveredMAPE > row.PreDriftMAPE*3+0.2 {
		t.Errorf("E11: recovered MAPE %v never returned near pre-drift %v",
			row.RecoveredMAPE, row.PreDriftMAPE)
	}
	if row.PostUpdateExact == 0 {
		t.Error("E11: data update forced no exact answers")
	}
	if row.RecoveredPredRate == 0 {
		t.Error("E11: agent never recovered prediction after update")
	}
}

func TestE12Shape(t *testing.T) {
	row, err := E12Polystore(2_000)
	if err != nil {
		t.Fatal(err)
	}
	if !(row.ShipModelBytes < row.ShipPairsBytes && row.ShipPairsBytes < row.ShipDataBytes) {
		t.Errorf("E12 byte ordering wrong: %+v", row)
	}
	if row.ShipModelErr > 0.3 {
		t.Errorf("E12 model error %v too high", row.ShipModelErr)
	}
}

func TestE14Shape(t *testing.T) {
	row, err := E14DistServe(4_000, 3, 4, 30, 80, true)
	if err != nil {
		t.Fatal(err)
	}
	if row.Queries == 0 || row.QPS <= 0 {
		t.Errorf("E14 served nothing: %+v", row)
	}
	if row.PredictionRate <= 0 {
		t.Error("E14: snapshot-warmed cluster never predicted")
	}
	if row.SnapshotBytes <= 0 {
		t.Error("E14: model shipping moved zero bytes")
	}
	if row.FailoverErrors != 0 {
		t.Errorf("E14: %d client-visible errors during failover, want 0", row.FailoverErrors)
	}
	if row.FailoverQueries == 0 || row.RecoveryTime <= 0 {
		t.Errorf("E14: failover phase did not run: %+v", row)
	}
	if row.P50 <= 0 || row.P99 < row.P50 {
		t.Errorf("E14: implausible latency percentiles: p50=%v p99=%v", row.P50, row.P99)
	}
}

func TestAblations(t *testing.T) {
	a1, err := A1Quanta(5_000, []float64{64, 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) != 2 {
		t.Fatalf("A1 rows = %d", len(a1))
	}
	a2, err := A2ModelFamily(5_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(a2) < 3 {
		t.Fatalf("A2 scored only %d families", len(a2))
	}
	for name, rmse := range a2 {
		if rmse < 0 {
			t.Errorf("A2 family %q has negative RMSE", name)
		}
	}
	a3, err := A3Fallback(5_000, []float64{0.05, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Looser threshold must predict at least as often.
	if a3[1].PredictionRate < a3[0].PredictionRate {
		t.Errorf("A3: rate at 0.5 (%v) < rate at 0.05 (%v)",
			a3[1].PredictionRate, a3[0].PredictionRate)
	}
	a4, err := A4RankJoinBatch(5_000, []int{16, 128})
	if err != nil {
		t.Fatal(err)
	}
	// Bigger batches read at least as many rows per query.
	if a4[1].Extra < a4[0].Extra {
		t.Errorf("A4: rows at batch 128 (%v) < batch 16 (%v)", a4[1].Extra, a4[0].Extra)
	}
	a5, err := A5GeoRouting(5_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(a5) != 2 {
		t.Fatalf("A5 policies = %d", len(a5))
	}
}

func TestE15Shape(t *testing.T) {
	row, err := E15LiveIngest(4_000, 3, 4, 40, 100, 6, 120, t.TempDir(), true)
	if err != nil {
		t.Fatal(err)
	}
	if row.ReadQueries == 0 || row.IngestBatches == 0 {
		t.Fatalf("E15 did nothing: %+v", row)
	}
	if row.AckedRows == 0 {
		t.Error("E15: no acked writes on a healthy cluster")
	}
	if row.LostAckedRows != 0 {
		t.Errorf("E15: lost %d acked rows after WAL replay + catch-up", row.LostAckedRows)
	}
	if !row.BitIdentical {
		t.Error("E15: restarted member is not bit-identical to the surviving holders")
	}
	if row.PredictionRate == 0 {
		t.Error("E15: cluster never predicted under ingest")
	}
	if row.ReadP99 <= 0 || row.ReadP99 > 5*time.Second {
		t.Errorf("E15: implausible read p99 %v", row.ReadP99)
	}
	if row.RecoveryTime <= 0 {
		t.Error("E15: recovery phase did not run")
	}
}
