package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/serve"
	"repro/internal/workload"
)

// E20Row is one row of the flight-recorder scenario: what does
// always-on metric history cost at serving speed, and does an induced
// overload leave behind a queryable latency ramp, a fired anomaly, and
// a complete diagnostic bundle — exactly one per cooldown window.
type E20Row struct {
	Rows  int `json:"rows"`
	Nodes int `json:"nodes"`

	// Overhead: served QPS of the same repeat-heavy stream with the
	// recorder off versus sampling at an aggressive 100ms period (10x
	// production rate — an upper bound on the 1s default).
	Workers     int     `json:"workers"`
	Series      int     `json:"series"`
	BaselineQPS float64 `json:"baseline_qps"`
	FlightQPS   float64 `json:"flight_qps"`
	OverheadPct float64 `json:"overhead_pct"`

	// Overload narrative (synthetic tick clock, one coordinator).
	WarmTicks     int     `json:"warm_ticks"`
	OverloadTicks int     `json:"overload_ticks"`
	Anomalies     int     `json:"anomalies"`
	AnomalyMetric string  `json:"anomaly_metric"`
	AnomalyZ      float64 `json:"anomaly_z"`
	// SLOState is the coordinator's worst class at the end of the
	// overload (2 = critical: the SLO trigger had independent cause).
	SLOState int `json:"slo_state"`
	// TriggersFirstWindow counts bundles captured inside the first
	// cooldown window (must be exactly 1) and Triggers the total after
	// the clock jumps past the cooldown (must be 2).
	TriggersFirstWindow int64 `json:"triggers_first_window"`
	Triggers            int64 `json:"triggers"`
	Suppressed          int64 `json:"suppressed"`
	// Bundle completeness: files in the first bundle, and whether every
	// expected artifact was present and non-empty.
	BundleFiles    int  `json:"bundle_files"`
	BundleComplete bool `json:"bundle_complete"`
	// History replay: hi- and lo-resolution point counts for
	// lat_p99_all over the incident, and the late/early latency ratio
	// in the hi-res window (the ramp; must be >> 1).
	HiPoints  int     `json:"hi_points"`
	LoPoints  int     `json:"lo_points"`
	RampRatio float64 `json:"ramp_ratio"`
	// ExemplarTraceID is a trace id carried by an overload-window
	// history point (satellite: history points link to exemplar traces).
	ExemplarTraceID string `json:"exemplar_trace_id"`
}

// E20FlightRecorder runs the flight-recorder scenario end to end.
//
// Overhead: the E17 fixture's fast-path stream is served with the
// recorder off versus sampling every registered series at 100ms, as
// twenty-four alternating back-to-back pairs; OverheadPct is the
// median paired QPS ratio (same estimator as E19 — the only one whose
// noise floor sits under the 2% CI gate). 100ms is 10x the production
// sampling rate and still clears the gate with margin; at 50x the
// tick's reads of hot histogram cache lines alone cost ~1.5% — see
// DESIGN.md for the measured scaling.
//
// Narrative: a 3-node cluster runs with manual-tick flight recorders
// (FlightSample < 0) and a tight SLO. A warm phase of repeated cached
// queries establishes ~70 one-second ticks of steady history; an
// overload phase of unique whole-space scatter queries then drives
// p99 up three orders of magnitude. The detector must fire, the SLO
// engine must reach critical, exactly one bundle must land inside the
// cooldown window (later firings suppressed, counted), and a tick-
// clock jump past the cooldown must admit exactly one more. The
// latency ramp must replay from /v1/history at both resolutions, with
// an exemplar trace id on overload points.
func E20FlightRecorder(nRows, training, workers, perWorker int) (E20Row, error) {
	if workers < 1 {
		workers = 1
	}
	if perWorker < 1 {
		perWorker = 1
	}
	row := E20Row{Rows: nRows, Nodes: 3, Workers: workers}

	// --- Overhead: recorder off vs 100ms sampling, paired median. ---
	fix, err := NewE17Fixture(nRows, training)
	if err != nil {
		return row, err
	}
	catalog := make([]query.Query, 64)
	cs := workload.NewQueryStream(workload.NewRNG(400), workload.DefaultRegions(2), query.Count)
	for i := range catalog {
		catalog[i] = cs.Next()
	}
	for _, q := range catalog { // prime cache/prediction tiers once
		_, _ = fix.Pool.Answer(q)
	}
	// One recorder, armed before any measurement: its ring and registry
	// allocations must not land inside a paired phase, where they would
	// bias GC timing against the instrumented half. The phases drive
	// sampling manually (the FlightSample<0 pattern) so the same
	// recorder can start and stop ticking once per flight phase — a
	// recorder's own background sampler cannot restart after Stop.
	fr := flight.New(flight.Config{HiSlots: 256, LoSlots: 64})
	fr.Instrument(fix.Pool.Recorder())
	row.Series = len(fr.Metrics())
	// Both phases run IDENTICAL scaffolding — ticker goroutine, channel
	// plumbing, attach/detach — so the recorder's sampling work is the
	// single treatment variable the pair ratio sees; a base phase's
	// ticker fires into a nil recorder.
	runPhase := func(rec *flight.Recorder) float64 {
		fix.Pool.EnableFlight(rec)
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			tk := time.NewTicker(100 * time.Millisecond)
			defer tk.Stop()
			for {
				select {
				case <-stop:
					return
				case now := <-tk.C:
					if rec != nil {
						rec.Tick(now)
					}
				}
			}
		}()
		qps := serveQPS(fix.Pool, workers, perWorker, catalog)
		close(stop)
		<-done
		fix.Pool.EnableFlight(nil)
		return qps
	}
	measureBase := func() float64 { return runPhase(nil) }
	measureFlight := func() float64 { return runPhase(fr) }
	// One discarded warm-up pair, then twenty-four alternating-order
	// pairs; see E19 for why the median paired ratio is the only
	// estimator under the 2% gate on a small box.
	runtime.GC()
	measureBase()
	measureFlight()
	var baseQ, ratios []float64
	for run := 0; run < 24; run++ {
		var qb, qf float64
		if run%2 == 0 {
			qb = measureBase()
			qf = measureFlight()
		} else {
			qf = measureFlight()
			qb = measureBase()
		}
		baseQ = append(baseQ, qb)
		ratios = append(ratios, qf/qb)
	}
	sort.Float64s(baseQ)
	sort.Float64s(ratios)
	med := (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
	row.BaselineQPS = (baseQ[len(baseQ)/2-1] + baseQ[len(baseQ)/2]) / 2
	row.FlightQPS = row.BaselineQPS * med
	row.OverheadPct = 100 * (1 - med)

	// --- Narrative: induced overload on a synthetic tick clock. ---
	spool, err := os.MkdirTemp("", "e20-spool-*")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(spool)
	ccfg := core.DefaultConfig(2)
	ccfg.TrainingQueries = 1 << 30 // exact-path cluster: every miss scatters
	lc, err := dist.StartLocal(row.Nodes, dist.Config{
		Agent:        ccfg,
		Replicas:     2,
		Flight:       true,
		FlightSample: -1, // manual ticks: the experiment owns the clock
		FlightSpool:  spool,
		Anomaly:      true,
		TraceSample:  1, // every query traced: exemplars on every window
		SLO: &metrics.SLOConfig{
			// Tight objective, loose budget: the cached warm phase sits
			// far under 100us bad-fraction-wise, the all-miss overload
			// burns at 1/0.2 = 5x — between WarnBurn and CritBurn only
			// one phase can sit.
			LatencyObjective: 100 * time.Microsecond,
			LatencyBudget:    0.2,
			FastWindow:       30 * time.Second,
			SlowWindow:       2 * time.Minute,
			WarnBurn:         2,
			CritBurn:         4,
			Interval:         time.Hour, // background ticker parked; Tick() is ours
		},
	}, workload.StandardRows(nRows/4, 7))
	if err != nil {
		return row, err
	}
	defer lc.Close()
	coord := lc.Node(lc.IDs()[0])
	base := lc.URL(lc.IDs()[0])

	post := func(req serve.QueryRequest) error {
		body, err := json.Marshal(req)
		if err != nil {
			return err
		}
		resp, err := http.Post(base+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("E20: query HTTP %d", resp.StatusCode)
		}
		return nil
	}
	warmQ := serve.QueryRequest{Agg: "count", Los: []float64{20, 20}, His: []float64{30, 30}}
	uniqueQ := func(i int) serve.QueryRequest {
		// Unique whole-space selections: cache misses that scatter
		// across every partition holder.
		return serve.QueryRequest{Agg: "count",
			Los: []float64{-1e9 + float64(i), -1e9}, His: []float64{1e9, 1e9}}
	}
	now := time.Now()
	tick := func() {
		now = now.Add(time.Second)
		coord.SLO().Tick(now)
		coord.Flight().Tick(now)
	}

	row.WarmTicks = 70 // fills the 60-tick detector window with steady state
	for t := 0; t < row.WarmTicks; t++ {
		for i := 0; i < 3; i++ {
			if err := post(warmQ); err != nil {
				return row, err
			}
		}
		tick()
	}
	if n := len(coord.Flight().Anomalies()); n != 0 {
		return row, fmt.Errorf("E20: warm phase fired %d anomalies", n)
	}

	row.OverloadTicks = 65
	seq := 0
	for t := 0; t < row.OverloadTicks; t++ {
		for i := 0; i < 4; i++ {
			if err := post(uniqueQ(seq)); err != nil {
				return row, err
			}
			seq++
		}
		tick()
	}
	coord.Flight().Flush()

	evs := coord.Flight().Anomalies()
	row.Anomalies = len(evs)
	if row.Anomalies == 0 {
		return row, fmt.Errorf("E20: overload fired no anomaly")
	}
	row.AnomalyMetric, row.AnomalyZ = evs[0].Metric, evs[0].Z
	row.SLOState = coord.SLO().WorstState()
	if row.SLOState != 2 {
		return row, fmt.Errorf("E20: overload did not reach SLO-critical (state %d)", row.SLOState)
	}
	st := coord.Flight().Status()
	row.TriggersFirstWindow = st.Triggers
	row.Suppressed = st.SuppressedTrigger
	if row.TriggersFirstWindow != 1 {
		return row, fmt.Errorf("E20: %d bundles inside one cooldown window, want 1", row.TriggersFirstWindow)
	}
	if row.Suppressed == 0 {
		return row, fmt.Errorf("E20: sustained overload suppressed no re-firings")
	}

	// Jump the tick clock past the cooldown: the still-critical SLO must
	// admit exactly one more capture.
	now = now.Add(6 * time.Minute)
	for t := 0; t < 3; t++ {
		for i := 0; i < 2; i++ {
			if err := post(uniqueQ(seq)); err != nil {
				return row, err
			}
			seq++
		}
		tick()
	}
	coord.Flight().Flush()
	row.Triggers = coord.Flight().Status().Triggers
	if row.Triggers != 2 {
		return row, fmt.Errorf("E20: %d bundles after cooldown expiry, want 2", row.Triggers)
	}

	// Bundle completeness, over the API the operator would use.
	bundles := coord.Flight().Bundles()
	if len(bundles) != 2 {
		return row, fmt.Errorf("E20: spool holds %d bundles, want 2", len(bundles))
	}
	row.BundleFiles = len(bundles[0].Files)
	row.BundleComplete = true
	for _, file := range []string{
		"meta.json", "goroutines.txt", "cpu.pprof", "heap.pprof",
		"traces.json", "status.json",
	} {
		p, err := coord.Flight().BundleFile(bundles[0].ID, file)
		if err != nil {
			return row, fmt.Errorf("E20: bundle missing %s: %v", file, err)
		}
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			return row, fmt.Errorf("E20: bundle file %s empty", file)
		}
	}
	resp, err := http.Get(base + "/v1/debug/bundles")
	if err != nil {
		return row, err
	}
	var listing struct {
		Bundles []flight.BundleInfo `json:"bundles"`
	}
	err = json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if err != nil || len(listing.Bundles) != 2 {
		return row, fmt.Errorf("E20: /v1/debug/bundles listed %d bundles (err=%v)", len(listing.Bundles), err)
	}

	// History replay at both resolutions.
	fetchHist := func(window string) (flight.History, error) {
		var h flight.History
		resp, err := http.Get(base + "/v1/history?metric=lat_p99_all&window=" + window)
		if err != nil {
			return h, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return h, fmt.Errorf("E20: history HTTP %d", resp.StatusCode)
		}
		return h, json.NewDecoder(resp.Body).Decode(&h)
	}
	hi, err := fetchHist("10m")
	if err != nil {
		return row, err
	}
	row.HiPoints = len(hi.Points)
	if row.HiPoints < row.WarmTicks+row.OverloadTicks {
		return row, fmt.Errorf("E20: hi-res history replays %d points, want >= %d",
			row.HiPoints, row.WarmTicks+row.OverloadTicks)
	}
	// Ramp: pre-incident baseline (the last warm ticks, after the
	// cumulative p99 has settled) versus the incident peak (the last
	// overload ticks). Manual ticks map 1:1 onto hi-res points.
	const span = 10
	var preIncident, peak float64
	for i := 0; i < span; i++ {
		preIncident += hi.Points[row.WarmTicks-1-i].V
		peak += hi.Points[row.HiPoints-1-i].V
	}
	if preIncident <= 0 {
		return row, fmt.Errorf("E20: warm-phase latency history is empty")
	}
	row.RampRatio = peak / preIncident
	if row.RampRatio < 3 {
		return row, fmt.Errorf("E20: latency ramp not visible in history (ratio %.2f)", row.RampRatio)
	}
	for i := row.HiPoints - row.HiPoints/3; i < row.HiPoints; i++ {
		if id := hi.Points[i].TraceID; id != "" {
			row.ExemplarTraceID = id
			break
		}
	}
	if row.ExemplarTraceID == "" {
		return row, fmt.Errorf("E20: no exemplar trace id on overload-window points")
	}

	lo, err := fetchHist("6h")
	if err != nil {
		return row, err
	}
	row.LoPoints = len(lo.Points)
	if row.LoPoints < 3 {
		return row, fmt.Errorf("E20: lo-res history replays %d points, want >= 3", row.LoPoints)
	}
	// The overload must be visible even at 30-tick resolution: the
	// newest window has to clear the quietest warm window by 2x. (The
	// first window is not a usable baseline — it folds in the cold-start
	// exact scatter, which inflates the cumulative p99 for a while.)
	quietest := lo.Points[0].V
	for _, p := range lo.Points[:row.LoPoints-1] {
		if p.V < quietest {
			quietest = p.V
		}
	}
	if lo.Points[row.LoPoints-1].V < 2*quietest {
		return row, fmt.Errorf("E20: lo-res history does not show the ramp: %+v", lo.Points)
	}
	return row, nil
}
