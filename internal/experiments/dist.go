package experiments

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/query"
	"repro/internal/workload"
)

// E14Row is one row of the distributed serving scenario: an in-process
// cluster of real HTTP/JSON nodes (internal/dist) serves W concurrent
// ring-aware clients. Latencies are wall-clock measurements of the real
// cluster, including node-to-node scatter-gather hops.
type E14Row struct {
	Nodes    int `json:"nodes"`
	Replicas int `json:"replicas"`
	Rows     int `json:"rows"`
	Workers  int `json:"workers"`
	Queries  int `json:"queries"`
	// QPS is aggregate client-side throughput.
	QPS float64       `json:"qps"`
	P50 time.Duration `json:"p50_ns"`
	P99 time.Duration `json:"p99_ns"`
	// PredictionRate is the fraction answered from node-local models.
	PredictionRate float64 `json:"pred_rate"`
	// CrossShardP50/P99 are latency percentiles of the exact
	// (scatter-gather) queries only — the cross-shard cost.
	CrossShardP50 time.Duration `json:"cross_shard_p50_ns"`
	CrossShardP99 time.Duration `json:"cross_shard_p99_ns"`
	// SnapshotBytes is the size of one shipped agent snapshot (model
	// shipping warm-up).
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// FailoverQueries/FailoverErrors describe the kill-one-node phase
	// (zero when the scenario runs without failover).
	FailoverQueries int `json:"failover_queries"`
	FailoverErrors  int `json:"failover_errors"`
	// RecoveryTime is how long reviving the killed node took, including
	// re-partitioning and snapshot warm-up.
	RecoveryTime time.Duration `json:"recovery_ns"`
}

// E14DistServe stands up an in-process `nodes`-way cluster over the
// standard clustered dataset, trains one node's agents, warms every
// other node by model-snapshot shipping, then drives `workers`
// concurrent clients of `perWorker` queries each. With failover it also
// kills one node mid-stream (expecting zero client-visible errors) and
// measures snapshot-shipped recovery.
func E14DistServe(nRows, nodes, workers, perWorker, training int, failover bool) (E14Row, error) {
	if nodes < 1 {
		nodes = 1
	}
	if workers < 1 {
		workers = 1
	}
	if perWorker < 1 {
		perWorker = 1
	}
	rows := workload.StandardRows(nRows, 1)
	agentCfg := core.DefaultConfig(2)
	agentCfg.TrainingQueries = training
	// Per-node capacity is fixed (4 workers, 2ms paced service time per
	// query), so aggregate throughput is bounded by nodes x workers /
	// service time: the scale-out contrast the scenario measures.
	// `workers` is the CLIENT concurrency and should exceed the
	// cluster's total worker slots to saturate it.
	lc, err := dist.StartLocal(nodes, dist.Config{
		Agent:          agentCfg,
		Replicas:       2,
		Workers:        4,
		ServiceDelay:   2 * time.Millisecond,
		TenantInflight: -1, // throughput scenario: no tenant shedding
	}, rows)
	if err != nil {
		return E14Row{}, err
	}
	defer lc.Close()

	// Train one node past its prefix (its exact answers scatter-gather
	// across the live cluster), then ship its models to every peer: the
	// warm-up path a production replica takes instead of re-training.
	ids := lc.IDs()
	trainer := lc.Node(ids[0])
	qs := stream(2, query.Count)
	for i := 0; i < training+training/2; i++ {
		if _, err := trainer.Answer("train", qs.Next()); err != nil {
			return E14Row{}, err
		}
	}
	row := E14Row{Nodes: nodes, Replicas: 2, Rows: nRows, Workers: workers}
	for _, id := range ids[1:] {
		shipped, err := lc.Node(id).WarmFrom(lc.URL(ids[0]))
		if err != nil {
			return E14Row{}, err
		}
		row.SnapshotBytes = shipped
	}

	// Measurement phase: W concurrent ring-aware clients with a mixed
	// workload — mostly dashboard traffic over the trained interest
	// regions (node-local predictions), plus exploratory queries spread
	// over the whole space that force the exact scatter-gather path.
	// The exploratory share is what scale-out helps: each node's exact
	// fallbacks serialise on its own agent, so sharding the query space
	// across more nodes runs more of them in parallel.
	client := lc.Client()
	type obs struct {
		lat       time.Duration
		predicted bool
	}
	all := make([][]obs, workers)
	var wg sync.WaitGroup
	errCount := make([]int, workers)
	start := time.Now()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			cs := workload.NewQueryStream(workload.NewRNG(100+int64(w)), workload.DefaultRegions(2), query.Count)
			explore := workload.NewQueryStream(workload.NewRNG(7000+int64(w)), exploreRegions(), query.Count)
			for i := 0; i < perWorker; i++ {
				q := cs.Next()
				if i%10 < 3 {
					q = explore.Next()
				}
				t0 := time.Now()
				ans, err := client.Answer(q)
				if err != nil {
					errCount[w]++
					continue
				}
				all[w] = append(all[w], obs{lat: time.Since(t0), predicted: ans.Predicted})
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var lats, cross []time.Duration
	var predicted int
	for _, ws := range all {
		for _, o := range ws {
			lats = append(lats, o.lat)
			if o.predicted {
				predicted++
			} else {
				cross = append(cross, o.lat)
			}
		}
	}
	row.Queries = len(lats)
	for _, e := range errCount {
		if e > 0 {
			return E14Row{}, fmt.Errorf("E14: %d measurement-phase errors", e)
		}
	}
	if elapsed > 0 {
		row.QPS = float64(row.Queries) / elapsed.Seconds()
	}
	if row.Queries > 0 {
		row.PredictionRate = float64(predicted) / float64(row.Queries)
	}
	row.P50, row.P99 = durPercentile(lats, 0.50), durPercentile(lats, 0.99)
	row.CrossShardP50, row.CrossShardP99 = durPercentile(cross, 0.50), durPercentile(cross, 0.99)

	if !failover || nodes < 3 {
		return row, nil
	}

	// Failover phase: kill one node mid-stream; every query must still
	// succeed via replica failover. Then revive it with snapshot warm-up.
	victim := ids[len(ids)-1]
	lc.Kill(victim)
	fs := workload.NewQueryStream(workload.NewRNG(999), workload.DefaultRegions(2), query.Count)
	row.FailoverQueries = perWorker
	for i := 0; i < row.FailoverQueries; i++ {
		if _, err := client.Answer(fs.Next()); err != nil {
			row.FailoverErrors++
		}
	}
	t0 := time.Now()
	if _, err := lc.Revive(victim, ids[0]); err != nil {
		return row, err
	}
	row.RecoveryTime = time.Since(t0)
	return row, nil
}

// exploreRegions is one wide interest region covering the whole data
// space: its queries land far from the trained quanta, so they take the
// exact cross-shard path.
func exploreRegions() []workload.InterestRegion {
	return []workload.InterestRegion{{
		Center: []float64{50, 50}, Spread: 26, Extent: 5, ExtentJitter: 0.5, Weight: 1,
	}}
}

// durPercentile returns the p-th percentile of unsorted durations.
func durPercentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
