package experiments

import (
	"testing"

	"repro/internal/query"
)

func TestE16Vectorized(t *testing.T) {
	for _, agg := range []query.Agg{query.Count, query.Sum, query.Corr} {
		row, err := E16Vectorized(30_000, 8, 0.1, agg, 2)
		if err != nil {
			t.Fatalf("%s: %v", agg, err)
		}
		if row.KernelSpeedupX <= 0 || row.ParSpeedupX <= 0 || row.PrunedSpeedupX <= 0 {
			t.Fatalf("%s: non-positive speedups: %+v", agg, row)
		}
		// A 10%-selectivity x-stripe over 8 range partitions intersects
		// at most 2 stripes: pruning must skip at least half the table.
		if row.PrunedFrac < 0.5 {
			t.Errorf("%s: pruned frac = %v, want >= 0.5 (pruned %d of %d)",
				agg, row.PrunedFrac, row.PartsPruned, row.Parts)
		}
		if row.VecMRowsPerSec <= 0 {
			t.Errorf("%s: vec throughput = %v", agg, row.VecMRowsPerSec)
		}
	}
}
