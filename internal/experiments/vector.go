package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/cluster"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/workload"
)

// E16Row is one row of the vectorized-execution microbenchmark: the
// wall-clock contrast between the retained row-at-a-time reference
// kernel (PartialEval + MergeEval over every partition) and the
// vectorized columnar engine, on the same data at the same selectivity.
// The hash layout isolates the batch-kernel speedup (uniform data means
// zone maps cannot prune); the range layout adds zone-map pruning on
// top, the way a sorted store would benefit.
type E16Row struct {
	Rows        int     `json:"rows"`
	Parts       int     `json:"parts"`
	Selectivity float64 `json:"selectivity"`
	Agg         string  `json:"agg"`

	// Hash layout: kernel speedup only.
	RowLatency     time.Duration `json:"row_ns"`
	VecLatency     time.Duration `json:"vec_ns"`
	ParLatency     time.Duration `json:"par_ns"`
	KernelSpeedupX float64       `json:"kernel_speedup_x"`
	ParSpeedupX    float64       `json:"par_speedup_x"`
	VecMRowsPerSec float64       `json:"vec_mrows_s"`

	// Range layout: zone-map pruning compounds with the kernels.
	RangeRowLatency time.Duration `json:"range_row_ns"`
	RangeVecLatency time.Duration `json:"range_vec_ns"`
	PrunedSpeedupX  float64       `json:"pruned_speedup_x"`
	PartsPruned     int           `json:"parts_pruned"`
	PrunedFrac      float64       `json:"pruned_frac"`
}

// e16Query builds the benchmark query: an x-stripe of the requested
// overall selectivity crossed with a 90% y-band (so both the early-exit
// row path and the multi-pass column path do real multi-dimensional
// work), carrying the given aggregate over the correlated z column.
func e16Query(selectivity float64, agg query.Agg) query.Query {
	sx := selectivity / 0.9
	if sx > 1 {
		sx = 1
	}
	lo := 50 - 50*sx
	hi := 50 + 50*sx
	q := query.Query{
		Select:    query.Selection{Los: []float64{lo, 5}, His: []float64{hi, 95}},
		Aggregate: agg,
	}
	switch agg {
	case query.Sum, query.Avg, query.Var:
		q.Col = 2
	case query.Corr, query.RegSlope:
		q.Col, q.Col2 = 0, 2
	}
	return q
}

// e16Table loads uniform x,y plus correlated z into a fresh table.
func e16Table(nRows, parts int, ranged bool) (*storage.Table, error) {
	cl := cluster.New(8, cluster.DefaultConfig())
	var opts []storage.Option
	if ranged {
		bounds := make([]float64, parts-1)
		for i := range bounds {
			bounds[i] = 100 * float64(i+1) / float64(parts)
		}
		opts = append(opts, storage.WithRangePartitioning(bounds))
	}
	tbl, err := storage.NewTable(cl, "e16", []string{"x", "y", "z"}, parts, opts...)
	if err != nil {
		return nil, err
	}
	rng := workload.NewRNG(97)
	rows := workload.Uniform(rng, nRows, 3, []float64{0, 0, 0}, []float64{100, 100, 1}, 1)
	workload.CorrelatedColumns(rng, rows, 0, 2, 2, 5, 1)
	if err := tbl.Load(rows); err != nil {
		return nil, err
	}
	return tbl, nil
}

// rowPathEval is the retained row-at-a-time reference: scan every
// partition, PartialEval each, MergeEval the states.
func rowPathEval(q query.Query, tbl *storage.Table) (query.Result, error) {
	partials := make([][]float64, tbl.Partitions())
	for p := 0; p < tbl.Partitions(); p++ {
		rows, _, err := tbl.ScanPartition(p)
		if err != nil {
			return query.Result{}, err
		}
		partials[p] = query.PartialEval(q, rows)
	}
	return query.MergeEval(q, partials), nil
}

// vecPathEval is the single-core vectorized path: zone-map pruning,
// then the batch kernels over each surviving partition's column views,
// merged in partition order.
func vecPathEval(q query.Query, tbl *storage.Table) (query.Result, int, error) {
	parts, pruned := query.Prune(tbl, q.Select)
	partials := make([][]float64, 0, len(parts))
	for _, p := range parts {
		view, _, err := tbl.ScanColumns(p)
		if err != nil {
			return query.Result{}, 0, err
		}
		partials = append(partials, query.PartialEvalView(q, view))
	}
	return query.MergeEval(q, partials), pruned, nil
}

// timeBest runs fn iters times and returns the fastest run (the usual
// microbenchmark guard against scheduler noise).
func timeBest(iters int, fn func() error) (time.Duration, error) {
	best := time.Duration(math.MaxInt64)
	for i := 0; i < iters; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best, nil
}

// e16Agree enforces the engine's correctness contract inside the
// benchmark: supports equal, values within reassociation tolerance.
func e16Agree(what string, got, want query.Result) error {
	if got.Support != want.Support {
		return fmt.Errorf("E16 %s: support %d != %d", what, got.Support, want.Support)
	}
	if d := math.Abs(got.Value - want.Value); d > 1e-9*math.Max(1, math.Abs(want.Value)) {
		return fmt.Errorf("E16 %s: value %v != %v", what, got.Value, want.Value)
	}
	return nil
}

// E16Vectorized measures the vectorized columnar engine against the
// row-at-a-time reference at one (rows, partitions, selectivity,
// aggregate) grid point. It returns an error if the two paths ever
// disagree, so a kernel bug fails the benchmark rather than skewing it.
func E16Vectorized(nRows, parts int, selectivity float64, agg query.Agg, iters int) (E16Row, error) {
	if iters < 1 {
		iters = 1
	}
	q := e16Query(selectivity, agg)
	row := E16Row{Rows: nRows, Parts: parts, Selectivity: selectivity, Agg: agg.String()}

	// Hash layout: uniform data defeats pruning, isolating the kernels.
	tbl, err := e16Table(nRows, parts, false)
	if err != nil {
		return row, err
	}
	var rowRes, vecRes, parRes query.Result
	row.RowLatency, err = timeBest(iters, func() error {
		rowRes, err = rowPathEval(q, tbl)
		return err
	})
	if err != nil {
		return row, err
	}
	row.VecLatency, err = timeBest(iters, func() error {
		vecRes, _, err = vecPathEval(q, tbl)
		return err
	})
	if err != nil {
		return row, err
	}
	row.ParLatency, err = timeBest(iters, func() error {
		var stats query.TableScanStats
		parRes, stats, err = query.EvalTable(q, tbl)
		_ = stats
		return err
	})
	if err != nil {
		return row, err
	}
	if err := e16Agree("vec", vecRes, rowRes); err != nil {
		return row, err
	}
	if err := e16Agree("parallel", parRes, rowRes); err != nil {
		return row, err
	}
	row.KernelSpeedupX = ratioNs(row.RowLatency, row.VecLatency)
	row.ParSpeedupX = ratioNs(row.RowLatency, row.ParLatency)
	if row.VecLatency > 0 {
		row.VecMRowsPerSec = float64(nRows) / row.VecLatency.Seconds() / 1e6
	}

	// Range layout: zone maps prune the stripes the selection misses.
	rtbl, err := e16Table(nRows, parts, true)
	if err != nil {
		return row, err
	}
	var rRowRes, rVecRes query.Result
	row.RangeRowLatency, err = timeBest(iters, func() error {
		rRowRes, err = rowPathEval(q, rtbl)
		return err
	})
	if err != nil {
		return row, err
	}
	row.RangeVecLatency, err = timeBest(iters, func() error {
		rVecRes, row.PartsPruned, err = vecPathEval(q, rtbl)
		return err
	})
	if err != nil {
		return row, err
	}
	if err := e16Agree("range", rVecRes, rRowRes); err != nil {
		return row, err
	}
	if err := e16Agree("layouts", rRowRes, rowRes); err != nil {
		return row, err
	}
	row.PrunedSpeedupX = ratioNs(row.RangeRowLatency, row.RangeVecLatency)
	row.PrunedFrac = float64(row.PartsPruned) / float64(parts)
	return row, nil
}

func ratioNs(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}
