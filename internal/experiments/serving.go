package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/query"
	"repro/internal/serve"
	"repro/internal/workload"
)

// E13Row is one row of the concurrent serving-throughput scenario: N
// client workers hammer one shared trained agent through the serving
// layer (internal/serve) with M queries each. Latencies here are real
// wall-clock measurements of the serving process (not virtual cluster
// time): the scenario measures the serving layer itself.
type E13Row struct {
	Rows           int           `json:"rows"`
	Workers        int           `json:"workers"`
	Queries        int           `json:"queries"`
	QPS            float64       `json:"qps"`
	P50            time.Duration `json:"p50_ns"`
	P99            time.Duration `json:"p99_ns"`
	PredictionRate float64       `json:"pred_rate"`
	FallbackRate   float64       `json:"fallback_rate"`
	Deduped        int64         `json:"deduped"`
	Rejected       int64         `json:"rejected"`
	Errors         int           `json:"errors"`
}

// E13ConcurrentServe trains one agent on `training` count queries, then
// drives `workers` concurrent clients of `perWorker` queries each
// through a serve.Scheduler sized to the same worker count. It reports
// the serving layer's own instrumentation: QPS, p50/p99 wall latency,
// prediction/fallback rates and single-flight dedup hits.
func E13ConcurrentServe(nRows, workers, perWorker, training int) (E13Row, error) {
	if workers < 1 {
		workers = 1
	}
	if perWorker < 1 {
		perWorker = 1
	}
	env, err := NewEnv(nRows, 16, 1)
	if err != nil {
		return E13Row{}, err
	}
	cfg := core.DefaultConfig(2)
	cfg.TrainingQueries = training
	agent, err := core.NewAgent(exec.MapReduceOracle{Ex: env.Executor}, cfg)
	if err != nil {
		return E13Row{}, err
	}
	qs := stream(2, query.Count)
	for i := 0; i < training+training/2; i++ {
		if _, err := agent.Answer(qs.Next()); err != nil {
			return E13Row{}, err
		}
	}

	pool, err := serve.NewPool([]*core.Agent{agent}, nil)
	if err != nil {
		return E13Row{}, err
	}
	sched := serve.NewScheduler(pool, serve.SchedulerConfig{
		Workers:        workers,
		QueueDepth:     4 * workers,
		TenantInflight: -1, // throughput scenario: no tenant shedding
	})
	defer sched.Close()

	var wg sync.WaitGroup
	errs := make([]int, workers)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			// Per-client streams over the shared interest regions: heavy
			// overlap between clients, like real dashboard traffic.
			cs := workload.NewQueryStream(workload.NewRNG(100+int64(w)), workload.DefaultRegions(2), query.Count)
			for i := 0; i < perWorker; i++ {
				if _, err := sched.Answer(fmt.Sprintf("client-%d", w), cs.Next()); err != nil {
					errs[w]++
				}
			}
		}(w)
	}
	wg.Wait()

	snap := pool.Recorder().Snapshot()
	row := E13Row{
		Rows:         nRows,
		Workers:      workers,
		Queries:      int(snap.Queries),
		QPS:          snap.QPS,
		P50:          snap.P50,
		P99:          snap.P99,
		FallbackRate: snap.FallbackRate,
		Deduped:      snap.Deduped,
		Rejected:     snap.Rejected,
	}
	if snap.Queries > 0 {
		row.PredictionRate = float64(snap.Predicted) / float64(snap.Queries)
	}
	for _, e := range errs {
		row.Errors += e
	}
	return row, nil
}
