package experiments

import (
	"fmt"
	"math"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/query"
	"repro/internal/serve"
	"repro/internal/storage"
	"repro/internal/workload"
)

// E22Row is one row of the elastic-membership scenario: what does the
// elastic plane (membership epochs, rebalance bookkeeping, armed
// anti-entropy) cost on the query path, and does a cluster that grows,
// shrinks and suffers silent replica corruption under sustained mixed
// load keep every acked row, leak zero client errors, and heal the
// corrupted replica back to a bit-identical copy.
type E22Row struct {
	Rows    int `json:"rows"`
	Nodes   int `json:"nodes"`
	Workers int `json:"workers"`

	// Overhead: served QPS of the same scatter stream with the elastic
	// plane disarmed (AntiEntropy=0: ticks are a single atomic load)
	// versus armed at an aggressive cadence — the ≤2% CI gate.
	BaselineQPS float64 `json:"baseline_qps"`
	ElasticQPS  float64 `json:"elastic_qps"`
	OverheadPct float64 `json:"overhead_pct"`

	// Narrative: 3-node cluster grows to 5 and retires one founding
	// member, all under sustained queries + ingest.
	Queries      int     `json:"queries"`
	ClientErrors int     `json:"client_errors"`
	QueryP99MS   float64 `json:"query_p99_ms"`
	Joined       int     `json:"joined"`
	Left         int     `json:"left"`
	FinalEpoch   int64   `json:"final_epoch"`
	MovedParts   int64   `json:"moved_parts"`
	AckedRows    int     `json:"acked_rows"`
	// LossRows is max(0, expected-final): rows the cluster acked and
	// then lost across the joins, the leave and the repair. Must be 0.
	LossRows int `json:"loss_rows"`

	// Anti-entropy: one replica deliberately corrupted in memory (same
	// sequence, different bytes), healed by the background loop.
	Repairs  int64 `json:"repairs"`
	RepairMS int64 `json:"repair_ms"`
	// RepairFinding reports that /v1/debug/cluster surfaced the repair.
	RepairFinding bool `json:"repair_finding"`
}

// E22ElasticMembership runs the elastic-membership scenario end to end.
//
// Overhead: two identical 3-node clusters (resilience extras stripped
// the same way on both sides so the comparison isolates the elastic
// plane) serve the same repeat scatter stream — one with AntiEntropy
// disarmed, one with the background repair loop armed at an aggressive
// 35ms cadence. The comparison is paired per query (e21DriveAB):
// ambient noise hits both sides equally and cancels in the pooled
// mean-latency ratio, which IS the closed-loop QPS ratio the ≤2% CI
// gate consumes.
//
// Narrative: a 3-node cluster (replicas=2, durable WALs, anti-entropy
// armed at 150ms) serves background whole-space COUNT queries and a
// sustained ingest stream that keeps a ledger of every acked row. Two
// members join live — each join stages moving partitions, catches them
// up through the WAL and cuts the cluster over to a new epoch — and
// one founding member gracefully leaves, all while the load runs. The
// run demands zero client-visible errors, an advanced membership
// epoch, live partitions on both joiners, and ZERO acked-row loss
// (final count = base rows + acked ledger). Then one partition's
// replica copy is deliberately corrupted in memory at an unchanged
// sequence — invisible to the replication protocol — and the
// background anti-entropy loop must detect the digest divergence,
// repair the replica wholesale from its primary, converge it to a
// bit-identical copy, and surface the repair in /v1/debug/cluster.
func E22ElasticMembership(nRows, workers, perWorker int) (E22Row, error) {
	if workers < 1 {
		workers = 1
	}
	if perWorker < 1 {
		perWorker = 1
	}
	row := E22Row{Rows: nRows, Nodes: 3, Workers: workers}
	rows := workload.StandardRows(nRows/4, 7)
	hc := e21Client()

	// --- Overhead: anti-entropy disarmed vs armed, same cluster shape. ---
	ccfg := core.DefaultConfig(2)
	ccfg.TrainingQueries = 1 << 30 // exact path: every query scatters
	mk := func(antiEntropy time.Duration) (*dist.LocalCluster, error) {
		return dist.StartLocal(row.Nodes, dist.Config{
			Agent:       ccfg,
			Replicas:    2,
			AnswerCache: -1, // every repeat re-scatters: the RPC plane is the workload
			// Strip the adaptive extras on BOTH sides so the ratio
			// isolates the elastic plane, not retry/hedge jitter.
			RetryBudget:        -1,
			HedgeQuantile:      -1,
			BreakerFailureRate: -1,
			AntiEntropy:        antiEntropy,
		}, rows)
	}
	base, err := mk(0)
	if err != nil {
		return row, err
	}
	defer base.Close()
	elastic, err := mk(35 * time.Millisecond)
	if err != nil {
		return row, err
	}
	defer elastic.Close()

	catalog := make([]serve.QueryRequest, 64)
	cs := workload.NewQueryStream(workload.NewRNG(400), workload.DefaultRegions(2), query.Count)
	for i := range catalog {
		q := cs.Next()
		catalog[i] = serve.QueryRequest{Agg: "count", Los: q.Select.Los, His: q.Select.His}
	}
	stream := make([]serve.QueryRequest, workers*perWorker)
	for i := range stream {
		stream[i] = catalog[i%len(catalog)]
	}
	memberURLs := func(lc *dist.LocalCluster) []string {
		urls := make([]string, 0, len(lc.IDs()))
		for _, id := range lc.IDs() {
			urls = append(urls, lc.URL(id))
		}
		return urls
	}
	gcPct := debug.SetGCPercent(-1)
	defer func() { debug.SetGCPercent(gcPct) }()
	baseURLs, elasticURLs := memberURLs(base), memberURLs(elastic)
	runtime.GC()
	warm := stream[:len(stream)/4+1]
	if _, _, err := e21DriveAB(hc, baseURLs, elasticURLs, warm, workers); err != nil {
		return row, err
	}
	var latBase, latElastic []time.Duration
	const blocks = 4
	for b := 0; b < blocks; b++ {
		runtime.GC()
		lo, hi := b*len(stream)/blocks, (b+1)*len(stream)/blocks
		lb, le, err := e21DriveAB(hc, baseURLs, elasticURLs, stream[lo:hi], workers)
		if err != nil {
			return row, fmt.Errorf("E22: overhead query failed: %v", err)
		}
		latBase = append(latBase, lb...)
		latElastic = append(latElastic, le...)
	}
	pooled := make([]time.Duration, 0, len(latBase)+len(latElastic))
	pooled = append(append(pooled, latBase...), latElastic...)
	sort.Slice(pooled, func(i, j int) bool { return pooled[i] < pooled[j] })
	capLat := pooled[len(pooled)*99/100]
	sum := func(lats []time.Duration) float64 {
		var s time.Duration
		for _, l := range lats {
			if l > capLat {
				l = capLat
			}
			s += l
		}
		return s.Seconds()
	}
	sb, se := sum(latBase), sum(latElastic)
	row.BaselineQPS = float64(workers) * float64(len(latBase)) / sb
	row.ElasticQPS = float64(workers) * float64(len(latElastic)) / se
	row.OverheadPct = 100 * (1 - sb/se)
	base.Close()
	elastic.Close()
	debug.SetGCPercent(gcPct)

	// --- Narrative: grow, shrink and heal under sustained load. ---
	return row, e22Narrative(&row, rows, hc)
}

// e22Narrative drives the churn story; split out so the overhead
// section's deferred cluster teardown does not pin both load clusters
// in memory for its duration.
func e22Narrative(row *E22Row, rows []storage.Row, hc *http.Client) error {
	ccfg := core.DefaultConfig(2)
	ccfg.TrainingQueries = 1 << 30
	ccfg.DriftRowBudget = 500
	dir, err := os.MkdirTemp("", "e22-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	lc, err := dist.StartLocal(row.Nodes, dist.Config{
		Agent:       ccfg,
		Replicas:    2,
		WriteQuorum: 2,
		Partitions:  8,
		DataDir:     dir,
		AntiEntropy: 150 * time.Millisecond,
	}, rows)
	if err != nil {
		return err
	}
	defer lc.Close()
	client := lc.Client()

	countAll := func() (float64, error) {
		a, err := client.Answer(query.Query{
			Select:    query.Selection{Los: []float64{-1e9, -1e9}, His: []float64{1e9, 1e9}},
			Aggregate: query.Count,
		})
		if err != nil {
			return 0, err
		}
		return a.Value, nil
	}
	before, err := countAll()
	if err != nil {
		return err
	}
	if before != float64(len(rows)) {
		return fmt.Errorf("E22: baseline count %.0f, want %d", before, len(rows))
	}

	// Background load: queriers on the members that stay alive for the
	// whole run, plus an ingester keeping a ledger of acked rows.
	var (
		wg        sync.WaitGroup
		stop      atomic.Bool
		acked     atomic.Int64
		queries   atomic.Int64
		clientErr atomic.Int64
		latMu     sync.Mutex
		lats      []e21Result
	)
	survivors := []string{lc.URL("n1"), lc.URL("n2")}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				r := e21Post(hc, survivors[(w+i)%len(survivors)], serve.QueryRequest{
					Agg: "count",
					Los: []float64{-1e9 + float64(i), -1e9}, His: []float64{1e9, 1e9},
				})
				queries.Add(1)
				if r.err != nil {
					clientErr.Add(1)
				}
				latMu.Lock()
				lats = append(lats, r)
				latMu.Unlock()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		key := uint64(50_000_000)
		for !stop.Load() {
			const batch = 25
			r, err := client.Ingest(mkRows(batch, key))
			key += batch
			if err != nil {
				clientErr.Add(1)
				continue
			}
			for _, pr := range r.Parts {
				if pr.Acked {
					acked.Add(int64(pr.Rows))
				}
			}
		}
	}()

	// Grow to 5, then retire a founding member — all under load.
	if err := lc.Join("n3"); err != nil {
		return fmt.Errorf("E22: join n3: %w", err)
	}
	row.Joined++
	if err := lc.Join("n4"); err != nil {
		return fmt.Errorf("E22: join n4: %w", err)
	}
	row.Joined++
	if err := lc.Leave("n0"); err != nil {
		return fmt.Errorf("E22: leave n0: %w", err)
	}
	row.Left++
	time.Sleep(200 * time.Millisecond) // churned cluster serves a little longer
	stop.Store(true)
	wg.Wait()
	row.Queries = int(queries.Load())
	row.ClientErrors = int(clientErr.Load())
	latMu.Lock()
	row.QueryP99MS = e21P99(lats)
	latMu.Unlock()
	if row.ClientErrors != 0 {
		return fmt.Errorf("E22: churn leaked %d client-visible errors", row.ClientErrors)
	}

	// Post-churn invariants: epoch advanced once per membership change,
	// both joiners hold live partitions, and no acked row is missing.
	for _, id := range lc.IDs() {
		st := lc.Node(id).NodeStatus()
		if st.Ring.Epoch > row.FinalEpoch {
			row.FinalEpoch = st.Ring.Epoch
		}
		row.MovedParts += st.Rebalance.MovedParts
	}
	if row.FinalEpoch < 4 {
		return fmt.Errorf("E22: final epoch %d after 3 membership changes, want >= 4", row.FinalEpoch)
	}
	for _, id := range []string{"n3", "n4"} {
		if st := lc.Node(id).NodeStatus(); len(st.Partitions) == 0 {
			return fmt.Errorf("E22: joiner %s holds no partitions", id)
		}
	}
	row.AckedRows = int(acked.Load())
	expected := float64(len(rows)) + float64(row.AckedRows)
	final, err := countAll()
	if err != nil {
		return err
	}
	if final < expected {
		row.LossRows = int(expected - final)
		return fmt.Errorf("E22: %d acked rows lost across the churn (count %.0f, want >= %.0f)",
			row.LossRows, final, expected)
	}

	// --- Anti-entropy: silent corruption, background heal. ---
	any := lc.Node(lc.IDs()[0])
	part, replicaID := -1, ""
	for p := 0; p < any.Partitions(); p++ {
		owners := any.PartitionOwners(p)
		if len(owners) >= 2 && lc.Node(owners[0]) != nil && lc.Node(owners[1]) != nil {
			part, replicaID = p, owners[1]
			break
		}
	}
	if part < 0 {
		return fmt.Errorf("E22: no replicated partition to corrupt")
	}
	replica := lc.Node(replicaID)
	primary := lc.Node(any.PartitionOwners(part)[0])
	repairsBefore := replica.AntiEntropyRepairs()
	if !replica.CorruptPartition(part) {
		return fmt.Errorf("E22: could not corrupt partition %d on %s", part, replicaID)
	}
	healStart := time.Now()
	healed := false
	for time.Since(healStart) < 10*time.Second {
		if replica.AntiEntropyRepairs() > repairsBefore {
			healed = true
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	row.RepairMS = time.Since(healStart).Milliseconds()
	row.Repairs = replica.AntiEntropyRepairs()
	if !healed {
		return fmt.Errorf("E22: anti-entropy never repaired the corrupted replica")
	}
	probe := query.Query{
		Select:    query.Selection{Los: []float64{-1e9, -1e9}, His: []float64{1e9, 1e9}},
		Aggregate: query.Var, Col: 2,
	}
	pState, _ := primary.PartialState(part, probe)
	rState, _ := replica.PartialState(part, probe)
	if len(pState) != len(rState) {
		return fmt.Errorf("E22: repaired replica partial width differs")
	}
	for i := range pState {
		if pState[i] != rState[i] {
			return fmt.Errorf("E22: repaired replica not bit-identical at %d: %v != %v",
				i, rState[i], pState[i])
		}
	}
	// The repair must be visible to operators: /v1/debug/cluster carries
	// an antientropy_repair finding (warn — the loop did its job).
	rep := any.ClusterReport()
	for _, f := range rep.Findings {
		if f.Kind == "antientropy_repair" && f.Node == replicaID {
			row.RepairFinding = true
		}
	}
	if !row.RepairFinding {
		return fmt.Errorf("E22: no antientropy_repair finding in the cluster report: %+v", rep.Findings)
	}
	if !rep.Healthy {
		return fmt.Errorf("E22: healed cluster reports unhealthy: %+v", rep.Findings)
	}
	if math.IsNaN(row.QueryP99MS) {
		row.QueryP99MS = 0
	}
	return nil
}

// mkRows builds uniquely-keyed rows for the E22 ingest stream.
func mkRows(n int, firstKey uint64) []storage.Row {
	out := make([]storage.Row, n)
	for i := range out {
		k := firstKey + uint64(i)
		out[i] = storage.Row{Key: k, Vec: []float64{float64(k%100) + 0.5, 50, 1}}
	}
	return out
}
