//go:build race

package experiments

// raceEnabled reports whether the race detector is active. Under -race
// sync.Pool intentionally bypasses its caches, so the hot path's
// zero-allocation contract cannot hold and its assertions are skipped.
const raceEnabled = true
