package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/query"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/workload"
)

// E18Row is one row of the observability scenario: what query-path
// tracing costs at serving speed, whether a cross-shard trace stitches
// into one multi-node span tree, and whether the continuous accuracy
// audit measures the model error the ground truth actually shows.
type E18Row struct {
	Rows int `json:"rows"`

	// Tracing overhead: served QPS of the same repeat-heavy stream with
	// the tracer attached-but-idle (sampling off) versus sampling 1-in-
	// SampleEvery queries. OverheadPct is the relative QPS drop.
	Workers     int     `json:"workers"`
	SampleEvery int     `json:"sample_every"`
	BaselineQPS float64 `json:"baseline_qps"`
	TracedQPS   float64 `json:"traced_qps"`
	OverheadPct float64 `json:"overhead_pct"`
	// SampledTraces is how many traces the sampler actually recorded
	// during the traced phase (proves sampling was live, not disabled).
	SampledTraces int64 `json:"sampled_traces"`

	// Cross-shard stitching: one forced ?trace=1 exact query against a
	// 3-node cluster must come back as a single span tree spanning
	// multiple nodes, with at most one partial_rpc per remote holder.
	ClusterNodes     int `json:"cluster_nodes"`
	TraceSpans       int `json:"trace_spans"`
	TraceNodes       int `json:"trace_nodes"`
	PartialRPCSpans  int `json:"partial_rpc_spans"`
	MaxRemoteHolders int `json:"max_remote_holders"`

	// Accuracy audit: the shadow audit's measured MAPE on model-served
	// answers versus the ground-truth MAPE computed directly over the
	// same catalog. The audit is only trustworthy if they agree.
	AuditSamples int64   `json:"audit_samples"`
	AuditMAPE    float64 `json:"audit_mape"`
	TruthMAPE    float64 `json:"truth_mape"`
	// SlowLogged is the slow-query ring population after serving with a
	// deliberately tiny threshold (proves the slow log triggers).
	SlowLogged int `json:"slow_logged"`
}

// serveQPS replays perWorker queries from catalog per worker through a
// fresh scheduler over pool and returns the served throughput.
func serveQPS(pool *serve.Pool, workers, perWorker int, catalog []query.Query) float64 {
	sched := serve.NewScheduler(pool, serve.SchedulerConfig{
		Workers:        workers,
		QueueDepth:     4 * workers,
		TenantInflight: -1,
	})
	defer sched.Close()
	base := pool.Recorder().Snapshot().Queries
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			rng := workload.NewRNG(900 + int64(w))
			for i := 0; i < perWorker; i++ {
				_, _ = sched.Answer(fmt.Sprintf("client-%d", w), catalog[rng.Intn(len(catalog))])
			}
		}(w)
	}
	wg.Wait()
	phase := time.Since(start)
	served := pool.Recorder().Snapshot().Queries - base
	if phase <= 0 {
		return 0
	}
	return float64(served) / phase.Seconds()
}

// E18TraceOverhead runs the observability scenario end to end.
//
// Overhead: the E17 fixture's repeat-heavy stream is served twice —
// tracer attached with sampling off, then sampling 1-in-sampleEvery —
// taking the best of two runs per mode so scheduler warm-up noise does
// not masquerade as tracing cost.
//
// Audit: with the shadow audit forced to probe EVERY model-served
// answer, each catalog query is served once; the audit's measured MAPE
// is then compared against the ground-truth MAPE computed over the
// same predicted queries with the agent's exact probe.
//
// Cluster: a forced ?trace=1 exact query against a 3-node LocalCluster
// must return one stitched span tree covering multiple nodes with at
// most one partial_rpc span per remote holder.
func E18TraceOverhead(nRows, training, workers, perWorker, sampleEvery int) (E18Row, error) {
	if workers < 1 {
		workers = 1
	}
	if perWorker < 1 {
		perWorker = 1
	}
	if sampleEvery < 1 {
		sampleEvery = 100
	}
	row := E18Row{Rows: nRows, Workers: workers, SampleEvery: sampleEvery}

	fix, err := NewE17Fixture(nRows, training)
	if err != nil {
		return row, err
	}
	tracer := trace.NewTracer("local", 0)
	fix.Pool.EnableTracing(tracer)
	catalog := make([]query.Query, 64)
	cs := workload.NewQueryStream(workload.NewRNG(300), workload.DefaultRegions(2), query.Count)
	for i := range catalog {
		catalog[i] = cs.Next()
	}
	// Prime the cache/prediction tiers once so both measured modes see
	// the same steady state.
	for _, q := range catalog {
		_, _ = fix.Pool.Answer(q)
	}
	for run := 0; run < 2; run++ {
		tracer.SetSampleRate(0)
		if qps := serveQPS(fix.Pool, workers, perWorker, catalog); qps > row.BaselineQPS {
			row.BaselineQPS = qps
		}
		tracer.SetSampleEvery(int64(sampleEvery))
		if qps := serveQPS(fix.Pool, workers, perWorker, catalog); qps > row.TracedQPS {
			row.TracedQPS = qps
		}
	}
	tracer.SetSampleRate(0)
	sampled, _ := tracer.Counters()
	row.SampledTraces = sampled
	if sampled == 0 {
		return row, fmt.Errorf("E18: sampler recorded no traces at 1-in-%d", sampleEvery)
	}
	if row.BaselineQPS > 0 {
		row.OverheadPct = 100 * (row.BaselineQPS - row.TracedQPS) / row.BaselineQPS
	}

	// Continuous accuracy audit, shadow half: probe every model answer.
	// The answer cache is flushed first — a cache hit repeats an already
	// audited answer, so only model-tier answers are worth probing.
	fix.Pool.FlushCache()
	// Probe slots cover the whole catalog so no probe is shed — the
	// MAPE comparison below needs the full sample, not a biased subset.
	fix.Pool.EnableShadowAudit(1, len(catalog))
	tracer.SetSlowThreshold(time.Nanosecond) // everything is "slow": prove the log triggers
	var preds []struct {
		q    query.Query
		pred float64
	}
	for _, q := range catalog {
		if ans, ok := fix.Agent.TryPredict(q); ok {
			preds = append(preds, struct {
				q    query.Query
				pred float64
			}{q, ans.Value})
		}
		if _, err := fix.Pool.Answer(q); err != nil {
			return row, err
		}
	}
	fix.Pool.DrainAudits()
	tracer.SetSlowThreshold(0)
	row.SlowLogged = len(tracer.SlowLog())
	rec := fix.Pool.Recorder()
	row.AuditMAPE, row.AuditSamples = rec.Audit().MAPE("shadow")
	if len(preds) == 0 {
		return row, fmt.Errorf("E18: trained agent predicted none of the catalog")
	}
	var errSum float64
	for _, pq := range preds {
		truth, err := fix.Agent.ExactProbe(pq.q)
		if err != nil {
			return row, err
		}
		errSum += core.NormError(pq.q.Aggregate, pq.pred, truth)
	}
	row.TruthMAPE = errSum / float64(len(preds))

	// Cluster half: a forced trace on an exact cross-shard query.
	ccfg := core.DefaultConfig(2)
	ccfg.TrainingQueries = 1 << 30 // never finishes training: every query is exact
	lc, err := dist.StartLocal(3, dist.Config{Agent: ccfg, Replicas: 2},
		workload.StandardRows(nRows/2, 11))
	if err != nil {
		return row, err
	}
	defer lc.Close()
	row.ClusterNodes = 3
	row.MaxRemoteHolders = row.ClusterNodes - 1
	entry := lc.IDs()[0]
	q := stream(5, query.Count).Next()
	wq := serve.QueryRequest{Agg: "count"}
	if q.Select.IsRadius() {
		wq.Center, wq.Radius = q.Select.Center, q.Select.Radius
	} else {
		wq.Los, wq.His = q.Select.Los, q.Select.His
	}
	body, err := json.Marshal(wq)
	if err != nil {
		return row, err
	}
	resp, err := http.Post(lc.URL(entry)+"/v1/query?trace=1", "application/json", bytes.NewReader(body))
	if err != nil {
		return row, err
	}
	defer resp.Body.Close()
	var qr dist.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return row, err
	}
	if resp.StatusCode != http.StatusOK {
		return row, fmt.Errorf("E18: traced query: HTTP %d", resp.StatusCode)
	}
	if qr.Trace == nil || qr.TraceID == "" {
		return row, fmt.Errorf("E18: ?trace=1 returned no span tree")
	}
	row.TraceSpans = qr.Trace.SpanCount()
	row.TraceNodes = len(qr.Trace.Nodes())
	row.PartialRPCSpans = qr.Trace.CountNamed("partial_rpc")
	if row.TraceNodes < 2 {
		return row, fmt.Errorf("E18: trace covers %d node(s), want a stitched multi-node tree", row.TraceNodes)
	}
	if row.PartialRPCSpans > row.MaxRemoteHolders {
		return row, fmt.Errorf("E18: %d partial_rpc spans exceed %d remote holders",
			row.PartialRPCSpans, row.MaxRemoteHolders)
	}
	// The ring must serve the same tree back by id.
	dresp, err := http.Get(lc.URL(qr.Node) + "/v1/debug/trace/" + qr.TraceID)
	if err != nil {
		return row, err
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		return row, fmt.Errorf("E18: debug trace lookup on %s: HTTP %d", qr.Node, dresp.StatusCode)
	}
	return row, nil
}
