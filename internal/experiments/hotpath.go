package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/exec"
	"repro/internal/query"
	"repro/internal/serve"
	"repro/internal/workload"
)

// E17Row is one row of the serving hot-path scenario: the per-tier cost
// of answering a query once the system is warm. The single-node half
// measures the zero-allocation tiers in isolation (steady-state
// TryPredict through the indexed quantiser, and a versioned answer
// cache hit) plus the served throughput of a mixed repeat-heavy stream;
// the cluster half counts the batched scatter-gather's partial RPCs per
// exact query — the message-minimal fan-out shape.
type E17Row struct {
	Rows int `json:"rows"`

	// Zero-allocation tiers, measured with runtime.MemStats over a
	// single-goroutine loop: allocs/op must sit at 0 in steady state
	// (BenchmarkE17HotPath re-proves this with -benchmem precision).
	TryPredictNsOp     float64 `json:"try_predict_ns_op"`
	TryPredictAllocsOp float64 `json:"try_predict_allocs_op"`
	CacheHitNsOp       float64 `json:"cache_hit_ns_op"`
	CacheHitAllocsOp   float64 `json:"cache_hit_allocs_op"`

	// Served throughput of workers concurrent clients replaying
	// repeat-heavy dashboard streams through the scheduler.
	Workers      int           `json:"workers"`
	Queries      int           `json:"queries"`
	QPS          float64       `json:"qps"`
	P50          time.Duration `json:"p50_ns"`
	P99          time.Duration `json:"p99_ns"`
	CacheHitRate float64       `json:"cache_hit_rate"`
	PredRate     float64       `json:"pred_rate"`

	// Cluster-mode exact fallbacks: batched partial RPCs per query.
	ClusterNodes   int     `json:"cluster_nodes"`
	ClusterQueries int     `json:"cluster_queries"`
	RPCsPerQuery   float64 `json:"rpcs_per_query"`
	// MaxRemoteHolders is the most distinct remote holders any one
	// query could have needed; RPCsPerQuery must not exceed it.
	MaxRemoteHolders int `json:"max_remote_holders"`
}

// E17Fixture is a trained single-node serving stack pinned to a query
// that takes the prediction fast path — the shared setup of the E17
// experiment and BenchmarkE17HotPath's allocation proofs.
type E17Fixture struct {
	Agent *core.Agent
	Pool  *serve.Pool
	Query query.Query
}

// NewE17Fixture trains one agent on the standard clustered environment
// and returns it pooled behind an enabled answer cache, together with a
// query the trained agent answers on the TryPredict fast path.
func NewE17Fixture(nRows, training int) (*E17Fixture, error) {
	env, err := NewEnv(nRows, 16, 1)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(2)
	cfg.TrainingQueries = training
	agent, err := core.NewAgent(exec.MapReduceOracle{Ex: env.Executor}, cfg)
	if err != nil {
		return nil, err
	}
	qs := stream(2, query.Count)
	for i := 0; i < training+training/2; i++ {
		if _, err := agent.Answer(qs.Next()); err != nil {
			return nil, err
		}
	}
	pool, err := serve.NewPool([]*core.Agent{agent}, nil)
	if err != nil {
		return nil, err
	}
	pool.EnableCache(4096)
	// Pin a query the warm agent predicts: the steady-state population
	// of the fast path.
	for i := 0; i < 2000; i++ {
		q := qs.Next()
		if _, ok := agent.TryPredict(q); ok {
			return &E17Fixture{Agent: agent, Pool: pool, Query: q}, nil
		}
	}
	return nil, fmt.Errorf("E17: trained agent never predicted a stream query")
}

// measureLoop times fn over iters single-goroutine iterations and
// returns (ns/op, allocs/op) from the runtime's allocation counters.
func measureLoop(iters int, fn func()) (float64, float64) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return float64(elapsed.Nanoseconds()) / float64(iters),
		float64(m1.Mallocs-m0.Mallocs) / float64(iters)
}

// E17HotPath measures the overhauled serving hot path. Single node:
// steady-state TryPredict and cache-hit ns/op + allocs/op, then a
// workers-wide repeat-heavy stream through the scheduler (QPS, p50/p99,
// cache-hit rate). Cluster: clusterQueries exact scatter-gathers on a
// 3-node cluster, reporting batched partial RPCs per query.
func E17HotPath(nRows, training, workers, perWorker, clusterQueries int) (E17Row, error) {
	if workers < 1 {
		workers = 1
	}
	if perWorker < 1 {
		perWorker = 1
	}
	row := E17Row{Rows: nRows, Workers: workers}

	fix, err := NewE17Fixture(nRows, training)
	if err != nil {
		return row, err
	}
	const iters = 20_000
	row.TryPredictNsOp, row.TryPredictAllocsOp = measureLoop(iters, func() {
		fix.Agent.TryPredict(fix.Query)
	})
	if _, err := fix.Pool.Answer(fix.Query); err != nil { // prime the cache
		return row, err
	}
	row.CacheHitNsOp, row.CacheHitAllocsOp = measureLoop(iters, func() {
		_, _ = fix.Pool.Answer(fix.Query)
	})

	// Concurrent serving: dashboard traffic — every client samples the
	// same finite catalog of queries (dashboards re-ask the same
	// questions verbatim), so the cache tier absorbs the repeats and
	// the prediction tier serves the rest.
	catalog := make([]query.Query, 64)
	cs := workload.NewQueryStream(workload.NewRNG(300), workload.DefaultRegions(2), query.Count)
	for i := range catalog {
		catalog[i] = cs.Next()
	}
	sched := serve.NewScheduler(fix.Pool, serve.SchedulerConfig{
		Workers:        workers,
		QueueDepth:     4 * workers,
		TenantInflight: -1,
	})
	defer sched.Close()
	base := fix.Pool.Recorder().Snapshot()
	phaseStart := time.Now()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			rng := workload.NewRNG(700 + int64(w))
			for i := 0; i < perWorker; i++ {
				q := catalog[rng.Intn(len(catalog))]
				_, _ = sched.Answer(fmt.Sprintf("client-%d", w), q)
			}
		}(w)
	}
	wg.Wait()
	phase := time.Since(phaseStart)
	snap := fix.Pool.Recorder().Snapshot()
	served := snap.Queries - base.Queries
	row.Queries = int(served)
	// QPS over the workload phase alone: the recorder's lifetime rate
	// would be dominated by the single-goroutine measurement loops.
	if phase > 0 {
		row.QPS = float64(served) / phase.Seconds()
	}
	row.P50, row.P99 = snap.P50, snap.P99
	if served > 0 {
		row.CacheHitRate = float64(snap.CacheHits-base.CacheHits) / float64(served)
		row.PredRate = float64(snap.Predicted-base.Predicted) / float64(served)
	}

	// Cluster half: every query takes the exact path (training never
	// ends), so each one scatter-gathers its missing partitions with
	// one batched RPC per remote holder.
	ccfg := core.DefaultConfig(2)
	ccfg.TrainingQueries = 1 << 30
	lc, err := dist.StartLocal(3, dist.Config{Agent: ccfg, Replicas: 2}, workload.StandardRows(nRows/2, 11))
	if err != nil {
		return row, err
	}
	defer lc.Close()
	row.ClusterNodes = 3
	entry := lc.Node(lc.IDs()[0])
	row.MaxRemoteHolders = row.ClusterNodes - 1
	cqs := stream(5, query.Count)
	sentBefore := entry.PartialRPCsSent()
	for i := 0; i < clusterQueries; i++ {
		if _, _, err := entry.ScatterGather(cqs.Next()); err != nil {
			return row, err
		}
	}
	row.ClusterQueries = clusterQueries
	if clusterQueries > 0 {
		row.RPCsPerQuery = float64(entry.PartialRPCsSent()-sentBefore) / float64(clusterQueries)
	}
	if row.RPCsPerQuery > float64(row.MaxRemoteHolders) {
		return row, fmt.Errorf("E17: %.2f partial RPCs per query exceeds %d remote holders",
			row.RPCsPerQuery, row.MaxRemoteHolders)
	}
	return row, nil
}
