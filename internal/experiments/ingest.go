package experiments

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/query"
	"repro/internal/workload"
)

// E15Row is one row of the live-data-plane scenario: a WAL-durable
// cluster serves a mixed read/ingest workload while the base data
// drifts, then (optionally) loses a node mid-ingest and recovers it by
// WAL replay + log-tail catch-up + model-snapshot warm-up.
type E15Row struct {
	Nodes    int `json:"nodes"`
	Replicas int `json:"replicas"`
	Quorum   int `json:"write_quorum"`
	Rows     int `json:"rows"`

	// Ingest accounting (the client-side ledger of the write stream).
	IngestBatches int `json:"ingest_batches"`
	AckedRows     int `json:"acked_rows"`
	FailedRows    int `json:"failed_rows"`

	// Read-side health under sustained ingest.
	ReadQueries    int           `json:"read_queries"`
	ReadQPS        float64       `json:"read_qps"`
	ReadP50        time.Duration `json:"read_p50_ns"`
	ReadP99        time.Duration `json:"read_p99_ns"`
	PredictionRate float64       `json:"pred_rate"`
	MaxStaleRows   int           `json:"max_stale_rows"`

	// Model accuracy vs the live exact answer (predicted answers only):
	// before ingest, right after the ingest burst, and after the
	// drift-triggered refresh.
	PreMAPE    float64 `json:"pre_mape"`
	DuringMAPE float64 `json:"during_mape"`
	PostMAPE   float64 `json:"post_mape"`

	// Maintenance accounting summed across members.
	DriftInvalidations int64 `json:"drift_invalidations"`
	Rebuilds           int64 `json:"rebuilds"`

	// Kill-and-recover phase (zero values when the scenario runs
	// without failover).
	LostAckedRows int64         `json:"lost_acked_rows"`
	BitIdentical  bool          `json:"bit_identical"`
	RecoveryTime  time.Duration `json:"recovery_ns"`
}

// e15Ledger tracks client-visible acked rows per partition.
type e15Ledger struct {
	mu    sync.Mutex
	acked map[int]int64
}

func (l *e15Ledger) record(resp dist.IngestResponse) (acked, failed int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, pr := range resp.Parts {
		if pr.Acked {
			l.acked[pr.Part] += int64(pr.Rows)
		}
	}
	return resp.AckedRows, resp.FailedRows
}

// E15LiveIngest runs the live data plane scenario on an in-process
// cluster rooted at dataDir (each member keeps its own WAL tree under
// it): train, measure read accuracy, drive `readers` concurrent readers
// against a sustained ingest stream of `batches` x `batchRows` rows
// drawn from the same clustered distribution (so subspace counts grow
// and stale models are measurably wrong), then measure accuracy again
// after the drift-triggered refresh. With kill=true it also kills one
// member mid-ingest and proves recovery: no acked write lost, and the
// restarted member's partitions bit-identical to the never-killed
// holders'.
func E15LiveIngest(nRows, nodes, readers, perReader, training, batches, batchRows int, dataDir string, kill bool) (E15Row, error) {
	if nodes < 2 {
		nodes = 2
	}
	rows := workload.StandardRows(nRows, 1)
	agentCfg := core.DefaultConfig(2)
	agentCfg.TrainingQueries = training
	agentCfg.DriftRowBudget = 150
	cfg := dist.Config{
		Agent:          agentCfg,
		Replicas:       2,
		WriteQuorum:    2, // every acked batch is on every owner
		DataDir:        dataDir,
		Workers:        4,
		TenantInflight: -1,
		RequantCheck:   250 * time.Millisecond,
	}
	lc, err := dist.StartLocal(nodes, cfg, rows)
	if err != nil {
		return E15Row{}, err
	}
	defer lc.Close()
	row := E15Row{Nodes: nodes, Replicas: 2, Quorum: 2, Rows: nRows}

	// Train one member, ship its models to the rest.
	ids := lc.IDs()
	trainer := lc.Node(ids[0])
	qs := stream(2, query.Count)
	for i := 0; i < training+training/2; i++ {
		if _, err := trainer.Answer("train", qs.Next()); err != nil {
			return row, err
		}
	}
	for _, id := range ids[1:] {
		if _, err := lc.Node(id).WarmFrom(lc.URL(ids[0])); err != nil {
			return row, err
		}
	}
	client := lc.Client()

	// probeMAPE measures predicted answers against the live exact
	// answer over a fixed probe set.
	probes := workload.NewQueryStream(workload.NewRNG(31), workload.DefaultRegions(2), query.Count).Batch(60)
	probeMAPE := func() (float64, error) {
		var sum float64
		var n int
		for _, q := range probes {
			ans, err := client.Answer(q)
			if err != nil {
				return 0, err
			}
			if !ans.Predicted {
				continue
			}
			truth, _, err := trainer.ScatterGather(q)
			if err != nil {
				return 0, err
			}
			if truth.Value > 0 {
				sum += math.Abs(ans.Value-truth.Value) / truth.Value
				n++
			}
		}
		if n == 0 {
			return math.NaN(), nil
		}
		return sum / float64(n), nil
	}
	if row.PreMAPE, err = probeMAPE(); err != nil {
		return row, err
	}

	// Live phase: concurrent readers against a sustained ingest stream.
	// Ingested rows follow the same clustered distribution, so every
	// interest region's COUNT grows — a stale model is measurably wrong.
	ledger := &e15Ledger{acked: make(map[int]int64)}
	ingestBatch := func(b int) error {
		fresh := workload.StandardRows(batchRows, 1000+int64(b))
		for i := range fresh {
			fresh[i].Key = uint64(10_000_000 + b*batchRows + i)
		}
		resp, err := client.Ingest(fresh)
		if err != nil {
			return err
		}
		acked, failed := ledger.record(resp)
		row.AckedRows += acked
		row.FailedRows += failed
		row.IngestBatches++
		return nil
	}

	type obs struct {
		lat       time.Duration
		predicted bool
		stale     int
	}
	all := make([][]obs, readers)
	var wg sync.WaitGroup
	readErrs := make([]error, readers)
	start := time.Now()
	wg.Add(readers)
	for w := 0; w < readers; w++ {
		go func(w int) {
			defer wg.Done()
			cs := workload.NewQueryStream(workload.NewRNG(400+int64(w)), workload.DefaultRegions(2), query.Count)
			for i := 0; i < perReader; i++ {
				t0 := time.Now()
				ans, err := client.Answer(cs.Next())
				if err != nil {
					readErrs[w] = err
					return
				}
				all[w] = append(all[w], obs{lat: time.Since(t0), predicted: ans.Predicted, stale: ans.FreshRows})
			}
		}(w)
	}
	for b := 0; b < batches; b++ {
		if err := ingestBatch(b); err != nil {
			wg.Wait()
			return row, err
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range readErrs {
		if err != nil {
			return row, fmt.Errorf("E15: reader failed during ingest: %w", err)
		}
	}

	var lats []time.Duration
	var predicted int
	for _, ws := range all {
		for _, o := range ws {
			lats = append(lats, o.lat)
			if o.predicted {
				predicted++
			}
			if o.stale > row.MaxStaleRows {
				row.MaxStaleRows = o.stale
			}
		}
	}
	row.ReadQueries = len(lats)
	if elapsed > 0 {
		row.ReadQPS = float64(row.ReadQueries) / elapsed.Seconds()
	}
	if row.ReadQueries > 0 {
		row.PredictionRate = float64(predicted) / float64(row.ReadQueries)
	}
	row.ReadP50, row.ReadP99 = durPercentile(lats, 0.50), durPercentile(lats, 0.99)

	if row.DuringMAPE, err = probeMAPE(); err != nil {
		return row, err
	}
	// Refresh: exact fallbacks on probation quanta plus the background
	// maintainers fold the new data mass into the models.
	refresh := workload.NewQueryStream(workload.NewRNG(61), workload.DefaultRegions(2), query.Count)
	for i := 0; i < 300; i++ {
		if _, err := client.Answer(refresh.Next()); err != nil {
			return row, err
		}
	}
	if row.PostMAPE, err = probeMAPE(); err != nil {
		return row, err
	}

	if kill && nodes >= 3 {
		victim := ids[len(ids)-1]
		// Mid-ingest kill: batches flow, the victim dies, batches keep
		// flowing (partitions with a dead owner miss quorum and are
		// reported unacked — the ledger only counts acked rows).
		for b := batches; b < batches+2; b++ {
			if err := ingestBatch(b); err != nil {
				return row, err
			}
		}
		lc.Kill(victim)
		for b := batches + 2; b < batches+5; b++ {
			if err := ingestBatch(b); err != nil {
				return row, err
			}
		}
		t0 := time.Now()
		if _, err := lc.Revive(victim, ids[0]); err != nil {
			return row, err
		}
		row.RecoveryTime = time.Since(t0)

		lost, identical, err := e15VerifyRecovery(lc, ledger, nRows)
		if err != nil {
			return row, err
		}
		row.LostAckedRows = lost
		row.BitIdentical = identical
	}

	// Maintenance accounting across members.
	for _, id := range ids {
		if node := lc.Node(id); node != nil {
			s := node.Status().Serving
			row.DriftInvalidations += s.DriftInvalidations
			row.Rebuilds += s.Rebuilds
		}
	}
	return row, nil
}

// e15VerifyRecovery checks the durability contract after the kill and
// revive: every holder of every partition has at least the base rows
// plus the acked ingest rows (no acked write lost), and all holders'
// partial aggregate states are bit-identical (the restarted member
// equals the never-killed replicas).
func e15VerifyRecovery(lc *dist.LocalCluster, ledger *e15Ledger, nRows int) (lost int64, identical bool, err error) {
	any := lc.Node(lc.IDs()[0])
	nParts := any.Partitions()
	countProbe := query.Query{
		Select:    query.Selection{Los: []float64{-1e9, -1e9}, His: []float64{1e9, 1e9}},
		Aggregate: query.Count,
	}
	varProbe := query.Query{
		Select:    query.Selection{Los: []float64{-1e9, -1e9}, His: []float64{1e9, 1e9}},
		Aggregate: query.Var, Col: 2,
	}
	identical = true
	ledger.mu.Lock()
	defer ledger.mu.Unlock()
	for p := 0; p < nParts; p++ {
		// Base rows are distributed round-robin by load order.
		expected := int64(nRows / nParts)
		if p < nRows%nParts {
			expected++
		}
		expected += ledger.acked[p]

		var ref []float64
		minCount := int64(math.MaxInt64)
		holders := 0
		for _, id := range any.PartitionOwners(p) {
			node := lc.Node(id)
			if node == nil {
				continue
			}
			holders++
			cnt, ok := node.PartialState(p, countProbe)
			if !ok {
				return 0, false, fmt.Errorf("E15: holder %s lost partition %d", id, p)
			}
			n := int64(query.MergeEval(countProbe, [][]float64{cnt}).Value)
			if n < minCount {
				minCount = n
			}
			st, _ := node.PartialState(p, varProbe)
			if ref == nil {
				ref = st
				continue
			}
			if len(st) != len(ref) {
				identical = false
				continue
			}
			for i := range st {
				if st[i] != ref[i] {
					identical = false
				}
			}
		}
		if holders > 0 && minCount < expected {
			lost += expected - minCount
		}
	}
	return lost, identical, nil
}
