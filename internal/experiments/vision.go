package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/explain"
	"repro/internal/geo"
	"repro/internal/polystore"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/workload"
)

// E9Row reports explanation quality (C7).
type E9Row struct {
	ExplainedFrac float64
	MeanR2        float64
	MeanMAPE      float64
	QueriesSaved  int
	QueriesAsked  int
}

// E9Explanations trains an agent, derives explanations for held-out
// queries, and scores their fidelity and queries-saved.
func E9Explanations(nRows int) (E9Row, error) {
	env, err := NewEnv(nRows, 8, 71)
	if err != nil {
		return E9Row{}, err
	}
	oracle := exec.CohortOracle{Ex: env.Executor}
	cfg := core.DefaultConfig(2)
	cfg.TrainingQueries = 300
	agent, err := core.NewAgent(oracle, cfg)
	if err != nil {
		return E9Row{}, err
	}
	qs := stream(72, query.Count)
	for i := 0; i < 400; i++ {
		if _, err := agent.Answer(qs.Next()); err != nil {
			return E9Row{}, err
		}
	}
	eng := explain.New(agent)
	var row E9Row
	var r2Sum, mapeSum float64
	var explained int
	const attempts = 20
	for i := 0; i < attempts; i++ {
		q := qs.Next()
		ex, err := eng.Explain(q)
		if err != nil {
			continue
		}
		explained++
		r2, mape, err := explain.Fidelity(ex, oracle, 8)
		if err != nil {
			return E9Row{}, err
		}
		r2Sum += r2
		mapeSum += mape
		saved, err := explain.QueriesSaved(ex, oracle, 10, 0.3)
		if err != nil {
			return E9Row{}, err
		}
		row.QueriesSaved += saved
		row.QueriesAsked += 10
	}
	row.ExplainedFrac = float64(explained) / float64(attempts)
	if explained > 0 {
		row.MeanR2 = r2Sum / float64(explained)
		row.MeanMAPE = mapeSum / float64(explained)
	}
	return row, nil
}

// E10Row reports the geo-distributed contrast (C8, Fig. 3).
type E10Row struct {
	AllToCoreWAN   int64
	SEAWAN         int64
	WANSavingsX    float64
	LocalRate      float64
	P50            time.Duration
	P95            time.Duration
	AllToCore50    time.Duration
	ModelShipBytes int64
}

// E10Geo deploys edges over a WAN, trains at the core, ships models, and
// compares WAN traffic and latency against the all-queries-to-core
// baseline.
func E10Geo(nRows, trainQueries, evalQueries int) (E10Row, error) {
	env, err := NewEnv(nRows, 8, 81)
	if err != nil {
		return E10Row{}, err
	}
	cfg := geo.DefaultConfig(2)
	d, err := geo.Deploy(env.Executor, cfg)
	if err != nil {
		return E10Row{}, err
	}
	qs := stream(82, query.Count)
	if _, err := d.TrainAtCore(qs.Batch(trainQueries)); err != nil {
		return E10Row{}, err
	}
	shipped, err := d.ShipModels([]query.Agg{query.Count}, 0, 0)
	if err != nil {
		return E10Row{}, err
	}
	wanAfterShip := d.WANBytes()

	queries := qs.Batch(evalQueries)
	lats, _, err := d.Latencies(queries)
	if err != nil {
		return E10Row{}, err
	}
	seaWAN := d.WANBytes() - wanAfterShip

	// Baseline: every evaluation query crosses the WAN to the core
	// (96 B per round trip, as the deployment charges).
	allToCore := int64(evalQueries) * 96
	row := E10Row{
		AllToCoreWAN:   allToCore,
		SEAWAN:         seaWAN,
		LocalRate:      d.LocalRate(),
		P50:            geo.Percentile(lats, 0.5),
		P95:            geo.Percentile(lats, 0.95),
		AllToCore50:    cfg.WAN.WANLatency * 2,
		ModelShipBytes: shipped,
	}
	if seaWAN > 0 {
		row.WANSavingsX = float64(allToCore) / float64(seaWAN)
	} else {
		// No WAN traffic at all during evaluation: savings are bounded
		// only by the baseline's absolute traffic.
		row.WANSavingsX = float64(allToCore)
	}
	return row, nil
}

// E12Row reports the polystore strategy contrast (C10).
type E12Row struct {
	ShipDataBytes  int64
	ShipPairsBytes int64
	ShipModelBytes int64
	ShipPairsErr   float64
	ShipModelErr   float64
}

// E12Polystore compares the three cross-system strategies on a
// trend-structured entity attribute.
func E12Polystore(nEntities int) (E12Row, error) {
	cl := clusterOf(8)
	tbl, err := storage.NewTable(cl, "entities", []string{"x"}, 8)
	if err != nil {
		return E12Row{}, err
	}
	rng := workload.NewRNG(91)
	ys := make(map[uint64]float64, nEntities)
	var rows []storage.Row
	for i := 0; i < nEntities; i++ {
		key := uint64(i)
		trend := float64(i) * 0.01
		x := trend + rng.NormFloat64()*0.2
		ys[key] = 2*trend + 1 + rng.NormFloat64()*0.2
		rows = append(rows, storage.Row{Key: key, Vec: []float64{x}})
	}
	if err := tbl.Load(rows); err != nil {
		return E12Row{}, err
	}
	a := polystore.New(cl, &polystore.TableSystem{Table: tbl, XCol: 0}, polystore.NewDocSystem(ys))
	lo, hi := uint64(0), uint64(nEntities/4)
	vals, bytes, err := a.CompareStrategies(lo, hi, 6)
	if err != nil {
		return E12Row{}, err
	}
	exact := vals["ship-data"]
	return E12Row{
		ShipDataBytes:  bytes["ship-data"],
		ShipPairsBytes: bytes["ship-pairs"],
		ShipModelBytes: bytes["ship-model"],
		ShipPairsErr:   polystore.AbsError(vals["ship-pairs"], exact),
		ShipModelErr:   polystore.AbsError(vals["ship-model"], exact),
	}, nil
}

// AblationRow is a generic (parameter, metric...) row for A1-A5.
type AblationRow struct {
	Param          float64
	MAPE           float64
	PredictionRate float64
	Extra          float64
}

// A1Quanta sweeps quantisation granularity (spawn distance) and reports
// accuracy and prediction rate (DESIGN.md ablation A1).
func A1Quanta(nRows int, spawnDistances []float64) ([]AblationRow, error) {
	env, err := NewEnv(nRows, 8, 101)
	if err != nil {
		return nil, err
	}
	var out []AblationRow
	for _, sd := range spawnDistances {
		cfg := core.DefaultConfig(2)
		cfg.TrainingQueries = 300
		cfg.SpawnDistance = sd
		agent, err := core.NewAgent(exec.CohortOracle{Ex: env.Executor}, cfg)
		if err != nil {
			return nil, err
		}
		qs := stream(102, query.Count)
		for i := 0; i < 300; i++ {
			if _, err := agent.Answer(qs.Next()); err != nil {
				return nil, err
			}
		}
		mape, rate, err := scoreAgent(env, agent, qs, 150)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationRow{
			Param: sd, MAPE: mape, PredictionRate: rate,
			Extra: float64(agent.Quanta()),
		})
	}
	return out, nil
}

// A2ModelFamily scores the candidate per-quantum model families of
// RT3.3 by cross-validated RMSE on real (query, answer) pairs from one
// interest region (DESIGN.md ablation A2). The returned map is keyed by
// family name.
func A2ModelFamily(nRows int) (map[string]float64, error) {
	env, err := NewEnv(nRows, 8, 109)
	if err != nil {
		return nil, err
	}
	qs := stream(110, query.Count)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 200; i++ {
		q := qs.Next()
		truth, _, err := env.Executor.ExactCohort(q)
		if err != nil {
			return nil, err
		}
		xs = append(xs, q.Vectorize(2))
		ys = append(ys, truth.Value)
	}
	_, scores, err := optimizerSelect(xs, ys)
	if err != nil {
		return nil, err
	}
	return scores, nil
}

// A3Fallback sweeps the error threshold (DESIGN.md ablation A3):
// accuracy of predictions vs how often base data is touched.
func A3Fallback(nRows int, thresholds []float64) ([]AblationRow, error) {
	env, err := NewEnv(nRows, 8, 103)
	if err != nil {
		return nil, err
	}
	var out []AblationRow
	for _, th := range thresholds {
		cfg := core.DefaultConfig(2)
		cfg.TrainingQueries = 300
		cfg.FallbackThreshold = th
		agent, err := core.NewAgent(exec.CohortOracle{Ex: env.Executor}, cfg)
		if err != nil {
			return nil, err
		}
		qs := stream(104, query.Count)
		for i := 0; i < 300; i++ {
			if _, err := agent.Answer(qs.Next()); err != nil {
				return nil, err
			}
		}
		mape, rate, err := scoreAgent(env, agent, qs, 150)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationRow{Param: th, MAPE: mape, PredictionRate: rate})
	}
	return out, nil
}

// A4RankJoinBatch sweeps the threshold algorithm's pull batch size.
func A4RankJoinBatch(nRows int, batches []int) ([]AblationRow, error) {
	env, err := NewEnv(100, 8, 105)
	if err != nil {
		return nil, err
	}
	rng := workload.NewRNG(106)
	r, err := storage.NewTable(env.Cluster, "R", []string{"score"}, 16)
	if err != nil {
		return nil, err
	}
	s, err := storage.NewTable(env.Cluster, "S", []string{"score"}, 16)
	if err != nil {
		return nil, err
	}
	if err := r.Load(workload.ZipfKeys(rng, nRows, uint64(nRows/2), 1.2, 64, 0)); err != nil {
		return nil, err
	}
	if err := s.Load(workload.ZipfKeys(rng, nRows, uint64(nRows/2), 1.2, 64, 0)); err != nil {
		return nil, err
	}
	op, err := rankjoinNew(env, r, s)
	if err != nil {
		return nil, err
	}
	var out []AblationRow
	for _, b := range batches {
		op.BatchRows = b
		_, cost, err := op.Threshold(10)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationRow{
			Param: float64(b),
			MAPE:  cost.Time.Seconds(),
			Extra: float64(cost.RowsRead),
		})
	}
	return out, nil
}

// A5GeoRouting contrasts CoreOnly vs PeerFirst policies when models are
// shipped to only one edge.
func A5GeoRouting(nRows int) (map[string]float64, error) {
	out := make(map[string]float64, 2)
	for _, policy := range []geo.RoutingPolicy{geo.CoreOnly, geo.PeerFirst} {
		env, err := NewEnv(nRows, 8, 107)
		if err != nil {
			return nil, err
		}
		cfg := geo.DefaultConfig(2)
		cfg.Policy = policy
		d, err := geo.Deploy(env.Executor, cfg)
		if err != nil {
			return nil, err
		}
		qs := stream(108, query.Count)
		if _, err := d.TrainAtCore(qs.Batch(400)); err != nil {
			return nil, err
		}
		// Asymmetric placement: only edge 0 receives models.
		centers := d.CoreAgent.QuantumCenters()
		for qi, c := range centers {
			if w := d.CoreAgent.ExportModel(query.Count, 0, 0, qi); w != nil {
				nq := d.Edges[0].Agent.SeedQuantum(c, 6)
				d.Edges[0].Agent.ImportModel(query.Count, 0, 0, nq, w, 64, 0.05)
			}
		}
		before := d.WANBytes()
		if _, _, err := d.Latencies(qs.Batch(200)); err != nil {
			return nil, err
		}
		name := "core-only"
		if policy == geo.PeerFirst {
			name = "peer-first"
		}
		out[name] = float64(d.WANBytes() - before)
	}
	return out, nil
}

func scoreAgent(env *Env, agent *core.Agent, qs *workload.QueryStream, n int) (mape, rate float64, err error) {
	var sum float64
	var cnt, pred int
	for i := 0; i < n; i++ {
		q := qs.Next()
		truth, _, err := env.Executor.ExactCohort(q)
		if err != nil {
			return 0, 0, err
		}
		ans, err := agent.Answer(q)
		if err != nil {
			return 0, 0, err
		}
		if ans.Predicted {
			pred++
			if truth.Value > 20 {
				d := ans.Value - truth.Value
				if d < 0 {
					d = -d
				}
				sum += d / truth.Value
				cnt++
			}
		}
	}
	if cnt > 0 {
		mape = sum / float64(cnt)
	}
	return mape, float64(pred) / float64(n), nil
}
