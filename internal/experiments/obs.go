package experiments

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/workload"
)

// E19Row is one row of the cluster-introspection scenario: does the
// status plane surface a replica falling behind — and its recovery —
// and what do structured logging plus the runtime sampler cost at
// serving speed.
type E19Row struct {
	Rows  int `json:"rows"`
	Nodes int `json:"nodes"`

	// Failure narrative: batches acked while healthy, then with the
	// victim down, and the findings each phase produced.
	HealthyBatches int    `json:"healthy_batches"`
	DownBatches    int    `json:"down_batches"`
	Victim         string `json:"victim"`
	// DownCritical is the number of critical findings while the victim
	// is unreachable (must be >= 1, kind "unreachable").
	DownCritical int `json:"down_critical"`
	// LagParts / LagPeak describe the replication_lag findings right
	// after a cold revive: partitions behind and the worst batch gap.
	LagParts int    `json:"lag_parts"`
	LagPeak  uint64 `json:"lag_peak"`
	// CaughtUp reports whether the cluster was healthy with zero lag
	// findings after the explicit catch-up.
	CaughtUp bool `json:"caught_up"`

	// Observability overhead: served QPS of the same repeat-heavy
	// stream with logging + runtime sampling off versus on. The logger
	// is rate limited — the limiter, not luck, is what keeps the cost
	// bounded.
	Workers     int     `json:"workers"`
	BaselineQPS float64 `json:"baseline_qps"`
	ObsQPS      float64 `json:"obs_qps"`
	OverheadPct float64 `json:"overhead_pct"`
	// LogLines / LogDropped prove the logger was live and the limiter
	// engaged during the instrumented phase.
	LogLines   int64 `json:"log_lines"`
	LogDropped int64 `json:"log_dropped"`
}

// countingWriter counts emitted log lines; payloads are discarded.
type countingWriter struct{ lines int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.lines++
	return len(p), nil
}

// e19Rows builds fresh uniquely-keyed rows for ingest.
func e19Rows(n int, firstKey uint64) []storage.Row {
	out := make([]storage.Row, n)
	for i := range out {
		k := firstKey + uint64(i)
		out[i] = storage.Row{Key: k, Vec: []float64{float64(k%100) + 0.5, 50, 1}}
	}
	return out
}

// e19Findings counts findings of a kind and the worst lag among them.
func e19Findings(rep dist.ClusterReport, kind string) (n int, peak uint64) {
	for _, f := range rep.Findings {
		if f.Kind != kind {
			continue
		}
		n++
		if f.Lag > peak {
			peak = f.Lag
		}
	}
	return n, peak
}

// E19Introspection runs the cluster-introspection scenario end to end.
//
// Status plane: a 3-node cluster with WAL durability ingests batches,
// loses a member mid-ingest, and the /v1/debug/cluster aggregator must
// call it: a critical "unreachable" finding while the member is down,
// nonzero "replication_lag" findings after the member revives cold
// (own-WAL replay only, no log-tail fetch), and a healthy report with
// zero lag findings after an explicit CatchUp drains the gap.
//
// Overhead: the E17 fixture's fast-path stream is served with logging
// and runtime sampling off versus on, as twenty-four alternating
// back-to-back pairs; OverheadPct is the median paired QPS ratio —
// the only estimator whose noise floor on a small box sits under the
// 2% CI gate (see the measurement comment below). A separate storm
// phase arms slow-query logging on every query to prove lines flow
// and the rate limiter bounds them.
func E19Introspection(nRows, training, workers, perWorker int) (E19Row, error) {
	if workers < 1 {
		workers = 1
	}
	if perWorker < 1 {
		perWorker = 1
	}
	row := E19Row{Rows: nRows, Nodes: 3, Workers: workers}

	// --- Status plane: kill, observe lag, drain it. ---
	dir, err := os.MkdirTemp("", "e19-*")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(dir)

	ccfg := core.DefaultConfig(2)
	ccfg.TrainingQueries = 1 << 30 // exact-path cluster: ingest determinism
	lc, err := dist.StartLocal(row.Nodes, dist.Config{
		Agent:    ccfg,
		Replicas: 2,
		// Quorum 1: a primary acks after its own WAL write, replication
		// is best-effort — exactly the regime where a dead replica
		// falls behind instead of failing the write.
		WriteQuorum: 1,
		DataDir:     dir,
	}, workload.StandardRows(nRows/4, 7))
	if err != nil {
		return row, err
	}
	defer lc.Close()
	client := lc.Client()
	coord := lc.Node(lc.IDs()[0])

	ingest := func(batches, per int, firstKey uint64) (int, error) {
		acked := 0
		for b := 0; b < batches; b++ {
			resp, err := client.Ingest(e19Rows(per, firstKey+uint64(b*per)))
			if err != nil {
				return acked, err
			}
			if resp.AckedRows > 0 {
				acked++
			}
		}
		return acked, nil
	}

	if row.HealthyBatches, err = ingest(4, 40, 1_000_000); err != nil {
		return row, err
	}
	rep := coord.ClusterReport()
	if !rep.Healthy {
		return row, fmt.Errorf("E19: cluster unhealthy before any fault: %+v", rep.Findings)
	}

	// Kill the last member and keep writing. The victim is a replica
	// (not primary) for some partitions; those keep acking at quorum 1
	// while the victim's log stalls.
	row.Victim = lc.IDs()[row.Nodes-1]
	lc.Kill(row.Victim)
	if row.DownBatches, err = ingest(4, 40, 2_000_000); err != nil {
		return row, err
	}
	rep = coord.ClusterReport()
	row.DownCritical, _ = e19Findings(rep, "unreachable")
	if rep.Healthy || row.DownCritical == 0 {
		return row, fmt.Errorf("E19: dead member produced no critical unreachable finding: %+v", rep.Findings)
	}

	// Cold revive: the member replays only its own surviving WAL, so
	// the batches it missed show up as replication lag in the report.
	if err := lc.ReviveCold(row.Victim); err != nil {
		return row, err
	}
	rep = coord.ClusterReport()
	row.LagParts, row.LagPeak = e19Findings(rep, "replication_lag")
	if row.LagParts == 0 || row.LagPeak == 0 {
		return row, fmt.Errorf("E19: cold-revived member shows no replication lag: %+v", rep.Findings)
	}

	// Catch-up drains the gap; the next report must be clean.
	if _, err := lc.Node(row.Victim).CatchUp(); err != nil {
		return row, err
	}
	rep = coord.ClusterReport()
	if n, _ := e19Findings(rep, "replication_lag"); n == 0 && rep.Healthy {
		row.CaughtUp = true
	} else {
		return row, fmt.Errorf("E19: lag did not drain after catch-up: %+v", rep.Findings)
	}

	// --- Overhead: logging + runtime sampling at serving speed. ---
	fix, err := NewE17Fixture(nRows, training)
	if err != nil {
		return row, err
	}
	tracer := trace.NewTracer("local", 0)
	fix.Pool.EnableTracing(tracer)
	catalog := make([]query.Query, 64)
	cs := workload.NewQueryStream(workload.NewRNG(300), workload.DefaultRegions(2), query.Count)
	for i := range catalog {
		catalog[i] = cs.Next()
	}
	for _, q := range catalog { // prime cache/prediction tiers once
		_, _ = fix.Pool.Answer(q)
	}
	cw := &countingWriter{}
	logger := obs.New(cw, obs.LevelInfo)
	logger.SetRateLimit(2_000, 200)
	sampler := obs.NewRuntimeSampler(50 * time.Millisecond)
	// Steady state: slow-query logging armed at a realistic threshold
	// (the repeat-heavy stream serves far under it, so the slow branch
	// stays cold — production's common case), logger attached, sampler
	// live. The instrumented run must keep the baseline's throughput.
	tracer.SetSlowThreshold(50 * time.Millisecond)
	measureBase := func() float64 {
		fix.Pool.SetLogger(nil)
		return serveQPS(fix.Pool, workers, perWorker, catalog)
	}
	measureObs := func() float64 {
		fix.Pool.SetLogger(logger)
		sampler.Start()
		qps := serveQPS(fix.Pool, workers, perWorker, catalog)
		sampler.Stop()
		return qps
	}
	// One discarded warm-up pair, then twenty-four alternating-order pairs.
	// On a small box single-phase QPS wanders ±8% (GC timing, cgroup
	// throttling), and even the pooled mean of many phases drifts ±3% —
	// far above a 2% gate. The robust statistic is the MEDIAN of
	// adjacent-pair ratios: slow drift cancels inside a pair (the two
	// phases run back to back, order alternating), and the median
	// discards pairs a GC cycle landed in. Measured base-vs-base noise
	// floor of this estimator on a 1-core box: ±1.3%.
	// Drop the dead cluster heap first: carrying it into the measurement
	// loop makes GC timing the dominant signal.
	runtime.GC()
	measureBase()
	measureObs()
	var baseQ []float64
	var ratios []float64
	for run := 0; run < 24; run++ {
		var qb, qo float64
		if run%2 == 0 {
			qb = measureBase()
			qo = measureObs()
		} else {
			qo = measureObs()
			qb = measureBase()
		}
		baseQ = append(baseQ, qb)
		ratios = append(ratios, qo/qb)
	}
	sort.Float64s(baseQ)
	sort.Float64s(ratios)
	med := (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
	// BaselineQPS is the median base-phase throughput; ObsQPS is derived
	// from it via the median paired ratio, so the ObsQPS/BaselineQPS
	// comparison the CI gate makes IS the paired estimator.
	row.BaselineQPS = (baseQ[len(baseQ)/2-1] + baseQ[len(baseQ)/2]) / 2
	row.ObsQPS = row.BaselineQPS * med
	row.OverheadPct = 100 * (1 - med)

	// Storm: drop the threshold to 1ns so EVERY query tries to log, and
	// prove the pipeline end to end — lines flow, and the token bucket
	// (not luck) bounds them while the Allow gate keeps suppressed calls
	// to one atomic load each.
	fix.Pool.SetLogger(logger)
	tracer.SetSlowThreshold(time.Nanosecond)
	before := cw.lines
	serveQPS(fix.Pool, workers, perWorker, catalog)
	fix.Pool.SetLogger(nil)
	tracer.SetSlowThreshold(0)
	row.LogLines = cw.lines - before
	row.LogDropped = int64(workers*perWorker) - row.LogLines
	if row.LogLines == 0 {
		return row, fmt.Errorf("E19: slow-query storm emitted no log lines")
	}
	if row.LogDropped <= 0 {
		return row, fmt.Errorf("E19: rate limiter suppressed nothing during a full storm")
	}
	return row, nil
}
