package core

import (
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/query"
	"repro/internal/workload"
)

// trainedHarness returns a harness whose agent is trained past its
// prefix on a mixed count/avg/corr stream, so models of every aggregate
// family exist.
func trainedHarness(t *testing.T, nRows, training int) *testHarness {
	t.Helper()
	cfg := DefaultConfig(2)
	cfg.TrainingQueries = training
	h := newHarness(t, nRows, cfg)
	streams := []*workload.QueryStream{
		workload.NewQueryStream(workload.NewRNG(31), workload.DefaultRegions(2), query.Count),
		workload.NewQueryStream(workload.NewRNG(32), workload.DefaultRegions(2), query.Avg),
		workload.NewQueryStream(workload.NewRNG(33), workload.DefaultRegions(2), query.Corr),
	}
	streams[1].Col = 2
	streams[2].Col, streams[2].Col2 = 0, 2
	for i := 0; i < training+training/2; i++ {
		if _, err := h.agent.Answer(streams[i%len(streams)].Next()); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

// TestSnapshotRoundTripBitIdentical is the model-shipping acceptance
// test: serialize -> JSON -> restore must yield an agent whose
// predictions on a replayed query stream are bit-identical to the
// donor's, decision for decision and bit for bit.
func TestSnapshotRoundTripBitIdentical(t *testing.T) {
	h := trainedHarness(t, 6_000, 200)
	snap := h.agent.Snapshot()
	if len(snap.Models) == 0 {
		t.Fatal("trained agent produced a snapshot without models")
	}

	// Through the wire format, like a real cluster ship.
	wire, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded AgentSnapshot
	if err := json.Unmarshal(wire, &decoded); err != nil {
		t.Fatal(err)
	}
	restored, err := NewAgentFromSnapshot(h.agent.oracle, &decoded)
	if err != nil {
		t.Fatal(err)
	}

	replay := []*workload.QueryStream{
		workload.NewQueryStream(workload.NewRNG(41), workload.DefaultRegions(2), query.Count),
		workload.NewQueryStream(workload.NewRNG(42), workload.DefaultRegions(2), query.Avg),
		workload.NewQueryStream(workload.NewRNG(43), workload.DefaultRegions(2), query.Corr),
	}
	replay[1].Col = 2
	replay[2].Col, replay[2].Col2 = 0, 2
	var predicted int
	for i := 0; i < 300; i++ {
		q := replay[i%len(replay)].Next()
		// TryPredict mutates only counters, so both agents see the same
		// internal state at every step of the replay.
		a1, ok1 := h.agent.TryPredict(q)
		a2, ok2 := restored.TryPredict(q)
		if ok1 != ok2 {
			t.Fatalf("query %d: donor predicted=%v, restored predicted=%v", i, ok1, ok2)
		}
		if !ok1 {
			continue
		}
		predicted++
		if a1.Value != a2.Value || a1.EstError != a2.EstError || a1.Quantum != a2.Quantum {
			t.Fatalf("query %d: donor %+v, restored %+v", i, a1, a2)
		}
	}
	if predicted == 0 {
		t.Fatal("replay exercised no predictions; test proves nothing")
	}

	// The restored agent must also keep training identically: fold the
	// same fresh exact observation into both, then re-compare.
	q := replay[0].Next()
	if _, err := h.agent.Answer(q); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Answer(q); err != nil {
		t.Fatal(err)
	}
	s1, s2 := h.agent.Stats(), restored.Stats()
	if s1.Queries != s2.Queries || s1.Predicted != s2.Predicted || s1.Exact != s2.Exact {
		t.Errorf("post-train stats diverged: donor %+v, restored %+v", s1, s2)
	}
}

func TestSnapshotVersionMismatchRejected(t *testing.T) {
	h := trainedHarness(t, 1_000, 40)
	snap := h.agent.Snapshot()
	snap.Version = SnapshotVersion + 1
	fresh, err := NewAgent(h.agent.oracle, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(snap); !errors.Is(err, ErrSnapshotVersion) {
		t.Errorf("Restore(version+1) err = %v, want ErrSnapshotVersion", err)
	}
	if _, err := NewAgentFromSnapshot(h.agent.oracle, snap); !errors.Is(err, ErrSnapshotVersion) {
		t.Errorf("NewAgentFromSnapshot(version+1) err = %v, want ErrSnapshotVersion", err)
	}
	// A rejected restore must leave the target untouched: a fresh agent
	// has no quanta and answers nothing data-lessly.
	if fresh.Quanta() != 0 {
		t.Errorf("failed restore mutated the agent: %d quanta", fresh.Quanta())
	}
}

func TestSnapshotMalformedRejected(t *testing.T) {
	h := trainedHarness(t, 1_000, 40)
	snap := h.agent.Snapshot()
	snap.Models[0].RLS.Weights = snap.Models[0].RLS.Weights[:1]
	fresh, err := NewAgent(h.agent.oracle, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(snap); err == nil {
		t.Error("Restore accepted a truncated RLS weight vector")
	}
}
