package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/workload"
)

// liveOracle is a thread-safe in-memory oracle over a mutable row set:
// the unit-test stand-in for the cluster's scatter-gather oracle.
type liveOracle struct {
	mu   sync.Mutex
	rows []storage.Row
	ver  int64
}

func newLiveOracle(rows []storage.Row) *liveOracle {
	return &liveOracle{rows: rows, ver: 1}
}

func (o *liveOracle) Answer(q query.Query) (query.Result, metrics.Cost, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return query.EvalRows(q, o.rows), metrics.Cost{RowsRead: int64(len(o.rows))}, nil
}

func (o *liveOracle) DataVersion() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.ver
}

// Ingest appends rows and bumps the version, returning the new version.
func (o *liveOracle) Ingest(rows []storage.Row) int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.rows = append(o.rows, rows...)
	o.ver++
	return o.ver
}

func vecsOf(rows []storage.Row) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = r.Vec
	}
	return out
}

func liveConfig(training int) Config {
	cfg := DefaultConfig(2)
	cfg.TrainingQueries = training
	cfg.DriftRowBudget = 200
	return cfg
}

// trainCount runs a mixed count stream through the agent so the region
// quanta exist and their models are trusted.
func trainCount(t *testing.T, ag *Agent, n int, seed int64) *workload.QueryStream {
	t.Helper()
	qs := workload.NewQueryStream(workload.NewRNG(seed), workload.DefaultRegions(2), query.Count)
	for i := 0; i < n; i++ {
		if _, err := ag.Answer(qs.Next()); err != nil {
			t.Fatal(err)
		}
	}
	return qs
}

func TestIncrementalAbsorbKeepsPredicting(t *testing.T) {
	rows := workload.StandardRows(8000, 1)
	oracle := newLiveOracle(rows)
	ag, err := NewAgent(oracle, liveConfig(200))
	if err != nil {
		t.Fatal(err)
	}
	qs := trainCount(t, ag, 320, 7)

	probe := qs.Next()
	if _, ok := ag.TryPredict(probe); !ok {
		t.Fatalf("expected a trusted model before ingest")
	}

	// Ingest a batch into the first interest region; the version bump
	// must NOT freeze the fast path in incremental mode.
	fresh := workload.GaussianMixture(workload.NewRNG(99), 150, 3,
		[]workload.MixtureComponent{{Center: []float64{25, 25, 25}, Std: 6, Weight: 1}}, 100000)
	ver := oracle.Ingest(fresh)
	res := ag.AbsorbRows(ver, vecsOf(fresh))
	if res.Attributed == 0 {
		t.Fatalf("expected attributed rows, got %+v", res)
	}
	ans, ok := ag.TryPredict(probe)
	if !ok {
		t.Fatalf("incremental agent refused the fast path after a version bump")
	}
	if !ans.Predicted {
		t.Fatalf("expected a model prediction")
	}
	if ans.FreshRows == 0 && res.Attributed > 0 && ans.Quantum >= 0 {
		// FreshRows is per-quantum; the probe's quantum may differ from
		// the ingested region, so only assert the counter plumbing when
		// the drift status shows pending quanta.
		if ag.Drift().PendingQuanta == 0 {
			t.Fatalf("absorbed rows but no quantum reports pending freshness")
		}
	}
}

func TestIncrementalCountTracksIngestedRows(t *testing.T) {
	rows := workload.StandardRows(8000, 1)
	oracle := newLiveOracle(rows)
	cfg := liveConfig(200)
	cfg.DriftRowBudget = 100000 // isolate the in-place update path
	ag, err := NewAgent(oracle, cfg)
	if err != nil {
		t.Fatal(err)
	}
	trainCount(t, ag, 360, 7)

	// A fixed probe query inside region one.
	probe := query.Query{
		Select:    query.Selection{Los: []float64{19, 19}, His: []float64{31, 31}},
		Aggregate: query.Count,
	}
	// Ensure the probe's model saw the probe as an exact observation so
	// the remembered-selection replay covers it.
	if _, err := ag.Answer(probe); err != nil {
		t.Fatal(err)
	}
	before, _, ok := ag.PredictOnly(probe)
	if !ok {
		t.Skip("probe model not trusted at this seed; covered by E15")
	}

	// Double the data mass in the probe region.
	fresh := workload.GaussianMixture(workload.NewRNG(5), 4000, 3,
		[]workload.MixtureComponent{{Center: []float64{25, 25, 25}, Std: 8, Weight: 1}}, 200000)
	ver := oracle.Ingest(fresh)
	res := ag.AbsorbRows(ver, vecsOf(fresh))
	if res.UpdatedModels == 0 {
		t.Fatalf("expected incremental model updates, got %+v", res)
	}

	truth := query.EvalRows(probe, append(append([]storage.Row(nil), rows...), fresh...)).Value
	after, _, ok := ag.PredictOnly(probe)
	if !ok {
		t.Fatalf("model lost trust after incremental update")
	}
	errBefore := math.Abs(before-truth) / truth
	errAfter := math.Abs(after-truth) / truth
	if after <= before {
		t.Fatalf("count prediction did not grow with ingested mass: before=%.1f after=%.1f truth=%.1f",
			before, after, truth)
	}
	if errAfter >= errBefore {
		t.Fatalf("incremental update did not reduce error: before=%.3f after=%.3f", errBefore, errAfter)
	}
}

func TestDriftBudgetInvalidatesQuantumModels(t *testing.T) {
	rows := workload.StandardRows(8000, 1)
	oracle := newLiveOracle(rows)
	cfg := liveConfig(200)
	cfg.DriftRowBudget = 50
	ag, err := NewAgent(oracle, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Train AVG models (non-additive: they take probation on budget
	// exhaustion instead of in-place updates).
	qs := workload.NewQueryStream(workload.NewRNG(7), workload.DefaultRegions(2), query.Avg)
	qs.Col = 2
	for i := 0; i < 340; i++ {
		if _, err := ag.Answer(qs.Next()); err != nil {
			t.Fatal(err)
		}
	}
	probe := query.Query{
		Select:    query.Selection{Los: []float64{20, 20}, His: []float64{30, 30}},
		Aggregate: query.Avg, Col: 2,
	}
	if _, _, ok := ag.PredictOnly(probe); !ok {
		t.Skip("probe model not trusted at this seed; covered by E15")
	}

	fresh := workload.GaussianMixture(workload.NewRNG(13), 200, 3,
		[]workload.MixtureComponent{{Center: []float64{25, 25, 25}, Std: 4, Weight: 1}}, 300000)
	ver := oracle.Ingest(fresh)
	res := ag.AbsorbRows(ver, vecsOf(fresh))
	if res.InvalidatedQuanta == 0 {
		t.Fatalf("expected drift-budget invalidation, got %+v", res)
	}
	if _, _, ok := ag.PredictOnly(probe); ok {
		t.Fatalf("stale AVG model still predicts after its quantum exhausted the drift budget")
	}
	// Fresh exact answers clear probation again.
	for i := 0; i < cfg.ProbationSupport+1; i++ {
		if _, err := ag.Answer(probe); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := ag.PredictOnly(probe); !ok {
		t.Fatalf("model did not re-earn trust after probation")
	}
}

func TestLegacyAbsorbInvalidatesWholesale(t *testing.T) {
	rows := workload.StandardRows(6000, 1)
	oracle := newLiveOracle(rows)
	cfg := DefaultConfig(2)
	cfg.TrainingQueries = 200 // DriftRowBudget = 0: legacy mode
	ag, err := NewAgent(oracle, cfg)
	if err != nil {
		t.Fatal(err)
	}
	qs := trainCount(t, ag, 320, 7)
	probe := qs.Next()
	if _, ok := ag.TryPredict(probe); !ok {
		t.Skip("no trusted model at this seed")
	}
	ver := oracle.Ingest(workload.StandardRows(50, 2))
	ag.AbsorbRows(ver, [][]float64{{25, 25, 25}})
	if _, ok := ag.TryPredict(probe); ok {
		t.Fatalf("legacy agent predicted from a model that should be on probation")
	}
}

func TestRebuildSwapsStateWithoutBlockingReads(t *testing.T) {
	rows := workload.StandardRows(8000, 1)
	oracle := newLiveOracle(rows)
	ag, err := NewAgent(oracle, liveConfig(200))
	if err != nil {
		t.Fatal(err)
	}
	qs := trainCount(t, ag, 320, 7)
	statsBefore := ag.Stats()

	// Concurrent readers hammer the fast path while Rebuild retrains.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rqs := workload.NewQueryStream(workload.NewRNG(50+int64(w)), workload.DefaultRegions(2), query.Count)
			for {
				select {
				case <-stop:
					return
				default:
				}
				ag.TryPredict(rqs.Next())
			}
		}(w)
	}

	sample := qs.Batch(160)
	if err := ag.Rebuild(sample); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	if got := ag.Drift().Rebuilds; got != 1 {
		t.Fatalf("Rebuilds = %d, want 1", got)
	}
	// Lifetime counters survive the swap (and keep growing).
	if ag.Stats().Queries < statsBefore.Queries {
		t.Fatalf("lifetime stats went backwards across the rebuild")
	}
	// The rebuilt agent serves the current interest regions.
	var predicted int
	for i := 0; i < 50; i++ {
		if _, ok := ag.TryPredict(qs.Next()); ok {
			predicted++
		}
	}
	if predicted == 0 {
		t.Fatalf("rebuilt agent answers nothing data-lessly")
	}
}
