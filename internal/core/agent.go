// Package core implements the paper's primary contribution: the
// intelligent agent of Fig. 2 that sits between analysts and the BDAS and
// realises "data-less big data analytics" (P2, RT1).
//
// The agent follows the paper's three-part recipe:
//
//   - Query-space quantisation (RT1.1, objective O1): analytical queries
//     are vectorised (centre + extent) and quantised online with adaptive
//     vector quantisation, so prototypes track the analysts' current
//     interest regions and drift with them.
//
//   - Answer-space modelling (RT1.2, objective O2): each query quantum
//     owns a recursive-least-squares model per aggregate kind that maps
//     query vectors to answers, trained on the (query, answer) pairs the
//     agent intercepts.
//
//   - Prediction with error estimation (RT1.3, objective O3): a new query
//     is routed to its quantum; if the quantum's model is mature and its
//     recent error is below threshold the agent answers from the model —
//     touching zero base data — otherwise it falls back to the exact
//     engine and folds the fresh pair back into the model.
//
// Model maintenance (RT1.4) handles both drift directions: query-interest
// drift via prototype spawning/purging, and base-data updates via
// staleness probation (fallbacks are forced until fresh residuals prove
// the model is accurate again).
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/query"
	"repro/internal/trace"
)

// ErrNoOracle is returned when the agent needs an exact answer but was
// built without an oracle.
var ErrNoOracle = errors.New("core: no oracle configured")

// Oracle answers queries exactly (at full BDAS cost). internal/exec
// provides implementations over both execution paradigms.
// Implementations must be safe for concurrent calls: the agent invokes
// Answer outside its own lock so concurrent fallbacks overlap.
type Oracle interface {
	// Answer returns the exact result and the cost of computing it.
	Answer(q query.Query) (query.Result, metrics.Cost, error)
	// DataVersion returns the base data's current version counter.
	DataVersion() int64
}

// SpanOracle is an Oracle that can continue a query trace: when a
// traced query falls back to the exact path, the agent hands the
// oracle the fallback span so distributed oracles (scatter-gather)
// attach their per-holder RPC subtrees under it. sp may be nil.
type SpanOracle interface {
	Oracle
	AnswerSpan(q query.Query, sp *trace.Span) (query.Result, metrics.Cost, error)
}

// AuditFunc receives one accuracy-audit observation: the model's
// prediction for a query alongside the exact truth. The fallback path
// invokes it (under the agent's write lock) whenever the responsible
// model had enough support to have answered; implementations must be
// cheap and non-blocking.
type AuditFunc func(agg query.Agg, pred, truth float64)

// Config tunes the agent. The zero value is unusable; use DefaultConfig.
type Config struct {
	// Dims is the data space dimensionality queries select over.
	Dims int
	// TrainingQueries is how many initial queries are forwarded to the
	// oracle as the training set (Fig. 2's "training queries").
	TrainingQueries int
	// SpawnDistance is the squared query-space distance beyond which a
	// new quantum is spawned (interest-region granularity).
	SpawnDistance float64
	// MaxQuanta caps the number of query quanta.
	MaxQuanta int
	// Forgetting is the per-quantum RLS forgetting factor (1 = none).
	Forgetting float64
	// ErrorWindow is the number of recent residuals kept per quantum.
	ErrorWindow int
	// FallbackThreshold is the estimated (relative) error above which the
	// agent declines to predict and asks the oracle instead.
	FallbackThreshold float64
	// MinSupport is the observations a quantum needs before predicting.
	MinSupport int
	// ProbationSupport is the fresh observations a stale quantum needs
	// before it may predict again after a data-update notification.
	ProbationSupport int
	// PredictCPU is the simulated cost of one model inference.
	PredictCPU time.Duration
	// DriftRowBudget enables incremental model maintenance (RT1.4 under
	// a live write path): AbsorbRows attributes ingested rows to their
	// nearest quantum, incrementally updates additive (COUNT/SUM) models
	// in place, and only once a quantum has absorbed this many rows are
	// its remaining models invalidated — instead of the legacy wholesale
	// invalidate-on-version-change. 0 disables incremental maintenance.
	DriftRowBudget int
	// RecentQueries is the per-model ring of recent exact-path queries
	// kept for incremental COUNT/SUM updates (default 8 when
	// DriftRowBudget > 0).
	RecentQueries int
}

// DefaultConfig returns settings tuned for the experiments' [0,100]^d
// data spaces.
func DefaultConfig(dims int) Config {
	return Config{
		Dims:              dims,
		TrainingQueries:   300,
		SpawnDistance:     225, // prototypes every ~15 units of query space
		MaxQuanta:         64,
		Forgetting:        0.995,
		ErrorWindow:       48,
		FallbackThreshold: 0.2,
		MinSupport:        12,
		ProbationSupport:  4,
		PredictCPU:        20 * time.Microsecond,
	}
}

// modelKey identifies one answer-model family: an aggregate over specific
// columns (different aggregates live in different answer spaces, RT1.2).
type modelKey struct {
	agg       query.Agg
	col, col2 int
}

// quantumModel is the per-(quantum, aggregate) learned answer model plus
// its rolling error estimate.
type quantumModel struct {
	rls *ml.RLS
	// residuals is a ring of recent normalised errors vs exact answers.
	residuals []float64
	residPos  int
	residFull bool
	n         int64
	// probation > 0 forces fallbacks until that many fresh exact
	// observations arrive (data-update staleness, RT1.4(ii)).
	probation int
	// recent is a ring of this model's latest exact-path queries; the
	// incremental maintenance path (AbsorbRows) replays them against
	// freshly ingested rows to update additive models in place.
	recent    []storedObs
	recentPos int
	// growth is the incremental-maintenance correction for additive
	// aggregates (COUNT, SUM): a multiplicative answer-space factor
	// tracking how much the quantum's data mass has grown since the RLS
	// weights last saw the truth. Ingested batches advance it by their
	// exactly-known delta contribution; exact answers re-anchor it.
	// 0 means "uninitialised" (treated as 1).
	growth float64
	// est caches the rolling 90th-percentile normalised error so the
	// read-locked prediction fast path never sorts the residual window.
	// Every mutation of the residual ring happens under the agent's
	// write lock and must call refreshEst.
	est float64
}

// growthFactor returns the model's current answer-space correction.
func (m *quantumModel) growthFactor() float64 {
	if m.growth == 0 {
		return 1
	}
	return m.growth
}

// additive reports whether agg is maintained incrementally under ingest
// (its answer grows by an exactly-computable delta per batch).
func additive(agg query.Agg) bool { return agg == query.Count || agg == query.Sum }

// correct applies the growth correction to a raw model prediction.
func (m *quantumModel) correct(agg query.Agg, pred float64) float64 {
	if additive(agg) {
		return pred * m.growthFactor()
	}
	return pred
}

// storedObs is one remembered exact-path query: the model features plus
// the selection, enough to compute an ingested batch's exact delta
// contribution to the query's answer.
type storedObs struct {
	feat []float64
	sel  query.Selection
}

// storeRecent remembers an exact-path observation for incremental
// replay. cap is the configured ring size.
func (m *quantumModel) storeRecent(capacity int, feat []float64, sel query.Selection) {
	if capacity <= 0 {
		return
	}
	obs := storedObs{feat: append([]float64(nil), feat...), sel: sel}
	if len(m.recent) < capacity {
		m.recent = append(m.recent, obs)
		return
	}
	m.recent[m.recentPos] = obs
	m.recentPos = (m.recentPos + 1) % len(m.recent)
}

// Answer is the agent's reply to one analytical query.
type Answer struct {
	// Value is the (predicted or exact) aggregate value.
	Value float64
	// Predicted reports whether the answer came from a model (true) or
	// the exact oracle (false).
	Predicted bool
	// EstError is the estimated relative error accompanying a predicted
	// answer (RT1.3: "accompany predicted answers with error
	// estimations"); it is 0 for exact answers.
	EstError float64
	// Quantum is the query-space quantum the query fell into (-1 during
	// cold start).
	Quantum int
	// FreshRows is how many ingested rows the answering quantum has
	// absorbed since its models last refreshed — the staleness signal
	// freshness-aware serving layers surface (0 for exact answers:
	// they always read live data).
	FreshRows int
	// Cost is the full cost charged for this answer: base-data work for
	// exact answers, a model inference for predictions.
	Cost metrics.Cost
	// Degraded marks an exact answer whose scatter covered only part of
	// the partition space (some holders unreachable); Coverage is the
	// contributing fraction. Degraded answers are never learned from,
	// cached, or audited — they are best-effort estimates, not truth.
	Degraded bool
	Coverage float64
}

// Stats aggregates the agent's lifetime behaviour.
type Stats struct {
	// Queries is the total number answered.
	Queries int64
	// Predicted is how many were answered data-lessly.
	Predicted int64
	// Exact is how many hit the oracle (training + fallbacks).
	Exact int64
	// Quanta is the current quantum count.
	Quanta int
	// TotalCost accumulates every answer's cost.
	TotalCost metrics.Cost
	// OracleCost accumulates only oracle-path costs.
	OracleCost metrics.Cost
}

// PredictionRate returns the fraction of queries answered data-lessly.
func (s Stats) PredictionRate() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.Predicted) / float64(s.Queries)
}

// Agent is the SEA intelligent agent. It is safe for concurrent use: the
// model-prediction path (the common case once trained) runs under a
// shared read lock so many goroutines predict in parallel, while
// training folds and maintenance serialise under the write lock. The
// exact oracle is called WITHOUT the lock held — a slow scan (a
// distributed oracle with stalled or partitioned peers can take the
// full RPC timeout plus retries) must not serialise the rest of the
// query plane — so Oracle implementations must be safe for concurrent
// Answer and DataVersion calls. Every oracle in this repo is: they are
// stateless adapters over copy-on-write storage reads.
type Agent struct {
	// mu orders structural access: prediction paths hold it for reading,
	// anything that trains, spawns quanta or invalidates models holds it
	// for writing.
	mu        sync.RWMutex
	cfg       Config
	oracle    Oracle
	quantizer *ml.OnlineAVQ
	models    map[modelKey][]*quantumModel // indexed by quantum id

	// spanOracle caches the oracle's SpanOracle capability (asserted
	// once at construction, not per fallback).
	spanOracle SpanOracle
	// audit, when set, observes every fallback whose model could have
	// predicted (the free half of the continuous accuracy audit).
	audit AuditFunc

	// statsMu guards stats separately so concurrent read-path predictions
	// (which only touch counters) don't contend on mu for writing.
	statsMu sync.Mutex
	stats   Stats

	// dataVer is the last data version the agent has folded in. Atomic
	// so the lock-free CacheVersion read never serialises behind an
	// in-flight oracle fallback holding mu.
	dataVer atomic.Int64

	// scratch pools per-call prediction buffers (query vector, model
	// features) so the steady-state TryPredict/PredictOnly fast paths
	// run without heap allocations.
	scratch sync.Pool

	// Incremental-maintenance state (all guarded by mu): per-quantum
	// fresh-row counters plus lifetime drift accounting.
	freshRows          map[int]int
	driftAbsorbed      int64
	driftUnattributed  int64
	driftInvalidations int64
	driftUpdated       int64
	driftRebuilds      int64
}

// NewAgent builds an agent over the given exact oracle.
func NewAgent(oracle Oracle, cfg Config) (*Agent, error) {
	if cfg.Dims < 1 {
		return nil, fmt.Errorf("core: config needs Dims >= 1, got %d", cfg.Dims)
	}
	if cfg.ErrorWindow < 4 {
		cfg.ErrorWindow = 4
	}
	if cfg.FallbackThreshold <= 0 {
		cfg.FallbackThreshold = 0.15
	}
	if cfg.MinSupport < 1 {
		cfg.MinSupport = 1
	}
	if cfg.DriftRowBudget > 0 && cfg.RecentQueries <= 0 {
		cfg.RecentQueries = 8
	}
	a := &Agent{
		cfg:       cfg,
		oracle:    oracle,
		quantizer: ml.NewOnlineAVQ(cfg.SpawnDistance, cfg.MaxQuanta),
		models:    make(map[modelKey][]*quantumModel),
		freshRows: make(map[int]int),
	}
	if oracle != nil {
		a.dataVer.Store(oracle.DataVersion())
		a.spanOracle, _ = oracle.(SpanOracle)
	}
	return a, nil
}

// SetAuditor installs the accuracy-audit callback (see AuditFunc).
// Configure at wiring time, before serving traffic.
func (a *Agent) SetAuditor(fn AuditFunc) {
	a.mu.Lock()
	a.audit = fn
	a.mu.Unlock()
}

// predictScratch is the per-call scratch arena of the prediction fast
// paths: the query vector (centre..., extent, shape flag) and the model
// features reuse these buffers instead of allocating.
type predictScratch struct {
	qvec []float64
	feat []float64
}

func (a *Agent) getScratch() *predictScratch {
	if s, ok := a.scratch.Get().(*predictScratch); ok {
		return s
	}
	return &predictScratch{
		qvec: make([]float64, 0, a.cfg.Dims+2),
		feat: make([]float64, 0, a.featureDim()),
	}
}

// featureDim is the model input width: the full degree-2 polynomial
// expansion of the query vector (centre..., extent, shape flag) plus the
// subspace volume. The quadratic terms matter twice over: for Gaussian-
// clustered data log-count is exactly quadratic in the query centre, and
// the shape flag's cross terms let one model serve both range (box) and
// radius (ball) selections, whose populations differ at equal extent.
func (a *Agent) featureDim() int { return ml.PolyDim(a.cfg.Dims+2) + 1 }

func (a *Agent) features(q query.Query) []float64 {
	v := q.Vectorize(a.cfg.Dims) // centre..., extent
	if q.Select.IsRadius() {
		v = append(v, 1)
	} else {
		v = append(v, 0)
	}
	out := ml.PolyFeatures(v)
	out = append(out, q.Select.Volume())
	return out
}

// featuresFrom expands an already-built query vector qv (centre...,
// extent — produced by VectorizeInto over s.qvec) into the model
// features, reusing the scratch arena. It computes bit-identically to
// features without allocating.
func (a *Agent) featuresFrom(s *predictScratch, qv []float64, q query.Query) []float64 {
	if q.Select.IsRadius() {
		qv = append(qv, 1)
	} else {
		qv = append(qv, 0)
	}
	s.qvec = qv[:0]
	out := ml.PolyFeaturesInto(s.feat[:0], qv)
	out = append(out, q.Select.Volume())
	s.feat = out[:0]
	return out
}

// quantFeatures is the query's position in query space for quantisation:
// centre + extent only. The richer model features (extent^2, volume)
// would dominate Euclidean distances and shatter the space into thin
// quanta, so they are deliberately excluded here.
func (a *Agent) quantFeatures(q query.Query) []float64 {
	return q.Vectorize(a.cfg.Dims)
}

func (a *Agent) key(q query.Query) modelKey {
	k := modelKey{agg: q.Aggregate}
	switch q.Aggregate {
	case query.Count:
	case query.Sum, query.Avg, query.Var:
		k.col = q.Col
	case query.Corr, query.RegSlope:
		k.col, k.col2 = q.Col, q.Col2
	}
	return k
}

func (a *Agent) model(k modelKey, quantum int) *quantumModel {
	ms := a.models[k]
	for len(ms) <= quantum {
		ms = append(ms, nil)
	}
	if ms[quantum] == nil {
		ms[quantum] = &quantumModel{
			rls:       ml.NewRLS(a.featureDim(), a.cfg.Forgetting, 1000),
			residuals: make([]float64, a.cfg.ErrorWindow),
			est:       math.Inf(1),
		}
	}
	a.models[k] = ms
	return ms[quantum]
}

// normError returns the normalised error used for both the rolling
// estimate and the fallback decision: relative for unbounded magnitude
// aggregates, absolute for the bounded dependence statistics.
func normError(agg query.Agg, pred, truth float64) float64 {
	switch agg {
	case query.Corr, query.RegSlope:
		return math.Abs(pred - truth)
	default:
		return math.Abs(pred-truth) / math.Max(1, math.Abs(truth))
	}
}

func (m *quantumModel) observeResidual(e float64) {
	m.residuals[m.residPos] = e
	m.residPos = (m.residPos + 1) % len(m.residuals)
	if m.residPos == 0 {
		m.residFull = true
	}
	if m.probation > 0 {
		m.probation--
	}
	m.refreshEst()
}

// refreshEst recomputes the cached rolling-error estimate. The residual
// ring only mutates under the agent's write lock, so the read-locked
// prediction paths read m.est without sorting anything.
func (m *quantumModel) refreshEst() {
	n := len(m.residuals)
	if !m.residFull {
		n = m.residPos
	}
	if n == 0 {
		m.est = math.Inf(1)
		return
	}
	m.est = ml.Quantile(m.residuals[:n], 0.9)
}

// estError returns the rolling 90th-percentile normalised error.
func (m *quantumModel) estError() float64 { return m.est }

// trustworthy reports whether the model may answer data-lessly under the
// configured thresholds.
func (m *quantumModel) trustworthy(cfg Config) bool {
	if m == nil || m.n < int64(cfg.MinSupport) || m.probation > 0 {
		return false
	}
	return m.estError() <= cfg.FallbackThreshold
}

// Answer processes one analytical query through the Fig. 2 pipeline.
// The model-prediction path runs under a shared read lock (many callers
// in parallel); training, fallbacks and maintenance serialise.
func (a *Agent) Answer(q query.Query) (Answer, error) {
	return a.AnswerSpan(q, nil)
}

// AnswerSpan is Answer under a (possibly nil) trace span: the predict
// attempt and the exact fallback each get a child span, and span-aware
// oracles continue the tree across node boundaries. With sp == nil the
// cost over Answer is a handful of nil checks.
func (a *Agent) AnswerSpan(q query.Query, sp *trace.Span) (Answer, error) {
	if err := q.Validate(); err != nil {
		return Answer{}, err
	}
	psp := sp.Child("try_predict")
	ans, ok := a.TryPredict(q)
	psp.End()
	if ok {
		psp.SetAttrInt("quantum", int64(ans.Quantum))
		psp.SetAttrFloat("est_error", ans.EstError)
		return ans, nil
	}
	fsp := sp.Child("fallback")
	defer fsp.End()
	return a.answerSlow(q, fsp)
}

// TryPredict attempts the read-mostly fast path: answer q from a learned
// model without touching the oracle or mutating any model state (only
// the stats counters advance). ok is false when the agent would need the
// slow path — still in training, data version changed, out of coverage,
// or the responsible model is not trustworthy. Callers that need an
// answer either way should use Answer; serving layers use TryPredict
// directly to decide whether an expensive fallback is about to happen
// (and e.g. deduplicate identical in-flight fallbacks).
func (a *Agent) TryPredict(q query.Query) (Answer, bool) {
	if q.Validate() != nil {
		return Answer{}, false
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.oracle != nil {
		if a.oracle.DataVersion() != a.dataVer.Load() && !a.incremental() {
			return Answer{}, false // base data changed: slow path invalidates
		}
		a.statsMu.Lock()
		inTraining := a.stats.Queries < int64(a.cfg.TrainingQueries)
		a.statsMu.Unlock()
		if inTraining {
			return Answer{}, false
		}
	}
	s := a.getScratch()
	defer a.scratch.Put(s)
	qv := q.VectorizeInto(s.qvec[:0], a.cfg.Dims)
	quantum, d2 := a.quantizer.Assign(qv)
	if quantum < 0 {
		return Answer{}, false
	}
	if a.cfg.SpawnDistance > 0 && d2 > a.cfg.SpawnDistance {
		return Answer{}, false // outside learned query-space coverage
	}
	ms := a.models[a.key(q)]
	if quantum >= len(ms) || ms[quantum] == nil {
		return Answer{}, false
	}
	m := ms[quantum]
	if !m.trustworthy(a.cfg) {
		return Answer{}, false
	}
	pred := m.correct(q.Aggregate, invTransform(q.Aggregate, m.rls.Predict(a.featuresFrom(s, qv, q))))
	pred = clampPrediction(q.Aggregate, pred)
	ans := Answer{
		Value:     pred,
		Predicted: true,
		EstError:  m.estError(),
		Quantum:   quantum,
		FreshRows: a.freshRows[quantum],
		Cost:      metrics.Cost{Time: a.cfg.PredictCPU, CPUTime: a.cfg.PredictCPU},
	}
	a.statsMu.Lock()
	a.stats.Queries++
	a.stats.Predicted++
	a.stats.TotalCost = a.stats.TotalCost.Add(ans.Cost)
	a.stats.Quanta = a.quantizer.Len()
	a.statsMu.Unlock()
	return ans, true
}

// answerSlow is the full Fig. 2 pipeline. The decision phase (change
// detection, quantiser update, model lookup, re-running the prediction
// checks — conditions may have shifted between a failed TryPredict and
// lock acquisition) runs under the write lock, but the lock is RELEASED
// around the oracle call itself: an exact scan — seconds of I/O on a
// distributed oracle whose peers are slow or partitioned — must not
// serialise the node's whole query plane behind it. The learning fold
// re-acquires the lock afterwards and is skipped if the base data moved
// during the unlocked scan (the pair would be stale).
func (a *Agent) answerSlow(q query.Query, sp *trace.Span) (Answer, error) {
	a.mu.Lock()
	a.maybeDetectDataChange()
	feat := a.features(q)
	qfeat := a.quantFeatures(q)
	k := a.key(q)

	a.statsMu.Lock()
	inTraining := a.stats.Queries < int64(a.cfg.TrainingQueries) && a.oracle != nil
	a.statsMu.Unlock()
	asp := sp.Child("index_assign")
	var quantum int
	var outOfCoverage bool
	if inTraining {
		quantum = a.quantizer.Observe(qfeat)
	} else {
		var d2 float64
		quantum, d2 = a.quantizer.Assign(qfeat)
		// A query far from every learned quantum lies outside the agent's
		// query-space coverage: its nearest model describes a different
		// interest region and must not answer it (RT1.4(i): coverage is
		// judged by "distance between a query and the query quanta").
		outOfCoverage = a.cfg.SpawnDistance > 0 && d2 > a.cfg.SpawnDistance
	}
	if quantum < 0 { // empty quantizer (no training phase configured)
		quantum = a.quantizer.Observe(qfeat)
	}
	asp.End()
	asp.SetAttrInt("quantum", int64(quantum))
	m := a.model(k, quantum)

	if !inTraining && !outOfCoverage && m.trustworthy(a.cfg) {
		pred := m.correct(q.Aggregate, invTransform(q.Aggregate, m.rls.Predict(feat)))
		pred = clampPrediction(q.Aggregate, pred)
		ans := Answer{
			Value:     pred,
			Predicted: true,
			EstError:  m.estError(),
			Quantum:   quantum,
			FreshRows: a.freshRows[quantum],
			Cost:      metrics.Cost{Time: a.cfg.PredictCPU, CPUTime: a.cfg.PredictCPU},
		}
		a.mu.Unlock()
		a.statsMu.Lock()
		a.stats.Queries++
		a.stats.Predicted++
		a.stats.TotalCost = a.stats.TotalCost.Add(ans.Cost)
		a.stats.Quanta = a.quantizer.Len()
		a.statsMu.Unlock()
		return ans, nil
	}

	// Exact path: ask the oracle, learn from the pair. Fallback queries
	// keep training the quantiser too, so shifted interest regions grow
	// their own quanta over time (RT1.4(i) drift adaptation).
	if a.oracle == nil {
		a.mu.Unlock()
		return Answer{}, ErrNoOracle
	}
	if !inTraining {
		newQuantum := a.quantizer.Observe(qfeat)
		if newQuantum != quantum {
			quantum = newQuantum
		}
	}
	verBefore := a.oracle.DataVersion()
	// Len() reads quantizer state, so snapshot it before releasing the
	// lock: the stats blocks below run unlocked.
	quanta := a.quantizer.Len()
	a.mu.Unlock()

	osp := sp.Child("oracle")
	var res query.Result
	var cost metrics.Cost
	var err error
	if a.spanOracle != nil && sp != nil {
		res, cost, err = a.spanOracle.AnswerSpan(q, osp)
	} else {
		res, cost, err = a.oracle.Answer(q)
	}
	osp.End()
	if err != nil {
		return Answer{}, fmt.Errorf("core: oracle: %w", err)
	}
	osp.SetAttrInt("rows_read", cost.RowsRead)
	osp.SetAttrInt("nodes", int64(cost.NodesTouched))
	if res.Degraded {
		// A degraded merge is an extrapolation, not ground truth:
		// training the model, auditing, or re-anchoring growth against
		// it would bake a partial-coverage estimate into everything the
		// agent later predicts. Serve it and learn nothing.
		ans := Answer{
			Value:    res.Value,
			Quantum:  quantum,
			Cost:     cost,
			Degraded: true,
			Coverage: res.Coverage,
		}
		a.statsMu.Lock()
		a.stats.Queries++
		a.stats.Exact++
		a.stats.TotalCost = a.stats.TotalCost.Add(cost)
		a.stats.OracleCost = a.stats.OracleCost.Add(cost)
		a.stats.Quanta = quanta
		a.statsMu.Unlock()
		return ans, nil
	}

	a.mu.Lock()
	// Fold the (query, answer) pair in only if the base data sat still
	// for the unlocked scan (incremental maintenance absorbs mid-scan
	// movement instead of invalidating, so it keeps learning): a pair
	// scanned across a version bump would train the model on an answer
	// no current version produces. The answer itself is still served —
	// it was exact for the data as of the scan.
	if a.oracle.DataVersion() == verBefore || a.incremental() {
		// Re-fetch the model: an invalidation or spawn during the scan
		// may have replaced the slot this quantum maps to.
		m = a.model(k, quantum)
		pred := m.correct(q.Aggregate, invTransform(q.Aggregate, m.rls.Predict(feat)))
		if m.n > 0 {
			m.observeResidual(normError(q.Aggregate, pred, res.Value))
			// Continuous accuracy audit, free half: the truth is already
			// in hand, so record predicted-vs-truth for every fallback
			// whose model had support ("could have been predicted").
			if a.audit != nil {
				a.audit(q.Aggregate, pred, res.Value)
			}
		}
		m.rls.Observe(feat, transformTarget(q.Aggregate, res.Value))
		m.n++
		m.storeRecent(a.cfg.RecentQueries, feat, q.Select)
		if additive(q.Aggregate) && m.growth != 0 {
			// Exact answer in hand: re-anchor the incremental growth
			// correction against the freshly updated raw model.
			raw := invTransform(q.Aggregate, m.rls.Predict(feat))
			m.reanchorGrowth(raw, res.Value)
		}
		// The quantum just saw ground truth: its staleness clock restarts
		// (freshRows feeds Answer.FreshRows / the wire's stale_rows).
		delete(a.freshRows, quantum)
	}
	quanta = a.quantizer.Len()
	a.mu.Unlock()

	ans := Answer{
		Value:   res.Value,
		Quantum: quantum,
		Cost:    cost,
	}
	a.statsMu.Lock()
	a.stats.Queries++
	a.stats.Exact++
	a.stats.TotalCost = a.stats.TotalCost.Add(cost)
	a.stats.OracleCost = a.stats.OracleCost.Add(cost)
	a.stats.Quanta = quanta
	a.statsMu.Unlock()
	return ans, nil
}

// transformTarget maps an exact answer into model space: non-negative,
// multiplicative aggregates (COUNT, VAR) are modelled in log1p space,
// where Gaussian-clustered answer surfaces become near-linear in the
// polynomial query features.
func transformTarget(agg query.Agg, y float64) float64 {
	switch agg {
	case query.Count, query.Var:
		if y < 0 {
			y = 0
		}
		return math.Log1p(y)
	default:
		return y
	}
}

// invTransform maps a model-space prediction back to answer space.
func invTransform(agg query.Agg, v float64) float64 {
	switch agg {
	case query.Count, query.Var:
		// Cap to keep a wild extrapolation from overflowing.
		if v > 60 {
			v = 60
		}
		return math.Expm1(v)
	default:
		return v
	}
}

// clampPrediction enforces range invariants the aggregates carry (counts
// are non-negative; correlations live in [-1, 1]).
func clampPrediction(agg query.Agg, v float64) float64 {
	switch agg {
	case query.Count:
		if v < 0 {
			return 0
		}
	case query.Var:
		if v < 0 {
			return 0
		}
	case query.Corr:
		if v > 1 {
			return 1
		}
		if v < -1 {
			return -1
		}
	}
	return v
}

// maybeDetectDataChange compares the oracle's data version against the
// last seen one and, on change, puts every model on probation. Callers
// that know the affected subspace should use NotifyDataChange instead
// for surgical invalidation; with incremental maintenance enabled
// (Config.DriftRowBudget > 0) version changes never invalidate
// wholesale — AbsorbRows is the maintenance channel instead.
func (a *Agent) maybeDetectDataChange() {
	if a.oracle == nil {
		return
	}
	v := a.oracle.DataVersion()
	if cur := a.dataVer.Load(); v != cur && cur != 0 && !a.incremental() {
		a.invalidate(nil)
	}
	a.dataVer.Store(v)
}

// NotifyDataChange invalidates models whose quantum prototype falls
// inside sel (nil = all): they enter probation and must re-earn trust via
// fresh exact observations (RT1.4(ii)).
func (a *Agent) NotifyDataChange(sel *query.Selection) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.invalidate(sel)
	if a.oracle != nil {
		a.dataVer.Store(a.oracle.DataVersion())
	}
}

// DataVersion returns the last data version the agent has folded in.
func (a *Agent) DataVersion() int64 { return a.dataVer.Load() }

// CacheVersion is the freshness stamp serving-layer answer caches pair
// with this agent's cached answers: the oracle's live data version
// (which advances with every applied ingest batch), or the agent's
// last-seen version when it has no oracle. It takes no lock — the
// oracle reference is immutable after construction and
// Oracle.DataVersion is documented read-safe — so cache hits never
// serialise behind an in-flight oracle fallback holding the agent's
// write lock.
func (a *Agent) CacheVersion() int64 {
	if a.oracle != nil {
		return a.oracle.DataVersion()
	}
	return a.dataVer.Load()
}

func (a *Agent) invalidate(sel *query.Selection) {
	protos := a.quantizer.Prototypes()
	for _, ms := range a.models {
		for qi, m := range ms {
			if m == nil {
				continue
			}
			if sel != nil && qi < len(protos) {
				// Prototype layout: centre..., extent — test the centre.
				centre := protos[qi][:a.cfg.Dims]
				if !sel.Contains(centre) {
					continue
				}
			}
			m.probation = a.cfg.ProbationSupport
			// Reset the error window: old residuals describe dead data.
			m.residPos = 0
			m.residFull = false
			m.refreshEst()
		}
	}
}

// PurgeStaleQuanta drops quanta that have not won recently (interest
// drift, RT5.3) along with their models, returning how many were removed.
func (a *Agent) PurgeStaleQuanta(maxAge int64) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	removed := a.quantizer.PurgeStale(maxAge)
	if len(removed) == 0 {
		return 0
	}
	isRemoved := make(map[int]bool, len(removed))
	for _, r := range removed {
		isRemoved[r] = true
	}
	for k, ms := range a.models {
		var kept []*quantumModel
		for qi, m := range ms {
			if !isRemoved[qi] {
				kept = append(kept, m)
			}
		}
		a.models[k] = kept
	}
	return len(removed)
}

// PredictOnly returns the model prediction for q without touching the
// oracle, the statistics, or the quantiser — the read-only evaluation
// hook the explanation engine (RT4) samples when it sweeps a query
// parameter. ok is false when the responsible quantum is missing or
// untrusted.
func (a *Agent) PredictOnly(q query.Query) (value, estErr float64, ok bool) {
	if q.Validate() != nil {
		return 0, 0, false
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	s := a.getScratch()
	defer a.scratch.Put(s)
	qv := q.VectorizeInto(s.qvec[:0], a.cfg.Dims)
	quantum, d2 := a.quantizer.Assign(qv)
	if quantum < 0 {
		return 0, 0, false
	}
	if a.cfg.SpawnDistance > 0 && d2 > a.cfg.SpawnDistance {
		return 0, 0, false // outside learned query-space coverage
	}
	k := a.key(q)
	ms := a.models[k]
	if quantum >= len(ms) || ms[quantum] == nil {
		return 0, 0, false
	}
	m := ms[quantum]
	if !m.trustworthy(a.cfg) {
		return 0, 0, false
	}
	pred := m.correct(q.Aggregate, invTransform(q.Aggregate, m.rls.Predict(a.featuresFrom(s, qv, q))))
	return clampPrediction(q.Aggregate, pred), m.estError(), true
}

// ExactProbe evaluates q on the exact oracle without touching models,
// statistics or the quantiser: the shadow-audit sampler uses it to
// obtain ground truth for a model-served answer. It takes the write
// lock for the oracle call — preserving the contract that only one
// goroutine calls the oracle at a time — but leaves no trace in the
// agent's learned state.
func (a *Agent) ExactProbe(q query.Query) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.oracle == nil {
		return 0, ErrNoOracle
	}
	res, _, err := a.oracle.Answer(q)
	if err != nil {
		return 0, fmt.Errorf("core: probe oracle: %w", err)
	}
	if res.Degraded {
		// A partial-coverage merge is not ground truth; auditing a
		// model against it would charge the model with the scatter
		// layer's missing partitions.
		return 0, fmt.Errorf("core: probe oracle: degraded answer (coverage %.2f)", res.Coverage)
	}
	return res.Value, nil
}

// NormError returns the normalised prediction error the agent itself
// uses for trust decisions: relative for unbounded magnitude
// aggregates, absolute for the bounded dependence statistics. Audit
// layers use it so monitored error and fallback decisions share one
// definition.
func NormError(agg query.Agg, pred, truth float64) float64 {
	return normError(agg, pred, truth)
}

// ProbationQuanta counts models currently on probation (invalidated by
// a data change and not yet re-trusted) — a drift-health gauge.
func (a *Agent) ProbationQuanta() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	n := 0
	for _, ms := range a.models {
		for _, m := range ms {
			if m != nil && m.probation > 0 {
				n++
			}
		}
	}
	return n
}

// Stats returns a copy of the lifetime counters.
func (a *Agent) Stats() Stats {
	a.statsMu.Lock()
	defer a.statsMu.Unlock()
	return a.stats
}

// Quanta returns the current number of query-space quanta.
func (a *Agent) Quanta() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.quantizer.Len()
}

// QuantumCenters returns the prototypes' data-space centres (for
// visualisation and the geo model-placement logic).
func (a *Agent) QuantumCenters() [][]float64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	protos := a.quantizer.Prototypes()
	out := make([][]float64, len(protos))
	for i, p := range protos {
		c := make([]float64, a.cfg.Dims)
		copy(c, p[:a.cfg.Dims])
		out[i] = c
	}
	return out
}

// Config returns the agent's configuration.
func (a *Agent) Config() Config { return a.cfg }

// ExportModel returns the learned weights of the (agg, col, col2) model
// for the given quantum, or nil when absent. Geo deployments ship these
// weights from core to edge nodes (RT5.2) instead of shipping data.
func (a *Agent) ExportModel(agg query.Agg, col, col2, quantum int) []float64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	ms := a.models[modelKey{agg: agg, col: col, col2: col2}]
	if quantum < 0 || quantum >= len(ms) || ms[quantum] == nil {
		return nil
	}
	return ms[quantum].rls.Weights()
}

// ImportModel installs weights for the (agg, col, col2) model of the
// given quantum, marking it trained with the supplied support and error
// estimate. The receiving agent can then predict immediately — this is
// the model-shipping path of RT1.5 and RT5.2.
func (a *Agent) ImportModel(agg query.Agg, col, col2, quantum int, weights []float64, support int64, estErr float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	m := a.model(modelKey{agg: agg, col: col, col2: col2}, quantum)
	m.rls.SetWeights(weights)
	m.n = support
	for i := range m.residuals {
		m.residuals[i] = estErr
	}
	m.residFull = true
	m.probation = 0
	m.refreshEst()
}

// SeedQuantum inserts a quantum prototype directly (used when importing a
// remote agent's quantisation). It returns the new quantum's index.
func (a *Agent) SeedQuantum(center []float64, extent float64) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	feat := make([]float64, a.cfg.Dims+1)
	copy(feat, center)
	feat[a.cfg.Dims] = extent
	return a.quantizer.Observe(feat)
}
