package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/workload"
)

// TestConcurrentAnswerHammer drives 32 concurrent clients through one
// shared agent with mixed work: model predictions, oracle fallbacks
// (out-of-coverage queries), read-only probes, and concurrent
// NotifyDataChange invalidations. Run with -race; it also checks the
// stats counters never drop an answered query.
func TestConcurrentAnswerHammer(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.TrainingQueries = 200
	h := newHarness(t, 4_000, cfg)

	// Warm up single-threaded past the training prefix.
	const warm = 300
	for i := 0; i < warm; i++ {
		if _, err := h.agent.Answer(h.qs.Next()); err != nil {
			t.Fatal(err)
		}
	}

	const (
		clients   = 32
		perClient = 60
	)
	var wg sync.WaitGroup
	wg.Add(clients)
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			cs := workload.NewQueryStream(workload.NewRNG(500+int64(c)), workload.DefaultRegions(2), query.Count)
			if c%3 == 1 {
				cs = workload.NewQueryStream(workload.NewRNG(500+int64(c)), workload.DefaultRegions(2), query.Avg)
				cs.Col = 2
			}
			for i := 0; i < perClient; i++ {
				q := cs.Next()
				if c%7 == 3 && i%20 == 10 {
					// Surgical invalidation racing the answer paths.
					sel := q.Select
					h.agent.NotifyDataChange(&sel)
				}
				ans, err := h.agent.Answer(q)
				if err != nil {
					errCh <- err
					return
				}
				if math.IsNaN(ans.Value) || math.IsInf(ans.Value, 0) {
					t.Errorf("client %d: non-finite answer %v", c, ans.Value)
					return
				}
				// Interleave the read-only surfaces.
				h.agent.PredictOnly(q)
				_ = h.agent.Stats()
				_ = h.agent.Quanta()
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	st := h.agent.Stats()
	want := int64(warm + clients*perClient)
	if st.Queries != want {
		t.Errorf("stats.Queries = %d, want %d (no answer may be dropped)", st.Queries, want)
	}
	if st.Predicted+st.Exact != st.Queries {
		t.Errorf("predicted %d + exact %d != queries %d", st.Predicted, st.Exact, st.Queries)
	}
	if st.Predicted == 0 {
		t.Error("expected some data-less predictions under concurrency")
	}
}

// TestTryPredictMatchesAnswer checks the fast path returns exactly what
// Answer's predicted branch would: same value, estimated error and
// quantum, and that it refuses during training.
func TestTryPredictMatchesAnswer(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.TrainingQueries = 150
	h := newHarness(t, 4_000, cfg)

	q0 := h.qs.Next()
	if _, ok := h.agent.TryPredict(q0); ok {
		t.Fatal("TryPredict succeeded before any training")
	}

	for i := 0; i < 260; i++ {
		if _, err := h.agent.Answer(h.qs.Next()); err != nil {
			t.Fatal(err)
		}
	}

	// Find a query the fast path serves, then check Answer agrees.
	var matched bool
	for i := 0; i < 200; i++ {
		q := h.qs.Next()
		fast, ok := h.agent.TryPredict(q)
		if !ok {
			continue
		}
		full, err := h.agent.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		if !full.Predicted {
			t.Fatalf("Answer fell back where TryPredict predicted (query %d)", i)
		}
		if full.Value != fast.Value || full.EstError != fast.EstError || full.Quantum != fast.Quantum {
			t.Fatalf("fast path diverged: TryPredict=%+v Answer=%+v", fast, full)
		}
		matched = true
		break
	}
	if !matched {
		t.Fatal("no trustworthy query found after training")
	}

	st := h.agent.Stats()
	if st.Queries == 0 || st.Predicted == 0 {
		t.Errorf("stats not advanced by fast path: %+v", st)
	}
}

// TestTryPredictRefusesAfterDataChange checks the fast path yields to
// the slow path when the base data version moves, so invalidation is
// never skipped.
func TestTryPredictRefusesAfterDataChange(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.TrainingQueries = 150
	h := newHarness(t, 4_000, cfg)
	for i := 0; i < 260; i++ {
		if _, err := h.agent.Answer(h.qs.Next()); err != nil {
			t.Fatal(err)
		}
	}
	var q query.Query
	found := false
	for i := 0; i < 200; i++ {
		q = h.qs.Next()
		if _, ok := h.agent.TryPredict(q); ok {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no predictable query found")
	}
	// Mutate base data: version moves, fast path must refuse until the
	// slow path has re-observed the new version.
	if _, _, err := h.ex.Table().UpdateWhere(
		func(storage.Row) bool { return true },
		func(r *storage.Row) { r.Vec[2] += 1 },
	); err != nil {
		t.Fatal(err)
	}
	if _, ok := h.agent.TryPredict(q); ok {
		t.Error("TryPredict served a prediction across a data-version change")
	}
}
