package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/ml"
	"repro/internal/query"
)

// SnapshotVersion is the current agent-snapshot format version. Restore
// rejects snapshots whose version differs: a node running newer code must
// not silently mis-read an old snapshot (or vice versa).
const SnapshotVersion = 1

// ErrSnapshotVersion is returned when a snapshot's format version does
// not match SnapshotVersion.
var ErrSnapshotVersion = errors.New("core: snapshot version mismatch")

// ModelSnapshot is one per-(quantum, aggregate) answer model: the RLS
// state plus the rolling error estimate and maintenance counters.
type ModelSnapshot struct {
	Agg       query.Agg   `json:"agg"`
	Col       int         `json:"col"`
	Col2      int         `json:"col2"`
	Quantum   int         `json:"quantum"`
	RLS       ml.RLSState `json:"rls"`
	Residuals []float64   `json:"residuals"`
	ResidPos  int         `json:"resid_pos"`
	ResidFull bool        `json:"resid_full"`
	N         int64       `json:"n"`
	Probation int         `json:"probation"`
	// Growth is the incremental-maintenance answer-space correction for
	// additive aggregates (0 = uninitialised, treated as 1).
	Growth float64 `json:"growth,omitempty"`
}

// AgentSnapshot is the complete serialisable state of a trained agent:
// configuration, query-space quantiser, every per-quantum answer model,
// lifetime counters and the data version the models were trained
// against. It is the real-system analogue of internal/polystore's
// ship-model strategy: a recovering or newly joined cluster replica
// imports a peer's snapshot and predicts immediately instead of paying
// for its own training queries (RT1.5, RT5.2).
//
// An agent restored from its snapshot produces bit-identical predictions
// to the donor on the same query stream: the quantiser assignment, the
// model weights, the rolling error estimates and the training-phase
// counter are all preserved exactly.
type AgentSnapshot struct {
	Version     int             `json:"version"`
	Config      Config          `json:"config"`
	Quantizer   ml.AVQState     `json:"quantizer"`
	Models      []ModelSnapshot `json:"models"`
	Stats       Stats           `json:"stats"`
	DataVersion int64           `json:"data_version"`
}

// Snapshot exports the agent's full learned state. It is safe to call
// concurrently with serving; the snapshot is a consistent point-in-time
// view taken under the agent's read lock.
func (a *Agent) Snapshot() *AgentSnapshot {
	a.mu.RLock()
	defer a.mu.RUnlock()
	s := &AgentSnapshot{
		Version:     SnapshotVersion,
		Config:      a.cfg,
		Quantizer:   a.quantizer.State(),
		DataVersion: a.dataVer.Load(),
	}
	for k, ms := range a.models {
		for qi, m := range ms {
			if m == nil {
				continue
			}
			res := make([]float64, len(m.residuals))
			copy(res, m.residuals)
			s.Models = append(s.Models, ModelSnapshot{
				Agg:       k.agg,
				Col:       k.col,
				Col2:      k.col2,
				Quantum:   qi,
				RLS:       m.rls.State(),
				Residuals: res,
				ResidPos:  m.residPos,
				ResidFull: m.residFull,
				N:         m.n,
				Probation: m.probation,
				Growth:    m.growth,
			})
		}
	}
	// Map iteration order is random: sort so equal agents produce equal
	// snapshots (and snapshot bytes are stable across runs).
	sort.Slice(s.Models, func(i, j int) bool {
		x, y := s.Models[i], s.Models[j]
		if x.Agg != y.Agg {
			return x.Agg < y.Agg
		}
		if x.Col != y.Col {
			return x.Col < y.Col
		}
		if x.Col2 != y.Col2 {
			return x.Col2 < y.Col2
		}
		return x.Quantum < y.Quantum
	})
	a.statsMu.Lock()
	s.Stats = a.stats
	a.statsMu.Unlock()
	return s
}

// Restore replaces the agent's learned state with the snapshot's. The
// agent keeps its own oracle; everything else — quantiser, models, error
// windows, lifetime counters, data version — becomes the donor's, so the
// restored agent predicts (and keeps training) exactly like the donor
// would. Restore fails without touching the agent on a version mismatch
// or a malformed snapshot.
func (a *Agent) Restore(s *AgentSnapshot) error {
	if s == nil {
		return fmt.Errorf("core: nil snapshot")
	}
	if s.Version != SnapshotVersion {
		return fmt.Errorf("%w: got %d, want %d", ErrSnapshotVersion, s.Version, SnapshotVersion)
	}
	if s.Config.Dims < 1 {
		return fmt.Errorf("core: snapshot config needs Dims >= 1, got %d", s.Config.Dims)
	}
	quant, err := ml.NewOnlineAVQFromState(s.Quantizer)
	if err != nil {
		return fmt.Errorf("core: snapshot quantizer: %w", err)
	}
	models := make(map[modelKey][]*quantumModel)
	for _, msnap := range s.Models {
		if msnap.Quantum < 0 {
			return fmt.Errorf("core: snapshot model with quantum %d", msnap.Quantum)
		}
		rls, err := ml.NewRLSFromState(msnap.RLS)
		if err != nil {
			return fmt.Errorf("core: snapshot model %v/%d: %w", msnap.Agg, msnap.Quantum, err)
		}
		res := make([]float64, len(msnap.Residuals))
		copy(res, msnap.Residuals)
		m := &quantumModel{
			rls:       rls,
			residuals: res,
			residPos:  msnap.ResidPos,
			residFull: msnap.ResidFull,
			n:         msnap.N,
			probation: msnap.Probation,
			growth:    msnap.Growth,
		}
		m.refreshEst()
		k := modelKey{agg: msnap.Agg, col: msnap.Col, col2: msnap.Col2}
		ms := models[k]
		for len(ms) <= msnap.Quantum {
			ms = append(ms, nil)
		}
		ms[msnap.Quantum] = m
		models[k] = ms
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.cfg = s.Config
	if a.cfg.DriftRowBudget > 0 && a.cfg.RecentQueries <= 0 {
		a.cfg.RecentQueries = 8
	}
	a.quantizer = quant
	a.models = models
	a.dataVer.Store(s.DataVersion)
	// The restored state is fully fresh: any pre-swap ingest pressure
	// was either folded into the donor's models or superseded by them.
	a.freshRows = make(map[int]int)
	a.statsMu.Lock()
	a.stats = s.Stats
	a.statsMu.Unlock()
	return nil
}

// NewAgentFromSnapshot builds an agent over oracle and restores the
// snapshot into it — the receiving half of model shipping.
func NewAgentFromSnapshot(oracle Oracle, s *AgentSnapshot) (*Agent, error) {
	if s == nil {
		return nil, fmt.Errorf("core: nil snapshot")
	}
	a, err := NewAgent(oracle, s.Config)
	if err != nil {
		return nil, err
	}
	if err := a.Restore(s); err != nil {
		return nil, err
	}
	return a, nil
}
