package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/workload"
)

// testHarness bundles an agent over a small simulated BDAS.
type testHarness struct {
	agent *Agent
	ex    *exec.Executor
	qs    *workload.QueryStream
}

func newHarness(t *testing.T, nRows int, cfg Config) *testHarness {
	t.Helper()
	cl := cluster.New(4, cluster.DefaultConfig())
	eng := engine.New(cl)
	// Columns: x, y spatial (clustered); z = 2x + 5 + noise (dependent
	// attribute). Selections constrain only (x, y), so the spatial
	// clustering the query stream targets stays intact.
	tbl, err := storage.NewTable(cl, "data", []string{"x", "y", "z"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.NewRNG(21)
	rows := workload.GaussianMixture(rng, nRows, 3, workload.DefaultMixture(3), 0)
	workload.CorrelatedColumns(rng, rows, 0, 2, 2, 5, 1)
	if err := tbl.Load(rows); err != nil {
		t.Fatal(err)
	}
	ex, err := exec.New(eng, tbl)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewAgent(exec.MapReduceOracle{Ex: ex}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	qs := workload.NewQueryStream(workload.NewRNG(22), workload.DefaultRegions(2), query.Count)
	return &testHarness{agent: agent, ex: ex, qs: qs}
}

func TestNewAgentValidation(t *testing.T) {
	if _, err := NewAgent(nil, Config{}); err == nil {
		t.Error("want error for Dims = 0")
	}
	a, err := NewAgent(nil, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	// Without an oracle, the first (training) query must fail cleanly.
	q := query.Query{
		Select:    query.Selection{Center: []float64{1, 1}, Radius: 1},
		Aggregate: query.Count,
	}
	if _, err := a.Answer(q); !errors.Is(err, ErrNoOracle) {
		t.Errorf("err = %v, want ErrNoOracle", err)
	}
}

func TestAgentRejectsInvalidQuery(t *testing.T) {
	h := newHarness(t, 500, DefaultConfig(2))
	if _, err := h.agent.Answer(query.Query{Aggregate: query.Count}); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestTrainingPhaseGoesToOracle(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.TrainingQueries = 20
	h := newHarness(t, 2000, cfg)
	for i := 0; i < 20; i++ {
		ans, err := h.agent.Answer(h.qs.Next())
		if err != nil {
			t.Fatal(err)
		}
		if ans.Predicted {
			t.Fatalf("query %d predicted during training", i)
		}
		if ans.Cost.RowsRead == 0 {
			t.Fatalf("training query %d read no base data", i)
		}
	}
	st := h.agent.Stats()
	if st.Exact != 20 || st.Predicted != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.Quanta == 0 {
		t.Error("no quanta formed during training")
	}
}

func TestAgentLearnsToPredictCounts(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.TrainingQueries = 250
	h := newHarness(t, 8000, cfg)

	// Training phase.
	for i := 0; i < cfg.TrainingQueries; i++ {
		if _, err := h.agent.Answer(h.qs.Next()); err != nil {
			t.Fatal(err)
		}
	}
	// Evaluation phase: measure prediction rate and accuracy.
	var predicted, total int
	var relErrSum float64
	for i := 0; i < 300; i++ {
		q := h.qs.Next()
		truth, _, err := h.ex.ExactCohort(q)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := h.agent.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		total++
		if ans.Predicted {
			predicted++
			if ans.Cost.RowsRead != 0 {
				t.Fatal("predicted answer touched base data")
			}
			if truth.Value > 20 {
				relErrSum += math.Abs(ans.Value-truth.Value) / truth.Value
			}
		}
	}
	if predicted < total/2 {
		t.Errorf("prediction rate %d/%d too low", predicted, total)
	}
	if predicted > 0 {
		meanRel := relErrSum / float64(predicted)
		if meanRel > 0.25 {
			t.Errorf("mean relative error %.3f too high", meanRel)
		}
	}
	// Data-less answers must be orders of magnitude cheaper.
	st := h.agent.Stats()
	if st.Predicted == 0 {
		t.Fatal("no predictions at all")
	}
	predCost := st.TotalCost.Add(metrics.Cost{}).Time - st.OracleCost.Time
	meanPred := predCost / time.Duration(st.Predicted)
	meanOracle := st.OracleCost.Time / time.Duration(st.Exact)
	if meanOracle < 100*meanPred {
		t.Errorf("oracle/predict cost ratio too small: %v vs %v", meanOracle, meanPred)
	}
}

func TestAgentPredictsAvgAndSlope(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.TrainingQueries = 200
	h := newHarness(t, 8000, cfg)
	// Avg of z inside subspaces; z = 2x + 5 + noise, so avg(z) tracks 2*cx+5.
	h.qs.Aggregate = query.Avg
	h.qs.Col = 2
	for i := 0; i < cfg.TrainingQueries; i++ {
		if _, err := h.agent.Answer(h.qs.Next()); err != nil {
			t.Fatal(err)
		}
	}
	var predicted int
	var absErr []float64
	for i := 0; i < 150; i++ {
		q := h.qs.Next()
		truth, _, err := h.ex.ExactCohort(q)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := h.agent.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		if ans.Predicted && truth.Support > 10 {
			predicted++
			absErr = append(absErr, math.Abs(ans.Value-truth.Value)/math.Max(1, math.Abs(truth.Value)))
		}
	}
	if predicted < 30 {
		t.Fatalf("AVG prediction rate too low: %d", predicted)
	}
	var s float64
	for _, e := range absErr {
		s += e
	}
	if mean := s / float64(len(absErr)); mean > 0.2 {
		t.Errorf("AVG mean relative error %.3f too high", mean)
	}
}

func TestAgentErrorEstimatesAccompanyPredictions(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.TrainingQueries = 200
	h := newHarness(t, 8000, cfg)
	for i := 0; i < cfg.TrainingQueries; i++ {
		if _, err := h.agent.Answer(h.qs.Next()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		ans, err := h.agent.Answer(h.qs.Next())
		if err != nil {
			t.Fatal(err)
		}
		if ans.Predicted {
			if ans.EstError < 0 || math.IsInf(ans.EstError, 0) || math.IsNaN(ans.EstError) {
				t.Fatalf("predicted answer lacks finite error estimate: %v", ans.EstError)
			}
			if ans.EstError > cfg.FallbackThreshold {
				t.Fatalf("prediction with estimated error %v above threshold", ans.EstError)
			}
		}
	}
}

func TestDataChangeTriggersProbation(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.TrainingQueries = 200
	h := newHarness(t, 8000, cfg)
	for i := 0; i < cfg.TrainingQueries+100; i++ {
		if _, err := h.agent.Answer(h.qs.Next()); err != nil {
			t.Fatal(err)
		}
	}
	pre := h.agent.Stats()
	if pre.Predicted == 0 {
		t.Fatal("agent never predicted; test premise broken")
	}
	// Mutate the base data: all z values shift by +100.
	if _, _, err := h.ex.Table().UpdateWhere(
		func(storage.Row) bool { return true },
		func(r *storage.Row) { r.Vec[2] += 100 },
	); err != nil {
		t.Fatal(err)
	}
	// Version-based detection: next answers must fall back to exact.
	var exactAfter int
	for i := 0; i < cfg.ProbationSupport+2; i++ {
		ans, err := h.agent.Answer(h.qs.Next())
		if err != nil {
			t.Fatal(err)
		}
		if !ans.Predicted {
			exactAfter++
		}
	}
	if exactAfter < cfg.ProbationSupport {
		t.Errorf("only %d exact answers after data change, want >= %d",
			exactAfter, cfg.ProbationSupport)
	}
}

func TestNotifyDataChangeSurgical(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.TrainingQueries = 200
	h := newHarness(t, 8000, cfg)
	for i := 0; i < cfg.TrainingQueries+50; i++ {
		if _, err := h.agent.Answer(h.qs.Next()); err != nil {
			t.Fatal(err)
		}
	}
	// Invalidate only a region far from both interest regions: behaviour
	// on the live regions must be unaffected.
	far := query.Selection{Los: []float64{-1000, -1000}, His: []float64{-900, -900}}
	h.agent.NotifyDataChange(&far)
	var predicted int
	for i := 0; i < 30; i++ {
		ans, err := h.agent.Answer(h.qs.Next())
		if err != nil {
			t.Fatal(err)
		}
		if ans.Predicted {
			predicted++
		}
	}
	if predicted == 0 {
		t.Error("surgical invalidation of a far region killed all predictions")
	}
}

func TestPurgeStaleQuanta(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.TrainingQueries = 100
	h := newHarness(t, 3000, cfg)
	for i := 0; i < 150; i++ {
		if _, err := h.agent.Answer(h.qs.Next()); err != nil {
			t.Fatal(err)
		}
	}
	before := h.agent.Quanta()
	// Nothing is stale yet at small ages.
	if removed := h.agent.PurgeStaleQuanta(1 << 40); removed != 0 {
		t.Errorf("purged %d quanta that are not stale", removed)
	}
	if h.agent.Quanta() != before {
		t.Error("quantum count changed without purging")
	}
}

func TestExportImportModel(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.TrainingQueries = 150
	h := newHarness(t, 8000, cfg)
	for i := 0; i < cfg.TrainingQueries; i++ {
		if _, err := h.agent.Answer(h.qs.Next()); err != nil {
			t.Fatal(err)
		}
	}
	// Export the first trained quantum's COUNT model...
	var weights []float64
	var quantum int
	for qi := 0; qi < h.agent.Quanta(); qi++ {
		if w := h.agent.ExportModel(query.Count, 0, 0, qi); w != nil {
			weights, quantum = w, qi
			break
		}
	}
	if weights == nil {
		t.Fatal("no exportable model found")
	}
	// ...into a fresh agent with no oracle: it must predict immediately.
	edge, err := NewAgent(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	centers := h.agent.QuantumCenters()
	newQ := edge.SeedQuantum(centers[quantum], 6)
	edge.ImportModel(query.Count, 0, 0, newQ, weights, 100, 0.05)
	q := query.Query{
		Select:    query.Selection{Center: centers[quantum], Radius: 6},
		Aggregate: query.Count,
	}
	ans, err := edge.Answer(q)
	if err != nil {
		t.Fatalf("edge agent with imported model failed: %v", err)
	}
	if !ans.Predicted {
		t.Error("imported model did not predict")
	}
	if ans.Value < 0 {
		t.Error("count prediction negative after clamping")
	}
}

func TestStatsPredictionRate(t *testing.T) {
	var s Stats
	if s.PredictionRate() != 0 {
		t.Error("empty stats rate != 0")
	}
	s.Queries = 10
	s.Predicted = 4
	if s.PredictionRate() != 0.4 {
		t.Errorf("rate = %v", s.PredictionRate())
	}
}

func TestClampPrediction(t *testing.T) {
	if clampPrediction(query.Count, -5) != 0 {
		t.Error("negative count not clamped")
	}
	if clampPrediction(query.Corr, 2) != 1 || clampPrediction(query.Corr, -2) != -1 {
		t.Error("correlation not clamped to [-1,1]")
	}
	if clampPrediction(query.Avg, -5) != -5 {
		t.Error("avg should pass through")
	}
}
