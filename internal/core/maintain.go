package core

import (
	"fmt"
	"math"

	"repro/internal/query"
)

// This file is the live-data-plane half of model maintenance (RT1.4):
// instead of the legacy "any data-version change puts every model on
// probation", an agent with Config.DriftRowBudget > 0 absorbs streamed
// row batches incrementally:
//
//   - Each ingested row is attributed to its nearest query quantum (or
//     counted as unattributed when it falls outside the learned
//     coverage — a signal that the data is drifting away from the
//     models entirely).
//
//   - Additive aggregates (COUNT, SUM) are updated in place: the
//     model's recent exact-path queries are replayed against the fresh
//     batch, whose delta contribution to each remembered selection is
//     exactly computable, and the corrected answers are folded back
//     into the RLS state. Those models keep predicting through ingest
//     without ever touching the oracle.
//
//   - Non-additive models (AVG, VAR, CORR, SLOPE) tolerate up to
//     DriftRowBudget fresh rows per quantum; past that the quantum's
//     models enter probation and must re-earn trust on fresh exact
//     answers — surgical, per-quantum invalidation instead of a
//     cluster-wide model wipe.
//
//   - Rebuild is the heavyweight response to sustained drift: a shadow
//     agent re-quantises from scratch in the background while the live
//     agent keeps serving, then the learned state swaps in with one
//     brief write-locked Restore (double buffering: reads never block
//     on retraining).

// AbsorbResult reports what one AbsorbRows call did.
type AbsorbResult struct {
	// Attributed is how many rows landed inside a quantum's coverage.
	Attributed int
	// Unattributed is how many rows fell outside every quantum — drift
	// away from the learned query space.
	Unattributed int
	// UpdatedModels is how many (model, remembered query) pairs were
	// incrementally refreshed in place.
	UpdatedModels int
	// InvalidatedQuanta is how many quanta exhausted their drift budget
	// and had their non-additive models put on probation.
	InvalidatedQuanta int
}

// DriftStatus is the agent's lifetime ingest/drift accounting, polled
// by maintenance loops to decide when a background rebuild is due.
type DriftStatus struct {
	// Absorbed is the total rows passed through AbsorbRows.
	Absorbed int64 `json:"absorbed"`
	// Unattributed is how many of those fell outside every quantum.
	Unattributed int64 `json:"unattributed"`
	// InvalidatedQuanta counts drift-budget invalidation events.
	InvalidatedQuanta int64 `json:"invalidated_quanta"`
	// UpdatedModels counts incremental in-place model refreshes.
	UpdatedModels int64 `json:"updated_models"`
	// Rebuilds counts completed background re-quantisations.
	Rebuilds int64 `json:"rebuilds"`
	// PendingQuanta is how many quanta currently carry fresh rows their
	// models have not been refreshed against.
	PendingQuanta int `json:"pending_quanta"`
}

// incremental reports whether the agent maintains its models
// incrementally under ingest (vs legacy wholesale invalidation).
func (a *Agent) incremental() bool { return a.cfg.DriftRowBudget > 0 }

// AbsorbRows folds one ingested row batch into the agent's maintenance
// state and advances its data version to version (0 keeps the current
// one). Rows are full attribute vectors; the first Config.Dims columns
// locate the row in the quantised space.
//
// Without incremental maintenance configured this degrades to the
// legacy behaviour: every model goes on probation, exactly as a
// detected version change would.
func (a *Agent) AbsorbRows(version int64, rows [][]float64) AbsorbResult {
	var res AbsorbResult
	a.mu.Lock()
	defer a.mu.Unlock()
	if version != 0 {
		a.dataVer.Store(version)
	}
	if len(rows) == 0 {
		return res
	}
	a.driftAbsorbed += int64(len(rows))
	if !a.incremental() {
		a.invalidate(nil)
		res.Unattributed = len(rows)
		a.driftUnattributed += int64(len(rows))
		return res
	}

	// Attribute each row to its nearest quantum by data-space centre.
	protos := a.quantizer.Prototypes()
	byQuantum := make(map[int]int)
	for _, r := range rows {
		q, d2 := nearestCentre(protos, r, a.cfg.Dims)
		if q < 0 || (a.cfg.SpawnDistance > 0 && d2 > a.cfg.SpawnDistance) {
			res.Unattributed++
			continue
		}
		res.Attributed++
		byQuantum[q]++
	}

	// Incremental refresh of additive models: replay each affected
	// model's remembered exact-path queries against the fresh batch.
	// The batch's delta contribution to each remembered selection is
	// exactly computable, so the observed growth ratios advance the
	// model's answer-space growth correction — a strong update a mature
	// (low-gain) RLS could not absorb from single observations. Exact
	// answers later re-anchor the correction against the raw model.
	for k, ms := range a.models {
		if !additive(k.agg) {
			continue
		}
		for q := range byQuantum {
			if q >= len(ms) || ms[q] == nil || ms[q].n == 0 {
				continue
			}
			m := ms[q]
			var ratioSum float64
			var ratios int
			for _, obs := range m.recent {
				var delta float64
				// Selections may reach past the quantum boundary, so the
				// delta scans the whole batch, not just attributed rows.
				for _, r := range rows {
					if !obs.sel.Contains(r) {
						continue
					}
					if k.agg == query.Count {
						delta++
					} else if k.col < len(r) {
						delta += r[k.col]
					}
				}
				cur := m.correct(k.agg, invTransform(k.agg, m.rls.Predict(obs.feat)))
				if cur > 1 && cur+delta > 0 {
					ratioSum += (cur + delta) / cur
					ratios++
				}
			}
			if ratios == 0 {
				continue
			}
			g := m.growthFactor() * (ratioSum / float64(ratios))
			m.growth = clampGrowth(g)
			res.UpdatedModels++
		}
	}

	// Drift budget: a quantum that has absorbed more fresh rows than
	// the budget invalidates its non-incremental models so they re-earn
	// trust on fresh exact answers. Incrementally-maintained additive
	// models stay trusted but take a one-shot truth re-anchor (a single
	// forced fallback): in-place updates track growth relative to the
	// model's own predictions, so without a periodic exact observation
	// their absolute error could drift unobserved.
	for q, n := range byQuantum {
		wasBelow := a.freshRows[q] < a.cfg.DriftRowBudget
		a.freshRows[q] += n
		// freshRows is the staleness clock: it keeps growing until the
		// quantum next sees ground truth (an exact answer resets it in
		// answerSlow), so predicted answers report their real staleness
		// even past the budget. Invalidation fires once per crossing.
		if !wasBelow || a.freshRows[q] < a.cfg.DriftRowBudget {
			continue
		}
		res.InvalidatedQuanta++
		for k, ms := range a.models {
			if q >= len(ms) || ms[q] == nil {
				continue
			}
			m := ms[q]
			if (k.agg == query.Count || k.agg == query.Sum) && len(m.recent) > 0 {
				if m.probation == 0 {
					m.probation = 1 // re-anchor on the next exact answer
				}
				continue
			}
			m.probation = a.cfg.ProbationSupport
			m.residPos = 0
			m.residFull = false
			m.refreshEst()
		}
	}

	a.driftUnattributed += int64(res.Unattributed)
	a.driftInvalidations += int64(res.InvalidatedQuanta)
	a.driftUpdated += int64(res.UpdatedModels)
	return res
}

// Drift returns the agent's lifetime ingest/drift accounting.
func (a *Agent) Drift() DriftStatus {
	a.mu.RLock()
	defer a.mu.RUnlock()
	pending := 0
	for _, n := range a.freshRows {
		if n > 0 {
			pending++
		}
	}
	return DriftStatus{
		Absorbed:          a.driftAbsorbed,
		Unattributed:      a.driftUnattributed,
		InvalidatedQuanta: a.driftInvalidations,
		UpdatedModels:     a.driftUpdated,
		Rebuilds:          a.driftRebuilds,
		PendingQuanta:     pending,
	}
}

// Rebuild re-quantises the agent in the background: a shadow agent is
// trained from scratch on the supplied (typically recent) queries
// against the same oracle, then its learned state swaps in with one
// brief write-locked Restore. The live agent keeps serving reads for
// the whole retrain — the double-buffered maintenance swap of RT1.4.
// Lifetime stats are preserved across the swap.
//
// The shadow calls the oracle concurrently with live serving, so
// Rebuild requires a thread-safe oracle (the distributed scatter-gather
// oracle is; the single-threaded simulator oracles are not).
func (a *Agent) Rebuild(queries []query.Query) error {
	a.mu.RLock()
	oracle, cfg := a.oracle, a.cfg
	a.mu.RUnlock()
	if oracle == nil {
		return ErrNoOracle
	}
	if len(queries) == 0 {
		return fmt.Errorf("core: rebuild needs a non-empty query sample")
	}
	shadowCfg := cfg
	// Train the quantiser on the first half of the sample, then let the
	// second half mature the per-quantum error estimates.
	shadowCfg.TrainingQueries = len(queries) / 2
	shadow, err := NewAgent(oracle, shadowCfg)
	if err != nil {
		return err
	}
	for _, q := range queries {
		if _, err := shadow.Answer(q); err != nil {
			return fmt.Errorf("core: rebuild: %w", err)
		}
	}
	snap := shadow.Snapshot()
	snap.Config = cfg
	snap.Stats = a.Stats()
	snap.DataVersion = oracle.DataVersion()
	if err := a.Restore(snap); err != nil {
		return err
	}
	a.mu.Lock()
	a.driftRebuilds++
	a.mu.Unlock()
	return nil
}

// clampGrowth bounds the growth correction: a factor outside this range
// means the remembered queries no longer describe the quantum (the
// drift budget and probation handle that case instead).
func clampGrowth(g float64) float64 {
	if g < 0.1 {
		return 0.1
	}
	if g > 50 {
		return 50
	}
	return g
}

// reanchorGrowth re-estimates the growth correction from one exact
// answer: growth tracks truth/raw as an EWMA, so batch-advanced
// corrections converge back onto the (slowly learning) RLS weights
// every time the truth is observed.
func (m *quantumModel) reanchorGrowth(raw, truth float64) {
	if raw <= 1 || truth <= 0 {
		return
	}
	m.growth = clampGrowth(0.3*m.growthFactor() + 0.7*(truth/raw))
}

// nearestCentre finds the prototype whose data-space centre (first dims
// coordinates) is closest to the row vector.
func nearestCentre(protos [][]float64, row []float64, dims int) (int, float64) {
	best, bestD := -1, math.MaxFloat64
	for i, p := range protos {
		var d2 float64
		for j := 0; j < dims && j < len(p) && j < len(row); j++ {
			d := row[j] - p[j]
			d2 += d * d
		}
		if d2 < bestD {
			best, bestD = i, d2
		}
	}
	return best, bestD
}
