// Package chaos injects controlled faults into inter-node HTTP
// traffic so the resilience layer can be exercised deterministically:
// added latency with jitter, injected error responses, connection
// resets, full partitions (blackholes) and slow-drip response bodies.
//
// A Fault holds a rule set and plugs into an http.Client as a
// Transport wrapper. Disabled cost is one atomic load per request —
// the production path pays nothing until an operator (or a test)
// installs rules, typically via POST /v1/debug/chaos.
//
// Rule grammar: each rule targets a peer (host substring, "" = every
// peer) and an endpoint (URL path prefix, "" = every path). The first
// matching rule applies; later rules are not consulted. Within a rule
// the effects compose in a fixed order: blackhole (request never
// arrives — the caller blocks until its own deadline), then latency ±
// jitter, then connection reset, then injected HTTP 500, then the
// slow-drip body wrapper on an otherwise-real response.
package chaos

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Rule is one fault-injection directive.
type Rule struct {
	// Peer selects target peers by substring match on the request's
	// host:port (empty = every peer). Scheme prefixes are ignored, so
	// a node URL like "http://127.0.0.1:4071" works verbatim.
	Peer string `json:"peer,omitempty"`
	// Endpoint selects target endpoints by URL path prefix (empty =
	// every endpoint), e.g. "/v1/partials".
	Endpoint string `json:"endpoint,omitempty"`
	// LatencyMS delays matching requests; JitterMS adds a uniform
	// random extra in [0, JitterMS).
	LatencyMS int `json:"latency_ms,omitempty"`
	JitterMS  int `json:"jitter_ms,omitempty"`
	// ErrorRate is the fraction [0,1] of matching requests answered
	// with an injected HTTP 500 instead of reaching the peer.
	ErrorRate float64 `json:"error_rate,omitempty"`
	// ResetRate is the fraction [0,1] of matching requests that fail
	// with a transport-level connection reset.
	ResetRate float64 `json:"reset_rate,omitempty"`
	// Blackhole drops matching requests entirely: the caller blocks
	// until its own context deadline, exactly like a network partition.
	Blackhole bool `json:"blackhole,omitempty"`
	// DripMS slows the response body to a drip: every Read of the body
	// sleeps this many milliseconds first.
	DripMS int `json:"drip_ms,omitempty"`
}

// matches reports whether the rule applies to host/path.
func (r Rule) matches(host, path string) bool {
	if r.Peer != "" {
		p := strings.TrimPrefix(strings.TrimPrefix(r.Peer, "http://"), "https://")
		p = strings.TrimSuffix(p, "/")
		if !strings.Contains(host, p) {
			return false
		}
	}
	return r.Endpoint == "" || strings.HasPrefix(path, r.Endpoint)
}

// Stats counts the faults a Fault has injected since creation.
type Stats struct {
	Delayed     int64 `json:"delayed"`
	Errored     int64 `json:"errored"`
	Reset       int64 `json:"reset"`
	Blackholed  int64 `json:"blackholed"`
	Dripped     int64 `json:"dripped"`
	Passthrough int64 `json:"passthrough"`
}

// Fault is a togglable rule set. The zero value is ready to use and
// disabled; Set arms it, Clear disarms it.
type Fault struct {
	enabled atomic.Bool
	mu      sync.RWMutex
	rules   []Rule

	delayed     atomic.Int64
	errored     atomic.Int64
	reset       atomic.Int64
	blackholed  atomic.Int64
	dripped     atomic.Int64
	passthrough atomic.Int64
}

// New returns a disabled Fault.
func New() *Fault { return &Fault{} }

// Set installs rules and arms the fault (an empty set disarms it).
func (f *Fault) Set(rules []Rule) {
	f.mu.Lock()
	f.rules = append([]Rule(nil), rules...)
	f.mu.Unlock()
	f.enabled.Store(len(rules) > 0)
}

// Clear removes every rule and disarms the fault.
func (f *Fault) Clear() { f.Set(nil) }

// Enabled reports whether any rules are armed.
func (f *Fault) Enabled() bool { return f.enabled.Load() }

// Rules returns a copy of the armed rule set.
func (f *Fault) Rules() []Rule {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return append([]Rule(nil), f.rules...)
}

// Stats returns the injected-fault counters.
func (f *Fault) Stats() Stats {
	return Stats{
		Delayed:     f.delayed.Load(),
		Errored:     f.errored.Load(),
		Reset:       f.reset.Load(),
		Blackholed:  f.blackholed.Load(),
		Dripped:     f.dripped.Load(),
		Passthrough: f.passthrough.Load(),
	}
}

// match returns the first armed rule applying to host/path.
func (f *Fault) match(host, path string) (Rule, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	for _, r := range f.rules {
		if r.matches(host, path) {
			return r, true
		}
	}
	return Rule{}, false
}

// ErrReset is the transport-level error an injected connection reset
// surfaces (mirrors a peer's RST mid-exchange).
type errReset struct{ host string }

func (e errReset) Error() string { return "chaos: connection reset by " + e.host }

// Transport wraps a base RoundTripper with fault injection. Base may
// be nil (http.DefaultTransport). With a nil or disabled Fault the
// wrapper costs one nil check plus one atomic load per request.
type Transport struct {
	Base http.RoundTripper
	F    *Fault
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	if t.F == nil || !t.F.enabled.Load() {
		return base.RoundTrip(req)
	}
	rule, ok := t.F.match(req.URL.Host, req.URL.Path)
	if !ok {
		t.F.passthrough.Add(1)
		return base.RoundTrip(req)
	}
	ctx := req.Context()
	if rule.Blackhole {
		t.F.blackholed.Add(1)
		// A partitioned peer never answers: burn the caller's whole
		// budget, exactly like dropped packets would.
		closeReq(req)
		<-ctx.Done()
		return nil, fmt.Errorf("chaos: blackhole to %s: %w", req.URL.Host, ctx.Err())
	}
	if d := ruleDelay(rule); d > 0 {
		t.F.delayed.Add(1)
		if err := sleepCtx(ctx, d); err != nil {
			closeReq(req)
			return nil, fmt.Errorf("chaos: delayed to death: %w", err)
		}
	}
	if rule.ResetRate > 0 && rand.Float64() < rule.ResetRate {
		t.F.reset.Add(1)
		closeReq(req)
		return nil, errReset{host: req.URL.Host}
	}
	if rule.ErrorRate > 0 && rand.Float64() < rule.ErrorRate {
		t.F.errored.Add(1)
		closeReq(req)
		return injectedError(req), nil
	}
	resp, err := base.RoundTrip(req)
	if err == nil && rule.DripMS > 0 {
		t.F.dripped.Add(1)
		resp.Body = &dripBody{rc: resp.Body, delay: time.Duration(rule.DripMS) * time.Millisecond, ctx: ctx}
	}
	return resp, err
}

// ruleDelay computes latency ± jitter for one request.
func ruleDelay(r Rule) time.Duration {
	d := time.Duration(r.LatencyMS) * time.Millisecond
	if r.JitterMS > 0 {
		d += time.Duration(rand.Int64N(int64(r.JitterMS))) * time.Millisecond
	}
	return d
}

// sleepCtx sleeps d or returns the context's error, whichever first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	tm := time.NewTimer(d)
	defer tm.Stop()
	select {
	case <-tm.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// closeReq honours the RoundTripper contract: the request body must be
// closed even when the request never reaches a real transport.
func closeReq(req *http.Request) {
	if req.Body != nil {
		_ = req.Body.Close()
	}
}

// injectedError fabricates the HTTP 500 a misbehaving-but-reachable
// peer would return.
func injectedError(req *http.Request) *http.Response {
	const body = `{"error":"chaos: injected error"}` + "\n"
	h := make(http.Header, 1)
	h.Set("Content-Type", "application/json")
	return &http.Response{
		Status:        "500 chaos injected",
		StatusCode:    http.StatusInternalServerError,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// dripBody delivers an underlying body one delayed Read at a time.
type dripBody struct {
	rc    io.ReadCloser
	delay time.Duration
	ctx   context.Context
}

func (d *dripBody) Read(p []byte) (int, error) {
	if err := sleepCtx(d.ctx, d.delay); err != nil {
		return 0, err
	}
	// Cap the chunk so large bodies take many delayed reads — that is
	// the point of a drip.
	if len(p) > 512 {
		p = p[:512]
	}
	return d.rc.Read(p)
}

func (d *dripBody) Close() error { return d.rc.Close() }
