package chaos

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// get issues one GET through a chaos Transport against the test server.
func get(t *testing.T, hc *http.Client, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return hc.Do(req)
}

func TestRuleMatchingFirstWins(t *testing.T) {
	f := New()
	f.Set([]Rule{
		{Peer: "127.0.0.1", Endpoint: "/v1/partials", ErrorRate: 1},
		{Endpoint: "/v1/partials", LatencyMS: 1}, // shadowed by the first rule
	})
	r, ok := f.match("127.0.0.1:4071", "/v1/partials")
	if !ok || r.ErrorRate != 1 {
		t.Fatalf("first rule should win: got %+v ok=%v", r, ok)
	}
	// Scheme-prefixed peer selectors (node base URLs pasted verbatim)
	// must match the bare host:port the request carries.
	f.Set([]Rule{{Peer: "http://127.0.0.1:4071/", ErrorRate: 1}})
	if _, ok := f.match("127.0.0.1:4071", "/healthz"); !ok {
		t.Fatal("URL-shaped peer selector did not match its host")
	}
	if _, ok := f.match("10.0.0.9:4071", "/healthz"); ok {
		t.Fatal("peer selector matched a different host")
	}
	// Endpoint is a path prefix, not a substring.
	f.Set([]Rule{{Endpoint: "/v1/partials"}})
	if _, ok := f.match("h", "/v2/v1/partials"); ok {
		t.Fatal("endpoint prefix matched mid-path")
	}
}

func TestInjectedErrorAndStats(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "real")
	}))
	defer srv.Close()
	f := New()
	hc := &http.Client{Transport: &Transport{F: f}}

	// Disabled: everything passes through untouched, nothing counted.
	resp, err := get(t, hc, srv.URL+"/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "real" {
		t.Fatalf("disabled fault altered the response: %q", body)
	}
	if st := f.Stats(); st != (Stats{}) {
		t.Fatalf("disabled fault counted something: %+v", st)
	}

	// ErrorRate 1: every request answers with the injected 500.
	f.Set([]Rule{{ErrorRate: 1}})
	resp, err = get(t, hc, srv.URL+"/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("injected status = %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(string(body), "chaos") {
		t.Fatalf("injected body %q does not name chaos", body)
	}
	if st := f.Stats(); st.Errored != 1 {
		t.Fatalf("errored count = %d, want 1", st.Errored)
	}

	// Clear disarms: back to the real response.
	f.Clear()
	if f.Enabled() {
		t.Fatal("Clear left the fault enabled")
	}
	resp, err = get(t, hc, srv.URL+"/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cleared fault still injecting: %d", resp.StatusCode)
	}
}

func TestLatencyDelaysRequest(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	f := New()
	f.Set([]Rule{{LatencyMS: 30}})
	hc := &http.Client{Transport: &Transport{F: f}}
	start := time.Now()
	resp, err := get(t, hc, srv.URL+"/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("request returned in %v, want >= 30ms injected latency", d)
	}
	if st := f.Stats(); st.Delayed != 1 {
		t.Fatalf("delayed count = %d, want 1", st.Delayed)
	}
}

func TestBlackholeBlocksUntilCallerDeadline(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("blackholed request reached the server")
	}))
	defer srv.Close()
	f := New()
	f.Set([]Rule{{Blackhole: true}})
	hc := &http.Client{Transport: &Transport{F: f}}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := hc.Do(req); err == nil {
		t.Fatal("blackholed request succeeded")
	} else if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blackhole error = %v, want the caller's deadline", err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("blackhole returned in %v, before the caller's deadline", d)
	}
	if st := f.Stats(); st.Blackholed != 1 {
		t.Fatalf("blackholed count = %d, want 1", st.Blackholed)
	}
}

func TestDripBodySlowsReads(t *testing.T) {
	payload := strings.Repeat("x", 2048) // > 4 drip chunks of 512 bytes
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer srv.Close()
	f := New()
	f.Set([]Rule{{DripMS: 5}})
	hc := &http.Client{Transport: &Transport{F: f}}
	resp, err := get(t, hc, srv.URL+"/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	start := time.Now()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != payload {
		t.Fatalf("dripped body corrupted: %d bytes", len(body))
	}
	// 2048 bytes at <=512/read is at least 4 reads of >=5ms each.
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("dripped 2048 bytes in %v, want >= 20ms", d)
	}
	if st := f.Stats(); st.Dripped != 1 {
		t.Fatalf("dripped count = %d, want 1", st.Dripped)
	}
}

// TestConcurrentToggleAndTraffic races runtime rule toggles (the
// POST /v1/debug/chaos path) against in-flight requests — the -race
// contract of the interceptor.
func TestConcurrentToggleAndTraffic(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	f := New()
	hc := &http.Client{Transport: &Transport{F: f}}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(100 * time.Microsecond):
			}
			if i%2 == 0 {
				f.Set([]Rule{{Endpoint: "/v1/partials", ErrorRate: 0.5}})
			} else {
				f.Clear()
			}
		}
	}()
	for i := 0; i < 200; i++ {
		resp, err := get(t, hc, srv.URL+"/v1/query")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("untargeted endpoint got injected fault: %d", resp.StatusCode)
		}
	}
	close(stop)
	wg.Wait()
}
