package flight

// detector scores one watched series with a robust rolling z-score:
// the deviation of the newest input from the window median, scaled by
// the median absolute deviation (MAD). Median/MAD resist the very
// outliers the detector hunts, where mean/stddev would absorb them.
// Counters are differentiated first (rate-of-change), with a negative
// delta treated as a counter reset on restart — the post-reset reading
// becomes the rate, never a huge negative spike.
//
// All state is touched only by the sampler goroutine, and scoring
// sorts a preallocated scratch slice in place: zero allocations at
// steady state.
type detector struct {
	kind Kind
	z    float64 // firing threshold

	win     []float64 // rolling inputs, ring-indexed
	scratch []float64
	n       int // filled entries
	idx     int // next write slot

	prev     float64 // last cumulative value (counters)
	havePrev bool

	quietUntil int64 // tick before which re-firing is suppressed
}

func newDetector(kind Kind, window int, z float64) *detector {
	return &detector{
		kind:    kind,
		z:       z,
		win:     make([]float64, window),
		scratch: make([]float64, window),
	}
}

// feed scores one sample at the given tick. It returns whether the
// detector fired, plus the scored input, window median and robust z.
// The input joins the window after scoring, so a spike cannot vouch
// for itself; after a firing the detector stays quiet for one window
// so a sustained excursion raises one anomaly, not one per tick.
func (d *detector) feed(v float64, tick int64) (fired bool, x, med, z float64) {
	x = v
	if d.kind == Counter {
		if !d.havePrev {
			d.prev, d.havePrev = v, true
			return false, 0, 0, 0
		}
		x = v - d.prev
		if x < 0 {
			// Counter reset (process restart): the new cumulative value
			// IS the activity since the reset.
			x = v
		}
		d.prev = v
	}
	if d.n == len(d.win) {
		med, mad := d.medMAD()
		// MAD floors: an all-but-constant window (idle series, quantised
		// latencies) would otherwise make any change look infinitely
		// anomalous. Scale the floor to the median so the epsilon is
		// meaningful for ns-scale latencies and 0..1 rates alike.
		floor := 0.05 * abs(med)
		if floor < 1e-9 {
			floor = 1e-9
		}
		if mad < floor {
			mad = floor
		}
		// 0.6745 rescales MAD to a stddev-equivalent under normality.
		z = 0.6745 * (x - med) / mad
		if z > d.z && tick >= d.quietUntil {
			fired = true
			d.quietUntil = tick + int64(len(d.win))
		}
	}
	d.win[d.idx] = x
	d.idx = (d.idx + 1) % len(d.win)
	if d.n < len(d.win) {
		d.n++
	}
	return fired, x, med, z
}

// medMAD computes the window median and median absolute deviation with
// two in-place insertion sorts over scratch (windows are tens of
// entries; no allocation, no sort.Float64s interface boxing).
func (d *detector) medMAD() (med, mad float64) {
	s := d.scratch[:d.n]
	copy(s, d.win[:d.n])
	insertionSort(s)
	med = s[d.n/2]
	for i := range s {
		s[i] = abs(s[i] - med)
	}
	insertionSort(s)
	return med, s[d.n/2]
}

func insertionSort(s []float64) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
