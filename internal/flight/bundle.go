package flight

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/trace"
)

// TriggerInfo describes the most recent bundle capture.
type TriggerInfo struct {
	Kind     string `json:"kind"`
	Detail   string `json:"detail"`
	AtUnixMs int64  `json:"at_unix_ms"`
	Bundle   string `json:"bundle"`
}

// trigger raises one trigger on the tick clock. A single cooldown
// spans all trigger kinds — when an overload fires both the SLO gate
// and the anomaly detector, the operator wants one bundle of the
// incident, not one per signal — and doubles as the single-flight
// guard (captures run far shorter than any sane cooldown). Suppressed
// firings are counted, not lost silently.
func (r *Recorder) trigger(kind, detail string, now time.Time) {
	if r.cfg.SpoolDir == "" {
		return
	}
	last := r.lastCapture.Load()
	if last != 0 && now.UnixNano()-last < int64(r.cfg.Cooldown) {
		r.suppressed.Add(1)
		return
	}
	if !r.lastCapture.CompareAndSwap(last, now.UnixNano()) {
		r.suppressed.Add(1)
		return
	}
	r.capWG.Add(1)
	go func() {
		defer r.capWG.Done()
		r.capture(kind, detail, now)
	}()
}

// capture writes one diagnostic bundle into the spool and evicts the
// oldest bundles beyond SpoolMax. Runs off the sample path; the tick
// clock keeps sampling while the CPU profile records.
func (r *Recorder) capture(kind, detail string, now time.Time) {
	name := fmt.Sprintf("bundle-%013d-%s", now.UnixMilli(), kind)
	dir := filepath.Join(r.cfg.SpoolDir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		r.cfg.Logger.Warn("flight bundle mkdir failed", "dir", dir, "err", err)
		return
	}

	writeJSON := func(file string, v any) {
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			data = []byte(fmt.Sprintf("{\"error\":%q}", err.Error()))
		}
		if err := os.WriteFile(filepath.Join(dir, file), data, 0o644); err != nil {
			r.cfg.Logger.Warn("flight bundle write failed", "file", file, "err", err)
		}
	}

	writeJSON("meta.json", map[string]any{
		"schema":      1,
		"node":        r.cfg.Node,
		"kind":        kind,
		"detail":      detail,
		"at_unix_ms":  now.UnixMilli(),
		"cooldown_ms": r.cfg.Cooldown.Milliseconds(),
	})

	// Goroutine dump: debug=2 prints full stacks with states — the
	// first thing anyone reads when a node wedges.
	if f, err := os.Create(filepath.Join(dir, "goroutines.txt")); err == nil {
		_ = pprof.Lookup("goroutine").WriteTo(f, 2)
		_ = f.Close()
	}

	// Short CPU profile. StartCPUProfile fails when another profile is
	// already running (e.g. the operator got there first); keep the
	// bundle complete by recording why instead of an empty file.
	if f, err := os.Create(filepath.Join(dir, "cpu.pprof")); err == nil {
		if perr := pprof.StartCPUProfile(f); perr != nil {
			_, _ = fmt.Fprintf(f, "cpu profile unavailable: %v\n", perr)
		} else {
			time.Sleep(r.cfg.CPUProfile)
			pprof.StopCPUProfile()
		}
		_ = f.Close()
	}

	if f, err := os.Create(filepath.Join(dir, "heap.pprof")); err == nil {
		_ = pprof.WriteHeapProfile(f)
		_ = f.Close()
	}

	// Trace rings: the recent-trace ring plus the slow-query log, the
	// evidence trail behind the latency series.
	type traceDump struct {
		Recent []any             `json:"recent"`
		Slow   []trace.SlowEntry `json:"slow"`
	}
	td := traceDump{Recent: []any{}, Slow: []trace.SlowEntry{}}
	if r.cfg.TracerFn != nil {
		if t := r.cfg.TracerFn(); t != nil {
			ids := t.RecentIDs()
			if len(ids) > 16 {
				ids = ids[len(ids)-16:]
			}
			for _, id := range ids {
				if ws, ok := t.Get(id); ok {
					td.Recent = append(td.Recent, map[string]any{"trace_id": id, "root": ws})
				}
			}
			td.Slow = t.SlowLog()
			if td.Slow == nil {
				td.Slow = []trace.SlowEntry{}
			}
		}
	}
	writeJSON("traces.json", td)

	status := any(map[string]string{"status": "unavailable"})
	if r.cfg.StatusFn != nil {
		if v := r.cfg.StatusFn(); v != nil {
			status = v
		}
	}
	writeJSON("status.json", status)

	ti := TriggerInfo{Kind: kind, Detail: detail, AtUnixMs: now.UnixMilli(), Bundle: name}
	r.lastTrigger.Store(&ti)
	r.triggers.Add(1)
	r.cfg.Logger.Info("flight bundle captured",
		"bundle", name, "kind", kind, "detail", detail)
	r.evict()
}

// evict removes the oldest bundles beyond SpoolMax. Bundle names embed
// a fixed-width capture timestamp, so lexicographic order is age order.
func (r *Recorder) evict() {
	names := r.bundleNames()
	for len(names) > r.cfg.SpoolMax {
		victim := names[0]
		names = names[1:]
		if err := os.RemoveAll(filepath.Join(r.cfg.SpoolDir, victim)); err != nil {
			r.cfg.Logger.Warn("flight spool evict failed", "bundle", victim, "err", err)
			return
		}
		r.cfg.Logger.Info("flight spool evicted", "bundle", victim)
	}
}

func (r *Recorder) bundleNames() []string {
	entries, err := os.ReadDir(r.cfg.SpoolDir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "bundle-") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

// BundleInfo describes one spooled bundle.
type BundleInfo struct {
	ID       string   `json:"id"`
	Kind     string   `json:"kind"`
	AtUnixMs int64    `json:"at_unix_ms"`
	Bytes    int64    `json:"bytes"`
	Files    []string `json:"files"`
}

// Bundles lists the spool, oldest first.
func (r *Recorder) Bundles() []BundleInfo {
	if r == nil || r.cfg.SpoolDir == "" {
		return nil
	}
	var out []BundleInfo
	for _, name := range r.bundleNames() {
		info := BundleInfo{ID: name}
		// bundle-<ms13>-<kind>
		if rest, ok := strings.CutPrefix(name, "bundle-"); ok {
			if ms, kind, ok := strings.Cut(rest, "-"); ok {
				info.Kind = kind
				info.AtUnixMs, _ = strconv.ParseInt(ms, 10, 64)
			}
		}
		files, err := os.ReadDir(filepath.Join(r.cfg.SpoolDir, name))
		if err != nil {
			continue
		}
		for _, f := range files {
			if f.IsDir() {
				continue
			}
			info.Files = append(info.Files, f.Name())
			if fi, err := f.Info(); err == nil {
				info.Bytes += fi.Size()
			}
		}
		out = append(out, info)
	}
	return out
}

// BundleFile resolves one bundle member to its on-disk path,
// rejecting ids and names that could escape the spool.
func (r *Recorder) BundleFile(id, file string) (string, error) {
	if r == nil || r.cfg.SpoolDir == "" {
		return "", fmt.Errorf("flight: no spool configured")
	}
	if !strings.HasPrefix(id, "bundle-") || strings.ContainsAny(id, "/\\") ||
		file == "" || strings.ContainsAny(file, "/\\") || strings.Contains(file, "..") {
		return "", fmt.Errorf("flight: invalid bundle path %q/%q", id, file)
	}
	p := filepath.Join(r.cfg.SpoolDir, id, file)
	if _, err := os.Stat(p); err != nil {
		return "", fmt.Errorf("flight: bundle file not found: %w", err)
	}
	return p, nil
}
