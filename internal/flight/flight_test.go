package flight

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/metrics"
)

// clock is a synthetic tick clock: every call advances one period.
type clock struct {
	now    time.Time
	period time.Duration
}

func newClock(period time.Duration) *clock {
	return &clock{now: time.Unix(1_700_000_000, 0), period: period}
}

func (c *clock) tick(r *Recorder) time.Time {
	c.now = c.now.Add(c.period)
	r.Tick(c.now)
	return c.now
}

// TestRingWraparound drives a small hi-res ring past capacity and
// checks History replays exactly the retained window, in order.
func TestRingWraparound(t *testing.T) {
	r := New(Config{HiSlots: 8, LoSlots: 4})
	v := 0.0
	r.AddGauge("g", func() float64 { return v })
	ck := newClock(time.Second)
	for i := 1; i <= 20; i++ {
		v = float64(i)
		ck.tick(r)
	}
	h, ok := r.History("g", 0)
	if !ok {
		t.Fatal("series not found")
	}
	if len(h.Points) != 8 {
		t.Fatalf("got %d points after wraparound, want 8", len(h.Points))
	}
	for i, p := range h.Points {
		if want := float64(13 + i); p.V != want {
			t.Fatalf("point %d: v=%v, want %v", i, p.V, want)
		}
		if i > 0 && p.TUnixMs <= h.Points[i-1].TUnixMs {
			t.Fatalf("timestamps not increasing at %d: %v <= %v", i, p.TUnixMs, h.Points[i-1].TUnixMs)
		}
	}
}

// TestHistoryPartialWindow checks a half-filled ring and a trailing
// window narrower than the data.
func TestHistoryPartialWindow(t *testing.T) {
	r := New(Config{HiSlots: 8, LoSlots: 4})
	v := 0.0
	r.AddGauge("g", func() float64 { return v })
	ck := newClock(time.Second)
	for i := 1; i <= 5; i++ {
		v = float64(i)
		ck.tick(r)
	}
	h, _ := r.History("g", 0)
	if len(h.Points) != 5 {
		t.Fatalf("partial ring: got %d points, want 5", len(h.Points))
	}
	h, _ = r.History("g", 2*time.Second)
	if len(h.Points) != 3 { // lastT, lastT-1s, lastT-2s
		t.Fatalf("2s window: got %d points, want 3", len(h.Points))
	}
	if h.Points[0].V != 3 || h.Points[2].V != 5 {
		t.Fatalf("2s window replayed wrong values: %+v", h.Points)
	}
	if _, ok := r.History("nope", 0); ok {
		t.Fatal("unknown metric reported ok")
	}
}

// TestDownsampleSemantics checks the lo-res fold: gauges average the
// window, counters keep the last cumulative value, and wide windows
// select the downsampled resolution.
func TestDownsampleSemantics(t *testing.T) {
	r := New(Config{HiSlots: 8, LoSlots: 4, Downsample: 3})
	var g, c float64
	r.AddGauge("g", func() float64 { return g })
	r.AddCounter("c", func() float64 { return c })
	ck := newClock(time.Second)
	gauges := []float64{1, 2, 3, 4, 5, 6}
	counters := []float64{10, 20, 30, 40, 50, 60}
	for i := range gauges {
		g, c = gauges[i], counters[i]
		ck.tick(r)
	}
	wide := 10 * time.Second // > HiSlots*Period: forces the lo ring
	gh, _ := r.History("g", wide)
	if gh.Resolution != "3s" {
		t.Fatalf("lo-res resolution %q, want 3s", gh.Resolution)
	}
	if len(gh.Points) != 2 || gh.Points[0].V != 2 || gh.Points[1].V != 5 {
		t.Fatalf("gauge fold should average (want 2,5): %+v", gh.Points)
	}
	ch, _ := r.History("c", wide)
	if len(ch.Points) != 2 || ch.Points[0].V != 30 || ch.Points[1].V != 60 {
		t.Fatalf("counter fold should keep last cumulative (want 30,60): %+v", ch.Points)
	}
	hi, _ := r.History("g", 4*time.Second)
	if hi.Resolution != "1s" {
		t.Fatalf("narrow window should stay hi-res, got %q", hi.Resolution)
	}
}

// TestAnomalySpike checks the robust detector: a steady series absorbs
// jitter, a spike fires once, and the quiet period holds a sustained
// excursion to a single event.
func TestAnomalySpike(t *testing.T) {
	r := New(Config{Anomaly: true, AnomalyWindow: 10, AnomalyZ: 8})
	v := 0.0
	r.AddGauge("g", func() float64 { return v })
	r.Watch("g")
	ck := newClock(time.Second)
	for i := 0; i < 20; i++ {
		v = 100 + float64(i%3) // mild jitter
		ck.tick(r)
	}
	if got := r.Status().Anomalies; got != 0 {
		t.Fatalf("steady series fired %d anomalies", got)
	}
	v = 1000
	for i := 0; i < 5; i++ {
		ck.tick(r) // sustained spike inside one quiet window
	}
	evs := r.Anomalies()
	if len(evs) != 1 {
		t.Fatalf("spike fired %d anomalies, want exactly 1: %+v", len(evs), evs)
	}
	if evs[0].Metric != "g" || evs[0].Value != 1000 || evs[0].Z < 8 {
		t.Fatalf("bad anomaly event: %+v", evs[0])
	}
}

// TestCounterResetNoFalseAnomaly restarts a watched counter (cumulative
// value drops to near zero) and checks the detector reads the post-
// reset value as the new rate instead of a huge negative spike.
func TestCounterResetNoFalseAnomaly(t *testing.T) {
	r := New(Config{Anomaly: true, AnomalyWindow: 10, AnomalyZ: 8})
	v := 0.0
	r.AddCounter("c", func() float64 { return v })
	r.Watch("c")
	ck := newClock(time.Second)
	for i := 0; i < 20; i++ {
		v += 10 // steady 10/tick
		ck.tick(r)
	}
	v = 8 // restart: cumulative value resets, one tick's worth of activity
	ck.tick(r)
	for i := 0; i < 5; i++ {
		v += 10
		ck.tick(r)
	}
	if evs := r.Anomalies(); len(evs) != 0 {
		t.Fatalf("counter reset raised anomalies: %+v", evs)
	}
}

// TestTriggerCapturesBundle fires the SLO-critical trigger and checks
// the spooled bundle is complete: metadata, goroutine dump, CPU and
// heap profiles, trace rings and the status snapshot, all non-empty.
func TestTriggerCapturesBundle(t *testing.T) {
	spool := t.TempDir()
	critical := false
	r := New(Config{
		Node: "n-test", SpoolDir: spool, CPUProfile: 20 * time.Millisecond,
		CriticalFn: func() bool { return critical },
		StatusFn:   func() any { return map[string]string{"node": "n-test"} },
	})
	r.AddGauge("g", func() float64 { return 1 })
	ck := newClock(time.Second)
	ck.tick(r)
	critical = true
	ck.tick(r)
	r.Flush()

	bundles := r.Bundles()
	if len(bundles) != 1 {
		t.Fatalf("got %d bundles, want 1", len(bundles))
	}
	b := bundles[0]
	if b.Kind != "slo_critical" {
		t.Fatalf("bundle kind %q, want slo_critical", b.Kind)
	}
	for _, file := range []string{
		"meta.json", "goroutines.txt", "cpu.pprof", "heap.pprof",
		"traces.json", "status.json",
	} {
		p, err := r.BundleFile(b.ID, file)
		if err != nil {
			t.Fatalf("bundle missing %s: %v", file, err)
		}
		fi, err := os.Stat(p)
		if err != nil || fi.Size() == 0 {
			t.Fatalf("bundle file %s empty or unreadable (err=%v)", file, err)
		}
	}
	raw, err := os.ReadFile(filepath.Join(spool, b.ID, "meta.json"))
	if err != nil {
		t.Fatal(err)
	}
	var meta struct {
		Node string `json:"node"`
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(raw, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Node != "n-test" || meta.Kind != "slo_critical" {
		t.Fatalf("bad bundle metadata: %+v", meta)
	}
	st := r.Status()
	if st.Triggers != 1 || st.SpoolBundles != 1 || st.SpoolBytes == 0 ||
		st.LastTrigger == "" {
		t.Fatalf("status does not reflect the capture: %+v", st)
	}

	// Path traversal must not resolve.
	for _, bad := range [][2]string{
		{"../" + b.ID, "meta.json"}, {b.ID, "../meta.json"}, {b.ID, "a/b"},
	} {
		if _, err := r.BundleFile(bad[0], bad[1]); err == nil {
			t.Fatalf("BundleFile(%q, %q) resolved", bad[0], bad[1])
		}
	}
}

// TestTriggerCooldown holds the critical signal high across many ticks
// and checks exactly one bundle lands per cooldown window, with the
// suppressed firings counted; advancing the tick clock past the
// cooldown admits the next capture.
func TestTriggerCooldown(t *testing.T) {
	critical := true
	r := New(Config{
		SpoolDir: t.TempDir(), CPUProfile: time.Millisecond,
		Cooldown:   5 * time.Minute,
		CriticalFn: func() bool { return critical },
	})
	r.AddGauge("g", func() float64 { return 1 })
	ck := newClock(time.Second)
	for i := 0; i < 30; i++ {
		ck.tick(r)
	}
	r.Flush()
	if n := len(r.Bundles()); n != 1 {
		t.Fatalf("%d bundles inside one cooldown window, want 1", n)
	}
	if st := r.Status(); st.SuppressedTrigger == 0 {
		t.Fatalf("suppressed firings not counted: %+v", st)
	}

	ck.now = ck.now.Add(6 * time.Minute) // past the cooldown
	ck.tick(r)
	r.Flush()
	if n := len(r.Bundles()); n != 2 {
		t.Fatalf("%d bundles after cooldown expiry, want 2", n)
	}
}

// TestSpoolEviction overflows the spool and checks the oldest bundles
// leave first.
func TestSpoolEviction(t *testing.T) {
	critical := true
	r := New(Config{
		SpoolDir: t.TempDir(), SpoolMax: 2, CPUProfile: time.Millisecond,
		Cooldown:   time.Nanosecond,
		CriticalFn: func() bool { return critical },
	})
	r.AddGauge("g", func() float64 { return 1 })
	ck := newClock(time.Second)
	for i := 0; i < 5; i++ {
		ck.tick(r)
		r.Flush() // serialize captures so eviction order is deterministic
	}
	bundles := r.Bundles()
	if len(bundles) != 2 {
		t.Fatalf("spool holds %d bundles, want 2", len(bundles))
	}
	if bundles[0].AtUnixMs >= bundles[1].AtUnixMs {
		t.Fatalf("bundles out of age order: %+v", bundles)
	}
	// The two newest captures (ticks 4 and 5) must be the survivors.
	if want := ck.now.UnixMilli(); bundles[1].AtUnixMs != want {
		t.Fatalf("newest bundle at %d, want %d", bundles[1].AtUnixMs, want)
	}
}

// TestExemplarLinkage runs the instrumented latency path and checks the
// p99 history point carries the slowest traced query's id.
func TestExemplarLinkage(t *testing.T) {
	rec := metrics.NewServeRecorder(1024)
	r := New(Config{HiSlots: 8})
	r.Instrument(rec)
	rec.ObservePath(5*time.Millisecond, metrics.PathExactScatter)
	rec.ObservePath(9*time.Millisecond, metrics.PathExactScatter)
	r.NoteTraced(metrics.PathExactScatter, 5*time.Millisecond, "tr-fast")
	r.NoteTraced(metrics.PathExactScatter, 9*time.Millisecond, "tr-slow")
	ck := newClock(time.Second)
	ck.tick(r)
	for _, metric := range []string{"lat_p99_exact_scatter", "lat_p99_all"} {
		h, ok := r.History(metric, 0)
		if !ok || len(h.Points) == 0 {
			t.Fatalf("%s: no history", metric)
		}
		last := h.Points[len(h.Points)-1]
		if last.TraceID != "tr-slow" {
			t.Fatalf("%s: exemplar %q, want tr-slow", metric, last.TraceID)
		}
		if last.V <= 0 {
			t.Fatalf("%s: p99 not sampled: %+v", metric, last)
		}
	}
	// The harvest is per tick: the next window has no traced queries,
	// so its point carries no exemplar.
	ck.tick(r)
	h, _ := r.History("lat_p99_exact_scatter", 0)
	if last := h.Points[len(h.Points)-1]; last.TraceID != "" {
		t.Fatalf("stale exemplar leaked into next window: %+v", last)
	}
}
