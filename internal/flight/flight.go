// Package flight is the node's always-on flight recorder: it samples
// every registered counter, gauge and key histogram quantile into
// fixed-size per-series ring buffers at two resolutions (~10 min at
// 1 s, ~6 h at 30 s downsampled), runs robust anomaly detection over
// watched series, and — on an SLO-critical finding or an anomaly
// firing — captures a diagnostic bundle (goroutine dump, short CPU +
// heap profiles, trace rings, status snapshot) into a bounded on-disk
// spool. By the time an operator sees a spike, the evidence is already
// on disk and the ramp that led to it is queryable from /v1/history.
//
// The sample path follows the serving hot-path discipline: lock-free
// (ring slots and heads are atomics, the series list is an atomic
// pointer) and zero allocations at steady state — histogram quantiles
// come from preallocated scratch snapshots, detector windows sort in
// place, and every per-tick closure is built at wiring time.
package flight

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Kind classifies a series for downsampling and anomaly semantics:
// counters are cumulative (downsample keeps the last value, the
// detector differentiates first), gauges are instantaneous (downsample
// averages, the detector scores raw values).
type Kind uint8

const (
	Gauge Kind = iota
	Counter
)

func (k Kind) String() string {
	if k == Counter {
		return "counter"
	}
	return "gauge"
}

// Config sizes the recorder. Zero values take the documented defaults.
type Config struct {
	// Node names the member in bundle metadata and logs.
	Node string
	// Period is the hi-res sampling interval (default 1s).
	Period time.Duration
	// HiSlots is the hi-res ring size (default 600: ~10 min at 1s).
	HiSlots int
	// LoSlots is the downsampled ring size (default 720: ~6h at 30s).
	LoSlots int
	// Downsample is how many hi-res ticks fold into one lo-res point
	// (default 30).
	Downsample int

	// Anomaly arms the robust z-score detector over watched series.
	Anomaly bool
	// AnomalyWindow is the detector's rolling window in ticks
	// (default 60).
	AnomalyWindow int
	// AnomalyZ is the robust z-score firing threshold (default 8).
	AnomalyZ float64

	// SpoolDir is the diagnostic-bundle spool; empty disables capture.
	SpoolDir string
	// SpoolMax bounds the spool; oldest bundles evict first (default 8).
	SpoolMax int
	// Cooldown is the minimum spacing between captured bundles,
	// measured on the tick clock (default 5 min).
	Cooldown time.Duration
	// CPUProfile is the bundled CPU profile's duration (default 500ms).
	CPUProfile time.Duration

	// CriticalFn reports whether the node is in an SLO-critical state;
	// sampled every tick. Defaults to the instrumented recorder's SLO
	// engine worst-class state.
	CriticalFn func() bool
	// TracerFn supplies the tracer whose recent/slow rings bundles
	// include (may return nil).
	TracerFn func() *trace.Tracer
	// StatusFn supplies the status snapshot bundles include (the
	// /v1/status document); may be nil.
	StatusFn func() any
	// Logger receives capture/trigger log lines (nil-safe).
	Logger *obs.Logger
}

func (c Config) withDefaults() Config {
	if c.Period <= 0 {
		c.Period = time.Second
	}
	if c.HiSlots <= 0 {
		c.HiSlots = 600
	}
	if c.LoSlots <= 0 {
		c.LoSlots = 720
	}
	if c.Downsample <= 0 {
		c.Downsample = 30
	}
	if c.AnomalyWindow <= 1 {
		c.AnomalyWindow = 60
	}
	if c.AnomalyZ <= 0 {
		c.AnomalyZ = 8
	}
	if c.SpoolMax <= 0 {
		c.SpoolMax = 8
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Minute
	}
	if c.CPUProfile <= 0 {
		c.CPUProfile = 500 * time.Millisecond
	}
	return c
}

// ring is one fixed-size time series: parallel atomic slots for
// timestamps and float64 bit patterns, plus a monotone head counting
// total pushes. The single sampler goroutine writes; readers walk the
// logical window [head-n, head) lock-free. A reader racing the writer
// on the oldest slot may see that slot's next generation — acceptable
// for monitoring (each cell is individually atomic, never torn).
type ring struct {
	times []atomic.Int64  // unix ns
	vals  []atomic.Uint64 // math.Float64bits
	ids   []atomic.Pointer[string]
	head  atomic.Uint64
}

func newRing(n int, exemplars bool) *ring {
	r := &ring{times: make([]atomic.Int64, n), vals: make([]atomic.Uint64, n)}
	if exemplars {
		r.ids = make([]atomic.Pointer[string], n)
	}
	return r
}

func (r *ring) push(now int64, v float64, id *string) {
	slot := int(r.head.Load() % uint64(len(r.times)))
	r.times[slot].Store(now)
	r.vals[slot].Store(math.Float64bits(v))
	if r.ids != nil {
		r.ids[slot].Store(id)
	}
	r.head.Add(1)
}

// series is one recorded metric: a sampling closure feeding hi/lo
// rings, optional exemplar linkage, and optional detector state. The
// downsample accumulator and detector are touched only by the sampler
// goroutine.
type series struct {
	name string
	kind Kind
	fn   func() float64

	hi *ring
	lo *ring
	// exIdx indexes the recorder's per-tick exemplar harvest (the
	// serving path that produced the slowest traced query); -1 when
	// the series carries no exemplars.
	exIdx int

	acc  float64 // downsample accumulator (gauge: mean)
	accN int

	det *detector
}

// exSlot collects the slowest traced query per path since the last
// tick. finishQuery CASes the duration max and publishes the trace id.
type exSlot struct {
	durNs atomic.Int64
	id    atomic.Pointer[string]
}

// exemplar is one harvested (duration, trace id) pair.
type exemplar struct {
	durNs int64
	id    *string
}

// Recorder is the flight recorder. Build with New, register series
// (Instrument/AddGauge/AddCounter/Watch) at wiring time, then Start —
// or drive Tick from a synthetic clock in tests and experiments.
type Recorder struct {
	cfg Config

	regMu  sync.Mutex
	list   atomic.Pointer[[]*series]
	byName map[string]*series

	ticks   atomic.Int64
	dropped atomic.Int64

	// Per-path slowest-traced-query slots, harvested every tick into
	// exHarvest; index NumPaths holds the cross-path argmax for the
	// lat_p99_all series.
	exSlots   [metrics.NumPaths]exSlot
	exHarvest [metrics.NumPaths + 1]exemplar

	pretick []func() // histogram refreshes, run at tick start

	anomalyMu   sync.Mutex
	anomalyLog  []AnomalyEvent
	anomalies   atomic.Int64
	lastAnomaly atomic.Pointer[AnomalyEvent]

	// Trigger engine state (bundle.go).
	lastCapture atomic.Int64 // tick-clock unix ns of the last capture
	triggers    atomic.Int64
	suppressed  atomic.Int64
	lastTrigger atomic.Pointer[TriggerInfo]
	capWG       sync.WaitGroup

	stop chan struct{}
	done chan struct{}
}

// New builds a recorder. Register every series before Start; the
// sample path reads the series list through an atomic pointer and
// never locks.
func New(cfg Config) *Recorder {
	r := &Recorder{cfg: cfg.withDefaults(), byName: make(map[string]*series)}
	empty := make([]*series, 0)
	r.list.Store(&empty)
	return r
}

// Config returns the resolved configuration.
func (r *Recorder) Config() Config { return r.cfg }

func (r *Recorder) add(name string, kind Kind, exIdx int, fn func() float64) {
	r.regMu.Lock()
	defer r.regMu.Unlock()
	if _, dup := r.byName[name]; dup {
		return
	}
	s := &series{
		name:  name,
		kind:  kind,
		fn:    fn,
		hi:    newRing(r.cfg.HiSlots, exIdx >= 0),
		lo:    newRing(r.cfg.LoSlots, false),
		exIdx: exIdx,
	}
	r.byName[name] = s
	old := *r.list.Load()
	next := make([]*series, len(old)+1)
	copy(next, old)
	next[len(old)] = s
	r.list.Store(&next)
}

// AddGauge registers an instantaneous series sampled every tick. fn
// must be cheap, concurrency-safe and allocation-free.
func (r *Recorder) AddGauge(name string, fn func() float64) { r.add(name, Gauge, -1, fn) }

// AddCounter registers a cumulative series sampled every tick.
func (r *Recorder) AddCounter(name string, fn func() float64) { r.add(name, Counter, -1, fn) }

// Watch arms anomaly detection on named series (no-op for unknown
// names or when Config.Anomaly is off).
func (r *Recorder) Watch(names ...string) {
	if !r.cfg.Anomaly {
		return
	}
	r.regMu.Lock()
	defer r.regMu.Unlock()
	for _, name := range names {
		if s, ok := r.byName[name]; ok && s.det == nil {
			s.det = newDetector(s.kind, r.cfg.AnomalyWindow, r.cfg.AnomalyZ)
		}
	}
}

// histSource snapshots one path histogram per tick into preallocated
// scratch; quantiles are plain fields because only the sampler
// goroutine touches them (the rings are the cross-goroutine surface).
type histSource struct {
	h       *metrics.Histogram
	scratch metrics.HistSnapshot
	p50     float64
	p99     float64
}

func (hs *histSource) refresh() {
	hs.h.SnapshotInto(&hs.scratch)
	hs.p50 = float64(hs.scratch.Quantile(0.50))
	hs.p99 = float64(hs.scratch.Quantile(0.99))
}

// Instrument registers the full serving surface of rec: every
// cumulative counter, every registered gauge, per-path p50/p99 latency
// series (p99 with trace-id exemplars), the all-paths aggregate, the
// cache-hit rate, and — when an SLO engine is attached — the worst-
// class burn rates and state. If Config.CriticalFn is unset it is
// wired to rec's SLO engine here.
func (r *Recorder) Instrument(rec *metrics.ServeRecorder) {
	if rec == nil {
		return
	}
	for _, c := range rec.Counters() {
		fn := c.Fn
		r.AddCounter(c.Name, func() float64 { return float64(fn()) })
	}
	for _, g := range rec.Gauges() {
		r.AddGauge(g.Name, g.Fn)
	}
	r.AddGauge("cache_hit_rate", rec.CacheHitRate)

	sources := make([]*histSource, metrics.NumPaths)
	for p := metrics.Path(0); p < metrics.NumPaths; p++ {
		hs := &histSource{h: rec.PathHist(p)}
		sources[p] = hs
		r.pretick = append(r.pretick, hs.refresh)
		r.add("lat_p50_"+p.String(), Gauge, -1, func() float64 { return hs.p50 })
		r.add("lat_p99_"+p.String(), Gauge, int(p), func() float64 { return hs.p99 })
	}
	all := &histSource{}
	r.pretick = append(r.pretick, func() {
		all.scratch.Reset()
		for _, hs := range sources {
			all.scratch.Merge(hs.scratch)
		}
		all.p50 = float64(all.scratch.Quantile(0.50))
		all.p99 = float64(all.scratch.Quantile(0.99))
	})
	r.add("lat_p50_all", Gauge, -1, func() float64 { return all.p50 })
	r.add("lat_p99_all", Gauge, int(metrics.NumPaths), func() float64 { return all.p99 })

	r.AddGauge("slo_fast_burn", func() float64 { f, _ := rec.SLO().WorstBurn(); return f })
	r.AddGauge("slo_slow_burn", func() float64 { _, s := rec.SLO().WorstBurn(); return s })
	r.AddGauge("slo_state", func() float64 { return float64(rec.SLO().WorstState()) })
	if r.cfg.CriticalFn == nil {
		r.cfg.CriticalFn = func() bool { return rec.SLO().WorstState() == 2 }
	}
}

// NoteTraced records a traced query completion: the slowest traced
// query per path per tick becomes the exemplar on that tick's
// lat_p99_* history point. Nil-safe so the serving pool calls it
// unconditionally; the caller already pays tracing costs, so the
// occasional id-pointer publication here is off the untraced path.
func (r *Recorder) NoteTraced(p metrics.Path, d time.Duration, traceID string) {
	if r == nil || p >= metrics.NumPaths || traceID == "" {
		return
	}
	slot := &r.exSlots[p]
	ns := int64(d)
	for {
		cur := slot.durNs.Load()
		if ns <= cur {
			return
		}
		if slot.durNs.CompareAndSwap(cur, ns) {
			id := traceID
			slot.id.Store(&id)
			return
		}
	}
}

// Tick takes one sample of every series at the given instant, runs the
// detector over watched series, and evaluates the trigger engine.
// Exported so tests and experiments can drive the recorder with a
// synthetic clock; Start calls it on the wall clock. Single-threaded:
// only one goroutine may call Tick.
func (r *Recorder) Tick(now time.Time) {
	if r == nil {
		return
	}
	// Harvest per-path exemplars and pick the cross-path slowest for
	// the aggregate series.
	worst := &r.exHarvest[metrics.NumPaths]
	worst.durNs, worst.id = 0, nil
	for p := range r.exSlots {
		slot := &r.exSlots[p]
		h := &r.exHarvest[p]
		h.durNs = slot.durNs.Swap(0)
		h.id = slot.id.Swap(nil)
		if h.durNs > worst.durNs && h.id != nil {
			*worst = *h
		}
	}
	for _, fn := range r.pretick {
		fn()
	}
	tick := r.ticks.Add(1)
	fold := tick%int64(r.cfg.Downsample) == 0
	ns := now.UnixNano()
	for _, s := range *r.list.Load() {
		v := s.fn()
		var id *string
		if s.exIdx >= 0 {
			id = r.exHarvest[s.exIdx].id
		}
		s.hi.push(ns, v, id)
		s.acc += v
		s.accN++
		if fold {
			dv := v // counters keep the last cumulative value
			if s.kind == Gauge && s.accN > 0 {
				dv = s.acc / float64(s.accN)
			}
			s.lo.push(ns, dv, nil)
			s.acc, s.accN = 0, 0
		}
		if s.det != nil {
			if fired, x, med, z := s.det.feed(v, tick); fired {
				r.noteAnomaly(s.name, x, med, z, now)
			}
		}
	}
	if r.cfg.CriticalFn != nil && r.cfg.CriticalFn() {
		r.trigger("slo_critical", "worst tenant class burning at critical rate", now)
	}
}

// noteAnomaly records a detector firing and raises an anomaly trigger.
func (r *Recorder) noteAnomaly(name string, v, med, z float64, now time.Time) {
	ev := AnomalyEvent{Metric: name, Value: v, Median: med, Z: z, AtUnixMs: now.UnixMilli()}
	r.anomalies.Add(1)
	r.lastAnomaly.Store(&ev)
	r.anomalyMu.Lock()
	r.anomalyLog = append(r.anomalyLog, ev)
	if len(r.anomalyLog) > 32 {
		r.anomalyLog = append(r.anomalyLog[:0], r.anomalyLog[len(r.anomalyLog)-32:]...)
	}
	r.anomalyMu.Unlock()
	r.cfg.Logger.Warn("flight anomaly", "metric", name, "value", v, "median", med, "z", z)
	r.trigger("anomaly", fmt.Sprintf("%s=%g (median %g, z=%.1f)", name, v, med, z), now)
}

// AnomalyEvent is one detector firing.
type AnomalyEvent struct {
	Metric   string  `json:"metric"`
	Value    float64 `json:"value"`
	Median   float64 `json:"median"`
	Z        float64 `json:"z"`
	AtUnixMs int64   `json:"at_unix_ms"`
}

// Anomalies returns the recent detector firings, oldest first.
func (r *Recorder) Anomalies() []AnomalyEvent {
	if r == nil {
		return nil
	}
	r.anomalyMu.Lock()
	defer r.anomalyMu.Unlock()
	return append([]AnomalyEvent(nil), r.anomalyLog...)
}

// Start launches the background sampler at Config.Period, taking an
// immediate first sample so history is non-empty right after boot.
func (r *Recorder) Start() {
	if r == nil || r.stop != nil {
		return
	}
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	go func() {
		defer close(r.done)
		last := time.Now()
		r.Tick(last)
		tick := time.NewTicker(r.cfg.Period)
		defer tick.Stop()
		for {
			select {
			case now := <-tick.C:
				// A stalled process (GC, CPU starvation) makes the
				// ticker skip deliveries; account the gap as dropped
				// samples so the status plane shows the blind spot.
				if gap := now.Sub(last); gap > r.cfg.Period+r.cfg.Period/2 {
					r.dropped.Add(int64(gap/r.cfg.Period) - 1)
				}
				last = now
				r.Tick(now)
			case <-r.stop:
				return
			}
		}
	}()
}

// Stop terminates the sampler and waits for in-flight bundle captures
// (idempotent, nil-safe).
func (r *Recorder) Stop() {
	if r == nil || r.stop == nil {
		r.Flush()
		return
	}
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	<-r.done
	r.Flush()
}

// Flush waits for any in-flight bundle capture to finish.
func (r *Recorder) Flush() {
	if r == nil {
		return
	}
	r.capWG.Wait()
}

// Point is one history sample. TraceID, when present, names the
// slowest traced query of that sampling window — the exemplar an
// operator follows to /v1/debug/trace/<id>.
type Point struct {
	TUnixMs int64   `json:"t_unix_ms"`
	V       float64 `json:"v"`
	TraceID string  `json:"trace_id,omitempty"`
}

// History is one series' replay over a window.
type History struct {
	Metric     string  `json:"metric"`
	Kind       string  `json:"kind"`
	Resolution string  `json:"resolution"`
	Points     []Point `json:"points"`
}

// Metrics lists the registered series names (registration order).
func (r *Recorder) Metrics() []string {
	if r == nil {
		return nil
	}
	list := *r.list.Load()
	out := make([]string, len(list))
	for i, s := range list {
		out[i] = s.name
	}
	return out
}

// History replays one series over the trailing window, choosing the
// hi-res ring when it can cover the window and the downsampled ring
// otherwise. window <= 0 means "everything the chosen ring holds".
// Returns false for unknown metrics.
func (r *Recorder) History(metric string, window time.Duration) (History, bool) {
	if r == nil {
		return History{}, false
	}
	r.regMu.Lock()
	s, ok := r.byName[metric]
	r.regMu.Unlock()
	if !ok {
		return History{}, false
	}
	h := History{Metric: metric, Kind: s.kind.String()}
	rg := s.hi
	h.Resolution = r.cfg.Period.String()
	if window > time.Duration(r.cfg.HiSlots)*r.cfg.Period {
		rg = s.lo
		h.Resolution = (r.cfg.Period * time.Duration(r.cfg.Downsample)).String()
	}
	head := rg.head.Load()
	n := int(head)
	if n > len(rg.times) {
		n = len(rg.times)
	}
	if n == 0 {
		return h, true
	}
	lastT := rg.times[int((head-1)%uint64(len(rg.times)))].Load()
	cutoff := int64(math.MinInt64)
	if window > 0 {
		cutoff = lastT - int64(window)
	}
	h.Points = make([]Point, 0, n)
	for i := int(head) - n; i < int(head); i++ {
		slot := i % len(rg.times)
		t := rg.times[slot].Load()
		if t < cutoff {
			continue
		}
		p := Point{TUnixMs: t / int64(time.Millisecond),
			V: math.Float64frombits(rg.vals[slot].Load())}
		if rg.ids != nil {
			if id := rg.ids[slot].Load(); id != nil {
				p.TraceID = *id
			}
		}
		h.Points = append(h.Points, p)
	}
	return h, true
}

// Status summarises the recorder for the /v1/status flight section.
type Status struct {
	Series            int    `json:"series"`
	Ticks             int64  `json:"ticks"`
	DroppedSamples    int64  `json:"dropped_samples"`
	Anomalies         int64  `json:"anomalies"`
	Triggers          int64  `json:"triggers"`
	SuppressedTrigger int64  `json:"suppressed_triggers"`
	SpoolBundles      int    `json:"spool_bundles"`
	SpoolBytes        int64  `json:"spool_bytes"`
	LastTrigger       string `json:"last_trigger"`
	LastTriggerUnixMs int64  `json:"last_trigger_unix_ms"`
}

// Status reports the recorder's health counters and spool usage.
func (r *Recorder) Status() Status {
	if r == nil {
		return Status{}
	}
	st := Status{
		Series:            len(*r.list.Load()),
		Ticks:             r.ticks.Load(),
		DroppedSamples:    r.dropped.Load(),
		Anomalies:         r.anomalies.Load(),
		Triggers:          r.triggers.Load(),
		SuppressedTrigger: r.suppressed.Load(),
	}
	for _, b := range r.Bundles() {
		st.SpoolBundles++
		st.SpoolBytes += b.Bytes
	}
	if ti := r.lastTrigger.Load(); ti != nil {
		st.LastTrigger = ti.Kind + ": " + ti.Detail
		st.LastTriggerUnixMs = ti.AtUnixMs
	}
	return st
}
