package sketch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCountMinNeverUnderestimates(t *testing.T) {
	cm, err := NewCountMin(256, 4)
	if err != nil {
		t.Fatal(err)
	}
	truth := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		k := uint64(rng.Intn(300))
		cm.Add(k, 1)
		truth[k]++
	}
	for k, want := range truth {
		if got := cm.Estimate(k); got < want {
			t.Fatalf("Estimate(%d) = %d underestimates truth %d", k, got, want)
		}
	}
	if cm.Bytes() != 256*4*8 {
		t.Errorf("Bytes = %d", cm.Bytes())
	}
}

func TestCountMinBadParams(t *testing.T) {
	if _, err := NewCountMin(0, 1); err == nil {
		t.Error("want error for zero width")
	}
	if _, err := NewCountMin(1, 0); err == nil {
		t.Error("want error for zero depth")
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	b, err := NewBloom(1000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 1000; k++ {
		b.Add(k * 7919)
	}
	for k := uint64(0); k < 1000; k++ {
		if !b.MayContain(k * 7919) {
			t.Fatalf("false negative for %d", k*7919)
		}
	}
	// False-positive rate should be near the target.
	fp := 0
	for k := uint64(0); k < 10000; k++ {
		if b.MayContain(1e12 + k) {
			fp++
		}
	}
	if rate := float64(fp) / 10000; rate > 0.05 {
		t.Errorf("false positive rate %v too high", rate)
	}
}

func TestHyperLogLogAccuracy(t *testing.T) {
	h, err := NewHyperLogLog(12)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50000
	for i := 0; i < n; i++ {
		h.Add(uint64(i) * 2654435761)
	}
	est := h.Estimate()
	if math.Abs(est-n)/n > 0.05 {
		t.Errorf("Estimate = %v, want within 5%% of %d", est, n)
	}
}

func TestHyperLogLogSmallRange(t *testing.T) {
	h, _ := NewHyperLogLog(10)
	for i := 0; i < 10; i++ {
		h.Add(uint64(i))
	}
	est := h.Estimate()
	if est < 5 || est > 20 {
		t.Errorf("small-range Estimate = %v, want ~10", est)
	}
}

func TestReservoirUniformity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r, err := NewReservoir(100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		r.Offer(float64(i), rng.Float64())
	}
	items := r.Items()
	if len(items) != 100 {
		t.Fatalf("sample size = %d, want 100", len(items))
	}
	// Mean of a uniform sample of 0..9999 should be near 5000.
	var s float64
	for _, v := range items {
		s += v
	}
	mean := s / 100
	if mean < 3800 || mean > 6200 {
		t.Errorf("sample mean = %v, want near 5000", mean)
	}
	if r.Seen() != 10000 {
		t.Errorf("Seen = %d", r.Seen())
	}
}

func TestHistogram1DCounts(t *testing.T) {
	h, err := NewHistogram1D(0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	if h.Total() != 100 {
		t.Fatalf("Total = %d", h.Total())
	}
	if got := h.CountAbove(50); got < 45 || got > 55 {
		t.Errorf("CountAbove(50) = %d, want ~50", got)
	}
	if got := h.CountRange(20, 30); got < 8 || got > 12 {
		t.Errorf("CountRange(20,30) = %d, want ~10", got)
	}
	if got := h.QuantileAt(0.5); got < 45 || got > 55 {
		t.Errorf("QuantileAt(0.5) = %v, want ~50", got)
	}
}

func TestHistogram1DClamping(t *testing.T) {
	h, _ := NewHistogram1D(0, 10, 5)
	h.Add(-100)
	h.Add(100)
	if h.Total() != 2 {
		t.Errorf("Total = %d, want 2 (clamped)", h.Total())
	}
}

func TestEquiDepth(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i)
	}
	h, err := NewEquiDepth(vals, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.CountRange(0, 500); math.Abs(float64(got)-500) > 25 {
		t.Errorf("CountRange(0,500) = %d, want ~500", got)
	}
	if got := h.CountRange(900, 1000); math.Abs(float64(got)-100) > 25 {
		t.Errorf("CountRange(900,1000) = %d, want ~100", got)
	}
	if got := h.CountRange(5, 5); got != 0 {
		t.Errorf("empty range = %d", got)
	}
}

func TestGridHistogramEstimate(t *testing.T) {
	g, err := NewGridHistogram([]float64{0, 0}, []float64{10, 10}, 10)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	const n = 20000
	for i := 0; i < n; i++ {
		g.Add([]float64{rng.Float64() * 10, rng.Float64() * 10})
	}
	// Quarter box should hold ~n/4.
	est := g.EstimateRange([]float64{0, 0}, []float64{5, 5})
	if math.Abs(est-n/4)/(n/4) > 0.1 {
		t.Errorf("EstimateRange = %v, want ~%d", est, n/4)
	}
	// Full box returns everything.
	full := g.EstimateRange([]float64{0, 0}, []float64{10, 10})
	if math.Abs(full-n) > n*0.01 {
		t.Errorf("full-range estimate = %v, want %d", full, n)
	}
}

func TestGridHistogramTooLarge(t *testing.T) {
	mins := make([]float64, 10)
	maxs := make([]float64, 10)
	for i := range maxs {
		maxs[i] = 1
	}
	if _, err := NewGridHistogram(mins, maxs, 32); err == nil {
		t.Error("want error for oversized grid")
	}
}

// Property: CountAbove is monotonically non-increasing in v.
func TestHistogramMonotoneProperty(t *testing.T) {
	h, _ := NewHistogram1D(0, 1, 32)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		h.Add(rng.Float64())
	}
	f := func(a, b float64) bool {
		a = math.Abs(math.Mod(a, 1))
		b = math.Abs(math.Mod(b, 1))
		if a > b {
			a, b = b, a
		}
		return h.CountAbove(a) >= h.CountAbove(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: bloom filter never forgets an added key.
func TestBloomProperty(t *testing.T) {
	b, _ := NewBloom(500, 0.02)
	f := func(key uint64) bool {
		b.Add(key)
		return b.MayContain(key)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
