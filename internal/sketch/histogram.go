package sketch

import (
	"fmt"
	"sort"
)

// Histogram1D is an equi-width histogram over a fixed [min, max) range.
// Per-partition score histograms of this kind are the "statistical index
// structures" the rank-join operator uses to bound how deep it must read
// into each node's sorted run (ref [30]).
type Histogram1D struct {
	min, max float64
	counts   []int64
	total    int64
}

// NewHistogram1D builds an equi-width histogram with the given bucket
// count over [min, max).
func NewHistogram1D(min, max float64, buckets int) (*Histogram1D, error) {
	if buckets < 1 || max <= min {
		return nil, fmt.Errorf("%w: histogram [%g,%g) x%d", ErrBadParam, min, max, buckets)
	}
	return &Histogram1D{min: min, max: max, counts: make([]int64, buckets)}, nil
}

// Add records value v (values outside the range clamp to the edge
// buckets).
func (h *Histogram1D) Add(v float64) {
	h.counts[h.bucket(v)]++
	h.total++
}

func (h *Histogram1D) bucket(v float64) int {
	if v < h.min {
		return 0
	}
	b := int(float64(len(h.counts)) * (v - h.min) / (h.max - h.min))
	if b >= len(h.counts) {
		b = len(h.counts) - 1
	}
	return b
}

// Total returns the number of recorded values.
func (h *Histogram1D) Total() int64 { return h.total }

// CountAbove estimates how many recorded values are >= v, assuming
// uniform spread within v's bucket. It never underestimates by more than
// one bucket's population, which is the property the rank-join threshold
// algorithm relies on.
func (h *Histogram1D) CountAbove(v float64) int64 {
	b := h.bucket(v)
	var c int64
	for i := b + 1; i < len(h.counts); i++ {
		c += h.counts[i]
	}
	// Fraction of bucket b above v.
	w := (h.max - h.min) / float64(len(h.counts))
	lo := h.min + float64(b)*w
	frac := 1 - (v-lo)/w
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	c += int64(frac * float64(h.counts[b]))
	return c
}

// CountRange estimates how many recorded values fall in [lo, hi).
func (h *Histogram1D) CountRange(lo, hi float64) int64 {
	if hi <= lo {
		return 0
	}
	return h.CountAbove(lo) - h.CountAbove(hi)
}

// QuantileAt returns an estimate of the q-th quantile (0..1) from the
// histogram.
func (h *Histogram1D) QuantileAt(q float64) float64 {
	if h.total == 0 {
		return h.min
	}
	target := q * float64(h.total)
	var cum float64
	w := (h.max - h.min) / float64(len(h.counts))
	for i, c := range h.counts {
		next := cum + float64(c)
		if next >= target {
			var frac float64
			if c > 0 {
				frac = (target - cum) / float64(c)
			}
			return h.min + (float64(i)+frac)*w
		}
		cum = next
	}
	return h.max
}

// EquiDepthHistogram holds bucket boundaries such that each bucket covers
// roughly the same number of values. Built offline from a sorted sample.
type EquiDepthHistogram struct {
	bounds []float64 // len = buckets+1
	depth  float64   // values per bucket
	total  int64
}

// NewEquiDepth builds an equi-depth histogram with the given number of
// buckets from the supplied values (copied and sorted internally).
func NewEquiDepth(values []float64, buckets int) (*EquiDepthHistogram, error) {
	if buckets < 1 || len(values) == 0 {
		return nil, fmt.Errorf("%w: equi-depth x%d on %d values", ErrBadParam, buckets, len(values))
	}
	s := make([]float64, len(values))
	copy(s, values)
	sort.Float64s(s)
	if buckets > len(s) {
		buckets = len(s)
	}
	bounds := make([]float64, buckets+1)
	for i := 0; i <= buckets; i++ {
		idx := i * (len(s) - 1) / buckets
		bounds[i] = s[idx]
	}
	return &EquiDepthHistogram{
		bounds: bounds,
		depth:  float64(len(s)) / float64(buckets),
		total:  int64(len(s)),
	}, nil
}

// CountRange estimates how many values fall in [lo, hi).
func (h *EquiDepthHistogram) CountRange(lo, hi float64) int64 {
	if hi <= lo || h.total == 0 {
		return 0
	}
	return int64(h.cumBelow(hi) - h.cumBelow(lo))
}

func (h *EquiDepthHistogram) cumBelow(v float64) float64 {
	n := len(h.bounds) - 1
	if v <= h.bounds[0] {
		return 0
	}
	if v >= h.bounds[n] {
		return float64(h.total)
	}
	// Find bucket containing v.
	i := sort.SearchFloat64s(h.bounds, v) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	lo, hi := h.bounds[i], h.bounds[i+1]
	frac := 0.5
	if hi > lo {
		frac = (v - lo) / (hi - lo)
	}
	return float64(i)*h.depth + frac*h.depth
}

// Bounds returns a copy of the bucket boundaries.
func (h *EquiDepthHistogram) Bounds() []float64 {
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// GridHistogram is a d-dimensional equi-width grid over a bounding box,
// counting points per cell. It doubles as a density synopsis for
// selectivity estimation (optimizer features) and as the coarse routing
// structure for multi-dimensional range counts.
type GridHistogram struct {
	mins, maxs []float64
	cellsPer   int
	counts     []int64
	total      int64
}

// NewGridHistogram builds a grid with cellsPer cells along each of the
// len(mins) dimensions. Memory is cellsPer^d counters, so keep d small.
func NewGridHistogram(mins, maxs []float64, cellsPer int) (*GridHistogram, error) {
	if len(mins) == 0 || len(mins) != len(maxs) || cellsPer < 1 {
		return nil, fmt.Errorf("%w: grid histogram", ErrBadParam)
	}
	size := 1
	for range mins {
		size *= cellsPer
		if size > 1<<24 {
			return nil, fmt.Errorf("%w: grid too large", ErrBadParam)
		}
	}
	return &GridHistogram{
		mins:     append([]float64(nil), mins...),
		maxs:     append([]float64(nil), maxs...),
		cellsPer: cellsPer,
		counts:   make([]int64, size),
	}, nil
}

// Add records point p.
func (g *GridHistogram) Add(p []float64) {
	g.counts[g.cellIndex(p)]++
	g.total++
}

func (g *GridHistogram) cellIndex(p []float64) int {
	idx := 0
	for d := range g.mins {
		c := g.coord(p[d], d)
		idx = idx*g.cellsPer + c
	}
	return idx
}

func (g *GridHistogram) coord(v float64, d int) int {
	span := g.maxs[d] - g.mins[d]
	if span <= 0 {
		return 0
	}
	c := int(float64(g.cellsPer) * (v - g.mins[d]) / span)
	if c < 0 {
		c = 0
	}
	if c >= g.cellsPer {
		c = g.cellsPer - 1
	}
	return c
}

// Total returns the number of recorded points.
func (g *GridHistogram) Total() int64 { return g.total }

// EstimateRange estimates the number of points inside the axis-aligned
// box [los, his], pro-rating partially covered boundary cells by overlap
// volume. Dimensions beyond len(los)/len(his) are treated as fully
// covered (the box does not constrain them).
func (g *GridHistogram) EstimateRange(los, his []float64) float64 {
	d := len(g.mins)
	loC := make([]int, d)
	hiC := make([]int, d)
	for i := 0; i < d; i++ {
		if i >= len(los) || i >= len(his) {
			loC[i] = 0
			hiC[i] = g.cellsPer - 1
			continue
		}
		loC[i] = g.coord(los[i], i)
		hiC[i] = g.coord(his[i], i)
	}
	var est float64
	cur := make([]int, d)
	copy(cur, loC)
	for {
		// Fraction of cell cur covered by the box, per dimension.
		frac := 1.0
		idx := 0
		for i := 0; i < d; i++ {
			if i >= len(los) || i >= len(his) {
				idx = idx*g.cellsPer + cur[i]
				continue // unconstrained dimension: full cell
			}
			w := (g.maxs[i] - g.mins[i]) / float64(g.cellsPer)
			cellLo := g.mins[i] + float64(cur[i])*w
			cellHi := cellLo + w
			lo := los[i]
			if cellLo > lo {
				lo = cellLo
			}
			hi := his[i]
			if cellHi < hi {
				hi = cellHi
			}
			if hi <= lo {
				frac = 0
				break
			}
			frac *= (hi - lo) / w
			idx = idx*g.cellsPer + cur[i]
		}
		if frac > 0 {
			est += frac * float64(g.counts[idx])
		}
		// Advance the odometer.
		i := d - 1
		for ; i >= 0; i-- {
			cur[i]++
			if cur[i] <= hiC[i] {
				break
			}
			cur[i] = loC[i]
		}
		if i < 0 {
			break
		}
	}
	return est
}

// Bytes returns the grid's memory footprint.
func (g *GridHistogram) Bytes() int64 { return int64(len(g.counts)) * 8 }
