// Package sketch provides the data synopses that approximate-query-
// processing engines rely on (paper §II, refs [15][16]): count-min
// sketches, bloom filters, hyperloglog distinct counters, reservoir and
// stratified samplers, and one- and multi-dimensional histograms.
//
// These power the internal/aqp BlinkDB-style baseline and the statistical
// indexes of RT2; SEA's own agent deliberately does NOT use them (its
// models are trained on query/answer pairs, never on base data), which is
// the paradigm contrast the experiments quantify.
package sketch

import (
	"errors"
	"math"
)

// ErrBadParam is returned for out-of-range constructor parameters.
var ErrBadParam = errors.New("sketch: bad parameter")

// hash64 is a splitmix64-style finalizer over key perturbed by seed; it
// has full avalanche, which matters for the near-sequential keys typical
// of simulated datasets.
func hash64(key uint64, seed uint64) uint64 {
	x := key + (seed+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// CountMin is a count-min sketch over uint64 keys (ref [16]).
type CountMin struct {
	width, depth int
	counts       [][]uint64
}

// NewCountMin builds a sketch with the given width (counters per row) and
// depth (independent hash rows). Estimation error is ~2N/width with
// probability 1-(1/2)^depth.
func NewCountMin(width, depth int) (*CountMin, error) {
	if width < 1 || depth < 1 {
		return nil, ErrBadParam
	}
	counts := make([][]uint64, depth)
	for i := range counts {
		counts[i] = make([]uint64, width)
	}
	return &CountMin{width: width, depth: depth, counts: counts}, nil
}

// Add increments key's count by delta.
func (c *CountMin) Add(key uint64, delta uint64) {
	for d := 0; d < c.depth; d++ {
		idx := hash64(key, uint64(d)) % uint64(c.width)
		c.counts[d][idx] += delta
	}
}

// Estimate returns the (over-)estimate of key's count.
func (c *CountMin) Estimate(key uint64) uint64 {
	var est uint64 = math.MaxUint64
	for d := 0; d < c.depth; d++ {
		idx := hash64(key, uint64(d)) % uint64(c.width)
		if v := c.counts[d][idx]; v < est {
			est = v
		}
	}
	return est
}

// Bytes returns the memory footprint of the counter array, for the
// storage-cost comparisons of E2.
func (c *CountMin) Bytes() int64 {
	return int64(c.width) * int64(c.depth) * 8
}

// Bloom is a bloom filter over uint64 keys, used by the rank-join
// operator to prune probes that cannot match (semi-join filtering).
type Bloom struct {
	bits  []uint64
	m     uint64 // number of bits
	k     int    // hash count
	added int64
}

// NewBloom sizes a filter for n expected keys at false-positive rate fp.
func NewBloom(n int, fp float64) (*Bloom, error) {
	if n < 1 || fp <= 0 || fp >= 1 {
		return nil, ErrBadParam
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(fp) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return &Bloom{bits: make([]uint64, (m+63)/64), m: m, k: k}, nil
}

// Add inserts key.
func (b *Bloom) Add(key uint64) {
	for i := 0; i < b.k; i++ {
		bit := hash64(key, uint64(i)) % b.m
		b.bits[bit/64] |= 1 << (bit % 64)
	}
	b.added++
}

// MayContain reports whether key might have been added (no false
// negatives).
func (b *Bloom) MayContain(key uint64) bool {
	for i := 0; i < b.k; i++ {
		bit := hash64(key, uint64(i)) % b.m
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// Bytes returns the filter's memory footprint.
func (b *Bloom) Bytes() int64 { return int64(len(b.bits)) * 8 }

// HyperLogLog estimates the number of distinct uint64 keys observed.
type HyperLogLog struct {
	p         uint8 // precision: m = 2^p registers
	registers []uint8
}

// NewHyperLogLog creates an estimator with 2^p registers, 4 <= p <= 16.
func NewHyperLogLog(p uint8) (*HyperLogLog, error) {
	if p < 4 || p > 16 {
		return nil, ErrBadParam
	}
	return &HyperLogLog{p: p, registers: make([]uint8, 1<<p)}, nil
}

// Add observes key.
func (h *HyperLogLog) Add(key uint64) {
	x := hash64(key, 0xd6e8feb86659fd93)
	idx := x >> (64 - h.p)
	rest := x<<h.p | 1<<(h.p-1) // ensure non-zero
	rank := uint8(1)
	for rest&0x8000000000000000 == 0 {
		rank++
		rest <<= 1
	}
	if rank > h.registers[idx] {
		h.registers[idx] = rank
	}
}

// Estimate returns the cardinality estimate with the standard bias
// corrections for small and large ranges.
func (h *HyperLogLog) Estimate() float64 {
	m := float64(len(h.registers))
	var sum float64
	zeros := 0
	for _, r := range h.registers {
		sum += math.Pow(2, -float64(r))
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	est := alpha * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		// Linear counting for the small range.
		est = m * math.Log(m/float64(zeros))
	}
	return est
}

// Reservoir keeps a uniform sample of up to k items from a stream using
// Vitter's algorithm R. The caller supplies random draws so the package
// stays deterministic under seeded simulation RNGs.
type Reservoir struct {
	k     int
	seen  int64
	items []float64
}

// NewReservoir creates a reservoir of capacity k.
func NewReservoir(k int) (*Reservoir, error) {
	if k < 1 {
		return nil, ErrBadParam
	}
	return &Reservoir{k: k, items: make([]float64, 0, k)}, nil
}

// Offer streams value v; u must be a uniform draw in [0,1) from the
// caller's RNG.
func (r *Reservoir) Offer(v float64, u float64) {
	r.seen++
	if len(r.items) < r.k {
		r.items = append(r.items, v)
		return
	}
	j := int64(u * float64(r.seen))
	if j < int64(r.k) {
		r.items[j] = v
	}
}

// Items returns a copy of the current sample.
func (r *Reservoir) Items() []float64 {
	out := make([]float64, len(r.items))
	copy(out, r.items)
	return out
}

// Seen returns the number of offered items.
func (r *Reservoir) Seen() int64 { return r.seen }
