package impute

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/storage"
	"repro/internal/workload"
)

// buildData returns ground-truth rows and a masked copy.
func buildData(t *testing.T, n int, frac float64) (truth, masked []storage.Row) {
	t.Helper()
	rng := workload.NewRNG(71)
	truth = workload.GaussianMixture(rng, n, 4, workload.DefaultMixture(4), 0)
	masked = make([]storage.Row, n)
	for i, r := range truth {
		masked[i] = storage.Row{Key: r.Key, Vec: append([]float64(nil), r.Vec...)}
	}
	workload.MissingMask(rng, masked, frac)
	return truth, masked
}

func TestFullScanFillsAllCells(t *testing.T) {
	truth, masked := buildData(t, 500, 0.05)
	im := New(cluster.New(4, cluster.DefaultConfig()))
	res, cost, err := im.FullScan(masked)
	if err != nil {
		t.Fatal(err)
	}
	var wantCells int
	for _, r := range masked {
		for _, v := range r.Vec {
			if math.IsNaN(v) {
				wantCells++
			}
		}
	}
	if res.CellsFilled != wantCells {
		t.Errorf("filled %d cells, want %d", res.CellsFilled, wantCells)
	}
	for _, filled := range res.Filled {
		for _, v := range filled.Vec {
			if math.IsNaN(v) {
				t.Fatal("NaN survived imputation")
			}
		}
	}
	if cost.RowsRead == 0 {
		t.Error("full scan charged no rows")
	}
	_ = truth
}

func TestCentroidMatchesFullScanQuality(t *testing.T) {
	truth, masked := buildData(t, 2000, 0.04)
	im := New(cluster.New(4, cluster.DefaultConfig()))

	full, fullCost, err := im.FullScan(masked)
	if err != nil {
		t.Fatal(err)
	}
	cent, centCost, err := im.Centroid(masked, 7)
	if err != nil {
		t.Fatal(err)
	}
	rmseFull := RMSE(truth, masked, full)
	rmseCent := RMSE(truth, masked, cent)
	// Within-blob dimensions are independent with std 8, so the best any
	// imputer can do is ~8*sqrt(1+1/k) ≈ 9; the cross-blob spread a
	// global-mean imputer pays is ~25+. Full scan must sit near the
	// former, far under the latter.
	if rmseFull > 12 {
		t.Errorf("full-scan RMSE %v too high", rmseFull)
	}
	if rmseCent > rmseFull*1.6+1 {
		t.Errorf("centroid RMSE %v ≫ full %v", rmseCent, rmseFull)
	}
	// The scalable path must be drastically cheaper.
	if centCost.RowsRead*4 >= fullCost.RowsRead {
		t.Errorf("centroid read %d rows vs full %d", centCost.RowsRead, fullCost.RowsRead)
	}
	if centCost.Time >= fullCost.Time {
		t.Errorf("centroid time %v >= full %v", centCost.Time, fullCost.Time)
	}
}

func TestNoCompleteRows(t *testing.T) {
	im := New(cluster.New(1, cluster.DefaultConfig()))
	rows := []storage.Row{{Key: 1, Vec: []float64{math.NaN(), 1}}}
	if _, _, err := im.FullScan(rows); !errors.Is(err, ErrNoCompleteRows) {
		t.Errorf("FullScan err = %v", err)
	}
	if _, _, err := im.Centroid(rows, 1); !errors.Is(err, ErrNoCompleteRows) {
		t.Errorf("Centroid err = %v", err)
	}
}

func TestNoMissingValuesIsNoop(t *testing.T) {
	truth, _ := buildData(t, 100, 0)
	im := New(cluster.New(2, cluster.DefaultConfig()))
	res, _, err := im.FullScan(truth)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Filled) != 0 || res.CellsFilled != 0 {
		t.Errorf("no-op imputation filled %d rows", len(res.Filled))
	}
}

func TestObsDistance(t *testing.T) {
	a := []float64{1, math.NaN(), 3}
	b := []float64{1, 5, 3}
	if d := obsDistance(a, b); d != 0 {
		t.Errorf("distance over observed dims = %v, want 0", d)
	}
	allNaN := []float64{math.NaN()}
	if d := obsDistance(allNaN, []float64{1}); !math.IsInf(d, 1) {
		t.Errorf("all-NaN distance = %v, want +Inf", d)
	}
}

func TestRMSEEmpty(t *testing.T) {
	if got := RMSE(nil, nil, Result{}); got != 0 {
		t.Errorf("empty RMSE = %v", got)
	}
}
