// Package impute implements scalable missing-value imputation (paper §IV
// P3, ref [36] "Scaling out big data missing value imputations"): filling
// NaN cells of incomplete rows from their k nearest complete rows.
//
// Two implementations reproduce the paper's contrast:
//
//   - FullScan: the BDAS-style baseline — every incomplete row is matched
//     against every complete row (a MapReduce-style all-pairs pass).
//
//   - Centroid: the scalable method — complete rows are clustered
//     offline; each incomplete row is routed to its nearest centroid
//     (using only its observed dimensions) and imputed from that
//     cluster's members alone, reading a small fraction of the data.
package impute

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/storage"
)

// ErrNoCompleteRows is returned when the dataset has no complete rows to
// impute from.
var ErrNoCompleteRows = errors.New("impute: no complete rows")

// Imputer fills missing values in one table.
type Imputer struct {
	cl *cluster.Cluster
	// K is the neighbourhood size (default 5).
	K int
	// Clusters is the centroid count for the scalable path (default 16).
	Clusters int
}

// New creates an imputer over cl.
func New(cl *cluster.Cluster) *Imputer {
	return &Imputer{cl: cl, K: 5, Clusters: 16}
}

// split partitions rows into complete and incomplete index lists.
func split(rows []storage.Row) (complete, incomplete []int) {
	for i, r := range rows {
		missing := false
		for _, v := range r.Vec {
			if math.IsNaN(v) {
				missing = true
				break
			}
		}
		if missing {
			incomplete = append(incomplete, i)
		} else {
			complete = append(complete, i)
		}
	}
	return complete, incomplete
}

// obsDistance computes distance over the dimensions observed in a.
func obsDistance(a, b []float64) float64 {
	var s float64
	n := 0
	for j := 0; j < len(a) && j < len(b); j++ {
		if math.IsNaN(a[j]) || math.IsNaN(b[j]) {
			continue
		}
		d := a[j] - b[j]
		s += d * d
		n++
	}
	if n == 0 {
		return math.Inf(1)
	}
	// Normalise by observed dims so rows with more NaNs aren't closer.
	return math.Sqrt(s / float64(n))
}

// imputeFrom fills row's NaN cells with the mean of its k nearest rows
// among the candidate pool, returning the filled copy.
func (im *Imputer) imputeFrom(row storage.Row, pool []storage.Row) storage.Row {
	k := im.K
	if k < 1 {
		k = 5
	}
	type nd struct {
		idx int
		d   float64
	}
	ds := make([]nd, 0, len(pool))
	for i, p := range pool {
		ds = append(ds, nd{i, obsDistance(row.Vec, p.Vec)})
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].d < ds[j].d })
	if len(ds) > k {
		ds = ds[:k]
	}
	out := storage.Row{Key: row.Key, Vec: append([]float64(nil), row.Vec...)}
	for j, v := range out.Vec {
		if !math.IsNaN(v) {
			continue
		}
		var s float64
		var n int
		for _, d := range ds {
			pv := pool[d.idx].Vec[j]
			if !math.IsNaN(pv) {
				s += pv
				n++
			}
		}
		if n > 0 {
			out.Vec[j] = s / float64(n)
		} else {
			out.Vec[j] = 0
		}
	}
	return out
}

// Result is the outcome of one imputation run.
type Result struct {
	// Filled maps row index (within the input slice) to the filled row.
	Filled map[int]storage.Row
	// CellsFilled counts imputed cells.
	CellsFilled int
}

// FullScan imputes every incomplete row against the full complete set —
// the all-pairs baseline. Cost: a framework job per node plus an
// all-pairs distance computation (rowsRead = |incomplete| x |complete|).
func (im *Imputer) FullScan(rows []storage.Row) (Result, metrics.Cost, error) {
	complete, incomplete := split(rows)
	if len(complete) == 0 {
		return Result{}, metrics.Cost{}, ErrNoCompleteRows
	}
	pool := make([]storage.Row, len(complete))
	for i, idx := range complete {
		pool[i] = rows[idx]
	}
	res := Result{Filled: make(map[int]storage.Row, len(incomplete))}
	for _, idx := range incomplete {
		filled := im.imputeFrom(rows[idx], pool)
		res.CellsFilled += countFilled(rows[idx], filled)
		res.Filled[idx] = filled
	}
	// Cost model: per-node job overhead + all-pairs scan work.
	pairRows := int64(len(incomplete)) * int64(len(complete))
	rowBytes := int64(8)
	if len(rows) > 0 {
		rowBytes = rows[0].Bytes()
	}
	cost := im.cl.FrameworkLaunch()
	for n := 1; n < im.cl.Size(); n++ {
		cost = cost.Merge(im.cl.FrameworkLaunch())
	}
	// The scan work parallelises over nodes; time divides, totals don't.
	scan := im.cl.ScanCost(pairRows, rowBytes)
	scan.Time /= time.Duration(im.cl.Size())
	cost = cost.Add(scan)
	cost = cost.Add(im.cl.TransferLAN(int64(len(incomplete)) * rowBytes))
	return res, cost, nil
}

// Centroid imputes via the scalable path: offline k-means over complete
// rows, then per-row routing to one cluster.
func (im *Imputer) Centroid(rows []storage.Row, seed int64) (Result, metrics.Cost, error) {
	complete, incomplete := split(rows)
	if len(complete) == 0 {
		return Result{}, metrics.Cost{}, ErrNoCompleteRows
	}
	// Offline clustering (index build: uncharged, like other indexes).
	vecs := make([][]float64, len(complete))
	pool := make([]storage.Row, len(complete))
	for i, idx := range complete {
		pool[i] = rows[idx]
		vecs[i] = rows[idx].Vec
	}
	kc := im.Clusters
	if kc < 1 {
		kc = 16
	}
	km := ml.KMeans{K: kc}
	if err := km.Fit(vecs, rand.New(rand.NewSource(seed))); err != nil {
		return Result{}, metrics.Cost{}, fmt.Errorf("impute centroid: %w", err)
	}
	members := make([][]storage.Row, kc)
	for i, v := range vecs {
		c := km.Assign(v)
		members[c] = append(members[c], pool[i])
	}
	centroids := km.Centroids()

	res := Result{Filled: make(map[int]storage.Row, len(incomplete))}
	var rowsTouched int64
	for _, idx := range incomplete {
		row := rows[idx]
		// Route by observed-dimension distance to centroids.
		best, bestD := 0, math.Inf(1)
		for c, cen := range centroids {
			if d := obsDistance(row.Vec, cen); d < bestD {
				best, bestD = c, d
			}
		}
		cluster := members[best]
		if len(cluster) == 0 {
			cluster = pool
		}
		rowsTouched += int64(len(cluster))
		filled := im.imputeFrom(row, cluster)
		res.CellsFilled += countFilled(row, filled)
		res.Filled[idx] = filled
	}
	rowBytes := int64(8)
	if len(rows) > 0 {
		rowBytes = rows[0].Bytes()
	}
	cost := im.cl.CohortLaunch()
	scan := im.cl.ScanCost(rowsTouched, rowBytes)
	scan.Time /= time.Duration(im.cl.Size())
	cost = cost.Add(scan)
	cost = cost.Add(im.cl.TransferLAN(int64(len(incomplete)) * rowBytes))
	return res, cost, nil
}

func countFilled(before, after storage.Row) int {
	n := 0
	for j := range before.Vec {
		if math.IsNaN(before.Vec[j]) && !math.IsNaN(after.Vec[j]) {
			n++
		}
	}
	return n
}

// RMSE computes imputation accuracy against ground truth: the root mean
// squared error over cells that were missing, given the original
// (unmasked) rows.
func RMSE(truth, masked []storage.Row, res Result) float64 {
	var sse float64
	var n int
	for idx, filled := range res.Filled {
		if idx >= len(truth) {
			continue
		}
		for j := range masked[idx].Vec {
			if math.IsNaN(masked[idx].Vec[j]) && j < len(truth[idx].Vec) && j < len(filled.Vec) {
				d := filled.Vec[j] - truth[idx].Vec[j]
				sse += d * d
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sse / float64(n))
}
